(* Trimmed, deterministic slice of the benchmark suite used as the
   wall-clock smoke test: a few seconds of the same kernels the full
   harness leans on (memory simulation with every engine, SHA-256, AES
   CTR/XTS, HMAC).  `main.exe --perf-json` times one run of this and
   records it as "perf_smoke_wall_seconds"; `perf_smoke.exe` re-times it
   against that committed baseline and fails loudly on regression, so a
   perf-destroying change to the simulator can't land silently.

   Everything here is seeded and sized identically on every run — the
   only thing that varies between machines/builds is the wall clock. *)

open Hyperenclave
module Memlat = Hyperenclave_workloads.Memlat

let mem_engines =
  [
    Hw.Mem_crypto.Plain;
    Hw.Mem_crypto.Sme;
    Hw.Mem_crypto.Mee { epc_bytes = 8 * 1024 * 1024 };
  ]

(* ~16 MB of random-access simulation per engine plus a medium sequential
   scan: enough to exercise the TLB/EPC/cache fast paths for a measurable
   (but CI-friendly) amount of time. *)
let mem_slice () =
  List.iter
    (fun engine ->
      let clock = Cycles.create () in
      let sim =
        Mem_sim.create ~clock ~cost:Cost_model.default
          ~rng:(Rng.create ~seed:11L) ~engine ()
      in
      Mem_sim.seq_scan sim ~base:0 ~bytes:(8 * 1024 * 1024) ~write:false;
      Mem_sim.random_access sim ~base:0
        ~working_set:(16 * 1024 * 1024)
        ~count:200_000 ~write:true;
      ignore (Mem_sim.swaps sim))
    mem_engines

let crypto_slice () =
  let data = Bytes.init 65536 (fun i -> Char.chr (i land 0xff)) in
  let digest = ref (Crypto.Sha256.digest_bytes data) in
  for _ = 1 to 16 do
    digest := Crypto.Sha256.digest_bytes !digest
  done;
  ignore (Crypto.Sha256.to_hex !digest);
  let key = Bytes.init 16 (fun i -> Char.chr (17 * i land 0xff)) in
  let sealed = Crypto.Aes.ctr_transform ~key ~nonce:(Bytes.make 12 'n') data in
  let xts = Crypto.Aes.xts_encrypt ~key ~tweak:0x1000 (Bytes.sub sealed 0 16384) in
  ignore (Crypto.Hmac.hmac ~key xts)

let run () =
  mem_slice ();
  crypto_slice ()
