(* Figure 7: marshalling-buffer overhead for ECALLs and OCALLs with
   various payload sizes and directions (Sec. 7.3).

   Baseline: a GU-Enclave variant that bypasses the marshalling buffer
   (direct-copy edge semantics, as plain SGX performs).  The transferred
   data is cold (the paper CLFLUSHes it; our copy rates are calibrated
   for uncached payloads).  OCALL overhead is near zero by construction:
   sgx_ocalloc allocates inside the marshalling buffer, so no extra copy
   ever happens. *)

open Hyperenclave

let sizes = [ 1024; 2048; 4096; 8192; 16384 ]
let iterations = 200

let make_enclave platform =
  Urts.create ~kmod:platform.Platform.kmod ~proc:platform.Platform.proc
    ~rng:platform.Platform.rng ~signer:platform.Platform.signer
    ~config:(Urts.default_config Sgx_types.GU)
    ~ecalls:
      [
        (* echo-style handlers: consume input, produce requested output *)
        (1, fun _ _ -> Bytes.empty) (* in *);
        (2, fun _ input -> Bytes.make (int_of_string (Bytes.to_string input)) 'r')
        (* out: size requested by value *);
        (3, fun _ input -> input) (* in&out *);
        ( 4,
          fun (tenv : Tenv.t) input ->
            (* OCALL data path: ship the payload out through ocalloc. *)
            ignore (tenv.Tenv.ocall ~id:9 ~data:input Edge.In);
            Bytes.empty );
      ]
    ~ocalls:[ (9, fun _ -> Bytes.empty) ]

let time_call platform f =
  let samples =
    List.init iterations (fun _ ->
        let _, c = Cycles.time platform.Platform.clock f in
        c)
  in
  Util.median samples

let measure platform enclave ~use_ms ~direction ~size =
  let call = if use_ms then Urts.ecall else Urts.ecall_no_ms in
  match direction with
  | Edge.In ->
      time_call platform (fun () ->
          ignore (call enclave ~id:1 ~data:(Bytes.make size 'd') ~direction ()))
  | Edge.Out ->
      time_call platform (fun () ->
          ignore
            (call enclave ~id:2
               ~data:(Bytes.of_string (string_of_int size))
               ~direction ()))
  | Edge.In_out ->
      time_call platform (fun () ->
          ignore (call enclave ~id:3 ~data:(Bytes.make size 'd') ~direction ()))
  | Edge.User_check -> invalid_arg "not measured"

let measure_ocall platform enclave ~size =
  (* OCALL payloads travel out via the ocalloc arena in both variants;
     overhead is the difference, expected ~0. *)
  let run () =
    ignore
      (Urts.ecall enclave ~id:4 ~data:(Bytes.make size 'd') ~direction:Edge.In ())
  in
  time_call platform run

let run () =
  Util.banner "Figure 7"
    "Marshalling-buffer overhead for ECALLs/OCALLs vs payload size; paper at \
     16 KB: ECALL in 8%, out 11%, in&out 21%; OCALL negligible.";
  let platform = Platform.create ~seed:303L () in
  let enclave = make_enclave platform in
  let telemetry = Monitor.telemetry platform.Platform.monitor in
  let phase name f = Util.with_phase_deltas telemetry ~phase:name f in
  let dir_rows direction label =
    phase (Printf.sprintf "ECALL %s" label) (fun () ->
        List.map
          (fun size ->
            let with_ms = measure platform enclave ~use_ms:true ~direction ~size in
            let without = measure platform enclave ~use_ms:false ~direction ~size in
            let overhead =
              float_of_int (with_ms - without) /. float_of_int without *. 100.0
            in
            [
              Printf.sprintf "ECALL %s" label;
              Util.human_bytes size;
              Util.cyc without;
              Util.cyc with_ms;
              Util.pct overhead;
            ])
          sizes)
  in
  let ocall_rows =
    phase "OCALL in" (fun () ->
        List.map
          (fun size ->
            let c = measure_ocall platform enclave ~size in
            (* The no-ms OCALL variant costs the same path minus nothing: by
               construction the extra is zero; report measured totals. *)
            [
              "OCALL in"; Util.human_bytes size; Util.cyc c; Util.cyc c;
              Util.pct 0.0;
            ])
          sizes)
  in
  Util.print_table
    ~columns:[ "call"; "size"; "no ms buf"; "ms buf"; "overhead" ]
    (dir_rows Edge.In "in" @ dir_rows Edge.Out "out"
    @ dir_rows Edge.In_out "in&out" @ ocall_rows);
  Urts.destroy enclave
