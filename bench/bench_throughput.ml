(* PR 4 tentpole bench: end-to-end request throughput of the SMP enclave
   scheduler (lib/sched) serving the RESP KV workload across 1/2/4/8
   simulated cores, plus the switchless call ring's amortization of the
   world-switch cost as the batch factor K grows.

   Two headline numbers gate regressions (see BENCH_PR4.json and
   perf_smoke.ml): requests/sec must scale at least 1.6x from 1 to 2
   cores, and at K = 8 the ring must serve a request in at most half the
   cycles of eight individual world switches.  Both are simulated-cycle
   quantities, so the gate is deterministic. *)

open Hyperenclave
module Resp_kv = Hyperenclave_workloads.Resp_kv
module Ycsb = Hyperenclave_workloads.Ycsb

(* The paper's evaluation machine: 2.2 GHz EPYC (Sec. 7.1); same
   constant resp_kv uses for its latency curves. *)
let clock_hz = 2.2e9
let records = 256
let enclaves = 8
let reqs_per_enclave = 24
let value_bytes = 128

let key_name key = Printf.sprintf "user%08d" key

(* A YCSB-A request stream, pre-encoded as RESP commands. *)
let request_stream ~seed n =
  let gen = Ycsb.create ~rng:(Rng.create ~seed) ~records () in
  List.init n (fun _ ->
      let parts =
        match Ycsb.next_op_a gen with
        | Ycsb.Read key | Ycsb.Scan (key, _) -> [ "GET"; key_name key ]
        | Ycsb.Update key ->
            [
              "SET";
              key_name key;
              Bytes.to_string (Ycsb.record_value ~key ~size:value_bytes);
            ]
      in
      (Resp_kv.ecall_command, Resp_kv.encode_command parts))

type run = {
  cores : int;
  rps : float;
  makespan : int;
  total : int;
  steals : int;
  aex : int;
}

(* N enclaves, [reqs_per_enclave] requests each, scheduled over [cores]
   cores.  Fresh platform per configuration so runs are independent and
   seed-reproducible. *)
let measure ~cores ~batch =
  let p = Platform.create ~seed:906L () in
  let backends =
    List.init enclaves (fun i ->
        Backend.hyperenclave p ~mode:Sgx_types.GU
          ~tweak:(fun c ->
            { c with Urts.code_seed = Printf.sprintf "throughput-%d" i })
          ~handlers:(Resp_kv.handlers ())
          ~ocalls:(Resp_kv.ocalls ()) ())
  in
  List.iter (fun b -> Resp_kv.load b ~records) backends;
  let sched =
    Sched.create ~shared_clock:p.Platform.clock
      ~telemetry:(Monitor.telemetry p.Platform.monitor)
      { Sched.default_config with Sched.cores; batch; quantum = 500_000 }
  in
  List.iteri
    (fun i b ->
      Sched.submit sched
        ~urts:(Option.get b.Backend.urts)
        (request_stream ~seed:(Int64.of_int (7_000 + i)) reqs_per_enclave))
    backends;
  let stats = Sched.run sched in
  List.iter (fun b -> b.Backend.destroy ()) backends;
  {
    cores;
    rps =
      float_of_int stats.Sched.total_requests
      *. clock_hz
      /. float_of_int (max 1 stats.Sched.makespan);
    makespan = stats.Sched.makespan;
    total = stats.Sched.total_requests;
    steals = stats.Sched.steals;
    aex = stats.Sched.aex_preempts;
  }

(* Ring amortization on a minimal echo enclave: the compute inside the
   call is ~zero, so the measured cycles are almost entirely transition
   cost — the quantity the ring exists to amortize. *)
let ring_amortization ~k =
  let p = Platform.create ~seed:907L () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:[ (1, fun _ input -> input) ]
      ~ocalls:[]
  in
  let reqs = List.init k (fun i -> (1, Bytes.of_string (string_of_int i))) in
  (* Warm call: both paths start from identical paging/TLB state. *)
  ignore (Urts.ecall handle ~id:1 ~data:Bytes.empty ~direction:Edge.In_out ());
  let _, batched =
    Cycles.time p.Platform.clock (fun () -> Urts.ecall_batch handle ~reqs ())
  in
  let _, unbatched =
    Cycles.time p.Platform.clock (fun () ->
        List.iter
          (fun (id, data) ->
            ignore (Urts.ecall handle ~id ~data ~direction:Edge.In_out ()))
          reqs)
  in
  Urts.destroy handle;
  (batched, unbatched)

type summary = {
  runs : run list;
  speedup_2core : float;
  amortized_ratio_k8 : float;
}

let summarize () =
  let runs = List.map (fun cores -> measure ~cores ~batch:1) [ 1; 2; 4; 8 ] in
  let rps_of n = (List.find (fun r -> r.cores = n) runs).rps in
  let batched, unbatched = ring_amortization ~k:8 in
  {
    runs;
    speedup_2core = rps_of 2 /. rps_of 1;
    amortized_ratio_k8 = float_of_int unbatched /. float_of_int batched;
  }

let print_scaling (s : summary) =
  Util.print_table
    ~columns:[ "cores"; "requests"; "makespan (Mcyc)"; "req/s"; "steals"; "AEX" ]
    (List.map
       (fun r ->
         [
           string_of_int r.cores;
           string_of_int r.total;
           Printf.sprintf "%.2f" (float_of_int r.makespan /. 1e6);
           Printf.sprintf "%.0f" r.rps;
           string_of_int r.steals;
           string_of_int r.aex;
         ])
       s.runs);
  Printf.printf "\n  1 -> 2 core speedup: %.2fx (gate: >= 1.6x)\n"
    s.speedup_2core

let print_ring () =
  Util.print_table
    ~columns:
      [ "K"; "batched (cyc)"; "unbatched (cyc)"; "cyc/req batched"; "ratio" ]
    (List.map
       (fun k ->
         let batched, unbatched = ring_amortization ~k in
         [
           string_of_int k;
           string_of_int batched;
           string_of_int unbatched;
           string_of_int (batched / k);
           Printf.sprintf "%.2fx" (float_of_int unbatched /. float_of_int batched);
         ])
       [ 1; 2; 4; 8; 16 ]);
  print_newline ()

let run () =
  Util.set_experiment "throughput";
  Util.banner "Throughput"
    "SMP scheduler: RESP KV requests/sec vs simulated cores (8 enclaves, \
     YCSB-A), and the switchless ring's world-switch amortization vs K.";
  let s = summarize () in
  print_scaling s;
  Printf.printf
    "\n  Switchless call ring, echo ECALL (pure transition cost):\n\n";
  print_ring ();
  Printf.printf
    "  K=8 amortization: %.2fx fewer cycles per request (gate: >= 2x).\n"
    s.amortized_ratio_k8

(* --- baseline file + regression gate ---------------------------------- *)

let write_baseline path =
  let s = summarize () in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"hyperenclave-perf/1\",\n";
  List.iter
    (fun r -> Printf.fprintf oc "  \"rps_%dcore\": %.1f,\n" r.cores r.rps)
    s.runs;
  Printf.fprintf oc "  \"speedup_2core\": %.3f,\n" s.speedup_2core;
  Printf.fprintf oc "  \"batch_amortized_ratio_k8\": %.3f\n}\n"
    s.amortized_ratio_k8;
  close_out oc;
  Printf.printf "throughput baseline written to %s\n" path

(* The simulated-cycle analogue of the wall-clock smoke gate: recompute
   the headline numbers and fail on a >25%% throughput regression against
   the committed baseline, or if either absolute acceptance bar (2-core
   scaling, K=8 amortization) no longer holds. *)
let check_baseline path =
  let tolerance = 1.25 in
  let s = summarize () in
  let rps2 = (List.find (fun r -> r.cores = 2) s.runs).rps in
  match Util.perf_json_number ~path ~key:"rps_2core" with
  | None ->
      Printf.eprintf
        "throughput gate: no \"rps_2core\" in %s — regenerate with: \
         perf_smoke.exe --write-throughput %s\n"
        path path;
      exit 2
  | Some baseline ->
      let ratio = baseline /. rps2 in
      Printf.printf
        "throughput gate: %.0f req/s at 2 cores vs %.0f baseline (%.2fx), \
         2-core speedup %.2fx, K=8 amortization %.2fx\n"
        rps2 baseline ratio s.speedup_2core s.amortized_ratio_k8;
      if ratio > tolerance then begin
        Printf.eprintf
          "throughput gate: FAIL — 2-core req/s regressed %.0f%% past the \
           25%% budget.\nFix the regression or consciously re-baseline with: \
           perf_smoke.exe --write-throughput %s\n"
          ((ratio -. 1.0) *. 100.0)
          path;
        exit 1
      end;
      if s.speedup_2core < 1.6 then begin
        Printf.eprintf
          "throughput gate: FAIL — 1->2 core speedup %.2fx below the 1.6x \
           acceptance bar\n"
          s.speedup_2core;
        exit 1
      end;
      if s.amortized_ratio_k8 < 2.0 then begin
        Printf.eprintf
          "throughput gate: FAIL — K=8 ring amortization %.2fx below the 2x \
           acceptance bar\n"
          s.amortized_ratio_k8;
        exit 1
      end
