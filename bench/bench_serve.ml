(* PR 5 tentpole bench: attested end-to-end serving throughput of the
   multi-tenant plane (lib/serve) — SIGMA handshake bound to the
   attestation chain, AEAD request channels, batched dispatch through
   the SMP scheduler — over 1/2/4/8 simulated cores.

   Headline numbers (see BENCH_PR5.json and perf_smoke.ml): attested
   req/s at 2 cores must stay within 25% of the committed baseline, and
   the 1 -> 2 core speedup must hold at >= 1.5x.  Both are
   simulated-cycle quantities, so the gate is deterministic.  The
   one-time handshake cost (quote generation + verification + key
   agreement) is reported alongside so the amortization argument —
   attest once, serve thousands — stays visible. *)

open Hyperenclave

let clock_hz = 2.2e9 (* the paper's 2.2 GHz EPYC, as elsewhere *)
let tenants = 4
let rounds = 3
let reqs_per_client_round = 16
let value_bytes = 96

let handlers =
  [
    (1, fun _env input -> input);
    (2, fun (env : Backend.env) input ->
        (* A small stand-in for request work: charge compute
           proportional to the payload and echo it back transformed. *)
        env.Backend.compute (50 * Bytes.length input);
        Bytes.of_string (String.uppercase_ascii (Bytes.to_string input)));
  ]

let golden_of (p : Platform.t) =
  Verifier.golden_of_boot_log
    ~ek_public:(Tpm.ek_public p.Platform.tpm)
    (Monitor.boot_log p.Platform.monitor)

let payload seed i =
  Bytes.init value_bytes (fun j -> Char.chr (97 + ((seed + i + j) mod 26)))

type run = {
  cores : int;
  rps : float;
  served : int;
  makespan : int;
  handshake_cycles : int;
}

let measure ~cores =
  let p = Platform.create ~seed:951L () in
  let plane =
    Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p
      {
        Serve.default_config with
        Serve.sched =
          {
            Sched.default_config with
            Sched.cores;
            batch = 16;
            drop_on_error = true;
          };
        max_queue = 256;
      }
  in
  let golden = golden_of p in
  let clients =
    List.init tenants (fun i ->
        let name = Printf.sprintf "tenant-%d" i in
        let backend =
          Serve.add_tenant plane ~name
            {
              (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
              Backend.handlers;
              code_seed = Some name;
            }
        in
        let identity = Option.get backend.Backend.identity in
        let client =
          Serve.Client.create
            ~rng:(Rng.create ~seed:(Int64.of_int (3000 + i)))
            ~golden
            ~policy:
              {
                Verifier.expected_mrenclave = Some identity;
                expected_mrsigner = None;
                allow_debug = false;
              }
            ~expected_tenant:identity ()
        in
        (name, backend, client))
  in
  (* Handshakes: attest each tenant once, timing the first end to end
     (quote generation, wire encode/decode, verification, key
     agreement) on the shared platform clock. *)
  let handshake_cycles = ref 0 in
  List.iteri
    (fun i (name, _, client) ->
      let before = Cycles.now p.Platform.clock in
      (match Serve.handshake plane ~tenant:name (Serve.Client.hello client) with
      | Ok accept -> (
          match Serve.Client.establish client accept with
          | Ok () -> ()
          | Error r ->
              Format.eprintf "bench_serve: establish failed: %a@." Serve.pp_reject r;
              exit 2)
      | Error r ->
          Format.eprintf "bench_serve: handshake failed: %a@." Serve.pp_reject r;
          exit 2);
      if i = 0 then handshake_cycles := Cycles.now p.Platform.clock - before)
    clients;
  (* Serving: every client stages a sealed batch, one flush serves all
     tenants concurrently across the scheduler's cores. *)
  let served = ref 0 in
  for round = 0 to rounds - 1 do
    List.iteri
      (fun ci (_, _, client) ->
        for i = 0 to reqs_per_client_round - 1 do
          let req =
            Serve.Client.request client
              ~ecall:(1 + ((round + i) mod 2))
              (payload ((ci * 131) + round) i)
          in
          match Serve.submit plane req with
          | Ok () -> ()
          | Error r ->
              Format.eprintf "bench_serve: submit rejected: %a@." Serve.pp_reject r;
              exit 2
        done)
      clients;
    let replies = Serve.flush plane in
    List.iter
      (function
        | { Serve.r_result = Ok _; _ } -> incr served
        | { Serve.r_result = Error r; _ } ->
            Format.eprintf "bench_serve: request failed: %a@." Serve.pp_reject r;
            exit 2)
      replies
  done;
  let stats = Serve.sched_stats plane in
  (* The plane owns the tenant backends now: one destroy tears down
     everything, including the quoting enclave. *)
  Serve.destroy plane;
  {
    cores;
    rps =
      float_of_int stats.Sched.total_requests
      *. clock_hz
      /. float_of_int (max 1 stats.Sched.makespan);
    served = !served;
    makespan = stats.Sched.makespan;
    handshake_cycles = !handshake_cycles;
  }

type summary = { runs : run list; speedup_2core : float }

let summarize () =
  let runs = List.map (fun cores -> measure ~cores) [ 1; 2; 4; 8 ] in
  let rps_of n = (List.find (fun r -> r.cores = n) runs).rps in
  { runs; speedup_2core = rps_of 2 /. rps_of 1 }

let run () =
  Util.set_experiment "serve";
  Util.banner "Serve"
    "Attested serving plane: end-to-end req/s (handshake-keyed AEAD \
     channels, batched ECALL dispatch) vs simulated cores, 4 tenants.";
  let s = summarize () in
  Util.print_table
    ~columns:
      [ "cores"; "served"; "makespan (Mcyc)"; "attested req/s"; "handshake (cyc)" ]
    (List.map
       (fun r ->
         [
           string_of_int r.cores;
           string_of_int r.served;
           Printf.sprintf "%.2f" (float_of_int r.makespan /. 1e6);
           Printf.sprintf "%.0f" r.rps;
           string_of_int r.handshake_cycles;
         ])
       s.runs);
  Printf.printf "\n  1 -> 2 core speedup: %.2fx (gate: >= 1.5x)\n" s.speedup_2core;
  let h = (List.hd s.runs).handshake_cycles in
  let per_req =
    (List.find (fun r -> r.cores = 2) s.runs).makespan
    / max 1 (List.find (fun r -> r.cores = 2) s.runs).served
  in
  Printf.printf
    "  handshake amortization: one attestation costs ~%d served requests.\n"
    (h / max 1 per_req)

(* --- smoke + baseline file + regression gate -------------------------- *)

(* Fast 1-core sanity pass (`dune build @serve_smoke`): one tenant, one
   attested session, a handful of requests — fails loudly if the
   attested path breaks. *)
let smoke () =
  let r = measure ~cores:1 in
  if r.served <> tenants * rounds * reqs_per_client_round then begin
    Printf.eprintf "serve_smoke: FAIL — served %d of %d requests\n" r.served
      (tenants * rounds * reqs_per_client_round);
    exit 1
  end;
  Printf.printf
    "serve_smoke: OK — %d attested requests served at %.0f req/s (1 core), \
     handshake %d cycles\n"
    r.served r.rps r.handshake_cycles

let write_baseline path =
  let s = summarize () in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"hyperenclave-perf/1\",\n";
  List.iter
    (fun r ->
      Printf.fprintf oc "  \"attested_rps_%dcore\": %.1f,\n" r.cores r.rps)
    s.runs;
  Printf.fprintf oc "  \"serve_speedup_2core\": %.3f,\n" s.speedup_2core;
  Printf.fprintf oc "  \"handshake_cycles\": %d\n}\n"
    (List.hd s.runs).handshake_cycles;
  close_out oc;
  Printf.printf "serve baseline written to %s\n" path

(* Deterministic regression gate: recompute the 2-core attested
   throughput and fail on a >25% regression against the committed
   baseline, or if the scaling acceptance bar no longer holds. *)
let check_baseline path =
  let tolerance = 1.25 in
  let s = summarize () in
  let rps2 = (List.find (fun r -> r.cores = 2) s.runs).rps in
  match Util.perf_json_number ~path ~key:"attested_rps_2core" with
  | None ->
      Printf.eprintf
        "serve gate: no \"attested_rps_2core\" in %s — regenerate with: \
         perf_smoke.exe --write-serve %s\n"
        path path;
      exit 2
  | Some baseline ->
      let ratio = baseline /. rps2 in
      Printf.printf
        "serve gate: %.0f attested req/s at 2 cores vs %.0f baseline (%.2fx), \
         speedup %.2fx\n"
        rps2 baseline ratio s.speedup_2core;
      if ratio > tolerance then begin
        Printf.eprintf
          "serve gate: FAIL — attested req/s regressed %.0f%% past the 25%% \
           budget.\nFix the regression or consciously re-baseline with: \
           perf_smoke.exe --write-serve %s\n"
          ((ratio -. 1.0) *. 100.0)
          path;
        exit 1
      end;
      if s.speedup_2core < 1.5 then begin
        Printf.eprintf
          "serve gate: FAIL — 1->2 core speedup %.2fx below the 1.5x \
           acceptance bar\n"
          s.speedup_2core;
        exit 1
      end
