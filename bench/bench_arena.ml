(* PR 7 tentpole bench: the allocation-free attested data path.

   Three quantities gate regressions (see BENCH_PR7.json and
   perf_smoke.ml):

   - steady-state GC pressure: minor words allocated per attested
     request across submit+flush, with requests pre-sealed so only the
     plane's own allocations count.  The arena path must stay within
     25% of the committed baseline (and sits several times below the
     list-structured reference path it replaced);
   - attested req/s at 8 cores on the arena path must stay within 25%
     of the committed baseline and above the absolute 1.5x-over-PR6
     acceptance floor;
   - a single hot tenant (8 sessions, one enclave) must reach at least
     80% of the 8-core multi-tenant rate — the per-tenant ring sharding
     claim: one tenant's traffic saturates all cores. *)

open Hyperenclave

let clock_hz = 2.2e9

(* Absolute acceptance floor for the arena path: 1.5x the committed
   PR 6 zero-copy baseline (4,405,369 attested req/s at 8 cores). *)
let rps_8core_floor = 6.6e6

(* --- steady-state allocation accounting -------------------------------- *)

let alloc_warmup_rounds = 2
let alloc_rounds = 8
let alloc_reqs_per_round = 32

let attested_client plane ~p ~name =
  let backend =
    Serve.add_tenant plane ~name
      {
        (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
        Backend.handlers = Bench_serve.handlers;
        code_seed = Some name;
      }
  in
  let identity = Option.get backend.Backend.identity in
  let client =
    Serve.Client.create
      ~rng:(Rng.create ~seed:7001L)
      ~golden:(Bench_serve.golden_of p)
      ~policy:
        {
          Verifier.expected_mrenclave = Some identity;
          expected_mrsigner = None;
          allow_debug = false;
        }
      ~expected_tenant:identity ()
  in
  (match Serve.handshake plane ~tenant:name (Serve.Client.hello client) with
  | Ok accept -> (
      match Serve.Client.establish client accept with
      | Ok () -> ()
      | Error r ->
          Format.eprintf "bench_arena: establish failed: %a@." Serve.pp_reject r;
          exit 2)
  | Error r ->
      Format.eprintf "bench_arena: handshake failed: %a@." Serve.pp_reject r;
      exit 2);
  client

(* Minor words allocated per request by the plane itself (admission +
   flush + reply assembly), measured over a steady state: every request
   envelope is sealed up front, the arenas and rings are warmed by
   untimed rounds, then [Gc.minor_words] brackets the measured rounds. *)
let minor_words_per_request ~arena =
  let p = Platform.create ~seed:971L () in
  let plane =
    Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p
      {
        Serve.default_config with
        Serve.arena;
        sched =
          { Sched.default_config with Sched.batch = 16; drop_on_error = true };
      }
  in
  let client = attested_client plane ~p ~name:"alloc-tenant" in
  let rounds =
    List.init (alloc_warmup_rounds + alloc_rounds) (fun r ->
        List.init alloc_reqs_per_round (fun i ->
            Serve.Client.request client
              ~ecall:(1 + ((r + i) mod 2))
              (Bench_serve.payload r i)))
  in
  let serve round =
    List.iter
      (fun req ->
        match Serve.submit plane req with
        | Ok () -> ()
        | Error r ->
            Format.eprintf "bench_arena: submit rejected: %a@." Serve.pp_reject r;
            exit 2)
      round;
    List.iter
      (function
        | { Serve.r_result = Ok _; _ } -> ()
        | { Serve.r_result = Error r; _ } ->
            Format.eprintf "bench_arena: request failed: %a@." Serve.pp_reject r;
            exit 2)
      (Serve.flush plane)
  in
  let warmup, measured =
    let rec split n = function
      | rest when n = 0 -> ([], rest)
      | [] -> ([], [])
      | r :: rest ->
          let w, m = split (n - 1) rest in
          (r :: w, m)
    in
    split alloc_warmup_rounds rounds
  in
  List.iter serve warmup;
  let words0 = Gc.minor_words () in
  List.iter serve measured;
  let words1 = Gc.minor_words () in
  Serve.destroy plane;
  (words1 -. words0) /. float_of_int (alloc_rounds * alloc_reqs_per_round)

(* --- hot-tenant sharding ------------------------------------------------ *)

let hot_sessions = 8
let hot_rounds = 3
let hot_reqs_per_session_round = 8

type hot_run = { h_cores : int; h_rps : float; h_served : int }

(* One tenant, one enclave, [hot_sessions] attested sessions hammering
   it: the plane-wide block rotor must spread the single tenant's
   staged blocks across every ring shard (and so every core). *)
let measure_hot ~cores =
  let p = Platform.create ~seed:972L () in
  let plane =
    Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p
      {
        Serve.default_config with
        Serve.sched =
          {
            Sched.default_config with
            Sched.cores;
            batch = 16;
            drop_on_error = true;
          };
        max_queue = 256;
      }
  in
  let first = attested_client plane ~p ~name:"hot-tenant" in
  let others =
    List.init (hot_sessions - 1) (fun i ->
        let client =
          Serve.Client.create
            ~rng:(Rng.create ~seed:(Int64.of_int (7100 + i)))
            ~golden:(Bench_serve.golden_of p)
            ~policy:
              {
                Verifier.expected_mrenclave = None;
                expected_mrsigner = None;
                allow_debug = false;
              }
            ()
        in
        (match
           Serve.handshake plane ~tenant:"hot-tenant" (Serve.Client.hello client)
         with
        | Ok accept -> (
            match Serve.Client.establish client accept with
            | Ok () -> ()
            | Error r ->
                Format.eprintf "bench_arena: hot establish failed: %a@."
                  Serve.pp_reject r;
                exit 2)
        | Error r ->
            Format.eprintf "bench_arena: hot handshake failed: %a@."
              Serve.pp_reject r;
            exit 2);
        client)
  in
  let clients = first :: others in
  let served = ref 0 in
  for round = 0 to hot_rounds - 1 do
    List.iteri
      (fun ci client ->
        for i = 0 to hot_reqs_per_session_round - 1 do
          let req =
            Serve.Client.request client
              ~ecall:(1 + ((round + i) mod 2))
              (Bench_serve.payload ((ci * 131) + round) i)
          in
          match Serve.submit plane req with
          | Ok () -> ()
          | Error r ->
              Format.eprintf "bench_arena: hot submit rejected: %a@."
                Serve.pp_reject r;
              exit 2
        done)
      clients;
    List.iter
      (function
        | { Serve.r_result = Ok _; _ } -> incr served
        | { Serve.r_result = Error r; _ } ->
            Format.eprintf "bench_arena: hot request failed: %a@."
              Serve.pp_reject r;
            exit 2)
      (Serve.flush plane)
  done;
  let stats = Serve.sched_stats plane in
  Serve.destroy plane;
  {
    h_cores = cores;
    h_rps =
      float_of_int stats.Sched.total_requests
      *. clock_hz
      /. float_of_int (max 1 stats.Sched.makespan);
    h_served = !served;
  }

(* --- summary, baseline, gate -------------------------------------------- *)

type summary = {
  words_arena : float;
  words_reference : float;
  rps_8core : float;  (* 4-tenant arena path, from Bench_serve *)
  hot_runs : hot_run list;
  hot_rps_8core : float;
  hot_ratio : float;  (* hot single-tenant rate / multi-tenant rate *)
  hot_speedup_2core : float;
}

let summarize () =
  let words_arena = minor_words_per_request ~arena:true in
  let words_reference = minor_words_per_request ~arena:false in
  let rps_8core = (Bench_serve.measure ~cores:8).Bench_serve.rps in
  let hot_runs = List.map (fun cores -> measure_hot ~cores) [ 1; 2; 4; 8 ] in
  let hot_rps n = (List.find (fun r -> r.h_cores = n) hot_runs).h_rps in
  {
    words_arena;
    words_reference;
    rps_8core;
    hot_runs;
    hot_rps_8core = hot_rps 8;
    hot_ratio = hot_rps 8 /. rps_8core;
    hot_speedup_2core = hot_rps 2 /. hot_rps 1;
  }

let run () =
  Util.set_experiment "arena";
  Util.banner "Arena"
    "Allocation-free attested data path: minor words per request (arena \
     vs the list-structured reference oracle), 8-core throughput, and a \
     single hot tenant sharded across every core.";
  let s = summarize () in
  Printf.printf "  minor words per attested request (steady state):\n\n";
  Util.print_table
    ~columns:[ "path"; "words/req" ]
    [
      [ "arena"; Printf.sprintf "%.1f" s.words_arena ];
      [ "reference (lists)"; Printf.sprintf "%.1f" s.words_reference ];
      [
        "ratio";
        Printf.sprintf "%.2fx" (s.words_reference /. max 1e-9 s.words_arena);
      ];
    ];
  Printf.printf "\n  hot tenant (1 enclave, %d sessions) vs cores:\n\n"
    hot_sessions;
  Util.print_table
    ~columns:[ "cores"; "served"; "attested req/s" ]
    (List.map
       (fun r ->
         [
           string_of_int r.h_cores;
           string_of_int r.h_served;
           Printf.sprintf "%.0f" r.h_rps;
         ])
       s.hot_runs);
  Printf.printf
    "\n  8-core: %.0f req/s multi-tenant, %.0f hot tenant (%.0f%%, gate: >= \
     80%%)\n"
    s.rps_8core s.hot_rps_8core (s.hot_ratio *. 100.0);
  Printf.printf "  hot tenant 1 -> 2 core speedup: %.2fx (gate: >= 1.6x)\n"
    s.hot_speedup_2core

let write_baseline path =
  let s = summarize () in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"hyperenclave-perf/1\",\n";
  Printf.fprintf oc "  \"attested_rps_8core\": %.1f,\n" s.rps_8core;
  Printf.fprintf oc "  \"hot_tenant_rps_8core\": %.1f,\n" s.hot_rps_8core;
  Printf.fprintf oc "  \"hot_tenant_ratio\": %.3f,\n" s.hot_ratio;
  Printf.fprintf oc "  \"hot_speedup_2core\": %.3f,\n" s.hot_speedup_2core;
  Printf.fprintf oc "  \"minor_words_per_request\": %.1f,\n" s.words_arena;
  Printf.fprintf oc "  \"minor_words_per_request_reference\": %.1f\n}\n"
    s.words_reference;
  close_out oc;
  Printf.printf "arena baseline written to %s\n" path

(* Deterministic (cycles) + allocation (minor words) regression gate. *)
let check_baseline path =
  let tolerance = 1.25 in
  let s = summarize () in
  let read key =
    match Util.perf_json_number ~path ~key with
    | Some v -> v
    | None ->
        Printf.eprintf
          "arena gate: no \"%s\" in %s — regenerate with: perf_smoke.exe \
           --write-arena %s\n"
          key path path;
        exit 2
  in
  let rps_baseline = read "attested_rps_8core" in
  let words_baseline = read "minor_words_per_request" in
  let rps_ratio = rps_baseline /. s.rps_8core in
  let words_ratio = s.words_arena /. max 1e-9 words_baseline in
  Printf.printf
    "arena gate: %.0f attested req/s at 8 cores vs %.0f baseline (%.2fx), \
     %.1f minor words/req vs %.1f baseline (%.2fx), hot tenant %.0f%%\n"
    s.rps_8core rps_baseline rps_ratio s.words_arena words_baseline words_ratio
    (s.hot_ratio *. 100.0);
  if rps_ratio > tolerance then begin
    Printf.eprintf
      "arena gate: FAIL — 8-core attested req/s regressed %.0f%% past the \
       25%% budget.\nFix the regression or consciously re-baseline with: \
       perf_smoke.exe --write-arena %s\n"
      ((rps_ratio -. 1.0) *. 100.0)
      path;
    exit 1
  end;
  if s.rps_8core < rps_8core_floor then begin
    Printf.eprintf
      "arena gate: FAIL — %.0f attested req/s at 8 cores below the absolute \
       %.1fM acceptance floor (1.5x the PR 6 baseline)\n"
      s.rps_8core (rps_8core_floor /. 1e6);
    exit 1
  end;
  if words_ratio > tolerance then begin
    Printf.eprintf
      "arena gate: FAIL — %.1f minor words per request, %.0f%% past the \
       committed %.1f-word baseline's 25%% budget.\nAn allocation crept back \
       into the steady-state flush path; fix it or consciously re-baseline \
       with: perf_smoke.exe --write-arena %s\n"
      s.words_arena
      ((words_ratio -. 1.0) *. 100.0)
      words_baseline path;
    exit 1
  end;
  if s.hot_ratio < 0.8 then begin
    Printf.eprintf
      "arena gate: FAIL — a single hot tenant reaches only %.0f%% of the \
       8-core multi-tenant rate (gate: >= 80%%): ring sharding is not \
       spreading one tenant's traffic across the cores\n"
      (s.hot_ratio *. 100.0);
    exit 1
  end
