(* Wall-clock micro-benchmarks of the simulator itself, one per
   table/figure, via Bechamel.  These do not reproduce paper numbers (the
   paper's numbers are simulated cycles, printed by the other bench
   modules); they document that the harness is fast enough to iterate on
   and catch performance regressions in the models. *)

open Bechamel
open Toolkit
open Hyperenclave
module Nbench = Hyperenclave_workloads.Nbench
module Kvdb = Hyperenclave_workloads.Kvdb
module Httpd = Hyperenclave_workloads.Httpd
module Resp_kv = Hyperenclave_workloads.Resp_kv

let make_tests () =
  (* Shared fixtures, built once. *)
  let platform = Platform.create ~seed:111L () in
  let gu =
    Backend.hyperenclave platform ~mode:Sgx_types.GU
      ~handlers:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[] ()
  in
  let p_enclave =
    Urts.create ~kmod:platform.Platform.kmod ~proc:platform.Platform.proc
      ~rng:platform.Platform.rng ~signer:platform.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.P) with Urts.code_seed = "bs-p" }
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              tenv.Tenv.register_exception_handler ~vector:"#UD" (fun _ -> true);
              tenv.Tenv.raise_exception Sgx_types.Ud;
              Bytes.empty );
        ]
      ~ocalls:[]
  in
  let native_clock = Cycles.create () in
  let native =
    Backend.native ~clock:native_clock ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:1L)
      ~handlers:
        (Nbench.handlers () @ Kvdb.handlers ()
        @ Httpd.handlers ~pages:[ ("/x.html", 16384) ]
        @ Resp_kv.handlers ())
      ~ocalls:(Httpd.ocalls () @ Resp_kv.ocalls ())
  in
  ignore (Kvdb.load native ~records:1000);
  Resp_kv.load native ~records:256;
  let mem_sim =
    Mem_sim.create ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:2L) ~engine:Hw.Mem_crypto.Sme ()
  in
  let gen =
    Hyperenclave_workloads.Ycsb.create ~rng:(Rng.create ~seed:3L) ~records:256 ()
  in
  [
    Test.make ~name:"table1: GU empty ECALL"
      (Staged.stage (fun () -> ignore (gu.Backend.call ~id:1 ~direction:Edge.In ())));
    Test.make ~name:"table2: P-Enclave #UD"
      (Staged.stage (fun () ->
           ignore (Urts.ecall p_enclave ~id:1 ~direction:Edge.In ())));
    Test.make ~name:"fig7: 16KB in&out ECALL"
      (Staged.stage
         (let payload = Bytes.make 16384 'x' in
          fun () ->
            ignore (gu.Backend.call ~id:1 ~data:payload ~direction:Edge.In_out ())));
    Test.make ~name:"fig8a: numeric sort iter"
      (Staged.stage (fun () ->
           ignore
             (native.Backend.call ~id:(Nbench.ecall_id 0)
                ~data:(Nbench.encode_iterations 1) ~direction:Edge.In ())));
    Test.make ~name:"fig8b: SQLite YCSB op"
      (Staged.stage (fun () ->
           ignore (Kvdb.run_ops native ~records:1000 ~ops:1)));
    Test.make ~name:"fig8c: HTTP request"
      (Staged.stage (fun () -> ignore (Httpd.serve native ~path:"/x.html")));
    Test.make ~name:"fig8d: Redis op"
      (Staged.stage (fun () ->
           ignore (Resp_kv.op native (Hyperenclave_workloads.Ycsb.next_op_a gen))));
    Test.make ~name:"table3: null syscall"
      (Staged.stage (fun () -> Kernel.null_syscall platform.Platform.kernel));
    Test.make ~name:"fig10: MMU translate"
      (Staged.stage (fun () ->
           ignore
             (Mmu.translate platform.Platform.cpu ~access:Hw.Mmu.Read ~user:true
                (Hyperenclave_os.Process.mmap_base))));
    Test.make ~name:"fig11: 1MB random scan"
      (Staged.stage (fun () ->
           Mem_sim.random_access mem_sim ~base:0 ~working_set:(1 lsl 20)
             ~count:1024 ~write:false));
    (* Optimized-kernel micro-benchmarks: one entry per hot path touched
       by the wall-clock fast-path work, so regressions show up here
       before they show up as minutes on the full harness. *)
    Test.make ~name:"kernel: sha256 4KB digest"
      (Staged.stage
         (let block = Bytes.make 4096 's' in
          fun () -> ignore (Crypto.Sha256.digest_bytes block)));
    Test.make ~name:"kernel: aes-xts 4KB"
      (Staged.stage
         (let key = Bytes.make 16 'k' and buf = Bytes.make 4096 'p' in
          fun () -> ignore (Crypto.Aes.xts_encrypt ~key ~tweak:0x40000 buf)));
    Test.make ~name:"kernel: aes-ctr 4KB"
      (Staged.stage
         (let key = Bytes.make 16 'k'
          and nonce = Bytes.make 12 'n'
          and buf = Bytes.make 4096 'p' in
          fun () -> ignore (Crypto.Aes.ctr_transform ~key ~nonce buf)));
    Test.make ~name:"kernel: hmac 1KB"
      (Staged.stage
         (let key = Bytes.make 32 'k' and msg = Bytes.make 1024 'm' in
          fun () -> ignore (Crypto.Hmac.hmac ~key msg)));
    Test.make ~name:"kernel: seq_scan 1MB"
      (Staged.stage (fun () ->
           Mem_sim.seq_scan mem_sim ~base:0 ~bytes:(1 lsl 20) ~write:false));
    Test.make ~name:"kernel: mmu warm write"
      (Staged.stage (fun () ->
           ignore
             (Mmu.translate platform.Platform.cpu ~access:Hw.Mmu.Write
                ~user:true
                (Hyperenclave_os.Process.mmap_base))));
  ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Bechamel.Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
  in
  let tests = Test.make_grouped ~name:"hyperenclave" ~fmt:"%s %s" (make_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let run () =
  Util.banner "Bechamel" "Wall-clock cost of the simulator (ns per op).";
  let results = benchmark () in
  let clock_results =
    Hashtbl.find results (Bechamel.Measure.label Instance.monotonic_clock)
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some [ x ] -> Printf.sprintf "%.0f ns" x
        | Some _ | None -> "n/a"
      in
      rows := [ name; estimate ] :: !rows)
    clock_results;
  Util.print_table ~columns:[ "benchmark"; "per run" ]
    (List.sort compare !rows)
