(* Table 2: average cycles to handle a #UD and a #PF exception inside the
   enclaves (Sec. 7.2).

   #UD: the enclave executes an undefined instruction repeatedly; the
   handler advances the instruction pointer.  P-Enclaves take the fault on
   their own IDT; GU (and SGX) go through AEX + two-phase handling.

   #PF: the garbage-collector scenario — revoke write permission on a
   buffer, touch it, restore the permission in the fault handler.
   P-Enclaves update their own level-1 table; GU-Enclaves hypercall into
   RustMonitor; SGX1 cannot change permissions after EINIT at all (the
   paper's footnote), so its cell is empty. *)

open Hyperenclave
module Sgx_model = Hyperenclave_sgx.Sgx_model

let ud_iterations = 1500
let pf_iterations = 400

let ud_ecall = 1
let gc_ecall = 2

(* --- HyperEnclave modes ------------------------------------------------------ *)

let measure_hyperenclave mode =
  let platform = Platform.create ~seed:202L () in
  let results = ref (0, 0) in
  let handlers =
    [
      ( ud_ecall,
        fun (tenv : Tenv.t) _input ->
          (* In-enclave #UD handler: advance RIP and return. *)
          tenv.Tenv.register_exception_handler ~vector:"#UD" (fun _ ->
              tenv.Tenv.compute tenv.Tenv.cost.Cost_model.ud_handler_work;
              true);
          let samples = ref [] in
          for _ = 1 to ud_iterations do
            let _, c =
              Cycles.time tenv.Tenv.clock (fun () ->
                  tenv.Tenv.raise_exception Sgx_types.Ud)
            in
            samples := c :: !samples
          done;
          results := (Util.median !samples, snd !results);
          Bytes.empty );
      ( gc_ecall,
        fun (tenv : Tenv.t) _input ->
          (* GC scenario: buffer pages whose W permission gets revoked;
             the #PF handler restores W (Sec. 7.2). *)
          let pages = 16 in
          let buf = tenv.Tenv.malloc (pages * 4096) in
          for i = 0 to pages - 1 do
            tenv.Tenv.write ~va:(buf + (i * 4096)) (Bytes.make 8 'a')
          done;
          tenv.Tenv.register_exception_handler ~vector:"#PF" (fun vector ->
              match vector with
              | Sgx_types.Pf { va; _ } ->
                  tenv.Tenv.compute tenv.Tenv.cost.Cost_model.pf_handler_work;
                  tenv.Tenv.set_page_perms ~vpn:(va / 4096)
                    ~perms:Page_table.rw ~grant:true;
                  true
              | Sgx_types.Ud | Sgx_types.Gp | Sgx_types.De -> false);
          let samples = ref [] in
          for i = 1 to pf_iterations do
            let page = i mod pages in
            let va = buf + (page * 4096) in
            tenv.Tenv.set_page_perms ~vpn:(va / 4096) ~perms:Page_table.ro
              ~grant:false;
            let _, c =
              Cycles.time tenv.Tenv.clock (fun () ->
                  tenv.Tenv.write ~va (Bytes.make 8 'b'))
            in
            (* subtract the copy cost of the 8-byte write itself *)
            samples := c :: !samples
          done;
          results := (fst !results, Util.median !samples);
          Bytes.empty );
    ]
  in
  let enclave =
    Urts.create ~kmod:platform.Platform.kmod ~proc:platform.Platform.proc
      ~rng:platform.Platform.rng ~signer:platform.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls:handlers ~ocalls:[]
  in
  let telemetry = Monitor.telemetry platform.Platform.monitor in
  Util.with_phase_deltas telemetry
    ~phase:(Printf.sprintf "#UD (%s)" (Sgx_types.mode_name mode))
    (fun () ->
      ignore
        (Urts.ecall enclave ~id:ud_ecall ~data:Bytes.empty ~direction:Edge.In ()));
  Util.with_phase_deltas telemetry
    ~phase:(Printf.sprintf "#PF GC (%s)" (Sgx_types.mode_name mode))
    (fun () ->
      ignore
        (Urts.ecall enclave ~id:gc_ecall ~data:Bytes.empty ~direction:Edge.In ()));
  Urts.destroy enclave;
  !results

(* --- SGX baseline ------------------------------------------------------------- *)

let measure_sgx_ud () =
  let clock = Cycles.create () in
  let rng = Rng.create ~seed:88L in
  let platform =
    Sgx_model.create_platform ~clock ~cost:Cost_model.default ~rng
      ~epc_bytes:Platform.sgx_epc_bytes
  in
  let signer, _ = Hyperenclave_crypto.Signature.generate rng in
  let enclave =
    Sgx_model.create_enclave platform ~code_seed:"t2" ~signer
      ~ecalls:
        [
          ( 1,
            fun enclave _ ->
              Sgx_model.register_exception_handler enclave ~vector:"#UD"
                (fun _ ->
                  Sgx_model.compute enclave
                    Cost_model.default.Cost_model.ud_handler_work;
                  true);
              let samples = ref [] in
              for _ = 1 to ud_iterations do
                let _, c =
                  Cycles.time clock (fun () ->
                      Sgx_model.raise_exception enclave Sgx_types.Ud)
                in
                samples := c :: !samples
              done;
              Bytes.of_string (string_of_int (Util.median !samples)) );
        ]
      ~ocalls:[]
  in
  int_of_string (Bytes.to_string (Sgx_model.ecall enclave ~id:1 ()))

let run () =
  Util.banner "Table 2"
    "Average cycles handling #UD and #PF inside enclaves; paper: #UD — SGX \
     28,561 / GU 17,490 / P 258; #PF (GC scenario) — GU 2,660 / P 1,132 (SGX1 \
     cannot modify page permissions after EINIT).";
  let sgx_ud = measure_sgx_ud () in
  let gu_ud, gu_pf = measure_hyperenclave Sgx_types.GU in
  let p_ud, p_pf = measure_hyperenclave Sgx_types.P in
  Util.print_table
    ~columns:[ ""; "Intel SGX"; "GU-Enclave"; "P-Enclave" ]
    [
      [ "#UD"; Util.cyc sgx_ud; Util.cyc gu_ud; Util.cyc p_ud ];
      [ "#PF"; "-"; Util.cyc gu_pf; Util.cyc p_pf ];
    ]
