(* PR 10 tentpole bench: the multi-monitor fleet.  Three headline
   numbers gate regressions (BENCH_PR10.json, perf_smoke.ml, 25%
   budget, plus a hard cross-node scaling floor):

   - cluster_rps_4x8: aggregate attested req/s over 4 nodes x 8 cores,
     16 tenants sharded by the consistent-hash LB, every request sealed
     under a per-session AEAD key and charged for its wire crossing;
   - scaling 1 -> 2 -> 4 nodes at fixed offered load: each doubling
     must gain at least 1.6x (nodes have independent clocks, so the
     fleet rate is total served over the slowest node's makespan);
   - cluster_p99_upgrade_cycles: p99 per-request simulated cost while a
     rolling monitor upgrade live-migrates every tenant out and home
     again under traffic;
   - cluster_pause_cycles: worst single live-migration pause (source
     export + wire + destination rebuild). *)

open Hyperenclave

let clock_hz = 2.2e9
let cores = 8
let tenants = 16
let rounds = 3
let batch = 8
let scaling_floor = 1.6

let tenant_gen () =
  {
    (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
    Backend.handlers = [ (1, fun _env input -> input) ];
  }

let build ~nodes ~seed =
  let cl =
    Cluster.create
      {
        Cluster.default_config with
        Cluster.nodes;
        seed;
        vnodes = 64;
        serve =
          {
            Serve.default_config with
            Serve.sched =
              {
                Sched.default_config with
                Sched.cores;
                batch = 16;
                drop_on_error = true;
              };
            max_queue = 256;
          };
      }
  in
  let names = List.init tenants (Printf.sprintf "tenant-%d") in
  List.iter (fun name -> ignore (Cluster.add_tenant cl ~name tenant_gen : int)) names;
  let clients =
    List.mapi
      (fun i name ->
        match
          Cluster.Client.connect cl
            ~rng:(Rng.create ~seed:(Int64.add seed (Int64.of_int (100 + i))))
            ~tenant:name ()
        with
        | Ok c -> c
        | Error e ->
            Format.eprintf "bench_cluster: connect %s failed: %a@." name
              Cluster.pp_error e;
            exit 2)
      names
  in
  (cl, clients)

let payload = Bytes.make 64 'x'

(* One batch per client; any rejected request is fatal.  Returns the
   per-call simulated cost samples (all clocks: node work + wire). *)
let drive_round clients =
  List.map
    (fun c ->
      let t0 = Cycles.total_ticked () in
      (match Cluster.Client.call c (List.init batch (fun _ -> (1, payload))) with
      | Ok replies ->
          List.iter
            (function
              | Ok _ -> ()
              | Error r ->
                  Format.eprintf "bench_cluster: request rejected: %a@."
                    Serve.pp_reject r;
                  exit 2)
            replies
      | Error e ->
          Format.eprintf "bench_cluster: call failed: %a@." Cluster.pp_error e;
          exit 2);
      (Cycles.total_ticked () - t0) / batch)
    clients

(* Aggregate attested rate: total scheduler throughput over the
   slowest node — nodes run on independent simulated clocks, so the
   fleet finishes when its most loaded node does. *)
let fleet_rate cl =
  let served = ref 0 and slowest = ref 1 in
  List.iter
    (fun n ->
      if Cluster.Node.alive n then begin
        let s = Serve.sched_stats (Cluster.Node.plane n) in
        served := !served + s.Sched.total_requests;
        if s.Sched.makespan > !slowest then slowest := s.Sched.makespan
      end)
    (Cluster.nodes cl);
  float_of_int !served *. clock_hz /. float_of_int !slowest

let measure_rate ~nodes ~seed =
  let cl, clients = build ~nodes ~seed in
  for _ = 1 to rounds do
    ignore (drive_round clients : int list)
  done;
  let rate = fleet_rate cl in
  List.iter Cluster.Client.close clients;
  Cluster.destroy cl;
  rate

(* p99 per-request cost while a rolling upgrade migrates every tenant
   out and back under live traffic, plus the worst migration pause. *)
let measure_upgrade ~seed =
  let cl, clients = build ~nodes:4 ~seed in
  let samples = ref (drive_round clients) in
  List.iter
    (fun n ->
      (match Cluster.upgrade_node cl (Cluster.Node.id n) with
      | Ok () -> ()
      | Error e ->
          Format.eprintf "bench_cluster: upgrade failed: %a@." Cluster.pp_error e;
          exit 2);
      samples := drive_round clients @ !samples)
    (Cluster.nodes cl);
  let sorted = List.sort compare !samples in
  let n = List.length sorted in
  let p99 = List.nth sorted (min (n - 1) (n * 99 / 100)) in
  let stats = Cluster.stats cl in
  List.iter Cluster.Client.close clients;
  Cluster.destroy cl;
  (p99, stats.Cluster.max_pause, stats.Cluster.migrations)

type summary = {
  rps_by_nodes : (int * float) list;
  rps_4x8 : float;
  scaling_1_2 : float;
  scaling_2_4 : float;
  p99_upgrade : int;
  pause : int;
  upgrade_migrations : int;
}

let summarize () =
  let rps_by_nodes =
    List.map (fun nodes -> (nodes, measure_rate ~nodes ~seed:1001L)) [ 1; 2; 4 ]
  in
  let rate n = List.assoc n rps_by_nodes in
  let p99_upgrade, pause, upgrade_migrations = measure_upgrade ~seed:1002L in
  {
    rps_by_nodes;
    rps_4x8 = rate 4;
    scaling_1_2 = rate 2 /. rate 1;
    scaling_2_4 = rate 4 /. rate 2;
    p99_upgrade;
    pause;
    upgrade_migrations;
  }

let run () =
  Util.set_experiment "cluster";
  Util.banner "Cluster"
    "Fleet-scale attested serving: 4 monitors x 8 cores, 16 tenants \
     behind the consistent-hash LB, live migration and rolling \
     upgrades under traffic on the deterministic network.";
  let s = summarize () in
  Printf.printf "\n  cross-node scaling (fixed offered load, %d tenants):\n\n"
    tenants;
  Util.print_table
    ~columns:[ "nodes"; "attested req/s"; "scaling vs half" ]
    (List.map
       (fun (nodes, rps) ->
         [
           string_of_int nodes;
           Printf.sprintf "%.0f" rps;
           (if nodes = 1 then "-"
            else
              Printf.sprintf "%.2fx"
                (rps /. List.assoc (nodes / 2) s.rps_by_nodes));
         ])
       s.rps_by_nodes);
  Printf.printf
    "\n  rolling upgrade: %d live migrations, p99 request cost %d cycles,\n\
    \  worst migration pause %d cycles (%.1f us at %.1f GHz)\n"
    s.upgrade_migrations s.p99_upgrade s.pause
    (float_of_int s.pause /. clock_hz *. 1e6)
    (clock_hz /. 1e9);
  Printf.printf "\n  headline: %.0f attested req/s at 4 nodes x %d cores\n"
    s.rps_4x8 cores

(* Fast sanity slice for @serve_smoke: two nodes, live migration under
   an open session, everything served. *)
let smoke () =
  let cl, clients = build ~nodes:2 ~seed:1003L in
  ignore (drive_round clients : int list);
  let victim = "tenant-0" in
  let dst = 1 - Cluster.owner cl ~tenant:victim in
  (match Cluster.migrate cl ~tenant:victim ~dst with
  | Ok _ -> ()
  | Error e ->
      Format.eprintf "cluster_smoke: FAIL — migrate: %a@." Cluster.pp_error e;
      exit 1);
  ignore (drive_round clients : int list);
  let bad =
    List.concat_map
      (fun (node, findings) ->
        List.map (fun _ -> node) findings)
      (Cluster.check cl)
  in
  if bad <> [] then begin
    Printf.eprintf "cluster_smoke: FAIL — invariant violations on nodes %s\n"
      (String.concat "," (List.map string_of_int bad));
    exit 1
  end;
  List.iter Cluster.Client.close clients;
  Cluster.destroy cl;
  Printf.printf "cluster_smoke: OK — %d tenants served across migration\n"
    tenants

let write_baseline path =
  let s = summarize () in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"hyperenclave-perf/1\",\n";
  Printf.fprintf oc "  \"cluster_rps_4x8\": %.1f,\n" s.rps_4x8;
  Printf.fprintf oc "  \"cluster_scaling_1_2\": %.2f,\n" s.scaling_1_2;
  Printf.fprintf oc "  \"cluster_scaling_2_4\": %.2f,\n" s.scaling_2_4;
  Printf.fprintf oc "  \"cluster_p99_upgrade_cycles\": %d,\n" s.p99_upgrade;
  Printf.fprintf oc "  \"cluster_pause_cycles\": %d\n}\n" s.pause;
  close_out oc;
  Printf.printf "cluster baseline written to %s\n" path

(* Deterministic gate: the 4-node rate within 25% of baseline, cost
   metrics within 25% the other way, and — unconditionally — at least
   1.6x per node-count doubling. *)
let check_baseline path =
  let tolerance = 1.25 in
  let s = summarize () in
  let need key =
    match Util.perf_json_number ~path ~key with
    | Some v -> v
    | None ->
        Printf.eprintf
          "cluster gate: no \"%s\" in %s — regenerate with: perf_smoke.exe \
           --write-cluster %s\n"
          key path path;
        exit 2
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf
          "cluster gate: FAIL — %s.\nFix the regression or consciously \
           re-baseline with: perf_smoke.exe --write-cluster %s\n"
          msg path;
        exit 1)
      fmt
  in
  let rps_base = need "cluster_rps_4x8" in
  Printf.printf "cluster gate: 4x8 %.0f req/s vs %.0f baseline (%.2fx)\n"
    s.rps_4x8 rps_base (rps_base /. s.rps_4x8);
  if rps_base /. s.rps_4x8 > tolerance then
    fail "4-node rate regressed %.0f%% past the 25%% budget"
      ((rps_base /. s.rps_4x8 -. 1.0) *. 100.0);
  List.iter
    (fun (label, ratio) ->
      Printf.printf "cluster gate: scaling %s = %.2fx (floor %.1fx)\n" label
        ratio scaling_floor;
      if ratio < scaling_floor then
        fail "cross-node scaling %s fell to %.2fx, under the %.1fx floor" label
          ratio scaling_floor)
    [ ("1->2", s.scaling_1_2); ("2->4", s.scaling_2_4) ];
  let p99_base = need "cluster_p99_upgrade_cycles" in
  Printf.printf "cluster gate: upgrade p99 %d cycles vs %.0f baseline\n"
    s.p99_upgrade p99_base;
  if float_of_int s.p99_upgrade > p99_base *. tolerance then
    fail "rolling-upgrade p99 grew %.0f%% past the 25%% budget"
      ((float_of_int s.p99_upgrade /. p99_base -. 1.0) *. 100.0);
  let pause_base = need "cluster_pause_cycles" in
  Printf.printf "cluster gate: migration pause %d cycles vs %.0f baseline\n"
    s.pause pause_base;
  if float_of_int s.pause > pause_base *. tolerance then
    fail "migration pause grew %.0f%% past the 25%% budget"
      ((float_of_int s.pause /. pause_base -. 1.0) *. 100.0)
