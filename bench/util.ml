(* Shared helpers for the benchmark harness: table rendering, CSV
   emission, and small statistics over simulated-cycle samples. *)

(* CSV mirroring (the artifact ships plotting scripts; `--csv DIR` makes
   every printed table also land as a data file). *)
let csv_dir : string option ref = ref None
let csv_experiment = ref "experiment"
let csv_counter = ref 0

let set_csv_dir dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  csv_dir := Some dir

let set_experiment name =
  csv_experiment := name;
  csv_counter := 0

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~columns rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr csv_counter;
      let path =
        Filename.concat dir
          (Printf.sprintf "%s_%d.csv" !csv_experiment !csv_counter)
      in
      let oc = open_out path in
      let emit cells =
        output_string oc (String.concat "," (List.map csv_escape cells));
        output_char oc '\n'
      in
      emit columns;
      List.iter emit rows;
      close_out oc

let banner title description =
  Printf.printf "\n=== %s ===\n%s\n\n" title description

let print_table ~columns rows =
  write_csv ~columns rows;
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length col) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        let width = List.nth widths i in
        if i = 0 then Printf.printf "  %-*s" width cell
        else Printf.printf "  %*s" width cell)
      cells;
    print_newline ()
  in
  print_row columns;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let median samples =
  let sorted = List.sort compare samples in
  List.nth sorted (List.length sorted / 2)

let mean samples =
  float_of_int (List.fold_left ( + ) 0 samples) /. float_of_int (List.length samples)

let pct x = Printf.sprintf "%.1f%%" x
let cyc n = Printf.sprintf "%d" n
let fcyc f = Printf.sprintf "%.0f" f

let human_bytes n =
  if n >= 1024 * 1024 then Printf.sprintf "%d MB" (n / 1024 / 1024)
  else if n >= 1024 then Printf.sprintf "%d KB" (n / 1024)
  else Printf.sprintf "%d B" n

let note fmt = Printf.printf fmt

(* --- wall-clock perf baseline ------------------------------------------
   `--perf-json FILE` records, per experiment, the wall-clock seconds it
   took to regenerate and the simulated cycles it accumulated
   (Cycles.total_ticked deltas).  Schema "hyperenclave-perf/1"; written
   by hand so the harness needs no JSON dependency. *)

type perf_entry = {
  perf_name : string;
  wall_seconds : float;
  simulated_cycles : int;
  minor_words : float;  (* GC minor words allocated regenerating it *)
}

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_perf_json ~path ~smoke_wall_seconds entries =
  let oc = open_out path in
  let total_wall =
    List.fold_left (fun acc e -> acc +. e.wall_seconds) 0.0 entries
  in
  Printf.fprintf oc "{\n  \"schema\": \"hyperenclave-perf/1\",\n";
  Printf.fprintf oc "  \"total_wall_seconds\": %.3f,\n" total_wall;
  (match smoke_wall_seconds with
  | Some s -> Printf.fprintf oc "  \"perf_smoke_wall_seconds\": %.3f,\n" s
  | None -> ());
  Printf.fprintf oc "  \"experiments\": [";
  List.iteri
    (fun i e ->
      Printf.fprintf oc
        "%s\n    { \"name\": \"%s\", \"wall_seconds\": %.3f, \"simulated_cycles\": %d, \"minor_words\": %.0f }"
        (if i = 0 then "" else ",")
        (json_escape e.perf_name) e.wall_seconds e.simulated_cycles
        e.minor_words)
    entries;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "\nperf baseline written to %s (%.1fs wall total)\n" path
    total_wall

(* Crude single-key number extraction, enough to read back the files
   [write_perf_json] produces without a JSON parser. *)
let perf_json_number ~path ~key =
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let needle = "\"" ^ key ^ "\":" in
  match
    (* Find the needle, then parse the number that follows. *)
    String.index_opt contents '{'
  with
  | None -> None
  | Some _ -> (
      let rec find_from i =
        if i + String.length needle > String.length contents then None
        else if String.sub contents i (String.length needle) = needle then
          Some (i + String.length needle)
        else find_from (i + 1)
      in
      match find_from 0 with
      | None -> None
      | Some start ->
          let stop = ref start in
          while
            !stop < String.length contents
            && (match contents.[!stop] with
               | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
               | _ -> false)
          do
            incr stop
          done;
          float_of_string_opt
            (String.trim (String.sub contents start (!stop - start))))

(* Per-phase telemetry deltas: wrap a bench phase, diff the monitor's
   counters across it, and print whatever moved.  Deltas only — earlier
   phases (enclave build, warm-up) don't pollute the numbers. *)
let with_phase_deltas telemetry ~phase f =
  let before = Hyperenclave.Telemetry.snapshot telemetry in
  let result = f () in
  let after = Hyperenclave.Telemetry.snapshot telemetry in
  (match Hyperenclave.Telemetry.delta_counters ~before ~after with
  | [] -> ()
  | deltas ->
      Printf.printf "\n  telemetry deltas — %s:\n" phase;
      List.iter
        (fun (name, d) -> Printf.printf "    %-28s %+10d\n" name d)
        deltas);
  result
