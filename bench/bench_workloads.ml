(* PR 9 tentpole bench: real LibOS workloads served through the attested
   plane — the Fig. 8b-8d request mixes, end to end.

   Where fig8b/fig8c/fig8d drive the workload kernels through direct
   backend calls, this experiment runs them as in-enclave services
   (lib/serve/services.ml): every request is sealed under a session key,
   admitted into the arena, decrypted in its ring slot, dispatched
   through the service's LibOS event loop (loopback socket + epoll), and
   the reply is sealed in place.  Three headline rates gate regressions
   (see BENCH_PR9.json and perf_smoke.ml, 25% budget):

   - resp_kv: zipfian YCSB-shaped RESP pipelines against the in-enclave
     store, SETs journaled to the AOF (Fig. 8d's redis);
   - kvdb: YCSB-A SQL against the B-tree engine, WAL-journaled, swept
     over loaded record counts (Fig. 8b's SQLite);
   - httpd: GETs streamed from the file-backed VFS docroot, swept over
     page sizes (Fig. 8c's lighttpd). *)

open Hyperenclave

let clock_hz = 2.2e9
let cores = 2
let rounds = 3
let reqs_per_round = 16

let build kind ~seed =
  let p = Platform.create ~seed () in
  let plane =
    Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p
      {
        Serve.default_config with
        Serve.sched =
          {
            Sched.default_config with
            Sched.cores;
            batch = 16;
            drop_on_error = true;
          };
        max_queue = 256;
      }
  in
  let name = Services.kind_name kind in
  let backend = Serve.add_tenant plane ~name (Services.backend_config kind) in
  let identity = Option.get backend.Backend.identity in
  let client =
    Serve.Client.create
      ~rng:(Rng.create ~seed:(Int64.add seed 1L))
      ~golden:(Bench_serve.golden_of p)
      ~policy:
        {
          Verifier.expected_mrenclave = Some identity;
          expected_mrsigner = None;
          allow_debug = false;
        }
      ~expected_tenant:identity ()
  in
  (match Serve.handshake plane ~tenant:name (Serve.Client.hello client) with
  | Ok accept -> (
      match Serve.Client.establish client accept with
      | Ok () -> ()
      | Error r ->
          Format.eprintf "bench_workloads: establish failed: %a@."
            Serve.pp_reject r;
          exit 2)
  | Error r ->
      Format.eprintf "bench_workloads: handshake failed: %a@." Serve.pp_reject r;
      exit 2);
  (p, plane, backend, client)

let admin (backend : Backend.t) data =
  backend.Backend.call ~id:Services.ecall_admin ~data ~direction:Edge.In_out ()

type run = {
  label : string;
  served : int;
  rps : float;
  mean_latency : int; (* cycles per served request, makespan-based *)
}

(* Drive [rounds] x [batch] requests from [next_request] through the
   plane and convert scheduler makespan into an attested service rate. *)
let drive kind plane client ~label ~batch next_request =
  let served = ref 0 in
  for round = 0 to rounds - 1 do
    for i = 0 to batch - 1 do
      let req =
        Serve.Client.request client ~ecall:Services.ecall_request
          (next_request ((round * batch) + i))
      in
      match Serve.submit plane req with
      | Ok () -> ()
      | Error r ->
          Format.eprintf "bench_workloads: submit rejected: %a@."
            Serve.pp_reject r;
          exit 2
    done;
    List.iter
      (fun reply ->
        match Serve.Client.read_reply client reply with
        | Ok body ->
            if not (Services.reply_ok kind body) then begin
              Format.eprintf "bench_workloads: %s refused a request: %s@." label
                (Bytes.to_string body);
              exit 2
            end;
            incr served
        | Error r ->
            Format.eprintf "bench_workloads: request failed: %a@."
              Serve.pp_reject r;
            exit 2)
      (Serve.flush plane)
  done;
  let stats = Serve.sched_stats plane in
  let makespan = max 1 stats.Sched.makespan in
  {
    label;
    served = !served;
    rps = float_of_int stats.Sched.total_requests *. clock_hz /. float_of_int makespan;
    mean_latency = makespan / max 1 stats.Sched.total_requests;
  }

(* --- resp_kv: YCSB-shaped RESP traffic (Fig. 8d) ------------------------ *)

let resp_records = 256

let measure_resp ~batch ~seed =
  let _p, plane, backend, client = build Services.Resp_kv ~seed in
  ignore (admin backend (Services.load_request ~records:resp_records));
  let gen =
    Workloads.Ycsb.create ~rng:(Rng.create ~seed:81L) ~records:resp_records ()
  in
  let r =
    drive Services.Resp_kv plane client
      ~label:(Printf.sprintf "batch %d" batch)
      ~batch
      (fun _ ->
        Services.request_of_op Services.Resp_kv (Workloads.Ycsb.next_op_a gen))
  in
  Serve.destroy plane;
  r

(* --- kvdb: YCSB-A SQL vs loaded records (Fig. 8b) ----------------------- *)

let measure_kvdb ~records ~seed =
  let _p, plane, backend, client = build Services.Kvdb ~seed in
  ignore (admin backend (Services.load_request ~records));
  let gen = Workloads.Ycsb.create ~rng:(Rng.create ~seed:82L) ~records () in
  let r =
    drive Services.Kvdb plane client
      ~label:(Printf.sprintf "%d records" records)
      ~batch:reqs_per_round
      (fun i ->
        Services.request_of_op Services.Kvdb
          (if i mod 8 = 7 then Workloads.Ycsb.next_scan gen ~max_len:8 ()
           else Workloads.Ycsb.next_op_a gen))
  in
  Serve.destroy plane;
  r

(* --- httpd: GETs vs page size (Fig. 8c) --------------------------------- *)

let measure_httpd ~page_bytes ~seed =
  let _p, plane, backend, client = build Services.Httpd ~seed in
  ignore (admin backend (Services.page_request ~path:"/index.html" ~bytes:page_bytes));
  let r =
    drive Services.Httpd plane client
      ~label:(Printf.sprintf "%d B pages" page_bytes)
      ~batch:reqs_per_round
      (fun _ -> Services.http_request ~path:"/index.html")
  in
  Serve.destroy plane;
  r

(* --- summary, smoke, baseline, gate ------------------------------------- *)

type summary = {
  resp_runs : run list; (* offered batch sweep: the 8d-style curve *)
  kvdb_runs : run list; (* record-count sweep: the 8b-style curve *)
  httpd_runs : run list; (* page-size sweep: the 8c-style curve *)
  rps_resp : float; (* headline rates for the gate *)
  rps_kvdb : float;
  rps_httpd : float;
}

let summarize () =
  let resp_runs =
    List.map (fun batch -> measure_resp ~batch ~seed:981L) [ 2; 8; 16 ]
  in
  let kvdb_runs =
    List.map (fun records -> measure_kvdb ~records ~seed:982L) [ 64; 256; 1024 ]
  in
  let httpd_runs =
    List.map
      (fun page_bytes -> measure_httpd ~page_bytes ~seed:983L)
      [ 1024; 16384; 65536 ]
  in
  let last l = List.nth l (List.length l - 1) in
  {
    resp_runs;
    kvdb_runs;
    httpd_runs;
    rps_resp = (last resp_runs).rps;
    rps_kvdb = (List.hd kvdb_runs).rps;
    rps_httpd = (List.hd httpd_runs).rps;
  }

let print_runs title runs =
  Printf.printf "\n  %s:\n\n" title;
  Util.print_table
    ~columns:[ "point"; "served"; "attested req/s"; "mean latency (cyc)" ]
    (List.map
       (fun r ->
         [
           r.label;
           string_of_int r.served;
           Printf.sprintf "%.0f" r.rps;
           string_of_int r.mean_latency;
         ])
       runs)

let run () =
  Util.set_experiment "workloads";
  Util.banner "Workloads"
    "Real LibOS workloads behind the attested plane (services layer): \
     RESP store, SQL engine and file-backed httpd served over AEAD \
     sessions through the arena ring, 2 cores, 1 tenant each.";
  let s = summarize () in
  print_runs "resp_kv — YCSB-A RESP, offered batch sweep (Fig. 8d shape)"
    s.resp_runs;
  print_runs "kvdb — YCSB-A SQL + scans vs loaded records (Fig. 8b shape)"
    s.kvdb_runs;
  print_runs "httpd — file-backed GETs vs page size (Fig. 8c shape)"
    s.httpd_runs;
  Printf.printf
    "\n  headline: resp_kv %.0f req/s, kvdb %.0f req/s, httpd %.0f req/s\n"
    s.rps_resp s.rps_kvdb s.rps_httpd

(* Fast end-to-end sanity pass, run from `dune build @serve_smoke`: each
   service serves one round over a real AEAD session; any refused or
   failed request is fatal. *)
let smoke () =
  let checks =
    [
      ("resp_kv", (measure_resp ~batch:4 ~seed:991L).served, rounds * 4);
      ("kvdb", (measure_kvdb ~records:32 ~seed:992L).served, rounds * reqs_per_round);
      ( "httpd",
        (measure_httpd ~page_bytes:4096 ~seed:993L).served,
        rounds * reqs_per_round );
    ]
  in
  List.iter
    (fun (name, served, expected) ->
      if served <> expected then begin
        Printf.eprintf "workloads_smoke: FAIL — %s served %d of %d requests\n"
          name served expected;
        exit 1
      end)
    checks;
  Printf.printf "workloads_smoke: OK — %s\n"
    (String.concat ", "
       (List.map
          (fun (name, served, _) -> Printf.sprintf "%s %d served" name served)
          checks))

let write_baseline path =
  let s = summarize () in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"hyperenclave-perf/1\",\n";
  Printf.fprintf oc "  \"workload_rps_resp_kv\": %.1f,\n" s.rps_resp;
  Printf.fprintf oc "  \"workload_rps_kvdb\": %.1f,\n" s.rps_kvdb;
  Printf.fprintf oc "  \"workload_rps_httpd\": %.1f\n}\n" s.rps_httpd;
  close_out oc;
  Printf.printf "workloads baseline written to %s\n" path

(* Deterministic regression gate: each service's headline attested rate
   must stay within 25% of the committed baseline. *)
let check_baseline path =
  let tolerance = 1.25 in
  let s = summarize () in
  let gate key measured =
    match Util.perf_json_number ~path ~key with
    | None ->
        Printf.eprintf
          "workloads gate: no \"%s\" in %s — regenerate with: perf_smoke.exe \
           --write-workloads %s\n"
          key path path;
        exit 2
    | Some baseline ->
        let ratio = baseline /. measured in
        Printf.printf "workloads gate: %s %.0f req/s vs %.0f baseline (%.2fx)\n"
          key measured baseline ratio;
        if ratio > tolerance then begin
          Printf.eprintf
            "workloads gate: FAIL — %s regressed %.0f%% past the 25%% \
             budget.\nFix the regression or consciously re-baseline with: \
             perf_smoke.exe --write-workloads %s\n"
            key
            ((ratio -. 1.0) *. 100.0)
            path;
          exit 1
        end
  in
  gate "workload_rps_resp_kv" s.rps_resp;
  gate "workload_rps_kvdb" s.rps_kvdb;
  gate "workload_rps_httpd" s.rps_httpd
