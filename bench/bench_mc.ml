(* Model-checker throughput: end-to-end states/second at a fixed depth,
   plus a component breakdown (apply+undo, oracle, encode, checkpoint/
   rollback) over a representative mid-build state, so a regression in
   one layer is attributable rather than a mystery slowdown. *)

module Mc = Hyperenclave.Mc
module World = Hyperenclave.Mc_world
module Alphabet = Hyperenclave.Mc_alphabet

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Drive the world into a mid-exploration state: both enclaves built,
   one initialized and entered, one page swapped out. *)
let representative_world () =
  let w = World.create World.default_config in
  let ok tr =
    match World.apply w tr with
    | World.Applied -> ()
    | World.Refused msg ->
        failwith (Printf.sprintf "setup refused %s: %s"
                    (Alphabet.to_string tr) msg)
    | World.Crashed msg ->
        failwith (Printf.sprintf "setup crashed %s: %s"
                    (Alphabet.to_string tr) msg)
  in
  List.iter ok
    [
      Alphabet.Create 0; Alphabet.Add 0; Alphabet.Add 0; Alphabet.Add_tcs 0;
      Alphabet.Init 0; Alphabet.Create 1; Alphabet.Add 1; Alphabet.Add_tcs 1;
      Alphabet.Swap_out; Alphabet.Enter 0;
    ];
  w

let component_pass ~iters =
  let w = representative_world () in
  let bench name f =
    let (), dt = time_it (fun () -> for _ = 1 to iters do f () done) in
    Printf.printf "  %-20s %8.2f us/op\n" name
      (1e6 *. dt /. float_of_int iters)
  in
  bench "oracle" (fun () -> ignore (World.oracle w));
  bench "encode" (fun () -> ignore (World.encode w));
  bench "checkpoint+rollback" (fun () ->
      let ck = World.checkpoint w in
      World.rollback w ck);
  let tr_bench tr =
    bench
      (Printf.sprintf "apply %s" (Alphabet.to_string tr))
      (fun () ->
        let ck = World.checkpoint w in
        World.push_frame_log w;
        (match World.apply w tr with
        | World.Applied | World.Refused _ -> ()
        | World.Crashed msg ->
            failwith (Alphabet.to_string tr ^ " crashed: " ^ msg));
        World.pop_restore_frames w;
        World.rollback w ck)
  in
  (* Touch 0 swap-ins the evicted page (ELDU: unseal 4 KiB); Swap_out
     seals one (EWB); einit attacks exercise the validation path;
     Aex/Enter are world switches. *)
  List.iter tr_bench
    [
      Alphabet.Touch 0; Alphabet.Swap_out; Alphabet.Aex 0;
      Alphabet.Atk_remove_running 0; Alphabet.Atk_bad_sig 1;
      Alphabet.Atk_ms_reserved 1; Alphabet.Init 1;
    ]

let end_to_end ~depth =
  let result, dt = time_it (fun () -> Mc.run ~depth World.default_config) in
  let s = result.Mc.stats in
  Printf.printf
    "  depth %d: %d states, %d transitions in %.2fs — %.0f states/s, %.0f \
     transitions/s\n"
    depth s.Mc.states s.Mc.transitions dt
    (float_of_int s.Mc.states /. dt)
    (float_of_int s.Mc.transitions /. dt);
  match result.Mc.violation with
  | None -> ()
  | Some v ->
      Printf.printf "  VIOLATION: %s\n" (Format.asprintf "%a" Mc.pp_violation v);
      exit 1

let run () =
  Printf.printf "mc component costs (representative state):\n";
  component_pass ~iters:2000;
  Printf.printf "mc end-to-end:\n";
  end_to_end ~depth:6;
  end_to_end ~depth:7
