(* Ablations over the design choices DESIGN.md calls out — not paper
   figures, but the trade-offs behind them:

   A1. EDMM (demand-committed heap) vs. SGX1-style full pre-allocation:
       Sec. 3.2 claims EDMM "reduces enclave build time"; quantify it.
   A2. Switchless OCALLs vs. regular OCALLs for chatty I/O, per mode.
   A3. The Table-2 GC scenario on all three modes (the paper shows GU/P;
       HU fills in the picture: hypercall-based like GU, minus nesting).
   A4. Timer-frequency sensitivity of the NBench overhead — how the
       Fig. 8a result degrades as interrupt (AEX) rates grow toward
       side-channel-attack territory.
   A5. The price of fault tolerance: ECALL latency with a transient
       injected fault absorbed by the SDK's retry/backoff path, vs the
       clean call, per mode.
   A6. The switchless call ring vs individual ECALLs, per mode: how much
       of the batching win survives when the world switch being
       amortized is a GU/P VMRUN round trip vs HU's cheaper SYSCALL
       path. *)

open Hyperenclave
module Nbench = Hyperenclave_workloads.Nbench

(* --- A1: enclave build time, pre-allocated vs EDMM -------------------------- *)

let build_time ~heap_pages ~preallocate =
  let p = Platform.create ~seed:801L () in
  (* App startup touches the whole heap once.  Pre-allocated: the heap was
     EADDed as data pages at build time (starting right after the 8 code
     pages).  EDMM: the heap is malloc'd and commits on first touch. *)
  let touch_all (tenv : Tenv.t) _ =
    let base =
      if preallocate then 0x1_0000_0000 + (8 * 4096)
      else tenv.Tenv.malloc (heap_pages * 4096)
    in
    for i = 0 to heap_pages - 1 do
      tenv.Tenv.touch ~va:(base + (i * 4096)) ~write:true
    done;
    Bytes.empty
  in
  let config =
    {
      (Urts.default_config Sgx_types.GU) with
      Urts.elrange_pages = heap_pages + 64;
      data_pages = (if preallocate then heap_pages else 8);
    }
  in
  let build_start = Cycles.now p.Platform.clock in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer ~config
      ~ecalls:[ (1, touch_all) ]
      ~ocalls:[]
  in
  let build = Cycles.now p.Platform.clock - build_start in
  let _, first_use =
    Cycles.time p.Platform.clock (fun () ->
        ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ()))
  in
  Urts.destroy handle;
  (build, first_use)

let ablation_edmm () =
  Util.banner "Ablation A1"
    "Enclave build time: SGX1-style full pre-allocation vs EDMM demand \
     commit (Sec. 3.2: EDMM 'reduces enclave build time').";
  let rows =
    List.map
      (fun heap_pages ->
        let pre_build, pre_use = build_time ~heap_pages ~preallocate:true in
        let edmm_build, edmm_use = build_time ~heap_pages ~preallocate:false in
        [
          Printf.sprintf "%d KB heap" (heap_pages * 4);
          Printf.sprintf "%.2f Mcyc" (float_of_int pre_build /. 1e6);
          Printf.sprintf "%.2f Mcyc" (float_of_int edmm_build /. 1e6);
          Printf.sprintf "%.1fx" (float_of_int pre_build /. float_of_int edmm_build);
          Printf.sprintf "%.2f Mcyc" (float_of_int pre_use /. 1e6);
          Printf.sprintf "%.2f Mcyc" (float_of_int edmm_use /. 1e6);
        ])
      [ 256; 1024; 4096 ]
  in
  Util.print_table
    ~columns:
      [ "heap"; "build pre"; "build EDMM"; "speedup"; "1st use pre"; "1st use EDMM" ]
    rows

(* --- A2: switchless vs regular OCALLs ---------------------------------------- *)

let ablation_switchless () =
  Util.banner "Ablation A2"
    "Chatty I/O (1,000 tiny OCALLs): regular world switches vs switchless \
     worker-thread calls, per operation mode.";
  let rows =
    List.map
      (fun mode ->
        let p = Platform.create ~seed:802L () in
        let measure switchless =
          let handle =
            Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
              ~rng:p.Platform.rng ~signer:p.Platform.signer
              ~config:
                {
                  (Urts.default_config mode) with
                  Urts.code_seed =
                    Printf.sprintf "a2-%s-%b" (Sgx_types.mode_name mode) switchless;
                }
              ~ecalls:
                [
                  ( 1,
                    fun (tenv : Tenv.t) _ ->
                      for _ = 1 to 1000 do
                        if switchless then
                          ignore
                            (tenv.Tenv.ocall_switchless ~id:9
                               ~data:(Bytes.of_string "w") ())
                        else
                          ignore (tenv.Tenv.ocall ~id:9 ~data:(Bytes.of_string "w") Edge.In)
                      done;
                      Bytes.empty );
                ]
              ~ocalls:[ (9, fun _ -> Bytes.empty) ]
          in
          let _, cycles =
            Cycles.time p.Platform.clock (fun () ->
                ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ()))
          in
          Urts.destroy handle;
          cycles / 1000
        in
        let regular = measure false in
        let switchless = measure true in
        [
          Sgx_types.mode_name mode;
          Printf.sprintf "%d cyc" regular;
          Printf.sprintf "%d cyc" switchless;
          Printf.sprintf "%.1fx" (float_of_int regular /. float_of_int switchless);
        ])
      Sgx_types.all_modes
  in
  Util.print_table ~columns:[ "mode"; "OCALL"; "switchless"; "speedup" ] rows

(* --- A3: GC scenario across all modes ----------------------------------------- *)

let gc_fault_cost mode =
  let p = Platform.create ~seed:803L () in
  let result = ref 0 in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let buf = tenv.Tenv.malloc (8 * 4096) in
              for i = 0 to 7 do
                tenv.Tenv.write ~va:(buf + (i * 4096)) (Bytes.of_string "x")
              done;
              tenv.Tenv.register_exception_handler ~vector:"#PF" (fun vector ->
                  match vector with
                  | Sgx_types.Pf { va; _ } ->
                      tenv.Tenv.compute tenv.Tenv.cost.Cost_model.pf_handler_work;
                      tenv.Tenv.set_page_perms ~vpn:(va / 4096)
                        ~perms:Page_table.rw ~grant:true;
                      true
                  | _ -> false);
              let samples = ref [] in
              for i = 1 to 200 do
                let va = buf + (i mod 8 * 4096) in
                tenv.Tenv.set_page_perms ~vpn:(va / 4096) ~perms:Page_table.ro
                  ~grant:false;
                let _, c =
                  Cycles.time tenv.Tenv.clock (fun () ->
                      tenv.Tenv.write ~va (Bytes.of_string "y"))
                in
                samples := c :: !samples
              done;
              result := Util.median !samples;
              Bytes.empty );
        ]
      ~ocalls:[]
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle;
  !result

let ablation_gc_modes () =
  Util.banner "Ablation A3"
    "The Table-2 GC #PF scenario on every mode (paper reports GU and P).";
  Util.print_table ~columns:[ "mode"; "#PF handled (cycles)" ]
    (List.map
       (fun mode ->
         [ Sgx_types.mode_name mode; Util.cyc (gc_fault_cost mode) ])
       [ Sgx_types.GU; Sgx_types.HU; Sgx_types.P ])

(* --- A4: timer-rate sensitivity ------------------------------------------------ *)

let ablation_timer_rate () =
  Util.banner "Ablation A4"
    "NBench (numeric sort) relative score vs timer-interrupt period: the \
     Fig. 8a overhead as tick rates climb toward interrupt-attack rates.";
  let run_with_period backend_kind period =
    let handlers =
      [
        ( 1,
          fun (env : Backend.env) input ->
            let iterations = int_of_string (Bytes.to_string input) in
            let rng = Rng.create ~seed:4242L in
            let timer =
              Hyperenclave_workloads.Timer.create ~period env
            in
            for _ = 1 to iterations do
              (* one numeric-sort-sized chunk of work *)
              let a = Array.init 2048 (fun _ -> Rng.int rng 100000) in
              Array.sort compare a;
              env.Backend.compute (2048 * 11 * 6);
              Hyperenclave_workloads.Timer.check timer env
            done;
            Bytes.empty );
      ]
    in
    let backend =
      match backend_kind with
      | `Native ->
          Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
            ~rng:(Rng.create ~seed:1L) ~handlers ~ocalls:[]
      | `Gu ->
          let p = Platform.create ~seed:804L () in
          Backend.hyperenclave p ~mode:Sgx_types.GU ~handlers ~ocalls:[] ()
    in
    let _, cycles =
      Cycles.time backend.Backend.clock (fun () ->
          backend.Backend.call ~id:1 ~data:(Bytes.of_string "40")
            ~direction:Edge.In ()
          |> ignore)
    in
    backend.Backend.destroy ();
    cycles
  in
  let rows =
    List.map
      (fun (label, period) ->
        let native = run_with_period `Native period in
        let gu = run_with_period `Gu period in
        [
          label;
          Printf.sprintf "%.3f" (float_of_int native /. float_of_int gu);
        ])
      [
        ("1 kHz (2.2M cyc)", 2_200_000);
        ("4 kHz (550k cyc)", 550_000);
        ("20 kHz (110k cyc)", 110_000);
        ("100 kHz (22k cyc)", 22_000);
      ]
  in
  Util.print_table ~columns:[ "tick rate"; "GU relative score" ] rows

(* --- A5: retry/backoff cost of an absorbed transient fault ------------------ *)

let ablation_fault_retry () =
  Util.banner "Ablation A5"
    "Cost of fault tolerance: one transient fault on the ECALL path, \
     absorbed by the uRTS bounded-retry/backoff loop, vs the clean call \
     (cycles; deterministic schedules from lib/fault).";
  let measure mode ~faulted =
    let p = Platform.create ~seed:805L () in
    let handle =
      Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
        ~rng:p.Platform.rng ~signer:p.Platform.signer
        ~config:(Urts.default_config mode)
        ~ecalls:[ (1, fun _tenv input -> input) ]
        ~ocalls:[]
    in
    (* Warm call so both columns start from identical TLB/paging state. *)
    ignore (Urts.ecall handle ~id:1 ~data:(Bytes.of_string "w") ~direction:Edge.In_out ());
    let tel = Telemetry.create () in
    if faulted then
      Fault.install ~telemetry:tel
        [ { Fault.site = "sdk.ms_copy_in"; nth = 1; kind = Fault.Transient } ];
    let _, cycles =
      Cycles.time p.Platform.clock (fun () ->
          ignore
            (Urts.ecall handle ~id:1 ~data:(Bytes.make 1024 'x')
               ~direction:Edge.In_out ()))
    in
    Fault.clear ();
    Urts.destroy handle;
    (cycles, Telemetry.counter tel "fault.retried")
  in
  let rows =
    List.map
      (fun mode ->
        let clean, _ = measure mode ~faulted:false in
        let faulted, retries = measure mode ~faulted:true in
        [
          Sgx_types.mode_name mode;
          string_of_int clean;
          string_of_int faulted;
          Printf.sprintf "%+d" (faulted - clean);
          string_of_int retries;
        ])
      Sgx_types.all_modes
  in
  Util.print_table
    ~columns:[ "mode"; "clean ECALL"; "1 transient"; "delta"; "retries" ]
    rows;
  Printf.printf
    "  The delta is one aborted marshalling leg + backoff + a full re-run:\n\
    \  bounded, typed, and invisible to the caller.\n"

(* --- A6: the switchless call ring, per operation mode ----------------------- *)

let ablation_batching () =
  Util.banner "Ablation A6"
    "Switchless ECALL ring vs individual calls at K = 8, per mode: the \
     ring amortizes one world switch over the batch, so the win tracks \
     how expensive that switch is (GU/P: VMRUN round trip; HU: SYSCALL).";
  let measure mode =
    let p = Platform.create ~seed:806L () in
    let backend =
      Backend.hyperenclave p ~mode
        ~handlers:[ (1, fun (_ : Backend.env) input -> input) ]
        ~ocalls:[] ()
    in
    let reqs = List.init 8 (fun i -> (1, Bytes.of_string (string_of_int i))) in
    (* Warm call so both columns start from identical paging state. *)
    ignore
      (backend.Backend.call ~id:1 ~data:Bytes.empty ~direction:Edge.In_out ());
    let _, batched =
      Cycles.time backend.Backend.clock (fun () ->
          ignore (backend.Backend.call_batch ~reqs ()))
    in
    let _, unbatched =
      Cycles.time backend.Backend.clock (fun () ->
          List.iter
            (fun (id, data) ->
              ignore
                (backend.Backend.call ~id ~data ~direction:Edge.In_out ()))
            reqs)
    in
    backend.Backend.destroy ();
    (batched, unbatched)
  in
  let rows =
    List.map
      (fun mode ->
        let batched, unbatched = measure mode in
        [
          Sgx_types.mode_name mode;
          string_of_int batched;
          string_of_int unbatched;
          string_of_int (batched / 8);
          string_of_int (unbatched / 8);
          Printf.sprintf "%.2fx" (float_of_int unbatched /. float_of_int batched);
        ])
      Sgx_types.all_modes
  in
  Util.print_table
    ~columns:
      [ "mode"; "K=8 batched"; "8 single"; "cyc/req ring"; "cyc/req single"; "win" ]
    rows

let run () =
  ablation_edmm ();
  ablation_switchless ();
  ablation_gc_modes ();
  ablation_timer_rate ();
  ablation_fault_retry ();
  ablation_batching ()
