(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. 7 and Appendix A).  `main.exe` runs them all;
   `main.exe <id> [...]` runs a subset; `main.exe --bechamel` additionally
   runs wall-clock micro-benchmarks of the simulator.

   Expected-vs-measured commentary lives in EXPERIMENTS.md. *)

let experiments =
  [
    ("table1", ("edge-call latencies (ECALL/OCALL/EENTER/EEXIT)", Bench_table1.run));
    ("table2", ("in-enclave exception handling (#UD, #PF/GC)", Bench_table2.run));
    ("fig7", ("marshalling-buffer overhead", Bench_fig7.run));
    ("fig8a", ("NBench relative scores", Bench_fig8a.run));
    ("fig8b", ("SQLite YCSB-A throughput vs records", Bench_fig8b.run));
    ("fig8c", ("Lighttpd throughput vs page size", Bench_fig8c.run));
    ("fig8d", ("Redis latency-throughput", Bench_fig8d.run));
    ("table3", ("LMBench + kernel build virtualization overhead", Bench_table3.run));
    ("fig10", ("SPEC CPU 2017 virtualization overhead", Bench_fig10.run));
    ("fig11", ("memory-encryption latency scan", Bench_fig11.run));
    ("ablation", ("design-choice ablations (not in the paper)", Bench_ablation.run));
    ( "throughput",
      ("SMP scheduler req/s scaling + switchless ring (PR 4)", Bench_throughput.run)
    );
    ( "serve",
      ("attested serving plane end-to-end req/s (PR 5)", Bench_serve.run) );
    ( "zerocopy",
      ( "zero-copy path: OCALL reply ring + ticket resumption (PR 6)",
        Bench_zerocopy.run ) );
    ( "arena",
      ( "allocation-free data path: arenas, in-slot envelopes, sharding (PR 7)",
        Bench_arena.run ) );
    ( "workloads",
      ( "LibOS services behind the attested plane: Fig. 8b-8d mixes (PR 9)",
        Bench_workloads.run ) );
    ( "cluster",
      ( "multi-monitor fleet: scaling, live migration, rolling upgrade (PR 10)",
        Bench_cluster.run ) );
    ("isa", ("Sec. 8 cross-platform cost projection", Bench_isa.run));
    ( "mc",
      ( "model-checker throughput: states/s + component breakdown (PR 8)",
        Bench_mc.run ) );
  ]

let usage () =
  print_endline
    "usage: main.exe [--bechamel] [--csv DIR] [--perf-json FILE] [experiment \
     ...]";
  print_endline "experiments:";
  List.iter
    (fun (id, (description, _)) -> Printf.printf "  %-8s %s\n" id description)
    experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let bechamel = List.mem "--bechamel" args in
  let perf_json = ref None in
  (* --csv DIR mirrors every printed table into DIR as CSV files;
     --perf-json FILE records per-experiment wall-clock + simulated-cycle
     totals (the PR-level perf baseline). *)
  let rec extract_csv acc = function
    | "--csv" :: dir :: rest ->
        Util.set_csv_dir dir;
        extract_csv acc rest
    | "--perf-json" :: file :: rest ->
        perf_json := Some file;
        extract_csv acc rest
    | arg :: rest -> extract_csv (arg :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_csv [] args in
  let selected =
    List.filter (fun a -> a <> "--bechamel" && a <> "--all") args
  in
  match List.find_opt (fun a -> not (List.mem_assoc a experiments)) selected with
  | Some unknown when unknown <> "--help" && unknown <> "-h" ->
      Printf.printf "unknown experiment: %s\n" unknown;
      usage ();
      exit 1
  | Some _ ->
      usage ();
      exit 0
  | None ->
      let to_run = if selected = [] then List.map fst experiments else selected in
      print_endline
        "HyperEnclave reproduction benchmark harness (simulated cycles; see \
         EXPERIMENTS.md for paper-vs-measured notes)";
      let perf_entries =
        List.map
          (fun id ->
            Util.set_experiment id;
            let _, run = List.assoc id experiments in
            let wall0 = Unix.gettimeofday () in
            let cycles0 = Hyperenclave.Cycles.total_ticked () in
            let words0 = Gc.minor_words () in
            run ();
            {
              Util.perf_name = id;
              wall_seconds = Unix.gettimeofday () -. wall0;
              simulated_cycles = Hyperenclave.Cycles.total_ticked () - cycles0;
              minor_words = Gc.minor_words () -. words0;
            })
          to_run
      in
      (match !perf_json with
      | None -> ()
      | Some path ->
          (* Time the perf_smoke slice too so the committed baseline
             carries the reference the smoke gate compares against. *)
          let wall0 = Unix.gettimeofday () in
          Smoke.run ();
          let smoke = Unix.gettimeofday () -. wall0 in
          Util.write_perf_json ~path ~smoke_wall_seconds:(Some smoke)
            perf_entries);
      if bechamel then Bechamel_suite.run ()
