(* Wall-clock regression gate: re-run the deterministic Smoke slice and
   compare against the "perf_smoke_wall_seconds" committed in the repo's
   perf baseline (BENCH_PR2.json, produced by `main.exe --perf-json`).
   Exits non-zero — loudly — if the slice is more than 25% slower than
   the baseline.

   Run it next to the test suite with `dune build @perf_smoke`.  It is a
   separate alias rather than part of @runtest on purpose: wall-clock
   checks are machine-sensitive, and the tier-1 suite must stay
   deterministic.  Re-baseline with
   `main.exe --perf-json BENCH_PR2.json table1 fig7 fig11`
   when hardware or an intentional perf trade-off changes the reference. *)

let tolerance = 1.25

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline
      "usage: perf_smoke.exe BASELINE.json [THROUGHPUT_BASELINE.json] \
       [SERVE_BASELINE.json] [ZEROCOPY_BASELINE.json] [ARENA_BASELINE.json] \
       [WORKLOADS_BASELINE.json]\n\
      \       perf_smoke.exe --write-throughput FILE\n\
      \       perf_smoke.exe --write-serve FILE\n\
      \       perf_smoke.exe --write-zerocopy FILE\n\
      \       perf_smoke.exe --write-arena FILE\n\
      \       perf_smoke.exe --write-workloads FILE\n\
      \       perf_smoke.exe --write-cluster FILE\n\
      \       perf_smoke.exe --serve-smoke";
    exit 2
  end;
  (* Baseline (re)generation for the deterministic gates. *)
  if Sys.argv.(1) = "--write-throughput" then begin
    if Array.length Sys.argv < 3 then begin
      prerr_endline "usage: perf_smoke.exe --write-throughput FILE";
      exit 2
    end;
    Bench_throughput.write_baseline Sys.argv.(2);
    exit 0
  end;
  if Sys.argv.(1) = "--write-serve" then begin
    if Array.length Sys.argv < 3 then begin
      prerr_endline "usage: perf_smoke.exe --write-serve FILE";
      exit 2
    end;
    Bench_serve.write_baseline Sys.argv.(2);
    exit 0
  end;
  if Sys.argv.(1) = "--write-zerocopy" then begin
    if Array.length Sys.argv < 3 then begin
      prerr_endline "usage: perf_smoke.exe --write-zerocopy FILE";
      exit 2
    end;
    Bench_zerocopy.write_baseline Sys.argv.(2);
    exit 0
  end;
  if Sys.argv.(1) = "--write-arena" then begin
    if Array.length Sys.argv < 3 then begin
      prerr_endline "usage: perf_smoke.exe --write-arena FILE";
      exit 2
    end;
    Bench_arena.write_baseline Sys.argv.(2);
    exit 0
  end;
  if Sys.argv.(1) = "--write-workloads" then begin
    if Array.length Sys.argv < 3 then begin
      prerr_endline "usage: perf_smoke.exe --write-workloads FILE";
      exit 2
    end;
    Bench_workloads.write_baseline Sys.argv.(2);
    exit 0
  end;
  if Sys.argv.(1) = "--write-cluster" then begin
    if Array.length Sys.argv < 3 then begin
      prerr_endline "usage: perf_smoke.exe --write-cluster FILE";
      exit 2
    end;
    Bench_cluster.write_baseline Sys.argv.(2);
    exit 0
  end;
  (* Fast attested-path sanity run (`dune build @serve_smoke`): the echo
     plane at 1 core, then every LibOS service end to end. *)
  if Sys.argv.(1) = "--serve-smoke" then begin
    Bench_serve.smoke ();
    Bench_workloads.smoke ();
    Bench_cluster.smoke ();
    exit 0
  end;
  (* Deterministic simulated-cycle gates first: scheduler throughput
     scaling + ring amortization vs BENCH_PR4.json (PR 4), attested
     serving throughput vs BENCH_PR5.json (PR 5), the zero-copy path
     (8-core throughput, OCALL reply ring, resumption) vs BENCH_PR6.json
     (PR 6), then the allocation-free arena path (minor words/request,
     8-core throughput, hot-tenant sharding) vs BENCH_PR7.json (PR 7). *)
  if Array.length Sys.argv > 2 then Bench_throughput.check_baseline Sys.argv.(2);
  if Array.length Sys.argv > 3 then Bench_serve.check_baseline Sys.argv.(3);
  if Array.length Sys.argv > 4 then Bench_zerocopy.check_baseline Sys.argv.(4);
  if Array.length Sys.argv > 5 then Bench_arena.check_baseline Sys.argv.(5);
  if Array.length Sys.argv > 6 then Bench_workloads.check_baseline Sys.argv.(6);
  if Array.length Sys.argv > 7 then Bench_cluster.check_baseline Sys.argv.(7);
  let baseline_path = Sys.argv.(1) in
  match Util.perf_json_number ~path:baseline_path ~key:"perf_smoke_wall_seconds" with
  | None ->
      Printf.eprintf
        "perf_smoke: no \"perf_smoke_wall_seconds\" in %s — regenerate the \
         baseline with: main.exe --perf-json %s table1 fig7 fig11\n"
        baseline_path baseline_path;
      exit 2
  | Some baseline ->
      (* One untimed warm-up pass so allocator/page-cache effects don't
         count against the budget, then the measured pass. *)
      Smoke.run ();
      let wall0 = Unix.gettimeofday () in
      Smoke.run ();
      let measured = Unix.gettimeofday () -. wall0 in
      let ratio = measured /. baseline in
      Printf.printf "perf_smoke: %.3fs measured vs %.3fs baseline (%.2fx)\n"
        measured baseline ratio;
      if ratio > tolerance then begin
        Printf.eprintf
          "perf_smoke: FAIL — smoke slice regressed %.0f%% past the %.0f%% \
           budget.\nEither fix the regression or consciously re-baseline \
           with: main.exe --perf-json %s table1 fig7 fig11\n"
          ((ratio -. 1.0) *. 100.0)
          ((tolerance -. 1.0) *. 100.0)
          baseline_path;
        exit 1
      end
