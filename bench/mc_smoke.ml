(* Model-checking coverage gate: `dune build @mc_smoke`.

   Explores the default small-state world to a fixed depth bound and
   fails if (a) any invariant violation / accepted attack / crash is
   found, or (b) the number of distinct canonical states shrinks below
   75% of the committed baseline (MC_BASELINE.json) — a silent guard or
   alphabet regression would otherwise look like a pass with nothing
   explored.  Run with --probe [depth] to measure without gating. *)

module Mc = Hyperenclave.Mc
module Mc_world = Hyperenclave.Mc_world
module Telemetry = Hyperenclave.Telemetry

let gate_fraction = 0.75

let explore ~depth =
  let telemetry = Telemetry.create () in
  let t0 = Unix.gettimeofday () in
  let result = Mc.run ~depth ~telemetry Mc_world.default_config in
  let dt = Unix.gettimeofday () -. t0 in
  (result, dt)

let report (result : Mc.result) dt ~depth =
  Printf.printf "mc_smoke: depth %d: %s\n" depth
    (Format.asprintf "%a" Mc.pp_stats result.Mc.stats);
  Printf.printf "mc_smoke: %.2fs, %.0f states/s\n" dt
    (float_of_int result.Mc.stats.Mc.states /. dt);
  match result.Mc.violation with
  | None -> ()
  | Some v ->
      Printf.printf "mc_smoke: VIOLATION\n%s\n"
        (Format.asprintf "%a" Mc.pp_violation v);
      exit 1

let baseline_field path field =
  match Util.perf_json_number ~path ~key:field with
  | Some v -> int_of_float v
  | None ->
      Printf.eprintf "mc_smoke: %s: missing field %S\n" path field;
      exit 2

(* Triage helper: list every distinct (transition, refusal message) pair
   for LEGAL transitions reachable within the depth bound, with one
   example path each.  Legal refusals are allowed (e.g. a swap-in that
   correctly rejects a poisoned blob) but each kind should be explicable;
   an unexplained one usually means a world guard is out of sync with a
   monitor check. *)
let debug_refusals ~depth =
  let module World = Hyperenclave.Mc_world in
  let module Alphabet = Hyperenclave.Mc_alphabet in
  let w = World.create World.default_config in
  let alphabet = World.alphabet w in
  let visited = Hashtbl.create 4096 in
  let seen = Hashtbl.create 64 in
  let rec explore path d =
    if d < depth then begin
      let ck = World.checkpoint w in
      List.iter
        (fun tr ->
          if World.enabled w tr then begin
            World.push_frame_log w;
            (match World.apply w tr with
            | World.Refused msg when not (Alphabet.is_attack tr) ->
                let key = Alphabet.to_string tr ^ " | " ^ msg in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  Printf.printf "legal refusal: %s\n  path: %s\n" key
                    (String.concat " -> "
                       (List.rev_map Alphabet.to_string (tr :: path)))
                end
            | World.Crashed msg ->
                Printf.printf "CRASH at %s: %s\n" (Alphabet.to_string tr) msg
            | World.Applied when not (Alphabet.expects_refusal tr) ->
                let key = World.encode w in
                if not (Hashtbl.mem visited key) then begin
                  Hashtbl.replace visited key ();
                  explore (tr :: path) (d + 1)
                end
            | World.Applied | World.Refused _ -> ());
            World.pop_restore_frames w;
            World.rollback w ck
          end)
        alphabet
    end
  in
  explore [] 0;
  Printf.printf "distinct legal refusal kinds: %d\n" (Hashtbl.length seen)

let () =
  match Array.to_list Sys.argv with
  | _ :: "--refusals" :: rest ->
      let depth =
        match rest with d :: _ -> int_of_string d | [] -> 6
      in
      debug_refusals ~depth
  | _ :: "--probe" :: rest ->
      let depth =
        match rest with d :: _ -> int_of_string d | [] -> 6
      in
      let result, dt = explore ~depth in
      report result dt ~depth
  | _ :: baseline :: _ ->
      let depth = baseline_field baseline "depth" in
      let want = baseline_field baseline "states" in
      let result, dt = explore ~depth in
      report result dt ~depth;
      let got = result.Mc.stats.Mc.states in
      let floor_states =
        int_of_float (gate_fraction *. float_of_int want)
      in
      if not result.Mc.stats.Mc.complete then begin
        Printf.printf "mc_smoke: FAIL (exploration hit the state cap)\n";
        exit 1
      end;
      if got < floor_states then begin
        Printf.printf
          "mc_smoke: FAIL (coverage shrank: %d states < 75%% of baseline \
           %d)\n"
          got want;
        exit 1
      end;
      Printf.printf "mc_smoke: PASS (%d states >= %d floor, baseline %d)\n"
        got floor_states want
  | _ ->
      prerr_endline "usage: mc_smoke <MC_BASELINE.json> | --probe [depth]";
      exit 2
