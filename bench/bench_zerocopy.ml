(* PR 6 tentpole bench: the zero-copy attested request path.

   Three headline numbers gate regressions (see BENCH_PR6.json and
   perf_smoke.ml), all deterministic simulated-cycle quantities:

   - attested req/s at 8 cores (the serving plane's zero-copy AEAD +
     chunked flush) must stay within 25% of the committed baseline —
     and the baseline itself had to land at >= 1.5x BENCH_PR5's;
   - the switchless OCALL reply ring must serve K = 8 out-calls in at
     most half the cycles of eight individual EEXIT/ORET round trips;
   - resuming a session from a sealed ticket must cost at most 1/10th
     of the full SIGMA handshake it replaces. *)

open Hyperenclave

let echo_ocall = 7

(* ECALL 1: fan [k] OCALLs out through the backend's reply ring (one
   EEXIT + one batched ORET on HyperEnclave).  ECALL 2: the same k
   out-calls as individual world switches — the baseline the ring's
   amortization is measured against.  Payloads are identical so the
   difference is pure transition cost. *)
let ocall_handlers =
  let reqs_of input =
    let k = Char.code (Bytes.get input 0) in
    List.init k (fun i -> (echo_ocall, Bytes.make 8 (Char.chr (65 + i))))
  in
  [
    ( 1,
      fun (env : Backend.env) input ->
        let replies = env.Backend.ocall_ring ~reqs:(reqs_of input) () in
        Bytes.make 1 (Char.chr (List.length replies)) );
    ( 2,
      fun (env : Backend.env) input ->
        let n =
          List.fold_left
            (fun acc (id, data) ->
              ignore (env.Backend.ocall ~id ~data () : bytes);
              acc + 1)
            0 (reqs_of input)
        in
        Bytes.make 1 (Char.chr n) );
  ]

let ocall_ring_amortization ~k =
  let p = Platform.create ~seed:961L () in
  let backend =
    Backend.create p
      {
        (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
        Backend.handlers = ocall_handlers;
        ocalls = [ (echo_ocall, fun data -> data) ];
        code_seed = Some "zerocopy-ocall-ring";
      }
  in
  let data = Bytes.make 1 (Char.chr k) in
  (* Warm call: both paths start from identical paging/TLB state. *)
  ignore (backend.Backend.call ~id:2 ~data ~direction:Edge.In_out ());
  let _, ringed =
    Cycles.time p.Platform.clock (fun () ->
        backend.Backend.call ~id:1 ~data ~direction:Edge.In_out ())
  in
  let _, sequential =
    Cycles.time p.Platform.clock (fun () ->
        backend.Backend.call ~id:2 ~data ~direction:Edge.In_out ())
  in
  backend.Backend.destroy ();
  (ringed, sequential)

(* Full SIGMA handshake vs ticket resumption on the same plane: the
   quantity a reconnecting client saves by skipping quote generation
   and verification. *)
let resume_vs_handshake () =
  let p = Platform.create ~seed:962L () in
  let plane = Serve.create_node ~platform:p @@ Serve.Node_config.v ~platform:p Serve.default_config in
  let backend =
    Serve.add_tenant plane ~name:"resume-tenant"
      {
        (Backend.config (Backend.Hyperenclave Sgx_types.GU)) with
        Backend.handlers = [ (1, fun _env input -> input) ];
        code_seed = Some "resume-tenant";
      }
  in
  let identity = Option.get backend.Backend.identity in
  let golden =
    Verifier.golden_of_boot_log
      ~ek_public:(Tpm.ek_public p.Platform.tpm)
      (Monitor.boot_log p.Platform.monitor)
  in
  let client =
    Serve.Client.create
      ~rng:(Rng.create ~seed:4242L)
      ~golden
      ~policy:
        {
          Verifier.expected_mrenclave = Some identity;
          expected_mrsigner = None;
          allow_debug = false;
        }
      ~expected_tenant:identity ()
  in
  let fail : 'a. string -> Serve.reject -> 'a =
   fun what r ->
    Format.eprintf "bench_zerocopy: %s failed: %a@." what Serve.pp_reject r;
    exit 2
  in
  let before = Cycles.now p.Platform.clock in
  (match Serve.handshake plane ~tenant:"resume-tenant" (Serve.Client.hello client) with
  | Ok accept -> (
      match Serve.Client.establish client accept with
      | Ok () -> ()
      | Error r -> fail "establish" r)
  | Error r -> fail "handshake" r);
  let handshake_cycles = Cycles.now p.Platform.clock - before in
  let ticket =
    match Serve.issue_ticket plane ~session:(Serve.Client.session_id client) with
    | Ok tk -> tk
    | Error r -> fail "issue_ticket" r
  in
  let before = Cycles.now p.Platform.clock in
  let resume = Serve.Client.resume_hello client ~ticket in
  (match Serve.resume plane resume with
  | Ok session_id -> Serve.Client.complete_resume client ~session_id
  | Error r -> fail "resume" r);
  let resume_cycles = Cycles.now p.Platform.clock - before in
  (* The resumed channel must actually serve: one sealed roundtrip. *)
  (match Serve.Client.roundtrip plane client [ (1, Bytes.of_string "ping") ] with
  | [ Ok body ] when Bytes.to_string body = "ping" -> ()
  | _ ->
      prerr_endline "bench_zerocopy: resumed session failed to serve";
      exit 2);
  Serve.destroy plane;
  (handshake_cycles, resume_cycles)

type summary = {
  rps_8core : float;
  ring_k8 : float;
  handshake_cycles : int;
  resume_cycles : int;
}

let summarize () =
  let r8 = Bench_serve.measure ~cores:8 in
  let ringed, sequential = ocall_ring_amortization ~k:8 in
  let handshake_cycles, resume_cycles = resume_vs_handshake () in
  {
    rps_8core = r8.Bench_serve.rps;
    ring_k8 = float_of_int sequential /. float_of_int ringed;
    handshake_cycles;
    resume_cycles;
  }

let run () =
  Util.set_experiment "zerocopy";
  Util.banner "Zero-copy"
    "Zero-copy attested path: 8-core serving throughput, switchless OCALL \
     reply-ring amortization vs K, and ticket resumption vs the full \
     handshake.";
  let s = summarize () in
  Printf.printf "  attested req/s, 8 cores: %.0f\n\n" s.rps_8core;
  Printf.printf "  Switchless OCALL reply ring (echo out-call, pure transition cost):\n\n";
  Util.print_table
    ~columns:[ "K"; "ringed (cyc)"; "sequential (cyc)"; "ratio" ]
    (List.map
       (fun k ->
         let ringed, sequential = ocall_ring_amortization ~k in
         [
           string_of_int k;
           string_of_int ringed;
           string_of_int sequential;
           Printf.sprintf "%.2fx" (float_of_int sequential /. float_of_int ringed);
         ])
       [ 1; 2; 4; 8; 16 ]);
  Printf.printf "\n  K=8 amortization: %.2fx fewer cycles per OCALL (gate: >= 2x).\n"
    s.ring_k8;
  Printf.printf
    "  resumption: %d cycles vs %d handshake (%.3fx, gate: <= 0.1x).\n"
    s.resume_cycles s.handshake_cycles
    (float_of_int s.resume_cycles /. float_of_int s.handshake_cycles)

(* --- baseline file + regression gate ---------------------------------- *)

let write_baseline path =
  let s = summarize () in
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema\": \"hyperenclave-perf/1\",\n";
  Printf.fprintf oc "  \"attested_rps_8core\": %.1f,\n" s.rps_8core;
  Printf.fprintf oc "  \"ocall_ring_amortization_k8\": %.3f,\n" s.ring_k8;
  Printf.fprintf oc "  \"handshake_cycles\": %d,\n" s.handshake_cycles;
  Printf.fprintf oc "  \"resume_cycles\": %d\n}\n" s.resume_cycles;
  close_out oc;
  Printf.printf "zero-copy baseline written to %s\n" path

(* Recompute the three headline numbers and fail on a >25% regression
   of the 8-core attested throughput against the committed baseline, or
   if either absolute acceptance bar (K=8 OCALL-ring amortization,
   resumption cost) no longer holds. *)
let check_baseline path =
  let tolerance = 1.25 in
  let s = summarize () in
  match Util.perf_json_number ~path ~key:"attested_rps_8core" with
  | None ->
      Printf.eprintf
        "zerocopy gate: no \"attested_rps_8core\" in %s — regenerate with: \
         perf_smoke.exe --write-zerocopy %s\n"
        path path;
      exit 2
  | Some baseline ->
      let ratio = baseline /. s.rps_8core in
      let resume_ratio =
        float_of_int s.resume_cycles /. float_of_int s.handshake_cycles
      in
      Printf.printf
        "zerocopy gate: %.0f attested req/s at 8 cores vs %.0f baseline \
         (%.2fx), OCALL ring K=8 %.2fx, resume %.3fx of handshake\n"
        s.rps_8core baseline ratio s.ring_k8 resume_ratio;
      if ratio > tolerance then begin
        Printf.eprintf
          "zerocopy gate: FAIL — 8-core attested req/s regressed %.0f%% past \
           the 25%% budget.\nFix the regression or consciously re-baseline \
           with: perf_smoke.exe --write-zerocopy %s\n"
          ((ratio -. 1.0) *. 100.0)
          path;
        exit 1
      end;
      if s.ring_k8 < 2.0 then begin
        Printf.eprintf
          "zerocopy gate: FAIL — K=8 OCALL-ring amortization %.2fx below the \
           2x acceptance bar\n"
          s.ring_k8;
        exit 1
      end;
      if resume_ratio > 0.1 then begin
        Printf.eprintf
          "zerocopy gate: FAIL — resumption costs %.3fx of a full handshake, \
           above the 0.1x acceptance bar\n"
          resume_ratio;
        exit 1
      end
