open Hyperenclave_crypto
open Hyperenclave_monitor
module Tpm = Hyperenclave_tpm.Tpm
module Pcr = Hyperenclave_tpm.Pcr

type golden = {
  ek_public : Signature.public_key;
  boot_measurements : (string * bytes) list;
}

type policy = {
  expected_mrenclave : bytes option;
  expected_mrsigner : bytes option;
  allow_debug : bool;
}

type failure =
  | Bad_tpm_signature
  | Event_log_mismatch
  | Boot_component_mismatch of string
  | Hapk_not_measured
  | Hapk_mismatch
  | Bad_ems
  | Policy_violation of string
  | Stale_nonce

type result = Ok of Sgx_types.report | Error of failure

let pp_failure fmt = function
  | Bad_tpm_signature -> Format.pp_print_string fmt "bad TPM signature chain"
  | Event_log_mismatch -> Format.pp_print_string fmt "event log does not replay to quoted PCRs"
  | Boot_component_mismatch c -> Format.fprintf fmt "boot component %s does not match golden measurement" c
  | Hapk_not_measured -> Format.pp_print_string fmt "hapk not bound to the measured log"
  | Hapk_mismatch ->
      Format.pp_print_string fmt
        "quote signed by a different monitor than the pinned trust anchor"
  | Bad_ems -> Format.pp_print_string fmt "enclave measurement signature invalid"
  | Policy_violation m -> Format.fprintf fmt "enclave policy violation: %s" m
  | Stale_nonce -> Format.pp_print_string fmt "nonce mismatch"

let golden_of_boot_log ~ek_public events =
  {
    ek_public;
    boot_measurements =
      List.filter_map
        (fun (e : Monitor.boot_event) ->
          if e.label = "hapk" then None else Some (e.label, e.measurement))
        events;
  }

(* Replay the event log into a scratch PCR bank and compute the digest the
   TPM would have quoted over the standard selection. *)
let replay_digest (events : Monitor.boot_event list) =
  let bank = Pcr.create () in
  List.iter (fun (e : Monitor.boot_event) -> Pcr.extend bank ~index:e.pcr_index e.measurement) events;
  Pcr.selection_digest bank ~indices:Monitor.quote_pcr_selection

let check_boot_components ~golden (events : Monitor.boot_event list) =
  let rec go = function
    | [] -> None
    | (e : Monitor.boot_event) :: rest ->
        if e.label = "hapk" then go rest
        else (
          match List.assoc_opt e.label golden.boot_measurements with
          | Some expected when Sha256.equal expected e.measurement -> go rest
          | Some _ | None -> Some e.label)
  in
  go events

let hapk_bound (q : Monitor.quote) =
  List.exists
    (fun (e : Monitor.boot_event) ->
      e.label = "hapk" && Sha256.equal e.measurement (Sha256.digest_bytes q.hapk))
    q.events

let check_policy ~policy (report : Sgx_types.report) =
  if report.attributes.Sgx_types.debug && not policy.allow_debug then
    Some "debug enclave not allowed"
  else
    match policy.expected_mrenclave with
    | Some expected when not (Sha256.equal expected report.mrenclave) ->
        Some "MRENCLAVE mismatch"
    | Some _ | None -> (
        match policy.expected_mrsigner with
        | Some expected when not (Sha256.equal expected report.mrsigner) ->
            Some "MRSIGNER mismatch"
        | Some _ | None -> None)

let verify ~golden ~policy ?expected_hapk ~nonce (q : Monitor.quote) =
  if not (Tpm.verify_quote q.tpm_quote ~expected_ek:golden.ek_public) then
    Error Bad_tpm_signature
  else if not (Sha256.equal q.tpm_quote.Tpm.nonce nonce) then Error Stale_nonce
  else if not (Sha256.equal (replay_digest q.events) q.tpm_quote.Tpm.pcr_digest)
  then Error Event_log_mismatch
  else
    match check_boot_components ~golden q.events with
    | Some component -> Error (Boot_component_mismatch component)
    | None ->
        if not (hapk_bound q) then Error Hapk_not_measured
        else if
          (* The verifying party's trust anchor: in a fleet every monitor
             has its own measured-boot state and hapk, so a verifier that
             knows which node it is talking to pins that node's key — a
             quote from any *other* honestly-booted monitor must fail. *)
          match expected_hapk with
          | Some pin -> not (Signature.equal_public pin q.hapk)
          | None -> false
        then Error Hapk_mismatch
        else begin
          let body =
            Bytes.cat (Bytes.of_string "ems:")
              (Sgx_types.report_body { q.report with Sgx_types.mac = Bytes.empty })
          in
          if not (Signature.verify q.hapk body ~signature:q.ems) then Error Bad_ems
          else
            match check_policy ~policy q.report with
            | Some reason -> Error (Policy_violation reason)
            | None -> Ok q.report
        end
