(** Remote-attestation verifier (Sec. 3.3, Fig. 4).

    The relying party holds: the manufacturer-published TPM EK public key,
    a golden list of boot-component measurements (CRTM, BIOS, grub,
    kernel, initramfs, hypervisor), and an enclave policy (expected
    MRENCLAVE and/or MRSIGNER).  Given a HyperEnclave quote it checks, in
    order:

    + the TPM quote's signature chain (AIK certified by the pinned EK);
    + that replaying the quote's event log reproduces the quoted PCR
      digest (so the log is the one the TPM vouches for);
    + that every boot event matches the golden measurement — any tampered
      boot component fails here;
    + that the hapk in the quote is the one measured into its PCR — the
      link that lets the monitor's key speak for this platform;
    + the enclave measurement signature (ems) under hapk;
    + the enclave policy and the freshness nonce.  *)

open Hyperenclave_monitor

type golden = {
  ek_public : Hyperenclave_crypto.Signature.public_key;
  boot_measurements : (string * bytes) list;
      (** component label -> expected SHA-256 (hapk excluded; it is checked
          structurally) *)
}

type policy = {
  expected_mrenclave : bytes option;
  expected_mrsigner : bytes option;
  allow_debug : bool;
}

type failure =
  | Bad_tpm_signature
  | Event_log_mismatch  (** replayed PCRs don't match the quoted digest *)
  | Boot_component_mismatch of string
  | Hapk_not_measured
  | Hapk_mismatch
      (** the quote verifies but was produced by a {e different} monitor
          than the pinned trust anchor — an honestly-booted sibling node
          cannot answer for the one the verifier addressed *)
  | Bad_ems
  | Policy_violation of string
  | Stale_nonce

type result = Ok of Sgx_types.report | Error of failure

val pp_failure : Format.formatter -> failure -> unit

val golden_of_boot_log :
  ek_public:Hyperenclave_crypto.Signature.public_key ->
  Monitor.boot_event list ->
  golden
(** Build the golden reference from a trusted build's event log — what a
    deployer records at provisioning time. *)

val verify :
  golden:golden ->
  policy:policy ->
  ?expected_hapk:Hyperenclave_crypto.Signature.public_key ->
  nonce:bytes ->
  Monitor.quote ->
  result
(** [expected_hapk] is the verifying party's trust anchor for a {e
    specific} monitor: in a multi-monitor fleet every node derives its
    own attestation key, so golden boot measurements alone no longer
    identify one machine — a verifier that knows which node it addressed
    pins that node's hapk and gets {!Hapk_mismatch} for a quote signed by
    any other (even honestly booted) monitor.  Omitting it keeps the
    single-platform behaviour: any monitor whose boot chain replays
    against [golden] is accepted. *)
