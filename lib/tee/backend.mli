(** Uniform workload interface over the compared systems.

    Every workload in this reproduction is written once against {!env} and
    then run, unmodified, on:
    - the {b native} baseline — no protection, zero-cost edges, plain
      DRAM (the paper's "SDK simulation mode" baseline);
    - {b HyperEnclave} in any of the three operation modes — real edge
      calls through the SDK/monitor with marshalling copies, SME-priced
      memory;
    - the {b SGX} model — Table-1-priced edges, MEE-priced memory with
      the 93 MB EPC.

    Relative slowdowns between these are the quantity every figure in
    Sec. 7 reports. *)

open Hyperenclave_hw
open Hyperenclave_monitor
open Hyperenclave_sdk

type env = {
  clock : Cycles.t;
  compute : int -> unit;  (** charge pure computation *)
  mem : Mem_sim.t;  (** memory-system behaviour *)
  ocall : id:int -> ?data:bytes -> unit -> bytes;
  ocall_ring : reqs:(int * bytes) list -> unit -> bytes list;
      (** batched OCALLs through the backend's reply ring where it has
          one (HyperEnclave's single EEXIT + OBATCH ORET for K <= 16
          replies); native and SGX dispatch sequentially, which is the
          baseline the ring's amortization is measured against *)
  interrupt : unit -> unit;  (** a timer tick lands now *)
  heap_write : off:int -> bytes -> unit;
      (** write at a byte offset into the workload's heap.  On the
          HyperEnclave backends this is real demand-paged enclave memory
          (committing frames, forcing EWB/ELDU under pressure); native
          and SGX back it with a scratch buffer so workloads stay
          backend-neutral. *)
  heap_read : off:int -> len:int -> bytes;
  backend_name : string;
}

type handler = env -> bytes -> bytes

type kind = Native | Hyperenclave of Sgx_types.operation_mode | Sgx

val kind_name : kind -> string

type t = {
  name : string;
  kind : kind;
  clock : Cycles.t;
  mem : Mem_sim.t;
  call : id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes;
  call_batch : reqs:(int * bytes) list -> unit -> bytes list;
      (** Serve several ECALLs under one boundary crossing where the
          backend supports it (the HyperEnclave switchless call ring,
          [In_out] semantics per slot); native and the SGX model have no
          ring and dispatch sequentially — the baseline the ring is
          measured against. *)
  urts : Urts.t option;
      (** The SDK handle behind a HyperEnclave backend ([None] for native
          and the SGX model): what {!Hyperenclave_sched.Sched.submit}
          takes to schedule this enclave's requests. *)
  identity : bytes option;
      (** The enclave's MRENCLAVE where the backend has one ([None] for
          native): the code identity an attested serving plane binds
          into its handshake transcripts. *)
  destroy : unit -> unit;
}

(** {1 Construction}

    One constructor, one config record (API v2).  The per-kind
    constructors below it are thin aliases kept so existing callers
    compile unchanged. *)

type config = {
  kind : kind;
  ms_bytes : int option;
      (** HyperEnclave marshalling-buffer size override (page-aligned,
          >= 4 pages).  Meaningless for other kinds — rejected. *)
  epc_frames : int option;
      (** SGX-model EPC size in 4 KiB frames (default: the paper part's
          93 MB).  Meaningless for other kinds — rejected. *)
  fault_plan : Hyperenclave_fault.Fault.plan option;
      (** Installed (with the platform monitor's telemetry) before the
          backend is built, so build-time sites are already armed. *)
  code_seed : string option;  (** enclave code identity (MRENCLAVE) *)
  tweak : (Urts.config -> Urts.config) option;
      (** HyperEnclave-only escape hatch, applied after [ms_bytes] /
          [code_seed]; rejected for other kinds. *)
  handlers : (int * handler) list;
  ocalls : (int * (bytes -> bytes)) list;
}

val config : kind -> config
(** Defaults for [kind]: no overrides, no fault plan, no handlers. *)

val create : Platform.t -> config -> t
(** Build a backend of [config.kind] on the platform (native and the SGX
    model draw their clock/cost/RNG from it; HyperEnclave modes build a
    real enclave through the SDK).
    @raise Invalid_argument when a config field is set for a kind it
    cannot apply to. *)

val native :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  t
(** @deprecated Use {!create} with [kind = Native]. *)

val hyperenclave :
  Platform.t ->
  mode:Sgx_types.operation_mode ->
  ?tweak:(Urts.config -> Urts.config) ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  unit ->
  t
(** Builds a real enclave through the SDK on the given platform.
    @deprecated Use {!create} with [kind = Hyperenclave mode]. *)

val sgx :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  ?epc_bytes:int ->
  ?code_seed:string ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  unit ->
  t
(** The Intel baseline; default EPC 93 MB.
    @deprecated Use {!create} with [kind = Sgx]. *)

(** {1 Trichotomy oracle}

    Under fault injection every call must end in exactly one of three
    ways; the chaos suite (and any resilience-minded application) uses
    {!protected_call} to classify. *)

type outcome =
  | Success of bytes  (** clean reply *)
  | Typed_error of string
      (** a clean, typed refusal: an injected fault that exhausted its
          retries, an [Urts.Enclave_error], or a rejected argument *)
  | Violation of string
      (** the monitor detected tampering ([Monitor.Security_violation]) —
          a deliberate refusal, never an accident *)

val outcome_name : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

val protected_call :
  t -> id:int -> ?data:bytes -> direction:Edge.direction -> unit -> outcome
(** Run [t.call] and map its ending onto {!outcome}.  Every
    boundary-visible failure — SDK refusals, injected faults, rejected
    arguments, the SGX model's typed errors and SGX1 restrictions — maps
    to [Typed_error]; monitor tamper detection maps to [Violation].  Any
    exception outside the trichotomy escapes — escaping is precisely the
    signal the chaos suite treats as a fault-handling bug. *)

val protected_batch : t -> reqs:(int * bytes) list -> unit -> outcome list
(** {!protected_call} for [t.call_batch]: one outcome per request, in
    request order.  The HyperEnclave ring is all-or-nothing, so a typed
    failure or violation yields that same outcome for every slot. *)
