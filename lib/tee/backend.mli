(** Uniform workload interface over the compared systems.

    Every workload in this reproduction is written once against {!env} and
    then run, unmodified, on:
    - the {b native} baseline — no protection, zero-cost edges, plain
      DRAM (the paper's "SDK simulation mode" baseline);
    - {b HyperEnclave} in any of the three operation modes — real edge
      calls through the SDK/monitor with marshalling copies, SME-priced
      memory;
    - the {b SGX} model — Table-1-priced edges, MEE-priced memory with
      the 93 MB EPC.

    Relative slowdowns between these are the quantity every figure in
    Sec. 7 reports. *)

open Hyperenclave_hw
open Hyperenclave_monitor
open Hyperenclave_sdk

type env = {
  clock : Cycles.t;
  compute : int -> unit;  (** charge pure computation *)
  mem : Mem_sim.t;  (** memory-system behaviour *)
  ocall : id:int -> ?data:bytes -> unit -> bytes;
  interrupt : unit -> unit;  (** a timer tick lands now *)
  heap_write : off:int -> bytes -> unit;
      (** write at a byte offset into the workload's heap.  On the
          HyperEnclave backends this is real demand-paged enclave memory
          (committing frames, forcing EWB/ELDU under pressure); native
          and SGX back it with a scratch buffer so workloads stay
          backend-neutral. *)
  heap_read : off:int -> len:int -> bytes;
  backend_name : string;
}

type handler = env -> bytes -> bytes

type kind = Native | Hyperenclave of Sgx_types.operation_mode | Sgx

val kind_name : kind -> string

type t = {
  name : string;
  kind : kind;
  clock : Cycles.t;
  mem : Mem_sim.t;
  call : id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes;
  call_batch : reqs:(int * bytes) list -> unit -> bytes list;
      (** Serve several ECALLs under one boundary crossing where the
          backend supports it (the HyperEnclave switchless call ring,
          [In_out] semantics per slot); native and the SGX model have no
          ring and dispatch sequentially — the baseline the ring is
          measured against. *)
  urts : Urts.t option;
      (** The SDK handle behind a HyperEnclave backend ([None] for native
          and the SGX model): what {!Hyperenclave_sched.Sched.submit}
          takes to schedule this enclave's requests. *)
  destroy : unit -> unit;
}

val native :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  t

val hyperenclave :
  Platform.t ->
  mode:Sgx_types.operation_mode ->
  ?tweak:(Urts.config -> Urts.config) ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  unit ->
  t
(** Builds a real enclave through the SDK on the given platform. *)

val sgx :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  ?epc_bytes:int ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  unit ->
  t
(** The Intel baseline; default EPC 93 MB. *)

(** {1 Trichotomy oracle}

    Under fault injection every call must end in exactly one of three
    ways; the chaos suite (and any resilience-minded application) uses
    {!protected_call} to classify. *)

type outcome =
  | Success of bytes  (** clean reply *)
  | Typed_error of string
      (** a clean, typed refusal: an injected fault that exhausted its
          retries, an [Urts.Enclave_error], or a rejected argument *)
  | Violation of string
      (** the monitor detected tampering ([Monitor.Security_violation]) —
          a deliberate refusal, never an accident *)

val outcome_name : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

val protected_call :
  t -> id:int -> ?data:bytes -> direction:Edge.direction -> unit -> outcome
(** Run [t.call] and map its ending onto {!outcome}.  Any exception
    outside the trichotomy escapes — escaping is precisely the signal
    the chaos suite treats as a fault-handling bug. *)
