open Hyperenclave_hw

(* Growable circular int queue for the EPC CLOCK hand: same FIFO order as
   [Queue] (including stale entries for already-evicted pages, which the
   eviction scan skips) but without a cons per enqueue. *)
module Ring = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 4096 0; head = 0; len = 0 }

  let push t v =
    let cap = Array.length t.buf in
    if t.len = cap then begin
      let buf = Array.make (cap * 2) 0 in
      for i = 0 to t.len - 1 do
        buf.(i) <- t.buf.((t.head + i) land (cap - 1))
      done;
      t.buf <- buf;
      t.head <- 0
    end;
    t.buf.((t.head + t.len) land (Array.length t.buf - 1)) <- v;
    t.len <- t.len + 1

  let pop t =
    if t.len = 0 then -1
    else begin
      let v = t.buf.(t.head) in
      t.head <- (t.head + 1) land (Array.length t.buf - 1);
      t.len <- t.len - 1;
      v
    end
end

type translation = One_level | Nested

type t = {
  translation : translation;
  tlb : Tlb.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  rng : Rng.t;
  engine : Mem_crypto.engine;
  cache : Cache.t;
  llc_bytes : int;
  sample_cap : int;
  (* Engine/translation-dependent per-line costs, folded at creation so
     the per-line hot loop never re-matches on the engine. *)
  seq_miss : int; (* clean prefetched miss (doubled on dirty evict) *)
  dep_miss : int; (* clean dependent-load miss (doubled on dirty evict) *)
  tree_extra : int; (* MEE integrity-tree walk, per dependent miss *)
  walk_cost : int; (* page-table walk on TLB miss *)
  (* EPC residency (Mee only): page-granular CLOCK (approximate LRU),
     like the SGX driver's reclaim scan — hot pages survive, so zipfian
     workloads keep their working set resident (Fig. 8b) while uniform
     scans thrash (Fig. 11). *)
  epc_pages : int option;
  (* Byte-per-page residency map, grown on demand: workloads address at
     most a few GB of simulated memory, so direct indexing beats any hash
     probe and the whole array stays cache-resident. *)
  mutable resident : Bytes.t; (* page -> absent / unref / referenced *)
  mutable nresident : int;
  fifo : Ring.t;
  mutable swaps : int;
}

let absent = '\000'
let unref = '\001'
let referenced = '\002'

let create ~clock ~cost ~rng ~engine ?(llc_bytes = 8 * 1024 * 1024)
    ?(sample_cap = 262_144) ?(translation = One_level) () =
  {
    translation;
    tlb = Tlb.create (Rng.create ~seed:17L);
    clock;
    cost;
    rng;
    engine;
    cache = Cache.create ~size_bytes:llc_bytes ();
    llc_bytes;
    sample_cap;
    seq_miss =
      (cost.dram_seq_miss
      +
      match engine with
      | Mem_crypto.Plain -> 0
      | Mem_crypto.Sme -> cost.sme_seq_extra
      | Mem_crypto.Mee _ -> cost.mee_seq_extra);
    dep_miss =
      (cost.cache_miss_dram
      +
      match engine with
      | Mem_crypto.Plain -> 0
      | Mem_crypto.Sme -> cost.sme_miss_extra
      | Mem_crypto.Mee _ -> cost.mee_miss_extra);
    tree_extra =
      (match engine with
      | Mem_crypto.Plain | Mem_crypto.Sme -> 0
      | Mem_crypto.Mee _ -> cost.mee_tree_levels * cost.mee_tree_level);
    walk_cost =
      (match translation with
      | One_level -> 4 * cost.pt_level_access
      | Nested -> 12 * cost.pt_level_access);
    epc_pages =
      Option.map (fun b -> b / Addr.page_size) (Mem_crypto.epc_limit engine);
    resident = Bytes.make 16_384 absent;
    nresident = 0;
    fifo = Ring.create ();
    swaps = 0;
  }

let engine t = t.engine

let resident_state t page =
  if page < Bytes.length t.resident then Bytes.unsafe_get t.resident page
  else absent

let ensure_resident_slot t page =
  let len = Bytes.length t.resident in
  if page >= len then begin
    let rec fit n = if n > page then n else fit (n * 2) in
    let b = Bytes.make (fit len) absent in
    Bytes.blit t.resident 0 b 0 len;
    t.resident <- b
  end

(* EPC paging charge for one touched page; 2x: EWB the victim, ELDU ours.
   Eviction is CLOCK: referenced pages get a second chance. *)
let evict_one t =
  let rec spin guard =
    match Ring.pop t.fifo with
    | -1 -> ()
    | victim ->
        let s = resident_state t victim in
        if s = absent then spin guard (* stale queue entry *)
        else if s = referenced && guard > 0 then begin
          Bytes.unsafe_set t.resident victim unref;
          Ring.push t.fifo victim;
          spin (guard - 1)
        end
        else begin
          Bytes.unsafe_set t.resident victim absent;
          t.nresident <- t.nresident - 1
        end
  in
  spin t.nresident

let epc_charge t page =
  match t.epc_pages with
  | None -> 0
  | Some capacity ->
      if resident_state t page <> absent then begin
        Bytes.unsafe_set t.resident page referenced;
        0
      end
      else begin
        let swap_cost =
          if t.nresident >= capacity then begin
            evict_one t;
            t.swaps <- t.swaps + 1;
            2 * t.cost.epc_swap_page
          end
          else 0
        in
        ensure_resident_slot t page;
        Bytes.unsafe_set t.resident page unref;
        t.nresident <- t.nresident + 1;
        Ring.push t.fifo page;
        swap_cost
      end

(* What lines 2..k of a page-run would do to the EPC state: re-mark the
   now-resident page referenced.  One byte store replaces the k-1
   identical probes of the per-line walk. *)
let epc_rehit t page =
  match t.epc_pages with
  | None -> ()
  | Some _ ->
      if resident_state t page <> absent then
        Bytes.unsafe_set t.resident page referenced

(* Data-TLB charge for the page containing [addr]: hit is ~free; a miss
   walks one set of tables natively/HU, or the two-dimensional nested
   tables for GU/P.  The sim's TLB is private and cost-only — entries are
   never read back — so one shared synthetic entry serves every insert
   instead of allocating a record per miss. *)
let synthetic_entry = { Tlb.frame = 0; perms = Page_table.rw; pte = None }

let tlb_cost t page =
  if Tlb.hit_test t.tlb ~vpn:page then t.cost.tlb_hit
  else begin
    Tlb.insert t.tlb ~vpn:page synthetic_entry;
    t.walk_cost
  end

let tlb_flush t = Tlb.flush t.tlb

(* LLC charge for one line; [seq] selects the prefetch-friendly cost
   profile (tree nodes and next lines prefetched) vs. the dependent-load
   one. *)
let cache_cost t ~seq ~write addr =
  match Cache.access t.cache ~write addr with
  | Cache.Hit -> t.cost.cache_hit
  | Cache.Miss { evicted_dirty } ->
      let wb = if evicted_dirty then 2 else 1 in
      if seq then t.seq_miss * wb else (t.dep_miss * wb) + t.tree_extra

(* One line access, full price: EPC residency + TLB + LLC. *)
let line_cost t ~seq ~write addr =
  let page = Addr.page_of addr in
  let epc = epc_charge t page in
  let tlb = tlb_cost t page in
  epc + tlb + cache_cost t ~seq ~write addr

let line = 64

(* Charge [k] consecutive lines starting at [addr], all inside the page
   numbered [page].  Only the first line pays a real EPC/TLB lookup; the
   remaining k-1 are deterministic hits (the page was made resident and
   TLB-inserted by the first line, and nothing between two lines of the
   same run can evict either), so they are accounted analytically:
   k-1 TLB-hit charges, stats bumped in bulk, referenced bit set once.
   TLB hits draw no randomness and the per-line Cache.access below is the
   only remaining stateful step, so cycles, RNG stream, swap counts and
   hit statistics are identical to the per-line reference walk.
   [first_seq] is the cost profile of the leading line ([false] for a
   dependent pointer chase into an object), [rest_seq] of the others. *)
let page_run_cost t ~page ~first_seq ~rest_seq ~write addr k =
  let epc = epc_charge t page in
  let tlb = tlb_cost t page in
  let acc = ref (epc + tlb + cache_cost t ~seq:first_seq ~write addr) in
  if k > 1 then begin
    epc_rehit t page;
    Tlb.note_hits t.tlb (k - 1);
    acc := !acc + ((k - 1) * t.cost.tlb_hit);
    for j = 1 to k - 1 do
      acc := !acc + cache_cost t ~seq:rest_seq ~write (addr + (j * line))
    done
  end;
  !acc

(* Number of stride-64 accesses starting at [addr] that stay on its page. *)
let lines_on_page addr =
  let to_next = Addr.base_of_page (Addr.page_of addr + 1) - addr in
  (to_next + line - 1) / line

let scale ~acc ~simulated ~total =
  if simulated = total then acc
  else
    int_of_float
      (float_of_int acc *. float_of_int total /. float_of_int simulated)

let seq_scan t ~base ~bytes ~write =
  if bytes > 0 then begin
    let lines = (bytes + line - 1) / line in
    let simulated = min lines t.sample_cap in
    let acc = ref 0 in
    let i = ref 0 in
    while !i < simulated do
      let addr = base + (!i * line) in
      let page = Addr.page_of addr in
      let k = min (lines_on_page addr) (simulated - !i) in
      acc :=
        !acc + page_run_cost t ~page ~first_seq:true ~rest_seq:true ~write addr k;
      i := !i + k
    done;
    (* Scale the sampled window cost up to the full scan. *)
    Cycles.tick t.clock (scale ~acc:!acc ~simulated ~total:lines)
  end

let random_access t ~base ~working_set ~count ~write =
  if count > 0 && working_set > 0 then begin
    let lines_in_ws = max 1 (working_set / line) in
    let simulated = min count t.sample_cap in
    let acc = ref 0 in
    for _ = 1 to simulated do
      let addr = base + (Rng.int t.rng lines_in_ws * line) in
      acc := !acc + line_cost t ~seq:false ~write addr
    done;
    Cycles.tick t.clock (scale ~acc:!acc ~simulated ~total:count)
  end

let touch_bytes t ~addr ~len ~write =
  (* The first line of an object is a dependent load (pointer chase into
     it); the rest streams under the prefetcher. *)
  if len > 0 then begin
    let first = addr / line and last = (addr + len - 1) / line in
    let acc = ref 0 in
    let l = ref first in
    while !l <= last do
      let a = !l * line in
      let page = Addr.page_of a in
      let k = min (lines_on_page a) (last - !l + 1) in
      let first_seq = !l <> first in
      acc := !acc + page_run_cost t ~page ~first_seq ~rest_seq:true ~write a k;
      l := !l + k
    done;
    Cycles.tick t.clock !acc
  end

let touch_dependent t ~addr ~len ~write =
  if len > 0 then begin
    let first = addr / line and last = (addr + len - 1) / line in
    let acc = ref 0 in
    let l = ref first in
    while !l <= last do
      let a = !l * line in
      let page = Addr.page_of a in
      let k = min (lines_on_page a) (last - !l + 1) in
      acc :=
        !acc + page_run_cost t ~page ~first_seq:false ~rest_seq:false ~write a k;
      l := !l + k
    done;
    Cycles.tick t.clock !acc
  end

(* --- per-line reference walks ------------------------------------------
   The naive implementations the fast paths must match bit-for-bit:
   one EPC probe + one TLB probe + one cache access per line.  Kept as
   the specification oracle for the randomized equivalence tests; not
   used on any production path. *)

let seq_scan_reference t ~base ~bytes ~write =
  if bytes > 0 then begin
    let lines = (bytes + line - 1) / line in
    let simulated = min lines t.sample_cap in
    let acc = ref 0 in
    for i = 0 to simulated - 1 do
      acc := !acc + line_cost t ~seq:true ~write (base + (i * line))
    done;
    Cycles.tick t.clock (scale ~acc:!acc ~simulated ~total:lines)
  end

let touch_bytes_reference t ~addr ~len ~write =
  if len > 0 then begin
    let first = addr / line and last = (addr + len - 1) / line in
    let acc = ref (line_cost t ~seq:false ~write (first * line)) in
    for l = first + 1 to last do
      acc := !acc + line_cost t ~seq:true ~write (l * line)
    done;
    Cycles.tick t.clock !acc
  end

let touch_dependent_reference t ~addr ~len ~write =
  if len > 0 then begin
    let first = addr / line and last = (addr + len - 1) / line in
    let acc = ref 0 in
    for l = first to last do
      acc := !acc + line_cost t ~seq:false ~write (l * line)
    done;
    Cycles.tick t.clock !acc
  end

let flush_range t ~base ~bytes =
  let lines = (bytes + line - 1) / line in
  for i = 0 to min lines t.sample_cap - 1 do
    Cache.flush_line t.cache (base + (i * line))
  done

let flush_all t = Cache.flush_all t.cache
let swaps t = t.swaps
let tlb_stats t = (Tlb.lookups t.tlb, Tlb.hits t.tlb)
let cache_stats t = (Cache.accesses t.cache, Cache.misses t.cache)
let resident_pages t = t.nresident

let avg_access_cycles t ~pattern ~working_set =
  (* Private replica so the measurement does not disturb [t].  The scan is
     unsampled (cap >= the buffer) so EPC-residency effects are real, and
     the random pass replays the exact same address sequence it warmed
     with — the dependent pointer chain lat_mem_rd-style scans build. *)
  let clock = Cycles.create () in
  let full_cap = max t.sample_cap ((working_set / line) + 1) in
  let probe =
    create ~clock ~cost:t.cost
      ~rng:(Rng.create ~seed:7L)
      ~engine:t.engine ~llc_bytes:t.llc_bytes ~sample_cap:full_cap ()
  in
  let count = max 4096 (working_set / line) in
  let run () =
    Rng.set_seed probe.rng 7L;
    match pattern with
    | `Seq -> seq_scan probe ~base:0 ~bytes:working_set ~write:false
    | `Random ->
        random_access probe ~base:0 ~working_set ~count ~write:false
  in
  run ();
  (* Warm pass done; measure the second pass. *)
  let before = Cycles.now clock in
  run ();
  let accesses =
    match pattern with
    | `Seq -> max 1 ((working_set + line - 1) / line)
    | `Random -> count
  in
  float_of_int (Cycles.now clock - before) /. float_of_int accesses
