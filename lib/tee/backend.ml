open Hyperenclave_hw
open Hyperenclave_monitor
open Hyperenclave_sdk
module Sgx_model = Hyperenclave_sgx.Sgx_model

type env = {
  clock : Cycles.t;
  compute : int -> unit;
  mem : Mem_sim.t;
  ocall : id:int -> ?data:bytes -> unit -> bytes;
  ocall_ring : reqs:(int * bytes) list -> unit -> bytes list;
      (** Batched OCALLs through the backend's reply ring where it has
          one (HyperEnclave's OBATCH path); ring-less backends dispatch
          sequentially — the baseline the amortization is measured
          against. *)
  interrupt : unit -> unit;
  heap_write : off:int -> bytes -> unit;
  heap_read : off:int -> len:int -> bytes;
  backend_name : string;
}

type handler = env -> bytes -> bytes

type kind = Native | Hyperenclave of Sgx_types.operation_mode | Sgx

let kind_name = function
  | Native -> "native"
  | Hyperenclave mode -> Sgx_types.mode_name mode
  | Sgx -> "Intel SGX"

type t = {
  name : string;
  kind : kind;
  clock : Cycles.t;
  mem : Mem_sim.t;
  call : id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes;
  call_batch : reqs:(int * bytes) list -> unit -> bytes list;
      (** Serve several ECALLs under one boundary crossing where the
          backend supports it (the HyperEnclave call ring); backends
          without a ring dispatch sequentially. *)
  urts : Urts.t option;
      (** The SDK handle behind a HyperEnclave backend ([None] for native
          and the SGX model): what a scheduler submits jobs against. *)
  identity : bytes option;
      (** MRENCLAVE where the backend has one ([None] for native). *)
  destroy : unit -> unit;
}

(* Backends without a demand-paged enclave heap (native, the SGX model)
   still expose [heap_write]/[heap_read] so heap-walking workloads run
   unmodified everywhere; a growable scratch buffer stands in for it. *)
let scratch_heap () =
  let buf = ref (Bytes.create 4096) in
  let ensure n =
    if Bytes.length !buf < n then begin
      let grown = Bytes.make (max n (2 * Bytes.length !buf)) '\000' in
      Bytes.blit !buf 0 grown 0 (Bytes.length !buf);
      buf := grown
    end
  in
  let write ~off data =
    if off < 0 then invalid_arg "heap_write: negative offset";
    ensure (off + Bytes.length data);
    Bytes.blit data 0 !buf off (Bytes.length data)
  in
  let read ~off ~len =
    if off < 0 || len < 0 then invalid_arg "heap_read: negative range";
    ensure (off + len);
    Bytes.sub !buf off len
  in
  (write, read)

let native ~clock ~cost ~rng ~handlers ~ocalls =
  let mem =
    Mem_sim.create ~clock ~cost ~rng:(Rng.split rng) ~engine:Mem_crypto.Plain ()
  in
  let ocall_tbl = Hashtbl.create 16 in
  List.iter (fun (id, h) -> Hashtbl.replace ocall_tbl id h) ocalls;
  let heap = scratch_heap () in
  let env =
    {
      clock;
      compute = (fun n -> Cycles.tick clock n);
      mem;
      ocall =
        (fun ~id ?(data = Bytes.empty) () ->
          match Hashtbl.find_opt ocall_tbl id with
          | Some h -> h data
          | None -> invalid_arg (Printf.sprintf "native: unknown OCALL %d" id));
      ocall_ring =
        (fun ~reqs () ->
          List.map
            (fun (id, data) ->
              match Hashtbl.find_opt ocall_tbl id with
              | Some h -> h data
              | None ->
                  invalid_arg (Printf.sprintf "native: unknown OCALL %d" id))
            reqs);
      (* Native code takes timer interrupts too: handler plus scheduler
         work, without any enclave exit on top. *)
      interrupt = (fun () -> Cycles.tick clock (1_800 + cost.Cost_model.os_ctxsw));
      heap_write = (let w, _ = heap in w);
      heap_read = (let _, r = heap in r);
      backend_name = "native";
    }
  in
  let ecall_tbl = Hashtbl.create 16 in
  List.iter (fun (id, h) -> Hashtbl.replace ecall_tbl id h) handlers;
  {
    name = "native";
    kind = Native;
    clock;
    mem;
    call =
      (fun ~id ?(data = Bytes.empty) ~direction:_ () ->
        match Hashtbl.find_opt ecall_tbl id with
        | Some h -> h env data
        | None -> invalid_arg (Printf.sprintf "native: unknown ECALL %d" id));
    call_batch =
      (fun ~reqs () ->
        List.map
          (fun (id, data) ->
            match Hashtbl.find_opt ecall_tbl id with
            | Some h -> h env data
            | None -> invalid_arg (Printf.sprintf "native: unknown ECALL %d" id))
          reqs);
    urts = None;
    identity = None;
    destroy = (fun () -> ());
  }

let hyperenclave (platform : Platform.t) ~mode ?(tweak = fun c -> c) ~handlers
    ~ocalls () =
  let translation =
    match mode with
    | Sgx_types.HU -> Mem_sim.One_level
    | Sgx_types.GU | Sgx_types.P -> Mem_sim.Nested
  in
  let mem =
    Mem_sim.create ~clock:platform.Platform.clock ~cost:platform.Platform.cost
      ~rng:(Rng.split platform.Platform.rng)
      ~engine:Mem_crypto.Sme ~translation ()
  in
  let env_of_tenv (tenv : Tenv.t) =
    {
      clock = tenv.Tenv.clock;
      compute = tenv.Tenv.compute;
      mem;
      ocall =
        (fun ~id ?data () ->
          (* EEXIT/EENTER around the OCALL flush the enclave's TLB. *)
          let reply = tenv.Tenv.ocall ~id ?data Edge.In_out in
          Mem_sim.tlb_flush mem;
          reply);
      ocall_ring =
        (fun ~reqs () ->
          (* One EEXIT/ORET pair for the whole ring — and one TLB flush,
             where the sequential path pays one per OCALL. *)
          let replies = tenv.Tenv.ocall_ring ~reqs () in
          Mem_sim.tlb_flush mem;
          replies);
      interrupt = tenv.Tenv.interrupt_now;
      (* Real demand-paged enclave heap: touching a wide offset range
         commits EPC frames and, on small platforms, forces EWB/ELDU —
         which is how the chaos suite creates EPC pressure through the
         backend-neutral interface. *)
      heap_write =
        (fun ~off data -> tenv.Tenv.write ~va:(tenv.Tenv.heap_base + off) data);
      heap_read =
        (fun ~off ~len -> tenv.Tenv.read ~va:(tenv.Tenv.heap_base + off) ~len);
      backend_name = Sgx_types.mode_name mode;
    }
  in
  let ecalls =
    List.map
      (fun (id, h) -> (id, fun tenv input -> h (env_of_tenv tenv) input))
      handlers
  in
  let config = tweak (Urts.default_config mode) in
  let urts =
    Urts.create ~kmod:platform.Platform.kmod ~proc:platform.Platform.proc
      ~rng:platform.Platform.rng ~signer:platform.Platform.signer ~config
      ~ecalls ~ocalls
  in
  {
    name = Sgx_types.mode_name mode;
    kind = Hyperenclave mode;
    clock = platform.Platform.clock;
    mem;
    call =
      (fun ~id ?(data = Bytes.empty) ~direction () ->
        Mem_sim.tlb_flush mem;
        Urts.ecall urts ~id ~data ~direction ());
    call_batch =
      (fun ~reqs () ->
        (* One crossing, one TLB flush — K requests through the ring. *)
        Mem_sim.tlb_flush mem;
        Urts.ecall_batch urts ~reqs ());
    urts = Some urts;
    identity = Some (Urts.mrenclave urts);
    destroy = (fun () -> Urts.destroy urts);
  }

let sgx ~clock ~cost ~rng ?(epc_bytes = Platform.sgx_epc_bytes)
    ?(code_seed = "tee-backend-sgx") ~handlers ~ocalls () =
  let mem =
    Mem_sim.create ~clock ~cost ~rng:(Rng.split rng)
      ~engine:(Mem_crypto.Mee { epc_bytes })
      ()
  in
  let sgx_platform =
    Sgx_model.create_platform ~clock ~cost ~rng:(Rng.split rng) ~epc_bytes
  in
  let heap = scratch_heap () in
  let env_of_enclave enclave =
    {
      clock;
      compute = (fun n -> Sgx_model.compute enclave n);
      mem;
      ocall =
        (fun ~id ?data () ->
          let reply = Sgx_model.ocall enclave ~id ?data () in
          Mem_sim.tlb_flush mem;
          reply);
      ocall_ring =
        (fun ~reqs () ->
          (* No reply ring in the SGX model: each OCALL pays its own
             world switch and TLB flush. *)
          List.map
            (fun (id, data) ->
              let reply = Sgx_model.ocall enclave ~id ~data () in
              Mem_sim.tlb_flush mem;
              reply)
            reqs);
      interrupt = (fun () -> Sgx_model.interrupt enclave);
      heap_write = (let w, _ = heap in w);
      heap_read = (let _, r = heap in r);
      backend_name = "Intel SGX";
    }
  in
  let ecalls =
    List.map
      (fun (id, h) -> (id, fun enclave input -> h (env_of_enclave enclave) input))
      handlers
  in
  let signer, _ = Hyperenclave_crypto.Signature.generate rng in
  let enclave =
    Sgx_model.create_enclave sgx_platform ~code_seed ~signer ~ecalls ~ocalls
  in
  {
    name = "Intel SGX";
    kind = Sgx;
    clock;
    mem;
    call =
      (fun ~id ?(data = Bytes.empty) ~direction:_ () ->
        Mem_sim.tlb_flush mem;
        Sgx_model.ecall enclave ~id ~data ());
    call_batch =
      (fun ~reqs () ->
        (* The SGX model has no call ring: every request pays its own
           world switch, which is exactly the baseline the batched path
           is measured against. *)
        List.map
          (fun (id, data) ->
            Mem_sim.tlb_flush mem;
            Sgx_model.ecall enclave ~id ~data ())
          reqs);
    urts = None;
    identity = Some (Sgx_model.mrenclave enclave);
    destroy = (fun () -> ());
  }

(* -------------------------------------------------------------------- *)
(* Unified construction (API v2)                                        *)

type config = {
  kind : kind;
  ms_bytes : int option;
  epc_frames : int option;
  fault_plan : Hyperenclave_fault.Fault.plan option;
  code_seed : string option;
  tweak : (Urts.config -> Urts.config) option;
  handlers : (int * handler) list;
  ocalls : (int * (bytes -> bytes)) list;
}

let config kind =
  {
    kind;
    ms_bytes = None;
    epc_frames = None;
    fault_plan = None;
    code_seed = None;
    tweak = None;
    handlers = [];
    ocalls = [];
  }

let create (platform : Platform.t) (c : config) =
  let reject_field field =
    invalid_arg
      (Printf.sprintf "Backend.create: %s is meaningless for the %s backend"
         field (kind_name c.kind))
  in
  (match (c.kind, c.ms_bytes) with
  | (Native | Sgx), Some _ -> reject_field "ms_bytes"
  | _ -> ());
  (match (c.kind, c.epc_frames) with
  | (Native | Hyperenclave _), Some _ -> reject_field "epc_frames"
  | _ -> ());
  (match (c.kind, c.tweak) with
  | (Native | Sgx), Some _ -> reject_field "tweak"
  | _ -> ());
  (match (c.kind, c.code_seed) with
  | Native, Some _ -> reject_field "code_seed"
  | _ -> ());
  (* Arm the plan before building so build-time injection sites (EPC
     allocation, ioctls, TPM commands) are already live. *)
  (match c.fault_plan with
  | Some plan ->
      Hyperenclave_fault.Fault.install
        ~telemetry:(Monitor.telemetry platform.Platform.monitor)
        plan
  | None -> ());
  match c.kind with
  | Native ->
      native ~clock:platform.Platform.clock ~cost:platform.Platform.cost
        ~rng:platform.Platform.rng ~handlers:c.handlers ~ocalls:c.ocalls
  | Hyperenclave mode ->
      let tweak urts_config =
        let urts_config =
          match c.ms_bytes with
          | Some ms_bytes -> { urts_config with Urts.ms_bytes }
          | None -> urts_config
        in
        let urts_config =
          match c.code_seed with
          | Some code_seed -> { urts_config with Urts.code_seed }
          | None -> urts_config
        in
        match c.tweak with Some f -> f urts_config | None -> urts_config
      in
      hyperenclave platform ~mode ~tweak ~handlers:c.handlers ~ocalls:c.ocalls
        ()
  | Sgx ->
      sgx ~clock:platform.Platform.clock ~cost:platform.Platform.cost
        ~rng:platform.Platform.rng
        ?epc_bytes:
          (Option.map (fun frames -> frames * Hyperenclave_hw.Addr.page_size)
             c.epc_frames)
        ?code_seed:c.code_seed ~handlers:c.handlers ~ocalls:c.ocalls ()

(* -------------------------------------------------------------------- *)
(* Trichotomy oracle                                                    *)

type outcome =
  | Success of bytes
  | Typed_error of string
  | Violation of string

let outcome_name = function
  | Success _ -> "success"
  | Typed_error _ -> "typed-error"
  | Violation _ -> "violation"

let pp_outcome fmt = function
  | Success reply -> Format.fprintf fmt "success (%d bytes)" (Bytes.length reply)
  | Typed_error msg -> Format.fprintf fmt "typed-error: %s" msg
  | Violation msg -> Format.fprintf fmt "violation: %s" msg

(* The only acceptable endings of a call under fault injection.  A clean
   reply, a typed refusal the application can act on, or the monitor
   detecting tampering — anything else (an unexpected exception, silent
   corruption checked by the caller against the reply) is a bug in the
   fault handling, not in the workload.

   The audit of what each backend's edge can raise for malformed or
   unlucky inputs: the SDK's [Enclave_error] (unknown id, ring overflow,
   oversized payloads, TCS exhaustion), [Fault.Injected] (exhausted
   retries or a permanent plan entry), [Invalid_argument] (the native
   dispatch tables and argument validation), the SGX model's [Sgx_error]
   (its own typed refusals) and [Unsupported] (SGX1 restrictions such as
   EDMM), and the monitor's deliberate [Security_violation].  All of the
   first five are typed refusals; nothing else may cross the API. *)
let classify ~on_typed ~on_violation f ~on_success =
  match f () with
  | v -> on_success v
  | exception Monitor.Security_violation msg -> on_violation msg
  | exception Hyperenclave_fault.Fault.Injected { site; kind } ->
      on_typed
        (Printf.sprintf "injected %s fault at %s"
           (Hyperenclave_fault.Fault.kind_name kind)
           site)
  | exception Urts.Enclave_error msg -> on_typed ("enclave: " ^ msg)
  | exception Invalid_argument msg -> on_typed ("invalid-argument: " ^ msg)
  | exception Sgx_model.Sgx_error msg -> on_typed ("sgx: " ^ msg)
  | exception Sgx_model.Unsupported msg -> on_typed ("unsupported: " ^ msg)

let protected_call t ~id ?(data = Bytes.empty) ~direction () =
  classify
    (fun () -> t.call ~id ~data ~direction ())
    ~on_success:(fun reply -> Success reply)
    ~on_typed:(fun msg -> Typed_error msg)
    ~on_violation:(fun msg -> Violation msg)

let protected_batch t ~reqs () =
  classify
    (fun () -> t.call_batch ~reqs ())
    ~on_success:(List.map (fun reply -> Success reply))
    ~on_typed:(fun msg -> List.map (fun _ -> Typed_error msg) reqs)
    ~on_violation:(fun msg -> List.map (fun _ -> Violation msg) reqs)
