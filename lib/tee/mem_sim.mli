(** Memory-system cost simulator: LLC + memory-encryption engine + EPC
    paging, with deterministic sampling for large scans.

    Workloads describe their memory behaviour (sequential scans, random
    accesses inside a working set) and this module charges cycles through
    the cache model and the engine: {!Hyperenclave_hw.Mem_crypto.Plain}
    for the unprotected baselines, [Sme] for HyperEnclave, [Mee] with a
    93 MB EPC for SGX.  This is where Figure 11's knees (LLC at 8 MB, EPC
    at 93 MB) and Figure 8b's SGX cliff come from.

    Scans larger than the sampling cap are simulated over a deterministic
    sample and the cost scaled, keeping bench runtimes bounded without
    changing per-access averages. *)

open Hyperenclave_hw

type t

(** How data-side virtual addresses translate: native processes and
    HU-Enclaves walk one level of page tables, GU/P-Enclaves walk the
    two-dimensional nested tables (Sec. 4.2's "extra virtualization
    overhead ... two-dimensional page walking"). *)
type translation = One_level | Nested

val create :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  engine:Mem_crypto.engine ->
  ?llc_bytes:int ->
  ?sample_cap:int ->
  ?translation:translation ->
  unit ->
  t
(** Defaults: 8 MiB LLC, 262,144 sampled accesses per operation,
    one-level translation. *)

val tlb_flush : t -> unit
(** World switches flush the data TLB (Sec. 6); backends call this around
    enclave transitions so post-switch re-walks are charged at the
    mode-appropriate rate. *)

val engine : t -> Mem_crypto.engine

val seq_scan : t -> base:int -> bytes:int -> write:bool -> unit
(** Stream through [\[base, base+bytes)] line by line.

    Implementation note shared by {!seq_scan}, {!touch_bytes} and
    {!touch_dependent}: lines are charged per page run — one real
    EPC-residency probe and TLB lookup-and-insert for the first line of
    each 4 KiB page, then the remaining (up to 63) lines accounted as
    deterministic TLB/EPC hits analytically while the stateful LLC model
    still sees every line.  TLB hits draw no randomness, so simulated
    cycles, the RNG stream, swap counts and TLB/cache statistics are
    bit-identical to the per-line reference walk (asserted by the golden
    and property tests against {!seq_scan_reference}). *)

val random_access : t -> base:int -> working_set:int -> count:int -> write:bool -> unit
(** [count] uniformly random line accesses within the working set. *)

val touch_bytes : t -> addr:int -> len:int -> write:bool -> unit
(** Access a small range (an object / record), line-granular, unsampled;
    the first line is a dependent load, the rest stream. *)

val touch_dependent : t -> addr:int -> len:int -> write:bool -> unit
(** Like {!touch_bytes} but every line is a dependent load (pointer
    chasing inside the object, e.g. a B-tree node binary search). *)

val seq_scan_reference : t -> base:int -> bytes:int -> write:bool -> unit

val touch_bytes_reference : t -> addr:int -> len:int -> write:bool -> unit

val touch_dependent_reference : t -> addr:int -> len:int -> write:bool -> unit
(** Naive per-line walks (one EPC probe + one TLB probe + one cache access
    per 64-byte line) — the specification oracles the page-granular fast
    paths are tested against.  Not used on production paths. *)

val flush_range : t -> base:int -> bytes:int -> unit
(** CLFLUSH a range (the Fig. 7 methodology). *)

val flush_all : t -> unit

val swaps : t -> int
(** EPC page swaps incurred so far (Mee engine only). *)

val tlb_stats : t -> int * int
(** [(lookups, hits)] of the internal data TLB.  Fast-path accounting
    (see {!seq_scan}) must keep these identical to a per-line walk; the
    golden regression tests assert exactly that. *)

val cache_stats : t -> int * int
(** [(accesses, misses)] of the LLC model. *)

val resident_pages : t -> int
(** EPC-resident page count (Mee engine only; 0 otherwise). *)

val avg_access_cycles : t -> pattern:[ `Seq | `Random ] -> working_set:int -> float
(** Measured average cycles per access for the pattern at the given
    working-set size — the Fig. 11 metric.  Runs a warm-up pass then a
    measured pass on a private clock; does not disturb [t]'s clock. *)
