(** Multi-monitor fleet with live enclave migration.

    The single-platform stack scaled out: [nodes] independent platforms
    — each with its own TPM, measured boot, RustMonitor and hapk — each
    running one {!Hyperenclave_serve.Serve} plane, joined by the
    deterministic {!Netsim} network and fronted by a consistent-hash
    load-balancer tier that shards tenants across nodes with session
    affinity.

    {2 Trust across monitors}

    There is no fleet-wide secret.  Every node's trust anchor
    ({!anchor}) is what a relying party would provision per machine:
    that node's TPM EK public key, its golden boot measurements, its
    monitor's hapk, and the measurement of its quoting enclave.  Every
    cross-node decision — a client handshake through the LB, a
    migration source deciding whether to ship sealed state — verifies a
    quote against the {e destination's} anchor with the hapk pinned
    ({!Hyperenclave_attestation.Verifier.verify} [~expected_hapk]), so
    an honestly-booted sibling can never answer for the node actually
    addressed.

    {2 Live migration}

    Moving a tenant from node A to B is a three-message attested
    protocol ({!Migrate}):

    + {e offer} — B generates a fresh nonce and an ephemeral {!Kx}
      share, and quotes them (plus tenant and route) through its
      quoting enclave: proof that the key share belongs to a real
      monitor-backed node {e before} any state moves;
    + {e seal} — A verifies B's quote against B's anchor (golden boot,
      pinned hapk, pinned quoting-enclave MRENCLAVE, transcript
      binding), exports the tenant ({!Hyperenclave_serve.Serve.export_tenant}:
      session keys, sequence cursors, committed EDMM pages, the burnt
      replay cache) and seals the blob under a transport key derived
      from the {!Kx} agreement, with AAD binding tenant, route and
      nonce;
    + {e install} — B burns the offer (each nonce admits one blob),
      unseals, rebuilds the tenant
      ({!Hyperenclave_serve.Serve.import_tenant} — refusing unless its
      own enclave measures identically), and A cuts over
      ({!Hyperenclave_serve.Serve.retire_tenant}) so stragglers get
      typed forwards.

    Clients notice nothing: session keys and sequence numbers survive
    the move, and {!Client.call} chases the typed
    [Session_migrated] forward transparently. *)

open Hyperenclave_hw
open Hyperenclave_tee
module Serve := Hyperenclave_serve.Serve
module Verifier := Hyperenclave_attestation.Verifier
module Invariants := Hyperenclave_monitor.Invariants
module Kx := Hyperenclave_crypto.Kx
module Signature := Hyperenclave_crypto.Signature

(** {1 Errors} *)

type error =
  | Reject of Serve.reject  (** a plane-level typed rejection *)
  | Attest_failed of Verifier.failure
      (** a migration peer's quote did not verify against its anchor *)
  | Binding_mismatch
      (** quote or blob AAD does not bind this tenant / route / nonce *)
  | Unknown_offer
      (** no pending offer for this (tenant, nonce) on this node —
          never offered, already consumed, or shipped to the wrong
          destination *)
  | Transport_auth  (** sealed state blob failed authentication *)
  | Blob_malformed of string  (** structural decode failure *)
  | Net_partition  (** the network dropped the message past retries *)
  | Node_down of int
  | Migration_fault of string
      (** a permanent injected fault at the ["cluster.migrate"] site *)

val pp_error : Format.formatter -> error -> unit

(** {1 Nodes} *)

(** A relying party's per-node trust anchor, recorded at provisioning
    time. *)
type anchor = {
  a_golden : Verifier.golden;
  a_hapk : Signature.public_key;
  a_quoting : bytes;  (** MRENCLAVE of the node's quoting enclave *)
}

module Node : sig
  type t

  val id : t -> int
  val platform : t -> Platform.t
  val plane : t -> Serve.t
  (** @raise Invalid_argument when the node is dead. *)

  val alive : t -> bool
  val version : t -> int  (** bumped by {!upgrade_node} *)
end

(** {1 The cluster} *)

type config = {
  nodes : int;
  seed : int64;
      (** derives every node platform, the network schedule, and the
          protocol randomness — equal seeds, equal fleets *)
  serve : Serve.config;  (** per-node serving-plane configuration *)
  net : Netsim.config;
  vnodes : int;  (** virtual nodes per node on the consistent-hash ring *)
  migration_retries : int;  (** network retries per protocol message *)
}

val default_config : config
(** 4 nodes, seed 42, default serve and net configs, 16 vnodes, 3
    retries. *)

type t

val create : config -> t
(** Boot [nodes] platforms (derived seeds), one serving plane per node
    (node [i] answers as identity [i]), record every anchor, and wire
    the network. *)

val singleton : platform:Platform.t -> ?serve:Serve.config -> unit -> t
(** A one-node cluster wrapping an existing platform — the shim that
    keeps single-node callers on the node-addressed API.  [plane t 0]
    is the serving plane; the network is a loopback. *)

val node : t -> int -> Node.t
val nodes : t -> Node.t list
val plane : t -> int -> Serve.t
(** @raise Invalid_argument for a dead or out-of-range node. *)

val net : t -> Netsim.t
val anchor : t -> int -> anchor

(** {1 Tenants and routing} *)

val add_tenant : t -> name:string -> (unit -> Backend.config) -> int
(** Register a tenant fleet-wide and build it on its placement node
    (consistent hash over live nodes); returns the owner.  The
    generator is re-invoked whenever the tenant is (re)built — on
    migration destinations and failover rebuilds — and must be
    deterministic in the measured code it produces, or cross-node
    re-attestation will refuse the import.
    @raise Invalid_argument on a duplicate name. *)

val owner : t -> tenant:string -> int
(** Current placement (after any migrations), dead or alive.
    @raise Invalid_argument for an unregistered tenant. *)

val route : t -> tenant:string -> (int, error) result
(** The LB decision: current owner if alive, else {!Node_down}. *)

(** {1 Migration} *)

(** The three protocol messages, exposed so tests can replay, tamper
    and mis-route them; {!migrate} drives them over the network. *)
module Migrate : sig
  type offer = {
    o_tenant : string;
    o_src : int;
    o_dst : int;
    o_nonce : bytes;
    o_kx : Kx.public;
    o_quote : bytes;  (** wire-encoded, binds all of the above *)
  }

  type package = {
    p_tenant : string;
    p_src : int;
    p_dst : int;
    p_nonce : bytes;  (** echo of the offer nonce *)
    p_kx : Kx.public;  (** the source's ephemeral share *)
    p_blob : bytes;  (** encoded sealed export — opaque, tamper-evident *)
  }

  val offer : t -> tenant:string -> src:int -> dst:int -> (offer, error) result
  (** Runs on [dst]: fresh nonce + share, quoted.  The secret share is
      held pending until {!install} burns it. *)

  val seal : t -> offer -> (package, error) result
  (** Runs on [o_src]: verify the destination's quote (anchor + hapk +
      quoting-enclave pin + transcript binding), export the tenant, seal
      under the agreed transport key.  Crosses the ["cluster.migrate"]
      fault site. *)

  val install : t -> package -> (int, error) result
  (** Runs on [p_dst]: burn the pending offer, unseal, rebuild the
      tenant and its sessions.  Returns sessions installed. *)
end

val migrate : t -> tenant:string -> dst:int -> (int, error) result
(** The full live migration: offer, seal and install shipped over the
    network (with bounded retries), then cutover on the source and a
    placement update.  Refuses with [Reject Tenant_busy] while admitted
    requests are staged — flush first.  Returns sessions moved. *)

(** {1 Fleet operations} *)

val kill_node : t -> int -> unit
(** Power the node off: plane torn down (sessions and tenants lost),
    network partitioned.  Placement entries keep pointing at it until
    {!failover}. *)

val revive_node : t -> int -> unit
(** Boot the node back up with an empty plane (same identity). *)

val failover : t -> tenant:string -> (int, error) result
(** Crash recovery for a tenant whose owner died: rebuild it {e fresh}
    on the ring's next live node and repoint placement.  Unlike
    {!migrate} this loses sessions — clients must
    {!Client.reconnect}. *)

val upgrade_node : t -> int -> (unit, error) result
(** Rolling-upgrade step: live-migrate every resident tenant to ring
    neighbours, tear the plane down and rebuild it (version + 1), then
    live-migrate them home.  Sessions survive the round trip. *)

val rolling_upgrade : t -> (unit, error) result
(** {!upgrade_node} across the whole fleet in node order. *)

val check : t -> (int * Invariants.finding list) list
(** Run the monitor invariant checker on every live node.  All-green is
    the fleet health criterion after chaos. *)

type stats = {
  migrations : int;
  migration_cycles : int;  (** total source-side pause, cycles *)
  max_pause : int;  (** worst single migration pause *)
}

val stats : t -> stats

val destroy : t -> unit

(** {1 Clients}

    A node-addressed client: resolves its tenant through the LB,
    pins the owning node's anchor (hapk included) for the handshake,
    and keeps session affinity with that node until a typed forward
    redirects it. *)

module Client : sig
  type cluster := t

  type t

  val connect :
    cluster ->
    rng:Rng.t ->
    tenant:string ->
    ?policy:Verifier.policy ->
    unit ->
    (t, error) result
  (** Resolve the tenant, run the attested handshake against the owner
      over the network (chasing [Tenant_migrated] forwards), and hold
      the session.  The default policy pins nothing beyond the node
      anchor ([allow_debug = false]). *)

  val node_id : t -> int  (** current affinity *)

  val session_id : t -> int

  val call :
    t -> (int * bytes) list -> ((bytes, Serve.reject) result list, error) result
  (** Submit a batch over the network, flush the owning plane, read the
      replies.  A typed [Session_migrated] forward re-routes the {e
      same} sealed envelopes to the new owner transparently — sequence
      numbers and keys survived the migration.  Network loss past
      retries is {!Net_partition}. *)

  val reconnect : t -> (unit, error) result
  (** Re-resolve and re-handshake from scratch (fresh session) — the
      recovery path after {!kill_node} + {!failover}. *)

  val close : t -> unit
end
