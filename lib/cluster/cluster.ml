open Hyperenclave_hw
open Hyperenclave_tee
module Serve = Hyperenclave_serve.Serve
module Verifier = Hyperenclave_attestation.Verifier
module Wire = Hyperenclave_attestation.Wire
module Invariants = Hyperenclave_monitor.Invariants
module Monitor = Hyperenclave_monitor.Monitor
module Tpm = Hyperenclave_tpm.Tpm
module Kx = Hyperenclave_crypto.Kx
module Authenc = Hyperenclave_crypto.Authenc
module Sha256 = Hyperenclave_crypto.Sha256
module Signature = Hyperenclave_crypto.Signature
module Fault = Hyperenclave_fault.Fault

type error =
  | Reject of Serve.reject
  | Attest_failed of Verifier.failure
  | Binding_mismatch
  | Unknown_offer
  | Transport_auth
  | Blob_malformed of string
  | Net_partition
  | Node_down of int
  | Migration_fault of string

let pp_error fmt = function
  | Reject r -> Format.fprintf fmt "plane reject: %a" Serve.pp_reject r
  | Attest_failed f ->
      Format.fprintf fmt "peer attestation failed: %a" Verifier.pp_failure f
  | Binding_mismatch ->
      Format.pp_print_string fmt
        "message does not bind this tenant / route / nonce"
  | Unknown_offer ->
      Format.pp_print_string fmt "no pending migration offer for this nonce"
  | Transport_auth ->
      Format.pp_print_string fmt "sealed migration blob failed authentication"
  | Blob_malformed m -> Format.fprintf fmt "malformed migration blob: %s" m
  | Net_partition ->
      Format.pp_print_string fmt "network dropped the message past retries"
  | Node_down n -> Format.fprintf fmt "node %d is down" n
  | Migration_fault m -> Format.fprintf fmt "migration fault: %s" m

type anchor = {
  a_golden : Verifier.golden;
  a_hapk : Signature.public_key;
  a_quoting : bytes;
}

type node = {
  n_id : int;
  n_platform : Platform.t;
  n_config : Serve.Node_config.t;
  mutable n_plane : Serve.t option;  (* None = powered off *)
  mutable n_version : int;
  n_tenants : (string, unit) Hashtbl.t;
      (* tenants built on the node's *current* plane *)
  n_anchor : anchor;
}

module Node = struct
  type t = node

  let id n = n.n_id
  let platform n = n.n_platform

  let plane n =
    match n.n_plane with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Cluster: node %d is down" n.n_id)

  let alive n = n.n_plane <> None
  let version n = n.n_version
end

type config = {
  nodes : int;
  seed : int64;
  serve : Serve.config;
  net : Netsim.config;
  vnodes : int;
  migration_retries : int;
}

let default_config =
  {
    nodes = 4;
    seed = 42L;
    serve = Serve.default_config;
    net = Netsim.default_config;
    vnodes = 16;
    migration_retries = 3;
  }

type t = {
  c_config : config;
  c_nodes : node array;
  c_net : Netsim.t;
  c_wire_clock : Cycles.t;
  c_rng : Rng.t;
  c_registry : (string, unit -> Backend.config) Hashtbl.t;
  c_order : string Queue.t;  (* registration order, for drains *)
  c_placement : (string, int) Hashtbl.t;
  c_offers : (string, Kx.secret) Hashtbl.t;
      (* "(dst):(tenant):(nonce hex)" -> the destination's pending
         ephemeral secret; burnt on install so each offer admits exactly
         one blob *)
  mutable c_migrations : int;
  mutable c_migration_cycles : int;
  mutable c_max_pause : int;
  mutable c_destroyed : bool;
}

let fault_site = "cluster.migrate"

let mk_node ~node_id ~serve platform =
  let nc = Serve.Node_config.v ~node_id ~platform serve in
  let plane = Serve.create_node ~platform nc in
  let anchor =
    {
      a_golden =
        Verifier.golden_of_boot_log
          ~ek_public:(Tpm.ek_public platform.Platform.tpm)
          (Monitor.boot_log platform.Platform.monitor);
      a_hapk = (Serve.identity plane).Serve.hapk;
      a_quoting = Serve.quoting_identity plane;
    }
  in
  {
    n_id = node_id;
    n_platform = platform;
    n_config = nc;
    n_plane = Some plane;
    n_version = 0;
    n_tenants = Hashtbl.create 4;
    n_anchor = anchor;
  }

let mk ~config ~platforms ~net_clock =
  let nodes =
    Array.of_list
      (List.mapi
         (fun i platform -> mk_node ~node_id:i ~serve:config.serve platform)
         platforms)
  in
  {
    c_config = config;
    c_nodes = nodes;
    c_net =
      Netsim.create ~clock:net_clock
        ~seed:(Int64.add config.seed 0xC0FFEEL)
        ~nodes:config.nodes config.net;
    c_wire_clock = net_clock;
    c_rng = Rng.create ~seed:(Int64.add config.seed 0x5EED5L);
    c_registry = Hashtbl.create 8;
    c_order = Queue.create ();
    c_placement = Hashtbl.create 8;
    c_offers = Hashtbl.create 8;
    c_migrations = 0;
    c_migration_cycles = 0;
    c_max_pause = 0;
    c_destroyed = false;
  }

let create config =
  if config.nodes <= 0 then
    invalid_arg "Cluster.create: nodes must be positive";
  if config.vnodes <= 0 then
    invalid_arg "Cluster.create: vnodes must be positive";
  if config.migration_retries < 0 then
    invalid_arg "Cluster.create: migration_retries must be non-negative";
  let platforms =
    List.init config.nodes (fun i ->
        (* Distinct derived seeds: every node gets its own TPM state,
           K_root and therefore hapk — siblings are honestly booted but
           cryptographically distinct machines. *)
        Platform.create
          ~seed:(Int64.add config.seed (Int64.of_int (0x9E3779B1 * (i + 1))))
          ())
  in
  let net_clock = Cycles.create () in
  mk ~config ~platforms ~net_clock

let singleton ~platform ?(serve = Serve.default_config) () =
  let config = { default_config with nodes = 1; serve } in
  mk ~config ~platforms:[ platform ] ~net_clock:platform.Platform.clock

let node t i =
  if i < 0 || i >= Array.length t.c_nodes then
    invalid_arg (Printf.sprintf "Cluster.node: no node %d" i);
  t.c_nodes.(i)

let nodes t = Array.to_list t.c_nodes
let plane t i = Node.plane (node t i)
let net t = t.c_net
let anchor t i = (node t i).n_anchor

(* ---------------------------------------------------------------------- *)
(* Consistent-hash placement                                              *)

let hash_point s =
  let d = Sha256.digest_string s in
  Int64.to_int (Bytes.get_int64_le d 0) land max_int

let ring_owner t name =
  let points = ref [] in
  Array.iter
    (fun n ->
      if Node.alive n then
        for v = 0 to t.c_config.vnodes - 1 do
          points :=
            (hash_point (Printf.sprintf "node:%d:%d" n.n_id v), n.n_id)
            :: !points
        done)
    t.c_nodes;
  match List.sort compare !points with
  | [] -> None
  | sorted ->
      let h = hash_point ("tenant:" ^ name) in
      let rec succ = function
        | [] -> Some (snd (List.hd sorted)) (* wrap *)
        | (p, id) :: rest -> if p >= h then Some id else succ rest
      in
      succ sorted

let owner t ~tenant =
  if not (Hashtbl.mem t.c_registry tenant) then
    invalid_arg (Printf.sprintf "Cluster.owner: unknown tenant %s" tenant);
  match Hashtbl.find_opt t.c_placement tenant with
  | Some o -> o
  | None -> (
      match ring_owner t tenant with
      | Some o -> o
      | None -> invalid_arg "Cluster.owner: no live nodes")

let route t ~tenant =
  let o = owner t ~tenant in
  if Node.alive (node t o) then Ok o else Error (Node_down o)

(* Build the tenant's backend on [n]'s current plane if it is not
   there yet (migration destinations, failover rebuilds). *)
let ensure_tenant t (n : node) name =
  match Hashtbl.find_opt t.c_registry name with
  | None -> Error (Reject (Serve.Unknown_tenant name))
  | Some gen ->
      if not (Hashtbl.mem n.n_tenants name) then begin
        ignore (Serve.add_tenant (Node.plane n) ~name (gen ()) : Backend.t);
        Hashtbl.replace n.n_tenants name ()
      end;
      Ok ()

let add_tenant t ~name gen =
  if Hashtbl.mem t.c_registry name then
    invalid_arg (Printf.sprintf "Cluster.add_tenant: duplicate tenant %s" name);
  Hashtbl.replace t.c_registry name gen;
  Queue.push name t.c_order;
  let o =
    match ring_owner t name with
    | Some o -> o
    | None -> invalid_arg "Cluster.add_tenant: no live nodes"
  in
  Hashtbl.replace t.c_placement name o;
  (match ensure_tenant t (node t o) name with
  | Ok () -> ()
  | Error _ -> assert false (* just registered *));
  o

(* ---------------------------------------------------------------------- *)
(* Network helper                                                         *)

let send t ~src ~dst ~bytes =
  if Netsim.is_down t.c_net src then Error (Node_down src)
  else if Netsim.is_down t.c_net dst then Error (Node_down dst)
  else
    let rec go attempt =
      match Netsim.transfer t.c_net ~src ~dst ~bytes with
      | Netsim.Delivered _ -> Ok ()
      | Netsim.Dropped ->
          if attempt >= t.c_config.migration_retries then Error Net_partition
          else go (attempt + 1)
    in
    go 0

(* ---------------------------------------------------------------------- *)
(* Migration protocol                                                     *)

let hex b =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.init (Bytes.length b) (Bytes.get_uint8 b)))

let offer_key ~dst ~tenant ~nonce =
  Printf.sprintf "%d:%s:%s" dst tenant (hex nonce)

(* Length-prefixed transcript over every offer field: what the
   destination's quote binds, so a verified offer cannot be spliced onto
   another tenant, route or key share. *)
let offer_transcript ~tenant ~src ~dst ~nonce ~kx =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "cluster-migrate-offer:";
  List.iter
    (fun field ->
      let len = Bytes.create 8 in
      Bytes.set_int64_le len 0 (Int64.of_int (Bytes.length field));
      Sha256.update ctx len;
      Sha256.update ctx field)
    [
      Bytes.of_string tenant;
      Bytes.of_string (string_of_int src);
      Bytes.of_string (string_of_int dst);
      nonce;
      kx;
    ];
  Sha256.finalize ctx

let transport_key ~shared ~nonce =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "cluster-migrate-key:";
  Sha256.update ctx shared;
  Sha256.update ctx nonce;
  Sha256.finalize ctx

let blob_aad ~tenant ~src ~dst ~nonce =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "cluster-migrate:v1";
  Buffer.add_int64_le buf (Int64.of_int (String.length tenant));
  Buffer.add_string buf tenant;
  Buffer.add_int64_le buf (Int64.of_int src);
  Buffer.add_int64_le buf (Int64.of_int dst);
  Buffer.add_bytes buf nonce;
  Buffer.to_bytes buf

(* --- export blob wire form ------------------------------------------- *)

let blob_magic = "hemig1:"

let put_u64 buf n = Buffer.add_int64_le buf (Int64.of_int n)

let put_field buf b =
  put_u64 buf (Bytes.length b);
  Buffer.add_bytes buf b

let encode_export (x : Serve.tenant_export) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf blob_magic;
  put_field buf (Bytes.of_string x.Serve.x_tenant);
  put_field buf x.Serve.x_identity;
  put_u64 buf (List.length x.Serve.x_sessions);
  List.iter
    (fun (s : Serve.session_export) ->
      put_u64 buf s.Serve.x_session;
      put_field buf s.Serve.x_key;
      put_u64 buf s.Serve.x_recv_seq;
      put_u64 buf s.Serve.x_pages;
      put_field buf s.Serve.x_state)
    x.Serve.x_sessions;
  put_u64 buf (List.length x.Serve.x_nonces);
  List.iter (fun n -> put_field buf (Bytes.of_string n)) x.Serve.x_nonces;
  Buffer.to_bytes buf

exception Short of string

let decode_export b =
  let pos = ref 0 in
  let need n what =
    if !pos + n > Bytes.length b then raise (Short what)
  in
  let u64 what =
    need 8 what;
    let v = Int64.to_int (Bytes.get_int64_le b !pos) in
    pos := !pos + 8;
    if v < 0 then raise (Short what);
    v
  in
  let field what =
    let n = u64 what in
    need n what;
    let v = Bytes.sub b !pos n in
    pos := !pos + n;
    v
  in
  match
    let m = String.length blob_magic in
    need m "magic";
    if Bytes.sub_string b 0 m <> blob_magic then raise (Short "magic");
    pos := m;
    let x_tenant = Bytes.to_string (field "tenant") in
    let x_identity = field "identity" in
    let nsessions = u64 "session count" in
    if nsessions > 1_000_000 then raise (Short "session count");
    let x_sessions =
      List.init nsessions (fun _ ->
          let x_session = u64 "session id" in
          let x_key = field "key" in
          let x_recv_seq = u64 "recv_seq" in
          let x_pages = u64 "pages" in
          let x_state = field "state" in
          { Serve.x_session; x_key; x_recv_seq; x_pages; x_state })
    in
    let nnonces = u64 "nonce count" in
    if nnonces > 1_000_000 then raise (Short "nonce count");
    let x_nonces =
      List.init nnonces (fun _ -> Bytes.to_string (field "nonce"))
    in
    if !pos <> Bytes.length b then raise (Short "trailing bytes");
    { Serve.x_tenant; x_identity; x_sessions; x_nonces }
  with
  | x -> Ok x
  | exception Short what -> Error what

module Migrate = struct
  type offer = {
    o_tenant : string;
    o_src : int;
    o_dst : int;
    o_nonce : bytes;
    o_kx : Kx.public;
    o_quote : bytes;
  }

  type package = {
    p_tenant : string;
    p_src : int;
    p_dst : int;
    p_nonce : bytes;
    p_kx : Kx.public;
    p_blob : bytes;
  }

  let offer t ~tenant ~src ~dst =
    let dn = node t dst in
    if not (Node.alive dn) then Error (Node_down dst)
    else begin
      let o_nonce = Rng.bytes t.c_rng 16 in
      let secret, o_kx = Kx.generate t.c_rng in
      let report_data =
        offer_transcript ~tenant ~src ~dst ~nonce:o_nonce ~kx:o_kx
      in
      let quote =
        Serve.node_quote (Node.plane dn) ~report_data ~nonce:o_nonce
      in
      Hashtbl.replace t.c_offers (offer_key ~dst ~tenant ~nonce:o_nonce) secret;
      Ok
        {
          o_tenant = tenant;
          o_src = src;
          o_dst = dst;
          o_nonce;
          o_kx;
          o_quote = Wire.encode quote;
        }
    end

  let seal t (o : offer) =
    let sn = node t o.o_src in
    if not (Node.alive sn) then Error (Node_down o.o_src)
    else begin
      let dst_anchor = (node t o.o_dst).n_anchor in
      match Wire.decode o.o_quote with
      | Error m -> Error (Blob_malformed ("offer quote: " ^ m))
      | Ok quote -> (
          (* The full fleet trust check before any state leaves: the
             destination's golden boot, its pinned hapk (a sibling
             monitor must not be able to receive this tenant), and its
             pinned quoting enclave. *)
          match
            Verifier.verify ~golden:dst_anchor.a_golden
              ~policy:
                {
                  Verifier.expected_mrenclave = Some dst_anchor.a_quoting;
                  expected_mrsigner = None;
                  allow_debug = false;
                }
              ~expected_hapk:dst_anchor.a_hapk ~nonce:o.o_nonce quote
          with
          | Verifier.Error f -> Error (Attest_failed f)
          | Verifier.Ok report ->
              let expected =
                offer_transcript ~tenant:o.o_tenant ~src:o.o_src ~dst:o.o_dst
                  ~nonce:o.o_nonce ~kx:o.o_kx
              in
              let rd = report.Hyperenclave_monitor.Sgx_types.report_data in
              if
                not
                  (Bytes.length rd >= 32
                  && Bytes.equal expected (Bytes.sub rd 0 32))
              then Error Binding_mismatch
              else begin
                let backoff attempt =
                  Cycles.tick sn.n_platform.Platform.clock (1_000 * attempt)
                in
                match
                  Fault.with_retries ~backoff (fun () ->
                      Fault.point fault_site;
                      Serve.export_tenant (Node.plane sn) ~tenant:o.o_tenant)
                with
                | exception Fault.Injected { site; kind } ->
                    Error
                      (Migration_fault
                         (Printf.sprintf "injected %s fault at %s"
                            (Fault.kind_name kind) site))
                | Error r -> Error (Reject r)
                | Ok export -> (
                    let secret, p_kx = Kx.generate t.c_rng in
                    match Kx.shared secret o.o_kx with
                    | None -> Error Binding_mismatch
                    | Some shared ->
                        let key = transport_key ~shared ~nonce:o.o_nonce in
                        let aad =
                          blob_aad ~tenant:o.o_tenant ~src:o.o_src
                            ~dst:o.o_dst ~nonce:o.o_nonce
                        in
                        let sealed =
                          Authenc.seal ~key ~aad
                            ~nonce:(Rng.bytes t.c_rng 12)
                            (encode_export export)
                        in
                        Ok
                          {
                            p_tenant = o.o_tenant;
                            p_src = o.o_src;
                            p_dst = o.o_dst;
                            p_nonce = o.o_nonce;
                            p_kx;
                            p_blob = Authenc.encode sealed;
                          })
              end)
    end

  let install t (p : package) =
    let dn = node t p.p_dst in
    if not (Node.alive dn) then Error (Node_down p.p_dst)
    else begin
      let key_id = offer_key ~dst:p.p_dst ~tenant:p.p_tenant ~nonce:p.p_nonce in
      match Hashtbl.find_opt t.c_offers key_id with
      | None ->
          (* Never offered by this node, already consumed (replay), or
             the package was re-routed to a destination that did not
             make the offer. *)
          Error Unknown_offer
      | Some secret -> (
          Hashtbl.remove t.c_offers key_id;
          match Kx.shared secret p.p_kx with
          | None -> Error Binding_mismatch
          | Some shared -> (
              let key = transport_key ~shared ~nonce:p.p_nonce in
              match Authenc.decode p.p_blob with
              | exception Invalid_argument m -> Error (Blob_malformed m)
              | sealed -> (
                  let expected_aad =
                    blob_aad ~tenant:p.p_tenant ~src:p.p_src ~dst:p.p_dst
                      ~nonce:p.p_nonce
                  in
                  if not (Bytes.equal sealed.Authenc.aad expected_aad) then
                    Error Binding_mismatch
                  else
                    match Authenc.unseal ~key sealed with
                    | exception Authenc.Authentication_failure ->
                        Error Transport_auth
                    | plain -> (
                        match decode_export plain with
                        | Error m -> Error (Blob_malformed m)
                        | Ok export -> (
                            match ensure_tenant t dn p.p_tenant with
                            | Error _ as e -> e
                            | Ok () -> (
                                match
                                  Serve.import_tenant (Node.plane dn) export
                                with
                                | Error r -> Error (Reject r)
                                | Ok n -> Ok n))))))
    end
end

(* Rough wire sizes: enough for the network cost model, not a codec. *)
let offer_bytes (o : Migrate.offer) =
  String.length o.Migrate.o_tenant
  + Bytes.length o.Migrate.o_nonce
  + Bytes.length o.Migrate.o_kx
  + Bytes.length o.Migrate.o_quote
  + 24

let package_bytes (p : Migrate.package) =
  String.length p.Migrate.p_tenant
  + Bytes.length p.Migrate.p_nonce
  + Bytes.length p.Migrate.p_kx
  + Bytes.length p.Migrate.p_blob
  + 24

let migrate t ~tenant ~dst =
  let src = owner t ~tenant in
  if src = dst then Ok 0
  else if not (Node.alive (node t src)) then Error (Node_down src)
  else if not (Node.alive (node t dst)) then Error (Node_down dst)
  else begin
    (* The pause a client would observe: source-side export work,
       destination-side rebuild work, and every wire crossing.  The
       three clocks are distinct by construction, so the deltas sum. *)
    let src_clock = (node t src).n_platform.Platform.clock in
    let dst_clock = (node t dst).n_platform.Platform.clock in
    let s0 = Cycles.now src_clock in
    let d0 = Cycles.now dst_clock in
    let w0 = Cycles.now t.c_wire_clock in
    let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
    let* o = Migrate.offer t ~tenant ~src ~dst in
    let* () = send t ~src:dst ~dst:src ~bytes:(offer_bytes o) in
    let* p = Migrate.seal t o in
    let* () = send t ~src ~dst ~bytes:(package_bytes p) in
    let* n = Migrate.install t p in
    let* _retired =
      match Serve.retire_tenant (plane t src) ~tenant ~to_node:dst with
      | Error r -> Error (Reject r)
      | Ok k -> Ok k
    in
    Hashtbl.replace t.c_placement tenant dst;
    let pause =
      Cycles.now src_clock - s0
      + (Cycles.now dst_clock - d0)
      + (Cycles.now t.c_wire_clock - w0)
    in
    t.c_migrations <- t.c_migrations + 1;
    t.c_migration_cycles <- t.c_migration_cycles + pause;
    if pause > t.c_max_pause then t.c_max_pause <- pause;
    Ok n
  end

(* ---------------------------------------------------------------------- *)
(* Fleet operations                                                       *)

let kill_node t i =
  let n = node t i in
  (match n.n_plane with
  | Some p ->
      Serve.destroy p;
      n.n_plane <- None
  | None -> ());
  Hashtbl.reset n.n_tenants;
  Netsim.set_down t.c_net i true

let revive_node t i =
  let n = node t i in
  if n.n_plane = None then begin
    n.n_plane <- Some (Serve.create_node ~platform:n.n_platform n.n_config);
    Netsim.set_down t.c_net i false
  end

let failover t ~tenant =
  let o = owner t ~tenant in
  if Node.alive (node t o) then Ok o
  else
    match ring_owner t tenant with
    | None -> Error (Node_down o)
    | Some dst -> (
        match ensure_tenant t (node t dst) tenant with
        | Error _ as e -> e
        | Ok () ->
            Hashtbl.replace t.c_placement tenant dst;
            Ok dst)

let resident_tenants t i =
  Hashtbl.fold
    (fun name o acc -> if o = i then name :: acc else acc)
    t.c_placement []
  |> List.sort compare

(* Ring-next live node other than [i] for draining. *)
let drain_target t i =
  let live =
    Array.to_list t.c_nodes
    |> List.filter (fun n -> Node.alive n && n.n_id <> i)
    |> List.map (fun n -> n.n_id)
  in
  match live with
  | [] -> None
  | ids -> Some (List.nth ids (i mod List.length ids))

let upgrade_node t i =
  let n = node t i in
  if not (Node.alive n) then Error (Node_down i)
  else begin
    let residents = resident_tenants t i in
    let rec drain acc = function
      | [] -> Ok (List.rev acc)
      | tenant :: rest -> (
          match drain_target t i with
          | None ->
              if residents = [] then Ok (List.rev acc)
              else Error (Node_down i) (* nowhere to drain to *)
          | Some dst -> (
              match migrate t ~tenant ~dst with
              | Error e -> Error e
              | Ok _ -> drain (tenant :: acc) rest))
    in
    match drain [] residents with
    | Error e -> Error e
    | Ok drained -> (
        (* The upgrade proper: tear the plane down and bring up the new
           build under the same node identity. *)
        Serve.destroy (Node.plane n);
        Hashtbl.reset n.n_tenants;
        n.n_plane <- Some (Serve.create_node ~platform:n.n_platform n.n_config);
        n.n_version <- n.n_version + 1;
        let rec come_home = function
          | [] -> Ok ()
          | tenant :: rest -> (
              match migrate t ~tenant ~dst:i with
              | Error e -> Error e
              | Ok _ -> come_home rest)
        in
        come_home drained)
  end

let rolling_upgrade t =
  let rec go i =
    if i >= Array.length t.c_nodes then Ok ()
    else
      match upgrade_node t i with Error e -> Error e | Ok () -> go (i + 1)
  in
  go 0

let check t =
  Array.to_list t.c_nodes
  |> List.filter Node.alive
  |> List.map (fun n ->
         (n.n_id, Invariants.check n.n_platform.Platform.monitor))

type stats = { migrations : int; migration_cycles : int; max_pause : int }

let stats t =
  {
    migrations = t.c_migrations;
    migration_cycles = t.c_migration_cycles;
    max_pause = t.c_max_pause;
  }

let destroy t =
  if not t.c_destroyed then begin
    t.c_destroyed <- true;
    Array.iter
      (fun n ->
        match n.n_plane with
        | Some p ->
            Serve.destroy p;
            n.n_plane <- None
        | None -> ())
      t.c_nodes;
    Hashtbl.reset t.c_registry;
    Hashtbl.reset t.c_placement;
    Hashtbl.reset t.c_offers
  end

(* ---------------------------------------------------------------------- *)
(* Clients                                                                *)

module Client = struct
  type cluster = t

  type t = {
    cl : cluster;
    tenant : string;
    rng : Rng.t;
    policy : Verifier.policy;
    mutable sc : Serve.Client.t;
    mutable node : int;
    mutable open_ : bool;
  }

  let default_policy =
    {
      Verifier.expected_mrenclave = None;
      expected_mrsigner = None;
      allow_debug = false;
    }

  let lb_send c ~bytes = send c.cl ~src:Netsim.front ~dst:c.node ~bytes

  let lb_recv c ~bytes = send c.cl ~src:c.node ~dst:Netsim.front ~bytes

  let hello_bytes = 16 + 32

  let accept_bytes (a : Serve.accept) =
    Bytes.length a.Serve.quote_wire
    + Bytes.length a.Serve.tenant_identity
    + 32 + 16

  let request_bytes (r : Serve.request) =
    Bytes.length r.Serve.envelope.Authenc.ciphertext + 70

  let reply_bytes (r : Serve.reply) =
    (match r.Serve.r_result with
    | Ok sealed -> Bytes.length sealed.Authenc.ciphertext
    | Error _ -> 0)
    + 70

  (* One handshake attempt against [c.node]; chases Tenant_migrated
     forwards by re-pinning the new owner's anchor (bounded by fleet
     size — forwards cannot cycle without a migration in between). *)
  let rec connect_at c hops =
    if hops > Array.length c.cl.c_nodes then Error (Reject (Serve.Unknown_tenant c.tenant))
    else if not (Node.alive (node c.cl c.node)) then Error (Node_down c.node)
    else begin
      let a = anchor c.cl c.node in
      c.sc <-
        Serve.Client.create ~rng:c.rng ~golden:a.a_golden ~policy:c.policy
          ~expected_hapk:a.a_hapk ();
      let hello = Serve.Client.hello c.sc in
      match lb_send c ~bytes:hello_bytes with
      | Error e -> Error e
      | Ok () -> (
          match Serve.handshake (plane c.cl c.node) ~tenant:c.tenant hello with
          | Error (Serve.Tenant_migrated { to_node; _ }) ->
              c.node <- to_node;
              connect_at c (hops + 1)
          | Error r -> Error (Reject r)
          | Ok accept -> (
              match lb_recv c ~bytes:(accept_bytes accept) with
              | Error e -> Error e
              | Ok () -> (
                  match Serve.Client.establish c.sc accept with
                  | Error r -> Error (Reject r)
                  | Ok () ->
                      c.open_ <- true;
                      Ok ())))
    end

  let connect cl ~rng ~tenant ?(policy = default_policy) () =
    match route cl ~tenant with
    | Error e -> Error e
    | Ok owner ->
        let a = anchor cl owner in
        let c =
          {
            cl;
            tenant;
            rng;
            policy;
            sc =
              Serve.Client.create ~rng ~golden:a.a_golden ~policy
                ~expected_hapk:a.a_hapk ();
            node = owner;
            open_ = false;
          }
        in
        (match connect_at c 0 with Error e -> Error e | Ok () -> Ok c)

  let node_id c = c.node
  let session_id c = Serve.Client.session_id c.sc

  (* Submit one sealed request, chasing typed migration forwards: the
     same envelope stays valid on the new owner because the session's
     key and sequence cursor moved with it. *)
  let rec submit_chase c (req : Serve.request) hops =
    if hops > Array.length c.cl.c_nodes then
      Error (Reject (Serve.Session_migrated { to_node = c.node }))
    else
      match lb_send c ~bytes:(request_bytes req) with
      | Error e -> Error e
      | Ok () -> (
          match Serve.submit (plane c.cl c.node) req with
          | Error (Serve.Session_migrated { to_node }) ->
              c.node <- to_node;
              submit_chase c req (hops + 1)
          | Error (Serve.Tenant_migrated { to_node; _ }) ->
              c.node <- to_node;
              submit_chase c req (hops + 1)
          | Error r -> Ok (Error r)
          | Ok () -> Ok (Ok ()))

  let call c reqs =
    if not c.open_ then Error (Reject (Serve.Session_fault "client not connected"))
    else begin
      let rec submit_all acc = function
        | [] -> Ok (List.rev acc)
        | (ecall, data) :: rest -> (
            let req = Serve.Client.request c.sc ~ecall data in
            match submit_chase c req 0 with
            | Error e -> Error e
            | Ok admitted -> submit_all ((req.Serve.seq, admitted) :: acc) rest)
      in
      match submit_all [] reqs with
      | Error e -> Error e
      | Ok submitted -> (
          let replies = Serve.flush (plane c.cl c.node) in
          let mine = session_id c in
          let rec read acc = function
            | [] -> Ok (List.rev acc)
            | (seq, admitted) :: rest -> (
                match admitted with
                | Error r -> read (Error r :: acc) rest
                | Ok () -> (
                    match
                      List.find_opt
                        (fun (r : Serve.reply) ->
                          r.Serve.r_session_id = mine && r.Serve.r_seq = seq)
                        replies
                    with
                    | None ->
                        read
                          (Error
                             (Serve.Session_fault
                                "no reply for admitted request")
                          :: acc)
                          rest
                    | Some reply -> (
                        match lb_recv c ~bytes:(reply_bytes reply) with
                        | Error e -> Error e
                        | Ok () ->
                            read (Serve.Client.read_reply c.sc reply :: acc) rest)))
          in
          read [] submitted)
    end

  let reconnect c =
    c.open_ <- false;
    match route c.cl ~tenant:c.tenant with
    | Error e -> Error e
    | Ok owner ->
        c.node <- owner;
        connect_at c 0

  let close c =
    if c.open_ then begin
      c.open_ <- false;
      if Node.alive (node c.cl c.node) then
        match Serve.close_session (plane c.cl c.node) ~session:(session_id c) with
        | Ok () | Error _ -> ()
    end
end
