open Hyperenclave_hw

type config = {
  base_latency : int;
  cycles_per_byte : int;
  jitter : int;
  loss_per_mille : int;
}

let default_config =
  { base_latency = 12_000; cycles_per_byte = 2; jitter = 4_000;
    loss_per_mille = 0 }

let front = -1

type delivery = Delivered of int | Dropped

type t = {
  clock : Cycles.t;
  rng : Rng.t;
  config : config;
  nodes : int;
  down : bool array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes_moved : int;
  mutable cycles_charged : int;
}

let create ~clock ~seed ~nodes config =
  if nodes <= 0 then invalid_arg "Netsim.create: nodes must be positive";
  if config.base_latency < 0 || config.cycles_per_byte < 0 || config.jitter < 0
  then invalid_arg "Netsim.create: negative latency parameters";
  if config.loss_per_mille < 0 || config.loss_per_mille > 1000 then
    invalid_arg "Netsim.create: loss_per_mille must be in [0, 1000]";
  {
    clock;
    rng = Rng.create ~seed;
    config;
    nodes;
    down = Array.make nodes false;
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes_moved = 0;
    cycles_charged = 0;
  }

let check_endpoint t who =
  if who < front || who >= t.nodes then
    invalid_arg (Printf.sprintf "Netsim: endpoint %d outside the fleet" who)

let endpoint_down t who = who >= 0 && t.down.(who)

let transfer t ~src ~dst ~bytes =
  check_endpoint t src;
  check_endpoint t dst;
  if bytes < 0 then invalid_arg "Netsim.transfer: negative size";
  t.sent <- t.sent + 1;
  (* Draw jitter and loss unconditionally so the stream position — and
     therefore every later delivery — does not depend on partition
     state: killing a node never reshuffles the rest of the schedule. *)
  let jitter =
    if t.config.jitter > 0 then Rng.int t.rng t.config.jitter else 0
  in
  let lost =
    t.config.loss_per_mille > 0
    && Rng.int t.rng 1000 < t.config.loss_per_mille
  in
  if endpoint_down t src || endpoint_down t dst || lost then begin
    t.dropped <- t.dropped + 1;
    Dropped
  end
  else begin
    let latency =
      t.config.base_latency + (t.config.cycles_per_byte * bytes) + jitter
    in
    Cycles.tick t.clock latency;
    t.delivered <- t.delivered + 1;
    t.bytes_moved <- t.bytes_moved + bytes;
    t.cycles_charged <- t.cycles_charged + latency;
    Delivered latency
  end

let set_down t node v =
  if node < 0 || node >= t.nodes then
    invalid_arg "Netsim.set_down: not a node";
  t.down.(node) <- v

let is_down t node = node >= 0 && node < t.nodes && t.down.(node)

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  bytes_moved : int;
  cycles_charged : int;
}

let stats (t : t) =
  {
    sent = t.sent;
    delivered = t.delivered;
    dropped = t.dropped;
    bytes_moved = t.bytes_moved;
    cycles_charged = t.cycles_charged;
  }
