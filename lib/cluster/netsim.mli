(** Deterministic network simulator for the fleet.

    Every byte that moves between nodes — client traffic through the
    load balancer, migration offers and sealed state blobs — crosses
    [transfer], which charges latency to the shared cycle clock and
    draws jitter and loss from a seeded splitmix64 stream (the same
    discipline as {!Hyperenclave_fault.Fault}: equal seeds give equal
    delivery schedules, so cluster runs replay bit-identically).

    Endpoints are node ids; {!front} is the load-balancer tier standing
    outside the fleet.  A node marked down partitions completely: every
    transfer to or from it drops. *)

type config = {
  base_latency : int;  (** cycles charged per message before size *)
  cycles_per_byte : int;
  jitter : int;  (** uniform extra latency in [\[0, jitter)] *)
  loss_per_mille : int;  (** per-message drop probability, in 1/1000 *)
}

val default_config : config
(** 12k-cycle base (a few µs at GHz scale), 2 cycles/byte, 4k jitter,
    lossless. *)

val front : int
(** The off-fleet endpoint ([-1]) clients and the LB tier send from. *)

type delivery =
  | Delivered of int  (** latency charged, in cycles *)
  | Dropped

type t

val create :
  clock:Hyperenclave_hw.Cycles.t -> seed:int64 -> nodes:int -> config -> t

val transfer : t -> src:int -> dst:int -> bytes:int -> delivery
(** Move [bytes] from [src] to [dst]: charge
    [base_latency + cycles_per_byte * bytes + jitter] to the shared
    clock on delivery, or drop (loss draw, or either endpoint down —
    partitions drop without charging latency).
    @raise Invalid_argument for an endpoint outside [\[front, nodes)]. *)

val set_down : t -> int -> bool -> unit
(** Partition a node off ([true]) or heal it ([false]). *)

val is_down : t -> int -> bool

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  bytes_moved : int;  (** payload bytes successfully delivered *)
  cycles_charged : int;
}

val stats : t -> stats
