(* Counters, cycle histograms and a trace ring.  Deliberately dependency
   free: recording must be cheap enough to leave on everywhere, and the
   JSON emitter is hand rolled so the monitor build pulls in nothing. *)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array; (* index i holds samples in [2^(i-1), 2^i), 0 holds 0 *)
}

type event = { seq : int; at : int; name : string; detail : string }

type t = {
  tbl_counters : (string, int ref) Hashtbl.t;
  tbl_histograms : (string, hist) Hashtbl.t;
  ring : event option array;
  mutable next_seq : int;
}

let create ?(ring_capacity = 256) () =
  if ring_capacity <= 0 then invalid_arg "Telemetry.create: ring_capacity";
  {
    tbl_counters = Hashtbl.create 64;
    tbl_histograms = Hashtbl.create 16;
    ring = Array.make ring_capacity None;
    next_seq = 0;
  }

let add t name n =
  if n < 0 then invalid_arg "Telemetry.add: negative increment";
  match Hashtbl.find_opt t.tbl_counters name with
  | Some cell -> cell := !cell + n
  | None -> Hashtbl.replace t.tbl_counters name (ref n)

let incr t name = add t name 1

let raise_to t name v =
  if v < 0 then invalid_arg "Telemetry.raise_to: negative value";
  match Hashtbl.find_opt t.tbl_counters name with
  | Some cell -> if v > !cell then cell := v
  | None -> Hashtbl.replace t.tbl_counters name (ref v)

let counter t name =
  match Hashtbl.find_opt t.tbl_counters name with Some cell -> !cell | None -> 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let counters_with_prefix t prefix =
  Hashtbl.fold
    (fun name cell acc ->
      if starts_with ~prefix name then (name, !cell) :: acc else acc)
    t.tbl_counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sum_prefix t prefix =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (counters_with_prefix t prefix)

(* Bucket index: 0 for sample 0, otherwise 1 + floor(log2 sample), so
   bucket i >= 1 covers [2^(i-1), 2^i). *)
let bucket_bits = 63

let bucket_index sample =
  if sample <= 0 then 0
  else
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    bits sample 0

let observe t name sample =
  let sample = max 0 sample in
  let hist =
    match Hashtbl.find_opt t.tbl_histograms name with
    | Some hist -> hist
    | None ->
        let hist =
          {
            h_count = 0;
            h_sum = 0;
            h_min = max_int;
            h_max = 0;
            h_buckets = Array.make (bucket_bits + 1) 0;
          }
        in
        Hashtbl.replace t.tbl_histograms name hist;
        hist
  in
  hist.h_count <- hist.h_count + 1;
  hist.h_sum <- hist.h_sum + sample;
  if sample < hist.h_min then hist.h_min <- sample;
  if sample > hist.h_max then hist.h_max <- sample;
  let i = bucket_index sample in
  hist.h_buckets.(i) <- hist.h_buckets.(i) + 1

let trace t ~at ?(detail = "") name =
  let slot = t.next_seq mod Array.length t.ring in
  t.ring.(slot) <- Some { seq = t.next_seq; at; name; detail };
  t.next_seq <- t.next_seq + 1

(* --- snapshots ----------------------------------------------------------- *)

type hist_summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  histograms : (string * hist_summary) list;
  events : event list;
}

let summarize hist =
  let buckets = ref [] in
  for i = bucket_bits downto 0 do
    if hist.h_buckets.(i) > 0 then
      let lo = if i = 0 then 0 else 1 lsl (i - 1) in
      buckets := (lo, hist.h_buckets.(i)) :: !buckets
  done;
  {
    count = hist.h_count;
    sum = hist.h_sum;
    min = (if hist.h_count = 0 then 0 else hist.h_min);
    max = hist.h_max;
    buckets = !buckets;
  }

let sorted_assoc fold table =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun name v acc -> (name, fold v) :: acc) table [])

let snapshot t =
  let events =
    Array.to_list t.ring
    |> List.filter_map (fun e -> e)
    |> List.sort (fun a b -> compare a.seq b.seq)
  in
  {
    counters = sorted_assoc ( ! ) t.tbl_counters;
    histograms = sorted_assoc summarize t.tbl_histograms;
    events;
  }

let mean summary =
  if summary.count = 0 then 0.0
  else float_of_int summary.sum /. float_of_int summary.count

let delta_counters ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let prior = try List.assoc name before.counters with Not_found -> 0 in
      if v - prior <> 0 then Some (name, v - prior) else None)
    after.counters

(* --- rendering ----------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json snap =
  let buf = Buffer.create 1024 in
  let obj fields emit =
    Buffer.add_char buf '{';
    List.iteri
      (fun i field ->
        if i > 0 then Buffer.add_char buf ',';
        emit field)
      fields;
    Buffer.add_char buf '}'
  in
  Buffer.add_string buf "{\"counters\":";
  obj snap.counters (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) v));
  Buffer.add_string buf ",\"histograms\":";
  obj snap.histograms (fun (name, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%.1f,\"buckets\":[%s]}"
           (json_escape name) h.count h.sum h.min h.max (mean h)
           (String.concat ","
              (List.map
                 (fun (lo, n) -> Printf.sprintf "[%d,%d]" lo n)
                 h.buckets))));
  Buffer.add_string buf ",\"events\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"seq\":%d,\"at\":%d,\"name\":\"%s\",\"detail\":\"%s\"}" e.seq
           e.at (json_escape e.name) (json_escape e.detail)))
    snap.events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let pp fmt snap =
  Format.fprintf fmt "@[<v>counters:@,";
  List.iter
    (fun (name, v) -> Format.fprintf fmt "  %-32s %12d@," name v)
    snap.counters;
  if snap.histograms <> [] then begin
    Format.fprintf fmt "histograms (cycles):@,";
    Format.fprintf fmt "  %-26s %8s %10s %10s %10s@," "" "count" "mean" "min"
      "max";
    List.iter
      (fun (name, h) ->
        Format.fprintf fmt "  %-26s %8d %10.0f %10d %10d@," name h.count
          (mean h) h.min h.max)
      snap.histograms
  end;
  if snap.events <> [] then begin
    Format.fprintf fmt "recent events:@,";
    List.iter
      (fun e ->
        Format.fprintf fmt "  [%6d] @@%-12d %-18s %s@," e.seq e.at e.name
          e.detail)
      snap.events
  end;
  Format.fprintf fmt "@]"

let reset t =
  Hashtbl.reset t.tbl_counters;
  Hashtbl.reset t.tbl_histograms;
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next_seq <- 0
