(** Monitor-wide telemetry: the measurement substrate behind the paper's
    evaluation (Tables 1-2, Figs. 7-11).

    Everything RustMonitor and the SDK do on a hot path — hypercalls,
    world switches, EPC paging, exception flows — is counted here so that
    tests can assert on event streams, benches can print per-phase deltas,
    and the CLI can dump a platform-wide snapshot.  Three primitives:

    - {b counters}: monotonic named integers ([switch.eenter],
      [epc.evict], ...), created on first use;
    - {b histograms}: power-of-two bucketed cycle distributions
      ([cycles.eenter], ...), tracking count/sum/min/max;
    - {b trace ring}: a bounded ring buffer of recent events, each
      stamped with the simulated cycle it happened at.

    Recording never charges simulated cycles and never draws randomness,
    so instrumented runs stay cycle-for-cycle identical to bare ones. *)

type t

val create : ?ring_capacity:int -> unit -> t
(** Fresh telemetry state.  [ring_capacity] bounds the trace ring
    (default 256 events); older events are overwritten. *)

(** {1 Recording} *)

val incr : t -> string -> unit
(** Bump a counter by one, creating it at zero on first use. *)

val add : t -> string -> int -> unit
(** Bump a counter by [n >= 0]. *)

val raise_to : t -> string -> int -> unit
(** Monotonic maximum: set the counter to [v >= 0] if that is higher
    than its current value (high-water marks, e.g. lib/mc's deepest
    DFS level reached). *)

val counter : t -> string -> int
(** Current value; 0 for a counter never touched. *)

val counters_with_prefix : t -> string -> (string * int) list
(** All counters whose name starts with the given prefix, sorted by
    name.  The fault plane's per-site counters ([fault.injected.<site>])
    are the motivating consumer. *)

val sum_prefix : t -> string -> int
(** Sum of {!counters_with_prefix}. *)

val observe : t -> string -> int -> unit
(** Record one sample (in cycles) into a histogram. *)

val trace : t -> at:int -> ?detail:string -> string -> unit
(** Append an event to the ring; [at] is the simulated cycle stamp. *)

(** {1 Snapshots} *)

type hist_summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
      (** [(bucket_lo, samples)] for non-empty log2 buckets: a sample [v]
          lands in the bucket whose [bucket_lo] is the largest power of
          two [<= v] (0 for [v = 0]). *)
}

type event = { seq : int; at : int; name : string; detail : string }

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * hist_summary) list;  (** sorted by name *)
  events : event list;  (** oldest first, at most [ring_capacity] *)
}

val snapshot : t -> snapshot
(** Immutable copy of the current state. *)

val mean : hist_summary -> float

val delta_counters : before:snapshot -> after:snapshot -> (string * int) list
(** Counter increase between two snapshots of the same [t], dropping
    zero deltas; sorted by name.  The substrate for per-phase bench
    reporting. *)

val to_json : snapshot -> string
(** Plain JSON (no external dependency): [{"counters": {...},
    "histograms": {...}, "events": [...]}]. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable rendering: counters, then histogram summaries, then
    the most recent trace events. *)

val reset : t -> unit
(** Zero every counter/histogram and drop the ring.  Test fixtures only. *)
