open Hyperenclave_hw
open Hyperenclave_sdk
module Telemetry = Hyperenclave_obs.Telemetry
module Fault = Hyperenclave_fault.Fault

type config = {
  cores : int;
  quantum : int;
  work_stealing : bool;
  batch : int;
  steal_penalty : int;
  drop_on_error : bool;
}

let default_config =
  {
    cores = 2;
    quantum = 250_000;
    work_stealing = true;
    batch = 1;
    (* Migrating a job pulls its working set cold on the thief: charge
       one OS context switch worth of cache/TLB refill. *)
    steal_penalty = 6_886;
    drop_on_error = false;
  }

(* A job's work is either a list of individual/batched ECALLs or one
   arena ring whose slots were staged by the caller: the ring dispatches
   as a single switchless unit, and the caller reads the replies out of
   the ring's reply image afterwards (the scheduler only reports
   per-slot success or failure). *)
type work = Calls of (int * bytes) list | Ring of Urts.ring

type job = {
  job_id : int;
  urts : Urts.t;
  mutable work : work;
  mutable completed : int;
  mutable failed : int;
  mutable next_index : int;  (* submission index of the head of [work] *)
  on_result : (index:int -> (bytes, string) result -> unit) option;
  on_slice : (cycles:int -> unit) option;
  svc_counter : string option;
      (* "sched.svc.<label>": per-service completion counter, prefixed
         once at submit so the hot path only increments *)
}

let drained (job : job) =
  match job.work with Calls [] -> true | Calls _ | Ring _ -> false

type core = {
  core_id : int;
  clock : Cycles.t;
  mutable queue : job list;  (* front = next to run *)
  mutable busy : int;
  mutable steals : int;
  mutable preempts : int;
  mutable completed : int;
}

type core_stats = {
  core_id : int;
  cycles : int;
  busy : int;
  steals : int;
  preempts : int;
  completed : int;
}

type stats = {
  total_requests : int;
  failed_requests : int;
  makespan : int;
  per_core : core_stats array;
  steals : int;
  preempts : int;
  aex_preempts : int;
}

type t = {
  shared_clock : Cycles.t;
  telemetry : Telemetry.t;
  config : config;
  cores : core array;
  on_preempt : (core_id:int -> unit) option;
  mutable jobs : job list;  (* reverse submission order *)
  mutable next_job : int;
  mutable aex_preempts : int;
}

let create ?on_preempt ~shared_clock ~telemetry (config : config) =
  if config.cores <= 0 then invalid_arg "Sched.create: cores must be positive";
  if config.quantum <= 0 then invalid_arg "Sched.create: quantum must be positive";
  if config.batch <= 0 || config.batch > Urts.max_batch then
    invalid_arg
      (Printf.sprintf "Sched.create: batch must be in [1, %d]" Urts.max_batch);
  {
    shared_clock;
    telemetry;
    config;
    cores =
      Array.init config.cores (fun core_id ->
          {
            core_id;
            clock = Cycles.create ();
            queue = [];
            busy = 0;
            steals = 0;
            preempts = 0;
            completed = 0;
          });
    on_preempt;
    jobs = [];
    next_job = 0;
    aex_preempts = 0;
  }

let submit_work t ?core ?label ?on_result ?on_slice ~urts work =
  let job_id = t.next_job in
  t.next_job <- job_id + 1;
  let home =
    match core with
    | Some c ->
        if c < 0 || c >= t.config.cores then
          invalid_arg "Sched.submit: core out of range";
        c
    | None -> job_id mod t.config.cores
  in
  let job =
    {
      job_id;
      urts;
      work;
      completed = 0;
      failed = 0;
      next_index = 0;
      on_result;
      on_slice;
      svc_counter = Option.map (fun l -> "sched.svc." ^ l) label;
    }
  in
  t.jobs <- job :: t.jobs;
  let target = t.cores.(home) in
  target.queue <- target.queue @ [ job ]

let submit t ?core ?label ?on_result ?on_slice ~urts requests =
  submit_work t ?core ?label ?on_result ?on_slice ~urts (Calls requests)

let submit_ring t ?core ?label ?on_result ?on_slice ~urts ring =
  submit_work t ?core ?label ?on_result ?on_slice ~urts (Ring ring)

(* Discrete-event pick: the candidate core with the earliest local clock
   runs next; ties break to the lowest core id so runs are reproducible
   bit for bit. *)
let earliest t pred =
  Array.fold_left
    (fun acc (core : core) ->
      if not (pred core) then acc
      else
        match acc with
        | Some (best : core)
          when Cycles.now best.clock < Cycles.now core.clock
               || (Cycles.now best.clock = Cycles.now core.clock
                  && best.core_id < core.core_id) ->
            acc
        | Some _ | None -> Some core)
    None t.cores

(* Steal from the richest queue (most waiting jobs; ties to the lowest
   core id), taking from the BACK — the job the victim would reach
   last, so the victim's own order is disturbed least. *)
let steal t (thief : core) =
  let victim =
    Array.fold_left
      (fun acc (core : core) ->
        if core.core_id = thief.core_id || core.queue = [] then acc
        else
          match acc with
          | Some (v : core) when List.length v.queue >= List.length core.queue
            ->
              acc
          | Some _ | None -> Some core)
      None t.cores
  in
  match victim with
  | None -> None
  | Some v -> (
      match List.rev v.queue with
      | [] -> None
      | last :: rev_front ->
          v.queue <- List.rev rev_front;
          thief.steals <- thief.steals + 1;
          Telemetry.incr t.telemetry "sched.steal";
          Cycles.tick thief.clock t.config.steal_penalty;
          Some last)

(* Run one request (or one ring batch) of [job].  Typed failures — an
   injected permanent fault or an SDK refusal — optionally drop the
   request so chaos schedules drain to completion; monitor violations
   always propagate. *)
(* The scheduler never copies reply bytes out of an arena ring — the
   submitter reads them in place from the ring's reply image — so a
   successful slot reports this preallocated placeholder instead of
   allocating a fresh [Ok] per request. *)
let ok_in_ring : (bytes, string) result = Ok Bytes.empty

let fail_msg = function
  | Urts.Enclave_error m -> "enclave: " ^ m
  | Fault.Injected { site; kind } ->
      Printf.sprintf "injected %s fault at %s" (Fault.kind_name kind) site
  | exn -> Printexc.to_string exn

let run_requests t (job : job) =
  match job.work with
  | Ring ring -> (
      (* The whole ring is one switchless dispatch unit; the job drains
         in a single step either way. *)
      let count = Urts.ring_staged ring in
      job.work <- Calls [];
      let base_index = job.next_index in
      job.next_index <- base_index + count;
      let deliver i result =
        match job.on_result with
        | Some f -> f ~index:(base_index + i) result
        | None -> ()
      in
      match Urts.ring_dispatch ring with
      | () ->
          for i = 0 to count - 1 do
            deliver i ok_in_ring
          done;
          job.completed <- job.completed + count;
          (match job.svc_counter with
          | Some c -> Telemetry.add t.telemetry c count
          | None -> ());
          count
      | exception ((Urts.Enclave_error _ | Fault.Injected _) as exn)
        when t.config.drop_on_error ->
          let msg = fail_msg exn in
          for i = 0 to count - 1 do
            deliver i (Error msg)
          done;
          job.failed <- job.failed + count;
          Telemetry.add t.telemetry "sched.request_failed" count;
          count)
  | Calls pending -> (
      let n = min t.config.batch (List.length pending) in
      let rec split k = function
        | rest when k = 0 -> ([], rest)
        | [] -> ([], [])
        | r :: rest ->
            let taken, left = split (k - 1) rest in
            (r :: taken, left)
      in
      let taken, rest = split n pending in
      job.work <- Calls rest;
      let count = List.length taken in
      let base_index = job.next_index in
      job.next_index <- base_index + count;
      let deliver i result =
        match job.on_result with
        | Some f -> f ~index:(base_index + i) result
        | None -> ()
      in
      match
        if t.config.batch > 1 then Urts.ecall_batch job.urts ~reqs:taken ()
        else
          List.map
            (fun (id, data) ->
              Urts.ecall job.urts ~id ~data ~direction:Edge.In_out ())
            taken
      with
      | replies ->
          List.iteri (fun i reply -> deliver i (Ok reply)) replies;
          job.completed <- job.completed + count;
          (match job.svc_counter with
          | Some c -> Telemetry.add t.telemetry c count
          | None -> ());
          count
      | exception ((Urts.Enclave_error _ | Fault.Injected _) as exn)
        when t.config.drop_on_error ->
          (* The ring is all-or-nothing: every request of the dispatch gets
             the same typed failure. *)
          let msg = fail_msg exn in
          List.iteri (fun i _ -> deliver i (Error msg)) taken;
          job.failed <- job.failed + count;
          Telemetry.add t.telemetry "sched.request_failed" count;
          count)

(* One scheduling slice: execute requests on the shared platform clock
   until the quantum is consumed or the job drains, then charge the
   elapsed delta to the core-local clock.  The job's AEX timer is armed
   for the duration, so a single long request still gets sheared into
   quantum-sized chunks by genuine AEX/ERESUME round trips. *)
let run_slice t (core : core) (job : job) =
  let start = Cycles.now t.shared_clock in
  let consumed () = Cycles.now t.shared_clock - start in
  Urts.arm_timer job.urts ~quantum:t.config.quantum
    ?on_preempt:
      (Some
         (fun () ->
           t.aex_preempts <- t.aex_preempts + 1;
           match t.on_preempt with
           | Some f -> f ~core_id:core.core_id
           | None -> ()))
    ();
  let finish () = Urts.disarm_timer job.urts in
  (try
     while (not (drained job)) && consumed () < t.config.quantum do
       core.completed <- core.completed + run_requests t job
     done
   with exn ->
     finish ();
     let delta = consumed () in
     Cycles.tick core.clock delta;
     core.busy <- core.busy + delta;
     (match job.on_slice with Some f -> f ~cycles:delta | None -> ());
     raise exn);
  finish ();
  let delta = consumed () in
  Cycles.tick core.clock delta;
  core.busy <- core.busy + delta;
  (match job.on_slice with Some f -> f ~cycles:delta | None -> ());
  Telemetry.observe t.telemetry "sched.slice_cycles" (max 1 delta);
  if not (drained job) then begin
    (* Quantum expired with work left: requeue at the back. *)
    core.preempts <- core.preempts + 1;
    Telemetry.incr t.telemetry "sched.preempt";
    (match t.on_preempt with Some f -> f ~core_id:core.core_id | None -> ());
    core.queue <- core.queue @ [ job ]
  end

(* Read-only aggregation over the current core/job state: safe to call
   at any point (including between [submit] and [run]) — it never
   advances a clock or drains a queue. *)
let stats t =
  let per_core =
    Array.map
      (fun (core : core) ->
        {
          core_id = core.core_id;
          cycles = Cycles.now core.clock;
          busy = core.busy;
          steals = core.steals;
          preempts = core.preempts;
          completed = core.completed;
        })
      t.cores
  in
  {
    total_requests =
      List.fold_left (fun acc (j : job) -> acc + j.completed) 0 t.jobs;
    failed_requests =
      List.fold_left (fun acc (j : job) -> acc + j.failed) 0 t.jobs;
    makespan =
      Array.fold_left (fun acc (c : core_stats) -> max acc c.cycles) 0 per_core;
    per_core;
    steals = Array.fold_left (fun acc (c : core) -> acc + c.steals) 0 t.cores;
    preempts = Array.fold_left (fun acc (c : core) -> acc + c.preempts) 0 t.cores;
    aex_preempts = t.aex_preempts;
  }

let run t =
  let has_work (core : core) = core.queue <> [] in
  let any_work () = Array.exists has_work t.cores in
  while any_work () do
    let candidate =
      earliest t (fun core ->
          has_work core || (t.config.work_stealing && any_work ()))
    in
    match candidate with
    | None -> ()
    | Some core -> (
        match core.queue with
        | job :: rest ->
            core.queue <- rest;
            run_slice t core job
        | [] -> (
            match steal t core with
            | Some job -> run_slice t core job
            | None ->
                (* Nothing stealable right now: park this core just past
                   the busiest working core so it stops being the
                   earliest until the queues have moved on. *)
                let horizon =
                  Array.fold_left
                    (fun acc c ->
                      if has_work c then max acc (Cycles.now c.clock) else acc)
                    (Cycles.now core.clock) t.cores
                in
                Cycles.advance_to core.clock ~at:(horizon + 1)))
  done;
  stats t

let pp_stats fmt (s : stats) =
  Format.fprintf fmt
    "@[<v>%d requests (%d failed), makespan %d cycles, %d steals, %d preempts, %d AEX preempts"
    s.total_requests s.failed_requests s.makespan s.steals s.preempts
    s.aex_preempts;
  Array.iter
    (fun c ->
      Format.fprintf fmt "@,  core %d: clock %d, busy %d, %d done, %d stolen, %d preempted"
        c.core_id c.cycles c.busy c.completed c.steals c.preempts)
    s.per_core;
  Format.fprintf fmt "@]"
