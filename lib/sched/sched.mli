(** Deterministic SMP enclave scheduler.

    Runs N enclaves (each behind its own {!Hyperenclave_sdk.Urts} handle)
    across M simulated cores.  Every core owns a {!Hyperenclave_hw.Cycles}
    clock and a run queue; execution itself happens on the shared platform
    clock (monitor, MMU and caches are per-platform), and each slice's
    elapsed delta is charged to the core that ran it — so per-core totals
    decompose the platform's work deterministically.

    Scheduling is discrete-event: the core with the earliest local clock
    runs next (ties to the lowest id), which makes runs bit-reproducible
    for a fixed submission order and config.  A slice executes requests
    until the quantum is consumed; the job's AEX timer is armed for the
    duration, so one long request is sheared by genuine AEX + ERESUME
    round trips through the monitor (SSA spill/restore) at each quantum
    boundary.  Unfinished jobs requeue at the back; a drained core steals
    from the richest queue (work stealing) when enabled.

    With [batch > 1], each dispatch stages up to [batch] requests in the
    marshalling-buffer call ring ({!Hyperenclave_sdk.Urts.ecall_batch})
    and serves them under a single world switch. *)

open Hyperenclave_hw
open Hyperenclave_sdk

type config = {
  cores : int;
  quantum : int;  (** slice budget in cycles; also the AEX timer period *)
  work_stealing : bool;
  batch : int;  (** ring batch size per dispatch; 1 = plain ECALLs *)
  steal_penalty : int;
      (** cycles charged to the thief per stolen job (cold working set) *)
  drop_on_error : bool;
      (** drop a request that ends in a typed error (injected permanent
          fault, SDK refusal) instead of aborting the run — lets chaos
          schedules drain; monitor violations always propagate *)
}

val default_config : config
(** 2 cores, 250k-cycle quantum, stealing on, unbatched, strict errors. *)

type t

type core_stats = {
  core_id : int;
  cycles : int;  (** final core-local clock (busy + penalties + idle) *)
  busy : int;  (** cycles spent executing slices *)
  steals : int;
  preempts : int;  (** slice-boundary requeues *)
  completed : int;  (** requests completed on this core *)
}

type stats = {
  total_requests : int;
  failed_requests : int;
  makespan : int;  (** max final core clock — the run's wall time *)
  per_core : core_stats array;
  steals : int;
  preempts : int;
  aex_preempts : int;  (** mid-request AEX timer firings *)
}

val create :
  ?on_preempt:(core_id:int -> unit) ->
  shared_clock:Cycles.t ->
  telemetry:Hyperenclave_obs.Telemetry.t ->
  config ->
  t
(** [on_preempt] fires at every preemption — both slice-boundary requeues
    and mid-request AEX timer firings (after the ERESUME, with monitor
    state settled) — the hook the chaos suite uses to run
    [Invariants.check] at each one. *)

val submit :
  t ->
  ?core:int ->
  ?label:string ->
  ?on_result:(index:int -> (bytes, string) result -> unit) ->
  ?on_slice:(cycles:int -> unit) ->
  urts:Urts.t ->
  (int * bytes) list ->
  unit
(** Queue a job: a list of [(ecall_id, payload)] requests against one
    enclave.  Jobs land on [core] when given, else round-robin by
    submission order.  All requests use [In_out] marshalling.

    [label] names the service this job belongs to: every completed
    request additionally bumps the [sched.svc.<label>] telemetry counter,
    giving per-service dispatch totals when many tenants share the
    scheduler.

    [on_result] receives every request's ending keyed by its submission
    index: [Ok reply] on completion, or [Error msg] when [drop_on_error]
    dropped it (an injected permanent fault or SDK refusal; a batched
    ring dispatch fails all-or-nothing).  [on_slice] receives every
    scheduling slice's consumed cycle delta — the accounting hook the
    serving plane charges per-tenant quotas from. *)

val submit_ring :
  t ->
  ?core:int ->
  ?label:string ->
  ?on_result:(index:int -> (bytes, string) result -> unit) ->
  ?on_slice:(cycles:int -> unit) ->
  urts:Urts.t ->
  Urts.ring ->
  unit
(** Queue one staged arena ring ({!Urts.create_ring}/{!Urts.ring_stage})
    as a job: the ring dispatches as a single switchless unit on its
    core's next slice ({!Urts.ring_dispatch}), all-or-nothing under
    [drop_on_error].  The scheduler does not read reply bytes out of the
    ring — [on_result] reports [Ok Bytes.empty] per served slot (a
    shared placeholder, no per-request allocation) and the submitter
    reads replies in place via {!Urts.ring_read_replies} /
    {!Urts.ring_reply_slot} after {!run}.  The submitter publishes the
    staged image ({!Urts.ring_publish}) before [run]. *)

val run : t -> stats
(** Drain every queue to completion and return the run's statistics.
    Telemetry counters recorded along the way: [sched.steal],
    [sched.preempt], [sched.aex_preempt], [sched.request_failed],
    [sched.slice_cycles] (histogram), plus the SDK's [sdk.ecall_batch] /
    [ring.batch_occupancy] when batching. *)

val stats : t -> stats
(** Read-only snapshot of the same statistics {!run} returns: never
    advances a clock, runs a slice, or drains a queue, so it is safe to
    call between [submit] and [run] (or never calling [run] at all). *)

val pp_stats : Format.formatter -> stats -> unit
