open Hyperenclave_hw
open Sgx_types

let transition_cost (m : Cost_model.t) = function
  | GU | P -> m.hypercall
  | HU -> m.syscall_ring

let eenter_cost (m : Cost_model.t) mode =
  transition_cost m mode
  +
  match mode with
  | GU -> m.enter_extra_gu
  | HU -> m.enter_extra_hu
  | P -> m.enter_extra_p

let eexit_cost (m : Cost_model.t) mode =
  transition_cost m mode
  +
  match mode with
  | GU -> m.exit_extra_gu
  | HU -> m.exit_extra_hu
  | P -> m.exit_extra_p

let aex_cost (m : Cost_model.t) mode =
  (* Trap one way into the monitor, spill the SSA, switch the world out. *)
  (match mode with GU | P -> m.vmexit | HU -> m.syscall_ring)
  + m.aex_save + eexit_cost m mode

let eresume_cost (m : Cost_model.t) mode = m.eresume_soft + eenter_cost m mode

let sdk_ecall_soft (m : Cost_model.t) = function
  | GU -> m.sdk_ecall_soft_gu
  | HU -> m.sdk_ecall_soft_hu
  | P -> m.sdk_ecall_soft_p

let sdk_ocall_soft (m : Cost_model.t) = function
  | GU -> m.sdk_ocall_soft_gu
  | HU -> m.sdk_ocall_soft_hu
  | P -> m.sdk_ocall_soft_p

(* A batched world switch dispatches K ring slots under one transition:
   the first request rides the normal entry/exit pair, every further
   slot pays only the in-enclave ring dispatch (Sec. 5.3's cheap-switch
   motivation taken one step further). *)
let batch_dispatch_cost (m : Cost_model.t) ~k =
  max 0 (k - 1) * m.batch_item_dispatch

(* Backoff charged between retry attempts on transient faults (EPC
   pressure, TPM busy, interrupted world switches): an OS context switch
   doubling per attempt, capped so a hostile schedule cannot stall the
   simulated clock unboundedly. *)
let retry_backoff_cost (m : Cost_model.t) ~attempt =
  m.os_ctxsw * (1 lsl min (max attempt 0) 6)
