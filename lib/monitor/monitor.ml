open Hyperenclave_hw
open Hyperenclave_crypto
module Tpm = Hyperenclave_tpm.Tpm
module Pcr = Hyperenclave_tpm.Pcr
module Telemetry = Hyperenclave_obs.Telemetry
module Fault = Hyperenclave_fault.Fault

exception Security_violation of string

let log_src = Logs.Src.create "hyperenclave.monitor" ~doc:"RustMonitor events"

module Log = (val Logs.src_log log_src)

let violation fmt =
  Printf.ksprintf
    (fun message ->
      Log.warn (fun k -> k "security violation: %s" message);
      raise (Security_violation message))
    fmt

type config = {
  reserved_base_frame : int;
  reserved_nframes : int;
  monitor_private_frames : int;
}

type boot_event = { pcr_index : int; label : string; measurement : bytes }

type quote = {
  report : Sgx_types.report;
  ems : bytes;
  hapk : Signature.public_key;
  tpm_quote : Tpm.quote;
  events : boot_event list;
}

type t = {
  clock : Cycles.t;
  cost : Cost_model.t;
  rng : Rng.t;
  mem : Phys_mem.t;
  cpu : Mmu.t;
  iommu : Iommu.t;
  tpm : Tpm.t;
  config : config;
  epc : Epc.t;
  normal_npt : Page_table.t;
  mutable launched : bool;
  mutable k_root : bytes;
  mutable att_private : Signature.private_key option;
  mutable hapk : Signature.public_key;
  mutable boot_log : boot_event list;
  enclaves : (int, Enclave.t) Hashtbl.t;
  mutable next_id : int;
  mutable current : Enclave.t option;
  mutable current_tcs : Sgx_types.tcs option;
  mutable saved_normal : (Page_table.t * Page_table.t option) option;
  (* EPC overcommit: evicted pages are sealed and handed to untrusted
     storage through the kernel module's backend (EWB/ELDU analogue). *)
  mutable swap_backend : swap_backend option;
  swapped : (int * int, unit) Hashtbl.t; (* (enclave, vpn) currently out *)
  (* Monotonic per-(enclave, vpn) write-back counter, the analogue of
     EWB's version array.  The current value is sealed into the blob's
     AAD at eviction and demanded back at swap-in, so re-serving an
     older authentic blob for the same page (rollback) fails
     authentication instead of silently restoring stale state. *)
  swap_versions : (int * int, int) Hashtbl.t;
  mutable epc_swaps : int;
  telemetry : Telemetry.t;
}

and swap_backend = {
  store : string -> bytes -> unit;
  load : string -> bytes option;
  delete : string -> unit;
}

(* PCR allocation: 0 CRTM, 1 BIOS, 2 grub, 3 kernel, 4 initramfs,
   10 hypervisor image, 11 hapk, 16 runtime flood target. *)
let pcr_hypervisor = 10
let pcr_hapk = 11
let pcr_flood = 16
let seal_pcr_selection = [ 0; 1; 2; 3; 4; pcr_hypervisor; pcr_flood ]
let quote_pcr_selection = [ 0; 1; 2; 3; 4; pcr_hypervisor; pcr_hapk ]

let create ~clock ~cost ~rng ~mem ~cpu ~iommu ~tpm config =
  if config.monitor_private_frames >= config.reserved_nframes then
    invalid_arg "Monitor.create: private frames exceed reservation";
  let epc =
    Epc.create
      ~base_frame:(config.reserved_base_frame + config.monitor_private_frames)
      ~nframes:(config.reserved_nframes - config.monitor_private_frames)
  in
  {
    clock;
    cost;
    rng;
    mem;
    cpu;
    iommu;
    tpm;
    config;
    epc;
    normal_npt = Page_table.create ();
    launched = false;
    k_root = Bytes.empty;
    att_private = None;
    hapk = Bytes.empty;
    boot_log = [];
    enclaves = Hashtbl.create 16;
    next_id = 1;
    current = None;
    current_tcs = None;
    saved_normal = None;
    swap_backend = None;
    swapped = Hashtbl.create 64;
    swap_versions = Hashtbl.create 64;
    epc_swaps = 0;
    telemetry = Telemetry.create ();
  }

(* --- measured late launch ------------------------------------------------ *)

let launch t ~boot_log ~sealed_root_key =
  if t.launched then violation "launch: already launched";
  (* Normal VM nested table: identity over all of DRAM except the
     reserved region (R-1). *)
  let total_frames = Phys_mem.frames t.mem in
  let res_lo = t.config.reserved_base_frame in
  let res_hi = res_lo + t.config.reserved_nframes in
  for frame = 0 to total_frames - 1 do
    if frame < res_lo || frame >= res_hi then
      Page_table.map t.normal_npt ~vpn:frame ~frame ~perms:Page_table.rwx
  done;
  (* R-3: no device may ever DMA into the reservation. *)
  Iommu.revoke_everywhere t.iommu ~first_frame:res_lo
    ~nframes:t.config.reserved_nframes;
  (* K_root: TPM-rooted platform secret (Sec. 3.3). *)
  let outcome, k_root =
    match sealed_root_key with
    | Some blob -> (
        match Tpm.unseal t.tpm blob with
        | key -> (`Resumed, key)
        | exception Tpm.Unseal_failed msg ->
            violation "launch: K_root unseal failed (%s)" msg)
    | None ->
        let key = Tpm.random t.tpm 32 in
        let blob = Tpm.seal t.tpm ~pcr_selection:seal_pcr_selection key in
        (`First_boot blob, key)
  in
  t.k_root <- k_root;
  (* Attestation keypair derived from K_root; public half measured. *)
  let att_private =
    Signature.import_private (Hmac.derive ~key:k_root ~info:"attestation-key")
  in
  t.att_private <- Some att_private;
  t.hapk <- Signature.public_of_private att_private;
  Tpm.pcr_extend t.tpm ~index:pcr_hapk (Sha256.digest_bytes t.hapk);
  t.boot_log <-
    boot_log
    @ [
        {
          pcr_index = pcr_hapk;
          label = "hapk";
          measurement = Sha256.digest_bytes t.hapk;
        };
      ];
  (* Flood the runtime PCR so the demoted OS can never unseal K_root. *)
  Tpm.pcr_extend t.tpm ~index:pcr_flood (Bytes.of_string "hyperenclave-flood");
  t.launched <- true;
  Log.info (fun k ->
      k "launched: reserved frames [0x%x, 0x%x), %s K_root" res_lo res_hi
        (match outcome with `First_boot _ -> "fresh" | `Resumed -> "unsealed"));
  outcome

let launched t = t.launched
let normal_npt t = t.normal_npt
let hapk t = t.hapk
let boot_log t = t.boot_log

let require_launched t op = if not t.launched then violation "%s: monitor not launched" op

let set_swap_backend t ~store ~load ~delete =
  t.swap_backend <- Some { store; load; delete }

let epc_swap_count t = t.epc_swaps
let telemetry t = t.telemetry

let swapped_out t ~enclave_id =
  Hashtbl.fold
    (fun (id, _) () acc -> if id = enclave_id then acc + 1 else acc)
    t.swapped 0

(* Shorthand for the instrumentation below: count an event, and record
   the simulated cycles an operation consumed in its histogram. *)
let count t name = Telemetry.incr t.telemetry name

let timed t name f =
  let start = Cycles.now t.clock in
  let result = f () in
  Telemetry.observe t.telemetry name (Cycles.now t.clock - start);
  result

let trace_switch t name (enclave : Enclave.t) =
  Telemetry.trace t.telemetry ~at:(Cycles.now t.clock)
    ~detail:(Printf.sprintf "enclave %d" enclave.Enclave.id)
    name
let swap_key t = Hmac.derive ~key:t.k_root ~info:"epc-swap-key"
let swap_slot_name id vpn = Printf.sprintf "heswap:%d:%x" id vpn

let parse_perms s : Page_table.perms =
  if String.length s <> 4 then violation "swap-in: malformed permissions";
  {
    Page_table.write = s.[1] = 'w';
    exec = s.[2] = 'x';
    user = s.[3] = 'u';
  }

(* A frame the running machinery is actively relying on: any page of the
   enclave currently on the vCPU (mid-ECALL state the monitor would fault
   on immediately), or a page inside the SSA window of a TCS with a live
   thread (entered, or parked mid-AEX with spilled register state).
   [Epc.find_victim] treats this as a preference, not a hard ban, so a
   pool that is entirely in use still yields a victim rather than a
   spurious exhaustion violation. *)
let frame_in_active_use t _frame (info : Epc.frame_info) =
  match info.Epc.owner with
  | Epc.Monitor -> true
  | Epc.Enclave id -> (
      (match t.current with
      | Some running when running.Enclave.id = id -> true
      | Some _ | None -> false)
      ||
      match Hashtbl.find_opt t.enclaves id with
      | None -> false
      | Some enclave ->
          List.exists
            (fun (tcs : Sgx_types.tcs) ->
              (tcs.Sgx_types.busy || tcs.Sgx_types.current_ssa > 0)
              && info.Epc.vpn >= tcs.Sgx_types.ssa_base_vpn
              && info.Epc.vpn < tcs.Sgx_types.ssa_base_vpn + tcs.Sgx_types.nssa)
            enclave.Enclave.tcs_list)

let epc_victim t ~prefer_not =
  Epc.find_victim ~in_use:(frame_in_active_use t) t.epc ~prefer_not

(* Evict one regular enclave page: seal it (confidentiality + integrity,
   like EWB's AES-GMAC'd version-tracked write-back), hand the ciphertext
   to untrusted storage, and reclaim the frame. *)
let evict_one_epc t ~prefer_not =
  let store =
    match t.swap_backend with
    | Some backend -> backend.store
    | None -> violation "EPC exhausted and no swap backend registered"
  in
  match epc_victim t ~prefer_not with
  | None -> violation "EPC exhausted: no evictable page"
  | Some (frame, { Epc.owner; vpn; _ }) ->
      let owner_id =
        match owner with Epc.Enclave id -> id | Epc.Monitor -> assert false
      in
      let victim =
        match Hashtbl.find_opt t.enclaves owner_id with
        | Some enclave -> enclave
        | None -> violation "EPC metadata names a dead enclave"
      in
      let perms =
        match Page_table.lookup victim.Enclave.gpt ~vpn with
        | Some entry -> entry.Page_table.perms
        | None -> violation "evict: victim page not mapped"
      in
      let content = Phys_mem.read_page t.mem ~frame in
      let version =
        1
        + Option.value ~default:0
            (Hashtbl.find_opt t.swap_versions (owner_id, vpn))
      in
      Hashtbl.replace t.swap_versions (owner_id, vpn) version;
      let aad =
        Bytes.of_string
          (Printf.sprintf "%d:%x:%s:%d" owner_id vpn
             (Format.asprintf "%a" Page_table.pp_perms perms)
             version)
      in
      let blob =
        Authenc.encode
          (Authenc.seal ~key:(swap_key t) ~aad ~nonce:(Rng.bytes t.rng 12)
             content)
      in
      store (swap_slot_name owner_id vpn) blob;
      Page_table.unmap victim.Enclave.gpt ~vpn;
      (match victim.Enclave.npt with
      | Some npt -> Page_table.unmap npt ~vpn:frame
      | None -> ());
      Tlb.invalidate (Mmu.tlb t.cpu) ~vpn;
      Phys_mem.zero_page t.mem ~frame;
      Epc.free t.epc frame;
      Hashtbl.replace t.swapped (owner_id, vpn) ();
      t.epc_swaps <- t.epc_swaps + 1;
      Cycles.tick t.clock t.cost.epc_swap_page;
      count t "epc.evict";
      count t "tlb.invlpg";
      Telemetry.trace t.telemetry ~at:(Cycles.now t.clock)
        ~detail:(Printf.sprintf "enclave %d vpn 0x%x" owner_id vpn)
        "epc.evict";
      Log.debug (fun k ->
          k "EPC eviction: enclave %d page 0x%x sealed out" owner_id vpn)

(* Allocate an EPC frame, evicting if the pool is dry.  The fault site
   fires before the allocation mutates anything: injected transient
   pressure behaves exactly like an exhausted pool — evict and retry —
   so chaos runs exercise the EWB path even while frames remain; a
   permanent fault unwinds as a typed error with the pool untouched. *)
let alloc_epc t ~owner ~page_type ~vpn ~prefer_not =
  count t "epc.alloc";
  (match Fault.check "epc.alloc" with
  | None -> ()
  | Some Fault.Transient ->
      (* Simulated EPC pressure: absorb it the way real exhaustion is
         absorbed, by writing back a victim page (EWB).  With nothing
         evictable yet the pool has free frames, so the pressure is
         vacuous and the allocation below just proceeds. *)
      if t.swap_backend <> None && epc_victim t ~prefer_not <> None
      then evict_one_epc t ~prefer_not;
      Fault.survived "epc.alloc"
  | Some (Fault.Permanent as kind) ->
      raise (Fault.Injected { site = "epc.alloc"; kind }));
  match Epc.alloc t.epc ~owner ~page_type ~vpn with
  | frame -> frame
  | exception Epc.Epc_exhausted ->
      evict_one_epc t ~prefer_not;
      Epc.alloc t.epc ~owner ~page_type ~vpn

(* --- enclave lifecycle --------------------------------------------------- *)

let ecreate t secs =
  require_launched t "ecreate";
  count t "hypercall.ecreate";
  Cycles.tick t.clock t.cost.hypercall;
  let id = t.next_id in
  t.next_id <- id + 1;
  let enclave = Enclave.make ~id ~secs in
  Hashtbl.replace t.enclaves id enclave;
  Log.debug (fun k ->
      k "ECREATE: enclave %d, %s, ELRANGE [0x%x, +0x%x)" id
        (Sgx_types.mode_name secs.Sgx_types.attributes.Sgx_types.mode)
        secs.Sgx_types.base_va secs.Sgx_types.size);
  enclave

let require_building (enclave : Enclave.t) op =
  match enclave.lifecycle with
  | Enclave.Uninitialized -> ()
  | Enclave.Initialized | Enclave.Dead ->
      violation "%s: enclave %d is not under construction" op enclave.id

let require_initialized (enclave : Enclave.t) op =
  match enclave.lifecycle with
  | Enclave.Initialized -> ()
  | Enclave.Uninitialized | Enclave.Dead ->
      violation "%s: enclave %d is not initialized" op enclave.id

(* Install a page in the enclave's translation.  GU/P: guest table maps
   vpn -> gpa (= host frame number) and the enclave's private nested table
   maps only the enclave's own frames, which is how R-2 holds at the
   nested level.  HU: single-level table maps vpn -> host frame. *)
let install_mapping (enclave : Enclave.t) ~vpn ~frame ~perms =
  Page_table.map enclave.gpt ~vpn ~frame ~perms;
  match enclave.npt with
  | None -> ()
  | Some npt -> Page_table.map npt ~vpn:frame ~frame ~perms:Page_table.rwx

let measure_page t (enclave : Enclave.t) ~vpn ~perms ~page_type ~content =
  Enclave.measure_chunk enclave (Measure.eadd_header ~vpn ~perms ~page_type);
  Enclave.measure_chunk enclave content;
  Cycles.tick t.clock
    (t.cost.sha256_per_block * (Addr.page_size / 64))

let eadd t (enclave : Enclave.t) ~vpn ~content ~perms ~page_type =
  require_launched t "eadd";
  require_building enclave "eadd";
  count t "hypercall.eadd";
  Cycles.tick t.clock t.cost.hypercall;
  let va = Addr.base_of_page vpn in
  if not (Enclave.in_elrange enclave ~va) then
    violation "eadd: page 0x%x outside ELRANGE" vpn;
  if Page_table.lookup enclave.gpt ~vpn <> None then
    violation "eadd: page 0x%x already mapped (aliasing attempt)" vpn;
  if Bytes.length content > Addr.page_size then
    violation "eadd: content exceeds a page";
  let frame =
    alloc_epc t ~owner:(Epc.Enclave enclave.id) ~page_type ~vpn
      ~prefer_not:(Some enclave.id)
  in
  let page = Bytes.make Addr.page_size '\000' in
  Bytes.blit content 0 page 0 (Bytes.length content);
  Phys_mem.write_page t.mem ~frame page;
  Cycles.tick t.clock (Cost_model.copy_cost t.cost Addr.page_size);
  install_mapping enclave ~vpn ~frame ~perms;
  Cycles.tick t.clock t.cost.pte_update;
  measure_page t enclave ~vpn ~perms ~page_type ~content:page

let eadd_tcs t (enclave : Enclave.t) ~vpn ~entry_va ~nssa ~ssa_base_vpn =
  require_building enclave "eadd_tcs";
  if nssa < 1 then violation "eadd_tcs: need at least one SSA frame";
  count t "hypercall.eadd_tcs";
  let content =
    Bytes.of_string (Printf.sprintf "tcs:%x:%d:%x" entry_va nssa ssa_base_vpn)
  in
  eadd t enclave ~vpn ~content ~perms:Page_table.rw ~page_type:Sgx_types.Pt_tcs;
  enclave.tcs_list <-
    {
      Sgx_types.tcs_vpn = vpn;
      entry_va;
      nssa;
      ssa_base_vpn;
      busy = false;
      current_ssa = 0;
    }
    :: enclave.tcs_list

let einit t (enclave : Enclave.t) ~sigstruct ~marshalling =
  require_launched t "einit";
  require_building enclave "einit";
  count t "hypercall.einit";
  Cycles.tick t.clock t.cost.hypercall;
  (* Validate-then-commit: every check below runs before any state is
     mutated, so a refused launch — forged token, bad marshalling list —
     leaves the enclave exactly as it was: measurement still open (a
     later legitimate EINIT can succeed) and no stray mappings from a
     half-validated page list. *)
  if not (Sgx_types.sigstruct_valid sigstruct) then
    violation "einit: SIGSTRUCT signature invalid";
  let mrenclave = Enclave.peek_measurement enclave in
  if not (Sha256.equal mrenclave sigstruct.Sgx_types.enclave_hash) then
    violation "einit: measurement mismatch";
  (* Bind the marshalling buffer (Sec. 5.3).  The OS supplies the pinned
     VA->frame pairs; the monitor distrusts every one of them. *)
  let base_va, size, pages = marshalling in
  if size <= 0 || not (Addr.is_aligned base_va) || not (Addr.is_aligned size)
  then violation "einit: malformed marshalling buffer";
  let el_lo = enclave.secs.Sgx_types.base_va in
  let el_hi = el_lo + enclave.secs.Sgx_types.size in
  if base_va < el_hi && base_va + size > el_lo then
    violation "einit: marshalling buffer overlaps ELRANGE";
  if List.length pages <> size / Addr.page_size then
    violation "einit: marshalling page list does not cover the buffer";
  List.iter
    (fun (vpn, frame) ->
      if Addr.base_of_page vpn < base_va || Addr.base_of_page vpn >= base_va + size
      then violation "einit: marshalling page 0x%x outside declared range" vpn;
      if Epc.in_pool t.epc frame then
        violation
          "einit: marshalling frame 0x%x lies in reserved memory (Fig. 9b)"
          frame;
      if frame >= t.config.reserved_base_frame
         && frame < t.config.reserved_base_frame + t.config.reserved_nframes
      then violation "einit: marshalling frame 0x%x in monitor memory" frame)
    pages;
  (* All checks passed; commit. *)
  List.iter
    (fun (vpn, frame) ->
      install_mapping enclave ~vpn ~frame ~perms:Page_table.rw;
      Cycles.tick t.clock t.cost.pte_update)
    pages;
  Enclave.commit_measurement enclave mrenclave;
  enclave.marshalling <- Some (base_va, size);
  enclave.mrsigner <- Sgx_types.mrsigner_of sigstruct;
  enclave.isv_prod_id <- sigstruct.Sgx_types.isv_prod_id;
  enclave.isv_svn <- sigstruct.Sgx_types.isv_svn;
  enclave.lifecycle <- Enclave.Initialized;
  Log.info (fun k ->
      k "EINIT: enclave %d initialized, MRENCLAVE %s, %d EPC pages" enclave.id
        (Sha256.to_hex mrenclave)
        (Epc.used_by t.epc ~enclave_id:enclave.id))

let eremove t (enclave : Enclave.t) =
  count t "hypercall.eremove";
  Cycles.tick t.clock t.cost.hypercall;
  if enclave.entered then violation "eremove: enclave is running";
  let frames = Epc.free_enclave t.epc ~enclave_id:enclave.id in
  List.iter (fun frame -> Phys_mem.zero_page t.mem ~frame) frames;
  (* Pages the monitor evicted for this enclave still sit sealed on the
     untrusted store; purge both the (enclave, vpn) bookkeeping and the
     blobs themselves, or a future enclave reusing the id could be fed a
     stale (if authentic) page and the backend leaks ciphertexts forever. *)
  let stale =
    Hashtbl.fold
      (fun ((id, _) as key) () acc -> if id = enclave.id then key :: acc else acc)
      t.swapped []
  in
  List.iter
    (fun (id, vpn) ->
      Hashtbl.remove t.swapped (id, vpn);
      match t.swap_backend with
      | Some backend -> backend.delete (swap_slot_name id vpn)
      | None -> ())
    stale;
  (* Version counters go with the enclave: a future enclave reusing the
     id starts its write-back history from scratch. *)
  let dead_versions =
    Hashtbl.fold
      (fun ((id, _) as key) _ acc -> if id = enclave.id then key :: acc else acc)
      t.swap_versions []
  in
  List.iter (Hashtbl.remove t.swap_versions) dead_versions;
  enclave.lifecycle <- Enclave.Dead;
  Hashtbl.remove t.enclaves enclave.id;
  Log.debug (fun k ->
      k "EREMOVE: enclave %d, %d frames scrubbed, %d swapped blobs purged"
        enclave.id (List.length frames) (List.length stale))

(* --- world switches ------------------------------------------------------ *)

let enter_context t (enclave : Enclave.t) =
  (match t.saved_normal with
  | Some _ -> ()
  | None -> t.saved_normal <- Some (Mmu.gpt t.cpu, Mmu.npt t.cpu));
  match enclave.npt with
  | Some npt -> Mmu.switch_context t.cpu ~gpt:enclave.gpt ~npt ()
  | None -> Mmu.switch_context t.cpu ~gpt:enclave.gpt ()

let leave_context t =
  match t.saved_normal with
  | None -> ()
  | Some (gpt, npt) ->
      (match npt with
      | Some npt -> Mmu.switch_context t.cpu ~gpt ~npt ()
      | None -> Mmu.switch_context t.cpu ~gpt ());
      t.saved_normal <- None

let eenter t (enclave : Enclave.t) ~(tcs : Sgx_types.tcs) ~return_va =
  require_initialized enclave "eenter";
  (match t.current with
  | Some running -> violation "eenter: enclave %d already on this vCPU" running.id
  | None -> ());
  if tcs.busy then violation "eenter: TCS 0x%x is busy" tcs.tcs_vpn;
  count t "switch.eenter";
  trace_switch t "eenter" enclave;
  timed t "cycles.eenter" (fun () ->
      (* switch_context below charges the TLB flush that is part of the
         composed EENTER cost. *)
      Cycles.tick t.clock
        (World_switch.eenter_cost t.cost (Enclave.mode enclave)
        - t.cost.tlb_flush);
      tcs.busy <- true;
      enclave.entered <- true;
      enclave.return_va <- return_va;
      enclave.regs <- Vcpu.fresh ~entry:tcs.entry_va;
      enclave.stats.ecalls <- enclave.stats.ecalls + 1;
      t.current <- Some enclave;
      t.current_tcs <- Some tcs;
      enter_context t enclave)

let eexit t (enclave : Enclave.t) ~target_va =
  (match t.current with
  | Some running when running.id = enclave.id -> ()
  | Some _ | None -> violation "eexit: enclave %d is not running" enclave.id);
  (* Sec. 6: EEXIT is emulated, so arbitrary continuation addresses —
     the enclave-malware springboard — are rejected here. *)
  if target_va <> enclave.return_va then
    violation "eexit: target 0x%x does not match the recorded return point"
      target_va;
  count t "switch.eexit";
  trace_switch t "eexit" enclave;
  timed t "cycles.eexit" (fun () ->
      Cycles.tick t.clock
        (World_switch.eexit_cost t.cost (Enclave.mode enclave)
        - t.cost.tlb_flush);
      (match t.current_tcs with
      | Some tcs -> tcs.busy <- false
      | None -> ());
      enclave.entered <- false;
      t.current <- None;
      t.current_tcs <- None;
      leave_context t)

let aex t (enclave : Enclave.t) =
  (match t.current with
  | Some running when running.id = enclave.id -> ()
  | Some _ | None -> violation "aex: enclave %d is not running" enclave.id);
  (* Fault site before the SSA spill: an injected fault models AEX
     delivery failing at the trap gate.  The enclave is still entered and
     current, so the caller's cleanup path (a clean EEXIT) restores the
     normal context without leaving a half-spilled SSA frame. *)
  Fault.point "switch.aex";
  count t "switch.aex";
  trace_switch t "aex" enclave;
  let aex_start = Cycles.now t.clock in
  Cycles.tick t.clock
    (World_switch.aex_cost t.cost (Enclave.mode enclave) - t.cost.tlb_flush);
  (* The interrupted TCS stays busy; the register state spills into its
     next SSA frame, which lives in EPC — invisible to the primary OS. *)
  (match t.current_tcs with
  | Some tcs ->
      if tcs.Sgx_types.current_ssa >= tcs.Sgx_types.nssa then
        violation "aex: SSA frames exhausted on TCS 0x%x" tcs.Sgx_types.tcs_vpn;
      let ssa_vpn = tcs.Sgx_types.ssa_base_vpn + tcs.Sgx_types.current_ssa in
      (match Page_table.lookup enclave.gpt ~vpn:ssa_vpn with
      | Some entry ->
          Phys_mem.write_bytes t.mem
            (Addr.base_of_page entry.Page_table.frame)
            (Vcpu.serialize enclave.regs)
      | None -> violation "aex: SSA page 0x%x not mapped" ssa_vpn);
      tcs.current_ssa <- tcs.current_ssa + 1
  | None -> ());
  t.current_tcs <- None;
  enclave.entered <- false;
  enclave.stats.aexs <- enclave.stats.aexs + 1;
  t.current <- None;
  (* The normal context is restored but stays recorded so the eventual
     EEXIT (after ERESUME) returns to the context saved at EENTER;
     leave_context clears the record, so re-save it. *)
  let saved = t.saved_normal in
  leave_context t;
  t.saved_normal <- saved;
  Telemetry.observe t.telemetry "cycles.aex" (Cycles.now t.clock - aex_start)

let eresume t (enclave : Enclave.t) ~(tcs : Sgx_types.tcs) =
  require_initialized enclave "eresume";
  (match t.current with
  | Some running -> violation "eresume: enclave %d already running" running.id
  | None -> ());
  if tcs.current_ssa = 0 then violation "eresume: no interrupted state to resume";
  (* Fault site before the SSA pop: the interrupted state stays intact on
     its SSA frame, so the SDK's bounded-retry path can re-issue the
     ERESUME and land in the same saved context. *)
  Fault.point "switch.eresume";
  count t "switch.eresume";
  trace_switch t "eresume" enclave;
  let eresume_start = Cycles.now t.clock in
  Cycles.tick t.clock
    (World_switch.eresume_cost t.cost (Enclave.mode enclave) - t.cost.tlb_flush);
  tcs.current_ssa <- tcs.current_ssa - 1;
  (* Restore the spilled register state from the SSA frame. *)
  let ssa_vpn = tcs.Sgx_types.ssa_base_vpn + tcs.Sgx_types.current_ssa in
  (match Page_table.lookup enclave.gpt ~vpn:ssa_vpn with
  | Some entry ->
      enclave.regs <-
        Vcpu.deserialize
          (Phys_mem.read_bytes t.mem
             (Addr.base_of_page entry.Page_table.frame)
             Vcpu.ssa_frame_bytes)
  | None -> violation "eresume: SSA page 0x%x not mapped" ssa_vpn);
  enclave.entered <- true;
  t.current <- Some enclave;
  t.current_tcs <- Some tcs;
  enter_context t enclave;
  Telemetry.observe t.telemetry "cycles.eresume"
    (Cycles.now t.clock - eresume_start)

let current t = t.current

(* The switchless ring's persistent in-enclave worker: logically it
   EENTERed once at startup and never exits, so a dispatch runs with the
   enclave's translation current but takes no TCS and pays no world
   switch — only the vCPU's context switches (the single simulated CPU
   has to borrow the worker's address space for the duration). *)
let with_worker t (enclave : Enclave.t) f =
  require_initialized enclave "with_worker";
  (match t.current with
  | Some running ->
      violation "with_worker: enclave %d already on this vCPU" running.id
  | None -> ());
  enclave.entered <- true;
  t.current <- Some enclave;
  enter_context t enclave;
  Fun.protect f ~finally:(fun () ->
      enclave.entered <- false;
      t.current <- None;
      leave_context t)

(* --- enclave memory with demand paging ----------------------------------- *)

let require_entered t (enclave : Enclave.t) op =
  match t.current with
  | Some running when running.id = enclave.id -> ()
  | Some _ | None -> violation "%s: enclave %d is not entered" op enclave.id

let commit_page t (enclave : Enclave.t) ~vpn =
  count t "epc.commit";
  count t "fault.page_fault";
  let frame =
    alloc_epc t ~owner:(Epc.Enclave enclave.id) ~page_type:Sgx_types.Pt_reg ~vpn
      ~prefer_not:None
  in
  install_mapping enclave ~vpn ~frame ~perms:Page_table.rw;
  Cycles.tick t.clock
    (t.cost.vmexit + t.cost.pf_commit_handle + t.cost.pte_update
   + t.cost.vminject);
  enclave.stats.page_faults <- enclave.stats.page_faults + 1;
  enclave.stats.dyn_pages <- enclave.stats.dyn_pages + 1

(* Fault on a page the monitor previously evicted: reload and unseal it
   (ELDU), verifying integrity and freshness of the untrusted blob. *)
let swap_in_page t (enclave : Enclave.t) ~vpn =
  (* Pre-mutation fault site: the page is still recorded as swapped out
     and the blob is still on the backend, so a retried access simply
     faults and re-attempts the reload. *)
  Fault.point "epc.swap_in";
  count t "epc.swap_in";
  count t "fault.page_fault";
  let swap_in_start = Cycles.now t.clock in
  let backend =
    match t.swap_backend with
    | Some backend -> backend
    | None -> violation "swap-in: no backend"
  in
  let blob =
    match backend.load (swap_slot_name enclave.id vpn) with
    | Some blob -> blob
    | None -> violation "swap-in: enclave %d page 0x%x blob missing" enclave.id vpn
  in
  let sealed =
    try Authenc.decode blob
    with Invalid_argument _ ->
      violation "swap-in: enclave %d page 0x%x blob malformed" enclave.id vpn
  in
  let content =
    try Authenc.unseal ~key:(swap_key t) sealed
    with Authenc.Authentication_failure ->
      violation "swap-in: enclave %d page 0x%x integrity violation" enclave.id
        vpn
  in
  let perms =
    match String.split_on_char ':' (Bytes.to_string sealed.Authenc.aad) with
    | [ id; page; perms; version ]
      when int_of_string_opt id = Some enclave.id
           && int_of_string_opt ("0x" ^ page) = Some vpn ->
        (* Freshness: only the *latest* write-back of this page is
           acceptable; an older authentic blob is a rollback attempt. *)
        let expected =
          Option.value ~default:0
            (Hashtbl.find_opt t.swap_versions (enclave.id, vpn))
        in
        if int_of_string_opt version <> Some expected then
          violation
            "swap-in: enclave %d page 0x%x stale write-back (rollback replay?)"
            enclave.id vpn;
        parse_perms perms
    | _ -> violation "swap-in: blob bound to a different page (replay?)"
  in
  let frame =
    alloc_epc t ~owner:(Epc.Enclave enclave.id) ~page_type:Sgx_types.Pt_reg ~vpn
      ~prefer_not:(Some enclave.id)
  in
  Phys_mem.write_page t.mem ~frame content;
  install_mapping enclave ~vpn ~frame ~perms;
  (* The vpn's translation may still be cached from before the eviction
     (it was only shot down on the evicting CPU's view at evict time, and
     the page may now live in a different frame): a stale entry would
     read the old frame.  Shoot it down like ELDU's required ETRACK. *)
  Tlb.invalidate (Mmu.tlb t.cpu) ~vpn;
  count t "tlb.invlpg";
  Hashtbl.remove t.swapped (enclave.id, vpn);
  (* The blob is single-use (ELDU consumes the version-array slot): once
     the page is resident again, leaving the ciphertext around only
     litters the backend and widens the replay surface. *)
  backend.delete (swap_slot_name enclave.id vpn);
  enclave.stats.page_faults <- enclave.stats.page_faults + 1;
  Cycles.tick t.clock (t.cost.vmexit + t.cost.epc_swap_page + t.cost.vminject);
  Telemetry.observe t.telemetry "cycles.swap_in"
    (Cycles.now t.clock - swap_in_start);
  Telemetry.trace t.telemetry ~at:(Cycles.now t.clock)
    ~detail:(Printf.sprintf "enclave %d vpn 0x%x" enclave.id vpn)
    "epc.swap_in"

(* Permission faults are redelivered to a registered in-enclave #PF
   handler: locally for P-Enclaves, via a monitor round trip for GU/HU
   (Sec. 4.3, Table 2's GC scenario). *)
let deliver_pf t (enclave : Enclave.t) ~va ~write =
  match Enclave.find_handler enclave ~vector:"#PF" with
  | None -> false
  | Some handler ->
      count t "fault.page_fault";
      enclave.stats.page_faults <- enclave.stats.page_faults + 1;
      (match Enclave.mode enclave with
      | Sgx_types.P ->
          Cycles.tick t.clock t.cost.idt_dispatch;
          enclave.stats.in_enclave_exceptions <-
            enclave.stats.in_enclave_exceptions + 1;
          let handled = handler (Sgx_types.Pf { va; write }) in
          Cycles.tick t.clock t.cost.iret;
          handled
      | Sgx_types.GU | Sgx_types.HU ->
          Cycles.tick t.clock
            (t.cost.vmexit + t.cost.monitor_pf_dispatch + t.cost.vminject);
          handler (Sgx_types.Pf { va; write }))

let rec access_loop t (enclave : Enclave.t) ~access ~va ~attempts =
  if attempts > 8 then violation "memory access at 0x%x cannot make progress" va;
  try Mmu.translate t.cpu ~access ~user:true va
  with Mmu.Page_fault fault ->
    if (not fault.present) && Enclave.in_elrange enclave ~va then begin
      if Hashtbl.mem t.swapped (enclave.id, fault.vpn) then
        swap_in_page t enclave ~vpn:fault.vpn
      else commit_page t enclave ~vpn:fault.vpn;
      access_loop t enclave ~access ~va ~attempts:(attempts + 1)
    end
    else if fault.present then
      if deliver_pf t enclave ~va ~write:(access = Mmu.Write) then
        access_loop t enclave ~access ~va ~attempts:(attempts + 1)
      else
        violation "unhandled protection fault at 0x%x (%s)" va
          (Format.asprintf "%a" Mmu.pp_access access)
    else violation "not-present fault outside ELRANGE at 0x%x" va

let check_range t (enclave : Enclave.t) ~va ~len op =
  require_entered t enclave op;
  let in_el =
    Enclave.in_elrange enclave ~va
    && Enclave.in_elrange enclave ~va:(va + max 0 (len - 1))
  in
  if not (in_el || Enclave.in_marshalling enclave ~va ~len) then
    violation "%s: [0x%x, +%d) violates R-2 (outside enclave + marshalling)"
      op va len

let enclave_read t enclave ~va ~len =
  check_range t enclave ~va ~len "enclave_read";
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = va + !pos in
    let chunk = min (len - !pos) (Addr.page_size - Addr.offset a) in
    let pa = access_loop t enclave ~access:Mmu.Read ~va:a ~attempts:0 in
    Epc.mark_referenced t.epc (Addr.page_of pa);
    Bytes.blit (Phys_mem.read_bytes t.mem pa chunk) 0 out !pos chunk;
    pos := !pos + chunk
  done;
  Cycles.tick t.clock (Cost_model.copy_cost t.cost len);
  out

let enclave_write t enclave ~va data =
  let len = Bytes.length data in
  check_range t enclave ~va ~len "enclave_write";
  let pos = ref 0 in
  while !pos < len do
    let a = va + !pos in
    let chunk = min (len - !pos) (Addr.page_size - Addr.offset a) in
    let pa = access_loop t enclave ~access:Mmu.Write ~va:a ~attempts:0 in
    Epc.mark_referenced t.epc (Addr.page_of pa);
    Phys_mem.write_bytes t.mem pa (Bytes.sub data !pos chunk);
    pos := !pos + chunk
  done;
  Cycles.tick t.clock (Cost_model.copy_cost t.cost len)

let touch t enclave ~va ~write =
  check_range t enclave ~va ~len:1 "touch";
  let access = if write then Mmu.Write else Mmu.Read in
  ignore (access_loop t enclave ~access ~va ~attempts:0)

(* --- EDMM ----------------------------------------------------------------- *)

let require_owned t (enclave : Enclave.t) ~vpn op =
  match Page_table.lookup enclave.gpt ~vpn with
  | None -> violation "%s: page 0x%x is not mapped" op vpn
  | Some entry ->
      (match Epc.info t.epc entry.Page_table.frame with
      | Some { Epc.owner = Epc.Enclave id; _ } when id = enclave.id -> entry
      | Some _ | None ->
          (* Marshalling pages are mapped but not EPC-owned: permission
             games on them are refused. *)
          violation "%s: page 0x%x is not an enclave-owned page" op vpn)

let set_perms_and_shoot t (enclave : Enclave.t) ~vpn ~perms =
  Page_table.protect enclave.gpt ~vpn ~perms;
  Cycles.tick t.clock (t.cost.pte_update + t.cost.tlb_shootdown);
  Tlb.invalidate (Mmu.tlb t.cpu) ~vpn;
  count t "tlb.invlpg"

let emodpr t enclave ~vpn ~perms =
  ignore (require_owned t enclave ~vpn "emodpr");
  count t "hypercall.emodpr";
  Cycles.tick t.clock t.cost.hypercall;
  set_perms_and_shoot t enclave ~vpn ~perms

let emodpe t enclave ~vpn ~perms =
  ignore (require_owned t enclave ~vpn "emodpe");
  count t "hypercall.emodpe";
  Cycles.tick t.clock t.cost.hypercall;
  set_perms_and_shoot t enclave ~vpn ~perms

let eremove_page t (enclave : Enclave.t) ~vpn =
  let entry = require_owned t enclave ~vpn "eremove_page" in
  count t "hypercall.eremove_page";
  Cycles.tick t.clock t.cost.hypercall;
  let frame = entry.Page_table.frame in
  Page_table.unmap enclave.gpt ~vpn;
  (match enclave.npt with
  | Some npt -> Page_table.unmap npt ~vpn:frame
  | None -> ());
  Phys_mem.zero_page t.mem ~frame;
  Epc.free t.epc frame;
  Tlb.invalidate (Mmu.tlb t.cpu) ~vpn;
  count t "tlb.invlpg";
  Cycles.tick t.clock t.cost.tlb_shootdown

let penclave_set_perms t (enclave : Enclave.t) ~vpn ~perms =
  (match Enclave.mode enclave with
  | Sgx_types.P -> ()
  | Sgx_types.GU | Sgx_types.HU ->
      violation "penclave_set_perms: enclave %d is not a P-Enclave" enclave.id);
  ignore (require_owned t enclave ~vpn "penclave_set_perms");
  set_perms_and_shoot t enclave ~vpn ~perms

(* --- exceptions and interrupts ------------------------------------------- *)

let register_handler _t (enclave : Enclave.t) ~vector handler =
  Enclave.register_handler enclave ~vector handler

let deliver_exception t (enclave : Enclave.t) vector =
  require_entered t enclave "deliver_exception";
  let vector_name = Sgx_types.vector_name vector in
  match (Enclave.mode enclave, Enclave.find_handler enclave ~vector:vector_name) with
  | Sgx_types.P, Some handler ->
      (* In-enclave delivery: IDT vectoring, handler, IRET — no world
         switch at all (Table 2's P-Enclave rows). *)
      count t "exception.in_enclave";
      Cycles.tick t.clock t.cost.idt_dispatch;
      enclave.stats.in_enclave_exceptions <-
        enclave.stats.in_enclave_exceptions + 1;
      let handled = handler vector in
      Cycles.tick t.clock t.cost.iret;
      if handled then `Handled_in_enclave
      else begin
        count t "exception.forwarded";
        Cycles.tick t.clock t.cost.exception_classify;
        aex t enclave;
        `Forwarded_to_os
      end
  | (Sgx_types.GU | Sgx_types.HU | Sgx_types.P), _ ->
      (* Trap to the monitor, classify, AEX; the primary OS + SDK finish
         with the two-phase flow and ERESUME. *)
      count t "exception.forwarded";
      Cycles.tick t.clock t.cost.exception_classify;
      aex t enclave;
      `Forwarded_to_os

let deliver_interrupt t (enclave : Enclave.t) =
  require_entered t enclave "deliver_interrupt";
  count t "interrupt";
  (* An armed P-Enclave takes the interrupt on its own IDT first and
     counts it (Sec. 4.3), then asks the monitor to route it onward. *)
  (match enclave.Enclave.interrupt_guard with
  | Some guard ->
      Cycles.tick t.clock (t.cost.idt_dispatch + t.cost.iret);
      let now = Cycles.now t.clock in
      if now - guard.Enclave.window_start > guard.Enclave.window_cycles then begin
        guard.Enclave.window_start <- now;
        guard.Enclave.count <- 0
      end;
      guard.Enclave.count <- guard.Enclave.count + 1;
      if guard.Enclave.count = guard.Enclave.threshold + 1 then
        guard.Enclave.alarms <- guard.Enclave.alarms + 1
  | None -> ());
  aex t enclave

let arm_interrupt_guard t (enclave : Enclave.t) ~window_cycles ~threshold =
  (match Enclave.mode enclave with
  | Sgx_types.P -> ()
  | Sgx_types.GU | Sgx_types.HU ->
      violation
        "arm_interrupt_guard: enclave %d is not a P-Enclave (only P receives          interrupts in-world)"
        enclave.Enclave.id);
  if window_cycles <= 0 || threshold <= 0 then
    violation "arm_interrupt_guard: invalid parameters";
  enclave.Enclave.interrupt_guard <-
    Some
      {
        Enclave.window_cycles;
        threshold;
        window_start = Cycles.now t.clock;
        count = 0;
        alarms = 0;
      }

let interrupt_alarms (enclave : Enclave.t) =
  match enclave.Enclave.interrupt_guard with
  | Some guard -> guard.Enclave.alarms
  | None -> 0

(* --- keys and attestation ------------------------------------------------- *)

let egetkey t (enclave : Enclave.t) key_name =
  require_launched t "egetkey";
  Cycles.tick t.clock (World_switch.transition_cost t.cost (Enclave.mode enclave));
  let label = Sgx_types.key_name_label key_name in
  let identity =
    match key_name with
    | Sgx_types.Seal_key_mrenclave -> enclave.mrenclave
    | Sgx_types.Seal_key_mrsigner -> enclave.mrsigner
    | Sgx_types.Report_key -> Bytes.empty
  in
  let info =
    Printf.sprintf "%s:%s:%d" label (Sha256.to_hex identity) enclave.isv_svn
  in
  Hmac.derive ~key:t.k_root ~info

let report_key t = Hmac.derive ~key:t.k_root ~info:"report:" (* platform-wide *)

let ereport t (enclave : Enclave.t) ~report_data =
  require_launched t "ereport";
  require_initialized enclave "ereport";
  Cycles.tick t.clock (World_switch.transition_cost t.cost (Enclave.mode enclave));
  if Bytes.length report_data > 64 then violation "ereport: report_data > 64 bytes";
  let padded = Bytes.make 64 '\000' in
  Bytes.blit report_data 0 padded 0 (Bytes.length report_data);
  let report =
    {
      Sgx_types.mrenclave = enclave.mrenclave;
      mrsigner = enclave.mrsigner;
      attributes = enclave.secs.Sgx_types.attributes;
      isv_prod_id = enclave.isv_prod_id;
      isv_svn = enclave.isv_svn;
      report_data = padded;
      key_id = Rng.bytes t.rng 16;
      mac = Bytes.empty;
    }
  in
  let mac = Hmac.hmac ~key:(report_key t) (Sgx_types.report_body report) in
  { report with Sgx_types.mac }

let verify_report t (report : Sgx_types.report) =
  Hmac.verify ~key:(report_key t)
    (Sgx_types.report_body { report with Sgx_types.mac = Bytes.empty })
    ~tag:report.Sgx_types.mac

let counter_name (enclave : Enclave.t) =
  "enclave:" ^ Sha256.to_hex enclave.Enclave.mrenclave

let counter_increment_for t (enclave : Enclave.t) =
  require_launched t "counter_increment_for";
  Cycles.tick t.clock (World_switch.transition_cost t.cost (Enclave.mode enclave));
  Tpm.counter_create t.tpm ~name:(counter_name enclave);
  Tpm.counter_increment t.tpm ~name:(counter_name enclave)

let counter_read_for t (enclave : Enclave.t) =
  require_launched t "counter_read_for";
  Cycles.tick t.clock (World_switch.transition_cost t.cost (Enclave.mode enclave));
  Tpm.counter_create t.tpm ~name:(counter_name enclave);
  Tpm.counter_read t.tpm ~name:(counter_name enclave)

let gen_quote t enclave ~report_data ~nonce =
  require_launched t "gen_quote";
  let report = ereport t enclave ~report_data in
  let att_private =
    match t.att_private with
    | Some key -> key
    | None -> violation "gen_quote: no attestation key"
  in
  let body =
    Bytes.cat (Bytes.of_string "ems:")
      (Sgx_types.report_body { report with Sgx_types.mac = Bytes.empty })
  in
  let ems = Signature.sign att_private body in
  let tpm_quote =
    Hyperenclave_tpm.Tpm.quote t.tpm ~nonce ~pcr_selection:quote_pcr_selection
  in
  { report; ems; hapk = t.hapk; tpm_quote; events = t.boot_log }

(* --- isolation audit ------------------------------------------------------- *)

type audit_finding = { invariant : string; detail : string }

let audit t =
  let findings = ref [] in
  let report invariant fmt =
    Printf.ksprintf (fun detail -> findings := { invariant; detail } :: !findings) fmt
  in
  let res_lo = t.config.reserved_base_frame in
  let res_hi = res_lo + t.config.reserved_nframes in
  let reserved frame = frame >= res_lo && frame < res_hi in
  let monitor_private frame =
    frame >= res_lo && frame < res_lo + t.config.monitor_private_frames
  in
  (* R-1: the normal VM's nested table must not reach the reservation. *)
  Page_table.iter t.normal_npt (fun ~vpn entry ->
      if reserved entry.Page_table.frame then
        report "R-1" "normal NPT maps gfn 0x%x to reserved frame 0x%x" vpn
          entry.Page_table.frame);
  (* Per-enclave tables. *)
  let owners : (int, int) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun id (enclave : Enclave.t) ->
      let ms_ok vpn =
        Enclave.in_marshalling enclave ~va:(Addr.base_of_page vpn) ~len:1
      in
      Page_table.iter enclave.Enclave.gpt (fun ~vpn entry ->
          let frame = entry.Page_table.frame in
          if monitor_private frame then
            report "monitor-private" "enclave %d maps monitor frame 0x%x" id frame;
          match Epc.info t.epc frame with
          | Some { Epc.owner = Epc.Enclave owner_id; _ } ->
              if owner_id <> id then
                report "epc-ownership"
                  "enclave %d maps frame 0x%x owned by enclave %d" id frame
                  owner_id;
              (match Hashtbl.find_opt owners frame with
              | Some other when other <> id ->
                  report "epc-ownership" "frame 0x%x mapped by enclaves %d and %d"
                    frame other id
              | Some _ | None -> Hashtbl.replace owners frame id)
          | Some { Epc.owner = Epc.Monitor; _ } ->
              report "epc-ownership" "enclave %d maps a monitor-owned EPC frame 0x%x"
                id frame
          | None ->
              (* Not EPC: must be a marshalling page, outside the
                 reservation, at a VA inside the declared buffer. *)
              if reserved frame then
                report "R-2" "enclave %d maps reserved non-EPC frame 0x%x" id frame;
              if not (ms_ok vpn) then
                report "R-2"
                  "enclave %d maps non-EPC frame 0x%x outside the marshalling                    buffer (vpn 0x%x)"
                  id frame vpn);
      (* Nested table (GU/P): only the enclave's own frames + marshalling. *)
      (match enclave.Enclave.npt with
      | None -> ()
      | Some npt ->
          Page_table.iter npt (fun ~vpn:gfn entry ->
              let frame = entry.Page_table.frame in
              if gfn <> frame then
                report "nested-identity" "enclave %d NPT maps gfn 0x%x to 0x%x" id
                  gfn frame;
              match Epc.info t.epc frame with
              | Some { Epc.owner = Epc.Enclave owner_id; _ } when owner_id = id ->
                  ()
              | Some _ ->
                  report "R-2" "enclave %d NPT reaches foreign EPC frame 0x%x" id
                    frame
              | None ->
                  if reserved frame then
                    report "R-2" "enclave %d NPT reaches reserved frame 0x%x" id
                      frame));
      (* TCS consistency. *)
      List.iter
        (fun (tcs : Sgx_types.tcs) ->
          if tcs.current_ssa < 0 || tcs.current_ssa > tcs.nssa then
            report "tcs" "enclave %d TCS 0x%x has SSA index %d/%d" id tcs.tcs_vpn
              tcs.current_ssa tcs.nssa)
        enclave.Enclave.tcs_list;
      if enclave.Enclave.entered then begin
        match t.current with
        | Some running when running.Enclave.id = id -> ()
        | Some _ | None ->
            report "tcs" "enclave %d marked entered but not current" id
      end)
    t.enclaves;
  List.rev !findings

(* --- introspection -------------------------------------------------------- *)

let epc t = t.epc
let iommu t = t.iommu
let enclave_count t = Hashtbl.length t.enclaves
let enclaves t = Hashtbl.fold (fun _ e acc -> e :: acc) t.enclaves []
let reserved_range t = (t.config.reserved_base_frame, t.config.reserved_nframes)
let monitor_private_frames t = t.config.monitor_private_frames

let frame_visible_to_normal_vm t ~frame =
  Page_table.lookup t.normal_npt ~vpn:frame <> None

let swap_out_one t =
  require_launched t "swap_out_one";
  evict_one_epc t ~prefer_not:None

(* --- snapshot / restore ---------------------------------------------------

   Cheap whole-monitor checkpoints for lib/mc's DFS backtracking.  The
   contract is *in-place* restoration: every [Enclave.t] and
   [Sgx_types.tcs] handle held by callers stays valid across a restore,
   because the mutable records are written back rather than replaced.
   Snapshots follow a stack discipline (restore in LIFO order), which is
   what makes the page-table generation short-circuit sound.

   Out of scope, deliberately: the clock, telemetry and boot identity
   (K_root, attestation key, boot log) — the first two are observational
   and monotonic, the last is immutable after launch.  Physical page
   *contents* are also not captured here; lib/mc tracks dirty frames
   through [Phys_mem.set_write_observer] and restores only what a
   transition actually wrote. *)

type enclave_snapshot = {
  es_enclave : Enclave.t;
  es_lifecycle : Enclave.lifecycle;
  es_ctx : Sha256.ctx option;
  es_mrenclave : bytes;
  es_mrsigner : bytes;
  es_isv_prod_id : int;
  es_isv_svn : int;
  es_tcs : (Sgx_types.tcs * Sgx_types.tcs) list; (* (live, frozen copy) *)
  es_marshalling : (int * int) option;
  es_handlers : (string * Enclave.exn_handler) list;
  es_guard : Enclave.interrupt_guard option; (* frozen copy *)
  es_entered : bool;
  es_return_va : int;
  es_regs : Vcpu.regs; (* frozen copy *)
  es_stats : Enclave.stats; (* frozen copy *)
  es_gpt : Page_table.snapshot;
  es_npt : Page_table.snapshot option;
}

type snapshot = {
  ms_enclaves : (int * enclave_snapshot) list;
  ms_next_id : int;
  ms_current : int option;
  ms_current_tcs : int option; (* tcs_vpn within the current enclave *)
  ms_saved_normal : (Page_table.t * Page_table.t option) option;
  ms_swapped : (int * int) list;
  ms_swap_versions : ((int * int) * int) list;
  ms_epc_swaps : int;
  ms_epc : Epc.snapshot;
  ms_normal_npt : Page_table.snapshot;
  ms_rng : int64;
}

let copy_tcs (tcs : Sgx_types.tcs) = { tcs with Sgx_types.busy = tcs.busy }

let copy_guard (g : Enclave.interrupt_guard) =
  { g with Enclave.window_start = g.Enclave.window_start }

let copy_stats (s : Enclave.stats) = { s with Enclave.ecalls = s.Enclave.ecalls }

let snapshot_enclave (e : Enclave.t) =
  {
    es_enclave = e;
    es_lifecycle = e.Enclave.lifecycle;
    es_ctx = Option.map Sha256.copy e.Enclave.measurement_ctx;
    (* mrenclave/mrsigner are replaced wholesale, never mutated in
       place, so sharing the bytes is safe. *)
    es_mrenclave = e.Enclave.mrenclave;
    es_mrsigner = e.Enclave.mrsigner;
    es_isv_prod_id = e.Enclave.isv_prod_id;
    es_isv_svn = e.Enclave.isv_svn;
    es_tcs = List.map (fun tcs -> (tcs, copy_tcs tcs)) e.Enclave.tcs_list;
    es_marshalling = e.Enclave.marshalling;
    es_handlers = e.Enclave.handlers;
    es_guard = Option.map copy_guard e.Enclave.interrupt_guard;
    es_entered = e.Enclave.entered;
    es_return_va = e.Enclave.return_va;
    es_regs = Vcpu.copy e.Enclave.regs;
    es_stats = copy_stats e.Enclave.stats;
    es_gpt = Page_table.snapshot e.Enclave.gpt;
    es_npt = Option.map Page_table.snapshot e.Enclave.npt;
  }

let restore_enclave es =
  let e = es.es_enclave in
  e.Enclave.lifecycle <- es.es_lifecycle;
  (* Copy out of the snapshot so it stays reusable after this restore. *)
  e.Enclave.measurement_ctx <- Option.map Sha256.copy es.es_ctx;
  e.Enclave.mrenclave <- es.es_mrenclave;
  e.Enclave.mrsigner <- es.es_mrsigner;
  e.Enclave.isv_prod_id <- es.es_isv_prod_id;
  e.Enclave.isv_svn <- es.es_isv_svn;
  List.iter
    (fun ((live : Sgx_types.tcs), (saved : Sgx_types.tcs)) ->
      live.Sgx_types.busy <- saved.Sgx_types.busy;
      live.Sgx_types.current_ssa <- saved.Sgx_types.current_ssa)
    es.es_tcs;
  e.Enclave.tcs_list <- List.map fst es.es_tcs;
  e.Enclave.marshalling <- es.es_marshalling;
  e.Enclave.handlers <- es.es_handlers;
  e.Enclave.interrupt_guard <- Option.map copy_guard es.es_guard;
  e.Enclave.entered <- es.es_entered;
  e.Enclave.return_va <- es.es_return_va;
  e.Enclave.regs <- Vcpu.copy es.es_regs;
  let s = e.Enclave.stats and saved = es.es_stats in
  s.Enclave.ecalls <- saved.Enclave.ecalls;
  s.Enclave.ocalls <- saved.Enclave.ocalls;
  s.Enclave.aexs <- saved.Enclave.aexs;
  s.Enclave.page_faults <- saved.Enclave.page_faults;
  s.Enclave.dyn_pages <- saved.Enclave.dyn_pages;
  s.Enclave.in_enclave_exceptions <- saved.Enclave.in_enclave_exceptions;
  Page_table.restore e.Enclave.gpt es.es_gpt;
  (match (e.Enclave.npt, es.es_npt) with
  | Some npt, Some snap -> Page_table.restore npt snap
  | None, None -> ()
  | _ -> assert false)

let snapshot t =
  {
    ms_enclaves =
      Hashtbl.fold (fun id e acc -> (id, snapshot_enclave e) :: acc) t.enclaves [];
    ms_next_id = t.next_id;
    ms_current = Option.map (fun (e : Enclave.t) -> e.Enclave.id) t.current;
    ms_current_tcs =
      Option.map (fun (tcs : Sgx_types.tcs) -> tcs.Sgx_types.tcs_vpn) t.current_tcs;
    ms_saved_normal = t.saved_normal;
    ms_swapped = Hashtbl.fold (fun key () acc -> key :: acc) t.swapped [];
    ms_swap_versions =
      Hashtbl.fold (fun key v acc -> (key, v) :: acc) t.swap_versions [];
    ms_epc_swaps = t.epc_swaps;
    ms_epc = Epc.snapshot t.epc;
    ms_normal_npt = Page_table.snapshot t.normal_npt;
    ms_rng = Rng.state t.rng;
  }

let restore t snap =
  Hashtbl.reset t.enclaves;
  List.iter
    (fun (id, es) ->
      restore_enclave es;
      Hashtbl.replace t.enclaves id es.es_enclave)
    snap.ms_enclaves;
  t.next_id <- snap.ms_next_id;
  Hashtbl.reset t.swapped;
  List.iter (fun key -> Hashtbl.replace t.swapped key ()) snap.ms_swapped;
  Hashtbl.reset t.swap_versions;
  List.iter
    (fun (key, v) -> Hashtbl.replace t.swap_versions key v)
    snap.ms_swap_versions;
  t.epc_swaps <- snap.ms_epc_swaps;
  Epc.restore t.epc snap.ms_epc;
  Page_table.restore t.normal_npt snap.ms_normal_npt;
  Rng.set_seed t.rng snap.ms_rng;
  t.current <- Option.map (Hashtbl.find t.enclaves) snap.ms_current;
  t.current_tcs <-
    (match (t.current, snap.ms_current_tcs) with
    | Some e, Some vpn -> Enclave.find_tcs e ~vpn
    | _ -> None);
  t.saved_normal <- snap.ms_saved_normal;
  (* Re-point the MMU at the tables matching the restored world and drop
     any translations cached inside the undone branch. *)
  match t.current with
  | Some e -> (
      match e.Enclave.npt with
      | Some npt -> Mmu.switch_context t.cpu ~gpt:e.Enclave.gpt ~npt ()
      | None -> Mmu.switch_context t.cpu ~gpt:e.Enclave.gpt ())
  | None -> (
      match snap.ms_saved_normal with
      | Some (gpt, npt) -> (
          match npt with
          | Some npt -> Mmu.switch_context t.cpu ~gpt ~npt ()
          | None -> Mmu.switch_context t.cpu ~gpt ())
      | None ->
          (* The CPU already sits on the normal tables (monitor
             operations always restore them on exit); only the TLB may
             hold entries from the undone branch. *)
          Mmu.flush_tlb t.cpu)
