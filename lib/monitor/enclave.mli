(** The in-monitor representation of one enclave.

    Everything here is RustMonitor's private state: the enclave's page
    table (created and owned by the monitor — the design decision that
    defeats page-table-based attacks, Sec. 3.2), its nested table for
    GU/P modes, the running measurement, TCS bookkeeping, and the
    marshalling-buffer binding.  The primary OS never sees any of it. *)

open Hyperenclave_hw

type lifecycle = Uninitialized | Initialized | Dead

type stats = {
  mutable ecalls : int;
  mutable ocalls : int;
  mutable aexs : int;
  mutable page_faults : int;
  mutable dyn_pages : int;  (** pages committed on demand (EDMM) *)
  mutable in_enclave_exceptions : int;  (** P-Enclave local deliveries *)
}

(** An in-enclave exception handler (P-Enclave, Sec. 4.3): returns [true]
    when the exception was handled and execution can continue. *)
type exn_handler = Sgx_types.exception_vector -> bool

(** Interrupt-frequency guard (Sec. 4.3: "P-Enclaves may also detect
    abnormal interrupt events by counting the frequency, before
    requesting RustMonitor to route them to the primary OS" — the defence
    against single-stepping/interrupt side channels). *)
type interrupt_guard = {
  window_cycles : int;  (** observation window *)
  threshold : int;  (** interrupts per window considered abnormal *)
  mutable window_start : int;
  mutable count : int;
  mutable alarms : int;  (** windows that crossed the threshold *)
}

type t = {
  id : int;
  secs : Sgx_types.secs;
  gpt : Page_table.t;
  npt : Page_table.t option;  (** None for HU-Enclaves (1-level paging) *)
  mutable lifecycle : lifecycle;
  mutable measurement_ctx : Hyperenclave_crypto.Sha256.ctx option;
  mutable mrenclave : bytes;
  mutable mrsigner : bytes;
  mutable isv_prod_id : int;
  mutable isv_svn : int;
  mutable tcs_list : Sgx_types.tcs list;
  mutable marshalling : (int * int) option;  (** VA base, size *)
  mutable handlers : (string * exn_handler) list;  (** P-mode whitelist *)
  mutable interrupt_guard : interrupt_guard option;
  mutable entered : bool;
  mutable return_va : int;  (** recorded at EENTER; EEXIT must match *)
  mutable regs : Vcpu.regs;  (** in-enclave register state (symbolic) *)
  stats : stats;
}

val mode : t -> Sgx_types.operation_mode

val make : id:int -> secs:Sgx_types.secs -> t
(** Fresh enclave in [Uninitialized] state with empty tables (HU gets no
    NPT).  Measurement context seeded with the SECS fields, as ECREATE
    does. *)

val in_elrange : t -> va:int -> bool
val elrange_pages : t -> int

val in_marshalling : t -> va:int -> len:int -> bool
(** Whether [va, va+len) lies entirely inside the bound marshalling
    buffer. *)

val measure_chunk : t -> bytes -> unit
(** Extend the running measurement. @raise Invalid_argument after EINIT. *)

val finalize_measurement : t -> bytes
(** MRENCLAVE; freezes the context. *)

val peek_measurement : t -> bytes
(** Digest-so-far without freezing: finalizes a copy of the running
    context.  EINIT validates against this so a refused launch (bad
    token, bad marshalling list) leaves the enclave buildable.
    @raise Invalid_argument after the measurement is frozen. *)

val commit_measurement : t -> bytes -> unit
(** Freeze the measurement to a digest previously obtained from
    {!peek_measurement} — the success half of EINIT. *)

val register_handler : t -> vector:string -> exn_handler -> unit
(** P-Enclave only (checked by the monitor, not here). *)

val find_handler : t -> vector:string -> exn_handler option
val free_tcs : t -> Sgx_types.tcs option
(** First non-busy TCS. *)

val find_tcs : t -> vpn:int -> Sgx_types.tcs option
