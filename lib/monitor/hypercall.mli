(** The hypercall ABI between the normal world and RustMonitor.

    Sec. 3.4/5.2: the kernel module "provides similar functionalities by
    invoking RustMonitor through hypercalls, and exposes the
    functionalities to the applications by the ioctl() interfaces", and
    the SDK replaces the SGX user leaf functions with hypercalls.  This
    module is that boundary made explicit: one numbered request type, one
    dispatcher, one result type — the single entry point a verification
    effort (Sec. 5.1) would reason about.

    The typed [Monitor] functions remain the implementation; [dispatch]
    is a thin, total router over them, so both call paths stay in sync by
    construction. *)

open Hyperenclave_hw

(** Requests, tagged with their vector numbers (shown by {!number}). *)
type request =
  | Ecreate of Sgx_types.secs
  | Eadd of {
      enclave : Enclave.t;
      vpn : int;
      content : bytes;
      perms : Page_table.perms;
      page_type : Sgx_types.page_type;
    }
  | Eadd_tcs of {
      enclave : Enclave.t;
      vpn : int;
      entry_va : int;
      nssa : int;
      ssa_base_vpn : int;
    }
  | Einit of {
      enclave : Enclave.t;
      sigstruct : Sgx_types.sigstruct;
      marshalling : int * int * (int * int) list;
    }
  | Eremove of Enclave.t
  | Eenter of { enclave : Enclave.t; tcs : Sgx_types.tcs; return_va : int }
  | Eexit of { enclave : Enclave.t; target_va : int }
  | Eresume of { enclave : Enclave.t; tcs : Sgx_types.tcs }
  | Emodpr of { enclave : Enclave.t; vpn : int; perms : Page_table.perms }
  | Emodpe of { enclave : Enclave.t; vpn : int; perms : Page_table.perms }
  | Eremove_page of { enclave : Enclave.t; vpn : int }
  | Egetkey of { enclave : Enclave.t; name : Sgx_types.key_name }
  | Ereport of { enclave : Enclave.t; report_data : bytes }
  | Gen_quote of { enclave : Enclave.t; report_data : bytes; nonce : bytes }
  | Ebatch of request list
      (** Batched dispatch: one VMMCALL carries several requests, the
          dispatch gate (and its fault site) fires once, and each slot
          yields its own result — a faulting slot faults that slot, not
          the batch. *)
  | Obatch of {
      enclave : Enclave.t;
      tcs : Sgx_types.tcs;
      return_va : int;
      slots : int;
    }
      (** Batched ORET for the switchless OCALL reply ring: one VMMCALL
          re-enters the parked TCS after [slots] replies were drained,
          replacing [slots] individual EENTER crossings.  The monitor
          refuses slot counts outside [1, 64]. *)

type result =
  | Ok
  | Enclave_handle of Enclave.t
  | Key of bytes
  | Report of Sgx_types.report
  | Quote of Monitor.quote
  | Batch of result list  (** per-slot results of an [Ebatch], in order *)
  | Fault of string  (** a rejected hypercall (Security_violation text) *)

val number : request -> int
(** The ABI vector (stable; mirrors the SGX leaf numbering where one
    exists). *)

val name : request -> string

val dispatch : Monitor.t -> request -> result
(** Route to the monitor.  Security violations come back as [Fault];
    programming errors (invalid arguments) still raise. *)
