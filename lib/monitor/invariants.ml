open Hyperenclave_hw
open Hyperenclave_crypto

type finding = Monitor.audit_finding = { invariant : string; detail : string }

let check m =
  let extra = ref [] in
  let report invariant fmt =
    Printf.ksprintf
      (fun detail -> extra := { invariant; detail } :: !extra)
      fmt
  in
  let res_lo, res_n = Monitor.reserved_range m in
  (* R-1, direct view: scan the reservation frame-by-frame rather than
     trusting the table iteration alone. *)
  for frame = res_lo to res_lo + res_n - 1 do
    if Monitor.frame_visible_to_normal_vm m ~frame then
      report "R-1" "reserved frame 0x%x visible to the normal VM" frame
  done;
  (* R-3: no device may DMA anywhere into the reservation. *)
  let iommu = Monitor.iommu m in
  List.iter
    (fun device ->
      let mapped = ref 0 in
      for frame = res_lo to res_lo + res_n - 1 do
        if Iommu.allowed iommu ~device ~frame then incr mapped
      done;
      if !mapped > 0 then
        report "R-3" "device %s maps %d reserved frame(s)" device !mapped)
    (Iommu.devices iommu);
  (* EPC accounting: the free list and the metadata table must tile the
     pool exactly, and every owner must be alive. *)
  let epc = Monitor.epc m in
  let used = Epc.used_count epc and free = Epc.free_count epc in
  if used + free <> Epc.nframes epc then
    report "epc-accounting" "%d used + %d free <> %d pool frames" used free
      (Epc.nframes epc);
  let enclaves = Monitor.enclaves m in
  let live id =
    List.exists (fun (e : Enclave.t) -> e.Enclave.id = id) enclaves
  in
  for frame = Epc.base_frame epc to Epc.base_frame epc + Epc.nframes epc - 1 do
    match Epc.info epc frame with
    | Some { Epc.owner = Epc.Enclave id; _ } when not (live id) ->
        report "epc-accounting" "frame 0x%x owned by dead enclave %d" frame id
    | Some _ | None -> ()
  done;
  (* Measurement consistency: EINIT freezes a digest-sized MRENCLAVE and
     registered enclaves are never left in the Dead state. *)
  List.iter
    (fun (e : Enclave.t) ->
      match e.Enclave.lifecycle with
      | Enclave.Initialized ->
          if Bytes.length e.Enclave.mrenclave <> Sha256.digest_size then
            report "measurement" "enclave %d initialized with a %d-byte MRENCLAVE"
              e.Enclave.id
              (Bytes.length e.Enclave.mrenclave)
      | Enclave.Dead ->
          report "measurement" "dead enclave %d still registered" e.Enclave.id
      | Enclave.Uninitialized -> ())
    enclaves;
  Monitor.audit m @ List.rev !extra

let ok m = check m = []

let pp_finding fmt f = Format.fprintf fmt "[%s] %s" f.invariant f.detail

let summary = function
  | [] -> "ok"
  | findings ->
      String.concat "; "
        (List.map
           (fun f -> Printf.sprintf "[%s] %s" f.invariant f.detail)
           findings)
