(** Monitor invariant checker: R-1..R-3 re-validated from live state.

    {!Monitor.audit} walks the page tables for the mapping-level
    invariants.  This module composes that walk with the platform-wide
    checks an injected fault could silently break — the IOMMU tables
    (R-3), the normal VM's direct view of the reservation (R-1), EPC
    free-list accounting, and enclave measurement consistency — into one
    verdict the chaos harness runs after {e every} injected fault.

    Checking never charges simulated cycles and never draws randomness,
    so it can run at any fault site without perturbing the run. *)

type finding = Monitor.audit_finding = { invariant : string; detail : string }

val check : Monitor.t -> finding list
(** All violations found; [[]] means every invariant holds.  On top of
    {!Monitor.audit}:
    - R-1: no reserved frame is reachable through the normal VM's nested
      table (scanned frame-by-frame, not just by table iteration);
    - R-3: no attached device's IOMMU table maps any reserved frame;
    - EPC accounting: allocated + free frames = pool size, and every
      allocated frame's owner is a live enclave or the monitor;
    - measurement: every initialized enclave carries a finalized,
      digest-sized MRENCLAVE, and no dead enclave remains registered. *)

val ok : Monitor.t -> bool

val pp_finding : Format.formatter -> finding -> unit

val summary : finding list -> string
(** ["ok"] or a compact one-line list for failure reports. *)
