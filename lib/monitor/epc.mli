(** Enclave page cache: the reserved physical pool plus per-frame metadata.

    RustMonitor "manages the reserved physical memory by maintaining a list
    of free pages" (Sec. 5.1).  The metadata here plays the role SGX's EPCM
    plays in hardware: every frame knows its owning enclave, page type and
    the enclave virtual page it backs, so aliasing (two mappings onto one
    enclave frame — Fig. 9a) and cross-enclave grabs are detectable. *)

type owner = Monitor | Enclave of int

type frame_info = {
  owner : owner;
  page_type : Sgx_types.page_type;
  vpn : int;  (** enclave virtual page backed by this frame *)
}

type t

exception Epc_exhausted

val create : base_frame:int -> nframes:int -> t

val alloc : t -> owner:owner -> page_type:Sgx_types.page_type -> vpn:int -> int
(** Take a frame and record its metadata. @raise Epc_exhausted. *)

val free : t -> int -> unit
(** Release a frame; clears metadata.  The caller must scrub contents. *)

val free_enclave : t -> enclave_id:int -> int list
(** Release every frame owned by the enclave; returns the frames so the
    monitor can scrub them. *)

val info : t -> int -> frame_info option
(** Metadata for a frame, [None] if free or out of pool. *)

val owned_by : t -> int -> owner option
val in_pool : t -> int -> bool
val base_frame : t -> int
val nframes : t -> int
val free_count : t -> int

val used_count : t -> int
(** Frames currently allocated (with live metadata); [used_count t +
    free_count t = nframes t] is an accounting invariant the checker
    re-validates after injected faults. *)

val used_by : t -> enclave_id:int -> int
(** Frames currently owned by the enclave. *)

val find_victim : t -> prefer_not:int option -> (int * frame_info) option
(** A regular (Pt_reg) enclave frame suitable for eviction, preferring
    enclaves other than [prefer_not]; control structures (SECS/TCS/SSA)
    are never evicted. *)
