(** Enclave page cache: the reserved physical pool plus per-frame metadata.

    RustMonitor "manages the reserved physical memory by maintaining a list
    of free pages" (Sec. 5.1).  The metadata here plays the role SGX's EPCM
    plays in hardware: every frame knows its owning enclave, page type and
    the enclave virtual page it backs, so aliasing (two mappings onto one
    enclave frame — Fig. 9a) and cross-enclave grabs are detectable. *)

type owner = Monitor | Enclave of int

type frame_info = {
  owner : owner;
  page_type : Sgx_types.page_type;
  vpn : int;  (** enclave virtual page backed by this frame *)
}

type t

exception Epc_exhausted

val create : base_frame:int -> nframes:int -> t

val alloc : t -> owner:owner -> page_type:Sgx_types.page_type -> vpn:int -> int
(** Take a frame and record its metadata. @raise Epc_exhausted. *)

val free : t -> int -> unit
(** Release a frame; clears metadata.  The caller must scrub contents. *)

val free_enclave : t -> enclave_id:int -> int list
(** Release every frame owned by the enclave; returns the frames so the
    monitor can scrub them. *)

val info : t -> int -> frame_info option
(** Metadata for a frame, [None] if free or out of pool. *)

val owned_by : t -> int -> owner option
val in_pool : t -> int -> bool
val base_frame : t -> int
val nframes : t -> int
val free_count : t -> int

val used_count : t -> int
(** Frames currently allocated (with live metadata); [used_count t +
    free_count t = nframes t] is an accounting invariant the checker
    re-validates after injected faults. *)

val used_by : t -> enclave_id:int -> int
(** Frames currently owned by the enclave. *)

val clock_hand : t -> int
(** Current position of the second-chance cursor. *)

val alloc_hint : t -> int
(** The free-list scan hint.  Together with {!clock_hand} and the
    per-frame reference bits this pins down everything allocation and
    victim selection depend on — lib/mc folds all three into canonical
    state hashes so two states that only look equal are never merged. *)

val referenced : t -> int -> bool
(** Whether the frame's second-chance reference bit is set. *)

val mark_referenced : t -> int -> unit
(** Give the frame a second chance: set its reference bit so the clock
    hand skips it once before considering it for eviction.  Called on
    allocation and whenever the monitor touches a page (commit, swap-in). *)

val find_victim :
  ?in_use:(int -> frame_info -> bool) ->
  t ->
  prefer_not:int option ->
  (int * frame_info) option
(** A regular (Pt_reg) enclave frame suitable for eviction, chosen by a
    clock-hand (second-chance) cursor over the frame range rather than
    hash-table insertion order, so multi-enclave pressure spreads
    evictions instead of repeatedly draining the oldest enclave.
    Frames for which [in_use] holds (e.g. SSA of a running vCPU, TCS
    with an active thread) and frames of [prefer_not] are skipped when
    possible, relaxing in that order if nothing else is evictable;
    control structures (SECS/TCS/SSA page types) are never evicted. *)

type snapshot

val snapshot : t -> snapshot
(** Capture frame metadata, the free map, the clock hand and reference
    bits — everything victim selection and allocation order depend on —
    for lib/mc DFS backtracking. *)

val restore : t -> snapshot -> unit
(** Restore in place; the [t] handle stays valid. *)
