(** RustMonitor: the trusted security monitor (Sec. 3, 5.1).

    Runs (conceptually) in VMX root mode.  Owns the reserved physical
    region, every enclave's page table, the nested tables, the IOMMU
    configuration, the platform key hierarchy, and the emulation of the
    privileged SGX instruction set.  The primary OS interacts with it only
    through hypercalls (modelled as direct calls from the kernel-module
    layer) and is untrusted from the moment {!launch} demotes it.

    All operations charge simulated cycles on the shared clock. *)

open Hyperenclave_hw

exception Security_violation of string
(** Raised whenever an operation would break requirements R-1..R-3, the
    mapping-attack checks, or EEXIT target validation.  In hardware this
    would be a faulted hypercall or an injected #GP. *)

type config = {
  reserved_base_frame : int;  (** start of the grub-reserved region *)
  reserved_nframes : int;  (** total reserved frames *)
  monitor_private_frames : int;  (** monitor image/heap; rest is EPC *)
}

type t

val create :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  mem:Phys_mem.t ->
  cpu:Mmu.t ->
  iommu:Iommu.t ->
  tpm:Hyperenclave_tpm.Tpm.t ->
  config ->
  t

(** {1 Measured late launch} *)

type boot_event = { pcr_index : int; label : string; measurement : bytes }
(** One entry of the measured-boot event log (CRTM, BIOS, grub, kernel,
    initramfs, hypervisor image, hapk). *)

val launch :
  t ->
  boot_log:boot_event list ->
  sealed_root_key:bytes option ->
  [ `First_boot of bytes | `Resumed ]
(** Bring the monitor up after the kernel module has measured it:
    - build the normal VM's nested page table with the reserved region
      unmapped (R-1),
    - strip the reserved region from every IOMMU table (R-3),
    - obtain [K_root]: unseal the given blob, or on first boot draw a
      fresh key from the TPM RNG and return the new sealed blob for the
      OS to persist ([`First_boot blob]),
    - derive the attestation keypair from [K_root], extend the hash of
      the public half (hapk) into a PCR,
    - flood the runtime PCR so the demoted OS can never unseal [K_root].

    @raise Security_violation if already launched or unsealing fails. *)

val launched : t -> bool
val normal_npt : t -> Page_table.t
(** Nested table for the normal VM; installed by the OS scheduler. *)

val hapk : t -> Hyperenclave_crypto.Signature.public_key
val boot_log : t -> boot_event list
val seal_pcr_selection : int list
(** PCR indices binding [K_root]: the boot chain plus the flood PCR. *)

val quote_pcr_selection : int list

(** {1 Enclave lifecycle — emulated privileged SGX instructions} *)

val ecreate : t -> Sgx_types.secs -> Enclave.t

val eadd :
  t ->
  Enclave.t ->
  vpn:int ->
  content:bytes ->
  perms:Page_table.perms ->
  page_type:Sgx_types.page_type ->
  unit
(** Allocate an EPC frame, copy+measure the page, install the mapping in
    the enclave's table(s).
    @raise Security_violation for pages outside ELRANGE, double-adds
    (Fig. 9a aliasing), or post-EINIT adds. *)

val eadd_tcs :
  t -> Enclave.t -> vpn:int -> entry_va:int -> nssa:int -> ssa_base_vpn:int -> unit
(** Add a TCS page; [ssa_base_vpn] (the OSSA) names the first of [nssa]
    SSA pages where AEXes spill the thread's register state. *)

val einit :
  t ->
  Enclave.t ->
  sigstruct:Sgx_types.sigstruct ->
  marshalling:int * int * (int * int) list ->
  unit
(** Finalize the measurement and bind the marshalling buffer:
    [(base_va, size, (vpn, host_frame) pairs)] as pinned by the kernel
    module.  Checks (Sec. 6): the signature chain; the measured hash;
    that the buffer lies entirely outside ELRANGE; and that no supplied
    frame belongs to the reserved pool (a crafted-address attack). *)

val eremove : t -> Enclave.t -> unit
(** Tear down: scrub and free every EPC frame. *)

(** {1 World switches} *)

val eenter : t -> Enclave.t -> tcs:Sgx_types.tcs -> return_va:int -> unit
(** @raise Security_violation if not initialized, TCS busy, or another
    enclave is entered on this vCPU. *)

val eexit : t -> Enclave.t -> target_va:int -> unit
(** @raise Security_violation when [target_va] differs from the recorded
    return address — the enclave-malware check of Sec. 6. *)

val aex : t -> Enclave.t -> unit
val eresume : t -> Enclave.t -> tcs:Sgx_types.tcs -> unit
val current : t -> Enclave.t option

val with_worker : t -> Enclave.t -> (unit -> 'a) -> 'a
(** Run [f] in the context of the enclave's persistent in-enclave worker
    (the switchless ring dispatcher): the enclave's translation becomes
    current for the duration — so the worker can touch enclave memory —
    without an EENTER/EEXIT pair or a TCS take; the worker thread entered
    once at startup and never leaves, so the only per-dispatch charge is
    the pair of context switches of the single simulated vCPU.  The
    normal context is restored even if [f] raises.
    @raise Security_violation if not initialized or the vCPU is already
    running an enclave. *)

(** {1 Enclave memory (only while entered)} *)

val enclave_read : t -> Enclave.t -> va:int -> len:int -> bytes
(** Read through the enclave's translation, demand-committing fresh EPC
    pages on not-present faults (the EDMM path, Sec. 3.2).
    @raise Security_violation outside ELRANGE + marshalling buffer (R-2). *)

val enclave_write : t -> Enclave.t -> va:int -> bytes -> unit

val touch : t -> Enclave.t -> va:int -> write:bool -> unit
(** Translate one address (committing on demand), charging MMU costs;
    used by workloads that only need cost behaviour, not contents. *)

(** {1 Dynamic memory management (EDMM)} *)

val emodpr : t -> Enclave.t -> vpn:int -> perms:Page_table.perms -> unit
(** Restrict permissions (hypercall + TLB shootdown).  A P-Enclave calls
    {!penclave_set_perms} instead and never leaves its world. *)

val emodpe : t -> Enclave.t -> vpn:int -> perms:Page_table.perms -> unit
val eremove_page : t -> Enclave.t -> vpn:int -> unit

val penclave_set_perms :
  t -> Enclave.t -> vpn:int -> perms:Page_table.perms -> unit
(** P-Enclave managing its own level-1 table (Sec. 4.3): PTE write plus
    INVLPG, no world switch.
    @raise Security_violation for non-P enclaves. *)

(** {1 Exceptions and interrupts} *)

val register_handler :
  t -> Enclave.t -> vector:string -> Enclave.exn_handler -> unit
(** Install an in-enclave handler; the monitor passes whitelisted vectors
    through to P-Enclaves (Sec. 4.3).  Allowed for any mode (the SDK uses
    it for the two-phase flow too); only P delivery stays in-world. *)

val deliver_exception :
  t -> Enclave.t -> Sgx_types.exception_vector ->
  [ `Handled_in_enclave | `Forwarded_to_os ]
(** P-Enclave with a registered handler: dispatch through the in-enclave
    IDT and return [`Handled_in_enclave].  Anything else: AEX, and the
    caller (kernel module/SDK) completes the two-phase flow. *)

val deliver_interrupt : t -> Enclave.t -> unit
(** Timer/device interrupt during enclave execution: AEX to the primary
    OS.  The caller is responsible for ERESUME.  P-Enclaves with an armed
    {!arm_interrupt_guard} see the interrupt on their own IDT first and
    count it before it is routed onward. *)

val arm_interrupt_guard :
  t -> Enclave.t -> window_cycles:int -> threshold:int -> unit
(** Sec. 4.3's side-channel defence: the P-Enclave counts interrupt
    arrivals per window; a window that exceeds [threshold] raises an
    alarm (interrupt-driven single-stepping à la SGX-Step arrives orders
    of magnitude above benign timer rates).
    @raise Security_violation for non-P enclaves: only they receive
    interrupts in-world. *)

val interrupt_alarms : Enclave.t -> int
(** Windows flagged abnormal so far. *)

(** {1 Keys and attestation (Sec. 3.3)} *)

val egetkey : t -> Enclave.t -> Sgx_types.key_name -> bytes
(** 32-byte key derived from [K_root] and the enclave identity. *)

val ereport : t -> Enclave.t -> report_data:bytes -> Sgx_types.report
val verify_report : t -> Sgx_types.report -> bool
(** Local attestation: recompute the report MAC on-platform. *)

val counter_increment_for : t -> Enclave.t -> int
(** Bump the enclave's TPM monotonic counter (named by MRENCLAVE,
    created on first use).  The anti-rollback primitive behind
    versioned sealing. *)

val counter_read_for : t -> Enclave.t -> int

type quote = {
  report : Sgx_types.report;
  ems : bytes;  (** enclave measurement signature, by the monitor *)
  hapk : Hyperenclave_crypto.Signature.public_key;
  tpm_quote : Hyperenclave_tpm.Tpm.quote;
  events : boot_event list;  (** measured-boot event log for replay *)
}

val gen_quote : t -> Enclave.t -> report_data:bytes -> nonce:bytes -> quote

(** {1 EPC overcommit (EWB/ELDU analogue)}

    When the enclave pool runs dry, the monitor evicts a regular enclave
    page: its contents are sealed (confidentiality + integrity + binding
    to the owning page, under a [K_root]-derived key) and the ciphertext
    is handed to untrusted storage through the kernel module's backend.
    A later fault on that page reloads and verifies it.  Tampered or
    substituted blobs are rejected with {!Security_violation}. *)

val set_swap_backend :
  t ->
  store:(string -> bytes -> unit) ->
  load:(string -> bytes option) ->
  delete:(string -> unit) ->
  unit
(** Registered by the kernel module at load time; the backend is
    untrusted by construction.  [delete] lets EREMOVE purge the sealed
    blobs of pages that were still swapped out at teardown. *)

val epc_swap_count : t -> int
(** Pages evicted so far. *)

val swapped_out : t -> enclave_id:int -> int
(** Pages of [enclave_id] currently sealed out on the backend; 0 once the
    enclave has been EREMOVEd. *)

(** {1 Isolation audit}

    The paper reports ongoing formal verification of RustMonitor
    (Sec. 5.1).  [audit] is this reproduction's executable stand-in: it
    re-derives the global isolation invariants from the live state and
    returns every violation found.  Tests run it after randomized
    lifecycle sequences. *)

type audit_finding = {
  invariant : string;  (** which invariant, e.g. "R-1", "epc-ownership" *)
  detail : string;
}

val audit : t -> audit_finding list
(** Checks, over all live enclaves:
    - R-1: no reserved frame is mapped in the normal VM's nested table;
    - EPC ownership: every EPC frame is owned by at most one live enclave,
      and every mapping in an enclave's table points either at a frame
      owned by that enclave or at a validated marshalling frame;
    - R-2 (nested level): a GU/P enclave's nested table maps only frames
      the enclave may touch;
    - no enclave table maps monitor-private frames;
    - TCS consistency: at most one busy TCS chain per running enclave and
      SSA indices within bounds. *)

(** {1 Introspection for tests and benches} *)

val telemetry : t -> Hyperenclave_obs.Telemetry.t
(** The monitor's telemetry sink: hypercall/world-switch counters, cycle
    histograms, and the recent-event trace ring.  Recording never charges
    simulated cycles, so reading it is always safe. *)

val epc : t -> Epc.t

val iommu : t -> Iommu.t
(** The platform IOMMU the monitor configured at launch; the invariant
    checker rescans it for R-3 after injected faults. *)

val enclave_count : t -> int

val enclaves : t -> Enclave.t list
(** Every live enclave, in no particular order. *)

val reserved_range : t -> int * int
(** [(base_frame, nframes)]. *)

val monitor_private_frames : t -> int
(** Frames at the bottom of the reservation holding the monitor
    image/heap (never part of the EPC pool). *)

val frame_visible_to_normal_vm : t -> frame:int -> bool

val swap_out_one : t -> unit
(** Force one EWB-style eviction (seal a victim page to the untrusted
    store and reclaim its frame), exactly as EPC exhaustion would.
    Exposed so lib/mc can schedule evictions as first-class transitions
    rather than only as a side effect of allocation pressure.
    @raise Security_violation if nothing is evictable or no swap
    backend is registered. *)

(** {1 Snapshot / restore}

    Whole-monitor checkpoints for lib/mc's DFS backtracking.  Restoring
    is in place: [Enclave.t] and [Sgx_types.tcs] handles held by the
    caller stay valid.  Snapshots must be restored in LIFO (stack)
    order — the page-table generation short-circuit relies on it.  The
    clock, telemetry and boot identity are not part of a snapshot;
    physical page contents are the caller's business (see
    {!Hyperenclave_hw.Phys_mem.set_write_observer}). *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
