(** World-switch cost composition (Sec. 4, Fig. 6, Table 1).

    GU- and P-Enclaves enter/exit through hypercalls (mode switch, ~880
    cycles); HU-Enclaves through SYSCALL/SYSRET (ring switch, ~120 cycles)
    plus an address-space switch.  On top of the transition primitive, each
    direction pays mode-specific state handling: vCPU save/restore, GPT and
    NPT swaps, and the TLB flush that Sec. 6 requires on every world
    switch.  The extras are calibrated so composed costs land on Table 1;
    the {e ordering} (HU < P < GU on entry, HU < GU < P on exit) is
    structural. *)

open Hyperenclave_hw

val transition_cost : Cost_model.t -> Sgx_types.operation_mode -> int
(** The raw privilege transition: hypercall for GU/P, ring switch for HU. *)

val eenter_cost : Cost_model.t -> Sgx_types.operation_mode -> int
val eexit_cost : Cost_model.t -> Sgx_types.operation_mode -> int

val aex_cost : Cost_model.t -> Sgx_types.operation_mode -> int
(** Asynchronous enclave exit: trap to monitor, SSA spill, switch out. *)

val eresume_cost : Cost_model.t -> Sgx_types.operation_mode -> int
(** ERESUME hypercall/syscall: restore SSA state and re-enter. *)

val sdk_ecall_soft : Cost_model.t -> Sgx_types.operation_mode -> int
(** Fixed uRTS+tRTS software path per ECALL (dispatch tables, TCS binding,
    stack setup) — the part of Table 1's ECALL numbers that is not the two
    transitions. *)

val sdk_ocall_soft : Cost_model.t -> Sgx_types.operation_mode -> int

val batch_dispatch_cost : Cost_model.t -> k:int -> int
(** Extra in-enclave work to drain a [k]-slot call ring under one world
    switch: [(k - 1) * batch_item_dispatch].  The first slot rides the
    normal entry; the switch itself is charged once by the caller. *)

val retry_backoff_cost : Cost_model.t -> attempt:int -> int
(** Simulated cycles the SDK/kernel module charge before retry attempt
    [attempt] (numbered from 1) after a transient fault: exponential in
    the attempt, capped at 64 context switches. *)
