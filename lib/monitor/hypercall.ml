open Hyperenclave_hw

type request =
  | Ecreate of Sgx_types.secs
  | Eadd of {
      enclave : Enclave.t;
      vpn : int;
      content : bytes;
      perms : Page_table.perms;
      page_type : Sgx_types.page_type;
    }
  | Eadd_tcs of {
      enclave : Enclave.t;
      vpn : int;
      entry_va : int;
      nssa : int;
      ssa_base_vpn : int;
    }
  | Einit of {
      enclave : Enclave.t;
      sigstruct : Sgx_types.sigstruct;
      marshalling : int * int * (int * int) list;
    }
  | Eremove of Enclave.t
  | Eenter of { enclave : Enclave.t; tcs : Sgx_types.tcs; return_va : int }
  | Eexit of { enclave : Enclave.t; target_va : int }
  | Eresume of { enclave : Enclave.t; tcs : Sgx_types.tcs }
  | Emodpr of { enclave : Enclave.t; vpn : int; perms : Page_table.perms }
  | Emodpe of { enclave : Enclave.t; vpn : int; perms : Page_table.perms }
  | Eremove_page of { enclave : Enclave.t; vpn : int }
  | Egetkey of { enclave : Enclave.t; name : Sgx_types.key_name }
  | Ereport of { enclave : Enclave.t; report_data : bytes }
  | Gen_quote of { enclave : Enclave.t; report_data : bytes; nonce : bytes }
  | Ebatch of request list
      (** Batched dispatch: one VMMCALL carries several requests; the
          gate (and its fault site) fires once for the whole batch. *)
  | Obatch of {
      enclave : Enclave.t;
      tcs : Sgx_types.tcs;
      return_va : int;
      slots : int;
    }
      (** Batched ORET: one VMMCALL re-enters the parked TCS after the
          untrusted side drained [slots] OCALL replies from the reply
          ring — the per-reply EENTER of the one-at-a-time path is paid
          once for the whole ring. *)

type result =
  | Ok
  | Enclave_handle of Enclave.t
  | Key of bytes
  | Report of Sgx_types.report
  | Quote of Monitor.quote
  | Batch of result list
  | Fault of string

let number = function
  | Ecreate _ -> 0x00
  | Eadd _ -> 0x01
  | Einit _ -> 0x02
  | Eremove _ -> 0x03
  | Eadd_tcs _ -> 0x04
  | Eenter _ -> 0x10
  | Eexit _ -> 0x11
  | Eresume _ -> 0x12
  | Emodpr _ -> 0x20
  | Emodpe _ -> 0x21
  | Eremove_page _ -> 0x22
  | Egetkey _ -> 0x30
  | Ereport _ -> 0x31
  | Gen_quote _ -> 0x32
  | Ebatch _ -> 0x40
  | Obatch _ -> 0x41

let name = function
  | Ecreate _ -> "ECREATE"
  | Eadd _ -> "EADD"
  | Eadd_tcs _ -> "EADD(TCS)"
  | Einit _ -> "EINIT"
  | Eremove _ -> "EREMOVE"
  | Eenter _ -> "EENTER"
  | Eexit _ -> "EEXIT"
  | Eresume _ -> "ERESUME"
  | Emodpr _ -> "EMODPR"
  | Emodpe _ -> "EMODPE"
  | Eremove_page _ -> "EREMOVE(page)"
  | Egetkey _ -> "EGETKEY"
  | Ereport _ -> "EREPORT"
  | Gen_quote _ -> "GEN_QUOTE"
  | Ebatch reqs -> Printf.sprintf "EBATCH[%d]" (List.length reqs)
  | Obatch { slots; _ } -> Printf.sprintf "OBATCH[%d]" slots

let rec dispatch monitor request =
  (* Fault site at the trust-boundary entry, before any monitor state is
     touched: an injected fault here models a VMMCALL that never reached
     the handler (dropped, truncated, or refused at the gate).  Transient
     faults are retried by the kernel module's ioctl path.  For a batch
     the gate fires once — the whole batch either reached the monitor or
     did not. *)
  Hyperenclave_fault.Fault.point "hypercall.dispatch";
  dispatch_inner monitor request

and dispatch_inner monitor request =
  try
    match request with
    | Ebatch reqs ->
        (* Sub-requests skip the gate (one VMMCALL already crossed it);
           a faulting sub-request faults its slot, not the batch. *)
        Batch (List.map (dispatch_inner monitor) reqs)
    | Obatch { enclave; tcs; return_va; slots } ->
        (* The monitor bounds the ring before touching the TCS: a slot
           count the uRTS could not have produced is a forged request. *)
        if slots < 1 || slots > 64 then
          raise
            (Monitor.Security_violation
               (Printf.sprintf "OBATCH: reply ring slot count %d out of range"
                  slots));
        Monitor.eenter monitor enclave ~tcs ~return_va;
        Ok
    | Ecreate secs -> Enclave_handle (Monitor.ecreate monitor secs)
    | Eadd { enclave; vpn; content; perms; page_type } ->
        Monitor.eadd monitor enclave ~vpn ~content ~perms ~page_type;
        Ok
    | Eadd_tcs { enclave; vpn; entry_va; nssa; ssa_base_vpn } ->
        Monitor.eadd_tcs monitor enclave ~vpn ~entry_va ~nssa ~ssa_base_vpn;
        Ok
    | Einit { enclave; sigstruct; marshalling } ->
        Monitor.einit monitor enclave ~sigstruct ~marshalling;
        Ok
    | Eremove enclave ->
        Monitor.eremove monitor enclave;
        Ok
    | Eenter { enclave; tcs; return_va } ->
        Monitor.eenter monitor enclave ~tcs ~return_va;
        Ok
    | Eexit { enclave; target_va } ->
        Monitor.eexit monitor enclave ~target_va;
        Ok
    | Eresume { enclave; tcs } ->
        Monitor.eresume monitor enclave ~tcs;
        Ok
    | Emodpr { enclave; vpn; perms } ->
        Monitor.emodpr monitor enclave ~vpn ~perms;
        Ok
    | Emodpe { enclave; vpn; perms } ->
        Monitor.emodpe monitor enclave ~vpn ~perms;
        Ok
    | Eremove_page { enclave; vpn } ->
        Monitor.eremove_page monitor enclave ~vpn;
        Ok
    | Egetkey { enclave; name } -> Key (Monitor.egetkey monitor enclave name)
    | Ereport { enclave; report_data } ->
        Report (Monitor.ereport monitor enclave ~report_data)
    | Gen_quote { enclave; report_data; nonce } ->
        Quote (Monitor.gen_quote monitor enclave ~report_data ~nonce)
  with Monitor.Security_violation message -> Fault message
