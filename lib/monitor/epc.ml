open Hyperenclave_hw

type owner = Monitor | Enclave of int

type frame_info = { owner : owner; page_type : Sgx_types.page_type; vpn : int }

type t = { alloc : Frame_alloc.t; meta : (int, frame_info) Hashtbl.t }

exception Epc_exhausted

let create ~base_frame ~nframes =
  { alloc = Frame_alloc.create ~base_frame ~nframes; meta = Hashtbl.create 1024 }

let alloc t ~owner ~page_type ~vpn =
  let frame =
    try Frame_alloc.alloc t.alloc with Frame_alloc.Out_of_frames -> raise Epc_exhausted
  in
  Hashtbl.replace t.meta frame { owner; page_type; vpn };
  frame

let free t frame =
  Hashtbl.remove t.meta frame;
  Frame_alloc.free t.alloc frame

let free_enclave t ~enclave_id =
  let frames =
    Hashtbl.fold
      (fun frame info acc ->
        match info.owner with
        | Enclave id when id = enclave_id -> frame :: acc
        | Enclave _ | Monitor -> acc)
      t.meta []
  in
  List.iter (free t) frames;
  frames

let info t frame = Hashtbl.find_opt t.meta frame
let owned_by t frame = Option.map (fun i -> i.owner) (info t frame)
let in_pool t frame = Frame_alloc.owns t.alloc frame
let base_frame t = Frame_alloc.base_frame t.alloc
let nframes t = Frame_alloc.total t.alloc
let free_count t = Frame_alloc.free_count t.alloc
let used_count t = Hashtbl.length t.meta

let find_victim t ~prefer_not =
  let candidate other_ok =
    Hashtbl.fold
      (fun frame info acc ->
        match acc with
        | Some _ -> acc
        | None -> (
            match (info.owner, info.page_type) with
            | Enclave id, Sgx_types.Pt_reg
              when other_ok || prefer_not <> Some id ->
                Some (frame, info)
            | (Enclave _ | Monitor), _ -> None))
      t.meta None
  in
  match candidate false with Some v -> Some v | None -> candidate true

let used_by t ~enclave_id =
  Hashtbl.fold
    (fun _ info acc ->
      match info.owner with
      | Enclave id when id = enclave_id -> acc + 1
      | Enclave _ | Monitor -> acc)
    t.meta 0
