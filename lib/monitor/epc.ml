open Hyperenclave_hw

type owner = Monitor | Enclave of int

type frame_info = { owner : owner; page_type : Sgx_types.page_type; vpn : int }

type t = {
  alloc : Frame_alloc.t;
  meta : (int, frame_info) Hashtbl.t;
  mutable hand : int;  (** clock-hand cursor, an index into [0, nframes) *)
  ref_bits : Bytes.t;  (** second-chance reference bit per frame index *)
}

exception Epc_exhausted

let create ~base_frame ~nframes =
  {
    alloc = Frame_alloc.create ~base_frame ~nframes;
    meta = Hashtbl.create 1024;
    hand = 0;
    ref_bits = Bytes.make (max 1 nframes) '\000';
  }

let mark_referenced t frame =
  let idx = frame - Frame_alloc.base_frame t.alloc in
  if idx >= 0 && idx < Bytes.length t.ref_bits then Bytes.set t.ref_bits idx '\001'

let alloc t ~owner ~page_type ~vpn =
  let frame =
    try Frame_alloc.alloc t.alloc with Frame_alloc.Out_of_frames -> raise Epc_exhausted
  in
  Hashtbl.replace t.meta frame { owner; page_type; vpn };
  mark_referenced t frame;
  frame

let free t frame =
  Hashtbl.remove t.meta frame;
  Frame_alloc.free t.alloc frame

let free_enclave t ~enclave_id =
  let frames =
    Hashtbl.fold
      (fun frame info acc ->
        match info.owner with
        | Enclave id when id = enclave_id -> frame :: acc
        | Enclave _ | Monitor -> acc)
      t.meta []
  in
  List.iter (free t) frames;
  frames

let info t frame = Hashtbl.find_opt t.meta frame
let owned_by t frame = Option.map (fun i -> i.owner) (info t frame)
let clock_hand t = t.hand
let alloc_hint t = Frame_alloc.hint t.alloc

let referenced t frame =
  let idx = frame - Frame_alloc.base_frame t.alloc in
  idx >= 0 && idx < Bytes.length t.ref_bits && Bytes.get t.ref_bits idx <> '\000'
let in_pool t frame = Frame_alloc.owns t.alloc frame
let base_frame t = Frame_alloc.base_frame t.alloc
let nframes t = Frame_alloc.total t.alloc
let free_count t = Frame_alloc.free_count t.alloc
let used_count t = Hashtbl.length t.meta

(* Clock-hand (second-chance) victim selection.  Hashtbl.fold order is
   insertion order, so the old selector evicted the oldest enclave's pages
   over and over under multi-enclave pressure; the rotating hand spreads
   evictions across the pool.  Each pass relaxes one constraint so the
   monitor never reports exhaustion while any Pt_reg frame exists:
   skip prefer_not + in_use, then skip in_use, then skip prefer_not,
   then any Pt_reg frame. *)
let scan t ~exclude ~in_use ~second_chance =
  let n = Frame_alloc.total t.alloc in
  if n = 0 then None
  else begin
    let base = Frame_alloc.base_frame t.alloc in
    (* With second-chance on, a full first lap may only clear reference
       bits; a second lap is then guaranteed to find any eligible frame. *)
    let budget = if second_chance then 2 * n else n in
    let found = ref None in
    let steps = ref 0 in
    while !found = None && !steps < budget do
      let idx = t.hand in
      t.hand <- (t.hand + 1) mod n;
      incr steps;
      let frame = base + idx in
      match Hashtbl.find_opt t.meta frame with
      | Some ({ owner = Enclave id; page_type = Sgx_types.Pt_reg; _ } as info)
        when exclude <> Some id && not (in_use frame info) ->
          if second_chance && Bytes.get t.ref_bits idx <> '\000' then
            Bytes.set t.ref_bits idx '\000'
          else found := Some (frame, info)
      | Some _ | None -> ()
    done;
    !found
  end

let find_victim ?(in_use = fun _ _ -> false) t ~prefer_not =
  let no_in_use _ _ = false in
  match scan t ~exclude:prefer_not ~in_use ~second_chance:true with
  | Some v -> Some v
  | None -> (
      match scan t ~exclude:None ~in_use ~second_chance:true with
      | Some v -> Some v
      | None -> (
          match scan t ~exclude:prefer_not ~in_use:no_in_use ~second_chance:false with
          | Some v -> Some v
          | None -> scan t ~exclude:None ~in_use:no_in_use ~second_chance:false))

type snapshot = {
  s_alloc : Frame_alloc.snapshot;
  s_meta : (int * frame_info) list;
  s_hand : int;
  s_ref_bits : Bytes.t;
}

let snapshot t =
  {
    s_alloc = Frame_alloc.snapshot t.alloc;
    s_meta = Hashtbl.fold (fun frame info acc -> (frame, info) :: acc) t.meta [];
    s_hand = t.hand;
    s_ref_bits = Bytes.copy t.ref_bits;
  }

let restore t snap =
  Frame_alloc.restore t.alloc snap.s_alloc;
  Hashtbl.reset t.meta;
  List.iter (fun (frame, info) -> Hashtbl.replace t.meta frame info) snap.s_meta;
  t.hand <- snap.s_hand;
  Bytes.blit snap.s_ref_bits 0 t.ref_bits 0 (Bytes.length t.ref_bits)

let used_by t ~enclave_id =
  Hashtbl.fold
    (fun _ info acc ->
      match info.owner with
      | Enclave id when id = enclave_id -> acc + 1
      | Enclave _ | Monitor -> acc)
    t.meta 0
