open Hyperenclave_hw
open Hyperenclave_crypto

type lifecycle = Uninitialized | Initialized | Dead

type stats = {
  mutable ecalls : int;
  mutable ocalls : int;
  mutable aexs : int;
  mutable page_faults : int;
  mutable dyn_pages : int;
  mutable in_enclave_exceptions : int;
}

type exn_handler = Sgx_types.exception_vector -> bool

type interrupt_guard = {
  window_cycles : int;
  threshold : int;
  mutable window_start : int;
  mutable count : int;
  mutable alarms : int;
}

type t = {
  id : int;
  secs : Sgx_types.secs;
  gpt : Page_table.t;
  npt : Page_table.t option;
  mutable lifecycle : lifecycle;
  mutable measurement_ctx : Sha256.ctx option;
  mutable mrenclave : bytes;
  mutable mrsigner : bytes;
  mutable isv_prod_id : int;
  mutable isv_svn : int;
  mutable tcs_list : Sgx_types.tcs list;
  mutable marshalling : (int * int) option;
  mutable handlers : (string * exn_handler) list;
  mutable interrupt_guard : interrupt_guard option;
  mutable entered : bool;
  mutable return_va : int;
  mutable regs : Vcpu.regs;
  stats : stats;
}

let mode t = t.secs.Sgx_types.attributes.Sgx_types.mode

let make ~id ~(secs : Sgx_types.secs) =
  if not (Addr.is_aligned secs.base_va) || not (Addr.is_aligned secs.size) then
    invalid_arg "Enclave.make: ELRANGE must be page aligned";
  let ctx = Sha256.init () in
  Sha256.update ctx (Measure.ecreate_chunk secs);
  let npt =
    match secs.attributes.mode with
    | Sgx_types.GU | Sgx_types.P -> Some (Page_table.create ())
    | Sgx_types.HU -> None
  in
  {
    id;
    secs;
    gpt = Page_table.create ();
    npt;
    lifecycle = Uninitialized;
    measurement_ctx = Some ctx;
    mrenclave = Bytes.empty;
    mrsigner = Bytes.empty;
    isv_prod_id = 0;
    isv_svn = 0;
    tcs_list = [];
    marshalling = None;
    handlers = [];
    interrupt_guard = None;
    entered = false;
    return_va = 0;
    regs = Vcpu.fresh ~entry:secs.base_va;
    stats =
      {
        ecalls = 0;
        ocalls = 0;
        aexs = 0;
        page_faults = 0;
        dyn_pages = 0;
        in_enclave_exceptions = 0;
      };
  }

let in_elrange t ~va =
  va >= t.secs.Sgx_types.base_va && va < t.secs.Sgx_types.base_va + t.secs.Sgx_types.size

let elrange_pages t = t.secs.Sgx_types.size / Addr.page_size

let in_marshalling t ~va ~len =
  match t.marshalling with
  | None -> false
  | Some (base, size) -> len >= 0 && va >= base && va + len <= base + size

let measure_chunk t chunk =
  match t.measurement_ctx with
  | None -> invalid_arg "Enclave.measure_chunk: measurement finalized"
  | Some ctx -> Sha256.update ctx chunk

let finalize_measurement t =
  match t.measurement_ctx with
  | None -> invalid_arg "Enclave.finalize_measurement: already finalized"
  | Some ctx ->
      let digest = Sha256.finalize ctx in
      t.measurement_ctx <- None;
      t.mrenclave <- digest;
      digest

let peek_measurement t =
  match t.measurement_ctx with
  | None -> invalid_arg "Enclave.peek_measurement: measurement finalized"
  | Some ctx -> Sha256.finalize (Sha256.copy ctx)

let commit_measurement t digest =
  t.measurement_ctx <- None;
  t.mrenclave <- digest

let register_handler t ~vector handler =
  t.handlers <- (vector, handler) :: List.remove_assoc vector t.handlers

let find_handler t ~vector = List.assoc_opt vector t.handlers
let free_tcs t = List.find_opt (fun (tcs : Sgx_types.tcs) -> not tcs.busy) t.tcs_list

let find_tcs t ~vpn =
  List.find_opt (fun (tcs : Sgx_types.tcs) -> tcs.tcs_vpn = vpn) t.tcs_list
