(** The model checker's small world: a real monitor on a tiny platform.

    This is not a re-model of the monitor — it instantiates the actual
    {!Hyperenclave_monitor.Monitor} on a deliberately tiny platform
    (default: 2 enclave slots, 8 EPC frames, 1 vCPU, 1 IOMMU device)
    and exposes the {!Alphabet} transitions as guarded, deterministic
    steps over it.  The explorer then enumerates interleavings by DFS,
    backtracking through {!checkpoint}/{!rollback} (monitor snapshot +
    world bookkeeping) plus a copy-on-write frame undo log fed by
    {!Hyperenclave_hw.Phys_mem.set_write_observer}.

    The world also plays the attacker's untrusted half: it owns the
    swap store the monitor seals EWB blobs into, keeps an archive of
    every blob ever stored (the attacker's wiretap), and marks store
    entries it has rolled back or spliced as {e poisoned}.  The
    {!oracle} then demands that a poisoned blob never becomes resident:
    the monitor must refuse it at swap-in with a typed violation. *)

open Hyperenclave_monitor

type config = {
  seed : int64;  (** platform RNG seed (nonce generation etc.) *)
  epc_frames : int;  (** EPC pool size in frames *)
  data_pages : int;  (** static data pages EADDed per enclave (>= 1) *)
  dyn_pages : int;  (** EDMM-committable pages per enclave (0..8) *)
  nssa : int;  (** SSA frames per TCS *)
  modes : Sgx_types.operation_mode array;  (** one slot per element *)
  seed_bug : bool;  (** enable the [Sabotage] transition *)
}

val default_config : config
(** 2 slots (GU + HU), 8 EPC frames, 2 data pages, 2 dynamic pages,
    1 SSA frame, no seeded bug. *)

type t

val create : config -> t
(** Build the platform (memory, MMU, IOMMU, TPM), create and launch the
    monitor, register the world's swap store as its backend, and install
    the write observer for the frame undo log.
    @raise Invalid_argument for out-of-range configs (at most 8 slots,
    slot layout must fit the 16-page ELRANGE). *)

val monitor : t -> Monitor.t
val config : t -> config
val nslots : t -> int

val alphabet : t -> Alphabet.t list
(** The transition alphabet for this config: all legal and attack moves
    over [nslots] slots, plus [Sabotage] iff [seed_bug]. *)

(** {1 Stepping} *)

type outcome =
  | Applied  (** the transition ran to completion *)
  | Refused of string  (** typed [Monitor.Security_violation] *)
  | Crashed of string  (** any other exception — always a finding *)

val enabled : t -> Alphabet.t -> bool
(** Whether the transition's guard holds in the current state.  Guards
    are deliberately weak — they establish preconditions the {e world}
    needs (a slot exists, a TCS was added), never the security checks
    under test; those fire inside the monitor and show up as
    [Refused]. *)

val apply : t -> Alphabet.t -> outcome
(** Run one transition.  Only call when {!enabled}; applying a disabled
    transition may [Crashed] on world bookkeeping rather than exercise
    the monitor. *)

val oracle : t -> string list
(** Everything that must hold in every reachable state: the monitor's
    full isolation audit ({!Invariants.check}) plus the world's
    poisoned-blob check (no rolled-back/spliced swap blob is resident).
    Empty list = state is good.  Call after every [Applied] {e and}
    every [Refused] — a refusal that leaves partial state behind is
    exactly the kind of bug this harness exists to catch. *)

(** {1 Backtracking} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture monitor + world bookkeeping (slots, store, archive,
    poison marks).  Frame {e contents} are not captured here — they are
    restored from the undo log, which only holds frames actually
    written.  Checkpoints must be restored in LIFO order. *)

val rollback : t -> checkpoint -> unit
(** Restore in place; live handles stay valid.  A checkpoint may be
    rolled back to multiple times (once per explored child). *)

val push_frame_log : t -> unit
(** Open a copy-on-write frame log: the first write to any frame saves
    its prior contents.  Logs nest (one per DFS level). *)

val pop_restore_frames : t -> unit
(** Close the innermost log and write every saved frame back. *)

(** {1 Canonical state encoding} *)

val encode : t -> string
(** A canonical, replay-relevant encoding of the current state, used as
    the DFS visited-set key.  Includes: per-slot lifecycle/build
    progress, TCS flags, guest and nested page-table entries, EPC
    metadata with clock hand, allocation hint and reference bits, the
    swapped-out set, poison marks, and whether a rollback candidate
    exists in the blob archive.  Excludes observational state two equal
    states may differ in (cycle counts, telemetry, raw enclave ids,
    RNG position, accessed/dirty bits, blob ciphertexts).  Two states
    with equal encodings are bisimilar under the alphabet — same guards
    enabled, same outcomes — so deduplicating on it is sound. *)
