(** The bounded transition alphabet the model checker explores.

    Each constructor is one atomic step the small-state world can take:
    a legal hypercall on a numbered enclave slot, an asynchronous event
    (AEX, EPC eviction), or an attacker move from the paper's threat
    model (Fig. 9 mapping attacks, forged EINIT, swap-blob replay and
    splicing).  Attacker moves carry an expectation: the monitor must
    refuse them with a typed {!Hyperenclave_monitor.Monitor.Security_violation}
    while every invariant stays green — an attack that [Applied]s is a
    counterexample by definition. *)

type slot = int
(** Index into the world's fixed array of enclave slots (0-based). *)

type t =
  (* Legal lifecycle + data-path transitions, one slot each. *)
  | Create of slot  (** ECREATE: SECS + empty enclave in slot *)
  | Add of slot  (** EADD the next data page *)
  | Add_tcs of slot  (** EADD SSA page(s) then EADD_TCS *)
  | Init of slot  (** EINIT with a correctly signed SIGSTRUCT *)
  | Enter of slot  (** EENTER through the slot's TCS *)
  | Exit of slot  (** EEXIT to the recorded return address *)
  | Aex of slot  (** asynchronous exit: spill to SSA, leave *)
  | Resume of slot  (** ERESUME: reload the spilled frame *)
  | Touch of slot  (** in-enclave read of data page 0 (drives ELDU) *)
  | Grow of slot  (** EDMM EAUG-style dynamic page commit/write *)
  | Shrink of slot  (** EDMM EREMOVE of the last dynamic page *)
  | Restrict of slot  (** EMODPR data page 0 to read-only *)
  | Relax of slot  (** EMODPE data page 0 back to read-write *)
  | Remove of slot  (** EREMOVE the whole enclave *)
  (* Global environment transitions. *)
  | Swap_out  (** monitor evicts one EPC page (EWB analogue) *)
  (* Attacker moves: malicious kmod / untrusted OS.  All must be refused. *)
  | Atk_double_add of slot  (** EADD onto an already-mapped page (Fig. 9a) *)
  | Atk_add_outside of slot  (** EADD outside ELRANGE *)
  | Atk_bad_sig of slot  (** EINIT with a garbage signature *)
  | Atk_forged_measure of slot  (** EINIT, valid signature, wrong MRENCLAVE *)
  | Atk_ms_reserved of slot  (** marshalling buffer aimed at reserved memory *)
  | Atk_ms_overlap of slot  (** marshalling buffer overlapping ELRANGE *)
  | Atk_enter_uninit of slot  (** EENTER before EINIT *)
  | Atk_busy_enter of slot  (** EENTER a TCS left busy by an AEX *)
  | Atk_wrong_exit of slot  (** EEXIT to a non-sanctioned address *)
  | Atk_remove_running of slot  (** EREMOVE while a thread is inside *)
  (* Attacker moves against the untrusted swap store.  These mutate the
     store silently (they [Applied]); the refusal is demanded later, at
     swap-in, and a stale page ever becoming resident is a violation. *)
  | Atk_swap_replay  (** put an old (rolled-back) blob back in the store *)
  | Atk_swap_splice  (** serve one enclave's blob to another's slot *)
  (* Deliberate monitor corruption, enabled only by [seed_bug] configs,
     used to prove the checker actually finds and minimizes violations. *)
  | Sabotage  (** map a monitor-private frame into a guest page table *)

val is_attack : t -> bool
(** Attacker moves, including the swap-store corruptions and [Sabotage]. *)

val expects_refusal : t -> bool
(** Attacks the monitor must refuse {e at this step} with a typed
    [Security_violation].  [Atk_swap_replay]/[Atk_swap_splice] corrupt
    state the monitor cannot see yet, so they are expected to apply
    silently — their refusal is checked at swap-in time by the world's
    poisoned-blob oracle.  [Sabotage] likewise applies (it models a
    monitor bug, not a request). *)

val all : nslots:int -> with_sabotage:bool -> t list
(** The full alphabet over [nslots] slots, in a fixed deterministic
    order (legal moves first, then attacks). *)

val to_string : t -> string
(** Canonical printable name, e.g. ["eadd[1]"], ["atk_swap_replay"].
    Stable: traces printed by the explorer replay via {!of_string}. *)

val of_string : string -> t option
(** Inverse of {!to_string} (for slots 0–7). *)

val pp : Format.formatter -> t -> unit
