open Hyperenclave_hw
open Hyperenclave_crypto
open Hyperenclave_monitor

type config = {
  seed : int64;
  epc_frames : int;
  data_pages : int;
  dyn_pages : int;
  nssa : int;
  modes : Sgx_types.operation_mode array;
  seed_bug : bool;
}

let default_config =
  {
    seed = 7L;
    epc_frames = 8;
    data_pages = 2;
    dyn_pages = 2;
    nssa = 1;
    modes = [| Sgx_types.GU; Sgx_types.HU |];
    seed_bug = false;
  }

type slot_state = {
  enclave : Enclave.t;
  mutable shadow : Measure.page list;  (* reverse EADD order *)
  mutable data_added : int;
  mutable tcs_added : bool;
}

type t = {
  cfg : config;
  monitor : Monitor.t;
  mem : Phys_mem.t;
  vendor : Signature.private_key;
  slots : slot_state option array;
  store : (string, bytes) Hashtbl.t;
  archive : (string, bytes list) Hashtbl.t;  (* every blob ever stored *)
  poisoned : (int * int, unit) Hashtbl.t;  (* (enclave id, vpn) *)
  mutable undo : (int, bytes) Hashtbl.t list;  (* frame -> prior contents *)
  mutable tracking : bool;
  (* The legit SIGSTRUCT for a slot depends on the EADD *order*, not
     just on how many pages went in (Add and Add_tcs interleave), so
     the memo key is the ordered vpn list; each vpn's content and perms
     are fixed by the slot layout.  einit-family transitions fire at
     every under-construction state the DFS visits, so memoizing the
     measurement + signature (both SHA-256-heavy) is the difference
     between crypto dominating exploration and not. *)
  sig_cache : (int * int list, Sgx_types.sigstruct) Hashtbl.t;
  forged_cache : Sgx_types.sigstruct option array;
}

(* --- geometry ----------------------------------------------------------- *)

(* OS low memory, then the reserved region: monitor-private frames
   followed by the EPC pool.  Slot i's 16-page ELRANGE starts at virtual
   page 0x100 + i*0x20: data pages first, then one TCS, then the SSA
   frames, with dynamically committed (EDMM) pages from offset 8 up.
   Each slot also gets a one-page marshalling buffer in OS memory, well
   outside every ELRANGE. *)
let os_frames = 32
let monitor_private = 4
let elrange_pages = 16
let base_vpn i = 0x100 + (i * 0x20)
let data_vpn i k = base_vpn i + k
let tcs_vpn cfg i = base_vpn i + cfg.data_pages
let ssa_vpn cfg i = tcs_vpn cfg i + 1
let dyn_vpn i k = base_vpn i + 8 + k
let ms_vpn i = 0x800 + i
let ms_frame i = 8 + i
let ms_va i = Addr.base_of_page (ms_vpn i)
let entry_va i = Addr.base_of_page (base_vpn i)
let return_va = 0xdead000
let ro = { Page_table.write = false; exec = false; user = true }

let secs_of w i =
  {
    Sgx_types.base_va = Addr.base_of_page (base_vpn i);
    size = elrange_pages * Addr.page_size;
    attributes =
      { Sgx_types.debug = false; mode = w.cfg.modes.(i); xfrm = 3 };
    ssa_frame_pages = 1;
  }

(* --- construction ------------------------------------------------------- *)

let create cfg =
  let nslots = Array.length cfg.modes in
  if nslots < 1 || nslots > 8 then
    invalid_arg "Mc.World.create: need 1..8 slots";
  if cfg.data_pages < 1 || cfg.data_pages + 1 + cfg.nssa > 8 then
    invalid_arg "Mc.World.create: static layout must fit pages 0..7";
  if cfg.dyn_pages < 0 || cfg.dyn_pages > 8 then
    invalid_arg "Mc.World.create: dyn_pages must be 0..8";
  if cfg.epc_frames < 2 then invalid_arg "Mc.World.create: epc_frames < 2";
  let clock = Cycles.create () in
  let cost = Cost_model.default in
  let rng = Rng.create ~seed:cfg.seed in
  let total_frames = os_frames + monitor_private + cfg.epc_frames in
  let mem = Phys_mem.create ~size_bytes:(total_frames * Addr.page_size) in
  let iommu = Iommu.create () in
  Iommu.attach iommu ~device:"mc-nic";
  Iommu.grant iommu ~device:"mc-nic" ~first_frame:0 ~nframes:total_frames;
  let boot_gpt = Page_table.create () in
  let cpu = Mmu.create ~clock ~cost ~rng:(Rng.split rng) ~gpt:boot_gpt () in
  let tpm = Hyperenclave_tpm.Tpm.manufacture ~clock ~cost ~rng:(Rng.split rng) in
  Hyperenclave_tpm.Tpm.startup tpm;
  let monitor =
    Monitor.create ~clock ~cost ~rng:(Rng.split rng) ~mem ~cpu ~iommu ~tpm
      {
        Monitor.reserved_base_frame = os_frames;
        reserved_nframes = monitor_private + cfg.epc_frames;
        monitor_private_frames = monitor_private;
      }
  in
  (match Monitor.launch monitor ~boot_log:[] ~sealed_root_key:None with
  | `First_boot _ | `Resumed -> ());
  let vendor, _ =
    Signature.generate (Rng.create ~seed:(Int64.add cfg.seed 101L))
  in
  let store = Hashtbl.create 16 in
  let archive = Hashtbl.create 16 in
  let poisoned = Hashtbl.create 8 in
  let parse_key k = Scanf.sscanf k "heswap:%d:%x" (fun id vpn -> (id, vpn)) in
  Monitor.set_swap_backend monitor
    ~store:(fun key blob ->
      Hashtbl.replace store key (Bytes.copy blob);
      let prior = Option.value ~default:[] (Hashtbl.find_opt archive key) in
      Hashtbl.replace archive key (Bytes.copy blob :: prior);
      (* A fresh blob supersedes whatever staleness we had injected. *)
      match parse_key key with
      | pair -> Hashtbl.remove poisoned pair
      | exception _ -> ())
    ~load:(fun key -> Option.map Bytes.copy (Hashtbl.find_opt store key))
    ~delete:(fun key -> Hashtbl.remove store key);
  let w =
    {
      cfg;
      monitor;
      mem;
      vendor;
      slots = Array.make nslots None;
      store;
      archive;
      poisoned;
      undo = [];
      tracking = true;
      sig_cache = Hashtbl.create 32;
      forged_cache = Array.make nslots None;
    }
  in
  Phys_mem.set_write_observer mem
    (Some
       (fun frame ->
         if w.tracking then
           match w.undo with
           | log :: _ when not (Hashtbl.mem log frame) ->
               Hashtbl.add log frame (Phys_mem.read_page mem ~frame)
           | _ -> ()));
  w

let monitor w = w.monitor
let config w = w.cfg
let nslots w = Array.length w.slots

let alphabet w =
  Alphabet.all ~nslots:(nslots w) ~with_sabotage:w.cfg.seed_bug

let parse_key k = Scanf.sscanf k "heswap:%d:%x" (fun id vpn -> (id, vpn))

let slot_of_id w id =
  let rec go i =
    if i >= Array.length w.slots then None
    else
      match w.slots.(i) with
      | Some st when st.enclave.Enclave.id = id -> Some i
      | _ -> go (i + 1)
  in
  go 0

(* --- guards ------------------------------------------------------------- *)

let slot w i = if i >= 0 && i < Array.length w.slots then w.slots.(i) else None

let req w i =
  match slot w i with
  | Some st -> st
  | None -> invalid_arg "Mc.World: transition on an empty slot"

let is_uninit st = st.enclave.Enclave.lifecycle = Enclave.Uninitialized
let is_init st = st.enclave.Enclave.lifecycle = Enclave.Initialized
let the_tcs st =
  match st.enclave.Enclave.tcs_list with tcs :: _ -> Some tcs | [] -> None

let idle w = Monitor.current w.monitor = None

let is_current w i =
  match (Monitor.current w.monitor, slot w i) with
  | Some e, Some st -> e.Enclave.id = st.enclave.Enclave.id
  | _ -> false

let mapped st vpn =
  Option.is_some (Page_table.lookup st.enclave.Enclave.gpt ~vpn)

(* First uncommitted dynamic page, else page 0 (plain write / swap-in). *)
let grow_target w i st =
  let rec go k =
    if k >= w.cfg.dyn_pages then 0
    else if not (mapped st (dyn_vpn i k)) then k
    else go (k + 1)
  in
  go 0

let last_committed_dyn w i st =
  let rec go k best =
    if k >= w.cfg.dyn_pages then best
    else go (k + 1) (if mapped st (dyn_vpn i k) then Some k else best)
  in
  go 0 None

let evictable w =
  let epc = Monitor.epc w.monitor in
  let base = Epc.base_frame epc and n = Epc.nframes epc in
  let rec go f =
    f < base + n
    &&
    match Epc.info epc f with
    | Some { Epc.page_type = Sgx_types.Pt_reg; owner = Epc.Enclave _; _ } ->
        true
    | _ -> go (f + 1)
  in
  go base

let sorted_store_keys w =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) w.store [])

(* A store entry for which the archive holds a different (older) blob:
   the attacker can roll that slot back. *)
let replay_candidate w =
  List.find_map
    (fun k ->
      let cur = Hashtbl.find w.store k in
      match Hashtbl.find_opt w.archive k with
      | None -> None
      | Some blobs -> (
          match List.find_opt (fun b -> not (Bytes.equal b cur)) blobs with
          | Some stale -> Some (k, stale)
          | None -> None))
    (sorted_store_keys w)

let splice_candidate w =
  match sorted_store_keys w with
  | k1 :: k2 :: _ -> Some (k1, k2)
  | _ -> None

let enabled w tr =
  let uninit i = match slot w i with Some st -> is_uninit st | None -> false in
  let init i = match slot w i with Some st -> is_init st | None -> false in
  match tr with
  | Alphabet.Create i -> i < nslots w && slot w i = None
  | Alphabet.Add i -> (
      match slot w i with
      | Some st -> is_uninit st && st.data_added < w.cfg.data_pages
      | None -> false)
  | Alphabet.Add_tcs i -> (
      match slot w i with
      | Some st -> is_uninit st && not st.tcs_added
      | None -> false)
  | Alphabet.Init i -> (
      match slot w i with
      | Some st -> is_uninit st && st.tcs_added
      | None -> false)
  | Alphabet.Enter i -> (
      init i && idle w
      &&
      match the_tcs (req w i) with
      | Some tcs -> not tcs.Sgx_types.busy
      | None -> false)
  | Alphabet.Exit i -> is_current w i
  | Alphabet.Aex i -> (
      is_current w i
      &&
      match the_tcs (req w i) with
      | Some tcs -> tcs.Sgx_types.current_ssa < tcs.Sgx_types.nssa
      | None -> false)
  | Alphabet.Resume i -> (
      init i && idle w
      &&
      match the_tcs (req w i) with
      | Some tcs -> tcs.Sgx_types.current_ssa > 0
      | None -> false)
  | Alphabet.Touch i -> is_current w i
  | Alphabet.Grow i -> is_current w i && w.cfg.dyn_pages > 0
  | Alphabet.Shrink i -> (
      match slot w i with
      | Some st -> is_init st && last_committed_dyn w i st <> None
      | None -> false)
  | Alphabet.Restrict i | Alphabet.Relax i -> (
      match slot w i with
      | Some st -> is_init st && mapped st (data_vpn i 0)
      | None -> false)
  | Alphabet.Remove i -> (
      match slot w i with
      | Some st -> not st.enclave.Enclave.entered
      | None -> false)
  | Alphabet.Swap_out -> evictable w
  | Alphabet.Atk_double_add i -> (
      match slot w i with
      | Some st ->
          is_uninit st && st.data_added >= 1 && mapped st (data_vpn i 0)
      | None -> false)
  | Alphabet.Atk_add_outside i -> uninit i
  | Alphabet.Atk_bad_sig i -> uninit i
  | Alphabet.Atk_forged_measure i | Alphabet.Atk_ms_reserved i
  | Alphabet.Atk_ms_overlap i -> (
      match slot w i with
      | Some st -> is_uninit st && st.tcs_added
      | None -> false)
  | Alphabet.Atk_enter_uninit i -> (
      idle w
      &&
      match slot w i with
      | Some st -> is_uninit st && st.tcs_added
      | None -> false)
  | Alphabet.Atk_busy_enter i -> (
      init i && idle w
      &&
      match the_tcs (req w i) with
      | Some tcs -> tcs.Sgx_types.busy
      | None -> false)
  | Alphabet.Atk_wrong_exit i -> is_current w i
  | Alphabet.Atk_remove_running i -> is_current w i
  | Alphabet.Atk_swap_replay -> Option.is_some (replay_candidate w)
  | Alphabet.Atk_swap_splice -> Option.is_some (splice_candidate w)
  | Alphabet.Sabotage -> w.cfg.seed_bug && slot w 0 <> None

(* --- stepping ----------------------------------------------------------- *)

type outcome = Applied | Refused of string | Crashed of string

let legit_sigstruct w i st =
  let key = (i, List.rev_map (fun p -> p.Measure.vpn) st.shadow) in
  match Hashtbl.find_opt w.sig_cache key with
  | Some s -> s
  | None ->
      let mrenclave = Measure.expected (secs_of w i) (List.rev st.shadow) in
      let s =
        Sgx_types.make_sigstruct ~vendor:w.vendor ~enclave_hash:mrenclave
          ~isv_prod_id:1 ~isv_svn:1
      in
      Hashtbl.replace w.sig_cache key s;
      s

let forged_sigstruct w i =
  match w.forged_cache.(i) with
  | Some s -> s
  | None ->
      let s =
        Sgx_types.make_sigstruct ~vendor:w.vendor
          ~enclave_hash:(Bytes.make 32 '\xee') ~isv_prod_id:1 ~isv_svn:1
      in
      w.forged_cache.(i) <- Some s;
      s

let good_marshalling i = (ms_va i, Addr.page_size, [ (ms_vpn i, ms_frame i) ])

let poison w key =
  match parse_key key with
  | pair -> Hashtbl.replace w.poisoned pair ()
  | exception _ -> ()

let run w tr =
  let m = w.monitor in
  match tr with
  | Alphabet.Create i ->
      let enclave = Monitor.ecreate m (secs_of w i) in
      w.slots.(i) <-
        Some { enclave; shadow = []; data_added = 0; tcs_added = false }
  | Alphabet.Add i ->
      let st = req w i in
      let k = st.data_added in
      let vpn = data_vpn i k in
      let content = Bytes.of_string (Printf.sprintf "mc:s%d:d%d" i k) in
      Monitor.eadd m st.enclave ~vpn ~content ~perms:Page_table.rw
        ~page_type:Sgx_types.Pt_reg;
      st.shadow <-
        { Measure.vpn; perms = Page_table.rw; page_type = Sgx_types.Pt_reg;
          content }
        :: st.shadow;
      st.data_added <- k + 1
  | Alphabet.Add_tcs i ->
      let st = req w i in
      let ossa = ssa_vpn w.cfg i in
      for k = 0 to w.cfg.nssa - 1 do
        let vpn = ossa + k in
        Monitor.eadd m st.enclave ~vpn ~content:Bytes.empty
          ~perms:Page_table.rw ~page_type:Sgx_types.Pt_ssa;
        st.shadow <-
          { Measure.vpn; perms = Page_table.rw;
            page_type = Sgx_types.Pt_ssa; content = Bytes.empty }
          :: st.shadow
      done;
      let tvpn = tcs_vpn w.cfg i in
      Monitor.eadd_tcs m st.enclave ~vpn:tvpn ~entry_va:(entry_va i)
        ~nssa:w.cfg.nssa ~ssa_base_vpn:ossa;
      st.shadow <-
        {
          Measure.vpn = tvpn;
          perms = Page_table.rw;
          page_type = Sgx_types.Pt_tcs;
          content =
            Bytes.of_string
              (Printf.sprintf "tcs:%x:%d:%x" (entry_va i) w.cfg.nssa ossa);
        }
        :: st.shadow;
      st.tcs_added <- true
  | Alphabet.Init i ->
      let st = req w i in
      Monitor.einit m st.enclave ~sigstruct:(legit_sigstruct w i st)
        ~marshalling:(good_marshalling i)
  | Alphabet.Enter i ->
      let st = req w i in
      let tcs = Option.get (the_tcs st) in
      Monitor.eenter m st.enclave ~tcs ~return_va
  | Alphabet.Exit i -> Monitor.eexit m (req w i).enclave ~target_va:return_va
  | Alphabet.Aex i -> Monitor.aex m (req w i).enclave
  | Alphabet.Resume i ->
      let st = req w i in
      Monitor.eresume m st.enclave ~tcs:(Option.get (the_tcs st))
  | Alphabet.Touch i ->
      ignore (Monitor.enclave_read m (req w i).enclave ~va:(entry_va i) ~len:8)
  | Alphabet.Grow i ->
      let st = req w i in
      let k = grow_target w i st in
      Monitor.enclave_write m st.enclave
        ~va:(Addr.base_of_page (dyn_vpn i k))
        (Bytes.of_string "mc:grow")
  | Alphabet.Shrink i ->
      let st = req w i in
      let k = Option.get (last_committed_dyn w i st) in
      Monitor.eremove_page m st.enclave ~vpn:(dyn_vpn i k)
  | Alphabet.Restrict i ->
      Monitor.emodpr m (req w i).enclave ~vpn:(data_vpn i 0) ~perms:ro
  | Alphabet.Relax i ->
      Monitor.emodpe m (req w i).enclave ~vpn:(data_vpn i 0)
        ~perms:Page_table.rw
  | Alphabet.Remove i ->
      Monitor.eremove m (req w i).enclave;
      w.slots.(i) <- None
  | Alphabet.Swap_out -> Monitor.swap_out_one m
  | Alphabet.Atk_double_add i ->
      Monitor.eadd m (req w i).enclave ~vpn:(data_vpn i 0)
        ~content:(Bytes.of_string "evil") ~perms:Page_table.rw
        ~page_type:Sgx_types.Pt_reg
  | Alphabet.Atk_add_outside i ->
      Monitor.eadd m (req w i).enclave
        ~vpn:(base_vpn i - 1)
        ~content:(Bytes.of_string "evil") ~perms:Page_table.rw
        ~page_type:Sgx_types.Pt_reg
  | Alphabet.Atk_bad_sig i ->
      let st = req w i in
      let good = legit_sigstruct w i st in
      let forged = { good with Sgx_types.signature = Bytes.make 32 'Z' } in
      Monitor.einit m st.enclave ~sigstruct:forged
        ~marshalling:(good_marshalling i)
  | Alphabet.Atk_forged_measure i ->
      let st = req w i in
      Monitor.einit m st.enclave ~sigstruct:(forged_sigstruct w i)
        ~marshalling:(good_marshalling i)
  | Alphabet.Atk_ms_reserved i ->
      let st = req w i in
      let epc_frame = Epc.base_frame (Monitor.epc m) in
      Monitor.einit m st.enclave ~sigstruct:(legit_sigstruct w i st)
        ~marshalling:(ms_va i, Addr.page_size, [ (ms_vpn i, epc_frame) ])
  | Alphabet.Atk_ms_overlap i ->
      let st = req w i in
      Monitor.einit m st.enclave ~sigstruct:(legit_sigstruct w i st)
        ~marshalling:(entry_va i, Addr.page_size, [ (base_vpn i, ms_frame i) ])
  | Alphabet.Atk_enter_uninit i ->
      let st = req w i in
      Monitor.eenter m st.enclave ~tcs:(Option.get (the_tcs st)) ~return_va
  | Alphabet.Atk_busy_enter i ->
      let st = req w i in
      Monitor.eenter m st.enclave ~tcs:(Option.get (the_tcs st)) ~return_va
  | Alphabet.Atk_wrong_exit i ->
      Monitor.eexit m (req w i).enclave ~target_va:(return_va + 0x10)
  | Alphabet.Atk_remove_running i -> Monitor.eremove m (req w i).enclave
  | Alphabet.Atk_swap_replay -> (
      match replay_candidate w with
      | Some (key, stale) ->
          Hashtbl.replace w.store key (Bytes.copy stale);
          poison w key
      | None -> invalid_arg "atk_swap_replay: no rollback candidate")
  | Alphabet.Atk_swap_splice -> (
      match splice_candidate w with
      | Some (k1, k2) ->
          Hashtbl.replace w.store k2 (Bytes.copy (Hashtbl.find w.store k1));
          poison w k2
      | None -> invalid_arg "atk_swap_splice: need two swapped pages")
  | Alphabet.Sabotage ->
      (* A buggy monitor maps one of its private frames into a guest
         table — exactly the class of bug the audit must catch. *)
      let st = req w 0 in
      Page_table.map st.enclave.Enclave.gpt
        ~vpn:(base_vpn 0 + elrange_pages - 1)
        ~frame:os_frames ~perms:Page_table.rw

let apply w tr =
  match run w tr with
  | () -> Applied
  | exception Monitor.Security_violation msg -> Refused msg
  | exception exn -> Crashed (Printexc.to_string exn)

(* --- oracle ------------------------------------------------------------- *)

let oracle w =
  let inv =
    Invariants.check w.monitor
    |> List.map (fun f -> Format.asprintf "%a" Invariants.pp_finding f)
  in
  (* Drop poison marks whose enclave is gone (EREMOVE purges blobs). *)
  let dead =
    Hashtbl.fold
      (fun (id, vpn) () acc ->
        if slot_of_id w id = None then (id, vpn) :: acc else acc)
      w.poisoned []
  in
  List.iter (Hashtbl.remove w.poisoned) dead;
  let stale =
    Hashtbl.fold
      (fun (id, vpn) () acc ->
        match slot_of_id w id with
        | None -> acc
        | Some i ->
            let st = req w i in
            if mapped st vpn then
              Printf.sprintf
                "stale swap blob accepted: enclave %d page 0x%x is resident"
                id vpn
              :: acc
            else acc)
      w.poisoned []
  in
  inv @ stale

(* --- backtracking ------------------------------------------------------- *)

type slot_ck = {
  sck : slot_state;
  sck_shadow : Measure.page list;
  sck_data : int;
  sck_tcs : bool;
}

type checkpoint = {
  ck_mon : Monitor.snapshot;
  ck_slots : slot_ck option array;
  ck_store : (string * bytes) list;
  ck_archive : (string * bytes list) list;
  ck_poisoned : (int * int) list;
}

let checkpoint w =
  {
    ck_mon = Monitor.snapshot w.monitor;
    ck_slots =
      Array.map
        (Option.map (fun st ->
             {
               sck = st;
               sck_shadow = st.shadow;
               sck_data = st.data_added;
               sck_tcs = st.tcs_added;
             }))
        w.slots;
    (* Blob values are never mutated in place (stores copy), so sharing
       them between checkpoint and table is safe. *)
    ck_store = Hashtbl.fold (fun k v acc -> (k, v) :: acc) w.store [];
    ck_archive = Hashtbl.fold (fun k v acc -> (k, v) :: acc) w.archive [];
    ck_poisoned = Hashtbl.fold (fun p () acc -> p :: acc) w.poisoned [];
  }

let rollback w ck =
  Monitor.restore w.monitor ck.ck_mon;
  Array.iteri
    (fun i sck ->
      match sck with
      | None -> w.slots.(i) <- None
      | Some { sck; sck_shadow; sck_data; sck_tcs } ->
          sck.shadow <- sck_shadow;
          sck.data_added <- sck_data;
          sck.tcs_added <- sck_tcs;
          w.slots.(i) <- Some sck)
    ck.ck_slots;
  Hashtbl.reset w.store;
  List.iter (fun (k, v) -> Hashtbl.replace w.store k v) ck.ck_store;
  Hashtbl.reset w.archive;
  List.iter (fun (k, v) -> Hashtbl.replace w.archive k v) ck.ck_archive;
  Hashtbl.reset w.poisoned;
  List.iter (fun p -> Hashtbl.replace w.poisoned p ()) ck.ck_poisoned

let push_frame_log w = w.undo <- Hashtbl.create 8 :: w.undo

let pop_restore_frames w =
  match w.undo with
  | [] -> invalid_arg "Mc.World.pop_restore_frames: no log pushed"
  | log :: rest ->
      w.undo <- rest;
      w.tracking <- false;
      Hashtbl.iter
        (fun frame page -> Phys_mem.write_page w.mem ~frame page)
        log;
      w.tracking <- true

(* --- canonical encoding ------------------------------------------------- *)

let lifecycle_char = function
  | Enclave.Uninitialized -> 'U'
  | Enclave.Initialized -> 'I'
  | Enclave.Dead -> 'D'

let ptype_char = function
  | Sgx_types.Pt_secs -> 'S'
  | Sgx_types.Pt_tcs -> 'T'
  | Sgx_types.Pt_reg -> 'R'
  | Sgx_types.Pt_ssa -> 'A'

let encode w =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let add_pt label pt =
    add "%s" label;
    Page_table.iter pt (fun ~vpn entry ->
        let p = entry.Page_table.perms in
        add "%x>%x%c%c%c," vpn entry.Page_table.frame
          (if p.Page_table.write then 'w' else '-')
          (if p.Page_table.exec then 'x' else '-')
          (if p.Page_table.user then 'u' else '-'));
    Buffer.add_char b ';'
  in
  (match Monitor.current w.monitor with
  | None -> add "c:-;"
  | Some e ->
      add "c:%d;" (Option.value ~default:(-1) (slot_of_id w e.Enclave.id)));
  Array.iteri
    (fun i sopt ->
      match sopt with
      | None -> add "s%d:-;" i
      | Some st ->
          let e = st.enclave in
          add "s%d:%c,d%d,t%b,m%b,e%b;" i
            (lifecycle_char e.Enclave.lifecycle)
            st.data_added st.tcs_added
            (e.Enclave.marshalling <> None)
            e.Enclave.entered;
          List.iter
            (fun (tcs : Sgx_types.tcs) ->
              add "T%x,%b,%d;" tcs.Sgx_types.tcs_vpn tcs.Sgx_types.busy
                tcs.Sgx_types.current_ssa)
            e.Enclave.tcs_list;
          add_pt "G" e.Enclave.gpt;
          (match e.Enclave.npt with
          | None -> add "N-;"
          | Some npt -> add_pt "N" npt))
    w.slots;
  let epc = Monitor.epc w.monitor in
  add "E:h%d,a%d;" (Epc.clock_hand epc) (Epc.alloc_hint epc);
  let base = Epc.base_frame epc in
  for f = base to base + Epc.nframes epc - 1 do
    (match Epc.info epc f with
    | None -> add "f-"
    | Some { Epc.owner; page_type; vpn } ->
        let o =
          match owner with
          | Epc.Monitor -> -1
          | Epc.Enclave id -> Option.value ~default:(-2) (slot_of_id w id)
        in
        add "f%d%c%x" o (ptype_char page_type) vpn);
    add "%c;" (if Epc.referenced epc f then '*' else '.')
  done;
  let swapped =
    Hashtbl.fold
      (fun k _ acc ->
        match parse_key k with
        | id, vpn -> (
            match slot_of_id w id with
            | Some i -> (i, vpn) :: acc
            | None -> acc)
        | exception _ -> acc)
      w.store []
    |> List.sort compare
  in
  List.iter (fun (i, vpn) -> add "w%d,%x;" i vpn) swapped;
  let poisons =
    Hashtbl.fold
      (fun (id, vpn) () acc ->
        match slot_of_id w id with
        | Some i -> (i, vpn) :: acc
        | None -> acc)
      w.poisoned []
    |> List.sort compare
  in
  List.iter (fun (i, vpn) -> add "p%d,%x;" i vpn) poisons;
  add "r%b" (Option.is_some (replay_candidate w));
  Buffer.contents b
