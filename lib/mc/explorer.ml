module Telemetry = Hyperenclave_obs.Telemetry

type stats = {
  mutable states : int;
  mutable transitions : int;
  mutable dedup_hits : int;
  mutable refusals : int;
  mutable attacks_refused : int;
  mutable max_depth : int;
  mutable complete : bool;
}

type violation_kind =
  | Oracle_failed of string
  | Attack_accepted
  | Crash of string

type violation = { trace : Alphabet.t list; kind : violation_kind }
type result = { stats : stats; violation : violation option }

exception Found of violation

type stepped = Step_refused | Step_applied | Step_violation of violation

(* One transition on a live world, with the full post-state check.
   Shared by the explorer and replay so a counterexample means the same
   thing in both.  The oracle runs after refusals too: a refusal that
   leaves partial state behind is precisely the kind of bug (e.g. a
   half-installed marshalling buffer) this harness exists to catch. *)
let step w tr path =
  let fail kind = Step_violation { trace = List.rev path; kind } in
  let audit applied =
    match World.oracle w with
    | [] -> if applied then Step_applied else Step_refused
    | findings -> fail (Oracle_failed (String.concat "; " findings))
  in
  match World.apply w tr with
  | World.Crashed msg -> fail (Crash msg)
  | World.Refused _ -> audit false
  | World.Applied when Alphabet.expects_refusal tr -> fail Attack_accepted
  | World.Applied -> audit true

let replay cfg trace =
  let w = World.create cfg in
  let rec go acc = function
    | [] -> None
    | tr :: rest ->
        if not (World.enabled w tr) then None
        else
          let acc = tr :: acc in
          (match step w tr acc with
          | Step_violation v -> Some v.kind
          | Step_refused | Step_applied -> go acc rest)
  in
  match World.oracle w with
  | findings when findings <> [] ->
      (* A world broken at birth would make every candidate "fail". *)
      Some (Oracle_failed (String.concat "; " findings))
  | _ -> go [] trace

let minimize cfg trace =
  Trace.minimize ~replay:(fun cand -> replay cfg cand <> None) trace

let to_trace trs =
  List.map (fun tr -> Trace.step (Alphabet.to_string tr)) trs

let pp_kind fmt = function
  | Oracle_failed msg -> Format.fprintf fmt "oracle failed: %s" msg
  | Attack_accepted ->
      Format.pp_print_string fmt "attack applied without a typed refusal"
  | Crash msg -> Format.fprintf fmt "untyped exception: %s" msg

let pp_violation fmt v =
  Format.fprintf fmt "%a@.minimized trace (%d steps):@.%a" pp_kind v.kind
    (List.length v.trace) Trace.pp (to_trace v.trace)

let pp_stats fmt s =
  Format.fprintf fmt
    "%d states, %d transitions, %d dedup hits, %d refusals (%d of attacks), \
     depth <= %d%s"
    s.states s.transitions s.dedup_hits s.refusals s.attacks_refused
    s.max_depth
    (if s.complete then "" else " (state cap hit)")

let run ?(depth = 8) ?(max_states = max_int) ?telemetry cfg =
  let w = World.create cfg in
  let stats =
    {
      states = 0;
      transitions = 0;
      dedup_hits = 0;
      refusals = 0;
      attacks_refused = 0;
      max_depth = 0;
      complete = true;
    }
  in
  let alphabet = World.alphabet w in
  (* Visited set keyed on the exact canonical encoding — no truncated
     hashing, so no unsound merges — remembering the shallowest depth
     each state was reached at.  A state met again at equal-or-greater
     depth is cut; met again shallower it is re-expanded, because its
     subtree now has more headroom under the depth bound. *)
  let visited : (string, int) Hashtbl.t = Hashtbl.create 4096 in
  let rec explore path d =
    if d < depth then begin
      let ck = World.checkpoint w in
      List.iter
        (fun tr ->
          if World.enabled w tr then begin
            stats.transitions <- stats.transitions + 1;
            World.push_frame_log w;
            let path' = tr :: path in
            let finish () =
              World.pop_restore_frames w;
              World.rollback w ck
            in
            let fail kind =
              finish ();
              raise (Found { trace = List.rev path'; kind })
            in
            (* Inlined variant of [step]: the oracle only runs on states
               not yet in the visited set — an equal canonical encoding
               means the audit already passed on the first visit. *)
            (match World.apply w tr with
            | World.Crashed msg -> fail (Crash msg)
            | World.Refused _ -> (
                match World.oracle w with
                | [] ->
                    stats.refusals <- stats.refusals + 1;
                    if Alphabet.is_attack tr then
                      stats.attacks_refused <- stats.attacks_refused + 1
                | findings ->
                    fail (Oracle_failed (String.concat "; " findings)))
            | World.Applied when Alphabet.expects_refusal tr ->
                fail Attack_accepted
            | World.Applied -> (
                let key = World.encode w in
                match Hashtbl.find_opt visited key with
                | Some d0 when d0 <= d + 1 ->
                    stats.dedup_hits <- stats.dedup_hits + 1
                | Some _ ->
                    (* Shallower revisit: re-expand, not a new state. *)
                    Hashtbl.replace visited key (d + 1);
                    explore path' (d + 1)
                | None -> (
                    match World.oracle w with
                    | findings when findings <> [] ->
                        fail (Oracle_failed (String.concat "; " findings))
                    | _ ->
                        if stats.states >= max_states then
                          stats.complete <- false
                        else begin
                          stats.states <- stats.states + 1;
                          Hashtbl.replace visited key (d + 1);
                          if d + 1 > stats.max_depth then
                            stats.max_depth <- d + 1;
                          explore path' (d + 1)
                        end)));
            finish ()
          end)
        alphabet
    end
  in
  let violation =
    match World.oracle w with
    | findings when findings <> [] ->
        Some
          { trace = []; kind = Oracle_failed (String.concat "; " findings) }
    | _ -> (
        Hashtbl.replace visited (World.encode w) 0;
        stats.states <- 1;
        match explore [] 0 with
        | () -> None
        | exception Found v ->
            Some { v with trace = minimize cfg v.trace })
  in
  (match telemetry with
  | None -> ()
  | Some t ->
      Telemetry.add t "mc.states" stats.states;
      Telemetry.add t "mc.transitions" stats.transitions;
      Telemetry.add t "mc.dedup_hit" stats.dedup_hits;
      Telemetry.add t "mc.refusals" stats.refusals;
      Telemetry.raise_to t "mc.max_depth" stats.max_depth);
  { stats; violation }
