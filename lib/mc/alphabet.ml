type slot = int

type t =
  | Create of slot
  | Add of slot
  | Add_tcs of slot
  | Init of slot
  | Enter of slot
  | Exit of slot
  | Aex of slot
  | Resume of slot
  | Touch of slot
  | Grow of slot
  | Shrink of slot
  | Restrict of slot
  | Relax of slot
  | Remove of slot
  | Swap_out
  | Atk_double_add of slot
  | Atk_add_outside of slot
  | Atk_bad_sig of slot
  | Atk_forged_measure of slot
  | Atk_ms_reserved of slot
  | Atk_ms_overlap of slot
  | Atk_enter_uninit of slot
  | Atk_busy_enter of slot
  | Atk_wrong_exit of slot
  | Atk_remove_running of slot
  | Atk_swap_replay
  | Atk_swap_splice
  | Sabotage

let is_attack = function
  | Atk_double_add _ | Atk_add_outside _ | Atk_bad_sig _ | Atk_forged_measure _
  | Atk_ms_reserved _ | Atk_ms_overlap _ | Atk_enter_uninit _
  | Atk_busy_enter _ | Atk_wrong_exit _ | Atk_remove_running _
  | Atk_swap_replay | Atk_swap_splice | Sabotage ->
      true
  | Create _ | Add _ | Add_tcs _ | Init _ | Enter _ | Exit _ | Aex _
  | Resume _ | Touch _ | Grow _ | Shrink _ | Restrict _ | Relax _ | Remove _
  | Swap_out ->
      false

let expects_refusal = function
  | Atk_double_add _ | Atk_add_outside _ | Atk_bad_sig _ | Atk_forged_measure _
  | Atk_ms_reserved _ | Atk_ms_overlap _ | Atk_enter_uninit _
  | Atk_busy_enter _ | Atk_wrong_exit _ | Atk_remove_running _ ->
      true
  | _ -> false

let per_slot i =
  [
    Create i;
    Add i;
    Add_tcs i;
    Init i;
    Enter i;
    Exit i;
    Aex i;
    Resume i;
    Touch i;
    Grow i;
    Shrink i;
    Restrict i;
    Relax i;
    Remove i;
  ]

let attacks_per_slot i =
  [
    Atk_double_add i;
    Atk_add_outside i;
    Atk_bad_sig i;
    Atk_forged_measure i;
    Atk_ms_reserved i;
    Atk_ms_overlap i;
    Atk_enter_uninit i;
    Atk_busy_enter i;
    Atk_wrong_exit i;
    Atk_remove_running i;
  ]

let all ~nslots ~with_sabotage =
  let slots = List.init nslots Fun.id in
  List.concat_map per_slot slots
  @ [ Swap_out ]
  @ List.concat_map attacks_per_slot slots
  @ [ Atk_swap_replay; Atk_swap_splice ]
  @ (if with_sabotage then [ Sabotage ] else [])

let to_string = function
  | Create i -> Printf.sprintf "ecreate[%d]" i
  | Add i -> Printf.sprintf "eadd[%d]" i
  | Add_tcs i -> Printf.sprintf "eadd_tcs[%d]" i
  | Init i -> Printf.sprintf "einit[%d]" i
  | Enter i -> Printf.sprintf "eenter[%d]" i
  | Exit i -> Printf.sprintf "eexit[%d]" i
  | Aex i -> Printf.sprintf "aex[%d]" i
  | Resume i -> Printf.sprintf "eresume[%d]" i
  | Touch i -> Printf.sprintf "touch[%d]" i
  | Grow i -> Printf.sprintf "grow[%d]" i
  | Shrink i -> Printf.sprintf "shrink[%d]" i
  | Restrict i -> Printf.sprintf "emodpr[%d]" i
  | Relax i -> Printf.sprintf "emodpe[%d]" i
  | Remove i -> Printf.sprintf "eremove[%d]" i
  | Swap_out -> "swap_out"
  | Atk_double_add i -> Printf.sprintf "atk_double_add[%d]" i
  | Atk_add_outside i -> Printf.sprintf "atk_add_outside[%d]" i
  | Atk_bad_sig i -> Printf.sprintf "atk_bad_sig[%d]" i
  | Atk_forged_measure i -> Printf.sprintf "atk_forged_measure[%d]" i
  | Atk_ms_reserved i -> Printf.sprintf "atk_ms_reserved[%d]" i
  | Atk_ms_overlap i -> Printf.sprintf "atk_ms_overlap[%d]" i
  | Atk_enter_uninit i -> Printf.sprintf "atk_enter_uninit[%d]" i
  | Atk_busy_enter i -> Printf.sprintf "atk_busy_enter[%d]" i
  | Atk_wrong_exit i -> Printf.sprintf "atk_wrong_exit[%d]" i
  | Atk_remove_running i -> Printf.sprintf "atk_remove_running[%d]" i
  | Atk_swap_replay -> "atk_swap_replay"
  | Atk_swap_splice -> "atk_swap_splice"
  | Sabotage -> "sabotage"

let of_string s =
  let candidates = all ~nslots:8 ~with_sabotage:true in
  List.find_opt (fun t -> String.equal (to_string t) s) candidates

let pp fmt t = Format.pp_print_string fmt (to_string t)
