(** Counterexample traces: numbered pretty-printing and greedy
    delta-debug minimization.

    The explorer, the chaos harness and the QCheck properties all report
    failures as a list of labelled steps; this module gives them one
    shared way to print a trace a human can replay by hand, and one
    shared way to shrink a failing trace to a (locally) 1-minimal one
    before printing it. *)

type step = { label : string; detail : string }
(** One transition in a trace.  [label] is the canonical, replayable
    name (e.g. ["eadd[1]"]); [detail] is free-form context shown after
    it (outcome, arguments), possibly empty. *)

val step : ?detail:string -> string -> step

val pp : Format.formatter -> step list -> unit
(** Numbered, one step per line:
    {v
      1. ecreate[0]
      2. eadd[0]      refused: ...
    v} *)

val to_string : step list -> string

val minimize : replay:('a list -> bool) -> 'a list -> 'a list
(** [minimize ~replay trace] greedily drops single elements while
    [replay] still returns [true] (i.e. the candidate still fails),
    restarting after every successful drop until no single element can
    be removed.  The result is 1-minimal: removing any one remaining
    element makes the failure disappear.  If [replay trace] is already
    [false] the trace is returned unchanged (nothing to minimize
    against).  [replay] is called O(n^2) times; traces here are tens of
    steps, not thousands. *)
