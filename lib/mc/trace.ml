type step = { label : string; detail : string }

let step ?(detail = "") label = { label; detail }

let pp fmt steps =
  let width =
    List.fold_left (fun acc s -> max acc (String.length s.label)) 0 steps
  in
  List.iteri
    (fun i s ->
      if i > 0 then Format.pp_print_newline fmt ();
      if s.detail = "" then Format.fprintf fmt "%3d. %s" (i + 1) s.label
      else Format.fprintf fmt "%3d. %-*s  %s" (i + 1) width s.label s.detail)
    steps

let to_string steps = Format.asprintf "%a" pp steps

let minimize ~replay trace =
  if not (replay trace) then trace
  else
    let drop i l = List.filteri (fun j _ -> j <> i) l in
    let rec shrink trace =
      let n = List.length trace in
      let rec attempt i =
        if i >= n then trace
        else
          let cand = drop i trace in
          if replay cand then shrink cand else attempt (i + 1)
      in
      attempt 0
    in
    shrink trace
