(** Exhaustive bounded DFS over the {!World}'s transition alphabet.

    From the seeded initial state the explorer tries every enabled
    transition, recursing depth-first with in-place backtracking
    (monitor snapshot/rollback + frame undo logs).  Reached states are
    deduplicated on the exact canonical encoding ({!World.encode}); the
    visited set remembers the shallowest depth each state was seen at
    and re-expands a state reached again {e shallower}, so the depth
    bound never hides states a shorter path could still reach.

    Every reachable state is run through {!World.oracle} (the monitor's
    full isolation audit plus the poisoned swap-blob check), after
    refused transitions too.  Any oracle finding, any non-typed
    exception, and any attack transition that applies instead of being
    refused aborts the search with a counterexample trace, which is
    then delta-debug minimized by replay on fresh worlds. *)

type stats = {
  mutable states : int;  (** distinct canonical states reached *)
  mutable transitions : int;  (** transitions applied (incl. refused) *)
  mutable dedup_hits : int;  (** states cut because already visited *)
  mutable refusals : int;  (** typed [Security_violation] refusals *)
  mutable attacks_refused : int;  (** refusals of attack transitions *)
  mutable max_depth : int;  (** deepest path explored *)
  mutable complete : bool;  (** false iff the [max_states] cap was hit *)
}

type violation_kind =
  | Oracle_failed of string  (** invariant audit / stale-blob finding *)
  | Attack_accepted  (** an [expects_refusal] transition applied *)
  | Crash of string  (** untyped exception out of the monitor *)

type violation = {
  trace : Alphabet.t list;  (** minimized; replays from a fresh world *)
  kind : violation_kind;
}

type result = { stats : stats; violation : violation option }

val run :
  ?depth:int ->
  ?max_states:int ->
  ?telemetry:Hyperenclave_obs.Telemetry.t ->
  World.config ->
  result
(** Explore from a fresh world.  [depth] bounds the path length
    (default 8); [max_states] caps the visited set (default unlimited)
    and clears [stats.complete] when hit.  When [telemetry] is given,
    [mc.states], [mc.transitions], [mc.dedup_hit] and [mc.refusals]
    counters are bumped and [mc.max_depth] tracks the high-water mark.
    The trace in a returned violation is already minimized. *)

val replay : World.config -> Alphabet.t list -> violation_kind option
(** Run a transition list against a fresh world; [Some kind] iff some
    step (or the state it leads to) is a violation.  Steps whose guard
    does not hold make the candidate invalid ([None]).  This is the
    predicate minimization uses, exposed so tests can confirm that a
    printed counterexample actually reproduces. *)

val to_trace : Alphabet.t list -> Trace.step list
(** Render for {!Trace.pp}. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_stats : Format.formatter -> stats -> unit
