(* Open-addressing hash table specialized to non-negative int keys.

   The simulation kernels probe a map once per simulated cache line (TLB
   residency) and once per touched page (EPC residency); the generic
   [Hashtbl] costs there — polymorphic hashing, bucket-list chasing, a
   cons per [replace] — dominate the simulator's wall-clock profile.
   This table keeps keys and values in flat parallel arrays with linear
   probing, so a lookup is a multiplicative hash plus a short scan of
   adjacent words and mutation never allocates.

   Key space: keys must be >= 0 (virtual/physical page numbers); -1
   marks an empty slot.  [remove] compacts the probe cluster in place
   (backward-shift deletion) instead of leaving tombstones, so a table
   under steady insert/remove churn — the TLB at capacity evicting one
   entry per insert — never degrades and never needs a rehash. *)

type 'a t = {
  mutable keys : int array; (* -1 empty *)
  mutable vals : 'a array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable live : int;
  dummy : 'a;
}

let empty_key = -1

let rec pow2_at_least n c = if c >= n then c else pow2_at_least n (c * 2)

let create ?(size_hint = 16) ~dummy () =
  let cap = pow2_at_least (max 16 (size_hint * 2)) 16 in
  {
    keys = Array.make cap empty_key;
    vals = Array.make cap dummy;
    mask = cap - 1;
    live = 0;
    dummy;
  }

(* Fibonacci hashing: spreads consecutive page numbers across the table;
   quality only affects speed, never observable results. *)
let slot_of t key = (key * 0x5851F42D4C957F2D) lsr 7 land t.mask

(* Slot holding [key], or [lnot free_slot] (negative) where the probe
   ended: one scan answers both "is it here" and "where would it go". *)
let find_slot t key =
  let keys = t.keys in
  let mask = t.mask in
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if k = key then i
    else if k = empty_key then lnot i
    else probe ((i + 1) land mask)
  in
  probe (slot_of t key)

let mem t key = find_slot t key >= 0

let set_if_mem t key v =
  let i = find_slot t key in
  if i >= 0 then begin
    t.vals.(i) <- v;
    true
  end
  else false

let find_opt t key =
  let i = find_slot t key in
  if i >= 0 then Some t.vals.(i) else None

let resize t cap =
  let okeys = t.keys and ovals = t.vals in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let rec free j =
          if t.keys.(j) = empty_key then j else free ((j + 1) land t.mask)
        in
        let j = free (slot_of t k) in
        t.keys.(j) <- k;
        t.vals.(j) <- ovals.(i)
      end)
    okeys

let set t key v =
  if key < 0 then invalid_arg "Fast_table.set: negative key";
  let i = find_slot t key in
  if i >= 0 then t.vals.(i) <- v
  else begin
    let cap = t.mask + 1 in
    let j =
      if (t.live + 1) * 2 > cap then begin
        (* Keep load <= 1/2 so probe clusters stay short. *)
        resize t (cap * 2);
        let rec free j =
          if t.keys.(j) = empty_key then j else free ((j + 1) land t.mask)
        in
        free (slot_of t key)
      end
      else lnot i
    in
    t.keys.(j) <- key;
    t.vals.(j) <- v;
    t.live <- t.live + 1
  end

let remove t key =
  let i = find_slot t key in
  if i >= 0 then begin
    let keys = t.keys and vals = t.vals and mask = t.mask in
    (* Backward-shift deletion: walk the cluster after the hole and pull
       back any entry whose probe path crosses the hole, so lookups never
       need a tombstone marker to keep probing past. *)
    let hole = ref i in
    let j = ref ((i + 1) land mask) in
    let scanning = ref true in
    while !scanning do
      let k = Array.unsafe_get keys !j in
      if k = empty_key then scanning := false
      else begin
        (* [k] can fill the hole iff the hole lies on its probe path,
           i.e. cyclically between its home slot and [j]. *)
        if (!j - slot_of t k) land mask >= (!j - !hole) land mask then begin
          keys.(!hole) <- k;
          vals.(!hole) <- vals.(!j);
          hole := !j
        end;
        j := (!j + 1) land mask
      end
    done;
    keys.(!hole) <- empty_key;
    vals.(!hole) <- t.dummy;
    t.live <- t.live - 1
  end

let length t = t.live

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.live <- 0
