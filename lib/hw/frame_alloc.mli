(** Physical frame allocator.

    RustMonitor manages the reserved physical region as a free list of 4 KiB
    frames (Sec. 5.1); the primary OS uses a separate allocator over its own
    region.  This module serves both. *)

type t

exception Out_of_frames

val create : base_frame:int -> nframes:int -> t
(** An allocator over frames [\[base_frame, base_frame + nframes)]. *)

val alloc : t -> int
(** Take a free frame.  @raise Out_of_frames when exhausted. *)

val alloc_contiguous : t -> int -> int
(** [alloc_contiguous t n] takes [n] physically contiguous frames and
    returns the first.  @raise Out_of_frames if no run of [n] exists. *)

val free : t -> int -> unit
(** Return a frame.  Double-free and out-of-range raise [Invalid_argument]. *)

val owns : t -> int -> bool
(** Whether the frame lies in this allocator's range (free or not). *)

val is_free : t -> int -> bool
val free_count : t -> int
val used_count : t -> int
val total : t -> int
val base_frame : t -> int

val hint : t -> int
(** Next scan index [alloc] will try — part of the allocator's
    behavioural state, so lib/mc folds it into canonical hashes. *)

type snapshot

val snapshot : t -> snapshot
(** Capture the free map, count and scan hint (for lib/mc backtracking;
    the hint is included so allocation order replays identically). *)

val restore : t -> snapshot -> unit
(** Restore in place.  @raise Invalid_argument if the snapshot came from
    an allocator of a different size. *)
