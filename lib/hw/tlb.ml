type entry = {
  frame : int;
  perms : Page_table.perms;
  pte : Page_table.entry option;
      (* Leaf PTE this translation was filled from, when the walker has
         one: lets warm write hits set accessed/dirty without re-walking
         the tables.  [None] for synthetic entries (cost-only sims). *)
}

type t = {
  capacity : int;
  table : entry Fast_table.t;
  mutable keys : int array; (* resident vpns, for O(1) random eviction *)
  mutable nkeys : int;
  rng : Rng.t;
  mutable lookups : int;
  mutable hits : int;
}

let dummy_entry = { frame = 0; perms = Page_table.ro; pte = None }

let create ?(capacity = 1536) rng =
  {
    capacity;
    table = Fast_table.create ~size_hint:capacity ~dummy:dummy_entry ();
    keys = Array.make capacity 0;
    nkeys = 0;
    rng;
    lookups = 0;
    hits = 0;
  }

let lookup t ~vpn =
  t.lookups <- t.lookups + 1;
  match Fast_table.find_opt t.table vpn with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> None

let hit_test t ~vpn =
  t.lookups <- t.lookups + 1;
  if Fast_table.mem t.table vpn then begin
    t.hits <- t.hits + 1;
    true
  end
  else false

let note_hits t n =
  t.lookups <- t.lookups + n;
  t.hits <- t.hits + n

let remove_key t vpn =
  (* Linear scan is acceptable: invalidate is rare (shootdowns only). *)
  let rec find i = if i >= t.nkeys then -1 else if t.keys.(i) = vpn then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    t.keys.(i) <- t.keys.(t.nkeys - 1);
    t.nkeys <- t.nkeys - 1
  end

let evict_random t =
  let i = Rng.int t.rng t.nkeys in
  let vpn = t.keys.(i) in
  Fast_table.remove t.table vpn;
  t.keys.(i) <- t.keys.(t.nkeys - 1);
  t.nkeys <- t.nkeys - 1

let insert t ~vpn e =
  (* Single probe replaces in place; only a genuinely new vpn pays the
     evict-and-insert path. *)
  if not (Fast_table.set_if_mem t.table vpn e) then begin
    if t.nkeys >= t.capacity then evict_random t;
    Fast_table.set t.table vpn e;
    t.keys.(t.nkeys) <- vpn;
    t.nkeys <- t.nkeys + 1
  end

let invalidate t ~vpn =
  if Fast_table.mem t.table vpn then begin
    Fast_table.remove t.table vpn;
    remove_key t vpn
  end

let flush t =
  (* Remove only the live entries (the keys array knows them all): edge
     transitions flush per ECALL/OCALL, usually with a handful of live
     translations, and wiping the whole backing table each time would
     cost more than the calls themselves. *)
  for i = 0 to t.nkeys - 1 do
    Fast_table.remove t.table t.keys.(i)
  done;
  t.nkeys <- 0

let entries t = t.nkeys
let lookups t = t.lookups
let hits t = t.hits

let reset_stats t =
  t.lookups <- 0;
  t.hits <- 0
