(** Open-addressing map from non-negative int keys to ['a], tuned for the
    simulation hot paths (TLB and EPC residency probes: one per simulated
    line / touched page).  Flat parallel arrays + linear probing; lookups
    and mutations never allocate, and [remove] compacts its probe cluster
    in place (backward-shift deletion) so steady insert/remove churn never
    accumulates tombstones or forces a rehash.  Drop-in behaviorally
    equivalent to the [Hashtbl] usage it replaced — only wall-clock speed
    differs. *)

type 'a t

val create : ?size_hint:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills empty value slots; it is never returned from a live
    binding. *)

val mem : 'a t -> int -> bool
val find_opt : 'a t -> int -> 'a option

val set : 'a t -> int -> 'a -> unit
(** Insert or replace.  Raises [Invalid_argument] on negative keys. *)

val set_if_mem : 'a t -> int -> 'a -> bool
(** Replace the value only if the key is bound (single probe); returns
    whether it was. *)

val remove : 'a t -> int -> unit
val length : 'a t -> int
val clear : 'a t -> unit
