type t = {
  base : int;
  nframes : int;
  free : bool array; (* indexed by frame - base *)
  mutable free_count : int;
  mutable hint : int; (* next index to try, keeps alloc O(1) amortized *)
}

exception Out_of_frames

let create ~base_frame ~nframes =
  if nframes <= 0 then invalid_arg "Frame_alloc.create: nframes <= 0";
  {
    base = base_frame;
    nframes;
    free = Array.make nframes true;
    free_count = nframes;
    hint = 0;
  }

let owns t frame = frame >= t.base && frame < t.base + t.nframes

let is_free t frame =
  if not (owns t frame) then invalid_arg "Frame_alloc.is_free: out of range";
  t.free.(frame - t.base)

let alloc t =
  if t.free_count = 0 then raise Out_of_frames;
  let rec scan i remaining =
    if remaining = 0 then raise Out_of_frames
    else
      let i = if i >= t.nframes then 0 else i in
      if t.free.(i) then i else scan (i + 1) (remaining - 1)
  in
  let i = scan t.hint t.nframes in
  t.free.(i) <- false;
  t.free_count <- t.free_count - 1;
  t.hint <- i + 1;
  t.base + i

let alloc_contiguous t n =
  if n <= 0 then invalid_arg "Frame_alloc.alloc_contiguous: n <= 0";
  if n > t.free_count then raise Out_of_frames;
  let run_start = ref 0 and run_len = ref 0 and found = ref (-1) in
  (try
     for i = 0 to t.nframes - 1 do
       if t.free.(i) then begin
         if !run_len = 0 then run_start := i;
         incr run_len;
         if !run_len = n then begin
           found := !run_start;
           raise Exit
         end
       end
       else run_len := 0
     done
   with Exit -> ());
  if !found < 0 then raise Out_of_frames;
  for i = !found to !found + n - 1 do
    t.free.(i) <- false
  done;
  t.free_count <- t.free_count - n;
  t.base + !found

let free t frame =
  if not (owns t frame) then invalid_arg "Frame_alloc.free: out of range";
  let i = frame - t.base in
  if t.free.(i) then invalid_arg "Frame_alloc.free: double free";
  t.free.(i) <- true;
  t.free_count <- t.free_count + 1

let free_count t = t.free_count
let used_count t = t.nframes - t.free_count
let total t = t.nframes
let base_frame t = t.base
let hint t = t.hint

type snapshot = { s_free : bool array; s_free_count : int; s_hint : int }

let snapshot t =
  { s_free = Array.copy t.free; s_free_count = t.free_count; s_hint = t.hint }

let restore t snap =
  if Array.length snap.s_free <> t.nframes then
    invalid_arg "Frame_alloc.restore: snapshot from a different allocator";
  Array.blit snap.s_free 0 t.free 0 t.nframes;
  t.free_count <- snap.s_free_count;
  t.hint <- snap.s_hint
