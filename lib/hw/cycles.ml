type t = { mutable now : int }

(* Process-wide sum of every tick on every clock, for wall-clock-vs-work
   accounting (the --perf-json baseline).  [reset] deliberately leaves it
   alone: it counts simulation work performed, not clock positions. *)
let grand_total = ref 0

let create () = { now = 0 }
let now clock = clock.now

let tick clock n =
  assert (n >= 0);
  clock.now <- clock.now + n;
  grand_total := !grand_total + n

let elapsed clock ~since = clock.now - since

let time clock f =
  let start = clock.now in
  let result = f () in
  (result, clock.now - start)

(* Idle advance: drag a lagging clock forward (a per-core clock waiting
   for stealable work) without counting the skipped span as simulation
   work — grand_total measures work performed, not waiting. *)
let advance_to clock ~at = if at > clock.now then clock.now <- at

let reset clock = clock.now <- 0
let total_ticked () = !grand_total
