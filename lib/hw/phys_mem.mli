(** Simulated physical memory.

    Frames are allocated lazily (a hash table of frame number to 4 KiB
    buffer), so a multi-gigabyte simulated address space costs only what is
    actually touched.  Reads of never-written memory return zeroes, like
    freshly scrubbed DRAM.

    Access *policy* (who may touch which frame) is not enforced here — that
    is the MMU/NPT/IOMMU's job; this module is the raw DRAM array. *)

type t

val create : size_bytes:int -> t
(** [create ~size_bytes] is a physical memory of the given size (rounded up
    to whole pages).  Out-of-range accesses raise [Invalid_argument]. *)

val size_bytes : t -> int
val frames : t -> int

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit

val read_u64 : t -> int -> int64
(** Little-endian; may span a page boundary. *)

val write_u64 : t -> int -> int64 -> unit

val read_bytes : t -> int -> int -> bytes
(** [read_bytes mem addr len]. *)

val write_bytes : t -> int -> bytes -> unit

val write_sub : t -> int -> bytes -> pos:int -> len:int -> unit
(** [write_sub mem addr buf ~pos ~len] writes [buf[pos, pos+len)] at
    [addr] without copying the slice out first — the allocation-free
    counterpart of {!write_bytes} for recycled staging buffers. *)

val read_into : t -> int -> bytes -> pos:int -> len:int -> unit
(** [read_into mem addr buf ~pos ~len] reads [len] bytes at [addr]
    straight into [buf[pos, pos+len)] — the allocation-free counterpart
    of {!read_bytes}. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
val fill : t -> addr:int -> len:int -> char -> unit

val read_page : t -> frame:int -> bytes
(** Copy of the 4 KiB frame contents. *)

val write_page : t -> frame:int -> bytes -> unit
(** [write_page mem ~frame data] stores [data] (must be exactly one page). *)

val zero_page : t -> frame:int -> unit
(** Scrub a frame back to zeroes (used when the monitor reclaims EPC). *)

val touched_frames : t -> int
(** Number of frames materialized so far (for resource accounting tests). *)

val set_write_observer : t -> (int -> unit) option -> unit
(** [set_write_observer mem (Some f)] calls [f frame] just before any
    mutation of [frame] (writes, fills, page zeroing).  Used by lib/mc
    to keep a dirty-frame log so DFS backtracking restores only the
    frames a transition actually touched.  [None] (the default) is a
    single-branch fast path. *)
