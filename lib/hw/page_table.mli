(** Software model of a 4-level x86-64-style page table.

    Used for three distinct tables in the system:
    - the primary OS's per-process guest page tables,
    - the enclaves' guest page tables, owned exclusively by RustMonitor
      (or by a P-Enclave itself, Sec. 4.3),
    - nested page tables (GPA to HPA) for the normal VM and for GU/P
      enclave VMs.

    Entries carry present/write/exec/user plus hardware-set accessed and
    dirty bits, matching what the paper's mapping-attack and TrustVisor
    discussions rely on.  The structure is an explicit radix tree so that
    walks can be charged per level by the MMU. *)

type perms = { write : bool; exec : bool; user : bool }

val pp_perms : Format.formatter -> perms -> unit

val rw : perms
(** user read/write data. *)

val rx : perms
(** user read/exec code. *)

val ro : perms
val rwx : perms
val kernel_rw : perms

type entry = {
  mutable frame : int;
  mutable perms : perms;
  mutable accessed : bool;
  mutable dirty : bool;
}

type t

val create : unit -> t

val map : t -> vpn:int -> frame:int -> perms:perms -> unit
(** Install a translation for virtual page [vpn].  Remapping an existing
    vpn overwrites it (like writing a PTE). *)

val unmap : t -> vpn:int -> unit
(** Remove a translation; no-op if absent. *)

val protect : t -> vpn:int -> perms:perms -> unit
(** Change permissions of an existing mapping.  @raise Not_found. *)

val lookup : t -> vpn:int -> entry option
(** Find the final-level entry without touching accessed/dirty. *)

val walk : t -> vpn:int -> levels_visited:int ref -> entry option
(** Hardware-style walk: increments [levels_visited] once per radix level
    actually loaded, so the MMU can charge [pt_level_access] each. *)

val mapped_count : t -> int
val table_pages : t -> int
(** Number of radix-tree nodes, i.e. physical pages the table itself
    would occupy (1 root + interior + leaf tables). *)

val iter : t -> (vpn:int -> entry -> unit) -> unit
val clear_accessed_dirty : t -> unit

val find_vpn_of_frame : t -> frame:int -> int option
(** Reverse lookup (first match); used by security tests for alias
    detection. *)

(** {2 Snapshot / restore}

    Cheap structural snapshots for the model checker's DFS backtracking
    (lib/mc).  A snapshot captures the translation set (vpn, frame,
    perms); [restore] rebuilds exactly that set in place, so existing
    [t] handles held elsewhere stay valid.  A generation counter bumped
    on every [map]/[unmap]/[protect] lets [restore] skip tables that
    did not change since the snapshot.  Hardware accessed/dirty bits are
    deliberately not captured: they are observational, nothing in the
    monitor branches on them. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Restore the translation set in place.  O(1) when the generation is
    unchanged since [snapshot]. *)

val generation : t -> int
(** Monotonic modification counter (map/unmap/protect). *)
