(** Simulated CPU cycle clock.

    All performance results in this reproduction are expressed in simulated
    cycles accumulated on a {!t}.  Every hardware event (memory access, page
    walk, world switch, ...) charges its cost here through the shared
    {!Cost_model}.  Clocks are cheap, single-threaded mutable counters. *)

type t
(** A monotonically increasing virtual cycle counter. *)

val create : unit -> t
(** [create ()] is a fresh clock at cycle 0. *)

val now : t -> int
(** [now clock] is the current cycle count. *)

val tick : t -> int -> unit
(** [tick clock n] advances the clock by [n] cycles.  [n] must be
    non-negative. *)

val elapsed : t -> since:int -> int
(** [elapsed clock ~since] is [now clock - since]. *)

val time : t -> (unit -> 'a) -> 'a * int
(** [time clock f] runs [f ()] and returns its result together with the
    number of simulated cycles it consumed. *)

val advance_to : t -> at:int -> unit
(** [advance_to clock ~at] moves the clock forward to cycle [at] if it is
    behind (no-op otherwise).  Models idle time — a per-core scheduler
    clock waiting for work — so the skipped span is NOT added to
    {!total_ticked}, which counts only work performed. *)

val reset : t -> unit
(** [reset clock] sets the counter back to 0.  Only used by test fixtures;
    production code treats the clock as monotone. *)

val total_ticked : unit -> int
(** Process-wide sum of every [tick] on every clock since startup — a
    measure of simulation work performed, used to pair wall-clock timings
    with the amount of simulated work they covered (see the benchmark
    harness's [--perf-json]).  Monotone; unaffected by [reset]. *)
