type t = {
  hypercall : int;
  syscall_ring : int;
  vmexit : int;
  vminject : int;
  enter_extra_gu : int;
  exit_extra_gu : int;
  enter_extra_hu : int;
  exit_extra_hu : int;
  enter_extra_p : int;
  exit_extra_p : int;
  sdk_ecall_soft_gu : int;
  sdk_ecall_soft_hu : int;
  sdk_ecall_soft_p : int;
  sdk_ocall_soft_gu : int;
  sdk_ocall_soft_hu : int;
  sdk_ocall_soft_p : int;
  mem_copy_per_byte_num : int;
  mem_copy_per_byte_den : int;
  cache_hit : int;
  cache_miss_dram : int;
  dram_seq_miss : int;
  sme_seq_extra : int;
  mee_seq_extra : int;
  sme_miss_extra : int;
  mee_miss_extra : int;
  mee_tree_level : int;
  mee_tree_levels : int;
  epc_swap_page : int;
  tlb_hit : int;
  pt_level_access : int;
  tlb_flush : int;
  tlb_shootdown : int;
  idt_dispatch : int;
  iret : int;
  os_signal_delivery : int;
  aex_save : int;
  eresume_soft : int;
  exception_classify : int;
  pf_handler_work : int;
  pte_update : int;
  monitor_pf_dispatch : int;
  pf_commit_handle : int;
  ud_handler_work : int;
  ms_copy_in_per_kb : int;
  ms_copy_out_per_kb : int;
  sgx_ecall : int;
  sgx_ocall : int;
  sgx_eenter : int;
  sgx_eexit : int;
  sgx_aex : int;
  sgx_eresume : int;
  os_null_syscall : int;
  os_fork : int;
  os_ctxsw : int;
  os_mmap : int;
  os_page_fault : int;
  os_af_unix : int;
  switchless_post : int;
  switchless_wait : int;
  switchless_dispatch : int;
  batch_item_dispatch : int;
  ring_slot_dispatch : int;
  sha256_per_block : int;
  aes_per_block : int;
  tpm_command : int;
}

(* Calibration notes.
   Table 1 targets (cycles): EENTER/EEXIT = HU 1163/1144, GU 1704/1319,
   P 1649/1401; ECALL = HU 8440, GU 9480, P 9700; OCALL = HU 4120,
   GU 4920, P 5260.  The enter/exit extras are the residuals after the
   transition primitive (hypercall or ring switch); the SDK soft costs are
   the residuals after one enter plus one exit. *)
let default =
  {
    hypercall = 880;
    syscall_ring = 120;
    vmexit = 440;
    vminject = 150;
    enter_extra_gu = 824;
    exit_extra_gu = 439;
    enter_extra_hu = 1043;
    exit_extra_hu = 1024;
    enter_extra_p = 769;
    exit_extra_p = 521;
    sdk_ecall_soft_gu = 6457;
    sdk_ecall_soft_hu = 6133;
    sdk_ecall_soft_p = 6650;
    sdk_ocall_soft_gu = 1897;
    sdk_ocall_soft_hu = 1813;
    sdk_ocall_soft_p = 2210;
    (* ~0.12 cycles/byte: rep-movsb style bulk copy of uncached data. *)
    mem_copy_per_byte_num = 1;
    mem_copy_per_byte_den = 8;
    cache_hit = 40;
    dram_seq_miss = 45;
    sme_seq_extra = 63;
    mee_seq_extra = 90;
    cache_miss_dram = 180;
    sme_miss_extra = 60;
    mee_miss_extra = 250;
    mee_tree_level = 180;
    mee_tree_levels = 4;
    epc_swap_page = 25000;
    tlb_hit = 1;
    pt_level_access = 30;
    tlb_flush = 120;
    tlb_shootdown = 140;
    idt_dispatch = 60;
    iret = 58;
    os_signal_delivery = 2600;
    aex_save = 700;
    eresume_soft = 450;
    exception_classify = 800;
    pf_handler_work = 330;
    pte_update = 174;
    monitor_pf_dispatch = 176;
    pf_commit_handle = 600;
    ud_handler_work = 140;
    (* Fig. 7 calibration: extra uRTS copy into / out of the marshalling
       buffer, per KiB of payload. *)
    ms_copy_in_per_kb = 51;
    ms_copy_out_per_kb = 73;
    sgx_ecall = 14432;
    sgx_ocall = 12432;
    sgx_eenter = 3300;
    sgx_eexit = 3000;
    sgx_aex = 5500;
    sgx_eresume = 6029;
    (* Table 3 native baselines, converted at 2.2 GHz: null call 0.1195 us,
       fork 196.3 us, ctxsw 3.13 us, mmap 66,125 us (reported in the paper's
       odd unit; kept proportional), page fault 0.2433 us, AF_UNIX 5.73 us. *)
    os_null_syscall = 263;
    os_fork = 431_860;
    os_ctxsw = 6_886;
    os_mmap = 1_455_750;
    os_page_fault = 535;
    os_af_unix = 12_606;
    (* Switchless calls (Tian et al., SysTEX'18): request posted to a
       shared ring, executed by an untrusted worker thread; the enclave
       pays a fence + the expected worker pickup latency instead of two
       world switches. *)
    switchless_post = 260;
    switchless_wait = 1_450;
    switchless_dispatch = 420;
    (* Batched call ring: per-slot in-enclave dispatch past the first —
       bounds-check + table lookup + frame walk, no world switch. *)
    batch_item_dispatch = 350;
    (* Fixed-stride arena ring: the persistent in-enclave worker's
       per-slot dispatch.  Cheaper than [batch_item_dispatch] because the
       slot boundaries are pre-validated at a fixed stride — one bounds
       check, one table lookup, one indirect call; no variable-length
       frame walk. *)
    ring_slot_dispatch = 110;
    sha256_per_block = 1200;
    aes_per_block = 60;
    tpm_command = 50_000;
  }

let copy_cost m bytes = bytes * m.mem_copy_per_byte_num / m.mem_copy_per_byte_den

let no_overhead =
  {
    default with
    hypercall = 0;
    syscall_ring = 0;
    vmexit = 0;
    vminject = 0;
    enter_extra_gu = 0;
    exit_extra_gu = 0;
    enter_extra_hu = 0;
    exit_extra_hu = 0;
    enter_extra_p = 0;
    exit_extra_p = 0;
    sdk_ecall_soft_gu = 0;
    sdk_ecall_soft_hu = 0;
    sdk_ecall_soft_p = 0;
    sdk_ocall_soft_gu = 0;
    sdk_ocall_soft_hu = 0;
    sdk_ocall_soft_p = 0;
    sme_miss_extra = 0;
    mee_miss_extra = 0;
    mee_tree_level = 0;
    epc_swap_page = 0;
    sgx_ecall = 0;
    sgx_ocall = 0;
    sgx_eenter = 0;
    sgx_eexit = 0;
    sgx_aex = 0;
    sgx_eresume = 0;
    batch_item_dispatch = 0;
    ring_slot_dispatch = 0;
  }
