(** Translation lookaside buffer.

    HyperEnclave's isolation argument depends on TLB hygiene: "The TLBs are
    cleared upon world switches to prevent illegal memory accesses using
    stale TLB entries" (Sec. 6).  The model is a bounded map from virtual
    page number to (frame, perms) with random replacement; precise
    replacement policy does not matter for any reproduced result, bounded
    capacity and explicit flushes do. *)

type entry = {
  frame : int;
  perms : Page_table.perms;
  pte : Page_table.entry option;
      (** Leaf PTE this translation was filled from, when known: the MMU
          uses it to set accessed/dirty bits on warm write hits without
          re-walking the page tables.  [None] for synthetic entries. *)
}

type t

val create : ?capacity:int -> Rng.t -> t
(** Default capacity 1536 entries (L2 TLB scale). *)

val lookup : t -> vpn:int -> entry option
val insert : t -> vpn:int -> entry -> unit

val hit_test : t -> vpn:int -> bool
(** [hit_test t ~vpn] is [lookup t ~vpn <> None] with identical stats
    accounting but no entry allocation — for cost-only callers that never
    read the translation. *)

val note_hits : t -> int -> unit
(** [note_hits t n] accounts [n] lookups that are deterministically known
    to hit without probing the table — the fast-path bookkeeping used by
    {!Hyperenclave_tee.Mem_sim} when it batches the tail of a page run.
    Stats-only; the table itself is untouched. *)

val invalidate : t -> vpn:int -> unit
(** INVLPG: drop one translation. *)

val flush : t -> unit
(** Full flush (world switch / CR3 write without PCID). *)

val entries : t -> int

val lookups : t -> int
val hits : t -> int
(** Counters for tests and the memory-latency bench. *)

val reset_stats : t -> unit
