type access = Read | Write | Exec

let pp_access fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
  | Exec -> Format.pp_print_string fmt "exec"

type fault = { vpn : int; access : access; user : bool; present : bool }

exception Page_fault of fault
exception Npt_violation of { gfn : int; access : access }

type t = {
  clock : Cycles.t;
  cost : Cost_model.t;
  tlb : Tlb.t;
  mutable gpt : Page_table.t;
  mutable npt : Page_table.t option;
  (* Nested-translation cost cache, 2 MB-region granular: RustMonitor
     installs huge pages in the NPT where possible (Appendix A.2), so
     once a region's nested translation is cached, further guest walks in
     it cost like native ones.  Guest CR3 writes do not flush it; only
     switching to a different nested table does.  The cache affects cost
     only — the real nested walk below still decides permissions. *)
  nested_regions : (int, unit) Hashtbl.t;
  (* Guest paging-structure cache (VA-region granular): upper-level guest
     table entries cached by the walker; flushed with the TLB. *)
  va_regions : (int, unit) Hashtbl.t;
}

let nested_cache_capacity = 4096

let create ~clock ~cost ~rng ~gpt ?npt () =
  {
    clock;
    cost;
    tlb = Tlb.create rng;
    gpt;
    npt;
    nested_regions = Hashtbl.create 256;
    va_regions = Hashtbl.create 256;
  }

let perms_allow (p : Page_table.perms) access user =
  (if user then p.user else true)
  &&
  match access with Read -> true | Write -> p.write | Exec -> p.exec

let check_perms (e : Page_table.entry) access user ~vpn =
  if not (perms_allow e.perms access user) then
    raise (Page_fault { vpn; access; user; present = true })

let nested_cached t gfn = Hashtbl.mem t.nested_regions (gfn lsr 9)

let nested_fill t gfn =
  if Hashtbl.length t.nested_regions >= nested_cache_capacity then
    Hashtbl.reset t.nested_regions;
  Hashtbl.replace t.nested_regions (gfn lsr 9) ()

(* Translate a guest frame through the NPT; a full nested walk is charged
   only when the 2 MB region is cold in the nested cache. *)
let npt_resolve t npt gfn access =
  let levels = ref 0 in
  let charge () =
    if nested_cached t gfn then Cycles.tick t.clock t.cost.tlb_hit
    else begin
      Cycles.tick t.clock (!levels * t.cost.pt_level_access);
      nested_fill t gfn
    end
  in
  match Page_table.walk npt ~vpn:gfn ~levels_visited:levels with
  | None ->
      charge ();
      raise (Npt_violation { gfn; access })
  | Some (ne : Page_table.entry) ->
      charge ();
      if not (perms_allow ne.perms access false) then
        raise (Npt_violation { gfn; access });
      ne.accessed <- true;
      if access = Write then ne.dirty <- true;
      ne.frame

let translate_page t ~access ~user ~vpn =
  match Tlb.lookup t.tlb ~vpn with
  | Some (e : Tlb.entry) ->
      Cycles.tick t.clock t.cost.tlb_hit;
      if not (perms_allow e.perms access user) then
        raise (Page_fault { vpn; access; user; present = true });
      (* A write through a clean cached translation still sets the PTE's
         dirty bit (the walker re-visits the entry in microcode).  The
         walker cached the leaf PTE in the TLB entry, so warm writes stay
         O(1) instead of re-walking the guest tables per store. *)
      if access = Write then
        (match e.pte with
        | Some pte ->
            pte.Page_table.accessed <- true;
            pte.Page_table.dirty <- true
        | None -> (
            match Page_table.lookup t.gpt ~vpn with
            | Some pte ->
                pte.Page_table.accessed <- true;
                pte.Page_table.dirty <- true
            | None -> ()));
      e.frame
  | None ->
      (* Guest walk: 4 levels of guest-table loads.  Under nested paging
         each of those loads is itself a guest-physical access translated
         by the NPT, so we charge a nested walk per guest level plus one
         for the final data page — the classic two-dimensional walk. *)
      let levels = ref 0 in
      let entry = Page_table.walk t.gpt ~vpn ~levels_visited:levels in
      Cycles.tick t.clock (!levels * t.cost.pt_level_access);
      (match t.npt with
      | None -> ()
      | Some _ ->
          (* Nested translations of the guest's table-node loads; only
             charged while the surrounding region is cold in the nested
             cache (paging-structure caches + huge-page NPT otherwise
             absorb them, which is why Table 3 / Fig. 10 overheads are
             small). *)
          if not (Hashtbl.mem t.va_regions (vpn lsr 9)) then begin
            Cycles.tick t.clock (!levels * t.cost.pt_level_access);
            if Hashtbl.length t.va_regions >= nested_cache_capacity then
              Hashtbl.reset t.va_regions;
            Hashtbl.replace t.va_regions (vpn lsr 9) ()
          end);
      (match entry with
      | None -> raise (Page_fault { vpn; access; user; present = false })
      | Some (e : Page_table.entry) ->
          check_perms e access user ~vpn;
          e.accessed <- true;
          if access = Write then e.dirty <- true;
          let host_frame =
            match t.npt with
            | None -> e.frame
            | Some npt -> npt_resolve t npt e.frame access
          in
          Tlb.insert t.tlb ~vpn
            { Tlb.frame = host_frame; perms = e.perms; pte = Some e };
          host_frame)

let translate t ~access ~user va =
  let frame = translate_page t ~access ~user ~vpn:(Addr.page_of va) in
  Addr.base_of_page frame lor Addr.offset va

let switch_context t ~gpt ?npt () =
  t.gpt <- gpt;
  (* A different nested table invalidates the nested caches; a guest CR3
     write under the same NPT does not. *)
  (match (t.npt, npt) with
  | Some old_npt, Some new_npt when old_npt == new_npt -> ()
  | None, None -> ()
  | Some _, Some _ | Some _, None | None, Some _ ->
      Hashtbl.reset t.nested_regions);
  t.npt <- npt;
  Hashtbl.reset t.va_regions;
  Tlb.flush t.tlb;
  Cycles.tick t.clock t.cost.tlb_flush

let gpt t = t.gpt
let npt t = t.npt
let nested t = t.npt <> None

let flush_tlb t =
  Tlb.flush t.tlb;
  Hashtbl.reset t.va_regions;
  Cycles.tick t.clock t.cost.tlb_flush

let invalidate_vpn t ~vpn =
  Tlb.invalidate t.tlb ~vpn;
  Cycles.tick t.clock t.cost.tlb_shootdown

let tlb t = t.tlb
