type perms = { write : bool; exec : bool; user : bool }

let pp_perms fmt p =
  Format.fprintf fmt "r%c%c%c"
    (if p.write then 'w' else '-')
    (if p.exec then 'x' else '-')
    (if p.user then 'u' else 'k')

let rw = { write = true; exec = false; user = true }
let rx = { write = false; exec = true; user = true }
let ro = { write = false; exec = false; user = true }
let rwx = { write = true; exec = true; user = true }
let kernel_rw = { write = true; exec = false; user = false }

type entry = {
  mutable frame : int;
  mutable perms : perms;
  mutable accessed : bool;
  mutable dirty : bool;
}

type node = Table of node option array | Leaf of entry option array

type t = {
  root : node;
  mutable mapped : int;
  mutable nodes : int;
  mutable generation : int;
}

let fanout = 512
let new_table () = Table (Array.make fanout None)
let new_leaf () = Leaf (Array.make fanout None)

let create () = { root = new_table (); mapped = 0; nodes = 1; generation = 0 }

(* Descend from the root (level 3) to the leaf table (level 0), creating
   interior nodes on demand when [create_missing]. *)
let rec descend t node level vpn create_missing =
  match node with
  | Leaf slots -> Some slots
  | Table slots -> (
      let idx = (vpn lsr (9 * level)) land 0x1ff in
      match slots.(idx) with
      | Some child -> descend t child (level - 1) vpn create_missing
      | None ->
          if not create_missing then None
          else begin
            let child = if level = 1 then new_leaf () else new_table () in
            slots.(idx) <- Some child;
            t.nodes <- t.nodes + 1;
            descend t child (level - 1) vpn create_missing
          end)

let leaf_index vpn = vpn land 0x1ff

let map t ~vpn ~frame ~perms =
  match descend t t.root 3 vpn true with
  | None -> assert false
  | Some slots ->
      let idx = leaf_index vpn in
      if slots.(idx) = None then t.mapped <- t.mapped + 1;
      t.generation <- t.generation + 1;
      slots.(idx) <- Some { frame; perms; accessed = false; dirty = false }

let unmap t ~vpn =
  match descend t t.root 3 vpn false with
  | None -> ()
  | Some slots ->
      let idx = leaf_index vpn in
      if slots.(idx) <> None then begin
        slots.(idx) <- None;
        t.generation <- t.generation + 1;
        t.mapped <- t.mapped - 1
      end

let lookup t ~vpn =
  match descend t t.root 3 vpn false with
  | None -> None
  | Some slots -> slots.(leaf_index vpn)

let protect t ~vpn ~perms =
  match lookup t ~vpn with
  | None -> raise Not_found
  | Some e ->
      t.generation <- t.generation + 1;
      e.perms <- perms

let walk t ~vpn ~levels_visited =
  (* A real walk loads one entry per level including the leaf PTE. *)
  let rec go node level =
    incr levels_visited;
    match node with
    | Leaf slots -> slots.(leaf_index vpn)
    | Table slots -> (
        let idx = (vpn lsr (9 * level)) land 0x1ff in
        match slots.(idx) with
        | None -> None
        | Some child -> go child (level - 1))
  in
  go t.root 3

let mapped_count t = t.mapped
let table_pages t = t.nodes

let iter t f =
  let rec go node base level =
    match node with
    | Leaf slots ->
        Array.iteri
          (fun i slot ->
            match slot with
            | None -> ()
            | Some e -> f ~vpn:(base lor i) e)
          slots
    | Table slots ->
        Array.iteri
          (fun i slot ->
            match slot with
            | None -> ()
            | Some child -> go child (base lor (i lsl (9 * level))) (level - 1))
          slots
  in
  go t.root 0 3

let clear_accessed_dirty t =
  iter t (fun ~vpn:_ e ->
      e.accessed <- false;
      e.dirty <- false)

type snapshot = { gen : int; entries : (int * int * perms) list }

let snapshot t =
  let entries = ref [] in
  iter t (fun ~vpn e -> entries := (vpn, e.frame, e.perms) :: !entries);
  { gen = t.generation; entries = !entries }

let restore t snap =
  if t.generation <> snap.gen then begin
    let present = ref [] in
    iter t (fun ~vpn _ -> present := vpn :: !present);
    List.iter (fun vpn -> unmap t ~vpn) !present;
    List.iter (fun (vpn, frame, perms) -> map t ~vpn ~frame ~perms) snap.entries;
    t.generation <- snap.gen
  end

let generation t = t.generation

let find_vpn_of_frame t ~frame =
  let found = ref None in
  (try
     iter t (fun ~vpn e ->
         if e.frame = frame then begin
           found := Some vpn;
           raise Exit
         end)
   with Exit -> ());
  !found
