(** Deterministic pseudo-random number generator (splitmix64).

    Used for everything that needs randomness in the simulation — TPM RNG,
    key generation, workload distributions, cache-jitter — so that every
    run of the test suite and benchmark harness is reproducible. *)

type t

val create : seed:int64 -> t
(** [create ~seed] is a fresh generator.  Equal seeds give equal streams. *)

val set_seed : t -> int64 -> unit
(** Reset the stream; afterwards the generator replays the sequence of a
    fresh [create ~seed]. *)

val state : t -> int64
(** Current stream position; [set_seed t (state t)] is the identity.
    Lets lib/mc checkpoint and rewind the generator during DFS. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bytes : t -> int -> bytes
(** [bytes t n] is [n] pseudo-random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
