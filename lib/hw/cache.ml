(* Set-associative LLC model on a flat packed slab.

   [access] runs once per simulated 64-byte line, so the representation
   is optimized for it: each set is one contiguous block of [ways] ints,
   each packing a way's whole state as

     (lru_tick lsl 33) lor (dirty lsl 32) lor line_tag

   (-1 = invalid way).  A lookup therefore touches a single run of at
   most [ways] host words — one or two cache lines — instead of chasing
   per-line records across the heap, and the packed words compare in LRU
   order directly: ticks come from a per-access counter and are unique,
   so ordering by the full word is ordering by tick, and replacement
   decisions, hit/miss results and all statistics match the original
   record-based model bit-for-bit (the golden cycle tests depend on
   that).

   Line tags occupy the low 32 bits, which bounds addresses to 256 GB of
   simulated space — far above any workload here.  The tick field has 30
   bits; [renormalize] compresses stamps to per-set ranks before it can
   overflow, which preserves within-set order (LRU never compares across
   sets) and hence every observable result. *)

type t = {
  line_bytes : int;
  line_shift : int; (* -1 when line_bytes is not a power of two *)
  ways : int;
  sets : int;
  slab : int array; (* sets x ways packed words *)
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

type result = Hit | Miss of { evicted_dirty : bool }

let miss_clean = Miss { evicted_dirty = false }
let miss_dirty = Miss { evicted_dirty = true }
let invalid = -1
let tag_mask = 0xFFFF_FFFF
let renorm_threshold = 1 lsl 29

let rec pow2_floor n = if n land (n - 1) = 0 then n else pow2_floor (n land (n - 1))

let shift_of n =
  let rec go v s = if v = 1 then s else go (v lsr 1) (s + 1) in
  if n > 0 && n land (n - 1) = 0 then go n 0 else -1

let create ?(line_bytes = 64) ?(ways = 16) ~size_bytes () =
  let sets = max 1 (pow2_floor (size_bytes / line_bytes / ways)) in
  {
    line_bytes;
    line_shift = shift_of line_bytes;
    ways;
    sets;
    slab = Array.make (sets * ways) invalid;
    tick = 0;
    accesses = 0;
    misses = 0;
  }

let line_no t addr =
  if t.line_shift >= 0 then addr lsr t.line_shift else addr / t.line_bytes

(* Replace each valid way's tick with its rank among the valid ways of
   its set (1..ways).  Within-set order — the only order LRU ever
   consults — is unchanged, so replacement behavior is identical; this
   just keeps the 30-bit tick field from overflowing on very long runs. *)
let renormalize t =
  let ways = t.ways in
  let tmp = Array.make ways 0 in
  for set = 0 to t.sets - 1 do
    let base = set * ways in
    Array.blit t.slab base tmp 0 ways;
    for i = 0 to ways - 1 do
      let w = tmp.(i) in
      if w <> invalid then begin
        let rank = ref 1 in
        for j = 0 to ways - 1 do
          if tmp.(j) <> invalid && tmp.(j) < w then incr rank
        done;
        t.slab.(base + i) <- (!rank lsl 33) lor (w land ((1 lsl 33) - 1))
      end
    done
  done;
  t.tick <- ways + 1

let access t ?(write = false) addr =
  t.accesses <- t.accesses + 1;
  if t.tick >= renorm_threshold then renormalize t;
  t.tick <- t.tick + 1;
  let tag = line_no t addr in
  let base = (tag land (t.sets - 1)) * t.ways in
  let slab = t.slab in
  let ways = t.ways in
  let hit = ref (-1) in
  let i = ref 0 in
  while !hit < 0 && !i < ways do
    let w = Array.unsafe_get slab (base + !i) in
    if w <> invalid && w land tag_mask = tag then hit := base + !i;
    incr i
  done;
  if !hit >= 0 then begin
    let dirty = (if write then 1 else 0) lor ((slab.(!hit) lsr 32) land 1) in
    slab.(!hit) <- (t.tick lsl 33) lor (dirty lsl 32) lor tag;
    Hit
  end
  else begin
    t.misses <- t.misses + 1;
    (* Victim = first invalid way if any, else LRU among valid ways;
       unique ticks in the top bits make packed-word order = tick order. *)
    let victim = ref base in
    for i = 1 to ways - 1 do
      let ii = base + i in
      if Array.unsafe_get slab ii = invalid then begin
        if slab.(!victim) <> invalid then victim := ii
      end
      else if slab.(!victim) <> invalid
              && Array.unsafe_get slab ii < slab.(!victim)
      then victim := ii
    done;
    let v = !victim in
    let evicted_dirty = slab.(v) <> invalid && (slab.(v) lsr 32) land 1 = 1 in
    slab.(v) <- (t.tick lsl 33) lor ((if write then 1 else 0) lsl 32) lor tag;
    if evicted_dirty then miss_dirty else miss_clean
  end

let flush_line t addr =
  let tag = line_no t addr in
  let base = (tag land (t.sets - 1)) * t.ways in
  for i = 0 to t.ways - 1 do
    let w = t.slab.(base + i) in
    if w <> invalid && w land tag_mask = tag then t.slab.(base + i) <- invalid
  done

let flush_all t = Array.fill t.slab 0 (Array.length t.slab) invalid
let size_bytes t = t.sets * t.ways * t.line_bytes
let line_bytes t = t.line_bytes
let accesses t = t.accesses
let misses t = t.misses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
