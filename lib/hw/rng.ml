type t = { mutable state : int64 }

let create ~seed = { state = seed }
let set_seed t seed = t.state <- seed
let state t = t.state

(* splitmix64: fast, high-quality, and trivially reproducible; the standard
   choice for seeding deterministic simulations. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  assert (bound > 0);
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  raw /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
