type t = {
  size : int;
  frames : (int, bytes) Hashtbl.t;
  mutable observer : (int -> unit) option;
}

let create ~size_bytes =
  let size = Addr.align_up size_bytes in
  { size; frames = Hashtbl.create 1024; observer = None }

let set_write_observer t f = t.observer <- f

let observe t fn =
  match t.observer with None -> () | Some f -> f fn

let size_bytes t = t.size
let frames t = t.size / Addr.page_size

let check t addr len =
  if addr < 0 || len < 0 || addr + len > t.size then
    invalid_arg
      (Printf.sprintf "Phys_mem: access [0x%x, +%d) outside 0x%x" addr len
         t.size)

(* Every mutation path obtains its target page through [frame_for], so
   the write observer fires exactly once per (write, frame) pair. *)
let frame_for t fn =
  observe t fn;
  match Hashtbl.find_opt t.frames fn with
  | Some page -> page
  | None ->
      let page = Bytes.make Addr.page_size '\000' in
      Hashtbl.replace t.frames fn page;
      page

let read_u8 t addr =
  check t addr 1;
  match Hashtbl.find_opt t.frames (Addr.page_of addr) with
  | None -> 0
  | Some page -> Char.code (Bytes.get page (Addr.offset addr))

let write_u8 t addr v =
  check t addr 1;
  let page = frame_for t (Addr.page_of addr) in
  Bytes.set page (Addr.offset addr) (Char.chr (v land 0xff))

let read_bytes t addr len =
  check t addr len;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Addr.offset a in
    let chunk = min (len - !pos) (Addr.page_size - off) in
    (match Hashtbl.find_opt t.frames (Addr.page_of a) with
    | None -> Bytes.fill out !pos chunk '\000'
    | Some page -> Bytes.blit page off out !pos chunk);
    pos := !pos + chunk
  done;
  out

let write_bytes t addr data =
  let len = Bytes.length data in
  check t addr len;
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let off = Addr.offset a in
    let chunk = min (len - !pos) (Addr.page_size - off) in
    let page = frame_for t (Addr.page_of a) in
    Bytes.blit data !pos page off chunk;
    pos := !pos + chunk
  done

(* Slice variants: the same page-walk as [read_bytes]/[write_bytes] but
   over a caller-owned buffer, so steady-state paths that recycle their
   staging images move bytes without allocating. *)
let check_slice buf pos len op =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg
      (Printf.sprintf "Phys_mem.%s: slice [%d, +%d) outside buffer of %d" op
         pos len (Bytes.length buf))

let write_sub t addr buf ~pos ~len =
  check t addr len;
  check_slice buf pos len "write_sub";
  let p = ref 0 in
  while !p < len do
    let a = addr + !p in
    let off = Addr.offset a in
    let chunk = min (len - !p) (Addr.page_size - off) in
    let page = frame_for t (Addr.page_of a) in
    Bytes.blit buf (pos + !p) page off chunk;
    p := !p + chunk
  done

let read_into t addr buf ~pos ~len =
  check t addr len;
  check_slice buf pos len "read_into";
  let p = ref 0 in
  while !p < len do
    let a = addr + !p in
    let off = Addr.offset a in
    let chunk = min (len - !p) (Addr.page_size - off) in
    (match Hashtbl.find_opt t.frames (Addr.page_of a) with
    | None -> Bytes.fill buf (pos + !p) chunk '\000'
    | Some page -> Bytes.blit page off buf (pos + !p) chunk);
    p := !p + chunk
  done

let read_u64 t addr =
  let b = read_bytes t addr 8 in
  Bytes.get_int64_le b 0

let write_u64 t addr v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  write_bytes t addr b

let blit t ~src ~dst ~len = write_bytes t dst (read_bytes t src len)

let fill t ~addr ~len c =
  check t addr len;
  write_bytes t addr (Bytes.make len c)

let read_page t ~frame = read_bytes t (Addr.base_of_page frame) Addr.page_size

let write_page t ~frame data =
  if Bytes.length data <> Addr.page_size then
    invalid_arg "Phys_mem.write_page: not a whole page";
  write_bytes t (Addr.base_of_page frame) data

let zero_page t ~frame =
  observe t frame;
  Hashtbl.remove t.frames frame
let touched_frames t = Hashtbl.length t.frames
