(** Central table of simulated cycle costs.

    Every constant is either taken directly from the paper (Sec. 4.2 gives
    hypercall ~880 and syscall ~120 cycles on the authors' EPYC 7601; Table 1
    and Table 2 give end-to-end switch and exception costs) or calibrated so
    that the composed paths land near the paper's measurements.  Costs are
    carried in a record so tests and ablation benches can run with modified
    models. *)

type t = {
  (* --- transition primitives (Sec. 4.2) --- *)
  hypercall : int;  (** VMX non-root -> root -> non-root round trip (~880). *)
  syscall_ring : int;  (** SYSCALL/SYSRET ring switch (~120). *)
  vmexit : int;  (** one-way trap from guest to monitor. *)
  vminject : int;  (** event injection from monitor into the guest. *)
  (* --- world-switch state handling, calibrated against Table 1 --- *)
  enter_extra_gu : int;
  exit_extra_gu : int;
  enter_extra_hu : int;
  exit_extra_hu : int;
  enter_extra_p : int;
  exit_extra_p : int;
  (* --- SDK software path (uRTS+tRTS dispatch, fixed part) --- *)
  sdk_ecall_soft_gu : int;
  sdk_ecall_soft_hu : int;
  sdk_ecall_soft_p : int;
  sdk_ocall_soft_gu : int;
  sdk_ocall_soft_hu : int;
  sdk_ocall_soft_p : int;
  (* --- memory system --- *)
  mem_copy_per_byte_num : int;  (** numerator of cycles/byte for copies... *)
  mem_copy_per_byte_den : int;  (** ...as a rational (num/den). *)
  cache_hit : int;  (** LLC hit latency. *)
  cache_miss_dram : int;  (** DRAM access on an LLC miss (random pattern). *)
  dram_seq_miss : int;  (** effective miss cost under sequential prefetch. *)
  sme_seq_extra : int;  (** AES-XTS latency left visible under prefetch. *)
  mee_seq_extra : int;  (** MEE latency under prefetch (tree nodes cached). *)
  sme_miss_extra : int;  (** extra per-line cost of AES-XTS (AMD SME). *)
  mee_miss_extra : int;  (** extra per-line cost of AES-CTR + MAC (Intel). *)
  mee_tree_level : int;  (** per-level Merkle tree load on a random miss
      (uncached tree nodes: a DRAM access each). *)
  mee_tree_levels : int;  (** integrity-tree depth walked on a miss. *)
  epc_swap_page : int;  (** SGX EWB/ELDU software paging, per 4 KB page. *)
  tlb_hit : int;
  pt_level_access : int;  (** one page-table-entry load from memory. *)
  tlb_flush : int;
  tlb_shootdown : int;  (** INVLPG-style single-entry invalidation. *)
  (* --- exceptions (calibrated against Table 2) --- *)
  idt_dispatch : int;  (** in-enclave IDT vectoring (P-Enclave). *)
  iret : int;
  os_signal_delivery : int;  (** primary-OS two-phase signal upcall. *)
  aex_save : int;  (** asynchronous enclave exit: SSA state save. *)
  eresume_soft : int;  (** SDK-side ERESUME bookkeeping. *)
  exception_classify : int;  (** monitor-side exception triage on a trap. *)
  pf_handler_work : int;  (** body of a registered #PF handler (GC test). *)
  pte_update : int;  (** writing one PTE. *)
  monitor_pf_dispatch : int;  (** RustMonitor #PF routing before redelivery. *)
  pf_commit_handle : int;  (** demand-commit of a fresh EPC page (EDMM). *)
  ud_handler_work : int;  (** body of a trivial #UD handler (skip insn). *)
  ms_copy_in_per_kb : int;  (** uRTS copy into the marshalling buffer. *)
  ms_copy_out_per_kb : int;  (** copy back out of the marshalling buffer. *)
  sgx_ecall : int;  (** Table 1: measured SGX ECALL (14,432). *)
  sgx_ocall : int;  (** Table 1: measured SGX OCALL (12,432). *)
  sgx_eenter : int;  (** EENTER microcode cost on SGX silicon. *)
  sgx_eexit : int;
  sgx_aex : int;  (** SGX AEX microcode (SSA spill + flush). *)
  sgx_eresume : int;
  (* --- OS-level costs (Table 3 baselines, in cycles at 2.2 GHz) --- *)
  os_null_syscall : int;
  os_fork : int;
  os_ctxsw : int;
  os_mmap : int;
  os_page_fault : int;
  os_af_unix : int;
  (* --- crypto engines (software emulation inside the monitor) --- *)
  switchless_post : int;  (** enqueue + fence into the shared ring. *)
  switchless_wait : int;  (** expected wait for the worker to pick up and
      complete a small request (poll interval / 2 + execution). *)
  switchless_dispatch : int;  (** untrusted worker-side dispatch. *)
  batch_item_dispatch : int;
      (** batched call ring: in-enclave dispatch of one ring slot past the
          first (bounds-check + table lookup), amortising the world switch
          across the batch. *)
  ring_slot_dispatch : int;
      (** arena ring: the persistent in-enclave worker's per-slot dispatch.
          Cheaper than [batch_item_dispatch] because slot boundaries sit at
          a fixed, pre-validated stride — one bounds check, one table
          lookup, one indirect call; no variable-length frame walk. *)
  sha256_per_block : int;  (** per 64-byte block. *)
  aes_per_block : int;  (** per 16-byte block. *)
  tpm_command : int;  (** latency of one TPM command over the bus. *)
}

val default : t
(** Calibrated model: reproduces the paper's Tables 1-3 within a few
    percent and the figure shapes. *)

val copy_cost : t -> int -> int
(** [copy_cost m bytes] is the cycle cost of a [bytes]-long memory copy. *)

val no_overhead : t
(** A model in which everything costs zero; used to express the
    "no security protection" baselines. *)
