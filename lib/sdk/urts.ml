open Hyperenclave_hw
open Hyperenclave_crypto
open Hyperenclave_monitor
open Hyperenclave_os

type config = {
  mode : Sgx_types.operation_mode;
  debug : bool;
  elrange_pages : int;
  code_pages : int;
  data_pages : int;
  tcs_count : int;
  nssa : int;
  ms_bytes : int;
  code_seed : string;
  isv_prod_id : int;
  isv_svn : int;
}

let default_config mode =
  {
    mode;
    debug = false;
    elrange_pages = 4096; (* 16 MiB of enclave virtual range *)
    code_pages = 8;
    data_pages = 8;
    tcs_count = 2;
    nssa = 2;
    ms_bytes = 256 * 1024;
    code_seed = "hyperenclave-default-app";
    isv_prod_id = 1;
    isv_svn = 1;
  }

exception Enclave_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Enclave_error m)) fmt
let elbase = 0x1_0000_0000
let aep = 0x40_1000

(* AEX preemption timer, armed by the scheduler for the duration of a
   slice: once the shared clock passes [deadline] mid-ECALL, the next
   compute step AEXes out (SSA spill), lets the OS run, and ERESUMEs. *)
type timer = {
  quantum : int;
  mutable deadline : int;
  on_preempt : (unit -> unit) option;
}

type t = {
  kmod : Kmod.t;
  proc : Process.t;
  rng : Rng.t;
  enclave : Enclave.t;
  config : config;
  ms_base : int;
  ms_size : int;
  ms_out_region : int;  (** page-aligned start of the ECALL-output region *)
  ms_ocall_region : int;  (** page-aligned start of the ocalloc arena *)
  ecalls : (int, Tenv.handler) Hashtbl.t;
  ocalls : (int, bytes -> bytes) Hashtbl.t;
  heap_base_va : int;
  mutable heap_cursor : int;
  mutable ocalloc_cursor : int;
  mutable active_tcs : Sgx_types.tcs option;
  reserved_tcs : (int, unit) Hashtbl.t;
      (** TCSs parked on an in-flight OCALL, keyed by [tcs_vpn]: not busy
          monitor-side (the thread EEXITed) but owed an ORET re-entry, so
          no other entry may take them. *)
  mutable timer : timer option;
}

let monitor t = Kmod.monitor t.kmod
let kernel t = Kmod.kernel t.kmod
let clock t = Kernel.clock (kernel t)
let cost t = Kernel.cost (kernel t)

let count t name =
  Hyperenclave_obs.Telemetry.incr (Monitor.telemetry (monitor t)) name

module Fault = Hyperenclave_fault.Fault

let backoff t attempt =
  Cycles.tick (clock t) (World_switch.retry_backoff_cost (cost t) ~attempt)

(* Marshalling-buffer regions: [0, 1/2) ECALL inputs, [1/2, 3/4) ECALL
   outputs, [3/4, 1) OCALL allocations (sgx_ocalloc arena).  The splits
   are fixed at build time, rounded UP to page boundaries — computing
   them per call with truncating division let odd sizes overlap the
   output region with the ocalloc arena's boundary check. *)
let ms_out_off t = t.ms_out_region
let ms_ocall_off t = t.ms_ocall_region

(* Raw app-side access to the pinned marshalling buffer through the
   process mapping; cycle cost is charged explicitly by the Edge rates. *)
let ms_raw rw t ~off data_or_len =
  (* Fault site before the copy touches the buffer: a fault here is a
     transfer that never started, so re-running the edge call re-stages
     the same bytes. *)
  Fault.point
    (match rw with `Write -> Edge.fault_site_in | `Read -> Edge.fault_site_out);
  let mem = Kernel.mem (kernel t) in
  let run ~va ~len ~f =
    let pos = ref 0 in
    while !pos < len do
      let a = va + !pos in
      let chunk = min (len - !pos) (Addr.page_size - Addr.offset a) in
      let frame =
        match Kernel.resolve_frame (kernel t) t.proc ~vpn:(Addr.page_of a) with
        | Some frame -> frame
        | None -> fail "marshalling page 0x%x not resident" (Addr.page_of a)
      in
      f (Addr.base_of_page frame lor Addr.offset a) !pos chunk;
      pos := !pos + chunk
    done
  in
  match (rw, data_or_len) with
  | `Write, `Data data ->
      run ~va:(t.ms_base + off) ~len:(Bytes.length data) ~f:(fun pa pos chunk ->
          Phys_mem.write_bytes mem pa (Bytes.sub data pos chunk));
      Bytes.empty
  | `Read, `Len len ->
      let out = Bytes.create len in
      run ~va:(t.ms_base + off) ~len ~f:(fun pa pos chunk ->
          Bytes.blit (Phys_mem.read_bytes mem pa chunk) 0 out pos chunk);
      out
  | `Write, `Len _ | `Read, `Data _ -> assert false

let ms_raw_write t ~off data = ignore (ms_raw `Write t ~off (`Data data))
let ms_raw_read t ~off ~len = ms_raw `Read t ~off (`Len len)

(* Slice variants over caller-owned buffers: the same per-page walk as
   [ms_raw], but the bytes land in (or come from) a reusable image — the
   arena rings recycle theirs across flushes, so the steady-state flush
   path moves payloads without allocating.  [ms_slice_nofault] is the
   bare walk; the [ms_raw_*] wrappers add the edge fault site the
   marshalling copies fire. *)
let ms_slice_nofault rw t ~off buf ~pos ~len =
  let mem = Kernel.mem (kernel t) in
  let va = t.ms_base + off in
  let p = ref 0 in
  while !p < len do
    let a = va + !p in
    let chunk = min (len - !p) (Addr.page_size - Addr.offset a) in
    let frame =
      match Kernel.resolve_frame (kernel t) t.proc ~vpn:(Addr.page_of a) with
      | Some frame -> frame
      | None -> fail "marshalling page 0x%x not resident" (Addr.page_of a)
    in
    let pa = Addr.base_of_page frame lor Addr.offset a in
    (match rw with
    | `Write -> Phys_mem.write_sub mem pa buf ~pos:(pos + !p) ~len:chunk
    | `Read -> Phys_mem.read_into mem pa buf ~pos:(pos + !p) ~len:chunk);
    p := !p + chunk
  done

let ms_raw_write_slice t ~off buf ~pos ~len =
  Fault.point Edge.fault_site_in;
  ms_slice_nofault `Write t ~off buf ~pos ~len

let ms_raw_read_into t ~off buf ~pos ~len =
  Fault.point Edge.fault_site_out;
  ms_slice_nofault `Read t ~off buf ~pos ~len

(* --- switchless ring framing ------------------------------------------------ *)

(* Ring slot framing in the marshalling buffer.  Requests are staged
   back-to-back as [count][id, len, payload]*; replies reuse the same
   layout, echoing each request id.  Everything is length-prefixed with
   8-byte little-endian words so the reader can validate bounds before
   touching a slot.  The ECALL ring stages in the input region and
   drains from the output region; the OCALL reply ring lives in the
   ocalloc arena. *)
let max_batch = 16

(* The frame is assembled with one exact-size allocation and one blit
   per slot — the payload travels straight from the caller's buffer into
   the frame that lands in the pinned region. *)
let frame_requests reqs =
  let total =
    List.fold_left (fun acc (_, d) -> acc + 16 + Bytes.length d) 8 reqs
  in
  let out = Bytes.create total in
  Bytes.set_int64_le out 0 (Int64.of_int (List.length reqs));
  let off = ref 8 in
  List.iter
    (fun (id, data) ->
      let len = Bytes.length data in
      Bytes.set_int64_le out !off (Int64.of_int id);
      Bytes.set_int64_le out (!off + 8) (Int64.of_int len);
      Bytes.blit data 0 out (!off + 16) len;
      off := !off + 16 + len)
    reqs;
  out

let frame_replies = frame_requests

let parse_frames ~what raw =
  let len = Bytes.length raw in
  let word off =
    if off + 8 > len then fail "%s: truncated ring frame at %d" what off;
    Int64.to_int (Bytes.get_int64_le raw off)
  in
  let count = word 0 in
  if count < 0 || count > max_batch then
    fail "%s: ring frame count %d out of range" what count;
  let off = ref 8 in
  List.init count (fun _ ->
      let id = word !off in
      let body_len = word (!off + 8) in
      (* Bounds check in subtraction form: the addition
         [!off + 16 + body_len] overflows for a corrupt near-max_int
         length word read back from the shared region, passes the
         comparison, and lets [Bytes.sub] escape as a bare
         [Invalid_argument].  [len - !off - 16] cannot overflow because
         both operands are already validated offsets into [raw]. *)
      if body_len < 0 || body_len > len - !off - 16 then
        fail "%s: ring slot overruns the frame" what;
      let body = Bytes.sub raw (!off + 16) body_len in
      off := !off + 16 + body_len;
      (id, body))

(* --- loader ---------------------------------------------------------------- *)

let code_page_content config index =
  (* Deterministic "text section" derived from the code identity; the
     ecall table participates through the seed the caller chooses. *)
  let block = Sha256.digest_string (Printf.sprintf "%s:code:%d" config.code_seed index) in
  let page = Bytes.create Addr.page_size in
  for i = 0 to (Addr.page_size / 32) - 1 do
    Bytes.blit block 0 page (i * 32) 32
  done;
  page

let layout config =
  (* Page indices within ELRANGE. *)
  let code_first = 0 in
  let data_first = code_first + config.code_pages in
  let tcs_first = data_first + config.data_pages in
  let ssa_first = tcs_first + config.tcs_count in
  let heap_first = ssa_first + (config.tcs_count * config.nssa) in
  (code_first, data_first, tcs_first, ssa_first, heap_first)

let create ~kmod ~proc ~rng ~signer ~config ~ecalls ~ocalls =
  let code_first, data_first, tcs_first, ssa_first, heap_first = layout config in
  if heap_first >= config.elrange_pages then fail "create: ELRANGE too small";
  let secs =
    {
      Sgx_types.base_va = elbase;
      size = config.elrange_pages * Addr.page_size;
      attributes = { Sgx_types.debug = config.debug; mode = config.mode; xfrm = 3 };
      ssa_frame_pages = 1;
    }
  in
  let enclave = Kmod.ioctl_create_enclave kmod secs in
  let base_vpn = Addr.page_of elbase in
  let pages = ref [] in
  let add ~idx ~content ~perms ~page_type =
    let vpn = base_vpn + idx in
    Kmod.ioctl_add_page kmod enclave ~vpn ~content ~perms ~page_type;
    pages :=
      { Measure.vpn; perms; page_type; content = Measure.page_padded content }
      :: !pages
  in
  for i = 0 to config.code_pages - 1 do
    add ~idx:(code_first + i)
      ~content:(code_page_content config i)
      ~perms:Page_table.rx ~page_type:Sgx_types.Pt_reg
  done;
  for i = 0 to config.data_pages - 1 do
    add ~idx:(data_first + i) ~content:Bytes.empty ~perms:Page_table.rw
      ~page_type:Sgx_types.Pt_reg
  done;
  for i = 0 to config.tcs_count - 1 do
    let vpn = base_vpn + tcs_first + i in
    let entry_va = elbase in
    let ssa_base_vpn = base_vpn + ssa_first + (i * config.nssa) in
    Kmod.ioctl_add_tcs kmod enclave ~vpn ~entry_va ~nssa:config.nssa
      ~ssa_base_vpn;
    pages :=
      {
        Measure.vpn;
        perms = Page_table.rw;
        page_type = Sgx_types.Pt_tcs;
        content =
          Measure.page_padded
            (Bytes.of_string
               (Printf.sprintf "tcs:%x:%d:%x" entry_va config.nssa ssa_base_vpn));
      }
      :: !pages;
    for s = 0 to config.nssa - 1 do
      add
        ~idx:(ssa_first + (i * config.nssa) + s)
        ~content:Bytes.empty ~perms:Page_table.rw ~page_type:Sgx_types.Pt_ssa
    done
  done;
  (* sgx_sign: predict the measurement offline and sign it. *)
  let expected = Measure.expected secs (List.rev !pages) in
  let sigstruct =
    Sgx_types.make_sigstruct ~vendor:signer ~enclave_hash:expected
      ~isv_prod_id:config.isv_prod_id ~isv_svn:config.isv_svn
  in
  (* Marshalling buffer: mmap + MAP_POPULATE, then the pin ioctl.  The
     size must be page-aligned and large enough to split into the three
     page-rounded regions (inputs / outputs / ocalloc arena). *)
  if config.ms_bytes <= 0 || not (Addr.is_aligned config.ms_bytes) then
    fail "create: ms_bytes (%d) must be a positive multiple of the page size"
      config.ms_bytes;
  if config.ms_bytes < 4 * Addr.page_size then
    fail "create: ms_bytes (%d) too small to split into regions (< 4 pages)"
      config.ms_bytes;
  let ms_size = config.ms_bytes in
  let ms_base = Kernel.mmap (Kmod.kernel kmod) proc ~len:ms_size ~populate:true in
  Kmod.ioctl_pin_range kmod proc ~va:ms_base ~len:ms_size;
  Kmod.ioctl_init_enclave kmod proc enclave ~sigstruct ~ms_base ~ms_size;
  let t =
    {
      kmod;
      proc;
      rng;
      enclave;
      config;
      ms_base;
      ms_size;
      ms_out_region = Addr.align_up (ms_size / 2);
      ms_ocall_region = Addr.align_up (ms_size * 3 / 4);
      ecalls = Hashtbl.create 16;
      ocalls = Hashtbl.create 16;
      heap_base_va = elbase + (heap_first * Addr.page_size);
      heap_cursor = elbase + (heap_first * Addr.page_size);
      ocalloc_cursor = 0;
      active_tcs = None;
      reserved_tcs = Hashtbl.create 4;
      timer = None;
    }
  in
  List.iter (fun (id, h) -> Hashtbl.replace t.ecalls id h) ecalls;
  List.iter (fun (id, h) -> Hashtbl.replace t.ocalls id h) ocalls;
  t

(* --- trusted environment --------------------------------------------------- *)

(* SGX "TCS busy" semantics: an entry may only take a TCS that is
   neither entered (busy monitor-side) nor parked on an in-flight OCALL
   awaiting its ORET.  When the pool is exhausted the entry is refused
   with a typed error — silently reusing a busy TCS would clobber its
   SSA state.  The pool walk is deterministic (creation order). *)
let tcs_available t (tcs : Sgx_types.tcs) =
  (not tcs.Sgx_types.busy) && not (Hashtbl.mem t.reserved_tcs tcs.Sgx_types.tcs_vpn)

let free_tcs_count t =
  List.length (List.filter (tcs_available t) t.enclave.Enclave.tcs_list)

let take_tcs t =
  match List.find_opt (tcs_available t) t.enclave.Enclave.tcs_list with
  | Some tcs -> tcs
  | None ->
      fail "TCS busy: no free TCS in enclave %d (%d total, all entered or parked on an OCALL)"
        t.enclave.Enclave.id (List.length t.enclave.Enclave.tcs_list)

let rec make_tenv t : Tenv.t =
  let m = monitor t in
  let enc = t.enclave in
  {
    Tenv.mode = t.config.mode;
    clock = clock t;
    cost = cost t;
    read = (fun ~va ~len -> Monitor.enclave_read m enc ~va ~len);
    write = (fun ~va data -> Monitor.enclave_write m enc ~va data);
    touch = (fun ~va ~write -> Monitor.touch m enc ~va ~write);
    malloc =
      (fun size ->
        let aligned = (size + 15) land lnot 15 in
        let va = t.heap_cursor in
        if va + aligned > elbase + enc.Enclave.secs.Sgx_types.size then
          fail "enclave heap exhausted";
        t.heap_cursor <- t.heap_cursor + aligned;
        va);
    heap_base = t.heap_base_va;
    ocall = (fun ~id ?data direction -> do_ocall t ~id ?data direction);
    ocall_switchless = (fun ~id ?data () -> do_ocall_switchless t ~id ?data ());
    ocall_ring = (fun ~reqs () -> do_ocall_ring t ~reqs ());
    compute =
      (fun cycles ->
        Cycles.tick (clock t) cycles;
        poll_timer t);
    getkey = (fun name -> Monitor.egetkey m enc name);
    report = (fun ~report_data -> Monitor.ereport m enc ~report_data);
    verify_report = (fun report -> Monitor.verify_report m report);
    seal =
      (fun ?aad data ->
        let key = Monitor.egetkey m enc Sgx_types.Seal_key_mrenclave in
        let nonce = Rng.bytes t.rng 12 in
        Authenc.encode (Authenc.seal ~key ?aad ~nonce data));
    unseal =
      (fun blob ->
        let key = Monitor.egetkey m enc Sgx_types.Seal_key_mrenclave in
        Authenc.unseal ~key (Authenc.decode blob));
    seal_versioned =
      (fun data ->
        (* Bind the blob to a fresh counter value: all older blobs die. *)
        let version = Monitor.counter_increment_for m enc in
        let key = Monitor.egetkey m enc Sgx_types.Seal_key_mrenclave in
        let aad = Bytes.of_string (Printf.sprintf "version:%d" version) in
        Authenc.encode
          (Authenc.seal ~key ~aad ~nonce:(Rng.bytes t.rng 12) data));
    unseal_versioned =
      (fun blob ->
        let key = Monitor.egetkey m enc Sgx_types.Seal_key_mrenclave in
        let sealed = Authenc.decode blob in
        let current = Monitor.counter_read_for m enc in
        let expected = Bytes.of_string (Printf.sprintf "version:%d" current) in
        if not (Bytes.equal sealed.Authenc.aad expected) then
          failwith "stale sealed data";
        Authenc.unseal ~key sealed);
    set_page_perms =
      (fun ~vpn ~perms ~grant ->
        match t.config.mode with
        | Sgx_types.P -> Monitor.penclave_set_perms m enc ~vpn ~perms
        | Sgx_types.GU | Sgx_types.HU ->
            if grant then Monitor.emodpe m enc ~vpn ~perms
            else Monitor.emodpr m enc ~vpn ~perms);
    register_exception_handler =
      (fun ~vector handler -> Monitor.register_handler m enc ~vector handler);
    raise_exception = (fun vector -> simulate_exception t vector);
    interrupt_now = (fun () -> simulate_interrupt t);
    arm_interrupt_guard =
      (fun ~window_cycles ~threshold ->
        Monitor.arm_interrupt_guard m enc ~window_cycles ~threshold);
    interrupt_alarms = (fun () -> Monitor.interrupt_alarms enc);
    ms_read =
      (fun ~off ~len -> Monitor.enclave_read m enc ~va:(t.ms_base + off) ~len);
    ms_write =
      (fun ~off data -> Monitor.enclave_write m enc ~va:(t.ms_base + off) data);
    ms_base = t.ms_base;
    ms_size = t.ms_size;
    enclave_id = enc.Enclave.id;
  }

(* --- OCALL: exit, run untrusted handler, re-enter ------------------------- *)

and do_ocall t ~id ?(data = Bytes.empty) direction =
  let m = monitor t in
  let c = cost t in
  count t "sdk.ocall";
  Cycles.tick (clock t) (World_switch.sdk_ocall_soft c t.config.mode);
  let handler =
    match Hashtbl.find_opt t.ocalls id with
    | Some h -> h
    | None -> fail "unknown OCALL %d" id
  in
  (* sgx_ocalloc redirected into the marshalling buffer: the enclave
     writes the arguments straight there — no extra copy (Sec. 5.3). *)
  let arg_off = ms_ocall_off t + t.ocalloc_cursor in
  let len = Bytes.length data in
  if len > 0 then begin
    if arg_off + len > t.ms_size then fail "ocalloc arena exhausted";
    Monitor.enclave_write m t.enclave ~va:(t.ms_base + arg_off) data
  end;
  t.ocalloc_cursor <- t.ocalloc_cursor + ((len + 15) land lnot 15);
  (* The OCALL parks its TCS: sgx_ocall keeps the thread bound to the
     TCS across the exit, and ORET must re-enter on that same one.
     Reserving it for the duration of the untrusted handler is what
     gives a re-entrant ECALL issued from the handler the SGX "TCS
     busy" semantics (it must take a different TCS or fail typed)
     instead of silently clobbering the parked SSA state. *)
  let parked_tcs =
    match t.active_tcs with
    | Some tcs -> tcs
    | None -> fail "OCALL outside an ECALL"
  in
  Monitor.eexit m t.enclave ~target_va:aep;
  t.active_tcs <- None;
  Hashtbl.replace t.reserved_tcs parked_tcs.Sgx_types.tcs_vpn ();
  let unpark () = Hashtbl.remove t.reserved_tcs parked_tcs.Sgx_types.tcs_vpn in
  t.enclave.Enclave.stats.Enclave.ocalls <-
    t.enclave.Enclave.stats.Enclave.ocalls + 1;
  let args = if len > 0 then ms_raw_read t ~off:arg_off ~len else Bytes.empty in
  let reply = try handler args with exn -> unpark (); raise exn in
  let reply_off = arg_off in
  (* The reply reuses the request's ocalloc slot but may be larger than
     the request was: bound it against the arena too, or an untrusted
     handler's oversized reply runs off the end of the pinned buffer. *)
  if reply_off + Bytes.length reply > t.ms_size then begin
    unpark ();
    fail "OCALL %d reply (%d bytes) overflows the ocalloc arena" id
      (Bytes.length reply)
  end;
  if Bytes.length reply > 0 then ms_raw_write t ~off:reply_off reply;
  (* ORET: re-enter at the OCALL return stub on the parked TCS. *)
  unpark ();
  Monitor.eenter m t.enclave ~tcs:parked_tcs ~return_va:aep;
  t.enclave.Enclave.stats.Enclave.ecalls <-
    t.enclave.Enclave.stats.Enclave.ecalls - 1;
  t.active_tcs <- Some parked_tcs;
  let out =
    if Bytes.length reply > 0 then
      Monitor.enclave_read m t.enclave ~va:(t.ms_base + reply_off)
        ~len:(Bytes.length reply)
    else Bytes.empty
  in
  t.ocalloc_cursor <- max 0 (t.ocalloc_cursor - ((len + 15) land lnot 15));
  ignore direction;
  out

(* OCALL reply ring: the batched mirror of the ECALL ring.  K replies
   are framed in the ocalloc arena under one SDK soft path and one
   EEXIT; the untrusted side drains every slot, and a single batched
   ORET ([Kmod.ioctl_obatch] -> OBATCH hypercall) re-enters the parked
   TCS — the per-reply EENTER of [do_ocall] is paid once for the whole
   ring. *)
and do_ocall_ring t ~reqs () =
  let m = monitor t in
  let c = cost t in
  let k = List.length reqs in
  if k = 0 then []
  else if k > max_batch then
    fail "ocall_ring: %d requests exceed the ring capacity (%d)" k max_batch
  else begin
    List.iter
      (fun (id, _) ->
        if not (Hashtbl.mem t.ocalls id) then fail "unknown OCALL %d" id)
      reqs;
    count t "sdk.ocall_ring";
    Hyperenclave_obs.Telemetry.add (Monitor.telemetry m) "sdk.ocall_ringed" k;
    Hyperenclave_obs.Telemetry.observe
      (Monitor.telemetry m)
      "ring.oret_occupancy" k;
    Cycles.tick (clock t)
      (World_switch.sdk_ocall_soft c t.config.mode
      + World_switch.batch_dispatch_cost c ~k);
    (* sgx_ocalloc-style: the framed ring is written straight into the
       pinned arena — the enclave-side staging is the frame. *)
    let staged = frame_requests reqs in
    let arg_off = ms_ocall_off t + t.ocalloc_cursor in
    if arg_off + Bytes.length staged > t.ms_size then
      fail "ocall_ring: %d bytes of requests exhaust the ocalloc arena"
        (Bytes.length staged);
    Monitor.enclave_write m t.enclave ~va:(t.ms_base + arg_off) staged;
    let reserve = (Bytes.length staged + 15) land lnot 15 in
    t.ocalloc_cursor <- t.ocalloc_cursor + reserve;
    let release () = t.ocalloc_cursor <- max 0 (t.ocalloc_cursor - reserve) in
    let parked_tcs =
      match t.active_tcs with
      | Some tcs -> tcs
      | None ->
          release ();
          fail "OCALL outside an ECALL"
    in
    Monitor.eexit m t.enclave ~target_va:aep;
    t.active_tcs <- None;
    Hashtbl.replace t.reserved_tcs parked_tcs.Sgx_types.tcs_vpn ();
    let unpark () = Hashtbl.remove t.reserved_tcs parked_tcs.Sgx_types.tcs_vpn in
    t.enclave.Enclave.stats.Enclave.ocalls <-
      t.enclave.Enclave.stats.Enclave.ocalls + k;
    let framed_len =
      try oret_batch t ~arg_off ~staged_len:(Bytes.length staged)
      with exn ->
        unpark ();
        release ();
        raise exn
    in
    (* Batched ORET crossing: one ioctl + OBATCH hypercall re-enters the
       parked TCS for all K replies. *)
    unpark ();
    Kmod.ioctl_obatch t.kmod ~enclave:t.enclave ~tcs:parked_tcs ~return_va:aep
      ~slots:k;
    t.enclave.Enclave.stats.Enclave.ecalls <-
      t.enclave.Enclave.stats.Enclave.ecalls - 1;
    t.active_tcs <- Some parked_tcs;
    let drained =
      parse_frames ~what:"ocall_ring(trusted)"
        (Monitor.enclave_read m t.enclave ~va:(t.ms_base + arg_off)
           ~len:framed_len)
    in
    release ();
    List.map snd drained
  end

(* Untrusted half of the reply ring: drain every staged slot through its
   handler and write the reply frame back over the request frame in
   place.  Runs entirely outside the enclave (the TCS is parked), so a
   handler exception propagates to [do_ocall_ring]'s cleanup.  Returns
   the reply frame length for the trusted side to read back. *)
and oret_batch t ~arg_off ~staged_len =
  let slots =
    parse_frames ~what:"ocall_ring(untrusted)"
      (ms_raw_read t ~off:arg_off ~len:staged_len)
  in
  let replies =
    List.map
      (fun (id, body) ->
        (* An unregistered id in a drained slot must surface as the typed
           refusal, not a bare [Not_found]: the frame came back from the
           shared region, so its ids are untrusted input. *)
        match Hashtbl.find_opt t.ocalls id with
        | Some handler -> (id, handler body)
        | None -> fail "unknown OCALL %d" id)
      slots
  in
  let framed = frame_replies replies in
  if arg_off + Bytes.length framed > t.ms_size then
    fail "ocall_ring: %d bytes of replies overflow the ocalloc arena"
      (Bytes.length framed);
  ms_raw_write t ~off:arg_off framed;
  Bytes.length framed

(* Switchless OCALL: the request and reply travel through the ocalloc
   arena like a regular OCALL's arguments, but no world switch happens —
   the enclave posts to the ring and an untrusted worker thread picks the
   request up.  We charge the enclave the post + expected wait and run the
   handler inline on the worker's behalf. *)
and do_ocall_switchless t ~id ?(data = Bytes.empty) () =
  let m = monitor t in
  let c = cost t in
  count t "sdk.ocall_switchless";
  let handler =
    match Hashtbl.find_opt t.ocalls id with
    | Some h -> h
    | None -> fail "unknown OCALL %d" id
  in
  let arg_off = ms_ocall_off t + t.ocalloc_cursor in
  let len = Bytes.length data in
  if len > 0 then begin
    if arg_off + len > t.ms_size then fail "ocalloc arena exhausted";
    Monitor.enclave_write m t.enclave ~va:(t.ms_base + arg_off) data
  end;
  Cycles.tick (clock t) (c.Cost_model.switchless_post + c.Cost_model.switchless_wait);
  (* Worker side: dispatch + handler, reply into the same slot. *)
  Cycles.tick (clock t) c.Cost_model.switchless_dispatch;
  let args = if len > 0 then ms_raw_read t ~off:arg_off ~len else Bytes.empty in
  let reply = handler args in
  if arg_off + Bytes.length reply > t.ms_size then
    fail "OCALL %d reply (%d bytes) overflows the ocalloc arena" id
      (Bytes.length reply);
  if Bytes.length reply > 0 then ms_raw_write t ~off:arg_off reply;
  t.enclave.Enclave.stats.Enclave.ocalls <-
    t.enclave.Enclave.stats.Enclave.ocalls + 1;
  if Bytes.length reply > 0 then
    Monitor.enclave_read m t.enclave ~va:(t.ms_base + arg_off)
      ~len:(Bytes.length reply)
  else Bytes.empty

(* --- exception simulation --------------------------------------------------- *)

and simulate_exception t vector =
  let m = monitor t in
  match Monitor.deliver_exception m t.enclave vector with
  | `Handled_in_enclave -> ()
  | `Forwarded_to_os -> (
      let interrupted_tcs =
        match t.active_tcs with
        | Some tcs -> tcs
        | None -> fail "exception outside an ECALL"
      in
      (* Phase 1: the primary OS turns the fault into a signal to the
         uRTS... *)
      Kernel.deliver_signal (kernel t);
      (* Phase 2: ...which ECALLs the in-enclave internal handler on a
         fresh TCS. *)
      let vector_name = Sgx_types.vector_name vector in
      match Enclave.find_handler t.enclave ~vector:vector_name with
      | None -> fail "unhandled %s inside enclave %d" vector_name t.enclave.Enclave.id
      | Some handler ->
          Cycles.tick (clock t) (World_switch.sdk_ecall_soft (cost t) t.config.mode);
          let tcs = take_tcs t in
          Monitor.eenter m t.enclave ~tcs ~return_va:aep;
          let handled = handler vector in
          Monitor.eexit m t.enclave ~target_va:aep;
          if not handled then fail "in-enclave handler refused %s" vector_name;
          (* ERESUME back into the interrupted computation.  A transient
             fault leaves the SSA frame intact, so the uRTS re-issues the
             ERESUME after backoff, like the AEP retry loop in the real
             runtime. *)
          Fault.with_retries ~backoff:(backoff t) (fun () ->
              Monitor.eresume m t.enclave ~tcs:interrupted_tcs))

and simulate_interrupt t =
  let m = monitor t in
  match t.active_tcs with
  | None -> fail "interrupt outside an ECALL"
  | Some tcs ->
      Monitor.deliver_interrupt m t.enclave;
      (* The primary OS services the interrupt and schedules us back. *)
      Cycles.tick (clock t) (1_800 + (cost t).Cost_model.os_ctxsw);
      Fault.with_retries ~backoff:(backoff t) (fun () ->
          Monitor.eresume m t.enclave ~tcs)

(* Scheduler preemption: when the armed quantum expires mid-ECALL, the
   next trusted compute step takes a timer interrupt — a genuine AEX
   (SSA spill) + OS service + ERESUME through the monitor — and the
   deadline advances by one quantum.  Disarmed, this is one field read
   per compute call, so non-scheduled runs stay cycle-identical. *)
and poll_timer t =
  match t.timer with
  | None -> ()
  | Some timer ->
      if Cycles.now (clock t) >= timer.deadline && t.active_tcs <> None then begin
        count t "sched.aex_preempt";
        simulate_interrupt t;
        (match timer.on_preempt with Some f -> f () | None -> ());
        timer.deadline <- Cycles.now (clock t) + timer.quantum
      end

let arm_timer t ~quantum ?on_preempt () =
  if quantum <= 0 then fail "arm_timer: quantum must be positive";
  t.timer <- Some { quantum; deadline = Cycles.now (clock t) + quantum; on_preempt }

let disarm_timer t = t.timer <- None

(* --- ECALL ------------------------------------------------------------------ *)

(* A direct (non-marshalling) copy still translates the foreign pages it
   reads through the nested tables; charge the same per-page costs the
   marshalling path pays inside enclave_read/_write (first page cold in
   the paging-structure caches, the rest warm) so the Fig. 7 baseline is
   apples-to-apples. *)
let foreign_touch_cost (c : Cost_model.t) ~bytes =
  let pages = (bytes + Addr.page_size - 1) / Addr.page_size in
  if pages = 0 then 0
  else (12 * c.pt_level_access) + ((pages - 1) * ((4 * c.pt_level_access) + 2))

let lookup_ecall t id =
  match Hashtbl.find_opt t.ecalls id with
  | Some h -> h
  | None -> fail "unknown ECALL %d" id

let run_ecall t ~id ~data ~direction ~use_ms =
  let m = monitor t in
  let c = cost t in
  let handler = lookup_ecall t id in
  count t "sdk.ecall";
  Cycles.tick (clock t) (World_switch.sdk_ecall_soft c t.config.mode);
  let len = Bytes.length data in
  let carries_in =
    match direction with
    | Edge.In | Edge.In_out -> len > 0
    | Edge.Out | Edge.User_check -> false
  in
  (* App-side leg: stage the input in the marshalling buffer.  Inputs own
     only the [0, 1/2) region; anything larger would spill into the
     output region. *)
  if use_ms && carries_in then begin
    if len > ms_out_off t then
      fail "ECALL %d input (%d bytes) exceeds the marshalling input region" id
        len;
    ms_raw_write t ~off:0 data;
    match direction with
    | Edge.In -> Edge.charge_ms_in c (clock t) ~bytes:len
    | Edge.In_out -> Edge.charge_ms_in_out c (clock t) ~bytes:len
    | Edge.Out | Edge.User_check -> ()
  end;
  let tcs = take_tcs t in
  Monitor.eenter m t.enclave ~tcs ~return_va:aep;
  t.active_tcs <- Some tcs;
  let tenv = make_tenv t in
  (* Trusted-side leg: copy the staged input into enclave memory (the
     copy SGX-style direct access performs as well). *)
  let input =
    if carries_in then
      if use_ms then Monitor.enclave_read m t.enclave ~va:t.ms_base ~len
      else begin
        Cycles.tick (clock t)
          (Cost_model.copy_cost c len + foreign_touch_cost c ~bytes:len);
        data
      end
    else data
  in
  (* An exception escaping trusted code aborts the enclave call: exit
     cleanly (freeing the TCS and restoring the normal context) before
     propagating, as the real uRTS does for enclave crashes. *)
  let result =
    try
      (* Injected AEX storm: a burst of device interrupts lands right
         after EENTER; each one AEXes to the primary OS and is ERESUMEd
         before trusted code makes progress.  Nested injections at the
         switch sites unwind through the cleanup below. *)
      (match Fault.check "sdk.aex_storm" with
      | None -> ()
      | Some kind ->
          let bursts =
            match kind with Fault.Transient -> 2 | Fault.Permanent -> 6
          in
          for _ = 1 to bursts do
            simulate_interrupt t
          done;
          Fault.survived "sdk.aex_storm");
      handler tenv input
    with exn ->
      (match Monitor.current m with
      | Some running when running.Enclave.id = t.enclave.Enclave.id ->
          Monitor.eexit m t.enclave ~target_va:aep
      | Some _ | None -> ());
      t.active_tcs <- None;
      raise exn
  in
  let out_len = Bytes.length result in
  let carries_out =
    match direction with
    | Edge.Out | Edge.In_out -> out_len > 0
    | Edge.In | Edge.User_check -> false
  in
  (* The result owns only the [1/2, 3/4) output region; an oversized one
     would silently overwrite the ocalloc arena (still inside the
     marshalling buffer, so R-2 never trips).  The enclave is entered
     here, so exit cleanly before reporting the error. *)
  if carries_out && use_ms && out_len > ms_ocall_off t - ms_out_off t then begin
    Monitor.eexit m t.enclave ~target_va:aep;
    t.active_tcs <- None;
    fail "ECALL %d output (%d bytes) exceeds the marshalling output region" id
      out_len
  end;
  if carries_out then
    if use_ms then
      Monitor.enclave_write m t.enclave ~va:(t.ms_base + ms_out_off t) result
    else
      Cycles.tick (clock t)
        (Cost_model.copy_cost c out_len + foreign_touch_cost c ~bytes:out_len);
  Monitor.eexit m t.enclave ~target_va:aep;
  t.active_tcs <- None;
  if use_ms && carries_out then begin
    (match direction with
    | Edge.Out -> Edge.charge_ms_out c (clock t) ~bytes:out_len
    | Edge.In_out | Edge.In | Edge.User_check -> ());
    ms_raw_read t ~off:(ms_out_off t) ~len:out_len
  end
  else result

(* Bounded retry on transient injected faults.  Every fault site fires
   before its guarded operation mutates state and [run_ecall] exits the
   enclave cleanly on any escaping exception, so re-running the whole
   ECALL from the top is safe: inputs are re-staged, a fresh TCS is
   taken, and the EDMM/swap machinery re-faults pages on demand.
   Permanent faults and exhausted retries surface as the typed
   [Fault.Injected] error. *)
let ecall t ~id ?(data = Bytes.empty) ~direction () =
  Fault.with_retries ~backoff:(backoff t) (fun () ->
      run_ecall t ~id ~data ~direction ~use_ms:true)

let ecall_no_ms t ~id ?(data = Bytes.empty) ~direction () =
  Fault.with_retries ~backoff:(backoff t) (fun () ->
      run_ecall t ~id ~data ~direction ~use_ms:false)

(* --- switchless call ring: batched ECALLs ---------------------------------- *)

(* One world switch serves the whole batch (the paper's motivation for
   cheap HU switches, taken one step further): the SDK soft path and the
   EENTER/EEXIT pair are paid once, and each ring slot past the first
   costs only the in-enclave dispatch.  Inputs are staged before entry,
   replies drained after exit, so the enclave crosses the boundary
   exactly twice regardless of K. *)
let run_ecall_batch t reqs =
  let m = monitor t in
  let c = cost t in
  let k = List.length reqs in
  if k = 0 then []
  else if k > max_batch then
    fail "ecall_batch: %d requests exceed the ring capacity (%d)" k max_batch
  else begin
    List.iter (fun (id, _) -> ignore (lookup_ecall t id : Tenv.handler)) reqs;
    count t "sdk.ecall_batch";
    Hyperenclave_obs.Telemetry.add
      (Monitor.telemetry m)
      "sdk.ecall_batched" k;
    Hyperenclave_obs.Telemetry.observe
      (Monitor.telemetry m)
      "ring.batch_occupancy" k;
    Cycles.tick (clock t)
      (World_switch.sdk_ecall_soft c t.config.mode
      + World_switch.batch_dispatch_cost c ~k);
    let staged = frame_requests reqs in
    if Bytes.length staged > ms_out_off t then
      fail "ecall_batch: %d bytes of requests exceed the marshalling input region"
        (Bytes.length staged);
    ms_raw_write t ~off:0 staged;
    Edge.charge_ms_in c (clock t) ~bytes:(Bytes.length staged);
    let tcs = take_tcs t in
    Monitor.eenter m t.enclave ~tcs ~return_va:aep;
    t.active_tcs <- Some tcs;
    let tenv = make_tenv t in
    let cleanup_exit () =
      (match Monitor.current m with
      | Some running when running.Enclave.id = t.enclave.Enclave.id ->
          Monitor.eexit m t.enclave ~target_va:aep
      | Some _ | None -> ());
      t.active_tcs <- None
    in
    let replies =
      try
        (* Trusted drain loop: re-read the staged ring through the
           enclave mapping, dispatch each slot in order. *)
        let slots =
          parse_frames ~what:"ecall_batch(trusted)"
            (Monitor.enclave_read m t.enclave ~va:t.ms_base
               ~len:(Bytes.length staged))
        in
        List.map (fun (id, body) -> (id, (lookup_ecall t id) tenv body)) slots
      with exn ->
        cleanup_exit ();
        raise exn
    in
    let framed = frame_replies replies in
    if Bytes.length framed > ms_ocall_off t - ms_out_off t then begin
      cleanup_exit ();
      fail "ecall_batch: %d bytes of replies exceed the marshalling output region"
        (Bytes.length framed)
    end;
    Monitor.enclave_write m t.enclave ~va:(t.ms_base + ms_out_off t) framed;
    Monitor.eexit m t.enclave ~target_va:aep;
    t.active_tcs <- None;
    Edge.charge_ms_out c (clock t) ~bytes:(Bytes.length framed);
    let drained =
      parse_frames ~what:"ecall_batch(untrusted)"
        (ms_raw_read t ~off:(ms_out_off t) ~len:(Bytes.length framed))
    in
    List.map snd drained
  end

let ecall_batch t ~reqs () =
  Fault.with_retries ~backoff:(backoff t) (fun () -> run_ecall_batch t reqs)

(* --- arena ring: sharded, allocation-free switchless ECALL dispatch --------- *)

(* A fixed-stride slot ring per (tenant, shard) in the pinned marshalling
   buffer.  Unlike the variable-length [ecall_batch] frame, every slot is
   [16 + slot_bytes] wide, so a caller can seal and decrypt AEAD payloads
   *in place* — the ring slot is the envelope — and the staging images
   ([rbuf]/[pbuf]) are recycled across flushes: the steady-state path
   allocates nothing per request on the staging side.

   The dispatch is switchless: the plane publishes the staged image and a
   persistent in-enclave worker picks it up — no TCS take, no
   EENTER/EEXIT, no SDK soft path; the enclave pays one post fence plus
   the fixed-stride per-slot dispatch ([Cost_model.ring_slot_dispatch]).
   Two restrictions follow from having no entered TCS: ring handlers must
   not OCALL (they get the typed "OCALL outside an ECALL" refusal), and
   the AEX preemption timer never fires inside a ring dispatch.

   Layout: the ECALL-input region [0, ms_out_region) splits into [shards]
   equal request segments and the output region [ms_out_region,
   ms_ocall_region) into [shards] reply segments; shard [i] owns segment
   [i] of each.  A segment holds [count:8][slot_0][slot_1]... with
   slot_i = [id:8][len:8][payload:slot_bytes] at [8 + i*(16+slot_bytes)],
   replies echoing the same framing. *)
type ring = {
  rt : t;
  shard : int;
  req_off : int;  (* segment base in the input region *)
  rep_off : int;  (* segment base in the output region *)
  slots : int;
  slot_bytes : int;
  stride : int;  (* 16 + slot_bytes *)
  rbuf : bytes;  (* reusable staged-request image, header included *)
  pbuf : bytes;  (* reusable reply image, same framing *)
  mutable staged : int;
}

let ring_staged r = r.staged
let ring_capacity r = r.slots
let ring_slot_bytes r = r.slot_bytes
let ring_shard r = r.shard
let ring_buf r = r.rbuf
let ring_reply_buf r = r.pbuf
let ring_reset r = r.staged <- 0

let create_ring t ~shard ~shards ~slots ~slot_bytes =
  if shards <= 0 then fail "create_ring: shards (%d) must be positive" shards;
  if shard < 0 || shard >= shards then
    fail "create_ring: shard %d outside [0, %d)" shard shards;
  if slots <= 0 then fail "create_ring: slots (%d) must be positive" slots;
  if slot_bytes <= 0 || slot_bytes land 7 <> 0 then
    fail "create_ring: slot_bytes (%d) must be a positive multiple of 8"
      slot_bytes;
  let stride = 16 + slot_bytes in
  let need = 8 + (slots * stride) in
  let in_seg = (t.ms_out_region / shards) land lnot 7 in
  let out_seg = ((t.ms_ocall_region - t.ms_out_region) / shards) land lnot 7 in
  if need > in_seg || need > out_seg then
    fail
      "create_ring: %d slots x %d B need %d B per segment, but %d shards \
       leave %d B (in) / %d B (out) — raise ms_bytes"
      slots slot_bytes need shards in_seg out_seg;
  {
    rt = t;
    shard;
    req_off = shard * in_seg;
    rep_off = t.ms_out_region + (shard * out_seg);
    slots;
    slot_bytes;
    stride;
    rbuf = Bytes.create need;
    pbuf = Bytes.create need;
    staged = 0;
  }

(* Staging writes the slot header and hands the caller the payload offset
   into [ring_buf]: the caller (e.g. [Authenc.decrypt_into]) produces the
   payload directly in the slot. *)
let ring_stage r ~ecall_id ~len =
  if len < 0 || len > r.slot_bytes then
    fail "ring_stage: %d bytes exceed the %d-byte slot" len r.slot_bytes;
  if r.staged >= r.slots then fail "ring_stage: ring full (%d slots)" r.slots;
  let off = 8 + (r.staged * r.stride) in
  Bytes.set_int64_le r.rbuf off (Int64.of_int ecall_id);
  Bytes.set_int64_le r.rbuf (off + 8) (Int64.of_int len);
  r.staged <- r.staged + 1;
  off + 16

let ring_reply_slot r ~slot =
  if slot < 0 || slot >= r.staged then
    fail "ring reply slot %d outside the %d staged" slot r.staged;
  let off = 8 + (slot * r.stride) in
  let len = Int64.to_int (Bytes.get_int64_le r.pbuf (off + 8)) in
  if len < 0 || len > r.slot_bytes then
    fail "ring reply slot %d has a corrupt length word (%d)" slot len;
  (off + 16, len)

(* Untrusted half, request direction: the plane publishes the staged
   image into the shard's pinned request segment and pays the
   marshalling-in rate.  Runs on the caller's (plane) clock. *)
let ring_publish r =
  let t = r.rt in
  if r.staged > 0 then begin
    let len = 8 + (r.staged * r.stride) in
    Bytes.set_int64_le r.rbuf 0 (Int64.of_int r.staged);
    ms_raw_write_slice t ~off:r.req_off r.rbuf ~pos:0 ~len;
    Edge.charge_ms_in (cost t) (clock t) ~bytes:len
  end

(* The worker walks the segment's pages through its own mapping of the
   pinned region — one translation per page, no byte copy (User_check
   discipline).  [Monitor.touch] needs an entered TCS, which a
   switchless dispatch never has; pinned marshalling pages cannot be
   swapped out, so residency through the kernel mapping is the whole
   check. *)
let touch_segment t ~off ~len =
  let c = cost t in
  let first = Addr.page_of (t.ms_base + off) in
  let last = Addr.page_of (t.ms_base + off + len - 1) in
  for vpn = first to last do
    Cycles.tick (clock t) c.Cost_model.tlb_hit;
    match Kernel.resolve_frame (kernel t) t.proc ~vpn with
    | Some _ -> ()
    | None -> fail "ring segment page 0x%x not resident" vpn
  done

(* Trusted half: the persistent in-enclave worker.  It reads the slots
   where they lie (User_check discipline: the segment's pages are
   translated through the enclave's mapping — charged — but the payload
   is not copied into enclave memory first) and frames replies at the
   same stride in the shard's reply segment, storing the image through
   its own mapping of the pinned region.  The only per-slot byte
   movement charged is each handler's reply landing in its slot. *)
let run_ring_dispatch r =
  let t = r.rt in
  let m = monitor t in
  let c = cost t in
  let k = r.staged in
  if k > 0 then begin
    count t "sdk.ring_dispatch";
    Hyperenclave_obs.Telemetry.add (Monitor.telemetry m) "sdk.ring_slots" k;
    Hyperenclave_obs.Telemetry.observe
      (Monitor.telemetry m)
      "ring.shard_occupancy" k;
    let len = 8 + (k * r.stride) in
    Cycles.tick (clock t)
      (c.Cost_model.switchless_post + (k * c.Cost_model.ring_slot_dispatch));
    touch_segment t ~off:r.req_off ~len;
    let tenv = make_tenv t in
    (* The handlers run on the persistent in-enclave worker: enclave
       translation is current (so they can reach the demand-paged heap —
       a LibOS-backed service pages its VFS through it) but no TCS is
       taken and no EENTER is paid. *)
    Monitor.with_worker m t.enclave (fun () ->
        for slot = 0 to k - 1 do
          let off = 8 + (slot * r.stride) in
          let id = Int64.to_int (Bytes.get_int64_le r.rbuf off) in
          let blen = Int64.to_int (Bytes.get_int64_le r.rbuf (off + 8)) in
          if blen < 0 || blen > r.slot_bytes then
            fail "ring_dispatch: slot %d has a corrupt length word" slot;
          let handler = lookup_ecall t id in
          let body = Bytes.sub r.rbuf (off + 16) blen in
          let reply = handler tenv body in
          let rlen = Bytes.length reply in
          if rlen > r.slot_bytes then
            fail
              "ring_dispatch: ECALL %d reply (%d bytes) exceeds the %d-byte \
               slot"
              id rlen r.slot_bytes;
          Cycles.tick (clock t) (Cost_model.copy_cost c rlen);
          Bytes.set_int64_le r.pbuf off (Int64.of_int id);
          Bytes.set_int64_le r.pbuf (off + 8) (Int64.of_int rlen);
          Bytes.blit reply 0 r.pbuf (off + 16) rlen
        done);
    Bytes.set_int64_le r.pbuf 0 (Int64.of_int k);
    touch_segment t ~off:r.rep_off ~len;
    ms_slice_nofault `Write t ~off:r.rep_off r.pbuf ~pos:0 ~len
  end

let ring_dispatch r =
  Fault.with_retries ~backoff:(backoff r.rt) (fun () -> run_ring_dispatch r)

(* Untrusted half, reply direction: pull the shard's reply image back
   into [ring_reply_buf] and pay the marshalling-out rate.  Runs on the
   caller's (plane) clock; callers that must absorb injected
   marshalling faults wrap this in [Fault.with_retries]. *)
let ring_read_replies r =
  let t = r.rt in
  if r.staged > 0 then begin
    let len = 8 + (r.staged * r.stride) in
    Edge.charge_ms_out (cost t) (clock t) ~bytes:len;
    ms_raw_read_into t ~off:r.rep_off r.pbuf ~pos:0 ~len;
    let k = Int64.to_int (Bytes.get_int64_le r.pbuf 0) in
    if k <> r.staged then fail "ring replies: %d staged but %d served" r.staged k
  end

let destroy t = Kmod.ioctl_destroy_enclave t.kmod t.proc t.enclave

let enclave t = t.enclave
let mrenclave t = t.enclave.Enclave.mrenclave
let mode t = t.config.mode
let stats t = t.enclave.Enclave.stats
let config t = t.config

(* Quote generation crosses into the TPM; transient TPM faults are
   retried with backoff (the chip keeps no partial state across an
   aborted command). *)
let gen_quote t ~report_data ~nonce =
  Fault.with_retries ~backoff:(backoff t) (fun () ->
      Monitor.gen_quote (monitor t) t.enclave ~report_data ~nonce)
