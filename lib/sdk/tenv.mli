(** The trusted execution environment handed to in-enclave code.

    An ECALL handler is an OCaml closure standing in for the enclave's
    trusted code; everything it may legitimately do goes through this
    record (memory inside ELRANGE or the marshalling buffer, OCALLs,
    keys, sealing, attestation, page-permission changes, in-enclave
    exception handling).  Every operation charges simulated cycles through
    the monitor, so workload closures written against [Tenv] produce the
    paper's cost behaviour for whichever operation mode the enclave was
    created in. *)

open Hyperenclave_hw
open Hyperenclave_monitor

type t = {
  mode : Sgx_types.operation_mode;
  clock : Cycles.t;
  cost : Cost_model.t;
  read : va:int -> len:int -> bytes;
  write : va:int -> bytes -> unit;
  touch : va:int -> write:bool -> unit;
      (** translation + fault behaviour only, no data transfer — what the
          memory-bound workloads use *)
  malloc : int -> int;  (** bump allocator over the demand-paged heap *)
  heap_base : int;
  ocall : id:int -> ?data:bytes -> Edge.direction -> bytes;
  ocall_switchless : id:int -> ?data:bytes -> unit -> bytes;
      (** switchless call (Tian et al., cited in Sec. 4): the request goes
          through a shared ring in the marshalling buffer to an untrusted
          worker thread — no EEXIT/EENTER.  Orders of magnitude cheaper
          for chatty I/O, at the cost of a busy worker core. *)
  ocall_ring : reqs:(int * bytes) list -> unit -> bytes list;
      (** batched OCALLs through the reply ring (the OCALL mirror of the
          ECALL ring): one EEXIT stages all K <= 16 requests in the
          ocalloc arena, the untrusted side drains every slot, and one
          batched ORET (OBATCH hypercall) re-enters the parked TCS —
          replies come back in request order, and the per-reply
          EENTER/EEXIT pair is paid once for the ring *)
  compute : int -> unit;  (** charge pure computation cycles *)
  getkey : Sgx_types.key_name -> bytes;
  report : report_data:bytes -> Sgx_types.report;
  verify_report : Sgx_types.report -> bool;
      (** EVERIFYREPORT: check that a report was produced by an enclave on
          {e this} platform — the primitive under local attestation
          (enclave-to-enclave trust without going through the TPM) *)
  seal : ?aad:bytes -> bytes -> bytes;
  unseal : bytes -> bytes;
  seal_versioned : bytes -> bytes;
      (** rollback-protected sealing: the blob is bound to a fresh value
          of the enclave's TPM monotonic counter, so every new seal
          invalidates all older blobs *)
  unseal_versioned : bytes -> bytes;
      (** @raise Failure ["stale sealed data"] when the blob's counter
          value is not the current one (a rollback attempt) *)
  set_page_perms : vpn:int -> perms:Page_table.perms -> grant:bool -> unit;
      (** P-Enclaves update their own table; GU/HU issue
          EMODPE/EMODPR hypercalls (Sec. 4.3) *)
  register_exception_handler : vector:string -> Enclave.exn_handler -> unit;
  raise_exception : Sgx_types.exception_vector -> unit;
      (** execute a faulting instruction; returns after the exception has
          been handled through whichever path the mode dictates *)
  interrupt_now : unit -> unit;
      (** a device/timer interrupt arrives at this instant: AEX to the
          primary OS, service it, ERESUME (Sec. 4.1) *)
  arm_interrupt_guard : window_cycles:int -> threshold:int -> unit;
      (** P-Enclave side-channel defence (Sec. 4.3): count interrupt
          arrivals per window and flag abnormal rates *)
  interrupt_alarms : unit -> int;
  ms_read : off:int -> len:int -> bytes;  (** marshalling-buffer window *)
  ms_write : off:int -> bytes -> unit;
  ms_base : int;
  ms_size : int;
  enclave_id : int;
}

type handler = t -> bytes -> bytes
(** An ECALL entry point: marshalled input to marshalled output. *)
