(** The untrusted runtime (SDK uRTS) and enclave loader (Sec. 3.4, 5.3).

    Mirrors [libsgx_urts.so] as retrofitted by HyperEnclave:

    - {!create} plays the loader + [sgx_sign]: builds the enclave image
      page by page through the kernel module's ioctls, predicts MRENCLAVE
      with {!Measure.expected}, signs the SIGSTRUCT, mmaps the
      marshalling buffer with MAP_POPULATE, pins it, and EINITs.
    - {!ecall} runs the full edge-call path of Fig. 6 with the
      marshalling-buffer copies of Fig. 7; OCALLs issued by the enclave
      come back through the registered untrusted handlers.
    - exceptions raised inside the enclave follow the mode-appropriate
      path: in-enclave delivery for P-Enclaves, the AEX + signal +
      internal-handler-ECALL + ERESUME two-phase dance otherwise. *)

open Hyperenclave_hw
open Hyperenclave_monitor
open Hyperenclave_os

type config = {
  mode : Sgx_types.operation_mode;
  debug : bool;
  elrange_pages : int;  (** total enclave virtual range, pages *)
  code_pages : int;
  data_pages : int;
  tcs_count : int;  (** >= 2 so the two-phase exception flow has a free
                        TCS while the faulted one is parked *)
  nssa : int;
  ms_bytes : int;  (** marshalling buffer size *)
  code_seed : string;  (** stands for the code identity: different seed,
                           different MRENCLAVE *)
  isv_prod_id : int;
  isv_svn : int;
}

val default_config : Sgx_types.operation_mode -> config

exception Enclave_error of string

type t

val create :
  kmod:Kmod.t ->
  proc:Process.t ->
  rng:Rng.t ->
  signer:Hyperenclave_crypto.Signature.private_key ->
  config:config ->
  ecalls:(int * Tenv.handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  t

val ecall :
  t -> id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes
(** @raise Enclave_error on unknown id or no free TCS. *)

val ecall_no_ms :
  t -> id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes
(** Fig. 7's baseline variant: the same call without the marshalling
    buffer legs (direct-copy semantics, as plain SGX would do). *)

val max_batch : int
(** Ring capacity: the most requests one batched world switch carries. *)

val ecall_batch : t -> reqs:(int * bytes) list -> unit -> bytes list
(** Switchless call ring: stage up to {!max_batch} ECALL requests in the
    marshalling buffer and serve them all under a single world switch —
    one SDK soft path + one EENTER/EEXIT pair, with each slot past the
    first paying only the in-enclave ring dispatch cost.  Replies come
    back in request order.  All slots use [In_out] marshalling
    semantics.
    @raise Enclave_error on unknown id, oversized batch, or ring frames
    exceeding their marshalling region. *)

(** {2 Arena ring: sharded, allocation-free switchless ECALL dispatch}

    A fixed-stride slot ring per (tenant, shard) in the pinned
    marshalling buffer.  Every slot is [16 + slot_bytes] wide, so callers
    seal/decrypt AEAD payloads in place — the ring slot {e is} the
    envelope — and the staging images are recycled across flushes.  The
    dispatch is switchless: no TCS take, no EENTER/EEXIT, no SDK soft
    path; one post fence plus [ring_slot_dispatch] cycles per slot.
    Consequences: ring handlers must not OCALL (typed "OCALL outside an
    ECALL" refusal) and the AEX preemption timer never fires inside a
    ring dispatch. *)

type ring

val create_ring :
  t -> shard:int -> shards:int -> slots:int -> slot_bytes:int -> ring
(** Carve shard [shard] of [shards] equal segments out of the input and
    output marshalling regions and build its reusable staging images.
    [slot_bytes] must be a positive multiple of 8.
    @raise Enclave_error when [slots * (16 + slot_bytes) + 8] exceeds the
    per-shard segment — the fix is a larger [ms_bytes]. *)

val ring_stage : ring -> ecall_id:int -> len:int -> int
(** Claim the next slot for a [len]-byte payload of ECALL [ecall_id] and
    return the payload's byte offset into {!ring_buf}: the caller writes
    (or decrypts) the payload directly there.
    @raise Enclave_error when the ring is full or [len > slot_bytes]. *)

val ring_publish : ring -> unit
(** Untrusted request half: publish the staged image into the shard's
    pinned request segment (fires the marshalling-in fault site, pays the
    marshalling-in rate) on the caller's clock. *)

val ring_dispatch : ring -> unit
(** Trusted half: the persistent in-enclave worker serves every staged
    slot in order, framing replies at the same stride in the shard's
    reply segment.  Charged to the calling (core) clock.  Wrapped in the
    standard transient-fault retry loop. *)

val ring_read_replies : ring -> unit
(** Untrusted reply half: pull the reply image back into
    {!ring_reply_buf} (fires the marshalling-out fault site, pays the
    marshalling-out rate) on the caller's clock.  Callers that must
    absorb injected faults wrap this in [Fault.with_retries].
    @raise Enclave_error if the reply count disagrees with the staged
    count. *)

val ring_reply_slot : ring -> slot:int -> int * int
(** [(payload_offset, length)] of a served slot's reply inside
    {!ring_reply_buf}; sealing in place reads and writes there.
    @raise Enclave_error on an out-of-range slot or corrupt length. *)

val ring_staged : ring -> int
val ring_capacity : ring -> int
val ring_slot_bytes : ring -> int
val ring_shard : ring -> int

val ring_buf : ring -> bytes
(** The reusable staged-request image (header + slots). *)

val ring_reply_buf : ring -> bytes
(** The reusable reply image, valid after {!ring_read_replies}. *)

val ring_reset : ring -> unit
(** Forget the staged slots; the images are reused as-is. *)

val frame_requests : (int * bytes) list -> bytes
(** Ring frame layout shared by the ECALL and OCALL rings:
    [[count][id, len, payload]*] with 8-byte little-endian words,
    assembled with one exact-size allocation and one blit per slot. *)

val parse_frames : what:string -> bytes -> (int * bytes) list
(** Parse a ring frame back into [(id, payload)] slots, validating every
    length word against the frame bounds before slicing.
    @raise Enclave_error (tagged [what]) on a truncated frame, an
    out-of-range slot count, or a corrupt length word — including
    near-[max_int] lengths whose bounds arithmetic would overflow. *)

val arm_timer : t -> quantum:int -> ?on_preempt:(unit -> unit) -> unit -> unit
(** Arm the scheduler's AEX preemption timer: once the clock passes the
    armed deadline mid-ECALL, the next trusted compute step takes a full
    AEX (SSA spill) + ERESUME round trip through the monitor, invokes
    [on_preempt] (after the ERESUME, with the enclave re-entered), and
    re-arms one quantum later.  Disarmed runs pay one field read per
    compute call, keeping unscheduled executions cycle-identical. *)

val disarm_timer : t -> unit

val free_tcs_count : t -> int
(** TCSs currently available for entry (neither busy nor parked on an
    in-flight OCALL awaiting ORET). *)

val destroy : t -> unit
(** EREMOVE via the kernel module, which also releases the
    marshalling-buffer pins it took at creation. *)

val enclave : t -> Enclave.t
val mrenclave : t -> bytes
val mode : t -> Sgx_types.operation_mode
val stats : t -> Enclave.stats
val config : t -> config
val monitor : t -> Monitor.t

val gen_quote : t -> report_data:bytes -> nonce:bytes -> Monitor.quote
(** Sec. 3.3 remote attestation: quote for this enclave. *)

val ms_ocall_off : t -> int
(** Byte offset of the ocalloc arena within the marshalling buffer. *)

val ms_raw_write : t -> off:int -> bytes -> unit
(** Raw app-side write into the pinned marshalling buffer (fires the
    marshalling-in fault site; cycle cost is the caller's to charge). *)

val oret_batch : t -> arg_off:int -> staged_len:int -> int
(** Untrusted half of the OCALL reply ring: drain every staged slot at
    [arg_off] through its registered handler and write the reply frame
    back in place, returning its length.  Exposed for direct testing of
    the drain loop's refusals.
    @raise Enclave_error on a corrupt frame or an unregistered OCALL id
    in a drained slot. *)

val aep : int
(** The asynchronous exit pointer / ECALL return site the monitor's EEXIT
    validation is checked against. *)
