(** The untrusted runtime (SDK uRTS) and enclave loader (Sec. 3.4, 5.3).

    Mirrors [libsgx_urts.so] as retrofitted by HyperEnclave:

    - {!create} plays the loader + [sgx_sign]: builds the enclave image
      page by page through the kernel module's ioctls, predicts MRENCLAVE
      with {!Measure.expected}, signs the SIGSTRUCT, mmaps the
      marshalling buffer with MAP_POPULATE, pins it, and EINITs.
    - {!ecall} runs the full edge-call path of Fig. 6 with the
      marshalling-buffer copies of Fig. 7; OCALLs issued by the enclave
      come back through the registered untrusted handlers.
    - exceptions raised inside the enclave follow the mode-appropriate
      path: in-enclave delivery for P-Enclaves, the AEX + signal +
      internal-handler-ECALL + ERESUME two-phase dance otherwise. *)

open Hyperenclave_hw
open Hyperenclave_monitor
open Hyperenclave_os

type config = {
  mode : Sgx_types.operation_mode;
  debug : bool;
  elrange_pages : int;  (** total enclave virtual range, pages *)
  code_pages : int;
  data_pages : int;
  tcs_count : int;  (** >= 2 so the two-phase exception flow has a free
                        TCS while the faulted one is parked *)
  nssa : int;
  ms_bytes : int;  (** marshalling buffer size *)
  code_seed : string;  (** stands for the code identity: different seed,
                           different MRENCLAVE *)
  isv_prod_id : int;
  isv_svn : int;
}

val default_config : Sgx_types.operation_mode -> config

exception Enclave_error of string

type t

val create :
  kmod:Kmod.t ->
  proc:Process.t ->
  rng:Rng.t ->
  signer:Hyperenclave_crypto.Signature.private_key ->
  config:config ->
  ecalls:(int * Tenv.handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  t

val ecall :
  t -> id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes
(** @raise Enclave_error on unknown id or no free TCS. *)

val ecall_no_ms :
  t -> id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes
(** Fig. 7's baseline variant: the same call without the marshalling
    buffer legs (direct-copy semantics, as plain SGX would do). *)

val max_batch : int
(** Ring capacity: the most requests one batched world switch carries. *)

val ecall_batch : t -> reqs:(int * bytes) list -> unit -> bytes list
(** Switchless call ring: stage up to {!max_batch} ECALL requests in the
    marshalling buffer and serve them all under a single world switch —
    one SDK soft path + one EENTER/EEXIT pair, with each slot past the
    first paying only the in-enclave ring dispatch cost.  Replies come
    back in request order.  All slots use [In_out] marshalling
    semantics.
    @raise Enclave_error on unknown id, oversized batch, or ring frames
    exceeding their marshalling region. *)

val frame_requests : (int * bytes) list -> bytes
(** Ring frame layout shared by the ECALL and OCALL rings:
    [[count][id, len, payload]*] with 8-byte little-endian words,
    assembled with one exact-size allocation and one blit per slot. *)

val parse_frames : what:string -> bytes -> (int * bytes) list
(** Parse a ring frame back into [(id, payload)] slots, validating every
    length word against the frame bounds before slicing.
    @raise Enclave_error (tagged [what]) on a truncated frame, an
    out-of-range slot count, or a corrupt length word — including
    near-[max_int] lengths whose bounds arithmetic would overflow. *)

val arm_timer : t -> quantum:int -> ?on_preempt:(unit -> unit) -> unit -> unit
(** Arm the scheduler's AEX preemption timer: once the clock passes the
    armed deadline mid-ECALL, the next trusted compute step takes a full
    AEX (SSA spill) + ERESUME round trip through the monitor, invokes
    [on_preempt] (after the ERESUME, with the enclave re-entered), and
    re-arms one quantum later.  Disarmed runs pay one field read per
    compute call, keeping unscheduled executions cycle-identical. *)

val disarm_timer : t -> unit

val free_tcs_count : t -> int
(** TCSs currently available for entry (neither busy nor parked on an
    in-flight OCALL awaiting ORET). *)

val destroy : t -> unit
(** EREMOVE via the kernel module, which also releases the
    marshalling-buffer pins it took at creation. *)

val enclave : t -> Enclave.t
val mrenclave : t -> bytes
val mode : t -> Sgx_types.operation_mode
val stats : t -> Enclave.stats
val config : t -> config
val monitor : t -> Monitor.t

val gen_quote : t -> report_data:bytes -> nonce:bytes -> Monitor.quote
(** Sec. 3.3 remote attestation: quote for this enclave. *)

val aep : int
(** The asynchronous exit pointer / ECALL return site the monitor's EEXIT
    validation is checked against. *)
