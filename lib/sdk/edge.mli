(** Edge-call parameter passing (Sec. 5.3, Fig. 7).

    HyperEnclave's enclaves can only reach their own memory plus the
    marshalling buffer, so every ECALL/OCALL payload crosses through it.
    The Edger8r-generated shims this module stands in for perform, for an
    ECALL with an [In] pointer: app copy into the marshalling buffer
    (the {e extra} copy HyperEnclave adds), then the trusted-side copy
    into enclave memory (which SGX-style direct access pays too).  OCALLs
    avoid the extra copy entirely because [sgx_ocalloc] is redirected to
    allocate inside the marshalling buffer. *)

open Hyperenclave_hw

type direction =
  | In  (** app -> enclave *)
  | Out  (** enclave -> app *)
  | In_out
  | User_check
      (** no generated copies; the developer manages the pointer and must
          have allocated it inside the marshalling buffer *)

val direction_name : direction -> string

val charge_ms_in : Cost_model.t -> Cycles.t -> bytes:int -> unit
(** Extra uRTS copy into the marshalling buffer ([In] leg). *)

val charge_ms_out : Cost_model.t -> Cycles.t -> bytes:int -> unit

val charge_ms_in_out : Cost_model.t -> Cycles.t -> bytes:int -> unit
(** Both legs; slightly superlinear (the second traversal of the buffer
    misses in cache after the first evicted it). *)

val fault_site_in : string
(** Fault-injection site name for app->enclave marshalling copies
    (["sdk.ms_copy_in"]); fires before any bytes move. *)

val fault_site_out : string
(** Enclave->app direction (["sdk.ms_copy_out"]). *)
