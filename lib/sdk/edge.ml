open Hyperenclave_hw
module Fault = Hyperenclave_fault.Fault

type direction = In | Out | In_out | User_check

let direction_name = function
  | In -> "in"
  | Out -> "out"
  | In_out -> "in&out"
  | User_check -> "user_check"

let kib bytes = (bytes + 1023) / 1024

(* Marshalling-copy fault sites.  They fire before the copy's cycles are
   charged, modelling a truncated or interrupted transfer across the
   pinned buffer; the uRTS absorbs transient ones by re-staging the whole
   edge call (the buffer regions are write-before-read, so replays are
   idempotent). *)
let fault_site_in = "sdk.ms_copy_in"
let fault_site_out = "sdk.ms_copy_out"

let charge_ms_in (m : Cost_model.t) clock ~bytes =
  Fault.point fault_site_in;
  Cycles.tick clock (kib bytes * m.ms_copy_in_per_kb)

let charge_ms_out (m : Cost_model.t) clock ~bytes =
  Fault.point fault_site_out;
  Cycles.tick clock (kib bytes * m.ms_copy_out_per_kb)

let charge_ms_in_out (m : Cost_model.t) clock ~bytes =
  Fault.point fault_site_in;
  let base = kib bytes * (m.ms_copy_in_per_kb + m.ms_copy_out_per_kb) in
  Cycles.tick clock (base * 3 / 2)
