open Hyperenclave_hw
open Hyperenclave_monitor

type t = {
  mode : Sgx_types.operation_mode;
  clock : Cycles.t;
  cost : Cost_model.t;
  read : va:int -> len:int -> bytes;
  write : va:int -> bytes -> unit;
  touch : va:int -> write:bool -> unit;
  malloc : int -> int;
  heap_base : int;
  ocall : id:int -> ?data:bytes -> Edge.direction -> bytes;
  ocall_switchless : id:int -> ?data:bytes -> unit -> bytes;
  ocall_ring : reqs:(int * bytes) list -> unit -> bytes list;
      (** Batched OCALLs through the reply ring: one EEXIT stages all
          K <= 16 requests in the ocalloc arena, the untrusted side
          drains every slot, and one batched ORET re-enters — replies
          come back in request order. *)
  compute : int -> unit;
  getkey : Sgx_types.key_name -> bytes;
  report : report_data:bytes -> Sgx_types.report;
  verify_report : Sgx_types.report -> bool;
  seal : ?aad:bytes -> bytes -> bytes;
  unseal : bytes -> bytes;
  seal_versioned : bytes -> bytes;
  unseal_versioned : bytes -> bytes;
  set_page_perms : vpn:int -> perms:Page_table.perms -> grant:bool -> unit;
  register_exception_handler : vector:string -> Enclave.exn_handler -> unit;
  raise_exception : Sgx_types.exception_vector -> unit;
  interrupt_now : unit -> unit;
  arm_interrupt_guard : window_cycles:int -> threshold:int -> unit;
  interrupt_alarms : unit -> int;
  ms_read : off:int -> len:int -> bytes;
  ms_write : off:int -> bytes -> unit;
  ms_base : int;
  ms_size : int;
  enclave_id : int;
}

type handler = t -> bytes -> bytes
