(** In-enclave virtual file system.

    The state behind the {!Libos} syscall layer: a flat namespace of files
    living entirely inside the enclave, so open/read/write/seek never
    leave the TEE — the property that makes a library OS the right shape
    for I/O-handling enclave applications (Sec. 3.4's Occlum port).

    Files are inodes: the namespace maps paths to {!node}s and an open fd
    holds the node itself, so unlinking a path while an fd is open leaves
    the orphaned inode fully readable/writable through that fd (POSIX
    semantics) — it is neither resurrected by later writes nor a source of
    exceptions.  Reads past EOF return short (possibly empty) data.

    With a {!pager}, file extents live in the demand-paged enclave heap
    (PR 3): every extent read/write goes through the pager callbacks, so
    file I/O drives EPC commit and EWB/ELDU under pressure exactly like
    any other heap touch.  Without one, extents are ordinary in-enclave
    bytes.  Pure data structure; all cycle charging happens in {!Libos}. *)

type t
type node
(** An inode: identity, size and backing extent, independent of any path. *)

type stat = { size : int; created_at : int }

type pager = {
  p_read : off:int -> len:int -> bytes;
  p_write : off:int -> bytes -> unit;
}
(** Backing store for file extents, offset-addressed from 0.  {!Libos}
    wires these to the enclave heap ([heap_base + off]), making the VFS
    file-backed against demand-paged EPC. *)

val create : ?pager:pager -> unit -> t
val paged : t -> bool

(** {1 Namespace} *)

val exists : t -> path:string -> bool
val lookup : t -> path:string -> node option

val open_node :
  t -> path:string -> now:int -> create:bool -> trunc:bool -> node option
(** The open(2) core: returns the linked node, creating and/or truncating
    in place per the flags; [None] if absent and [create] is false.
    Truncation is in-place, so other fds holding the node observe size
    0 — not a fresh inode. *)

val create_file : t -> path:string -> now:int -> unit
(** [open_node ~create:true ~trunc:true], result ignored. *)

val unlink : t -> path:string -> bool
(** Removes only the namespace entry; open fds keep the inode alive.
    [false] if absent. *)

val linked : t -> node -> bool
(** Is this inode still reachable from any path? *)

val stat : t -> path:string -> stat option
val size : t -> path:string -> int option
val list_prefix : t -> prefix:string -> string list
val file_count : t -> int

val total_bytes : t -> int
(** Live bytes across linked files (orphaned inodes excluded). *)

val paged_bytes : t -> int
(** Heap-extent bytes ever allocated from the pager (bump cursor). *)

(** {1 Inode operations} *)

val node_ino : node -> int
val node_size : node -> int
val node_created_at : node -> int

val node_read : t -> node -> pos:int -> len:int -> bytes
(** Short reads at EOF (empty past it).
    @raise Invalid_argument on negative [pos]/[len]. *)

val node_write : t -> node -> pos:int -> bytes -> int
(** Extends the file as needed (zero-filling holes); returns the number
    of bytes written.  @raise Invalid_argument on negative [pos]. *)

val node_truncate : t -> node -> unit

(** {1 Path-level convenience (lookup + inode op)} *)

val read_at : t -> path:string -> pos:int -> len:int -> bytes option
val write_at : t -> path:string -> pos:int -> bytes -> int option
