(** Library OS for HyperEnclave enclaves — the Occlum stand-in (Sec. 3.4,
    5.3: "we have also ported ... the Occlum library OS to HyperEnclave").

    Legacy applications talk POSIX; a libOS serves most of those syscalls
    {e inside} the enclave (file system, time, pids, epoll — no world
    switch) and forwards only what genuinely needs the host (network I/O)
    through OCALLs.  {!stats} exposes the in-enclave/forwarded split,
    which is the whole performance argument: Lighttpd under Occlum exits
    only for sockets.

    Two growth points make this the runtime layer for in-enclave services
    (ROADMAP item 2):

    - {b loopback sockets} ([socket ~loopback:true]): an in-enclave byte
      queue pair.  The serving plane injects decrypted request bytes with
      {!sock_deliver}; the application [recv]s, computes, [send]s; the
      plane collects the reply with {!sock_drain}.  No OCALL is involved,
      so a ring-dispatched handler (which must not OCALL) can still do
      socket-shaped I/O.
    - {b epoll-ish readiness} ({!epoll_create}/{!epoll_add}/{!epoll_wait}):
      level-triggered readiness over file and socket fds, so event-loop
      applications port naturally.

    The fd table holds {!Vfs} inodes, not paths: unlinking a path while an
    fd is open leaves that fd operating on the orphaned inode (POSIX), and
    reads past EOF return short data, never exceptions.  [O_APPEND]
    writes always land at the inode's EOF regardless of [lseek].

    Costs: every syscall charges a small in-enclave dispatch
    ({!syscall_dispatch_cost}) plus per-byte copy costs; forwarded calls
    additionally pay the full OCALL path of the enclave's operation
    mode. *)

open Hyperenclave_hw
open Hyperenclave_sdk

type t

type fd_kind = File | Socket | Epoll

exception Bad_fd of int
exception Bad_seek of int
(** Typed rejection of a negative or overflowing seek position — the
    offset is reported, [state.pos] is left untouched. *)

exception No_such_file of string

val syscall_dispatch_cost : int
(** In-enclave syscall entry/exit: a function call plus fd-table work
    (~180 cycles), not a world switch. *)

val epoll_poll_cost : int
(** Per-watched-fd readiness check inside {!epoll_wait}. *)

val max_file_bytes : int
(** Largest accepted seek offset (1 TiB); beyond it {!lseek} raises
    {!Bad_seek} so positions can never overflow. *)

(** {1 Construction} *)

type rt = {
  rt_clock : Cycles.t;
  rt_compute : int -> unit;
  rt_ocall : id:int -> bytes -> bytes;
  rt_ocall_switchless : id:int -> bytes -> bytes;
}
(** The slice of an execution environment the libOS needs.  Built from a
    full {!Tenv.t} with {!of_tenv}, or assembled by hand from a
    [Backend.env] (which is what the service layer hands to handlers). *)

val of_tenv : Tenv.t -> rt

val create_rt :
  rt ->
  ?pager:Vfs.pager ->
  ?net_send_ocall:int ->
  ?net_recv_ocall:int ->
  ?switchless_net:bool ->
  unit ->
  t
(** [pager] backs VFS file extents with the demand-paged enclave heap
    (see {!Vfs.pager}); without it files are plain in-enclave bytes. *)

val create :
  Tenv.t ->
  ?net_send_ocall:int ->
  ?net_recv_ocall:int ->
  ?switchless_net:bool ->
  unit ->
  t
(** [create_rt (of_tenv tenv)].  [net_send_ocall]/[net_recv_ocall] are the
    registered OCALL ids backing forwarding-socket I/O (defaults
    900/901); [switchless_net] routes them through switchless calls. *)

val vfs : t -> Vfs.t

(** {1 File syscalls — served in-enclave} *)

type open_flag = O_rdonly | O_wronly | O_rdwr | O_creat | O_trunc | O_append

val openf : t -> path:string -> open_flag list -> int
(** @raise No_such_file without [O_creat]. *)

val close : t -> int -> unit
val read : t -> int -> len:int -> bytes
val write : t -> int -> bytes -> int

val lseek : t -> int -> pos:int -> int
(** Absolute seek; returns the new position.  Only file fds seek.
    @raise Bad_seek on negative or > {!max_file_bytes} positions.
    @raise Bad_fd on sockets and epoll fds. *)

val unlink : t -> path:string -> unit
val stat_size : t -> path:string -> int

val fstat_size : t -> int -> int
(** Inode size through an open fd — works after unlink. *)

val list_dir : t -> prefix:string -> string list
val fd_kind : t -> int -> fd_kind

(** {1 Process/time syscalls — served in-enclave} *)

val getpid : t -> int
val clock_monotonic : t -> int
(** Simulated-cycle timestamp — in-enclave, like a vDSO read. *)

(** {1 Network syscalls} *)

val socket : ?loopback:bool -> t -> int
(** Forwarding sockets (default) OCALL to the host; loopback sockets are
    in-enclave byte queues fed by {!sock_deliver}/{!sock_drain}. *)

val send : t -> int -> bytes -> int
val recv : t -> int -> len:int -> bytes
(** On a loopback socket, a short (possibly empty) read of buffered
    bytes — the EWOULDBLOCK of this world; gate on {!epoll_wait}. *)

val sock_deliver : t -> int -> bytes -> unit
(** Plane-side: inject bytes into a loopback socket's receive queue.
    @raise Bad_fd on non-loopback fds. *)

val sock_drain : t -> int -> bytes
(** Plane-side: take everything the application [send]ed so far. *)

(** {1 Event readiness} *)

type event = { rd : bool; wr : bool }

val epoll_create : t -> int

val epoll_add : t -> epfd:int -> fd:int -> rd:bool -> wr:bool -> unit
(** Registers or replaces interest.  @raise Bad_fd when [fd] is an epoll
    fd (no nesting) or either fd is closed. *)

val epoll_del : t -> epfd:int -> fd:int -> unit

val epoll_wait : t -> epfd:int -> (int * event) list
(** Non-blocking poll: level-triggered readiness of every watched fd
    whose interest matches, sorted by fd.  Files are readable while
    [pos < size]; loopback sockets while bytes are queued. *)

(** {1 Introspection} *)

type stats = { in_enclave : int; forwarded : int }

val stats : t -> stats
val open_fds : t -> int
