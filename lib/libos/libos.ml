open Hyperenclave_hw
open Hyperenclave_sdk

(* --- runtime substrate --------------------------------------------------- *)

type rt = {
  rt_clock : Cycles.t;
  rt_compute : int -> unit;
  rt_ocall : id:int -> bytes -> bytes;
  rt_ocall_switchless : id:int -> bytes -> bytes;
}

let of_tenv (tenv : Tenv.t) =
  {
    rt_clock = tenv.Tenv.clock;
    rt_compute = tenv.Tenv.compute;
    rt_ocall = (fun ~id data -> tenv.Tenv.ocall ~id ~data Edge.In_out);
    rt_ocall_switchless =
      (fun ~id data -> tenv.Tenv.ocall_switchless ~id ~data ());
  }

(* --- fd table ------------------------------------------------------------ *)

type sock = {
  inbuf : Buffer.t;
  mutable in_pos : int; (* consumed prefix of [inbuf] *)
  outbuf : Buffer.t;
  loopback : bool;
}

type interest = { want_rd : bool; want_wr : bool }

type target =
  | File_fd of Vfs.node
  | Sock_fd of sock
  | Epoll_fd of (int, interest) Hashtbl.t

type fd_kind = File | Socket | Epoll

type fd_state = {
  target : target;
  path : string; (* "" for sockets/epoll *)
  mutable pos : int;
  append : bool;
  readable : bool;
  writable : bool;
}

type stats = { in_enclave : int; forwarded : int }

type t = {
  rt : rt;
  vfs : Vfs.t;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  net_send_ocall : int;
  net_recv_ocall : int;
  switchless_net : bool;
  pid : int;
  mutable in_enclave : int;
  mutable forwarded : int;
}

exception Bad_fd of int
exception Bad_seek of int
exception No_such_file of string

let syscall_dispatch_cost = 180
let epoll_poll_cost = 12

(* Seek positions are capped well below [max_int] so that a subsequent
   [pos + Bytes.length data] can never overflow into a negative offset. *)
let max_file_bytes = 1 lsl 40

let create_rt rt ?pager ?(net_send_ocall = 900) ?(net_recv_ocall = 901)
    ?(switchless_net = false) () =
  {
    rt;
    vfs = Vfs.create ?pager ();
    fds = Hashtbl.create 16;
    next_fd = 3; (* 0-2 reserved, as tradition demands *)
    net_send_ocall;
    net_recv_ocall;
    switchless_net;
    pid = 1;
    in_enclave = 0;
    forwarded = 0;
  }

let create tenv ?net_send_ocall ?net_recv_ocall ?switchless_net () =
  create_rt (of_tenv tenv) ?net_send_ocall ?net_recv_ocall ?switchless_net ()

let vfs t = t.vfs

(* Every syscall enters through here: in-enclave dispatch cost, no world
   switch (the libOS point). *)
let syscall t =
  t.in_enclave <- t.in_enclave + 1;
  t.rt.rt_compute syscall_dispatch_cost

let charge_bytes t n = t.rt.rt_compute (n / 8)

let fd_state t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some state -> state
  | None -> raise (Bad_fd fd)

let alloc_fd t state =
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd state;
  fd

let kind_of_state state =
  match state.target with
  | File_fd _ -> File
  | Sock_fd _ -> Socket
  | Epoll_fd _ -> Epoll

let fd_kind t fd = kind_of_state (fd_state t fd)

let file_node t fd =
  let state = fd_state t fd in
  match state.target with
  | File_fd node -> (state, node)
  | Sock_fd _ | Epoll_fd _ -> raise (Bad_fd fd)

let sock_state t fd =
  let state = fd_state t fd in
  match state.target with
  | Sock_fd s -> s
  | File_fd _ | Epoll_fd _ -> raise (Bad_fd fd)

(* --- files ------------------------------------------------------------------- *)

type open_flag = O_rdonly | O_wronly | O_rdwr | O_creat | O_trunc | O_append

let openf t ~path flags =
  syscall t;
  let has flag = List.mem flag flags in
  let node =
    match
      Vfs.open_node t.vfs ~path ~now:(Cycles.now t.rt.rt_clock)
        ~create:(has O_creat) ~trunc:(has O_trunc)
    with
    | Some node -> node
    | None -> raise (No_such_file path)
  in
  alloc_fd t
    {
      target = File_fd node;
      path;
      pos = 0;
      append = has O_append;
      readable = has O_rdonly || has O_rdwr || not (has O_wronly);
      writable = has O_wronly || has O_rdwr || has O_append;
    }

(* Drop [fd] from every epoll interest set, like the kernel does when the
   last reference to an open file description goes away. *)
let epoll_forget t fd =
  Hashtbl.iter
    (fun _ state ->
      match state.target with
      | Epoll_fd watched -> Hashtbl.remove watched fd
      | File_fd _ | Sock_fd _ -> ())
    t.fds

let close t fd =
  syscall t;
  if not (Hashtbl.mem t.fds fd) then raise (Bad_fd fd);
  Hashtbl.remove t.fds fd;
  epoll_forget t fd

let read t fd ~len =
  syscall t;
  let state, node = file_node t fd in
  if not state.readable then invalid_arg "Libos.read: fd not readable";
  (* The fd keeps the inode alive: reads work (and stay short past EOF)
     even after the path was unlinked. *)
  let data = Vfs.node_read t.vfs node ~pos:state.pos ~len in
  state.pos <- state.pos + Bytes.length data;
  charge_bytes t (Bytes.length data);
  data

let write t fd data =
  syscall t;
  let state, node = file_node t fd in
  if not state.writable then invalid_arg "Libos.write: fd not writable";
  (* O_APPEND: the write lands at the inode's current EOF regardless of
     any intervening lseek — the seek only repositions reads. *)
  let pos = if state.append then Vfs.node_size node else state.pos in
  let written = Vfs.node_write t.vfs node ~pos data in
  state.pos <- pos + written;
  charge_bytes t written;
  written

let lseek t fd ~pos =
  syscall t;
  let state = fd_state t fd in
  (match state.target with
  | File_fd _ -> ()
  | Sock_fd _ | Epoll_fd _ -> raise (Bad_fd fd));
  if pos < 0 || pos > max_file_bytes then raise (Bad_seek pos);
  state.pos <- pos;
  pos

let unlink t ~path =
  syscall t;
  if not (Vfs.unlink t.vfs ~path) then raise (No_such_file path)

let stat_size t ~path =
  syscall t;
  match Vfs.stat t.vfs ~path with
  | Some { Vfs.size; _ } -> size
  | None -> raise (No_such_file path)

let fstat_size t fd =
  syscall t;
  let _, node = file_node t fd in
  Vfs.node_size node

let list_dir t ~prefix =
  syscall t;
  Vfs.list_prefix t.vfs ~prefix

(* --- process/time -------------------------------------------------------------- *)

let getpid t =
  syscall t;
  t.pid

let clock_monotonic t =
  syscall t;
  Cycles.now t.rt.rt_clock

(* --- network ------------------------------------------------------------------- *)

let socket ?(loopback = false) t =
  syscall t;
  alloc_fd t
    {
      target =
        Sock_fd
          { inbuf = Buffer.create 64; in_pos = 0; outbuf = Buffer.create 64; loopback };
      path = "";
      pos = 0;
      append = false;
      readable = true;
      writable = true;
    }

let net_call t ~id data =
  t.forwarded <- t.forwarded + 1;
  if t.switchless_net then t.rt.rt_ocall_switchless ~id data
  else t.rt.rt_ocall ~id data

let send t fd data =
  syscall t;
  let s = sock_state t fd in
  if s.loopback then begin
    (* Loopback stays inside the enclave: the bytes land in the out-queue
       for the peer (the service shim) to drain — no OCALL, which is what
       lets ring-dispatched handlers do socket I/O at all. *)
    Buffer.add_bytes s.outbuf data;
    charge_bytes t (Bytes.length data);
    Bytes.length data
  end
  else
    let reply = net_call t ~id:t.net_send_ocall data in
    match int_of_string_opt (Bytes.to_string reply) with
    | Some n -> n
    | None -> invalid_arg "Libos.send: malformed host reply"

let sock_pending s = Buffer.length s.inbuf - s.in_pos

let recv t fd ~len =
  syscall t;
  let s = sock_state t fd in
  if s.loopback then begin
    (* Serve buffered bytes; an empty queue is a short (empty) read, the
       EWOULDBLOCK of this world — callers gate on epoll readiness. *)
    let avail = sock_pending s in
    let n = min (max len 0) avail in
    let data = Bytes.of_string (Buffer.sub s.inbuf s.in_pos n) in
    s.in_pos <- s.in_pos + n;
    if s.in_pos = Buffer.length s.inbuf then begin
      Buffer.clear s.inbuf;
      s.in_pos <- 0
    end;
    charge_bytes t n;
    data
  end
  else net_call t ~id:t.net_recv_ocall (Bytes.of_string (string_of_int len))

(* Host/plane side of a loopback socket: inject request bytes / drain the
   reply queue.  Not syscalls — this is the service shim's memcpy. *)

let sock_deliver t fd data =
  let s = sock_state t fd in
  if not s.loopback then raise (Bad_fd fd);
  Buffer.add_bytes s.inbuf data;
  charge_bytes t (Bytes.length data)

let sock_drain t fd =
  let s = sock_state t fd in
  if not s.loopback then raise (Bad_fd fd);
  let data = Buffer.to_bytes s.outbuf in
  Buffer.clear s.outbuf;
  charge_bytes t (Bytes.length data);
  data

(* --- epoll ---------------------------------------------------------------------- *)

type event = { rd : bool; wr : bool }

let epoll_create t =
  syscall t;
  alloc_fd t
    {
      target = Epoll_fd (Hashtbl.create 8);
      path = "";
      pos = 0;
      append = false;
      readable = false;
      writable = false;
    }

let epoll_table t epfd =
  match (fd_state t epfd).target with
  | Epoll_fd watched -> watched
  | File_fd _ | Sock_fd _ -> raise (Bad_fd epfd)

let epoll_add t ~epfd ~fd ~rd ~wr =
  syscall t;
  let watched = epoll_table t epfd in
  (match (fd_state t fd).target with
  | File_fd _ | Sock_fd _ -> ()
  | Epoll_fd _ -> raise (Bad_fd fd) (* no nested epoll *));
  Hashtbl.replace watched fd { want_rd = rd; want_wr = wr }

let epoll_del t ~epfd ~fd =
  syscall t;
  let watched = epoll_table t epfd in
  if not (Hashtbl.mem watched fd) then raise (Bad_fd fd);
  Hashtbl.remove watched fd

let readiness state =
  match state.target with
  | File_fd node ->
      {
        rd = state.readable && state.pos < Vfs.node_size node;
        wr = state.writable;
      }
  | Sock_fd s -> { rd = sock_pending s > 0; wr = state.writable }
  | Epoll_fd _ -> { rd = false; wr = false }

let epoll_wait t ~epfd =
  syscall t;
  let watched = epoll_table t epfd in
  t.rt.rt_compute (epoll_poll_cost * Hashtbl.length watched);
  Hashtbl.fold
    (fun fd interest acc ->
      match Hashtbl.find_opt t.fds fd with
      | None -> acc (* closed while watched; already forgotten normally *)
      | Some state ->
          let ready = readiness state in
          let rd = interest.want_rd && ready.rd in
          let wr = interest.want_wr && ready.wr in
          if rd || wr then (fd, { rd; wr }) :: acc else acc)
    watched []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- introspection --------------------------------------------------------------- *)

let stats t = { in_enclave = t.in_enclave; forwarded = t.forwarded }
let open_fds t = Hashtbl.length t.fds
