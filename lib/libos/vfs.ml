open Hyperenclave_hw

type pager = {
  p_read : off:int -> len:int -> bytes;
  p_write : off:int -> bytes -> unit;
}

type store =
  | Mem of { mutable data : bytes }
  | Paged of { mutable base : int; mutable cap : int }

type node = {
  ino : int;
  created_at : int;
  mutable size : int;
  store : store ref;
}

type stat = { size : int; created_at : int }

type t = {
  files : (string, node) Hashtbl.t;
  pager : pager option;
  mutable next_ino : int;
  mutable heap_cursor : int;
}

let create ?pager () =
  { files = Hashtbl.create 32; pager; next_ino = 1; heap_cursor = 0 }

let paged t = t.pager <> None
let exists t ~path = Hashtbl.mem t.files path
let lookup t ~path = Hashtbl.find_opt t.files path
let linked t (node : node) =
  Hashtbl.fold (fun _ (n : node) acc -> acc || n.ino = node.ino) t.files false

let node_ino (n : node) = n.ino
let node_size (n : node) = n.size
let node_created_at (n : node) = n.created_at

(* --- extent management (paged backing) ---------------------------------- *)

let alloc_extent t bytes =
  let aligned = Addr.align_up (max bytes Addr.page_size) in
  let base = t.heap_cursor in
  t.heap_cursor <- base + aligned;
  (base, aligned)

let pager_exn t =
  match t.pager with
  | Some p -> p
  | None -> invalid_arg "Vfs: paged store without a pager"

(* Copy [len] live bytes between extents through the pager, one page at a
   time so a demand-paged heap commits/evicts at page granularity. *)
let move_extent t ~src ~dst ~len =
  let p = pager_exn t in
  let pos = ref 0 in
  while !pos < len do
    let chunk = min Addr.page_size (len - !pos) in
    p.p_write ~off:(dst + !pos) (p.p_read ~off:(src + !pos) ~len:chunk);
    pos := !pos + chunk
  done

let ensure_cap t (node : node) ~needed =
  match !(node.store) with
  | Mem m ->
      if needed > Bytes.length m.data then begin
        let grown = Bytes.make needed '\000' in
        Bytes.blit m.data 0 grown 0 (Bytes.length m.data);
        m.data <- grown
      end
  | Paged pg ->
      if needed > pg.cap then begin
        let base, cap = alloc_extent t (max needed (2 * pg.cap)) in
        if node.size > 0 then move_extent t ~src:pg.base ~dst:base ~len:node.size;
        pg.base <- base;
        pg.cap <- cap
      end

(* --- inode-level operations --------------------------------------------- *)

let node_read t (node : node) ~pos ~len =
  if pos < 0 || len < 0 then invalid_arg "Vfs.node_read: negative pos/len";
  if pos >= node.size || len = 0 then Bytes.empty
  else
    let len = min len (node.size - pos) in
    match !(node.store) with
    | Mem m -> Bytes.sub m.data pos len
    | Paged pg -> (pager_exn t).p_read ~off:(pg.base + pos) ~len

let node_write t (node : node) ~pos data =
  if pos < 0 then invalid_arg "Vfs.node_write: negative pos";
  let len = Bytes.length data in
  let needed = pos + len in
  ensure_cap t node ~needed;
  (* Zero-fill any hole between current EOF and the write position, so
     sparse writes behave the same on both store kinds. *)
  (match !(node.store) with
  | Mem m ->
      Bytes.blit data 0 m.data pos len
  | Paged pg ->
      let p = pager_exn t in
      if pos > node.size then
        p.p_write ~off:(pg.base + node.size)
          (Bytes.make (pos - node.size) '\000');
      if len > 0 then p.p_write ~off:(pg.base + pos) data);
  if needed > node.size then node.size <- needed;
  len

let node_truncate _t (node : node) =
  (* Keep the extent: O_TRUNC reuse is the common case and the bump
     allocator never frees anyway. *)
  node.size <- 0

(* --- namespace operations ----------------------------------------------- *)

let fresh_node t ~now =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let store =
    if paged t then Paged { base = 0; cap = 0 } else Mem { data = Bytes.empty }
  in
  { ino; created_at = now; size = 0; store = ref store }

let open_node t ~path ~now ~create ~trunc =
  match Hashtbl.find_opt t.files path with
  | Some node ->
      if trunc then node_truncate t node;
      Some node
  | None ->
      if not create then None
      else begin
        let node = fresh_node t ~now in
        Hashtbl.replace t.files path node;
        Some node
      end

let create_file t ~path ~now =
  ignore (open_node t ~path ~now ~create:true ~trunc:true)

let unlink t ~path =
  (* POSIX semantics: only the namespace entry goes away; any open fd
     still holding the node keeps reading/writing the orphaned inode. *)
  if Hashtbl.mem t.files path then begin
    Hashtbl.remove t.files path;
    true
  end
  else false

let stat t ~path =
  Option.map
    (fun (n : node) -> { size = n.size; created_at = n.created_at })
    (Hashtbl.find_opt t.files path)

let read_at t ~path ~pos ~len =
  Option.map (fun n -> node_read t n ~pos ~len) (Hashtbl.find_opt t.files path)

let write_at t ~path ~pos data =
  Option.map
    (fun n -> node_write t n ~pos data)
    (Hashtbl.find_opt t.files path)

let size t ~path =
  Option.map (fun (n : node) -> n.size) (Hashtbl.find_opt t.files path)

let list_prefix t ~prefix =
  Hashtbl.fold
    (fun path _ acc ->
      if String.starts_with ~prefix path then path :: acc else acc)
    t.files []
  |> List.sort compare

let file_count t = Hashtbl.length t.files

let total_bytes t =
  Hashtbl.fold (fun _ (n : node) acc -> acc + n.size) t.files 0

let paged_bytes t = t.heap_cursor
