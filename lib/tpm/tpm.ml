open Hyperenclave_hw
open Hyperenclave_crypto

type t = {
  pcrs : Pcr.t;
  ek_private : Signature.private_key;
  ek_public : Signature.public_key;
  aik_private : Signature.private_key;
  aik_public : Signature.public_key;
  aik_certificate : bytes;
  storage_key : bytes; (* chip-internal symmetric root for sealing *)
  rng : Rng.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  counters : (string, int) Hashtbl.t; (* NV monotonic counters *)
}

type quote = {
  pcr_digest : bytes;
  pcr_selection : int list;
  nonce : bytes;
  signature : bytes;
  aik_public : Signature.public_key;
  aik_certificate : bytes;
  ek_public : Signature.public_key;
}

exception Unseal_failed of string

let charge t = Cycles.tick t.clock t.cost.Cost_model.tpm_command

let manufacture ~clock ~cost ~rng =
  let ek_private, ek_public = Signature.generate rng in
  let aik_private, aik_public = Signature.generate rng in
  let aik_certificate =
    Signature.sign ek_private
      (Bytes.cat (Bytes.of_string "tpm-aik-cert:") aik_public)
  in
  {
    pcrs = Pcr.create ();
    ek_private;
    ek_public;
    aik_private;
    aik_public;
    aik_certificate;
    storage_key = Rng.bytes rng 32;
    rng;
    clock;
    cost;
    counters = Hashtbl.create 4;
  }

let startup t =
  charge t;
  Pcr.reset t.pcrs

let pcrs t = t.pcrs

let pcr_extend t ~index m =
  charge t;
  Pcr.extend t.pcrs ~index m

let pcr_read t ~index =
  charge t;
  Pcr.read t.pcrs ~index

let extend_measurement t ~index blob =
  let measurement = Sha256.digest_bytes blob in
  pcr_extend t ~index measurement;
  measurement

let quote_body ~pcr_digest ~nonce =
  let buf = Buffer.create 80 in
  Buffer.add_string buf "tpm-quote:";
  Buffer.add_bytes buf pcr_digest;
  Buffer.add_bytes buf nonce;
  Buffer.to_bytes buf

(* TPM commands travel over a slow, lossy bus in real deployments; the
   fault sites fire before the chip mutates anything, so a retried
   command observes the same PCR state. *)
let quote t ~nonce ~pcr_selection =
  Hyperenclave_fault.Fault.point "tpm.quote";
  charge t;
  let pcr_digest = Pcr.selection_digest t.pcrs ~indices:pcr_selection in
  let signature = Signature.sign t.aik_private (quote_body ~pcr_digest ~nonce) in
  {
    pcr_digest;
    pcr_selection;
    nonce;
    signature;
    aik_public = t.aik_public;
    aik_certificate = t.aik_certificate;
    ek_public = t.ek_public;
  }

let verify_quote q ~expected_ek =
  Sha256.equal q.ek_public expected_ek
  && Signature.verify q.ek_public
       (Bytes.cat (Bytes.of_string "tpm-aik-cert:") q.aik_public)
       ~signature:q.aik_certificate
  && Signature.verify q.aik_public
       (quote_body ~pcr_digest:q.pcr_digest ~nonce:q.nonce)
       ~signature:q.signature

let random t n =
  charge t;
  Rng.bytes t.rng n

(* Sealed-blob AAD carries the policy (selection + digest at seal time) so
   unseal can re-check it against the live PCRs. *)
let encode_policy ~pcr_selection ~policy_digest =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr (List.length pcr_selection));
  List.iter (fun i -> Buffer.add_char buf (Char.chr i)) pcr_selection;
  Buffer.add_bytes buf policy_digest;
  Buffer.to_bytes buf

let decode_policy aad =
  if Bytes.length aad < 1 then raise (Unseal_failed "empty policy");
  let n = Char.code (Bytes.get aad 0) in
  if Bytes.length aad <> 1 + n + Sha256.digest_size then
    raise (Unseal_failed "malformed policy");
  let selection = List.init n (fun i -> Char.code (Bytes.get aad (1 + i))) in
  let digest = Bytes.sub aad (1 + n) Sha256.digest_size in
  (selection, digest)

let seal t ~pcr_selection data =
  Hyperenclave_fault.Fault.point "tpm.seal";
  charge t;
  let policy_digest = Pcr.selection_digest t.pcrs ~indices:pcr_selection in
  let aad = encode_policy ~pcr_selection ~policy_digest in
  let nonce = Rng.bytes t.rng 12 in
  Authenc.encode (Authenc.seal ~key:t.storage_key ~aad ~nonce data)

let unseal t blob =
  Hyperenclave_fault.Fault.point "tpm.unseal";
  charge t;
  let sealed =
    try Authenc.decode blob
    with Invalid_argument m -> raise (Unseal_failed ("malformed blob: " ^ m))
  in
  let selection, sealed_digest = decode_policy sealed.Authenc.aad in
  let current = Pcr.selection_digest t.pcrs ~indices:selection in
  if not (Sha256.equal current sealed_digest) then
    raise (Unseal_failed "PCR policy mismatch");
  try Authenc.unseal ~key:t.storage_key sealed
  with Authenc.Authentication_failure ->
    raise (Unseal_failed "authentication failure (wrong chip?)")

let ek_public (t : t) = t.ek_public

let counter_create t ~name =
  charge t;
  if not (Hashtbl.mem t.counters name) then Hashtbl.replace t.counters name 0

let counter_read t ~name =
  charge t;
  match Hashtbl.find_opt t.counters name with
  | Some v -> v
  | None -> raise Not_found

let counter_increment t ~name =
  charge t;
  match Hashtbl.find_opt t.counters name with
  | Some v ->
      Hashtbl.replace t.counters name (v + 1);
      v + 1
  | None -> raise Not_found
