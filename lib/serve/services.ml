open Hyperenclave_tee
module Libos = Hyperenclave_libos.Libos
module Vfs = Hyperenclave_libos.Vfs
module Resp_kv = Hyperenclave_workloads.Resp_kv
module Kvdb = Hyperenclave_workloads.Kvdb
module Httpd = Hyperenclave_workloads.Httpd
module Ycsb = Hyperenclave_workloads.Ycsb

let ecall_request = 0x5e01
let ecall_admin = 0x5e02

type kind = Resp_kv | Kvdb | Httpd

let kind_name = function
  | Resp_kv -> "resp_kv"
  | Kvdb -> "kvdb"
  | Httpd -> "httpd"

(* --- in-enclave runtime plumbing ----------------------------------------- *)

(* The LibOS instance a service runs on, built lazily from the first
   call's [Backend.env] (the closures underneath are per-enclave, so the
   cached instance stays valid across calls and ring dispatches).  The
   VFS pages against the enclave's demand-paged heap, and all socket
   traffic rides loopback queues — a ring-dispatched handler must not
   OCALL, and with this runtime it never needs to. *)
type instance = {
  os : Libos.t;
  sock : int; (* control: request in, reply out *)
  body_sock : int; (* httpd body streaming, drained in-enclave *)
  epfd : int;
}

let rt_of_env (env : Backend.env) =
  {
    Libos.rt_clock = env.Backend.clock;
    rt_compute = env.Backend.compute;
    rt_ocall = (fun ~id data -> env.Backend.ocall ~id ~data ());
    rt_ocall_switchless = (fun ~id data -> env.Backend.ocall ~id ~data ());
  }

let pager_of_env (env : Backend.env) =
  {
    Vfs.p_read = (fun ~off ~len -> env.Backend.heap_read ~off ~len);
    p_write = (fun ~off data -> env.Backend.heap_write ~off data);
  }

let make_instance (env : Backend.env) =
  let os = Libos.create_rt (rt_of_env env) ~pager:(pager_of_env env) () in
  let sock = Libos.socket ~loopback:true os in
  let body_sock = Libos.socket ~loopback:true os in
  let epfd = Libos.epoll_create os in
  Libos.epoll_add os ~epfd ~fd:sock ~rd:true ~wr:false;
  { os; sock; body_sock; epfd }

let instance_of cell env =
  match !cell with
  | Some i -> i
  | None ->
      let i = make_instance env in
      cell := Some i;
      i

(* One request through the event loop: deliver the decrypted payload to
   the loopback socket, wait for readiness, recv, dispatch, send the
   reply back, and hand the drained reply bytes to the caller (who seals
   them into the ring slot). *)
let drive (i : instance) ~dispatch input =
  Libos.sock_deliver i.os i.sock input;
  let ready = Libos.epoll_wait i.os ~epfd:i.epfd in
  let readable =
    List.exists (fun (fd, ev) -> fd = i.sock && ev.Libos.rd) ready
  in
  if not readable then Bytes.of_string "-ERR socket not ready"
  else begin
    let raw = Libos.recv i.os i.sock ~len:(Bytes.length input) in
    let reply = dispatch (Bytes.to_string raw) in
    ignore (Libos.send i.os i.sock (Bytes.of_string reply));
    Libos.sock_drain i.os i.sock
  end

let parse_admin tag raw =
  match String.split_on_char ':' raw with
  | t :: rest when t = tag -> Some rest
  | _ -> None

(* --- resp_kv: RESP commands against a Store, SETs journaled to an AOF --- *)

let aof_path = "/var/lib/resp/appendonly.aof"

let resp_handlers () =
  let store = Resp_kv.Store.create () in
  let cell = ref None in
  let aof = ref (-1) in
  let get_instance env =
    match !cell with
    | Some i -> i
    | None ->
        let i = instance_of cell env in
        aof := Libos.openf i.os ~path:aof_path [ Libos.O_creat; Libos.O_append ];
        i
  in
  let exec_one i env parts =
    let reply = Resp_kv.Store.exec store env parts in
    (match parts with
    | cmd :: _ when String.lowercase_ascii cmd = "set" ->
        (* Journal mutations redis-AOF-style: O_APPEND lands each record
           at the inode's EOF no matter who seeked the fd. *)
        ignore (Libos.write i.os !aof (Resp_kv.encode_command parts))
    | _ -> ());
    reply
  in
  let request env input =
    let i = get_instance env in
    drive i input ~dispatch:(fun raw ->
        match Resp_kv.parse_pipeline raw with
        | Result.Error e -> "-ERR " ^ e
        | Result.Ok commands ->
            String.concat "\r" (List.map (exec_one i env) commands))
  in
  let admin env input =
    let i = get_instance env in
    match parse_admin "load" (Bytes.to_string input) with
    | Some [ n ] ->
        let records = int_of_string n in
        for key = 0 to records - 1 do
          ignore
            (exec_one i env
               [ "SET"; Resp_kv.key_name key; Resp_kv.value_for key ])
        done;
        Bytes.of_string (string_of_int (Resp_kv.Store.size store))
    | Some _ | None -> invalid_arg "Services.resp_kv: bad admin request"
  in
  [ (ecall_request, request); (ecall_admin, admin) ]

(* --- kvdb: SQL text against the engine, mutations journaled to a WAL --- *)

let wal_path = "/var/lib/kv/wal"

let kvdb_handlers () =
  let engine = Kvdb.Engine.create () in
  let cell = ref None in
  let wal = ref (-1) in
  let get_instance env =
    match !cell with
    | Some i -> i
    | None ->
        let i = instance_of cell env in
        wal := Libos.openf i.os ~path:wal_path [ Libos.O_creat; Libos.O_append ];
        i
  in
  let exec_sql i env stmt =
    let result = Kvdb.Engine.exec engine stmt in
    Kvdb.charge_engine env engine;
    (match result with
    | Result.Ok _
      when String.length stmt > 0 && (stmt.[0] = 'I' || stmt.[0] = 'U'
                                     || stmt.[0] = 'i' || stmt.[0] = 'u') ->
        ignore (Libos.write i.os !wal (Bytes.of_string (stmt ^ "\n")))
    | Result.Ok _ | Result.Error _ -> ());
    result
  in
  let request env input =
    let i = get_instance env in
    drive i input ~dispatch:(fun stmt ->
        match exec_sql i env stmt with
        | Result.Ok v -> "+" ^ v
        | Result.Error m -> "-ERR " ^ m)
  in
  let admin env input =
    let i = get_instance env in
    match parse_admin "load" (Bytes.to_string input) with
    | Some [ n ] ->
        let records = int_of_string n in
        for key = 0 to records - 1 do
          match
            exec_sql i env
              (Printf.sprintf "INSERT INTO kv VALUES (%d, '%s')" key
                 (Kvdb.value_literal key))
          with
          | Result.Ok _ -> ()
          | Result.Error m -> failwith ("Services.kvdb load: " ^ m)
        done;
        Bytes.of_string (string_of_int records)
    | Some _ | None -> invalid_arg "Services.kvdb: bad admin request"
  in
  [ (ecall_request, request); (ecall_admin, admin) ]

(* --- httpd: GETs against a file-backed VFS docroot ----------------------- *)

let docroot_prefix = "/srv/www"

let httpd_handlers () =
  let cell = ref None in
  let request env input =
    let i = instance_of cell env in
    drive i input ~dispatch:(fun raw ->
        match Httpd.parse_request raw with
        | Result.Error e -> "HTTP/1.1 400 " ^ e
        | Result.Ok { Httpd.meth; path; headers = _ } ->
            env.Backend.compute
              (Httpd.per_request_cost
              + (Httpd.per_parse_char * String.length raw));
            if meth <> "GET" then "HTTP/1.1 405 method not allowed"
            else
              let full = docroot_prefix ^ path in
              if not (Vfs.exists (Libos.vfs i.os) ~path:full) then
                "HTTP/1.1 404 not found"
              else begin
                let fd = Libos.openf i.os ~path:full [ Libos.O_rdonly ] in
                let size = Libos.fstat_size i.os fd in
                env.Backend.compute (Httpd.body_cost size);
                (* Stream the body through the loopback body socket in
                   write() chunks, draining in-enclave: file pages fault
                   in through the demand-paged heap as they are read. *)
                let sent = ref 0 in
                while !sent < size do
                  let chunk = Libos.read i.os fd ~len:Httpd.chunk_bytes in
                  if Bytes.length chunk = 0 then failwith "Services.httpd: short read"
                  else begin
                    ignore (Libos.send i.os i.body_sock chunk);
                    ignore (Libos.sock_drain i.os i.body_sock);
                    env.Backend.compute Httpd.per_chunk_net;
                    sent := !sent + Bytes.length chunk
                  end
                done;
                Libos.close i.os fd;
                Printf.sprintf "HTTP/1.1 200 OK bytes=%d" size
              end)
  in
  let admin env input =
    let i = instance_of cell env in
    match parse_admin "page" (Bytes.to_string input) with
    | Some [ path; bytes ] ->
        let size = int_of_string bytes in
        let full = docroot_prefix ^ path in
        let fd =
          Libos.openf i.os ~path:full
            [ Libos.O_creat; Libos.O_trunc; Libos.O_wronly ]
        in
        let written = ref 0 in
        while !written < size do
          let chunk = min Httpd.chunk_bytes (size - !written) in
          ignore (Libos.write i.os fd (Ycsb.record_value ~key:!written ~size:chunk));
          written := !written + chunk
        done;
        Libos.close i.os fd;
        Bytes.of_string (string_of_int size)
    | Some _ | None -> invalid_arg "Services.httpd: bad admin request"
  in
  [ (ecall_request, request); (ecall_admin, admin) ]

(* --- registration -------------------------------------------------------- *)

let handlers = function
  | Resp_kv -> resp_handlers ()
  | Kvdb -> kvdb_handlers ()
  | Httpd -> httpd_handlers ()

let backend_config ?(backend = Backend.Hyperenclave Hyperenclave_monitor.Sgx_types.GU)
    kind =
  { (Backend.config backend) with Backend.handlers = handlers kind }

(* --- client-side request builders ---------------------------------------- *)

let request_of_op kind op =
  match kind with
  | Resp_kv -> Resp_kv.encode_command (Resp_kv.parts_of_op op)
  | Kvdb -> Bytes.of_string (Kvdb.stmt_of_op op)
  | Httpd -> invalid_arg "Services.request_of_op: httpd serves paths, not ops"

let http_request ~path =
  Bytes.of_string (Printf.sprintf "GET %s HTTP/1.1\nhost: svc\n" path)

let load_request ~records = Bytes.of_string (Printf.sprintf "load:%d" records)

let page_request ~path ~bytes =
  Bytes.of_string (Printf.sprintf "page:%s:%d" path bytes)

let reply_ok kind reply =
  let s = Bytes.to_string reply in
  match kind with
  | Resp_kv | Kvdb ->
      String.length s > 0 && s.[0] <> '-'
      && not (String.length s >= 4 && String.sub s 0 4 = "$-1\n")
  | Httpd -> String.length s >= 12 && String.sub s 9 3 = "200"
