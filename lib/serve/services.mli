(** Real applications as in-enclave services behind {!Serve}.

    The registration layer of ROADMAP item 2: a tenant becomes an enclave
    running one of the {!Hyperenclave_workloads} applications on the
    {!Hyperenclave_libos.Libos} runtime, and the decrypted ring-slot
    payloads of the attested plane become workload requests —

    - {b resp_kv}: RESP command pipelines against a per-tenant
      {!Hyperenclave_workloads.Resp_kv.Store}, with SET commands
      journaled to an append-only file (the redis AOF shape);
    - {b kvdb}: SQL text against the mini engine (YCSB point reads,
      updates and BETWEEN range scans), mutations journaled to a WAL;
    - {b httpd}: HTTP GETs resolved against a file-backed VFS docroot
      whose extents live in the demand-paged enclave heap, bodies
      streamed in write() chunks.

    Every service runs on a lazily-built LibOS instance: requests enter
    through a loopback socket ({!Hyperenclave_libos.Libos.sock_deliver}),
    an epoll wait gates the read, and replies leave through
    {!Hyperenclave_libos.Libos.sock_drain} — no OCALLs, so the handlers
    dispatch switchlessly inside arena ring slots, and the reply the
    plane seals in place is exactly what the application wrote to its
    socket.  Adding a new service scenario is one [handlers]-shaped
    function (~a page of code).

    Handlers never raise on malformed input that arrives through the
    plane: protocol errors come back as typed in-band replies
    (["-ERR ..."], ["HTTP/1.1 400 ..."]). *)

open Hyperenclave_tee

type kind = Resp_kv | Kvdb | Httpd

val kind_name : kind -> string

val ecall_request : int
(** One service request: RESP pipeline bytes / a SQL statement / an HTTP
    request.  The reply must fit the plane's ring [slot_bytes]. *)

val ecall_admin : int
(** Operator setup (bulk load, docroot population) — driven directly
    through the backend by whoever owns the tenant, not over sessions. *)

val handlers : kind -> (int * Backend.handler) list

val backend_config : ?backend:Backend.kind -> kind -> Backend.config
(** A tenant config running this service (default backend: HyperEnclave
    GU mode) — pass to {!Serve.add_tenant}. *)

(** {1 Client-side request builders} *)

val request_of_op : kind -> Hyperenclave_workloads.Ycsb.op -> bytes
(** The wire request for a YCSB operation ({!Resp_kv} and {!Kvdb} only). *)

val http_request : path:string -> bytes

val load_request : records:int -> bytes
(** [ecall_admin] payload: bulk-load [records] keyed rows. *)

val page_request : path:string -> bytes:int -> bytes
(** [ecall_admin] payload: create a docroot file of [bytes] at [path]. *)

val reply_ok : kind -> bytes -> bool
(** Did the service answer affirmatively (no ["-ERR"], no miss, HTTP
    200)? *)
