open Hyperenclave_hw
open Hyperenclave_tee
module Sched = Hyperenclave_sched.Sched
module Urts = Hyperenclave_sdk.Urts
module Edge = Hyperenclave_sdk.Edge
module Monitor = Hyperenclave_monitor.Monitor
module World_switch = Hyperenclave_monitor.World_switch
module Sgx_types = Hyperenclave_monitor.Sgx_types
module Verifier = Hyperenclave_attestation.Verifier
module Wire = Hyperenclave_attestation.Wire
module Kx = Hyperenclave_crypto.Kx
module Authenc = Hyperenclave_crypto.Authenc
module Sha256 = Hyperenclave_crypto.Sha256
module Signature = Hyperenclave_crypto.Signature
module Tpm = Hyperenclave_tpm.Tpm
module Pcr = Hyperenclave_tpm.Pcr
module Fault = Hyperenclave_fault.Fault
module Telemetry = Hyperenclave_obs.Telemetry

(* ---------------------------------------------------------------------- *)
(* Typed rejections                                                       *)

type reject =
  | Handshake_failed of Verifier.failure
  | Channel_binding_mismatch
  | Bad_wire of string
  | Unknown_key_share
  | Replayed_nonce
  | Unknown_tenant of string
  | Unknown_session of int
  | Unsupported of string
  | Bad_auth
  | Bad_sequence of { expected : int; got : int }
  | Backpressure of { tenant : string; queued : int; limit : int }
  | Quota_exhausted of { tenant : string; spent : int; quota : int }
  | Session_fault of string
  | Bad_ticket of string
  | Ticket_expired
  | Session_migrated of { to_node : int }
  | Tenant_migrated of { tenant : string; to_node : int }
  | Tenant_busy of { tenant : string; staged : int }
  | Import_conflict of string

let reject_name = function
  | Handshake_failed _ -> "handshake-failed"
  | Channel_binding_mismatch -> "channel-binding"
  | Bad_wire _ -> "bad-wire"
  | Unknown_key_share -> "unknown-key-share"
  | Replayed_nonce -> "replayed-nonce"
  | Unknown_tenant _ -> "unknown-tenant"
  | Unknown_session _ -> "unknown-session"
  | Unsupported _ -> "unsupported"
  | Bad_auth -> "bad-auth"
  | Bad_sequence _ -> "bad-sequence"
  | Backpressure _ -> "backpressure"
  | Quota_exhausted _ -> "quota-exhausted"
  | Session_fault _ -> "session-fault"
  | Bad_ticket _ -> "bad-ticket"
  | Ticket_expired -> "ticket-expired"
  | Session_migrated _ -> "session-migrated"
  | Tenant_migrated _ -> "tenant-migrated"
  | Tenant_busy _ -> "tenant-busy"
  | Import_conflict _ -> "import-conflict"

let pp_reject fmt = function
  | Handshake_failed f ->
      Format.fprintf fmt "handshake failed: %a" Verifier.pp_failure f
  | Channel_binding_mismatch ->
      Format.pp_print_string fmt "quote does not bind this transcript"
  | Bad_wire m -> Format.fprintf fmt "malformed quote wire: %s" m
  | Unknown_key_share -> Format.pp_print_string fmt "unknown key-exchange share"
  | Replayed_nonce -> Format.pp_print_string fmt "handshake nonce replayed"
  | Unknown_tenant n -> Format.fprintf fmt "unknown tenant %s" n
  | Unknown_session id -> Format.fprintf fmt "unknown session %d" id
  | Unsupported m -> Format.fprintf fmt "unsupported: %s" m
  | Bad_auth -> Format.pp_print_string fmt "request authentication failed"
  | Bad_sequence { expected; got } ->
      Format.fprintf fmt "bad sequence number: expected %d, got %d" expected got
  | Backpressure { tenant; queued; limit } ->
      Format.fprintf fmt "tenant %s queue full (%d/%d)" tenant queued limit
  | Quota_exhausted { tenant; spent; quota } ->
      Format.fprintf fmt "tenant %s cycle quota exhausted (%d/%d)" tenant spent
        quota
  | Session_fault m -> Format.fprintf fmt "session fault: %s" m
  | Bad_ticket m -> Format.fprintf fmt "bad session ticket: %s" m
  | Ticket_expired -> Format.pp_print_string fmt "session ticket expired"
  | Session_migrated { to_node } ->
      Format.fprintf fmt "session migrated to node %d" to_node
  | Tenant_migrated { tenant; to_node } ->
      Format.fprintf fmt "tenant %s migrated to node %d" tenant to_node
  | Tenant_busy { tenant; staged } ->
      Format.fprintf fmt "tenant %s has %d staged requests mid-flush" tenant
        staged
  | Import_conflict m -> Format.fprintf fmt "migration import conflict: %s" m

(* ---------------------------------------------------------------------- *)
(* Plane state                                                            *)

type config = {
  sched : Sched.config;
  max_queue : int;
  cycle_quota : int option;
  state_stride_pages : int;
  nonce_cache : int;
      (** replay-cache bound: only the last [nonce_cache] handshake /
          resume nonces are remembered *)
  ticket_ttl : int;  (** session-ticket lifetime, shared-clock cycles *)
  arena : bool;
      (** allocation-free data path: stage admissions into flat reusable
          arenas and dispatch through per-shard marshalling-buffer rings
          where the slot is the AEAD envelope.  Off = the list-structured
          reference path (kept as the byte-identity oracle). *)
  shard_block : int;
      (** consecutive per-session requests assigned to one ring shard
          before the plane rotor moves to the next — small enough that a
          single hot session spreads across every core, large enough to
          keep a session's replies mostly on one reply segment *)
  slot_bytes : int;  (** ring slot payload capacity (multiple of 8) *)
}

let default_config =
  {
    sched = { Sched.default_config with Sched.drop_on_error = true };
    max_queue = 64;
    cycle_quota = None;
    state_stride_pages = 16;
    nonce_cache = 1024;
    ticket_ttl = 1_000_000_000;
    arena = true;
    shard_block = 8;
    slot_bytes = 256;
  }

(* Placeholders the stage arrays are filled with so dead entries never
   pin client envelopes (or stale fallback replies) against the GC. *)
let dummy_sealed =
  {
    Authenc.nonce = Bytes.empty;
    ciphertext = Bytes.empty;
    tag = Bytes.empty;
    aad = Bytes.empty;
  }

let dummy_outcome : (bytes, string) result = Ok Bytes.empty

(* Flat admission arena: one slot per staged request, recycled across
   flushes.  [sg_sids.(i) = -1] marks a slot whose session closed while
   staged (the arena analogue of dropping [s.pending]).  [sg_shards] /
   [sg_slots] / [sg_fb] are flush-time scratch columns: which ring shard
   served entry [i] (or [-2] = the non-SDK fallback batch), the slot
   index inside that ring, and the fallback outcome. *)
type stage = {
  mutable sg_sids : int array;
  mutable sg_seqs : int array;
  mutable sg_ecalls : int array;
  mutable sg_envs : Authenc.sealed array;
  mutable sg_shards : int array;
  mutable sg_slots : int array;
  mutable sg_fb : (bytes, string) result array;
  mutable sg_n : int;
}

let fallback_shard = -2

let stage_push (st : stage) ~sid ~seq ~ecall ~env =
  let n = st.sg_n in
  if n = Array.length st.sg_sids then begin
    (* Doubling growth: the only allocation the admission path ever does,
       and only until the arena reaches the tenant's high-water mark. *)
    let cap = max 16 (2 * n) in
    let grow_int a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 n;
      b
    in
    let grow_env a =
      let b = Array.make cap dummy_sealed in
      Array.blit a 0 b 0 n;
      b
    in
    let grow_fb a =
      let b = Array.make cap dummy_outcome in
      Array.blit a 0 b 0 n;
      b
    in
    st.sg_sids <- grow_int st.sg_sids;
    st.sg_seqs <- grow_int st.sg_seqs;
    st.sg_ecalls <- grow_int st.sg_ecalls;
    st.sg_envs <- grow_env st.sg_envs;
    st.sg_shards <- grow_int st.sg_shards;
    st.sg_slots <- grow_int st.sg_slots;
    st.sg_fb <- grow_fb st.sg_fb
  end;
  st.sg_sids.(n) <- sid;
  st.sg_seqs.(n) <- seq;
  st.sg_ecalls.(n) <- ecall;
  st.sg_envs.(n) <- env;
  st.sg_n <- n + 1

type tenant = {
  t_name : string;
  t_req_counter : string;  (* "serve.tenant.<name>.requests", precomputed *)
  t_cyc_counter : string;  (* "serve.tenant.<name>.cycles" *)
  backend : Backend.t;
  mutable queued : int;
  mutable spent : int;
  mutable budget : int;  (* max_int when unmetered *)
  mutable next_slot : int;
  mutable free_slots : int list;
      (* state slots recycled by [close_session], reused before
         [next_slot] grows the stride arena *)
  mutable t_migrated_to : int option;
      (* set by [retire_tenant] at migration cutover: new handshakes and
         resumes answer with a typed forward to the destination node *)
  stage : stage;
  rings : Urts.ring option array;  (* per shard, built on first use *)
  ring_err : string option array;  (* per-shard failure, one flush *)
  ring_gen : int array;  (* last flush generation that used the shard *)
}

type session = {
  s_id : int;
  tenant : tenant;
  key : bytes;
  keys : Authenc.keys;
      (* prepared once at establishment: the per-request AEAD setup the
         one-shot seal/unseal paths pay is amortized to zero here *)
  state_slot : int;
  mutable recv_seq : int;
  mutable s_pages : int;
      (* high-water EDMM page count: what a migration must carry so the
         destination can rebuild the session's committed state *)
  mutable pending : (int * int * Authenc.sealed) list;
      (* rev (seq, ecall, envelope): envelopes are admitted
         tag-verified but still encrypted — the in-place decrypt is
         deferred to the batched flush *)
}

(* The attested name a serve plane answers under in a fleet: which node
   it is, which monitor speaks for it, and that monitor's measured-boot
   digest.  Threaded explicitly (rather than read off the platform at
   use sites) so every quote-verification decision names its trust
   anchor. *)
type identity = {
  node_id : int;
  hapk : Signature.public_key;
  pcr_digest : bytes;
}

let identity_of_platform ?(node_id = 0) (p : Platform.t) =
  {
    node_id;
    hapk = Monitor.hapk p.Platform.monitor;
    pcr_digest =
      Pcr.selection_digest
        (Tpm.pcrs p.Platform.tpm)
        ~indices:Monitor.quote_pcr_selection;
  }

type t = {
  platform : Platform.t;
  identity : identity;
  config : config;
  rng : Rng.t;
  telemetry : Telemetry.t;
  sched : Sched.t;
  tenants : (string, tenant) Hashtbl.t;
  mutable tenant_order : string list;  (* reverse insertion order *)
  sessions : (int, session) Hashtbl.t;
  migrated : (int, int) Hashtbl.t;
      (* session id -> destination node: after cutover a straggler
         addressing a moved session gets a typed forward, not a bare
         unknown-session *)
  seen_nonces : (string, unit) Hashtbl.t;
  nonce_order : string Queue.t;  (* FIFO eviction for the replay cache *)
  ticket_key : bytes;  (* plane sealing key for resumption tickets *)
  mutable next_session : int;
  mutable qe : Urts.t option;  (* lazily-built quoting enclave *)
  mutable destroyed : bool;
  (* --- arena path --- *)
  shards : int;  (* ring shards per tenant = scheduler cores *)
  mutable rotor : int;
      (* plane-wide block rotor: each [shard_block]-long run of staged
         requests takes the next shard, so both many-tenant and single
         hot-tenant flushes spread over every core *)
  mutable flush_gen : int;
  fault_msgs : (int, string) Hashtbl.t;  (* session faults, one flush *)
  aad_scratch : bytes;  (* admission-path AAD render, no allocation *)
  mutable sid_scratch : int array;  (* distinct staged sessions, sorted *)
  mutable sid_count : int;
  mutable hw_staged : int;  (* high-water marks behind the telemetry *)
  mutable hw_shards : int;
}

let fault_site = "serve.session"

module Node_config = struct
  type serve_config = config

  type t = { identity : identity; serve : serve_config }

  let v ?node_id ~platform serve =
    { identity = identity_of_platform ?node_id platform; serve }
end

let create_node ~platform (nc : Node_config.t) =
  let config = nc.Node_config.serve in
  let config =
    { config with sched = { config.sched with Sched.drop_on_error = true } }
  in
  if config.max_queue <= 0 then
    invalid_arg "Serve.create_node: max_queue must be positive";
  if config.state_stride_pages <= 0 then
    invalid_arg "Serve.create_node: state_stride_pages must be positive";
  (match config.cycle_quota with
  | Some q when q <= 0 ->
      invalid_arg "Serve.create_node: cycle_quota must be positive"
  | _ -> ());
  if config.nonce_cache <= 0 then
    invalid_arg "Serve.create_node: nonce_cache must be positive";
  if config.ticket_ttl <= 0 then
    invalid_arg "Serve.create_node: ticket_ttl must be positive";
  if config.shard_block <= 0 then
    invalid_arg "Serve.create_node: shard_block must be positive";
  if config.slot_bytes <= 0 || config.slot_bytes mod 8 <> 0 then
    invalid_arg "Serve.create_node: slot_bytes must be a positive multiple of 8";
  let identity = nc.Node_config.identity in
  (* The identity must speak for THIS platform's monitor: a plane that
     advertised another node's hapk would hand out quotes its own
     monitor cannot back. *)
  if
    not
      (Signature.equal_public identity.hapk
         (Monitor.hapk platform.Platform.monitor))
  then
    invalid_arg
      "Serve.create_node: identity hapk does not match this platform's monitor";
  let telemetry = Monitor.telemetry platform.Platform.monitor in
  let rng = Rng.split platform.Platform.rng in
  {
    platform;
    identity;
    config;
    rng;
    telemetry;
    sched =
      Sched.create ~shared_clock:platform.Platform.clock ~telemetry config.sched;
    tenants = Hashtbl.create 8;
    tenant_order = [];
    sessions = Hashtbl.create 16;
    migrated = Hashtbl.create 16;
    seen_nonces = Hashtbl.create 64;
    nonce_order = Queue.create ();
    ticket_key = Rng.bytes rng 32;
    (* Node-prefixed session id space: ids stay distinct across a fleet,
       so a migrated session keeps its id on the destination without
       colliding with locally-opened ones.  Node 0 (the single-node
       case) keeps the familiar 0, 1, 2, ... *)
    next_session = identity.node_id lsl 20;
    qe = None;
    destroyed = false;
    shards = max 1 config.sched.Sched.cores;
    rotor = 0;
    flush_gen = 0;
    fault_msgs = Hashtbl.create 8;
    aad_scratch = Bytes.create 34;
    sid_scratch = Array.make 16 0;
    sid_count = 0;
    hw_staged = 0;
    hw_shards = 0;
  }

let identity t = t.identity

let reject t r =
  Telemetry.incr t.telemetry ("serve.reject." ^ reject_name r);
  Error r

(* A session id that is neither live nor migrated is unknown; a migrated
   one forwards the caller to the node that now owns it. *)
let session_reject t id =
  match Hashtbl.find_opt t.migrated id with
  | Some to_node -> Session_migrated { to_node }
  | None -> Unknown_session id

let backoff t attempt =
  Cycles.tick t.platform.Platform.clock
    (World_switch.retry_backoff_cost t.platform.Platform.cost ~attempt)

(* Channel crypto cost: the plane's AEAD (AES-CTR + HMAC) runs at a few
   cycles per byte with a fixed setup.  The one-shot paths (handshake,
   tickets) pay setup + bytes per call; the zero-copy request path pays
   the setup once per prepared session / ring batch and per-byte
   everywhere else — the crypto analogue of the ECALL ring amortizing
   EENTER. *)
let aead_setup_cycles = 2_000
let aead_byte_cycles = 3
let aead_cycles ~bytes = aead_setup_cycles + (aead_byte_cycles * bytes)

let charge_aead t ~bytes =
  Cycles.tick t.platform.Platform.clock (aead_cycles ~bytes)

let charge_aead_setup t = Cycles.tick t.platform.Platform.clock aead_setup_cycles

let charge_aead_bytes t ~bytes =
  Cycles.tick t.platform.Platform.clock (aead_byte_cycles * bytes)

(* Bounded replay cache: burn a nonce, evicting oldest entries past the
   configured bound so session churn cannot grow the table without
   limit.  Returns [true] when the nonce was already burnt. *)
let nonce_replayed t nonce =
  let key = Bytes.to_string nonce in
  if Hashtbl.mem t.seen_nonces key then true
  else begin
    Hashtbl.replace t.seen_nonces key ();
    Queue.push key t.nonce_order;
    while Queue.length t.nonce_order > t.config.nonce_cache do
      Hashtbl.remove t.seen_nonces (Queue.pop t.nonce_order)
    done;
    false
  end

(* EDMM state slots are recycled through the tenant's free list before
   the stride arena grows — open/close churn reuses slots instead of
   leaking them. *)
let alloc_slot (tn : tenant) =
  match tn.free_slots with
  | slot :: rest ->
      tn.free_slots <- rest;
      slot
  | [] ->
      let slot = tn.next_slot in
      tn.next_slot <- slot + 1;
      slot

(* ---------------------------------------------------------------------- *)
(* Session state ECALL (EDMM-backed elastic per-session state)            *)

let state_ecall = 0x5e55

(* Touch [pages] heap pages starting at byte [off]: on the HyperEnclave
   backends each first touch demand-commits an EPC page through the
   monitor's EDMM path; native backs it with scratch memory. *)
let state_handler (env : Backend.env) input =
  if Bytes.length input <> 16 then
    invalid_arg "serve: malformed session-state request";
  let off = Int64.to_int (Bytes.get_int64_le input 0) in
  let pages = Int64.to_int (Bytes.get_int64_le input 8) in
  if off < 0 || pages < 0 then invalid_arg "serve: negative session-state range";
  for i = 0 to pages - 1 do
    env.Backend.heap_write ~off:(off + (i * Addr.page_size)) (Bytes.make 1 '\001')
  done;
  let reply = Bytes.create 8 in
  Bytes.set_int64_le reply 0 (Int64.of_int pages);
  reply

(* Migration-time state movers: read a session's committed heap range out
   for export, write it back on the destination.  [off:8][len:8] in /
   raw bytes out, and [off:8][data...] in / [written:8] out. *)
let state_read_ecall = 0x5e56

let state_read_handler (env : Backend.env) input =
  if Bytes.length input <> 16 then
    invalid_arg "serve: malformed session-state read";
  let off = Int64.to_int (Bytes.get_int64_le input 0) in
  let len = Int64.to_int (Bytes.get_int64_le input 8) in
  if off < 0 || len < 0 then invalid_arg "serve: negative session-state range";
  env.Backend.heap_read ~off ~len

let state_write_ecall = 0x5e57

let state_write_handler (env : Backend.env) input =
  if Bytes.length input < 8 then
    invalid_arg "serve: malformed session-state write";
  let off = Int64.to_int (Bytes.get_int64_le input 0) in
  if off < 0 then invalid_arg "serve: negative session-state offset";
  let data = Bytes.sub input 8 (Bytes.length input - 8) in
  env.Backend.heap_write ~off data;
  let reply = Bytes.create 8 in
  Bytes.set_int64_le reply 0 (Int64.of_int (Bytes.length data));
  reply

let reserved_ecalls = [ state_ecall; state_read_ecall; state_write_ecall ]

let add_tenant t ~name (bc : Backend.config) =
  if Hashtbl.mem t.tenants name then
    invalid_arg (Printf.sprintf "Serve.add_tenant: duplicate tenant %s" name);
  List.iter
    (fun id ->
      if List.mem_assoc id bc.Backend.handlers then
        invalid_arg
          (Printf.sprintf
             "Serve.add_tenant: ECALL %#x is reserved for session state" id))
    reserved_ecalls;
  let bc =
    {
      bc with
      Backend.handlers =
        bc.Backend.handlers
        @ [
            (state_ecall, state_handler);
            (state_read_ecall, state_read_handler);
            (state_write_ecall, state_write_handler);
          ];
    }
  in
  let bc =
    (* Arena tenants carve [shards] request and reply segments out of the
       marshalling buffer, each big enough to ring the whole admission
       queue: size the buffer up front so a worst-case flush (every
       staged request landing on one shard) can never outgrow a ring.
       Quadruple [need] because the input region is half the buffer and
       the reply region a quarter, plus a page of alignment slack per
       segment. *)
    match bc.Backend.kind with
    | Backend.Hyperenclave _ when t.config.arena ->
        let need =
          8 + (t.config.max_queue * (16 + t.config.slot_bytes))
        in
        let ms_min =
          Addr.align_up ((4 * t.shards * need) + (4 * Addr.page_size))
        in
        let ms_bytes =
          match bc.Backend.ms_bytes with
          | Some b -> max b ms_min
          | None -> max (Urts.default_config Sgx_types.GU).Urts.ms_bytes ms_min
        in
        { bc with Backend.ms_bytes = Some ms_bytes }
    | _ -> bc
  in
  let backend = Backend.create t.platform bc in
  let tenant =
    {
      t_name = name;
      t_req_counter = "serve.tenant." ^ name ^ ".requests";
      t_cyc_counter = "serve.tenant." ^ name ^ ".cycles";
      backend;
      queued = 0;
      spent = 0;
      budget = (match t.config.cycle_quota with Some q -> q | None -> max_int);
      next_slot = 0;
      free_slots = [];
      t_migrated_to = None;
      stage =
        {
          sg_sids = [||];
          sg_seqs = [||];
          sg_ecalls = [||];
          sg_envs = [||];
          sg_shards = [||];
          sg_slots = [||];
          sg_fb = [||];
          sg_n = 0;
        };
      rings = Array.make t.shards None;
      ring_err = Array.make t.shards None;
      ring_gen = Array.make t.shards 0;
    }
  in
  Hashtbl.replace t.tenants name tenant;
  t.tenant_order <- name :: t.tenant_order;
  backend

let quoting_urts t =
  match t.qe with
  | Some u -> u
  | None ->
      let u =
        Urts.create ~kmod:t.platform.Platform.kmod ~proc:t.platform.Platform.proc
          ~rng:t.platform.Platform.rng ~signer:t.platform.Platform.signer
          ~config:
            {
              (Urts.default_config Sgx_types.GU) with
              Urts.code_seed = "serve-quoting-enclave";
            }
          ~ecalls:[] ~ocalls:[]
      in
      t.qe <- Some u;
      u

let quoting_identity t = Urts.mrenclave (quoting_urts t)

(* The node's own attestation voice: a quote from the plane's quoting
   enclave, signed by this node's monitor — what a migration peer or
   fleet control plane verifies before trusting the node with sealed
   state. *)
let node_quote t ~report_data ~nonce =
  Urts.gen_quote (quoting_urts t) ~report_data ~nonce

(* ---------------------------------------------------------------------- *)
(* Handshake                                                              *)

type hello = { nonce : bytes; client_kx : Kx.public }

type accept = {
  session_id : int;
  node_id : int;  (** which fleet node accepted — clients route follow-ups *)
  server_kx : Kx.public;
  quote_wire : bytes;
  tenant_identity : bytes;
}

(* Every field is length-prefixed so distinct transcripts can never
   collide by concatenation. *)
let transcript ~nonce ~client_kx ~server_kx ~identity =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "hyperenclave-serve-sigma:";
  List.iter
    (fun field ->
      let len = Bytes.create 8 in
      Bytes.set_int64_le len 0 (Int64.of_int (Bytes.length field));
      Sha256.update ctx len;
      Sha256.update ctx field)
    [ nonce; client_kx; server_kx; identity ];
  Sha256.finalize ctx

let derive_key ~shared ~nonce =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "hyperenclave-serve-key:";
  Sha256.update ctx shared;
  Sha256.update ctx nonce;
  Sha256.finalize ctx

let injected_msg site kind =
  Printf.sprintf "injected %s fault at %s" (Fault.kind_name kind) site

let handshake t ~tenant hello =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> reject t (Unknown_tenant tenant)
  | Some { t_migrated_to = Some to_node; _ } ->
      reject t (Tenant_migrated { tenant; to_node })
  | Some tn -> (
      (* Burn the nonce even when the handshake later fails: a replayed
         challenge must never get a second quote. *)
      if nonce_replayed t hello.nonce then begin
        Telemetry.incr t.telemetry "serve.handshake_rejected";
        reject t Replayed_nonce
      end
      else begin
        match tn.backend.Backend.identity with
        | None ->
            Telemetry.incr t.telemetry "serve.handshake_rejected";
            reject t
              (Unsupported "native backend has no enclave identity to attest")
        | Some tenant_identity -> (
            match
              Fault.with_retries ~backoff:(backoff t) (fun () ->
                  Fault.point fault_site;
                  let secret, server_kx = Kx.generate t.rng in
                  let report_data =
                    transcript ~nonce:hello.nonce ~client_kx:hello.client_kx
                      ~server_kx ~identity:tenant_identity
                  in
                  let quoter =
                    match tn.backend.Backend.urts with
                    | Some u -> u
                    | None -> quoting_urts t
                  in
                  let quote =
                    Urts.gen_quote quoter ~report_data ~nonce:hello.nonce
                  in
                  (secret, server_kx, Wire.encode quote))
            with
            | exception Fault.Injected { site; kind } ->
                Telemetry.incr t.telemetry "serve.handshake_rejected";
                reject t (Session_fault (injected_msg site kind))
            | secret, server_kx, quote_wire -> (
                match Kx.shared secret hello.client_kx with
                | None ->
                    Telemetry.incr t.telemetry "serve.handshake_rejected";
                    reject t Unknown_key_share
                | Some shared ->
                    let key = derive_key ~shared ~nonce:hello.nonce in
                    let session_id = t.next_session in
                    t.next_session <- session_id + 1;
                    let state_slot = alloc_slot tn in
                    (* Prepare the session's AEAD key material once: every
                       envelope on this channel rides the zero-copy path
                       without paying per-request setup. *)
                    charge_aead_setup t;
                    Hashtbl.replace t.sessions session_id
                      {
                        s_id = session_id;
                        tenant = tn;
                        key;
                        keys = Authenc.prepare key;
                        state_slot;
                        recv_seq = 0;
                        s_pages = 0;
                        pending = [];
                      };
                    Telemetry.incr t.telemetry "serve.handshake";
                    Telemetry.incr t.telemetry "serve.session_open";
                    Ok
                      {
                        session_id;
                        node_id = t.identity.node_id;
                        server_kx;
                        quote_wire;
                        tenant_identity;
                      }))
      end)

(* ---------------------------------------------------------------------- *)
(* Request envelopes                                                      *)

type request = {
  session_id : int;
  seq : int;
  ecall_id : int;
  envelope : Authenc.sealed;
}

type reply = {
  r_session_id : int;
  r_seq : int;
  r_result : (Authenc.sealed, reject) result;
}

let envelope_nonce ~dir ~seq =
  let nonce = Bytes.make 12 '\000' in
  Bytes.set nonce 0 dir;
  Bytes.set_int64_le nonce 4 (Int64.of_int seq);
  nonce

let aad ~domain ~session_id ~seq ~tag =
  let buf = Buffer.create 34 in
  Buffer.add_string buf domain;
  Buffer.add_int64_le buf (Int64.of_int session_id);
  Buffer.add_int64_le buf (Int64.of_int seq);
  Buffer.add_int64_le buf (Int64.of_int tag);
  Buffer.to_bytes buf

let aad_req ~session_id ~seq ~ecall_id =
  aad ~domain:"serve-req:" ~session_id ~seq ~tag:ecall_id

let aad_rep ~session_id ~seq = aad ~domain:"serve-rep:" ~session_id ~seq ~tag:0

(* Admission-path AAD check: render the expected AAD into the plane's
   scratch buffer and compare — same layout as [aad], no allocation. *)
let aad_matches t ~domain ~session_id ~seq ~tag candidate =
  Bytes.length candidate = 34
  && begin
       Bytes.blit_string domain 0 t.aad_scratch 0 10;
       Bytes.set_int64_le t.aad_scratch 10 (Int64.of_int session_id);
       Bytes.set_int64_le t.aad_scratch 18 (Int64.of_int seq);
       Bytes.set_int64_le t.aad_scratch 26 (Int64.of_int tag);
       Bytes.equal t.aad_scratch candidate
     end

(* ---------------------------------------------------------------------- *)
(* Admission                                                              *)

let submit t (req : request) =
  Telemetry.incr t.telemetry "serve.request";
  match Hashtbl.find_opt t.sessions req.session_id with
  | None -> reject t (session_reject t req.session_id)
  | Some s -> (
      let tn = s.tenant in
      (* Zero-copy admission: authenticate the envelope where it lies (a
         MAC pass over the ciphertext, no plaintext allocated) and defer
         the decrypt to the batched flush.  Per-byte MAC cost only — the
         AEAD setup was paid once when the session's keys were
         prepared. *)
      let ct_len = Bytes.length req.envelope.Authenc.ciphertext in
      charge_aead_bytes t ~bytes:ct_len;
      if t.config.arena && ct_len > t.config.slot_bytes then
        reject t
          (Unsupported
             (Printf.sprintf
                "request ciphertext (%d bytes) exceeds the %d-byte ring slot"
                ct_len t.config.slot_bytes))
      else if
        not
          (aad_matches t ~domain:"serve-req:" ~session_id:req.session_id
             ~seq:req.seq ~tag:req.ecall_id req.envelope.Authenc.aad)
      then reject t Bad_auth
      else if not (Authenc.verify_sealed s.keys req.envelope) then
        reject t Bad_auth
      else if req.seq <> s.recv_seq then
        reject t (Bad_sequence { expected = s.recv_seq; got = req.seq })
      else
        begin
              (* The envelope authenticated with the expected sequence
                 number: the number is burnt from here on, whatever the
                 admission outcome — the client's counter advanced when
                 it sealed, so the channel stays in step across typed
                 rejections. *)
              s.recv_seq <- s.recv_seq + 1;
              match
                Fault.with_retries ~backoff:(backoff t) (fun () ->
                    Fault.point fault_site)
              with
              | exception Fault.Injected { site; kind } ->
                  reject t (Session_fault (injected_msg site kind))
              | () ->
                  if tn.queued >= t.config.max_queue then
                    reject t
                      (Backpressure
                         {
                           tenant = tn.t_name;
                           queued = tn.queued;
                           limit = t.config.max_queue;
                         })
                  else if tn.spent >= tn.budget then
                    reject t
                      (Quota_exhausted
                         {
                           tenant = tn.t_name;
                           spent = tn.spent;
                           quota = tn.budget;
                         })
                  else begin
                    (if t.config.arena then
                       stage_push tn.stage ~sid:s.s_id ~seq:req.seq
                         ~ecall:req.ecall_id ~env:req.envelope
                     else
                       s.pending <-
                         (req.seq, req.ecall_id, req.envelope) :: s.pending);
                    tn.queued <- tn.queued + 1;
                    Telemetry.incr t.telemetry "serve.request.admitted";
                    Telemetry.incr t.telemetry tn.t_req_counter;
                    Ok ()
                  end
            end)

(* ---------------------------------------------------------------------- *)
(* Dispatch                                                               *)

let charge t (tn : tenant) cycles =
  tn.spent <- tn.spent + cycles;
  Telemetry.add t.telemetry tn.t_cyc_counter cycles

let sessions_of t (tn : tenant) =
  Hashtbl.fold
    (fun _ s acc -> if s.tenant == tn && s.pending <> [] then s :: acc else acc)
    t.sessions []
  |> List.sort (fun a b -> compare a.s_id b.s_id)

(* Split [l] into chunks of at most [k] elements, preserving order. *)
let rec chunked k = function
  | [] -> []
  | l ->
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> ([], [])
        | x :: rest ->
            let taken, left = take (n - 1) rest in
            (x :: taken, left)
      in
      let c, rest = take k l in
      c :: chunked k rest

(* The list-structured dispatch path ([config.arena = false]).  Kept as
   the reference oracle the arena path is property-tested against: both
   must produce byte-identical reply envelopes for the same traffic. *)
let flush_reference t =
  Telemetry.incr t.telemetry "serve.flush";
  (* Every staged request gets a stable admission-order index; results
     land keyed by it so replies come back in admission order no matter
     which core served them. *)
  let out : (int * session * int * (bytes, reject) result) list ref = ref [] in
  let next = ref 0 in
  let push s seq result =
    let idx = !next in
    incr next;
    out := (idx, s, seq, result) :: !out;
    idx
  in
  let record = Hashtbl.create 32 in
  (* idx -> raw result, filled by the dispatch callbacks *)
  (* Pass 1: drain every session's admitted envelopes per tenant.
     Permanent session faults surface now as typed errors; the session
     itself stays usable. *)
  let staged_by_tenant =
    List.map
      (fun name ->
        let tn = Hashtbl.find t.tenants name in
        let staged = ref [] in
        List.iter
          (fun s ->
            let work = List.rev s.pending in
            s.pending <- [];
            tn.queued <- tn.queued - List.length work;
            match
              Fault.with_retries ~backoff:(backoff t) (fun () ->
                  Fault.point fault_site)
            with
            | () ->
                List.iter
                  (fun (seq, ecall, envelope) ->
                    staged := (s, seq, ecall, envelope) :: !staged)
                  work
            | exception Fault.Injected { site; kind } ->
                let msg = injected_msg site kind in
                List.iter
                  (fun (seq, _, _) ->
                    ignore (push s seq (Error (Session_fault msg))))
                  work)
          (sessions_of t tn);
        (tn, List.rev !staged))
      (List.rev t.tenant_order)
  in
  (* Chunk each tenant's staged work into ring-sized jobs spread over
     the cores: one job per tenant leaves cores idle when tenants are
     few, so the chunk length shrinks until the whole flush covers
     every core (never above the call-ring batch size). *)
  let flush_total =
    List.fold_left (fun acc (_, l) -> acc + List.length l) 0 staged_by_tenant
  in
  let cores = max 1 t.config.sched.Sched.cores in
  let ring = max 1 (min Urts.max_batch t.config.sched.Sched.batch) in
  let chunk_len = max 1 (min ring ((flush_total + cores - 1) / cores)) in
  let reply_ring = ring in
  List.iter
    (fun (tn, staged) ->
      List.iter
        (fun chunk ->
          (* Deferred in-place decrypt: the envelopes were tag-verified
             at admission, so completing them is one CTR pass per chunk
             — AEAD setup amortized over the ring batch, per-byte cost
             for the rest. *)
          charge_aead_setup t;
          let items =
            List.map
              (fun (s, seq, ecall, (env : Authenc.sealed)) ->
                let len = Bytes.length env.Authenc.ciphertext in
                charge_aead_bytes t ~bytes:len;
                let plaintext = Bytes.create len in
                Authenc.decrypt_into s.keys ~nonce:env.Authenc.nonce
                  ~src:env.Authenc.ciphertext ~src_off:0 ~dst:plaintext
                  ~dst_off:0 ~len;
                (s, seq, ecall, plaintext))
              chunk
          in
          let slots =
            Array.of_list
              (List.map (fun (s, seq, _, _) -> push s seq (Ok Bytes.empty)) items)
          in
          let reqs = List.map (fun (_, _, ecall, pl) -> (ecall, pl)) items in
          match tn.backend.Backend.urts with
          | Some urts ->
              Sched.submit t.sched ~urts ~label:tn.t_name
                ~on_result:(fun ~index result ->
                  Hashtbl.replace record slots.(index) result)
                ~on_slice:(fun ~cycles -> charge t tn cycles)
                reqs
          | None ->
              (* No SDK handle (the SGX model): dispatch directly through
                 the backend's batch call, charging the shared-clock delta
                 as this tenant's quota spend. *)
              let clock = t.platform.Platform.clock in
              let before = Cycles.now clock in
              let outcomes = Backend.protected_batch tn.backend ~reqs () in
              charge t tn (Cycles.now clock - before);
              List.iteri
                (fun i outcome ->
                  Hashtbl.replace record slots.(i)
                    (match outcome with
                    | Backend.Success reply -> Ok reply
                    | Backend.Typed_error m | Backend.Violation m -> Error m))
                outcomes)
        (chunked chunk_len staged))
    staged_by_tenant;
  ignore (Sched.run t.sched : Sched.stats);
  (* Seal after the scheduler has drained so channel crypto is charged
     to the plane, not smeared into per-core slice accounting.  Replies
     ride the zero-copy path: prepared session keys, one AEAD setup per
     ring's worth of sealed replies. *)
  let sealed_in_batch = ref 0 in
  !out
  |> List.map (fun (idx, s, seq, early) ->
         let result =
           match Hashtbl.find_opt record idx with
           | Some (Ok reply) -> Ok reply
           | Some (Error msg) -> Error (Session_fault msg)
           | None -> (
               match early with
               | Error _ as e -> e
               | Ok _ -> Error (Session_fault "request lost by the scheduler"))
         in
         (idx, s, seq, result))
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
  |> List.map (fun (_, s, seq, result) ->
         match result with
         | Ok body ->
             if !sealed_in_batch = 0 then charge_aead_setup t;
             sealed_in_batch := (!sealed_in_batch + 1) mod reply_ring;
             charge_aead_bytes t ~bytes:(Bytes.length body);
             Telemetry.incr t.telemetry "serve.request.ok";
             let nonce = envelope_nonce ~dir:'<' ~seq in
             let aad = aad_rep ~session_id:s.s_id ~seq in
             let len = Bytes.length body in
             let ciphertext = Bytes.create len in
             let tag =
               Authenc.seal_into s.keys ~aad ~nonce ~src:body ~src_off:0
                 ~dst:ciphertext ~dst_off:0 ~len ()
             in
             {
               r_session_id = s.s_id;
               r_seq = seq;
               r_result = Ok { Authenc.nonce; ciphertext; tag; aad };
             }
         | Error rej ->
             Telemetry.incr t.telemetry "serve.request.failed";
             Telemetry.incr t.telemetry ("serve.reject." ^ reject_name rej);
             { r_session_id = s.s_id; r_seq = seq; r_result = Error rej })

(* ---------------------------------------------------------------------- *)
(* Arena dispatch                                                         *)

(* Collect the distinct live sessions staged in [st] into the plane's
   scratch array, ascending id — the same per-tenant session order the
   reference path dispatches in.  Linear dedup: distinct sessions per
   tenant per flush are few. *)
let collect_sids t (st : stage) =
  t.sid_count <- 0;
  for i = 0 to st.sg_n - 1 do
    let sid = st.sg_sids.(i) in
    if sid >= 0 then begin
      let n = t.sid_count in
      let rec seen k = k < n && (t.sid_scratch.(k) = sid || seen (k + 1)) in
      if not (seen 0) then begin
        if n = Array.length t.sid_scratch then begin
          let b = Array.make (2 * n) 0 in
          Array.blit t.sid_scratch 0 b 0 n;
          t.sid_scratch <- b
        end;
        t.sid_scratch.(n) <- sid;
        t.sid_count <- n + 1
      end
    end
  done;
  (* in-place insertion sort over the live prefix *)
  for i = 1 to t.sid_count - 1 do
    let v = t.sid_scratch.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && t.sid_scratch.(!j) > v do
      t.sid_scratch.(!j + 1) <- t.sid_scratch.(!j);
      decr j
    done;
    t.sid_scratch.(!j + 1) <- v
  done

let ring_for t (tn : tenant) urts shard =
  match tn.rings.(shard) with
  | Some r -> r
  | None ->
      let r =
        Urts.create_ring urts ~shard ~shards:t.shards
          ~slots:t.config.max_queue ~slot_bytes:t.config.slot_bytes
      in
      tn.rings.(shard) <- Some r;
      r

(* The allocation-free dispatch path.  Staging, dispatch and reply bytes
   all live in reusable arenas and the pinned marshalling rings; the only
   per-request allocations left are the wire-facing reply envelopes. *)
let flush_arena t =
  Telemetry.incr t.telemetry "serve.flush";
  t.flush_gen <- t.flush_gen + 1;
  let gen = t.flush_gen in
  Hashtbl.reset t.fault_msgs;
  let cores = max 1 t.config.sched.Sched.cores in
  let reply_ring = max 1 (min Urts.max_batch t.config.sched.Sched.batch) in
  let tenants =
    List.rev_map (fun name -> Hashtbl.find t.tenants name) t.tenant_order
  in
  let flush_total = ref 0 in
  let rings_used = ref 0 in
  (* Pass 1 per tenant: walk the staged entries per session in (session,
     seq) order — exactly the reference dispatch order.  Permanent
     session faults surface as typed errors in the assembly pass; live
     entries decrypt straight into their ring slot (the slot IS the
     envelope's plaintext cell) or, for backends without an SDK handle,
     into the synchronous fallback batch. *)
  List.iter
    (fun tn ->
      let st = tn.stage in
      if st.sg_n > 0 then begin
        Array.fill tn.ring_err 0 t.shards None;
        collect_sids t st;
        let urts_opt = tn.backend.Backend.urts in
        let fb = ref [] in
        (* rev (entry index, ecall, plaintext) for the fallback batch *)
        for k = 0 to t.sid_count - 1 do
          let sid = t.sid_scratch.(k) in
          let s = Hashtbl.find t.sessions sid in
          match
            Fault.with_retries ~backoff:(backoff t) (fun () ->
                Fault.point fault_site)
          with
          | exception Fault.Injected { site; kind } ->
              Hashtbl.replace t.fault_msgs sid (injected_msg site kind);
              for i = 0 to st.sg_n - 1 do
                if st.sg_sids.(i) = sid then begin
                  tn.queued <- tn.queued - 1;
                  incr flush_total
                end
              done
          | () ->
              let stamp = ref 0 in
              let shard = ref 0 in
              for i = 0 to st.sg_n - 1 do
                if st.sg_sids.(i) = sid then begin
                  tn.queued <- tn.queued - 1;
                  incr flush_total;
                  let env = st.sg_envs.(i) in
                  let len = Bytes.length env.Authenc.ciphertext in
                  charge_aead_bytes t ~bytes:len;
                  match urts_opt with
                  | Some urts ->
                      if !stamp mod t.config.shard_block = 0 then begin
                        shard := t.rotor;
                        t.rotor <- (t.rotor + 1) mod t.shards
                      end;
                      incr stamp;
                      let ring = ring_for t tn urts !shard in
                      if tn.ring_gen.(!shard) <> gen then begin
                        tn.ring_gen.(!shard) <- gen;
                        incr rings_used;
                        (* one AEAD setup per (ring, flush): the batched
                           analogue of the reference path's per-chunk
                           setup charge *)
                        charge_aead_setup t
                      end;
                      let off = Urts.ring_stage ring ~ecall_id:st.sg_ecalls.(i) ~len in
                      Authenc.decrypt_into s.keys ~nonce:env.Authenc.nonce
                        ~src:env.Authenc.ciphertext ~src_off:0
                        ~dst:(Urts.ring_buf ring) ~dst_off:off ~len;
                      st.sg_shards.(i) <- !shard;
                      st.sg_slots.(i) <- Urts.ring_staged ring - 1
                  | None ->
                      let plaintext = Bytes.create len in
                      Authenc.decrypt_into s.keys ~nonce:env.Authenc.nonce
                        ~src:env.Authenc.ciphertext ~src_off:0 ~dst:plaintext
                        ~dst_off:0 ~len;
                      st.sg_shards.(i) <- fallback_shard;
                      fb := (i, st.sg_ecalls.(i), plaintext) :: !fb
                end
              done
        done;
        match urts_opt with
        | Some urts ->
            (* Publish and enqueue every shard this tenant staged into:
               shard [k] pins to core [k mod cores], so a single hot
               tenant's rotor-spread blocks occupy every core. *)
            for shard = 0 to t.shards - 1 do
              match tn.rings.(shard) with
              | Some ring
                when tn.ring_gen.(shard) = gen && Urts.ring_staged ring > 0
                -> (
                  match
                    Fault.with_retries ~backoff:(backoff t) (fun () ->
                        Urts.ring_publish ring)
                  with
                  | exception Fault.Injected { site; kind } ->
                      tn.ring_err.(shard) <- Some (injected_msg site kind)
                  | () ->
                      Sched.submit_ring t.sched ~core:(shard mod cores) ~urts
                        ~label:tn.t_name
                        ~on_result:(fun ~index:_ result ->
                          match result with
                          | Ok _ -> ()
                          | Error msg -> tn.ring_err.(shard) <- Some msg)
                        ~on_slice:(fun ~cycles -> charge t tn cycles)
                        ring)
              | Some _ | None -> ()
            done
        | None ->
            (* No SDK handle (the SGX model): dispatch synchronously in
               ring-sized chunks, charging the shared-clock delta as this
               tenant's quota spend. *)
            List.iter
              (fun chunk ->
                charge_aead_setup t;
                let reqs = List.map (fun (_, e, pl) -> (e, pl)) chunk in
                let clock = t.platform.Platform.clock in
                let before = Cycles.now clock in
                let outcomes = Backend.protected_batch tn.backend ~reqs () in
                charge t tn (Cycles.now clock - before);
                List.iter2
                  (fun (i, _, _) outcome ->
                    st.sg_fb.(i) <-
                      (match outcome with
                      | Backend.Success reply -> Ok reply
                      | Backend.Typed_error m | Backend.Violation m -> Error m))
                  chunk outcomes)
              (chunked reply_ring (List.rev !fb))
      end)
    tenants;
  ignore (Sched.run t.sched : Sched.stats);
  (* Pull every dispatched ring's reply image back into its reusable
     buffer — marshalling-out cost and fault site on the plane clock,
     once per ring rather than per request. *)
  List.iter
    (fun tn ->
      if tn.stage.sg_n > 0 && tn.backend.Backend.urts <> None then
        for shard = 0 to t.shards - 1 do
          match tn.rings.(shard) with
          | Some ring
            when tn.ring_gen.(shard) = gen
                 && Urts.ring_staged ring > 0
                 && tn.ring_err.(shard) = None -> (
              match
                Fault.with_retries ~backoff:(backoff t) (fun () ->
                    Urts.ring_read_replies ring)
              with
              | () -> ()
              | exception Fault.Injected { site; kind } ->
                  tn.ring_err.(shard) <- Some (injected_msg site kind))
          | Some _ | None -> ()
        done)
    tenants;
  (* Assembly: seal replies in place inside the reply image — the served
     slot is encrypted where it lies and only the wire-facing envelope
     (nonce, AAD, ciphertext slice) is materialized.  Order matches the
     reference path: tenant insertion order, then session id, then
     sequence. *)
  let sealed_in_batch = ref 0 in
  let out = ref [] in
  List.iter
    (fun tn ->
      let st = tn.stage in
      if st.sg_n > 0 then begin
        collect_sids t st;
        for k = 0 to t.sid_count - 1 do
          let sid = t.sid_scratch.(k) in
          let s = Hashtbl.find t.sessions sid in
          let fault = Hashtbl.find_opt t.fault_msgs sid in
          let emit_err seq rej =
            Telemetry.incr t.telemetry "serve.request.failed";
            Telemetry.incr t.telemetry ("serve.reject." ^ reject_name rej);
            out :=
              { r_session_id = sid; r_seq = seq; r_result = Error rej } :: !out
          in
          let emit_sealed seq sealed =
            Telemetry.incr t.telemetry "serve.request.ok";
            out :=
              { r_session_id = sid; r_seq = seq; r_result = Ok sealed } :: !out
          in
          let seal seq ~src ~src_off ~len ~dst ~dst_off =
            if !sealed_in_batch = 0 then charge_aead_setup t;
            sealed_in_batch := (!sealed_in_batch + 1) mod reply_ring;
            charge_aead_bytes t ~bytes:len;
            let nonce = envelope_nonce ~dir:'<' ~seq in
            let aad = aad_rep ~session_id:sid ~seq in
            let tag =
              Authenc.seal_into s.keys ~aad ~nonce ~src ~src_off ~dst ~dst_off
                ~len ()
            in
            let ciphertext =
              if dst == src && dst_off = src_off then Bytes.sub dst dst_off len
              else dst
            in
            emit_sealed seq { Authenc.nonce; ciphertext; tag; aad }
          in
          for i = 0 to st.sg_n - 1 do
            if st.sg_sids.(i) = sid then begin
              let seq = st.sg_seqs.(i) in
              match fault with
              | Some msg -> emit_err seq (Session_fault msg)
              | None -> (
                  match st.sg_shards.(i) with
                  | shard when shard = fallback_shard -> (
                      match st.sg_fb.(i) with
                      | Ok body ->
                          let len = Bytes.length body in
                          let ciphertext = Bytes.create len in
                          seal seq ~src:body ~src_off:0 ~len ~dst:ciphertext
                            ~dst_off:0
                      | Error m -> emit_err seq (Session_fault m))
                  | shard -> (
                      match tn.ring_err.(shard) with
                      | Some msg -> emit_err seq (Session_fault msg)
                      | None ->
                          let ring =
                            match tn.rings.(shard) with
                            | Some r -> r
                            | None -> assert false
                          in
                          let off, len =
                            Urts.ring_reply_slot ring ~slot:st.sg_slots.(i)
                          in
                          let buf = Urts.ring_reply_buf ring in
                          seal seq ~src:buf ~src_off:off ~len ~dst:buf
                            ~dst_off:off))
            end
          done
        done;
        (* Recycle the arenas: drop envelope references, rewind the
           stage cursor, rewind every ring used this flush. *)
        Array.fill st.sg_envs 0 st.sg_n dummy_sealed;
        Array.fill st.sg_fb 0 st.sg_n dummy_outcome;
        st.sg_n <- 0;
        Array.iter
          (function Some ring -> Urts.ring_reset ring | None -> ())
          tn.rings
      end)
    tenants;
  (* High-water telemetry: monotone counters stepped by the delta to the
     new maximum, so `stats` shows the deepest flush and widest shard
     spread the plane has reached. *)
  if !flush_total > t.hw_staged then begin
    Telemetry.add t.telemetry "serve.arena.high_water"
      (!flush_total - t.hw_staged);
    t.hw_staged <- !flush_total
  end;
  if !rings_used > t.hw_shards then begin
    Telemetry.add t.telemetry "serve.ring.shards_active"
      (!rings_used - t.hw_shards);
    t.hw_shards <- !rings_used
  end;
  List.rev !out

let flush t = if t.config.arena then flush_arena t else flush_reference t

(* ---------------------------------------------------------------------- *)
(* Session state (EDMM)                                                   *)

let resize_session t ~session ~pages =
  if pages < 0 || pages > t.config.state_stride_pages then
    invalid_arg
      (Printf.sprintf "Serve.resize_session: pages must be in [0, %d]"
         t.config.state_stride_pages);
  match Hashtbl.find_opt t.sessions session with
  | None -> reject t (session_reject t session)
  | Some s -> (
      match s.tenant.backend.Backend.kind with
      | Backend.Sgx ->
          reject t
            (Unsupported
               "SGX1 does not support EDMM: session state cannot grow after \
                EINIT")
      | Backend.Native | Backend.Hyperenclave _ ->
          let data = Bytes.create 16 in
          Bytes.set_int64_le data 0
            (Int64.of_int
               (s.state_slot * t.config.state_stride_pages * Addr.page_size));
          Bytes.set_int64_le data 8 (Int64.of_int pages);
          (match
             Backend.protected_call s.tenant.backend ~id:state_ecall ~data
               ~direction:Edge.In_out ()
           with
          | Backend.Success reply ->
              s.s_pages <- max s.s_pages pages;
              Ok (Int64.to_int (Bytes.get_int64_le reply 0))
          | Backend.Typed_error m | Backend.Violation m ->
              reject t (Session_fault m)))

(* ---------------------------------------------------------------------- *)
(* Quotas and introspection                                               *)

let grant t ~tenant cycles =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> invalid_arg (Printf.sprintf "Serve.grant: unknown tenant %s" tenant)
  | Some tn -> if tn.budget <> max_int then tn.budget <- tn.budget + cycles

let quota_state t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | None ->
      invalid_arg (Printf.sprintf "Serve.quota_state: unknown tenant %s" tenant)
  | Some tn -> (tn.spent, tn.budget)

let session_count t = Hashtbl.length t.sessions

let sched_stats t = Sched.stats t.sched

(* Retire a session: unstage anything still queued, recycle its EDMM
   state slot through the tenant's free list, drop the table entry. *)
let close_session t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> reject t (session_reject t session)
  | Some s ->
      let tn = s.tenant in
      (if t.config.arena then begin
         (* Kill the session's staged arena slots in place: [-1] marks a
            dead slot every flush pass skips, so closing mid-stage never
            compacts the arena or leaves a dangling session lookup. *)
         let st = tn.stage in
         for i = 0 to st.sg_n - 1 do
           if st.sg_sids.(i) = s.s_id then begin
             st.sg_sids.(i) <- -1;
             st.sg_envs.(i) <- dummy_sealed;
             tn.queued <- tn.queued - 1
           end
         done
       end
       else begin
         tn.queued <- tn.queued - List.length s.pending;
         s.pending <- []
       end);
      Hashtbl.remove t.sessions session;
      tn.free_slots <- s.state_slot :: tn.free_slots;
      Telemetry.incr t.telemetry "serve.session_close";
      Ok ()

(* ---------------------------------------------------------------------- *)
(* Live migration: export / retire / import                               *)

type session_export = {
  x_session : int;
  x_key : bytes;
  x_recv_seq : int;
  x_pages : int;
  x_state : bytes;
}

type tenant_export = {
  x_tenant : string;
  x_identity : bytes;
  x_sessions : session_export list;
  x_nonces : string list;
}

(* Pull a session's committed EDMM pages out through the enclave's own
   state-read ECALL, one page per protected call — the simulation
   analogue of EWB-style page eviction into the migration blob. *)
let read_state t (tn : tenant) (s : session) =
  let stride_bytes = t.config.state_stride_pages * Addr.page_size in
  let base = s.state_slot * stride_bytes in
  let buf = Buffer.create (s.s_pages * Addr.page_size) in
  let rec go pg =
    if pg = s.s_pages then Ok (Buffer.to_bytes buf)
    else begin
      let data = Bytes.create 16 in
      Bytes.set_int64_le data 0 (Int64.of_int (base + (pg * Addr.page_size)));
      Bytes.set_int64_le data 8 (Int64.of_int Addr.page_size);
      match
        Backend.protected_call tn.backend ~id:state_read_ecall ~data
          ~direction:Edge.In_out ()
      with
      | Backend.Success page ->
          Buffer.add_bytes buf page;
          go (pg + 1)
      | Backend.Typed_error m | Backend.Violation m -> Error (Session_fault m)
    end
  in
  go 0

let export_tenant t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> reject t (Unknown_tenant tenant)
  | Some { t_migrated_to = Some to_node; _ } ->
      reject t (Tenant_migrated { tenant; to_node })
  | Some tn -> (
      if tn.queued > 0 then
        (* Staged-but-unflushed envelopes are in-flight work: exporting
           under them would either drop admitted requests or replay them
           on the destination.  The migration driver flushes first. *)
        reject t (Tenant_busy { tenant; staged = tn.queued })
      else
        match tn.backend.Backend.identity with
        | None ->
            reject t
              (Unsupported "native backend has no enclave identity to migrate")
        | Some x_identity -> (
            let sessions =
              Hashtbl.fold
                (fun _ s acc -> if s.tenant == tn then s :: acc else acc)
                t.sessions []
              |> List.sort (fun a b -> compare a.s_id b.s_id)
            in
            let rec pack acc = function
              | [] -> Ok (List.rev acc)
              | s :: rest -> (
                  match read_state t tn s with
                  | Error _ as e -> e
                  | Ok x_state ->
                      pack
                        ({
                           x_session = s.s_id;
                           x_key = Bytes.copy s.key;
                           x_recv_seq = s.recv_seq;
                           x_pages = s.s_pages;
                           x_state;
                         }
                        :: acc)
                        rest)
            in
            match pack [] sessions with
            | Error rej -> reject t rej
            | Ok x_sessions ->
                (* Carry the replay cache in FIFO order: a nonce burnt
                   before the move must stay burnt after it, or a recorded
                   handshake replays against the destination. *)
                let x_nonces =
                  List.rev (Queue.fold (fun acc n -> n :: acc) [] t.nonce_order)
                in
                Telemetry.incr t.telemetry "serve.migrate.export";
                Ok { x_tenant = tenant; x_identity; x_sessions; x_nonces }))

(* Cutover: the source stops answering for the tenant and forwards
   stragglers.  Live sessions become typed forwards; their state slots
   recycle. *)
let retire_tenant t ~tenant ~to_node =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> reject t (Unknown_tenant tenant)
  | Some tn ->
      if tn.queued > 0 then
        reject t (Tenant_busy { tenant; staged = tn.queued })
      else begin
        let sessions =
          Hashtbl.fold
            (fun id s acc -> if s.tenant == tn then (id, s) :: acc else acc)
            t.sessions []
        in
        List.iter
          (fun (id, s) ->
            Hashtbl.remove t.sessions id;
            tn.free_slots <- s.state_slot :: tn.free_slots;
            Hashtbl.replace t.migrated id to_node)
          sessions;
        tn.t_migrated_to <- Some to_node;
        Telemetry.incr t.telemetry "serve.migrate.retire";
        Ok (List.length sessions)
      end

(* Replay an exported session's bytes into the destination enclave's
   heap, page-sized protected writes after re-committing the pages. *)
let write_state t (tn : tenant) ~slot (sx : session_export) =
  let stride_bytes = t.config.state_stride_pages * Addr.page_size in
  let base = slot * stride_bytes in
  let total = Bytes.length sx.x_state in
  let rec go off =
    if off >= total then Ok ()
    else begin
      let len = min Addr.page_size (total - off) in
      let data = Bytes.create (8 + len) in
      Bytes.set_int64_le data 0 (Int64.of_int (base + off));
      Bytes.blit sx.x_state off data 8 len;
      match
        Backend.protected_call tn.backend ~id:state_write_ecall ~data
          ~direction:Edge.In_out ()
      with
      | Backend.Success _ -> go (off + len)
      | Backend.Typed_error m | Backend.Violation m -> Error (Session_fault m)
    end
  in
  go 0

let import_tenant t (x : tenant_export) =
  match Hashtbl.find_opt t.tenants x.x_tenant with
  | None -> reject t (Unknown_tenant x.x_tenant)
  | Some tn -> (
      match tn.backend.Backend.identity with
      | None ->
          reject t
            (Unsupported "native backend has no enclave identity to verify")
      | Some local when not (Bytes.equal local x.x_identity) ->
          (* The destination rebuilt the tenant enclave from the same
             registry config; if it does not measure identically the
             sealed sessions would resume inside a different program. *)
          reject t
            (Import_conflict
               "enclave identity does not match the destination's measurement")
      | Some _ -> (
          (* A live session with the same id is a hard conflict; an entry
             in [migrated] is only a forwarding address and clears when
             the session comes home (migrate-back / rolling upgrade). *)
          match
            List.find_opt
              (fun (sx : session_export) -> Hashtbl.mem t.sessions sx.x_session)
              x.x_sessions
          with
          | Some sx ->
              reject t
                (Import_conflict
                   (Printf.sprintf "session id %d is live on this node"
                      sx.x_session))
          | None -> (
              match
                List.find_opt
                  (fun (sx : session_export) ->
                    sx.x_pages > t.config.state_stride_pages)
                  x.x_sessions
              with
              | Some sx ->
                  reject t
                    (Import_conflict
                       (Printf.sprintf
                          "session %d state (%d pages) exceeds this node's \
                           %d-page stride"
                          sx.x_session sx.x_pages t.config.state_stride_pages))
              | None -> (
                  (* Install one session at a time; any state failure rolls
                     back what was installed so a botched import never
                     leaves half a tenant behind. *)
                  let installed = ref [] in
                  let rollback () =
                    List.iter
                      (fun (id, slot) ->
                        Hashtbl.remove t.sessions id;
                        tn.free_slots <- slot :: tn.free_slots)
                      !installed
                  in
                  let recommit slot pages =
                    if pages = 0 then Ok ()
                    else begin
                      let data = Bytes.create 16 in
                      Bytes.set_int64_le data 0
                        (Int64.of_int
                           (slot * t.config.state_stride_pages * Addr.page_size));
                      Bytes.set_int64_le data 8 (Int64.of_int pages);
                      match
                        Backend.protected_call tn.backend ~id:state_ecall ~data
                          ~direction:Edge.In_out ()
                      with
                      | Backend.Success _ -> Ok ()
                      | Backend.Typed_error m | Backend.Violation m ->
                          Error (Session_fault m)
                    end
                  in
                  let rec go = function
                    | [] -> Ok ()
                    | (sx : session_export) :: rest -> (
                        let slot = alloc_slot tn in
                        let outcome =
                          match recommit slot sx.x_pages with
                          | Error _ as e -> e
                          | Ok () -> write_state t tn ~slot sx
                        in
                        match outcome with
                        | Error e ->
                            tn.free_slots <- slot :: tn.free_slots;
                            Error e
                        | Ok () ->
                            let key = Bytes.copy sx.x_key in
                            charge_aead_setup t;
                            Hashtbl.replace t.sessions sx.x_session
                              {
                                s_id = sx.x_session;
                                tenant = tn;
                                key;
                                keys = Authenc.prepare key;
                                state_slot = slot;
                                recv_seq = sx.x_recv_seq;
                                s_pages = sx.x_pages;
                                pending = [];
                              };
                            installed := (sx.x_session, slot) :: !installed;
                            go rest)
                  in
                  match go x.x_sessions with
                  | Error rej ->
                      rollback ();
                      reject t rej
                  | Ok () ->
                      List.iter
                        (fun (sx : session_export) ->
                          Hashtbl.remove t.migrated sx.x_session;
                          if sx.x_session >= t.next_session then
                            t.next_session <- sx.x_session + 1)
                        x.x_sessions;
                      List.iter
                        (fun n -> ignore (nonce_replayed t (Bytes.of_string n)))
                        x.x_nonces;
                      tn.t_migrated_to <- None;
                      Telemetry.incr t.telemetry "serve.migrate.import";
                      Ok (List.length x.x_sessions)))))

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    (match t.qe with Some u -> Urts.destroy u | None -> ());
    t.qe <- None;
    (* The plane built every tenant backend ([add_tenant] calls
       [Backend.create]), so it owns their teardown too — callers no
       longer destroy the returned handle themselves. *)
    List.iter
      (fun name ->
        match Hashtbl.find_opt t.tenants name with
        | Some tn -> tn.backend.Backend.destroy ()
        | None -> ())
      (List.rev t.tenant_order);
    Hashtbl.reset t.tenants;
    Hashtbl.reset t.sessions;
    Hashtbl.reset t.migrated;
    Hashtbl.reset t.seen_nonces;
    Queue.clear t.nonce_order;
    t.tenant_order <- []
  end

(* ---------------------------------------------------------------------- *)
(* Session resumption                                                     *)

let ticket_aad = Bytes.of_string "serve-ticket:v1"

(* Ticket payload: [8B LE name_len][name][32B session key][8B LE expiry]. *)
let encode_ticket ~tenant ~key ~expires =
  let name = Bytes.of_string tenant in
  let name_len = Bytes.length name in
  let buf = Bytes.create (8 + name_len + 32 + 8) in
  Bytes.set_int64_le buf 0 (Int64.of_int name_len);
  Bytes.blit name 0 buf 8 name_len;
  Bytes.blit key 0 buf (8 + name_len) 32;
  Bytes.set_int64_le buf (8 + name_len + 32) (Int64.of_int expires);
  buf

let decode_ticket payload =
  if Bytes.length payload < 48 then None
  else
    let name_len = Int64.to_int (Bytes.get_int64_le payload 0) in
    if name_len < 0 || name_len > Bytes.length payload - 48 then None
    else if Bytes.length payload <> 8 + name_len + 40 then None
    else
      let tenant = Bytes.sub_string payload 8 name_len in
      let key = Bytes.sub payload (8 + name_len) 32 in
      let expires =
        Int64.to_int (Bytes.get_int64_le payload (8 + name_len + 32))
      in
      Some (tenant, key, expires)

let issue_ticket t ~session =
  match Hashtbl.find_opt t.sessions session with
  | None -> reject t (session_reject t session)
  | Some s ->
      let expires =
        Cycles.now t.platform.Platform.clock + t.config.ticket_ttl
      in
      let payload = encode_ticket ~tenant:s.tenant.t_name ~key:s.key ~expires in
      charge_aead t ~bytes:(Bytes.length payload);
      let sealed =
        Authenc.seal ~key:t.ticket_key ~aad:ticket_aad
          ~nonce:(Rng.bytes t.rng 12) payload
      in
      Telemetry.incr t.telemetry "serve.ticket_issued";
      Ok (Authenc.encode sealed)

(* The resumed channel never reuses the ticketed traffic key directly:
   both sides derive a fresh one from it and the client's resumption
   nonce, so tickets are single-direction key material. *)
let resumed_key ~key ~nonce =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "hyperenclave-serve-resume:";
  Sha256.update ctx key;
  Sha256.update ctx nonce;
  Sha256.finalize ctx

type resume = { r_ticket : bytes; r_nonce : bytes }

let resume t (r : resume) =
  (* Burn the nonce first, success or not — a replayed resumption must
     never open a second session. *)
  if nonce_replayed t r.r_nonce then reject t Replayed_nonce
  else
    match Authenc.decode r.r_ticket with
    | exception Invalid_argument m -> reject t (Bad_ticket m)
    | sealed ->
        if not (Bytes.equal sealed.Authenc.aad ticket_aad) then
          reject t (Bad_ticket "wrong ticket domain")
        else begin
          charge_aead t ~bytes:(Bytes.length sealed.Authenc.ciphertext);
          match Authenc.unseal ~key:t.ticket_key sealed with
          | exception Authenc.Authentication_failure ->
              reject t (Bad_ticket "ticket authentication failed")
          | payload -> (
              match decode_ticket payload with
              | None -> reject t (Bad_ticket "malformed ticket payload")
              | Some (tenant, key, expires) -> (
                  if Cycles.now t.platform.Platform.clock > expires then
                    reject t Ticket_expired
                  else
                    match Hashtbl.find_opt t.tenants tenant with
                    | None -> reject t (Unknown_tenant tenant)
                    | Some { t_migrated_to = Some to_node; _ } ->
                        reject t (Tenant_migrated { tenant; to_node })
                    | Some tn ->
                        let key = resumed_key ~key ~nonce:r.r_nonce in
                        let session_id = t.next_session in
                        t.next_session <- session_id + 1;
                        let state_slot = alloc_slot tn in
                        charge_aead_setup t;
                        Hashtbl.replace t.sessions session_id
                          {
                            s_id = session_id;
                            tenant = tn;
                            key;
                            keys = Authenc.prepare key;
                            state_slot;
                            recv_seq = 0;
                            s_pages = 0;
                            pending = [];
                          };
                        Telemetry.incr t.telemetry "serve.resume";
                        Telemetry.incr t.telemetry "serve.session_open";
                        Ok session_id))
        end

(* ---------------------------------------------------------------------- *)
(* Client                                                                 *)

module Client = struct
  type hs = { hs_nonce : bytes; secret : Kx.secret; hs_client_kx : Kx.public }

  type t = {
    rng : Rng.t;
    golden : Verifier.golden;
    policy : Verifier.policy;
    expected_tenant : bytes option;
    expected_hapk : Signature.public_key option;
        (* pin to one node's monitor: in a fleet, golden measurements
           alone admit every honestly-booted sibling *)
    mutable hs : hs option;
    mutable session : (int * bytes) option;  (* id, key *)
    mutable send_seq : int;
    mutable pending_resume : (bytes * bytes) option;
        (* (resumption nonce, ticketed key) while a resume is in flight *)
  }

  let create ~rng ~golden ~policy ?expected_tenant ?expected_hapk () =
    {
      rng;
      golden;
      policy;
      expected_tenant;
      expected_hapk;
      hs = None;
      session = None;
      send_seq = 0;
      pending_resume = None;
    }

  let hello t =
    let hs_nonce = Rng.bytes t.rng 16 in
    let secret, hs_client_kx = Kx.generate t.rng in
    t.hs <- Some { hs_nonce; secret; hs_client_kx };
    t.session <- None;
    t.send_seq <- 0;
    t.pending_resume <- None;
    { nonce = hs_nonce; client_kx = hs_client_kx }

  let resume_hello t ~ticket =
    match t.session with
    | None ->
        invalid_arg "Serve.Client.resume_hello: no session key to resume from"
    | Some (_, key) ->
        let nonce = Rng.bytes t.rng 16 in
        t.pending_resume <- Some (nonce, key);
        t.hs <- None;
        t.session <- None;
        t.send_seq <- 0;
        { r_ticket = ticket; r_nonce = nonce }

  let complete_resume t ~session_id =
    match t.pending_resume with
    | None -> invalid_arg "Serve.Client.complete_resume: no resume in flight"
    | Some (nonce, key) ->
        t.pending_resume <- None;
        t.session <- Some (session_id, resumed_key ~key ~nonce)

  let establish t (accept : accept) =
    match t.hs with
    | None -> invalid_arg "Serve.Client.establish: no handshake in flight"
    | Some hs -> (
        match Wire.decode accept.quote_wire with
        | Error m -> Error (Bad_wire m)
        | Ok quote -> (
            match
              Verifier.verify ~golden:t.golden ~policy:t.policy
                ?expected_hapk:t.expected_hapk ~nonce:hs.hs_nonce quote
            with
            | Verifier.Error f -> Error (Handshake_failed f)
            | Verifier.Ok report -> (
                (* The quote speaks; now check it speaks about THIS
                   exchange: transcript binding, then the claimed tenant
                   identity against the pin. *)
                let expected =
                  transcript ~nonce:hs.hs_nonce ~client_kx:hs.hs_client_kx
                    ~server_kx:accept.server_kx
                    ~identity:accept.tenant_identity
                in
                let bound =
                  Bytes.length report.Hyperenclave_monitor.Sgx_types.report_data
                  >= 32
                  && Bytes.equal expected
                       (Bytes.sub
                          report.Hyperenclave_monitor.Sgx_types.report_data 0 32)
                in
                if not bound then Error Channel_binding_mismatch
                else
                  match t.expected_tenant with
                  | Some pin when not (Bytes.equal pin accept.tenant_identity)
                    ->
                      Error
                        (Handshake_failed
                           (Verifier.Policy_violation
                              "tenant identity mismatch"))
                  | Some _ | None -> (
                      match Kx.shared hs.secret accept.server_kx with
                      | None -> Error Unknown_key_share
                      | Some shared ->
                          t.session <-
                            Some
                              ( accept.session_id,
                                derive_key ~shared ~nonce:hs.hs_nonce );
                          Ok ()))))

  let session_id t =
    match t.session with
    | Some (id, _) -> id
    | None -> invalid_arg "Serve.Client.session_id: no session established"

  let request t ~ecall data =
    match t.session with
    | None -> invalid_arg "Serve.Client.request: no session established"
    | Some (session_id, key) ->
        let seq = t.send_seq in
        t.send_seq <- seq + 1;
        {
          session_id;
          seq;
          ecall_id = ecall;
          envelope =
            Authenc.seal ~key
              ~aad:(aad_req ~session_id ~seq ~ecall_id:ecall)
              ~nonce:(envelope_nonce ~dir:'>' ~seq)
              data;
        }

  let read_reply t (reply : reply) =
    match t.session with
    | None -> invalid_arg "Serve.Client.read_reply: no session established"
    | Some (session_id, key) -> (
        if reply.r_session_id <> session_id then
          Error (Unknown_session reply.r_session_id)
        else
          match reply.r_result with
          | Error rej -> Error rej
          | Ok sealed -> (
              if
                not
                  (Bytes.equal sealed.Authenc.aad
                     (aad_rep ~session_id ~seq:reply.r_seq))
              then Error Bad_auth
              else
                match Authenc.unseal ~key sealed with
                | exception Authenc.Authentication_failure -> Error Bad_auth
                | body -> Ok body))

  let roundtrip plane t reqs =
    let submitted =
      List.map
        (fun (ecall, data) ->
          let r = request t ~ecall data in
          (r.seq, submit plane r))
        reqs
    in
    let replies = flush plane in
    let mine = session_id t in
    List.map
      (fun (seq, admitted) ->
        match admitted with
        | Error rej -> Error rej
        | Ok () -> (
            match
              List.find_opt
                (fun r -> r.r_session_id = mine && r.r_seq = seq)
                replies
            with
            | None -> Error (Session_fault "no reply for admitted request")
            | Some reply -> read_reply t reply))
      submitted
end
