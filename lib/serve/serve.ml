open Hyperenclave_hw
open Hyperenclave_tee
module Sched = Hyperenclave_sched.Sched
module Urts = Hyperenclave_sdk.Urts
module Edge = Hyperenclave_sdk.Edge
module Monitor = Hyperenclave_monitor.Monitor
module World_switch = Hyperenclave_monitor.World_switch
module Sgx_types = Hyperenclave_monitor.Sgx_types
module Verifier = Hyperenclave_attestation.Verifier
module Wire = Hyperenclave_attestation.Wire
module Kx = Hyperenclave_crypto.Kx
module Authenc = Hyperenclave_crypto.Authenc
module Sha256 = Hyperenclave_crypto.Sha256
module Fault = Hyperenclave_fault.Fault
module Telemetry = Hyperenclave_obs.Telemetry

(* ---------------------------------------------------------------------- *)
(* Typed rejections                                                       *)

type reject =
  | Handshake_failed of Verifier.failure
  | Channel_binding_mismatch
  | Bad_wire of string
  | Unknown_key_share
  | Replayed_nonce
  | Unknown_tenant of string
  | Unknown_session of int
  | Unsupported of string
  | Bad_auth
  | Bad_sequence of { expected : int; got : int }
  | Backpressure of { tenant : string; queued : int; limit : int }
  | Quota_exhausted of { tenant : string; spent : int; quota : int }
  | Session_fault of string

let reject_name = function
  | Handshake_failed _ -> "handshake-failed"
  | Channel_binding_mismatch -> "channel-binding"
  | Bad_wire _ -> "bad-wire"
  | Unknown_key_share -> "unknown-key-share"
  | Replayed_nonce -> "replayed-nonce"
  | Unknown_tenant _ -> "unknown-tenant"
  | Unknown_session _ -> "unknown-session"
  | Unsupported _ -> "unsupported"
  | Bad_auth -> "bad-auth"
  | Bad_sequence _ -> "bad-sequence"
  | Backpressure _ -> "backpressure"
  | Quota_exhausted _ -> "quota-exhausted"
  | Session_fault _ -> "session-fault"

let pp_reject fmt = function
  | Handshake_failed f ->
      Format.fprintf fmt "handshake failed: %a" Verifier.pp_failure f
  | Channel_binding_mismatch ->
      Format.pp_print_string fmt "quote does not bind this transcript"
  | Bad_wire m -> Format.fprintf fmt "malformed quote wire: %s" m
  | Unknown_key_share -> Format.pp_print_string fmt "unknown key-exchange share"
  | Replayed_nonce -> Format.pp_print_string fmt "handshake nonce replayed"
  | Unknown_tenant n -> Format.fprintf fmt "unknown tenant %s" n
  | Unknown_session id -> Format.fprintf fmt "unknown session %d" id
  | Unsupported m -> Format.fprintf fmt "unsupported: %s" m
  | Bad_auth -> Format.pp_print_string fmt "request authentication failed"
  | Bad_sequence { expected; got } ->
      Format.fprintf fmt "bad sequence number: expected %d, got %d" expected got
  | Backpressure { tenant; queued; limit } ->
      Format.fprintf fmt "tenant %s queue full (%d/%d)" tenant queued limit
  | Quota_exhausted { tenant; spent; quota } ->
      Format.fprintf fmt "tenant %s cycle quota exhausted (%d/%d)" tenant spent
        quota
  | Session_fault m -> Format.fprintf fmt "session fault: %s" m

(* ---------------------------------------------------------------------- *)
(* Plane state                                                            *)

type config = {
  sched : Sched.config;
  max_queue : int;
  cycle_quota : int option;
  state_stride_pages : int;
}

let default_config =
  {
    sched = { Sched.default_config with Sched.drop_on_error = true };
    max_queue = 64;
    cycle_quota = None;
    state_stride_pages = 16;
  }

type tenant = {
  t_name : string;
  backend : Backend.t;
  mutable queued : int;
  mutable spent : int;
  mutable budget : int;  (* max_int when unmetered *)
  mutable next_slot : int;
}

type session = {
  s_id : int;
  tenant : tenant;
  key : bytes;
  state_slot : int;
  mutable recv_seq : int;
  mutable pending : (int * int * bytes) list;  (* rev (seq, ecall, plaintext) *)
}

type t = {
  platform : Platform.t;
  config : config;
  rng : Rng.t;
  telemetry : Telemetry.t;
  sched : Sched.t;
  tenants : (string, tenant) Hashtbl.t;
  mutable tenant_order : string list;  (* reverse insertion order *)
  sessions : (int, session) Hashtbl.t;
  seen_nonces : (string, unit) Hashtbl.t;
  mutable next_session : int;
  mutable qe : Urts.t option;  (* lazily-built quoting enclave *)
}

let fault_site = "serve.session"

let create ~platform (config : config) =
  let config =
    { config with sched = { config.sched with Sched.drop_on_error = true } }
  in
  if config.max_queue <= 0 then
    invalid_arg "Serve.create: max_queue must be positive";
  if config.state_stride_pages <= 0 then
    invalid_arg "Serve.create: state_stride_pages must be positive";
  (match config.cycle_quota with
  | Some q when q <= 0 -> invalid_arg "Serve.create: cycle_quota must be positive"
  | _ -> ());
  let telemetry = Monitor.telemetry platform.Platform.monitor in
  {
    platform;
    config;
    rng = Rng.split platform.Platform.rng;
    telemetry;
    sched =
      Sched.create ~shared_clock:platform.Platform.clock ~telemetry config.sched;
    tenants = Hashtbl.create 8;
    tenant_order = [];
    sessions = Hashtbl.create 16;
    seen_nonces = Hashtbl.create 64;
    next_session = 0;
    qe = None;
  }

let reject t r =
  Telemetry.incr t.telemetry ("serve.reject." ^ reject_name r);
  Error r

let backoff t attempt =
  Cycles.tick t.platform.Platform.clock
    (World_switch.retry_backoff_cost t.platform.Platform.cost ~attempt)

(* Channel crypto cost: the plane's AEAD (AES-CTR + HMAC) runs at a few
   cycles per byte with a fixed setup — a stand-in charge, since the
   byte-level kernels are not threaded through the serving hot path. *)
let aead_cycles ~bytes = 2_000 + (3 * bytes)

let charge_aead t ~bytes =
  Cycles.tick t.platform.Platform.clock (aead_cycles ~bytes)

(* ---------------------------------------------------------------------- *)
(* Session state ECALL (EDMM-backed elastic per-session state)            *)

let state_ecall = 0x5e55

(* Touch [pages] heap pages starting at byte [off]: on the HyperEnclave
   backends each first touch demand-commits an EPC page through the
   monitor's EDMM path; native backs it with scratch memory. *)
let state_handler (env : Backend.env) input =
  if Bytes.length input <> 16 then
    invalid_arg "serve: malformed session-state request";
  let off = Int64.to_int (Bytes.get_int64_le input 0) in
  let pages = Int64.to_int (Bytes.get_int64_le input 8) in
  if off < 0 || pages < 0 then invalid_arg "serve: negative session-state range";
  for i = 0 to pages - 1 do
    env.Backend.heap_write ~off:(off + (i * Addr.page_size)) (Bytes.make 1 '\001')
  done;
  let reply = Bytes.create 8 in
  Bytes.set_int64_le reply 0 (Int64.of_int pages);
  reply

let add_tenant t ~name (bc : Backend.config) =
  if Hashtbl.mem t.tenants name then
    invalid_arg (Printf.sprintf "Serve.add_tenant: duplicate tenant %s" name);
  if List.mem_assoc state_ecall bc.Backend.handlers then
    invalid_arg
      (Printf.sprintf "Serve.add_tenant: ECALL %#x is reserved for session state"
         state_ecall);
  let bc =
    {
      bc with
      Backend.handlers = bc.Backend.handlers @ [ (state_ecall, state_handler) ];
    }
  in
  let backend = Backend.create t.platform bc in
  let tenant =
    {
      t_name = name;
      backend;
      queued = 0;
      spent = 0;
      budget = (match t.config.cycle_quota with Some q -> q | None -> max_int);
      next_slot = 0;
    }
  in
  Hashtbl.replace t.tenants name tenant;
  t.tenant_order <- name :: t.tenant_order;
  backend

let quoting_urts t =
  match t.qe with
  | Some u -> u
  | None ->
      let u =
        Urts.create ~kmod:t.platform.Platform.kmod ~proc:t.platform.Platform.proc
          ~rng:t.platform.Platform.rng ~signer:t.platform.Platform.signer
          ~config:
            {
              (Urts.default_config Sgx_types.GU) with
              Urts.code_seed = "serve-quoting-enclave";
            }
          ~ecalls:[] ~ocalls:[]
      in
      t.qe <- Some u;
      u

let quoting_identity t = Urts.mrenclave (quoting_urts t)

(* ---------------------------------------------------------------------- *)
(* Handshake                                                              *)

type hello = { nonce : bytes; client_kx : Kx.public }

type accept = {
  session_id : int;
  server_kx : Kx.public;
  quote_wire : bytes;
  tenant_identity : bytes;
}

(* Every field is length-prefixed so distinct transcripts can never
   collide by concatenation. *)
let transcript ~nonce ~client_kx ~server_kx ~identity =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "hyperenclave-serve-sigma:";
  List.iter
    (fun field ->
      let len = Bytes.create 8 in
      Bytes.set_int64_le len 0 (Int64.of_int (Bytes.length field));
      Sha256.update ctx len;
      Sha256.update ctx field)
    [ nonce; client_kx; server_kx; identity ];
  Sha256.finalize ctx

let derive_key ~shared ~nonce =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "hyperenclave-serve-key:";
  Sha256.update ctx shared;
  Sha256.update ctx nonce;
  Sha256.finalize ctx

let injected_msg site kind =
  Printf.sprintf "injected %s fault at %s" (Fault.kind_name kind) site

let handshake t ~tenant hello =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> reject t (Unknown_tenant tenant)
  | Some tn -> (
      let nonce_key = Bytes.to_string hello.nonce in
      if Hashtbl.mem t.seen_nonces nonce_key then begin
        Telemetry.incr t.telemetry "serve.handshake_rejected";
        reject t Replayed_nonce
      end
      else begin
        (* Burn the nonce even when the handshake later fails: a replayed
           challenge must never get a second quote. *)
        Hashtbl.replace t.seen_nonces nonce_key ();
        match tn.backend.Backend.identity with
        | None ->
            Telemetry.incr t.telemetry "serve.handshake_rejected";
            reject t
              (Unsupported "native backend has no enclave identity to attest")
        | Some tenant_identity -> (
            match
              Fault.with_retries ~backoff:(backoff t) (fun () ->
                  Fault.point fault_site;
                  let secret, server_kx = Kx.generate t.rng in
                  let report_data =
                    transcript ~nonce:hello.nonce ~client_kx:hello.client_kx
                      ~server_kx ~identity:tenant_identity
                  in
                  let quoter =
                    match tn.backend.Backend.urts with
                    | Some u -> u
                    | None -> quoting_urts t
                  in
                  let quote =
                    Urts.gen_quote quoter ~report_data ~nonce:hello.nonce
                  in
                  (secret, server_kx, Wire.encode quote))
            with
            | exception Fault.Injected { site; kind } ->
                Telemetry.incr t.telemetry "serve.handshake_rejected";
                reject t (Session_fault (injected_msg site kind))
            | secret, server_kx, quote_wire -> (
                match Kx.shared secret hello.client_kx with
                | None ->
                    Telemetry.incr t.telemetry "serve.handshake_rejected";
                    reject t Unknown_key_share
                | Some shared ->
                    let key = derive_key ~shared ~nonce:hello.nonce in
                    let session_id = t.next_session in
                    t.next_session <- session_id + 1;
                    let state_slot = tn.next_slot in
                    tn.next_slot <- state_slot + 1;
                    Hashtbl.replace t.sessions session_id
                      {
                        s_id = session_id;
                        tenant = tn;
                        key;
                        state_slot;
                        recv_seq = 0;
                        pending = [];
                      };
                    Telemetry.incr t.telemetry "serve.handshake";
                    Telemetry.incr t.telemetry "serve.session_open";
                    Ok { session_id; server_kx; quote_wire; tenant_identity }))
      end)

(* ---------------------------------------------------------------------- *)
(* Request envelopes                                                      *)

type request = {
  session_id : int;
  seq : int;
  ecall_id : int;
  envelope : Authenc.sealed;
}

type reply = {
  r_session_id : int;
  r_seq : int;
  r_result : (Authenc.sealed, reject) result;
}

let envelope_nonce ~dir ~seq =
  let nonce = Bytes.make 12 '\000' in
  Bytes.set nonce 0 dir;
  Bytes.set_int64_le nonce 4 (Int64.of_int seq);
  nonce

let aad ~domain ~session_id ~seq ~tag =
  let buf = Buffer.create 34 in
  Buffer.add_string buf domain;
  Buffer.add_int64_le buf (Int64.of_int session_id);
  Buffer.add_int64_le buf (Int64.of_int seq);
  Buffer.add_int64_le buf (Int64.of_int tag);
  Buffer.to_bytes buf

let aad_req ~session_id ~seq ~ecall_id =
  aad ~domain:"serve-req:" ~session_id ~seq ~tag:ecall_id

let aad_rep ~session_id ~seq = aad ~domain:"serve-rep:" ~session_id ~seq ~tag:0

(* ---------------------------------------------------------------------- *)
(* Admission                                                              *)

let submit t (req : request) =
  Telemetry.incr t.telemetry "serve.request";
  match Hashtbl.find_opt t.sessions req.session_id with
  | None -> reject t (Unknown_session req.session_id)
  | Some s -> (
      let tn = s.tenant in
      charge_aead t ~bytes:(Bytes.length req.envelope.Authenc.ciphertext);
      let expected_aad =
        aad_req ~session_id:req.session_id ~seq:req.seq ~ecall_id:req.ecall_id
      in
      if not (Bytes.equal expected_aad req.envelope.Authenc.aad) then
        reject t Bad_auth
      else
        match Authenc.unseal ~key:s.key req.envelope with
        | exception Authenc.Authentication_failure -> reject t Bad_auth
        | plaintext ->
            if req.seq <> s.recv_seq then
              reject t (Bad_sequence { expected = s.recv_seq; got = req.seq })
            else begin
              (* The envelope authenticated with the expected sequence
                 number: the number is burnt from here on, whatever the
                 admission outcome — the client's counter advanced when
                 it sealed, so the channel stays in step across typed
                 rejections. *)
              s.recv_seq <- s.recv_seq + 1;
              match
                Fault.with_retries ~backoff:(backoff t) (fun () ->
                    Fault.point fault_site)
              with
              | exception Fault.Injected { site; kind } ->
                  reject t (Session_fault (injected_msg site kind))
              | () ->
                  if tn.queued >= t.config.max_queue then
                    reject t
                      (Backpressure
                         {
                           tenant = tn.t_name;
                           queued = tn.queued;
                           limit = t.config.max_queue;
                         })
                  else if tn.spent >= tn.budget then
                    reject t
                      (Quota_exhausted
                         {
                           tenant = tn.t_name;
                           spent = tn.spent;
                           quota = tn.budget;
                         })
                  else begin
                    s.pending <- (req.seq, req.ecall_id, plaintext) :: s.pending;
                    tn.queued <- tn.queued + 1;
                    Telemetry.incr t.telemetry "serve.request.admitted";
                    Telemetry.incr t.telemetry
                      ("serve.tenant." ^ tn.t_name ^ ".requests");
                    Ok ()
                  end
            end)

(* ---------------------------------------------------------------------- *)
(* Dispatch                                                               *)

let charge t (tn : tenant) cycles =
  tn.spent <- tn.spent + cycles;
  Telemetry.add t.telemetry ("serve.tenant." ^ tn.t_name ^ ".cycles") cycles

let sessions_of t (tn : tenant) =
  Hashtbl.fold
    (fun _ s acc -> if s.tenant == tn && s.pending <> [] then s :: acc else acc)
    t.sessions []
  |> List.sort (fun a b -> compare a.s_id b.s_id)

let flush t =
  Telemetry.incr t.telemetry "serve.flush";
  (* Every staged request gets a stable admission-order index; results
     land keyed by it so replies come back in admission order no matter
     which core served them. *)
  let out : (int * session * int * (bytes, reject) result) list ref = ref [] in
  let next = ref 0 in
  let push s seq result =
    let idx = !next in
    incr next;
    out := (idx, s, seq, result) :: !out;
    idx
  in
  let record = Hashtbl.create 32 in
  (* idx -> raw result, filled by the dispatch callbacks *)
  List.iter
    (fun name ->
      let tn = Hashtbl.find t.tenants name in
      let staged = ref [] in
      List.iter
        (fun s ->
          let work = List.rev s.pending in
          s.pending <- [];
          tn.queued <- tn.queued - List.length work;
          match
            Fault.with_retries ~backoff:(backoff t) (fun () ->
                Fault.point fault_site)
          with
          | () ->
              List.iter
                (fun (seq, ecall, plaintext) ->
                  staged := (s, seq, ecall, plaintext) :: !staged)
                work
          | exception Fault.Injected { site; kind } ->
              (* Permanent session fault: this round's requests surface
                 as typed errors; the session itself stays usable. *)
              let msg = injected_msg site kind in
              List.iter
                (fun (seq, _, _) ->
                  ignore (push s seq (Error (Session_fault msg))))
                work)
        (sessions_of t tn);
      let staged = List.rev !staged in
      if staged <> [] then begin
        let slots =
          Array.of_list
            (List.map (fun (s, seq, _, _) -> push s seq (Ok Bytes.empty)) staged)
        in
        let reqs = List.map (fun (_, _, ecall, pl) -> (ecall, pl)) staged in
        match tn.backend.Backend.urts with
        | Some urts ->
            Sched.submit t.sched ~urts
              ~on_result:(fun ~index result ->
                Hashtbl.replace record slots.(index) result)
              ~on_slice:(fun ~cycles -> charge t tn cycles)
              reqs
        | None ->
            (* No SDK handle (the SGX model): dispatch directly through
               the backend's batch call, charging the shared-clock delta
               as this tenant's quota spend. *)
            let clock = t.platform.Platform.clock in
            let before = Cycles.now clock in
            let outcomes = Backend.protected_batch tn.backend ~reqs () in
            charge t tn (Cycles.now clock - before);
            List.iteri
              (fun i outcome ->
                Hashtbl.replace record slots.(i)
                  (match outcome with
                  | Backend.Success reply -> Ok reply
                  | Backend.Typed_error m | Backend.Violation m -> Error m))
              outcomes
      end)
    (List.rev t.tenant_order);
  ignore (Sched.run t.sched : Sched.stats);
  (* Seal after the scheduler has drained so channel crypto is charged
     to the plane, not smeared into per-core slice accounting. *)
  !out
  |> List.map (fun (idx, s, seq, early) ->
         let result =
           match Hashtbl.find_opt record idx with
           | Some (Ok reply) -> Ok reply
           | Some (Error msg) -> Error (Session_fault msg)
           | None -> (
               match early with
               | Error _ as e -> e
               | Ok _ -> Error (Session_fault "request lost by the scheduler"))
         in
         (idx, s, seq, result))
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
  |> List.map (fun (_, s, seq, result) ->
         match result with
         | Ok body ->
             charge_aead t ~bytes:(Bytes.length body);
             Telemetry.incr t.telemetry "serve.request.ok";
             {
               r_session_id = s.s_id;
               r_seq = seq;
               r_result =
                 Ok
                   (Authenc.seal ~key:s.key
                      ~aad:(aad_rep ~session_id:s.s_id ~seq)
                      ~nonce:(envelope_nonce ~dir:'<' ~seq)
                      body);
             }
         | Error rej ->
             Telemetry.incr t.telemetry "serve.request.failed";
             Telemetry.incr t.telemetry ("serve.reject." ^ reject_name rej);
             { r_session_id = s.s_id; r_seq = seq; r_result = Error rej })

(* ---------------------------------------------------------------------- *)
(* Session state (EDMM)                                                   *)

let resize_session t ~session ~pages =
  if pages < 0 || pages > t.config.state_stride_pages then
    invalid_arg
      (Printf.sprintf "Serve.resize_session: pages must be in [0, %d]"
         t.config.state_stride_pages);
  match Hashtbl.find_opt t.sessions session with
  | None -> reject t (Unknown_session session)
  | Some s -> (
      match s.tenant.backend.Backend.kind with
      | Backend.Sgx ->
          reject t
            (Unsupported
               "SGX1 does not support EDMM: session state cannot grow after \
                EINIT")
      | Backend.Native | Backend.Hyperenclave _ ->
          let data = Bytes.create 16 in
          Bytes.set_int64_le data 0
            (Int64.of_int
               (s.state_slot * t.config.state_stride_pages * Addr.page_size));
          Bytes.set_int64_le data 8 (Int64.of_int pages);
          (match
             Backend.protected_call s.tenant.backend ~id:state_ecall ~data
               ~direction:Edge.In_out ()
           with
          | Backend.Success reply ->
              Ok (Int64.to_int (Bytes.get_int64_le reply 0))
          | Backend.Typed_error m | Backend.Violation m ->
              reject t (Session_fault m)))

(* ---------------------------------------------------------------------- *)
(* Quotas and introspection                                               *)

let grant t ~tenant cycles =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> invalid_arg (Printf.sprintf "Serve.grant: unknown tenant %s" tenant)
  | Some tn -> if tn.budget <> max_int then tn.budget <- tn.budget + cycles

let quota_state t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | None ->
      invalid_arg (Printf.sprintf "Serve.quota_state: unknown tenant %s" tenant)
  | Some tn -> (tn.spent, tn.budget)

let session_count t = Hashtbl.length t.sessions
let sched_stats t = Sched.run t.sched

let destroy t =
  (match t.qe with Some u -> Urts.destroy u | None -> ());
  t.qe <- None

(* ---------------------------------------------------------------------- *)
(* Client                                                                 *)

module Client = struct
  type hs = { hs_nonce : bytes; secret : Kx.secret; hs_client_kx : Kx.public }

  type t = {
    rng : Rng.t;
    golden : Verifier.golden;
    policy : Verifier.policy;
    expected_tenant : bytes option;
    mutable hs : hs option;
    mutable session : (int * bytes) option;  (* id, key *)
    mutable send_seq : int;
  }

  let create ~rng ~golden ~policy ?expected_tenant () =
    {
      rng;
      golden;
      policy;
      expected_tenant;
      hs = None;
      session = None;
      send_seq = 0;
    }

  let hello t =
    let hs_nonce = Rng.bytes t.rng 16 in
    let secret, hs_client_kx = Kx.generate t.rng in
    t.hs <- Some { hs_nonce; secret; hs_client_kx };
    t.session <- None;
    t.send_seq <- 0;
    { nonce = hs_nonce; client_kx = hs_client_kx }

  let establish t (accept : accept) =
    match t.hs with
    | None -> invalid_arg "Serve.Client.establish: no handshake in flight"
    | Some hs -> (
        match Wire.decode accept.quote_wire with
        | Error m -> Error (Bad_wire m)
        | Ok quote -> (
            match
              Verifier.verify ~golden:t.golden ~policy:t.policy
                ~nonce:hs.hs_nonce quote
            with
            | Verifier.Error f -> Error (Handshake_failed f)
            | Verifier.Ok report -> (
                (* The quote speaks; now check it speaks about THIS
                   exchange: transcript binding, then the claimed tenant
                   identity against the pin. *)
                let expected =
                  transcript ~nonce:hs.hs_nonce ~client_kx:hs.hs_client_kx
                    ~server_kx:accept.server_kx
                    ~identity:accept.tenant_identity
                in
                let bound =
                  Bytes.length report.Hyperenclave_monitor.Sgx_types.report_data
                  >= 32
                  && Bytes.equal expected
                       (Bytes.sub
                          report.Hyperenclave_monitor.Sgx_types.report_data 0 32)
                in
                if not bound then Error Channel_binding_mismatch
                else
                  match t.expected_tenant with
                  | Some pin when not (Bytes.equal pin accept.tenant_identity)
                    ->
                      Error
                        (Handshake_failed
                           (Verifier.Policy_violation
                              "tenant identity mismatch"))
                  | Some _ | None -> (
                      match Kx.shared hs.secret accept.server_kx with
                      | None -> Error Unknown_key_share
                      | Some shared ->
                          t.session <-
                            Some
                              ( accept.session_id,
                                derive_key ~shared ~nonce:hs.hs_nonce );
                          Ok ()))))

  let session_id t =
    match t.session with
    | Some (id, _) -> id
    | None -> invalid_arg "Serve.Client.session_id: no session established"

  let request t ~ecall data =
    match t.session with
    | None -> invalid_arg "Serve.Client.request: no session established"
    | Some (session_id, key) ->
        let seq = t.send_seq in
        t.send_seq <- seq + 1;
        {
          session_id;
          seq;
          ecall_id = ecall;
          envelope =
            Authenc.seal ~key
              ~aad:(aad_req ~session_id ~seq ~ecall_id:ecall)
              ~nonce:(envelope_nonce ~dir:'>' ~seq)
              data;
        }

  let read_reply t (reply : reply) =
    match t.session with
    | None -> invalid_arg "Serve.Client.read_reply: no session established"
    | Some (session_id, key) -> (
        if reply.r_session_id <> session_id then
          Error (Unknown_session reply.r_session_id)
        else
          match reply.r_result with
          | Error rej -> Error rej
          | Ok sealed -> (
              if
                not
                  (Bytes.equal sealed.Authenc.aad
                     (aad_rep ~session_id ~seq:reply.r_seq))
              then Error Bad_auth
              else
                match Authenc.unseal ~key sealed with
                | exception Authenc.Authentication_failure -> Error Bad_auth
                | body -> Ok body))

  let roundtrip plane t reqs =
    let submitted =
      List.map
        (fun (ecall, data) ->
          let r = request t ~ecall data in
          (r.seq, submit plane r))
        reqs
    in
    let replies = flush plane in
    let mine = session_id t in
    List.map
      (fun (seq, admitted) ->
        match admitted with
        | Error rej -> Error rej
        | Ok () -> (
            match
              List.find_opt
                (fun r -> r.r_session_id = mine && r.r_seq = seq)
                replies
            with
            | None -> Error (Session_fault "no reply for admitted request")
            | Some reply -> read_reply t reply))
      submitted
end
