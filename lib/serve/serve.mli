(** Multi-tenant attested serving plane.

    The end-to-end path from an untrusted client to an enclave that the
    rest of the stack was missing: a client proves who it is talking to
    with the paper's attestation chain (Sec. 5 — TPM quote over the
    measured boot + hapk binding, monitor-signed ems), agrees on a
    per-session channel key, and then submits encrypted requests that
    the plane authenticates, decrypts into the marshalling buffer and
    routes into the SMP scheduler as batched ECALLs, replying over the
    same channel.

    {2 Handshake (SIGMA-style)}

    + the client sends a fresh nonce and an ephemeral {!Kx} share;
    + the plane generates its own share, derives the session key, and
      answers with a wire-encoded HyperEnclave quote whose [report_data]
      binds the whole transcript (nonce, both shares, and the tenant's
      enclave identity) — so the key exchange is authenticated by the
      attestation chain and cannot be spliced across sessions;
    + the client decodes the quote on untrusted bytes, runs
      {!Hyperenclave_attestation.Verifier.verify}, checks the transcript
      binding, and derives the same key.

    Tenants on a HyperEnclave backend quote {e themselves} (the monitor
    signs their report).  Tenants on the SGX-model backend cannot — the
    Intel part's quoting flows through a {e quoting enclave}, so the
    plane keeps one ({!quoting_identity}) whose quote vouches for the
    tenant identity carried in the transcript.  Native tenants have no
    enclave identity and are refused with {!Unsupported}.

    {2 Serving}

    Admission control is typed and per-tenant: bounded queues
    ({!Backpressure}), cycle quotas charged from the scheduler's
    per-slice deltas ({!Quota_exhausted}), AEAD authentication
    ({!Bad_auth}) and strict sequence numbers ({!Bad_sequence}).
    {!flush} drains every admitted request through
    {!Hyperenclave_sched.Sched} (tenants without an SDK handle dispatch
    through the backend's batch call instead) and seals the replies.

    Session work crosses the ["serve.session"] fault-injection site:
    transient faults are absorbed by the SDK's bounded retry/backoff,
    permanent ones surface as typed {!Session_fault} errors — never as
    an escaped exception, and always with the monitor invariants green.

    {2 Fleet}

    A plane is one {e node} of a fleet: it is created with an explicit
    {!identity} (node id, monitor hapk, measured-boot PCR digest) and
    every session it opens is stamped with that identity.  Tenants and
    their live sessions can move between nodes — {!export_tenant}
    packages sessions (keys, sequence state, committed EDMM pages) and
    the burnt-nonce replay cache, {!import_tenant} rebuilds them on a
    destination whose tenant enclave measures identically, and
    {!retire_tenant} cuts the source over so stragglers get typed
    forwards ({!Session_migrated} / {!Tenant_migrated}) instead of bare
    unknown-id errors.  The cluster layer
    ({!Hyperenclave_cluster.Cluster}) drives these through an attested
    transfer protocol; the plane itself only enforces the local
    invariants. *)

open Hyperenclave_hw
open Hyperenclave_tee
module Verifier := Hyperenclave_attestation.Verifier
module Kx := Hyperenclave_crypto.Kx
module Authenc := Hyperenclave_crypto.Authenc
module Signature := Hyperenclave_crypto.Signature
module Monitor := Hyperenclave_monitor.Monitor

(** {1 Typed rejections} *)

type reject =
  | Handshake_failed of Verifier.failure
      (** the quote did not verify (client side) *)
  | Channel_binding_mismatch
      (** the quote verifies but does not bind this transcript *)
  | Bad_wire of string  (** quote wire bytes failed structural decode *)
  | Unknown_key_share  (** the peer's {!Kx} share is not a group element *)
  | Replayed_nonce  (** handshake nonce already seen by this plane *)
  | Unknown_tenant of string
  | Unknown_session of int
  | Unsupported of string
      (** the backend cannot do this: native attestation, SGX1 EDMM *)
  | Bad_auth  (** AEAD authentication failure on a request envelope *)
  | Bad_sequence of { expected : int; got : int }
      (** replayed or out-of-order request sequence number *)
  | Backpressure of { tenant : string; queued : int; limit : int }
  | Quota_exhausted of { tenant : string; spent : int; quota : int }
  | Session_fault of string
      (** a permanent fault surfaced as a typed session error *)
  | Bad_ticket of string
      (** a resumption ticket that failed structural decode, carried the
          wrong AAD domain, failed authentication, or had a malformed
          payload *)
  | Ticket_expired  (** a well-formed ticket past its TTL *)
  | Session_migrated of { to_node : int }
      (** the session moved to another node after cutover — re-resolve
          and resubmit there *)
  | Tenant_migrated of { tenant : string; to_node : int }
      (** the tenant no longer lives here; handshakes and resumes must
          go to [to_node] *)
  | Tenant_busy of { tenant : string; staged : int }
      (** export/retire refused: admitted requests are still staged —
          flush first *)
  | Import_conflict of string
      (** a migration blob that cannot install: identity mismatch, live
          session-id collision, or state exceeding this node's stride *)

val reject_name : reject -> string
(** Short stable label, also the telemetry suffix ([serve.reject.<name>]). *)

val pp_reject : Format.formatter -> reject -> unit

(** {1 The plane} *)

type config = {
  sched : Hyperenclave_sched.Sched.config;
      (** scheduler for enclave-backed tenants; [drop_on_error] is
          forced on so injected permanent faults drain as typed
          failures instead of aborting the plane *)
  max_queue : int;  (** per-tenant bound on admitted-but-unflushed requests *)
  cycle_quota : int option;
      (** initial per-tenant cycle budget ([None] = unmetered); spent
          cycles come from scheduler slice deltas (or the shared-clock
          delta of the direct dispatch path) and are replenished with
          {!grant} *)
  state_stride_pages : int;
      (** per-session elastic state region size, in pages *)
  nonce_cache : int;
      (** replay-cache bound: only the most recent [nonce_cache]
          handshake / resumption nonces are remembered (FIFO eviction),
          so session churn cannot grow the table without limit *)
  ticket_ttl : int;
      (** resumption-ticket lifetime in shared-clock cycles *)
  arena : bool;
      (** allocation-free data path (the default): admissions stage into
          flat reusable arenas and {!flush} dispatches through per-shard
          marshalling-buffer rings where the pinned slot {e is} the AEAD
          envelope — requests decrypt into their ring slot, replies seal
          in place in the reply image, and the only per-request
          allocations left are the wire-facing reply envelopes.  [false]
          selects the list-structured reference path, kept as the
          byte-identity oracle the arena is property-tested against. *)
  shard_block : int;
      (** consecutive per-session staged requests assigned to one ring
          shard before the plane-wide rotor advances — small enough that
          one hot session spreads across every core, large enough that a
          session's replies cluster per reply segment *)
  slot_bytes : int;
      (** ring slot payload capacity, a positive multiple of 8; arena
          admissions whose ciphertext exceeds it are refused with
          {!Unsupported} *)
}

val default_config : config
(** 2 cores (scheduler defaults with [drop_on_error]), 64-request
    queues, unmetered quotas, 16-page session state stride, 1024-nonce
    replay cache, 1e9-cycle ticket TTL, arena path on with 8-request
    shard blocks and 256-byte slots. *)

(** {1 Node identity}

    Every plane speaks as one addressable node of a fleet.  The identity
    is explicit — callers thread it rather than the plane silently
    reading it off the platform — so each quote-verification decision in
    the system names its trust anchor. *)

type identity = {
  node_id : int;  (** fleet-unique address; 0 for the single-node case *)
  hapk : Signature.public_key;
      (** the monitor attestation key that signs this node's quotes *)
  pcr_digest : bytes;
      (** the node's measured-boot digest over the standard PCR
          selection — what its TPM quotes attest *)
}

val identity_of_platform : ?node_id:int -> Platform.t -> identity
(** Read the platform's monitor hapk and current PCR digest; [node_id]
    defaults to [0]. *)

module Node_config : sig
  type serve_config := config

  type t = { identity : identity; serve : serve_config }

  val v : ?node_id:int -> platform:Platform.t -> serve_config -> t
  (** Convenience: derive the identity from the platform. *)
end

type t

val create_node : platform:Platform.t -> Node_config.t -> t
(** Build a serving plane that answers as [identity.node_id].  Session
    ids are node-prefixed so they stay distinct across a fleet and a
    migrated session keeps its id on the destination.
    @raise Invalid_argument on invalid configuration, or when the
    identity's hapk is not this platform's monitor key — a plane must
    not advertise an identity its own monitor cannot back. *)

val identity : t -> identity

val node_quote :
  t -> report_data:bytes -> nonce:bytes -> Monitor.quote
(** A quote from the plane's quoting enclave, signed by this node's
    monitor — the node's own attestation voice, used by the migration
    protocol to prove a destination before sealed state is shipped. *)

val add_tenant : t -> name:string -> Backend.config -> Backend.t
(** Build the tenant's backend on the plane's platform ({!Backend.create}
    with the plane's reserved session-state ECALLs appended) and register
    it.  The returned backend is the tenant's own handle — for loading
    data, direct calls, and teardown.
    @raise Invalid_argument on a duplicate name or a handler colliding
    with a reserved ECALL id. *)

val state_ecall : int
(** The reserved ECALL id behind {!resize_session}. *)

val reserved_ecalls : int list
(** All ECALL ids the plane reserves: session-state commit
    ({!state_ecall}), and the migration-time state read / write movers. *)

val quoting_identity : t -> bytes
(** MRENCLAVE of the plane's quoting enclave — what a client should pin
    as [expected_mrenclave] when verifying an SGX-model tenant's
    handshake (created on first use). *)

(** {1 Wire messages} *)

type hello = { nonce : bytes; client_kx : Kx.public }

type accept = {
  session_id : int;
  node_id : int;
      (** which fleet node accepted — clients route follow-ups there *)
  server_kx : Kx.public;
  quote_wire : bytes;  (** untrusted bytes until the client verifies *)
  tenant_identity : bytes;
      (** the tenant MRENCLAVE bound into the transcript (equals the
          quote's MRENCLAVE for self-quoting tenants) *)
}

type request = {
  session_id : int;
  seq : int;
  ecall_id : int;
  envelope : Authenc.sealed;
}

type reply = {
  r_session_id : int;
  r_seq : int;
  r_result : (Authenc.sealed, reject) result;
      (** sealed reply body, or the typed server-side failure *)
}

(** {1 Server operations} *)

val handshake : t -> tenant:string -> hello -> (accept, reject) result
(** Verify freshness, quote the tenant, derive the session key and open
    a session.  Counters: [serve.handshake] / [serve.handshake_rejected]. *)

val submit : t -> request -> (unit, reject) result
(** Authenticate and admit one request: AAD + AEAD tag check where the
    envelope lies (no plaintext allocated), strict sequence check,
    per-tenant queue bound, per-tenant cycle quota.  The decrypt is
    deferred to {!flush} — zero-copy admission. *)

val flush : t -> reply list
(** Complete the deferred decrypts in ring-sized chunks spread over the
    scheduler's cores, drain every admitted request — enclave tenants
    as batched ECALLs through the scheduler, SGX-model tenants through
    the backend batch call — charge tenant quotas, and seal the replies
    with the sessions' prepared keys (admission order per flush). *)

val resize_session : t -> session:int -> pages:int -> (int, reject) result
(** Commit [pages] pages of in-enclave session state through the
    reserved ECALL — the EDMM demand-commit path on HyperEnclave
    backends.  SGX-model tenants get the typed {!Unsupported} rejection
    (SGX1 cannot grow an enclave after EINIT).
    @raise Invalid_argument if [pages] exceeds the configured stride or
    is negative. *)

val grant : t -> tenant:string -> int -> unit
(** Add cycles to a tenant's quota budget (no-op when unmetered). *)

val quota_state : t -> tenant:string -> int * int
(** [(spent, budget)] — budget is [max_int] when unmetered. *)

val session_count : t -> int

val sched_stats : t -> Hyperenclave_sched.Sched.stats
(** Cumulative scheduler statistics across every {!flush} so far — a
    read-only snapshot ({!Hyperenclave_sched.Sched.stats}); it never
    runs the scheduler. *)

val close_session : t -> session:int -> (unit, reject) result
(** Retire a session: drop anything still queued (the tenant's queue
    count shrinks accordingly), recycle its state slot for the next
    session on the same tenant, and forget the channel key.  Counter:
    [serve.session_close]. *)

val destroy : t -> unit
(** Tear down the plane: the quoting enclave, then every tenant backend
    (the plane built them, so it owns them — do not also call the
    handle's [destroy]).  All session / tenant / replay state is
    cleared.  Idempotent. *)

(** {1 Live migration}

    The plane-local half of moving a tenant between nodes.  These
    functions deal in {e plaintext} session state — the cluster layer
    seals the export under a transport key derived from an attested
    exchange with the destination before it crosses the simulated
    network; nothing here should touch a wire unsealed. *)

type session_export = {
  x_session : int;  (** the session keeps its (node-prefixed) id *)
  x_key : bytes;  (** channel key — the client notices nothing *)
  x_recv_seq : int;  (** strict-sequence cursor *)
  x_pages : int;  (** committed EDMM pages *)
  x_state : bytes;  (** their bytes, read out through the enclave *)
}

type tenant_export = {
  x_tenant : string;
  x_identity : bytes;
      (** the source enclave's MRENCLAVE; the destination must measure
          identically or the import is refused *)
  x_sessions : session_export list;  (** ascending session id *)
  x_nonces : string list;
      (** the burnt-nonce replay cache in FIFO order — a nonce burnt
          before the move stays burnt after it *)
}

val export_tenant : t -> tenant:string -> (tenant_export, reject) result
(** Package a tenant's live sessions for migration.  Refuses with
    {!Tenant_busy} while admitted requests are still staged (flush
    first), {!Tenant_migrated} after cutover, and {!Unsupported} for
    native tenants (nothing measured to re-attest).  Does not mutate
    the plane — cutover is {!retire_tenant}. *)

val import_tenant : t -> tenant_export -> (int, reject) result
(** Install an exported tenant on this node: the tenant must already be
    registered ({!add_tenant} with the same backend config), measure
    identically to [x_identity], and have no live session-id collisions
    ({!Import_conflict} otherwise).  Sessions are rebuilt with their
    original ids, keys and sequence cursors; EDMM pages are re-committed
    and replayed through the enclave; the replay cache is merged.  A
    mid-install failure rolls back cleanly.  Returns the number of
    sessions installed. *)

val retire_tenant : t -> tenant:string -> to_node:int -> (int, reject) result
(** Cutover: stop answering for the tenant and forward stragglers.
    Live sessions become {!Session_migrated} forwards to [to_node]; new
    handshakes and resumes get {!Tenant_migrated}.  Refuses with
    {!Tenant_busy} while requests are staged.  Returns the number of
    sessions retired.  An {!import_tenant} of the same tenant back onto
    this node (migrate-back) clears the forwards. *)

(** {1 Session resumption}

    A live session can be converted into a {e ticket}: the channel key
    and tenant identity sealed under a plane-local key with a TTL.  A
    returning client presents the ticket with a fresh nonce and gets a
    new session for one AEAD unseal — skipping the quote generation and
    verification of the full SIGMA handshake (an order of magnitude
    cheaper).  Both sides derive the new channel key as
    [H(ticket_key, nonce)], so the ticketed key itself never carries
    traffic, and the plane burns resumption nonces in the same bounded
    replay cache as handshake nonces. *)

val issue_ticket : t -> session:int -> (bytes, reject) result
(** Seal [(tenant, session key, expiry)] under the plane's ticket key.
    The wire form is opaque to the client.  Counter:
    [serve.ticket_issued]. *)

type resume = { r_ticket : bytes; r_nonce : bytes }

val resume : t -> resume -> (int, reject) result
(** Open a new session from a ticket: replay check on the nonce, ticket
    unseal + decode, TTL check, tenant lookup, fresh key derivation.
    Typed failures: {!Replayed_nonce}, {!Bad_ticket}, {!Ticket_expired},
    {!Unknown_tenant}.  Counters: [serve.resume], [serve.session_open]. *)

(** {1 Client} *)

module Client : sig
  type plane := t

  type t

  val create :
    rng:Rng.t ->
    golden:Verifier.golden ->
    policy:Verifier.policy ->
    ?expected_tenant:bytes ->
    ?expected_hapk:Signature.public_key ->
    unit ->
    t
  (** A relying party: golden boot measurements, enclave policy, and —
      for quoting-enclave-fronted tenants — the tenant identity to pin
      ([expected_tenant]); without it the transcript's claimed identity
      is accepted as-is.  [expected_hapk] pins the {e node}: in a fleet
      every monitor boots the same golden measurements, so a client that
      knows which node it addressed pins that node's monitor key and
      gets {!Handshake_failed} ({!Verifier.Hapk_mismatch}) from any
      sibling. *)

  val hello : t -> hello
  (** Fresh nonce + ephemeral share.  One client drives one session;
      calling it again restarts with fresh material. *)

  val establish : t -> accept -> (unit, reject) result
  (** Decode + verify the quote, check the transcript binding, derive
      the session key. *)

  val resume_hello : t -> ticket:bytes -> resume
  (** Start a resumption from the current session's key and a ticket
      previously issued for it: fresh nonce, sequence reset.  The old
      session becomes unusable on this client.
      @raise Invalid_argument without an established session. *)

  val complete_resume : t -> session_id:int -> unit
  (** Accept the plane's {!val-resume} result: derive the resumed
      channel key and switch to the new session.
      @raise Invalid_argument without a {!resume_hello} in flight. *)

  val session_id : t -> int
  (** @raise Invalid_argument before a session is established. *)

  val request : t -> ecall:int -> bytes -> request
  (** Seal the payload under the session key with the next sequence
      number. *)

  val read_reply : t -> reply -> (bytes, reject) result
  (** Unseal a reply (or surface its typed server-side failure). *)

  val roundtrip :
    plane -> t -> (int * bytes) list -> (bytes, reject) result list
  (** Convenience: submit every request, {!flush}, and read this
      client's replies back in order (submission rejects short-circuit
      into the result list). *)
end
