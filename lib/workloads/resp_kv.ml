open Hyperenclave_hw
open Hyperenclave_tee

let ecall_command = 400
let ocall_read = 401
let ocall_write = 402
let value_bytes = 1024
let stored_bytes = 32

(* --- RESP protocol ------------------------------------------------------------ *)

let encode_command parts =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "*%d\r\n" (List.length parts));
  List.iter
    (fun p -> Buffer.add_string buf (Printf.sprintf "$%d\r\n%s\r\n" (String.length p) p))
    parts;
  Buffer.to_bytes buf

let parse_one raw pos =
  let len = String.length raw in
  let line () =
    match String.index_from_opt raw !pos '\r' with
    | Some i when i + 1 < len && raw.[i + 1] = '\n' ->
        let l = String.sub raw !pos (i - !pos) in
        pos := i + 2;
        Result.Ok l
    | Some _ | None -> Result.Error "missing CRLF"
  in
  let ( let* ) = Result.bind in
  let* header = line () in
  if String.length header < 2 || header.[0] <> '*' then
    Result.Error "expected array header"
  else
    match int_of_string_opt (String.sub header 1 (String.length header - 1)) with
    | None -> Result.Error "bad array length"
    | Some n when n < 0 || n > 64 -> Result.Error "unreasonable array length"
    | Some n ->
        let rec bulk acc remaining =
          if remaining = 0 then Result.Ok (List.rev acc)
          else
            let* size_line = line () in
            if String.length size_line < 2 || size_line.[0] <> '$' then
              Result.Error "expected bulk string"
            else
              match
                int_of_string_opt (String.sub size_line 1 (String.length size_line - 1))
              with
              | None -> Result.Error "bad bulk length"
              | Some size ->
                  (* Bounds discipline: a negative $<size> must never
                     reach String.sub, and the length check is written
                     subtraction-side so a huge declared size cannot
                     overflow past [len].  The payload's own CRLF is
                     verified, not skipped blind — an over-declared size
                     that swallows the terminator is a protocol error,
                     not an exception out of the dispatch loop. *)
                  if size < 0 then Result.Error "negative bulk length"
                  else if size > len - !pos - 2 then
                    Result.Error "truncated bulk"
                  else if
                    not (raw.[!pos + size] = '\r' && raw.[!pos + size + 1] = '\n')
                  then Result.Error "missing bulk CRLF"
                  else begin
                    let s = String.sub raw !pos size in
                    pos := !pos + size + 2;
                    bulk (s :: acc) (remaining - 1)
                  end
        in
        bulk [] n

let parse_resp raw = parse_one raw (ref 0)

(* A pipelined request: back-to-back RESP arrays (redis pipelining). *)
let parse_pipeline raw =
  let pos = ref 0 in
  let rec go acc =
    if !pos >= String.length raw then Result.Ok (List.rev acc)
    else
      match parse_one raw pos with
      | Result.Ok cmd -> go (cmd :: acc)
      | Result.Error _ as e -> e
  in
  go []

let decode_reply raw =
  let s = Bytes.to_string raw in
  if String.length s = 0 then Result.Error "empty reply"
  else
    match s.[0] with
    | '+' -> Result.Ok (String.sub s 1 (String.length s - 1))
    | '$' -> (
        match String.index_opt s '\n' with
        | Some i -> Result.Ok (String.sub s (i + 1) (String.length s - i - 1))
        | None -> Result.Error "malformed bulk reply")
    | '-' -> Result.Error (String.sub s 1 (String.length s - 1))
    | _ -> Result.Error ("unknown reply: " ^ s)

(* --- server ----------------------------------------------------------------- *)

let per_command_cost = 2_600 (* dispatch, object bookkeeping, expiry checks *)
let per_chunk_net = 12_600

(* The key-value store behind the protocol, factored out so the service
   layer (resp_kv behind the attested plane) can run commands against its
   own instance without the socket OCALLs of the closed-loop handler. *)
module Store = struct
  type t = (string, bytes) Hashtbl.t

  let create () : t = Hashtbl.create 4096

  let size (t : t) = Hashtbl.length t

  let addr_of_key key =
    0x6000_0000 + (Hashtbl.hash key land 0xffff) * value_bytes

  let exec (t : t) (env : Backend.env) parts =
    env.Backend.compute per_command_cost;
    (* Value accesses are pointer chases into a 1 KB object. *)
    match List.map String.lowercase_ascii parts with
    | "set" :: _ :: _ -> (
        match parts with
        | [ _; key; value ] ->
            Hashtbl.replace t key (Bytes.of_string value);
            Mem_sim.touch_dependent env.Backend.mem ~addr:(addr_of_key key)
              ~len:value_bytes ~write:true;
            "+OK"
        | _ -> "-ERR wrong number of arguments for 'set'")
    | [ "get"; key ] -> (
        Mem_sim.touch_dependent env.Backend.mem ~addr:(addr_of_key key)
          ~len:value_bytes ~write:false;
        match Hashtbl.find_opt t key with
        | Some v -> Printf.sprintf "$%d\n%s" (Bytes.length v) (Bytes.to_string v)
        | None -> "$-1\n")
    | [ "dbsize" ] -> Printf.sprintf "+%d" (Hashtbl.length t)
    | cmd :: _ -> "-ERR unknown command '" ^ cmd ^ "'"
    | [] -> "-ERR empty command"
end

let ocalls () =
  [
    (ocall_read, fun data -> data);
    (ocall_write, fun data -> Bytes.of_string (string_of_int (Bytes.length data)));
  ]

let handlers () =
  let store = Store.create () in
  let run_command env parts = Store.exec store env parts in
  let handle (env : Backend.env) input =
    (* One socket read delivers the whole (possibly pipelined) request. *)
    ignore (env.Backend.ocall ~id:ocall_read ~data:input ());
    env.Backend.compute per_chunk_net;
    env.Backend.compute (20 * Bytes.length input);
    let reply =
      match parse_pipeline (Bytes.to_string input) with
      | Result.Error e -> "-ERR " ^ e
      | Result.Ok commands ->
          String.concat "\r" (List.map (run_command env) commands)
    in
    (* One socket write carries all the replies back. *)
    let out = Bytes.of_string reply in
    ignore (env.Backend.ocall ~id:ocall_write ~data:out ());
    env.Backend.compute per_chunk_net;
    out
  in
  [ (ecall_command, handle) ]

(* --- client ------------------------------------------------------------------- *)

let key_name key = Printf.sprintf "user%08d" key

let value_for key =
  Bytes.to_string (Ycsb.record_value ~key ~size:stored_bytes)

let raw_call (backend : Backend.t) parts =
  backend.Backend.call ~id:ecall_command ~data:(encode_command parts)
    ~direction:Hyperenclave_sdk.Edge.In_out ()

let load backend ~records =
  for key = 0 to records - 1 do
    match decode_reply (raw_call backend [ "SET"; key_name key; value_for key ]) with
    | Result.Ok "OK" -> ()
    | Result.Ok other -> failwith ("Resp_kv.load: unexpected reply " ^ other)
    | Result.Error e -> failwith ("Resp_kv.load: " ^ e)
  done

(* RESP has no range primitive: a Scan degrades to a GET of the anchor
   key, which is also what YCSB's Redis binding does. *)
let parts_of_op operation =
  match operation with
  | Ycsb.Read key | Ycsb.Scan (key, _) -> [ "GET"; key_name key ]
  | Ycsb.Update key -> [ "SET"; key_name key; value_for key ]

let op (backend : Backend.t) operation =
  let parts = parts_of_op operation in
  let reply, cycles =
    Cycles.time backend.Backend.clock (fun () -> raw_call backend parts)
  in
  (match decode_reply reply with
  | Result.Ok _ -> ()
  | Result.Error e -> failwith ("Resp_kv.op: " ^ e));
  cycles

(* Under saturation the 20 YCSB clients keep several commands in flight,
   so the server drains them pipelined — one read()/enter per batch. *)
let pipeline_depth = 12

let service_time backend ~records ~samples =
  let gen =
    Ycsb.create ~rng:(Rng.create ~seed:99L) ~records ()
  in
  let batches = max 1 (samples / pipeline_depth) in
  let total = ref 0 in
  for _ = 1 to batches do
    let buf = Buffer.create 512 in
    for _ = 1 to pipeline_depth do
      Buffer.add_bytes buf (encode_command (parts_of_op (Ycsb.next_op_a gen)))
    done;
    let _, cycles =
      Cycles.time backend.Backend.clock (fun () ->
          ignore
            (backend.Backend.call ~id:ecall_command ~data:(Buffer.to_bytes buf)
               ~direction:Hyperenclave_sdk.Edge.In_out ()))
    in
    total := !total + cycles
  done;
  float_of_int !total /. float_of_int (batches * pipeline_depth)

let latency_curve ~service_cycles ~offered_kops =
  let s_seconds = service_cycles /. 2.2e9 in
  List.map
    (fun kops ->
      let lambda = kops *. 1000.0 in
      let rho = lambda *. s_seconds in
      if rho >= 0.98 then (kops, None)
      else
        let latency_s = s_seconds /. (1.0 -. rho) in
        (kops, Some (latency_s *. 1e6)))
    offered_kops
