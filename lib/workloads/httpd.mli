(** Lighttpd stand-in: an in-enclave static web server (Fig. 8c).

    The server runs inside the enclave under an Occlum-style libOS shim:
    each HTTP request arrives as one ECALL, is genuinely parsed
    (request line, headers, path validation), resolved against an
    in-memory document root, and the response is streamed back through
    write OCALLs in 16 KB chunks — the frequent world switches that
    dominate this benchmark (Sec. 7.4).  Workers also pay per-chunk
    network-stack cost on every backend, enclave or not. *)

open Hyperenclave_tee

val ecall_request : int
val chunk_bytes : int
(** 16 KiB write() chunks. *)

(** {2 Cost model (shared with the service-layer variant)} *)

val per_request_cost : int
val per_parse_char : int
val per_chunk_net : int

val body_cost : int -> int
(** Content assembly + checksumming cycles for a body of this size. *)

val handlers : pages:(string * int) list -> (int * Backend.handler) list
(** Document root: (path, size-in-bytes) pairs. *)

val ocalls : unit -> (int * (bytes -> bytes)) list
(** The untrusted socket-write handlers (shared shape for all backends). *)

val request_for : path:string -> bytes
(** A well-formed GET request. *)

val serve : Backend.t -> path:string -> int
(** One request through the backend; returns simulated cycles.
    @raise Failure on a non-200 response. *)

val throughput_rps : cycles_per_request:float -> float
(** Requests/second at 2.2 GHz. *)

(** {1 Pure request parser (unit-testable)} *)

type request = { meth : string; path : string; headers : (string * string) list }

val parse_request : string -> (request, string) result
