open Hyperenclave_hw

type op = Read of int | Update of int | Scan of int * int

type t = {
  rng : Rng.t;
  records : int;
  theta : float;
  zetan : float;
  zeta2 : float;
  alpha : float;
  eta : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int i ** theta))
  done;
  !acc

let create ~rng ~records ?(zipf_theta = 0.99) () =
  if records <= 0 then invalid_arg "Ycsb.create: records <= 0";
  let zetan = zeta records zipf_theta in
  let zeta2 = zeta 2 zipf_theta in
  let alpha = 1.0 /. (1.0 -. zipf_theta) in
  let eta =
    (1.0 -. ((2.0 /. float_of_int records) ** (1.0 -. zipf_theta)))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { rng; records; theta = zipf_theta; zetan; zeta2; alpha; eta }

(* FNV-1a scramble, as YCSB does, so hot keys are spread over the
   keyspace instead of clustered at 0. *)
let scramble t rank =
  let h = ref 0x3bf29ce484222325 in
  let x = ref rank in
  for _ = 1 to 8 do
    h := (!h lxor (!x land 0xff)) * 0x100000001b3 land max_int;
    x := !x lsr 8
  done;
  !h mod t.records

let next_key t =
  let u = Rng.float t.rng 1.0 in
  let uz = u *. t.zetan in
  let rank =
    if uz < 1.0 then 0
    else if uz < 1.0 +. (0.5 ** t.theta) then 1
    else
      int_of_float
        (float_of_int t.records *. (((t.eta *. u) -. t.eta +. 1.0) ** t.alpha))
  in
  scramble t (min rank (t.records - 1))

let next_op_a t =
  let key = next_key t in
  if Rng.bool t.rng then Read key else Update key

let next_op_b t =
  let key = next_key t in
  if Rng.int t.rng 100 < 95 then Read key else Update key

let next_op_c t = Read (next_key t)

let next_scan t ?(max_len = 16) () =
  Scan (next_key t, 1 + Rng.int t.rng max_len)

let uniform_key t = Rng.int t.rng t.records

let record_value ~key ~size =
  let pattern = Printf.sprintf "record-%08x:" key in
  let out = Bytes.create size in
  let plen = String.length pattern in
  for i = 0 to size - 1 do
    Bytes.set out i pattern.[i mod plen]
  done;
  out
