(** Redis stand-in: an in-enclave RESP key-value server (Fig. 8d).

    A real RESP2 protocol parser in front of a hash-table store.  Per the
    paper's setup: 50,000 1 KB records loaded, then YCSB-A GET/SET
    operations; each operation costs a network read and a network write
    OCALL (the Occlum-served Redis' socket I/O), which is what separates
    the backends.

    The latency-throughput curve is produced with an M/M/1 open-loop
    model over the measured service time: the bench raises the offered
    request rate and reports mean latency until the server saturates at
    1/S — reproducing the knee ordering native > HU > GU > SGX. *)

open Hyperenclave_tee

val ecall_command : int
val handlers : unit -> (int * Backend.handler) list
val ocalls : unit -> (int * (bytes -> bytes)) list

val encode_command : string list -> bytes
(** RESP array-of-bulk-strings encoding, e.g.
    [encode_command \["SET"; "k"; "v"\]]. *)

val decode_reply : bytes -> (string, string) result

val load : Backend.t -> records:int -> unit
val op : Backend.t -> Ycsb.op -> int
(** One GET/SET through the backend; simulated cycles. *)

val parts_of_op : Ycsb.op -> string list
(** The RESP command for a YCSB operation (scans degrade to a GET of the
    anchor key, like YCSB's Redis binding). *)

val key_name : int -> string
val value_for : int -> string

(** The hash-table store behind the protocol, exposed so the service
    layer can execute parsed commands against a per-tenant instance
    (charging the same per-command and value-touch costs). *)
module Store : sig
  type t

  val create : unit -> t
  val size : t -> int

  val exec : t -> Backend.env -> string list -> string
  (** One command; returns the RESP-encoded reply (["-ERR ..."] for
      protocol-level errors — never an exception). *)
end

val service_time : Backend.t -> records:int -> samples:int -> float
(** Mean cycles per operation under YCSB-A. *)

val latency_curve :
  service_cycles:float ->
  offered_kops:float list ->
  (float * float option) list
(** [(offered load, mean latency in us)] — [None] once saturated. *)

(** {1 Pure RESP parser (unit-testable)} *)

val parse_resp : string -> (string list, string) result

val parse_pipeline : string -> (string list list, string) result
(** The back-to-back commands of a pipelined request, one [string list]
    per command.  Returns the first parse error, if any. *)

val pipeline_depth : int
(** Commands per server wakeup under saturation (used by
    {!service_time}). *)
