open Hyperenclave_hw
open Hyperenclave_tee

let record_bytes = 1024
let stored_bytes = 32 (* actual payload kept in OCaml memory; addresses
                         and charges still span full 1 KB records *)

let ecall_load = 200
let ecall_run = 201

(* --- mini-SQL engine --------------------------------------------------------- *)

module Engine = struct
  type t = { btree : Btree.t; mutable tokens_parsed : int }

  let create () =
    {
      btree = Btree.create ~addr_base:0x1000_0000 ~record_bytes ();
      tokens_parsed = 0;
    }

  let tokenize stmt =
    let buf = Buffer.create 16 in
    let tokens = ref [] in
    let flush () =
      if Buffer.length buf > 0 then begin
        tokens := Buffer.contents buf :: !tokens;
        Buffer.clear buf
      end
    in
    let in_string = ref false in
    String.iter
      (fun c ->
        if !in_string then
          if c = '\'' then begin
            tokens := ("'" ^ Buffer.contents buf) :: !tokens;
            Buffer.clear buf;
            in_string := false
          end
          else Buffer.add_char buf c
        else
          match c with
          | ' ' | '\t' | '\n' | ',' -> flush ()
          | '(' | ')' | '=' -> flush ()
          | '\'' ->
              flush ();
              in_string := true
          | c -> Buffer.add_char buf (Char.lowercase_ascii c))
      stmt;
    flush ();
    List.rev !tokens

  let exec t stmt =
    let tokens = tokenize stmt in
    t.tokens_parsed <- t.tokens_parsed + List.length tokens;
    match tokens with
    | [ "insert"; "into"; "kv"; "values"; key; value ]
      when String.length value > 0 && value.[0] = '\'' -> (
        match int_of_string_opt key with
        | Some key ->
            Btree.insert t.btree ~key
              (Bytes.of_string (String.sub value 1 (String.length value - 1)));
            Result.Ok "ok"
        | None -> Result.Error "bad key")
    | [ "select"; "v"; "from"; "kv"; "where"; "k"; key ] -> (
        match int_of_string_opt key with
        | Some key -> (
            match Btree.find t.btree ~key with
            | Some value -> Result.Ok (Bytes.to_string value)
            | None -> Result.Error "not found")
        | None -> Result.Error "bad key")
    | [ "select"; "v"; "from"; "kv"; "where"; "k"; "between"; lo; "and"; hi ]
      -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when lo <= hi ->
            (* Range scans are bounded like SQLite's LIMIT would: the
               engine never materializes more than 1024 rows. *)
            let count = min (hi - lo + 1) 1024 in
            let rows =
              Btree.scan t.btree ~lo ~count
              |> List.filter (fun (k, _) -> k <= hi)
            in
            Result.Ok (Printf.sprintf "%d rows" (List.length rows))
        | _ -> Result.Error "bad range")
    | [ "update"; "kv"; "set"; "v"; value; "where"; "k"; key ]
      when String.length value > 0 && value.[0] = '\'' -> (
        match int_of_string_opt key with
        | Some key ->
            if
              Btree.update t.btree ~key
                (Bytes.of_string (String.sub value 1 (String.length value - 1)))
            then Result.Ok "ok"
            else Result.Error "not found"
        | None -> Result.Error "bad key")
    | _ -> Result.Error ("parse error: " ^ stmt)

  let btree t = t.btree
end

(* --- enclave workload --------------------------------------------------------- *)

(* SQLite does far more per statement than our mini engine: bytecode
   compilation, VDBE dispatch, pager bookkeeping.  This constant stands in
   for that fixed per-statement CPU work. *)
let sql_fixed_cost = 22_000
let sql_per_token = 90

(* Per-statement allocator/pager scatter: SQLite touches lookaside slots,
   page-cache headers and VDBE registers spread over its heap.  The heap
   is its own region, far smaller than the record store. *)
let heap_scatter_bytes = 16 * 1024 * 1024
let heap_scatter_count = 6

let charge_engine (env : Backend.env) engine =
  let tokens = engine.Engine.tokens_parsed in
  engine.Engine.tokens_parsed <- 0;
  env.Backend.compute (sql_fixed_cost + (tokens * sql_per_token));
  Mem_sim.random_access env.Backend.mem ~base:0x7000_0000
    ~working_set:heap_scatter_bytes ~count:heap_scatter_count ~write:false;
  (* B-tree descent and the record itself are dependent loads. *)
  List.iter
    (fun (addr, len) ->
      Mem_sim.touch_dependent env.Backend.mem ~addr ~len ~write:false)
    (Btree.last_touched (Engine.btree engine))

let value_literal key = Bytes.to_string (Ycsb.record_value ~key ~size:stored_bytes)

let stmt_of_op operation =
  match operation with
  | Ycsb.Read key -> Printf.sprintf "SELECT v FROM kv WHERE k = %d" key
  | Ycsb.Update key ->
      Printf.sprintf "UPDATE kv SET v = '%s' WHERE k = %d" (value_literal key)
        key
  | Ycsb.Scan (key, n) ->
      Printf.sprintf "SELECT v FROM kv WHERE k BETWEEN %d AND %d" key
        (key + n - 1)

let parse_two tag input =
  match String.split_on_char ':' (Bytes.to_string input) with
  | [ t; a; b ] when t = tag -> (int_of_string a, int_of_string b)
  | _ -> invalid_arg ("Kvdb: bad request for " ^ tag)

let handlers () =
  let engine = ref None in
  let get_engine () =
    match !engine with
    | Some e -> e
    | None -> invalid_arg "Kvdb: database not loaded"
  in
  let load_handler (env : Backend.env) input =
    let records, seed = parse_two "load" input in
    let e = Engine.create () in
    engine := Some e;
    let timer = Timer.create env in
    for key = 0 to records - 1 do
      (match
         Engine.exec e
           (Printf.sprintf "INSERT INTO kv VALUES (%d, '%s')" key
              (value_literal key))
       with
      | Result.Ok _ -> ()
      | Result.Error m -> failwith m);
      charge_engine env e;
      Timer.check timer env
    done;
    ignore seed;
    Bytes.of_string (string_of_int (Btree.size (Engine.btree e)))
  in
  let run_handler (env : Backend.env) input =
    let records, ops = parse_two "run" input in
    let e = get_engine () in
    let gen =
      Ycsb.create ~rng:(Rng.create ~seed:(Int64.of_int (records + 7))) ~records ()
    in
    let timer = Timer.create env in
    let errors = ref 0 in
    for _ = 1 to ops do
      let stmt = stmt_of_op (Ycsb.next_op_a gen) in
      (match Engine.exec e stmt with
      | Result.Ok _ -> ()
      | Result.Error _ -> incr errors);
      charge_engine env e;
      Timer.check timer env
    done;
    if !errors > 0 then failwith (Printf.sprintf "Kvdb: %d failed ops" !errors);
    Bytes.of_string (string_of_int ops)
  in
  [ (ecall_load, load_handler); (ecall_run, run_handler) ]

let call_int (backend : Backend.t) ~id ~request =
  let _, cycles =
    Cycles.time backend.Backend.clock (fun () ->
        backend.Backend.call ~id ~data:(Bytes.of_string request)
          ~direction:Hyperenclave_sdk.Edge.In ())
  in
  cycles

let load backend ~records =
  call_int backend ~id:ecall_load ~request:(Printf.sprintf "load:%d:1" records)

let run_ops backend ~records ~ops =
  call_int backend ~id:ecall_run ~request:(Printf.sprintf "run:%d:%d" records ops)

let throughput_kops ~cycles ~ops =
  float_of_int ops /. (float_of_int cycles /. 2.2e9) /. 1000.0
