(** SQLite stand-in: an in-memory SQL-ish database running entirely inside
    the enclave (Fig. 8b).

    Matches the paper's methodology: the database is in-memory, the YCSB
    client is embedded in the enclave ("to avoid I/O operations"), records
    are 1 KB, workload A (50/50 read/update).  Per operation the engine
    parses a small SQL statement (really parsed, cycles charged per
    token), walks the B-tree (memory charges per touched node/record) and
    moves the record.  The EPC cliff appears on the SGX backend when
    records * 1 KB outgrows 93 MB. *)

open Hyperenclave_tee

val record_bytes : int
(** 1024, as in YCSB. *)

val ecall_load : int
val ecall_run : int

val handlers : unit -> (int * Backend.handler) list
(** Fresh database state per call — build one handler set per backend. *)

val load : Backend.t -> records:int -> int
(** Insert [records] 1 KB rows; returns simulated cycles. *)

val run_ops : Backend.t -> records:int -> ops:int -> int
(** Run [ops] YCSB-A operations against the loaded table; cycles.
    [records] must match the loaded count (keys are drawn from it). *)

val throughput_kops : cycles:int -> ops:int -> float
(** kilo-operations per simulated second at 2.2 GHz. *)

(** {1 Direct (in-process) engine access for unit tests} *)

module Engine : sig
  type t

  val create : unit -> t
  val exec : t -> string -> (string, string) result
  (** Mini-SQL: [INSERT INTO kv VALUES (k, 'v')], [SELECT v FROM kv WHERE
      k = n], [UPDATE kv SET v = 'x' WHERE k = n], [SELECT v FROM kv
      WHERE k BETWEEN a AND b] (range scan, capped at 1024 rows, returns
      ["N rows"]).  Returns the value for SELECT, ["ok"] otherwise. *)

  val btree : t -> Btree.t
end

val charge_engine : Backend.env -> Engine.t -> unit
(** Charge the fixed per-statement cost, heap scatter and the memory
    touches of whatever the engine just executed — the cost model the
    in-enclave handlers use, exposed for the service layer. *)

val stmt_of_op : Ycsb.op -> string
(** The SQL statement for a YCSB operation (scans become BETWEEN). *)

val value_literal : int -> string
