(* CLRS-style B-tree with preemptive splitting; minimum degree td =
   order/2, so nodes hold between td-1 and 2*td-1 keys (root excepted). *)

type node = {
  addr : int;
  mutable keys : int array;
  mutable children : node array; (* [||] for leaves *)
}

type t = {
  td : int;
  record_bytes : int;
  node_bytes : int;
  mutable root : node;
  values : (int, bytes) Hashtbl.t;
  value_addr : (int, int) Hashtbl.t;
  mutable next_addr : int;
  mutable count : int;
  mutable touched : (int * int) list;
}

let is_leaf node = Array.length node.children = 0

let create ?(order = 32) ~addr_base ~record_bytes () =
  if order < 4 || order mod 2 <> 0 then invalid_arg "Btree.create: bad order";
  let td = order / 2 in
  let node_bytes = order * 16 in
  let t =
    {
      td;
      record_bytes;
      node_bytes;
      root = { addr = addr_base; keys = [||]; children = [||] };
      values = Hashtbl.create 1024;
      value_addr = Hashtbl.create 1024;
      next_addr = addr_base + node_bytes;
      count = 0;
      touched = [];
    }
  in
  t

let alloc t bytes =
  let addr = t.next_addr in
  t.next_addr <- t.next_addr + ((bytes + 63) land lnot 63);
  addr

let touch t node = t.touched <- (node.addr, t.node_bytes) :: t.touched

let touch_value t key =
  match Hashtbl.find_opt t.value_addr key with
  | Some addr -> t.touched <- (addr, t.record_bytes) :: t.touched
  | None -> ()

(* Split the full child [child] of [parent] at child index [i]. *)
let split_child t parent i =
  let child = parent.children.(i) in
  let td = t.td in
  let median = child.keys.(td - 1) in
  let right =
    {
      addr = alloc t t.node_bytes;
      keys = Array.sub child.keys td (td - 1);
      children =
        (if is_leaf child then [||] else Array.sub child.children td td);
    }
  in
  child.keys <- Array.sub child.keys 0 (td - 1);
  if not (is_leaf child) then child.children <- Array.sub child.children 0 td;
  let n = Array.length parent.keys in
  let keys = Array.make (n + 1) 0 in
  Array.blit parent.keys 0 keys 0 i;
  keys.(i) <- median;
  Array.blit parent.keys i keys (i + 1) (n - i);
  let children = Array.make (n + 2) child in
  Array.blit parent.children 0 children 0 (i + 1);
  children.(i + 1) <- right;
  Array.blit parent.children (i + 1) children (i + 2) (n - i);
  parent.keys <- keys;
  parent.children <- children

let find_slot keys key =
  (* First index with keys.(i) >= key. *)
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if keys.(mid) < key then lo := mid + 1 else hi := mid
  done;
  !lo

let rec insert_nonfull t node key =
  touch t node;
  let i = find_slot node.keys key in
  if i < Array.length node.keys && node.keys.(i) = key then ()
    (* key already present: value hashtable gets the fresh bytes below *)
  else if is_leaf node then begin
    let n = Array.length node.keys in
    let keys = Array.make (n + 1) 0 in
    Array.blit node.keys 0 keys 0 i;
    keys.(i) <- key;
    Array.blit node.keys i keys (i + 1) (n - i);
    node.keys <- keys
  end
  else begin
    let continue_at = ref (Some i) in
    if Array.length node.children.(i).keys = (2 * t.td) - 1 then begin
      split_child t node i;
      (* The promoted median may be exactly the key being inserted (a
         duplicate): it now lives in this node, so there is nothing left
         to do below. *)
      if key = node.keys.(i) then continue_at := None
      else if key > node.keys.(i) then continue_at := Some (i + 1)
    end;
    match !continue_at with
    | None -> ()
    | Some i -> insert_nonfull t node.children.(i) key
  end

let insert t ~key value =
  t.touched <- [];
  if not (Hashtbl.mem t.values key) then begin
    t.count <- t.count + 1;
    Hashtbl.replace t.value_addr key (alloc t t.record_bytes)
  end;
  Hashtbl.replace t.values key value;
  if Array.length t.root.keys = (2 * t.td) - 1 then begin
    let old_root = t.root in
    let new_root =
      { addr = alloc t t.node_bytes; keys = [||]; children = [| old_root |] }
    in
    t.root <- new_root;
    split_child t new_root 0
  end;
  insert_nonfull t t.root key;
  touch_value t key

let rec find_node t node key =
  touch t node;
  let i = find_slot node.keys key in
  if i < Array.length node.keys && node.keys.(i) = key then true
  else if is_leaf node then false
  else find_node t node.children.(i) key

let find t ~key =
  t.touched <- [];
  if find_node t t.root key then begin
    touch_value t key;
    Hashtbl.find_opt t.values key
  end
  else None

let update t ~key value =
  t.touched <- [];
  if find_node t t.root key then begin
    touch_value t key;
    Hashtbl.replace t.values key value;
    true
  end
  else false

(* In-order walk from the first key >= lo, collecting up to [count]
   records; every node on the visited frontier is touched so the memory
   simulator sees the leaf-heavy access pattern of a range scan. *)
let scan t ~lo ~count =
  t.touched <- [];
  let out = ref [] and n = ref 0 in
  let collect key =
    if key >= lo && !n < count then begin
      touch_value t key;
      match Hashtbl.find_opt t.values key with
      | Some v ->
          out := (key, v) :: !out;
          incr n
      | None -> ()
    end
  in
  let rec go node =
    if !n < count then begin
      touch t node;
      let i0 = find_slot node.keys lo in
      if is_leaf node then
        for i = i0 to Array.length node.keys - 1 do
          collect node.keys.(i)
        done
      else begin
        (* Child i0 may still hold keys >= lo (they sit below the first
           separator >= lo), so descend there first, then alternate
           key/child rightwards. *)
        go node.children.(i0);
        let i = ref i0 in
        while !n < count && !i < Array.length node.keys do
          collect node.keys.(!i);
          incr i;
          if !n < count then go node.children.(!i)
        done
      end
    end
  in
  go t.root;
  List.rev !out

let size t = t.count

let depth t =
  let rec go node acc = if is_leaf node then acc else go node.children.(0) (acc + 1) in
  go t.root 1

let working_set_bytes t = t.next_addr - t.root.addr

let last_touched t = List.rev t.touched

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let leaf_depth = ref (-1) in
  let rec go node depth ~is_root lo hi =
    let n = Array.length node.keys in
    if (not is_root) && n < t.td - 1 then fail "node underfull (%d keys)" n;
    if n > (2 * t.td) - 1 then fail "node overfull (%d keys)" n;
    for i = 0 to n - 2 do
      if node.keys.(i) >= node.keys.(i + 1) then fail "keys out of order"
    done;
    (match (lo, node.keys) with
    | Some lo, [||] -> ignore lo
    | Some lo, keys -> if keys.(0) <= lo then fail "key below separator"
    | None, _ -> ());
    (match (hi, node.keys) with
    | Some hi, keys when n > 0 -> if keys.(n - 1) >= hi then fail "key above separator"
    | Some _, _ | None, _ -> ());
    if is_leaf node then begin
      if !leaf_depth = -1 then leaf_depth := depth
      else if !leaf_depth <> depth then fail "unbalanced leaves"
    end
    else begin
      if Array.length node.children <> n + 1 then fail "child count mismatch";
      Array.iteri
        (fun i child ->
          let lo = if i = 0 then lo else Some node.keys.(i - 1) in
          let hi = if i = n then hi else Some node.keys.(i) in
          go child (depth + 1) ~is_root:false lo hi)
        node.children
    end
  in
  go t.root 0 ~is_root:true None None
