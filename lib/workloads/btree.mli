(** In-memory B-tree with synthetic node addresses.

    The storage engine under the SQLite stand-in ({!Kvdb}).  Every node
    carries the address it would occupy in enclave memory so lookups can
    charge the memory-system simulator for exactly the nodes and record
    bytes they touch — the locality of the hot upper levels (which stay in
    the LLC / EPC) versus cold leaves is what shapes Fig. 8b. *)

type t

val create : ?order:int -> addr_base:int -> record_bytes:int -> unit -> t
(** [order] is the max children per node (default 32). *)

val insert : t -> key:int -> bytes -> unit
val find : t -> key:int -> bytes option

val update : t -> key:int -> bytes -> bool
(** [false] if the key is absent. *)

val scan : t -> lo:int -> count:int -> (int * bytes) list
(** Up to [count] records with key >= [lo], ascending.  Like {!find},
    records every node and value region visited for {!last_touched}. *)

val size : t -> int
val depth : t -> int

val working_set_bytes : t -> int
(** Records plus node storage — the quantity compared against the EPC. *)

val last_touched : t -> (int * int) list
(** (address, length) of every region the most recent operation touched,
    root first; the caller feeds these to the memory simulator. *)

val check_invariants : t -> unit
(** Sorted keys, balanced leaf depth, branching bounds.  @raise Failure. *)
