(** YCSB workload generator (Cooper et al., SoCC'10) — the load used for
    the SQLite and Redis evaluations (Fig. 8b, 8d).

    Workload A: 50% reads, 50% updates; B: 95% reads, 5% updates;
    C: reads only — keys drawn from a zipfian distribution over the
    loaded records.  {!next_scan} produces the short range scans of the
    scan-heavy workloads. *)

type op =
  | Read of int  (** key *)
  | Update of int  (** key *)
  | Scan of int * int  (** start key, record count *)

type t

val create :
  rng:Hyperenclave_hw.Rng.t -> records:int -> ?zipf_theta:float -> unit -> t
(** Default theta 0.99 (the YCSB standard constant). *)

val next_key : t -> int
(** Zipfian-distributed key in [\[0, records)], hottest keys first. *)

val next_op_a : t -> op
(** Workload A mix (50/50 read/update). *)

val next_op_b : t -> op
(** Workload B mix (95/5 read/update). *)

val next_op_c : t -> op
(** Workload C mix (read-only). *)

val next_scan : t -> ?max_len:int -> unit -> op
(** A zipfian-anchored range scan of 1..[max_len] records (default 16). *)

val uniform_key : t -> int

val record_value : key:int -> size:int -> bytes
(** Deterministic record payload for a key. *)
