open Hyperenclave_tee

let ecall_request = 300
let ocall_write = 301
let chunk_bytes = 16 * 1024

type request = { meth : string; path : string; headers : (string * string) list }

let parse_request raw =
  match String.split_on_char '\n' raw with
  | [] -> Result.Error "empty request"
  | request_line :: rest -> (
      let request_line = String.trim request_line in
      match String.split_on_char ' ' request_line with
      | [ meth; path; version ] ->
          if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
            Result.Error ("bad version " ^ version)
          else if String.length path = 0 || path.[0] <> '/' then
            Result.Error "bad path"
          else begin
            let headers =
              List.filter_map
                (fun line ->
                  let line = String.trim line in
                  match String.index_opt line ':' with
                  | Some i ->
                      Some
                        ( String.lowercase_ascii (String.sub line 0 i),
                          String.trim
                            (String.sub line (i + 1) (String.length line - i - 1))
                        )
                  | None -> None)
                rest
            in
            Result.Ok { meth; path; headers }
          end
      | _ -> Result.Error "malformed request line")

(* Fixed per-request server work besides parsing: fd/connection state,
   mtime lookup, response-header assembly, access logging. *)
let per_request_cost = 30_000
let per_parse_char = 12
let body_per_byte_num = 1
let body_per_byte_den = 4 (* content assembly + checksumming *)

(* Loopback send cost per write() (LMBench AF_UNIX scale, Table 3) —
   charged right after each write OCALL so every backend, enclave or
   native, pays the same network-stack price. *)
let per_chunk_net = 12_600
let body_cost size = size * body_per_byte_num / body_per_byte_den

let ocalls () =
  [
    ( ocall_write,
      fun chunk ->
        Bytes.of_string (string_of_int (Bytes.length chunk)) );
  ]

let handlers ~pages =
  let docroot = Hashtbl.create 16 in
  List.iter (fun (path, size) -> Hashtbl.replace docroot path size) pages;
  let handle (env : Backend.env) input =
    match parse_request (Bytes.to_string input) with
    | Result.Error e -> Bytes.of_string ("HTTP/1.1 400 " ^ e)
    | Result.Ok { meth; path; headers = _ } -> (
        env.Backend.compute
          (per_request_cost + (per_parse_char * Bytes.length input));
        if meth <> "GET" then Bytes.of_string "HTTP/1.1 405 method not allowed"
        else
          match Hashtbl.find_opt docroot path with
          | None -> Bytes.of_string "HTTP/1.1 404 not found"
          | Some size ->
              (* Build and stream the body in write() chunks. *)
              env.Backend.compute (body_cost size);
              Mem_sim.seq_scan env.Backend.mem ~base:0x5000_0000 ~bytes:size
                ~write:false;
              let sent = ref 0 in
              while !sent < size do
                let chunk = min chunk_bytes (size - !sent) in
                let payload = Bytes.make chunk 'x' in
                let reply = env.Backend.ocall ~id:ocall_write ~data:payload () in
                env.Backend.compute per_chunk_net;
                (match int_of_string_opt (Bytes.to_string reply) with
                | Some n when n = chunk -> ()
                | Some _ | None -> failwith "Httpd: short write");
                sent := !sent + chunk
              done;
              Bytes.of_string (Printf.sprintf "HTTP/1.1 200 OK bytes=%d" size))
  in
  [ (ecall_request, handle) ]

let request_for ~path =
  Bytes.of_string
    (Printf.sprintf
       "GET %s HTTP/1.1\nhost: bench.local\nuser-agent: ab/2.4\nconnection: keep-alive\n"
       path)

let serve (backend : Backend.t) ~path =
  let reply, cycles =
    Hyperenclave_hw.Cycles.time backend.Backend.clock (fun () ->
        backend.Backend.call ~id:ecall_request ~data:(request_for ~path)
          ~direction:Hyperenclave_sdk.Edge.In_out ())
  in
  let reply = Bytes.to_string reply in
  if String.length reply < 12 || String.sub reply 9 3 <> "200" then
    failwith ("Httpd: bad response: " ^ reply);
  cycles

let throughput_rps ~cycles_per_request = 2.2e9 /. cycles_per_request
