type private_key = bytes
type public_key = bytes

(* pk -> sk.  Verification-side stand-in for the public-key mathematics;
   see the interface comment. *)
let registry : (string, bytes) Hashtbl.t = Hashtbl.create 16

let derive_public sk =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "hyperenclave-sim-pk:";
  Sha256.update ctx sk;
  Sha256.finalize ctx

let register sk =
  let pk = derive_public sk in
  Hashtbl.replace registry (Bytes.to_string pk) sk;
  pk

let generate rng =
  let sk = Hyperenclave_hw.Rng.bytes rng 32 in
  let pk = register sk in
  (sk, pk)

let public_of_private = derive_public
let equal_public = Bytes.equal
let sign sk msg = Hmac.hmac ~key:sk msg

let verify pk msg ~signature =
  match Hashtbl.find_opt registry (Bytes.to_string pk) with
  | None -> false
  | Some sk -> Hmac.verify ~key:sk msg ~tag:signature

let export_private sk = Bytes.copy sk

let import_private raw =
  let sk = Bytes.copy raw in
  ignore (register sk);
  sk
