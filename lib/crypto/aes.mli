(** AES-128 block cipher (FIPS 197) with CTR and XTS-style modes.

    CTR backs the sealing/confidentiality paths; the XTS mode mirrors what
    AMD SME applies at the memory controller (tweaked per-block encryption
    keyed by the physical address), used by the memory-encryption model's
    functional tests. *)

type key

val expand_key : bytes -> key
(** [expand_key k] expands a 16-byte key. @raise Invalid_argument. *)

val encrypt_block : key -> bytes -> bytes
(** One 16-byte block. *)

val decrypt_block : key -> bytes -> bytes

val ctr_transform : key:bytes -> nonce:bytes -> bytes -> bytes
(** CTR keystream XOR: encryption and decryption are the same operation.
    [nonce] is up to 12 bytes. *)

val ctr_into :
  key:key ->
  nonce:bytes ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  len:int ->
  unit
(** Zero-copy CTR: XOR the keystream over [src[src_off, src_off+len)]
    into [dst[dst_off, ...)].  [src] and [dst] may alias (including the
    same buffer at the same offset for a true in-place transform), and
    the key schedule is caller-provided so batched callers expand it
    once.  Byte-identical to {!ctr_transform} on the same key material.
    @raise Invalid_argument on out-of-bounds slices or a nonce longer
    than 12 bytes. *)

val xts_encrypt : key:bytes -> tweak:int -> bytes -> bytes
(** Encrypt a buffer whose length is a multiple of 16, tweaked by the
    (physical-address-derived) integer tweak. *)

val xts_decrypt : key:bytes -> tweak:int -> bytes -> bytes
