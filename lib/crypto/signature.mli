(** Simulated asymmetric signatures.

    The real system signs with TPM AIK (RSA/ECDSA) and a monitor-held
    attestation key.  Implementing production public-key crypto is outside
    the scope of this reproduction (documented substitution, DESIGN.md
    Sec. 2); what the attestation chain needs is the {e logic}: only the
    holder of a private key can produce a signature that verifies under the
    matching public key, and verification fails for any other message or
    key.

    The simulation: a keypair is [(sk, pk)] with [pk = H("pk" || sk)];
    signing is HMAC under [sk]; verification consults a process-global
    registry mapping [pk -> sk].  Code holding only [pk] cannot forge
    (it would need [sk] to compute the MAC); the registry stands in for
    the mathematics that links the halves. *)

type private_key
type public_key = bytes
(** 32 bytes, stable across runs for a fixed generation seed. *)

val generate : Hyperenclave_hw.Rng.t -> private_key * public_key
(** Fresh keypair, registered for verification. *)

val public_of_private : private_key -> public_key

val equal_public : public_key -> public_key -> bool
(** Structural equality on public keys — what a relying party uses to
    pin a specific monitor's hapk as its trust anchor. *)

val sign : private_key -> bytes -> bytes
(** 32-byte signature. *)

val verify : public_key -> bytes -> signature:bytes -> bool
(** [verify pk msg ~signature] — true iff [signature] was produced by the
    private half of [pk] over exactly [msg]. *)

val export_private : private_key -> bytes
(** Raw private key material — used by the monitor when deriving its
    attestation key deterministically from [K_root]. *)

val import_private : bytes -> private_key
(** Re-admit key material (re-registers the pair). *)
