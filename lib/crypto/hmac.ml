let block_size = 64

let normalize_key key =
  let key = if Bytes.length key > block_size then Sha256.digest_bytes key else key in
  let out = Bytes.make block_size '\000' in
  Bytes.blit key 0 out 0 (Bytes.length key);
  out

let xor_pad_in_place pad byte =
  for i = 0 to block_size - 1 do
    Bytes.unsafe_set pad i
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get pad i) lxor byte))
  done

let hmac ~key msg =
  (* [normalize_key] already copies, so the pad mutates that copy:
     XOR 0x36 makes the inner pad, and re-XORing with 0x36 lxor 0x5c
     turns it into the outer pad without a second buffer. *)
  let pad = normalize_key key in
  xor_pad_in_place pad 0x36;
  let inner = Sha256.init () in
  Sha256.update inner pad;
  Sha256.update inner msg;
  let inner_digest = Sha256.finalize inner in
  xor_pad_in_place pad (0x36 lxor 0x5c);
  let outer = Sha256.init () in
  Sha256.update outer pad;
  Sha256.update outer inner_digest;
  Sha256.finalize outer

(* HMAC over a concatenation of slices, none of which are copied: the
   zero-copy AEAD path MACs length-prefix headers and ring-resident
   ciphertext without assembling the message in a scratch buffer. *)
let hmac_slices ~key slices =
  let pad = normalize_key key in
  xor_pad_in_place pad 0x36;
  let inner = Sha256.init () in
  Sha256.update inner pad;
  List.iter (fun (b, off, len) -> Sha256.update_sub inner b ~off ~len) slices;
  let inner_digest = Sha256.finalize inner in
  xor_pad_in_place pad (0x36 lxor 0x5c);
  let outer = Sha256.init () in
  Sha256.update outer pad;
  Sha256.update outer inner_digest;
  Sha256.finalize outer

(* [hmac] never mutates [msg], so borrow the string's bytes. *)
let hmac_string ~key msg = hmac ~key (Bytes.unsafe_of_string msg)
let verify ~key msg ~tag = Sha256.equal (hmac ~key msg) tag

let hkdf_extract ?salt ~ikm () =
  let salt = match salt with Some s -> s | None -> Bytes.make 32 '\000' in
  hmac ~key:salt ikm

let hkdf_expand ~prk ~info ~len =
  if len > 255 * 32 then invalid_arg "Hmac.hkdf_expand: len too large";
  let out = Buffer.create len in
  let prev = ref Bytes.empty in
  let counter = ref 1 in
  while Buffer.length out < len do
    let block = Buffer.create (Bytes.length !prev + String.length info + 1) in
    Buffer.add_bytes block !prev;
    Buffer.add_string block info;
    Buffer.add_char block (Char.chr !counter);
    prev := hmac ~key:prk (Buffer.to_bytes block);
    Buffer.add_bytes out !prev;
    incr counter
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len

let derive ~key ~info =
  hkdf_expand ~prk:(hkdf_extract ~ikm:key ()) ~info ~len:32
