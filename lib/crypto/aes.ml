(* AES-128, byte-oriented reference implementation (FIPS 197). *)

let sbox =
  [|
    0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b;
    0xfe; 0xd7; 0xab; 0x76; 0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0;
    0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0; 0xb7; 0xfd; 0x93; 0x26;
    0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
    0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2;
    0xeb; 0x27; 0xb2; 0x75; 0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0;
    0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84; 0x53; 0xd1; 0x00; 0xed;
    0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
    0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f;
    0x50; 0x3c; 0x9f; 0xa8; 0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5;
    0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2; 0xcd; 0x0c; 0x13; 0xec;
    0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
    0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14;
    0xde; 0x5e; 0x0b; 0xdb; 0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c;
    0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79; 0xe7; 0xc8; 0x37; 0x6d;
    0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
    0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f;
    0x4b; 0xbd; 0x8b; 0x8a; 0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e;
    0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e; 0xe1; 0xf8; 0x98; 0x11;
    0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
    0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f;
    0xb0; 0x54; 0xbb; 0x16;
  |]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

let xtime b =
  let b = b lsl 1 in
  if b land 0x100 <> 0 then (b lxor 0x1b) land 0xff else b

type key = {
  rounds : int array array; (* 11 round keys of 16 bytes (decrypt path) *)
  w : int array; (* the same schedule as 44 big-endian words (encrypt path) *)
}

let expand_key raw =
  if Bytes.length raw <> 16 then invalid_arg "Aes.expand_key: need 16 bytes";
  let w = Array.make 44 0 in
  for i = 0 to 3 do
    w.(i) <-
      (Char.code (Bytes.get raw (4 * i)) lsl 24)
      lor (Char.code (Bytes.get raw ((4 * i) + 1)) lsl 16)
      lor (Char.code (Bytes.get raw ((4 * i) + 2)) lsl 8)
      lor Char.code (Bytes.get raw ((4 * i) + 3))
  done;
  let rcon = ref 1 in
  for i = 4 to 43 do
    let temp = ref w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon *)
      let rotated = ((!temp lsl 8) lor (!temp lsr 24)) land 0xffffffff in
      let subbed =
        (sbox.((rotated lsr 24) land 0xff) lsl 24)
        lor (sbox.((rotated lsr 16) land 0xff) lsl 16)
        lor (sbox.((rotated lsr 8) land 0xff) lsl 8)
        lor sbox.(rotated land 0xff)
      in
      temp := subbed lxor (!rcon lsl 24);
      rcon := xtime !rcon
    end;
    w.(i) <- w.(i - 4) lxor !temp
  done;
  let rounds =
    Array.init 11 (fun r ->
        Array.init 16 (fun b ->
            let word = w.((4 * r) + (b / 4)) in
            (word lsr (8 * (3 - (b mod 4)))) land 0xff))
  in
  { rounds; w }

let add_round_key state rk =
  for i = 0 to 15 do
    Array.unsafe_set state i
      (Array.unsafe_get state i lxor Array.unsafe_get rk i)
  done

let sub_bytes state table =
  for i = 0 to 15 do
    Array.unsafe_set state i (Array.unsafe_get table (Array.unsafe_get state i))
  done

(* State layout: state.(4*c + r) is row r, column c (column-major bytes,
   matching the order bytes enter the cipher). *)
let inv_shift_rows state =
  let t = state.(13) in
  state.(13) <- state.(9);
  state.(9) <- state.(5);
  state.(5) <- state.(1);
  state.(1) <- t;
  let t = state.(2) in
  state.(2) <- state.(10);
  state.(10) <- t;
  let t = state.(6) in
  state.(6) <- state.(14);
  state.(14) <- t;
  let t = state.(3) in
  state.(3) <- state.(7);
  state.(7) <- state.(11);
  state.(11) <- state.(15);
  state.(15) <- t

(* GF(2^8) multiplies by the inverse MixColumns constants, as xtime
   chains instead of the generic shift-and-add loop. *)
let inv_mix_columns state =
  for c = 0 to 3 do
    let a0 = state.(4 * c)
    and a1 = state.((4 * c) + 1)
    and a2 = state.((4 * c) + 2)
    and a3 = state.((4 * c) + 3) in
    (* x9 = 8a^a, x11 = 8a^2a^a, x13 = 8a^4a^a, x14 = 8a^4a^2a. *)
    let d0 = xtime a0 and d1 = xtime a1 and d2 = xtime a2 and d3 = xtime a3 in
    let q0 = xtime d0 and q1 = xtime d1 and q2 = xtime d2 and q3 = xtime d3 in
    let o0 = xtime q0 and o1 = xtime q1 and o2 = xtime q2 and o3 = xtime q3 in
    state.(4 * c) <-
      o0 lxor q0 lxor d0
      lxor (o1 lxor d1 lxor a1)
      lxor (o2 lxor q2 lxor a2)
      lxor (o3 lxor a3);
    state.((4 * c) + 1) <-
      o0 lxor a0
      lxor (o1 lxor q1 lxor d1)
      lxor (o2 lxor d2 lxor a2)
      lxor (o3 lxor q3 lxor a3);
    state.((4 * c) + 2) <-
      o0 lxor q0 lxor a0
      lxor (o1 lxor a1)
      lxor (o2 lxor q2 lxor d2)
      lxor (o3 lxor d3 lxor a3);
    state.((4 * c) + 3) <-
      o0 lxor d0 lxor a0
      lxor (o1 lxor q1 lxor a1)
      lxor (o2 lxor a2)
      lxor (o3 lxor q3 lxor d3)
  done

let load_state state b off =
  for i = 0 to 15 do
    state.(i) <- Char.code (Bytes.get b (off + i))
  done

let state_of_bytes b off = Array.init 16 (fun i -> Char.code (Bytes.get b (off + i)))

let bytes_of_state state =
  let out = Bytes.create 16 in
  Array.iteri (fun i v -> Bytes.set out i (Char.chr v)) state;
  out

(* Encryption T-tables: te0.(x) packs S[x] times the MixColumns column
   (02,01,01,03) into one big-endian word, and te1..te3 are its byte
   rotations, so SubBytes + ShiftRows + MixColumns for an output column
   collapse to four lookups and three XORs.  This is the hot path: CTR
   runs [encrypt_state] 256 times per 4 KiB page. *)
let te0 =
  Array.init 256 (fun a ->
      let s = sbox.(a) in
      let s2 = xtime s in
      (s2 lsl 24) lor (s lsl 16) lor (s lsl 8) lor (s lxor s2))

let ror8 w = ((w lsr 8) lor (w lsl 24)) land 0xffffffff
let te1 = Array.map ror8 te0
let te2 = Array.map ror8 te1
let te3 = Array.map ror8 te2

let encrypt_state key state =
  let kw = key.w in
  let col c =
    (Array.unsafe_get state (4 * c) lsl 24)
    lor (Array.unsafe_get state ((4 * c) + 1) lsl 16)
    lor (Array.unsafe_get state ((4 * c) + 2) lsl 8)
    lor Array.unsafe_get state ((4 * c) + 3)
  in
  let s0 = ref (col 0 lxor kw.(0))
  and s1 = ref (col 1 lxor kw.(1))
  and s2 = ref (col 2 lxor kw.(2))
  and s3 = ref (col 3 lxor kw.(3)) in
  (* Output column j reads rows 0..3 from input columns j, j+1, j+2, j+3
     (mod 4) — that byte walk IS ShiftRows. *)
  let round_col a b c d k =
    Array.unsafe_get te0 ((a lsr 24) land 0xff)
    lxor Array.unsafe_get te1 ((b lsr 16) land 0xff)
    lxor Array.unsafe_get te2 ((c lsr 8) land 0xff)
    lxor Array.unsafe_get te3 (d land 0xff)
    lxor k
  in
  for round = 1 to 9 do
    let k = 4 * round in
    let t0 = round_col !s0 !s1 !s2 !s3 (Array.unsafe_get kw k)
    and t1 = round_col !s1 !s2 !s3 !s0 (Array.unsafe_get kw (k + 1))
    and t2 = round_col !s2 !s3 !s0 !s1 (Array.unsafe_get kw (k + 2))
    and t3 = round_col !s3 !s0 !s1 !s2 (Array.unsafe_get kw (k + 3)) in
    s0 := t0;
    s1 := t1;
    s2 := t2;
    s3 := t3
  done;
  (* Final round: SubBytes + ShiftRows only, straight from the S-box. *)
  let last_col a b c d k =
    (Array.unsafe_get sbox ((a lsr 24) land 0xff) lsl 24)
    lor (Array.unsafe_get sbox ((b lsr 16) land 0xff) lsl 16)
    lor (Array.unsafe_get sbox ((c lsr 8) land 0xff) lsl 8)
    lor Array.unsafe_get sbox (d land 0xff)
    lxor k
  in
  let put c w =
    state.(4 * c) <- (w lsr 24) land 0xff;
    state.((4 * c) + 1) <- (w lsr 16) land 0xff;
    state.((4 * c) + 2) <- (w lsr 8) land 0xff;
    state.((4 * c) + 3) <- w land 0xff
  in
  put 0 (last_col !s0 !s1 !s2 !s3 kw.(40));
  put 1 (last_col !s1 !s2 !s3 !s0 kw.(41));
  put 2 (last_col !s2 !s3 !s0 !s1 kw.(42));
  put 3 (last_col !s3 !s0 !s1 !s2 kw.(43))

let decrypt_state key state =
  let key = key.rounds in
  add_round_key state key.(10);
  inv_shift_rows state;
  sub_bytes state inv_sbox;
  for round = 9 downto 1 do
    add_round_key state key.(round);
    inv_mix_columns state;
    inv_shift_rows state;
    sub_bytes state inv_sbox
  done;
  add_round_key state key.(0)

let encrypt_block key block =
  if Bytes.length block <> 16 then invalid_arg "Aes.encrypt_block";
  let state = state_of_bytes block 0 in
  encrypt_state key state;
  bytes_of_state state

let decrypt_block key block =
  if Bytes.length block <> 16 then invalid_arg "Aes.decrypt_block";
  let state = state_of_bytes block 0 in
  decrypt_state key state;
  bytes_of_state state

let ctr_transform ~key ~nonce data =
  if Bytes.length nonce > 12 then invalid_arg "Aes.ctr_transform: nonce > 12";
  let key = expand_key key in
  let len = Bytes.length data in
  let out = Bytes.create len in
  let counter_block = Bytes.make 16 '\000' in
  Bytes.blit nonce 0 counter_block 0 (Bytes.length nonce);
  (* One state array reused for every block: the keystream is XORed out
     of it directly, so the per-block temporaries of the reference code
     ([state_of_bytes] + a keystream buffer) are gone. *)
  let state = Array.make 16 0 in
  let nblocks = (len + 15) / 16 in
  for blk = 0 to nblocks - 1 do
    Bytes.set_int32_be counter_block 12 (Int32.of_int blk);
    load_state state counter_block 0;
    encrypt_state key state;
    let base = blk * 16 in
    let chunk = min 16 (len - base) in
    for i = 0 to chunk - 1 do
      Bytes.unsafe_set out (base + i)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get data (base + i))
           lxor Array.unsafe_get state i))
    done
  done;
  out

(* CTR over a caller-provided slice, with a caller-expanded key schedule:
   the zero-copy path runs the keystream XOR straight over [src] into
   [dst] (the two may alias, or even be the same buffer at the same
   offset for a true in-place transform), so neither a fresh output
   buffer nor a per-call key expansion is paid.  Byte-identical to
   [ctr_transform] on the same key/nonce/data. *)
let ctr_into ~key ~nonce ~src ~src_off ~dst ~dst_off ~len =
  if Bytes.length nonce > 12 then invalid_arg "Aes.ctr_into: nonce > 12";
  if len < 0 || src_off < 0 || src_off + len > Bytes.length src then
    invalid_arg "Aes.ctr_into: source slice out of bounds";
  if dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Aes.ctr_into: destination slice out of bounds";
  let counter_block = Bytes.make 16 '\000' in
  Bytes.blit nonce 0 counter_block 0 (Bytes.length nonce);
  let state = Array.make 16 0 in
  let nblocks = (len + 15) / 16 in
  for blk = 0 to nblocks - 1 do
    Bytes.set_int32_be counter_block 12 (Int32.of_int blk);
    load_state state counter_block 0;
    encrypt_state key state;
    let base = blk * 16 in
    let chunk = min 16 (len - base) in
    for i = 0 to chunk - 1 do
      Bytes.unsafe_set dst (dst_off + base + i)
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get src (src_off + base + i))
           lxor Array.unsafe_get state i))
    done
  done

(* XTS-style: tweak = E(addr-block) XORed around the block cipher, with a
   GF doubling between consecutive blocks. *)
let tweak_block key tweak =
  let t = Bytes.make 16 '\000' in
  Bytes.set_int64_le t 0 (Int64.of_int tweak);
  encrypt_block key t

let gf_double_in_place block =
  let carry = ref 0 in
  for i = 0 to 15 do
    let v = (Char.code (Bytes.unsafe_get block i) lsl 1) lor !carry in
    Bytes.unsafe_set block i (Char.unsafe_chr (v land 0xff));
    carry := v lsr 8
  done;
  if !carry <> 0 then
    Bytes.unsafe_set block 0
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get block 0) lxor 0x87))

let xts_run ~key ~tweak ~decrypt data =
  if Bytes.length data mod 16 <> 0 then invalid_arg "Aes.xts: length % 16 <> 0";
  let key = expand_key key in
  let out = Bytes.create (Bytes.length data) in
  (* The tweak doubles in place and the whitening XORs happen while
     loading/storing the reused state array, so the per-block
     [Bytes.sub]/[xor16] temporaries of the reference code are gone. *)
  let t = tweak_block key tweak in
  let state = Array.make 16 0 in
  for blk = 0 to (Bytes.length data / 16) - 1 do
    let base = blk * 16 in
    for i = 0 to 15 do
      state.(i) <-
        Char.code (Bytes.unsafe_get data (base + i))
        lxor Char.code (Bytes.unsafe_get t i)
    done;
    if decrypt then decrypt_state key state else encrypt_state key state;
    for i = 0 to 15 do
      Bytes.unsafe_set out (base + i)
        (Char.unsafe_chr
           (Array.unsafe_get state i lxor Char.code (Bytes.unsafe_get t i)))
    done;
    gf_double_in_place t
  done;
  out

let xts_encrypt ~key ~tweak data = xts_run ~key ~tweak ~decrypt:false data
let xts_decrypt ~key ~tweak data = xts_run ~key ~tweak ~decrypt:true data
