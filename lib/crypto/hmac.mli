(** HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).

    The key-derivation chain of Sec. 3.3 ("all other key materials,
    including the enclave's sealing key and report key, are derived from
    K_root and the enclave's measurement") is built on these. *)

val hmac : key:bytes -> bytes -> bytes
(** HMAC-SHA256; 32-byte tag. *)

val hmac_slices : key:bytes -> (bytes * int * int) list -> bytes
(** HMAC-SHA256 over the concatenation of [(buf, off, len)] slices,
    absorbed in order without copying any of them — equal to {!hmac}
    over the concatenated message. *)

val hmac_string : key:bytes -> string -> bytes
val verify : key:bytes -> bytes -> tag:bytes -> bool

val hkdf_extract : ?salt:bytes -> ikm:bytes -> unit -> bytes
val hkdf_expand : prk:bytes -> info:string -> len:int -> bytes

val derive : key:bytes -> info:string -> bytes
(** [derive ~key ~info] is a 32-byte subkey: extract-then-expand with
    [info] as the context label. *)
