(* FIPS 180-4 SHA-256 over 32-bit words carried in OCaml ints (masked). *)

let k =
  [|
    0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
    0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
    0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
    0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
    0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
    0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
    0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
    0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
    0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
    0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
    0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
  |]

type ctx = {
  h : int array; (* 8 state words *)
  w : int array; (* 64-word message schedule, reused across blocks *)
  buf : Bytes.t; (* 64-byte block buffer *)
  mutable buf_len : int;
  mutable total : int; (* total bytes absorbed *)
  mutable finalized : bool;
}

let digest_size = 32
let mask = 0xffffffff

let init () =
  {
    h =
      [|
        0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f;
        0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
      |];
    w = Array.make 64 0;
    buf = Bytes.create 64;
    buf_len = 0;
    total = 0;
    finalized = false;
  }

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

let compress ctx block off =
  let w = ctx.w in
  for i = 0 to 15 do
    (* One 32-bit big-endian load per word instead of four byte reads. *)
    w.(i) <- Int32.to_int (Bytes.get_int32_be block (off + (4 * i))) land mask
  done;
  for i = 16 to 63 do
    let w15 = Array.unsafe_get w (i - 15) and w2 = Array.unsafe_get w (i - 2) in
    let s0 = rotr w15 7 lxor rotr w15 18 lxor (w15 lsr 3) in
    let s1 = rotr w2 17 lxor rotr w2 19 lxor (w2 lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  let a = ref ctx.h.(0)
  and b = ref ctx.h.(1)
  and c = ref ctx.h.(2)
  and d = ref ctx.h.(3)
  and e = ref ctx.h.(4)
  and f = ref ctx.h.(5)
  and g = ref ctx.h.(6)
  and hh = ref ctx.h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = !e land !f lxor (lnot !e land !g) in
    let temp1 =
      (!hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get ctx.w i)
      land mask
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = !a land !b lxor (!a land !c) lxor (!b land !c) in
    let temp2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + temp1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (temp1 + temp2) land mask
  done;
  ctx.h.(0) <- (ctx.h.(0) + !a) land mask;
  ctx.h.(1) <- (ctx.h.(1) + !b) land mask;
  ctx.h.(2) <- (ctx.h.(2) + !c) land mask;
  ctx.h.(3) <- (ctx.h.(3) + !d) land mask;
  ctx.h.(4) <- (ctx.h.(4) + !e) land mask;
  ctx.h.(5) <- (ctx.h.(5) + !f) land mask;
  ctx.h.(6) <- (ctx.h.(6) + !g) land mask;
  ctx.h.(7) <- (ctx.h.(7) + !hh) land mask

let update_sub ctx data ~off ~len =
  if ctx.finalized then invalid_arg "Sha256.update: already finalized";
  if len < 0 || off < 0 || off + len > Bytes.length data then
    invalid_arg "Sha256.update_sub: slice out of bounds";
  ctx.total <- ctx.total + len;
  let pos = ref off in
  let stop = off + len in
  (* Fill a partial block first. *)
  if ctx.buf_len > 0 then begin
    let need = min (64 - ctx.buf_len) len in
    Bytes.blit data off ctx.buf ctx.buf_len need;
    ctx.buf_len <- ctx.buf_len + need;
    pos := off + need;
    if ctx.buf_len = 64 then begin
      compress ctx ctx.buf 0;
      ctx.buf_len <- 0
    end
  end;
  while stop - !pos >= 64 do
    compress ctx data !pos;
    pos := !pos + 64
  done;
  if !pos < stop then begin
    Bytes.blit data !pos ctx.buf 0 (stop - !pos);
    ctx.buf_len <- stop - !pos
  end

let update ctx data = update_sub ctx data ~off:0 ~len:(Bytes.length data)

let update_string ctx s = update ctx (Bytes.unsafe_of_string s)

(* The message schedule [w] is scratch space valid only inside [compress],
   so a copy needs a fresh array but not the current contents. *)
let copy ctx =
  {
    h = Array.copy ctx.h;
    w = Array.make 64 0;
    buf = Bytes.copy ctx.buf;
    buf_len = ctx.buf_len;
    total = ctx.total;
    finalized = ctx.finalized;
  }

let finalize ctx =
  if ctx.finalized then invalid_arg "Sha256.finalize: already finalized";
  ctx.finalized <- true;
  let bit_len = Int64.of_int (ctx.total * 8) in
  let pad_len =
    let rem = (ctx.total + 1 + 8) mod 64 in
    if rem = 0 then 1 else 1 + (64 - rem)
  in
  let tail = Bytes.make (pad_len + 8) '\000' in
  Bytes.set tail 0 '\x80';
  Bytes.set_int64_be tail pad_len bit_len;
  (* Absorb the tail directly (bypassing the finalized flag). *)
  ctx.finalized <- false;
  update ctx tail;
  ctx.finalized <- true;
  ctx.total <- ctx.total - Bytes.length tail;
  assert (ctx.buf_len = 0);
  let out = Bytes.create 32 in
  for i = 0 to 7 do
    Bytes.set out (4 * i) (Char.chr ((ctx.h.(i) lsr 24) land 0xff));
    Bytes.set out ((4 * i) + 1) (Char.chr ((ctx.h.(i) lsr 16) land 0xff));
    Bytes.set out ((4 * i) + 2) (Char.chr ((ctx.h.(i) lsr 8) land 0xff));
    Bytes.set out ((4 * i) + 3) (Char.chr (ctx.h.(i) land 0xff))
  done;
  out

let digest_bytes data =
  let ctx = init () in
  update ctx data;
  finalize ctx

(* [update] only reads from its input, so the string's bytes can be
   borrowed without the copy [Bytes.of_string] would make. *)
let digest_string s = digest_bytes (Bytes.unsafe_of_string s)

let hex_digits = "0123456789abcdef"

let to_hex digest =
  let n = Bytes.length digest in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let c = Char.code (Bytes.unsafe_get digest i) in
    Bytes.unsafe_set out (2 * i) (String.unsafe_get hex_digits (c lsr 4));
    Bytes.unsafe_set out ((2 * i) + 1)
      (String.unsafe_get hex_digits (c land 0xf))
  done;
  Bytes.unsafe_to_string out

let equal a b =
  Bytes.length a = Bytes.length b
  &&
  let diff = ref 0 in
  for i = 0 to Bytes.length a - 1 do
    diff := !diff lor (Char.code (Bytes.get a i) lxor Char.code (Bytes.get b i))
  done;
  !diff = 0
