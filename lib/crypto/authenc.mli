(** Authenticated encryption: AES-128-CTR with an encrypt-then-MAC
    HMAC-SHA256 tag.

    Backs TPM sealing and the SDK's [sgx_seal_data] equivalent.  The key is
    any 32-byte secret; the first 16 bytes key the cipher, the last 16 key
    the MAC (after domain separation). *)

type sealed = {
  nonce : bytes;  (** 12 bytes *)
  ciphertext : bytes;
  tag : bytes;  (** 32 bytes *)
  aad : bytes;  (** additional authenticated data, bound but not hidden *)
}

exception Authentication_failure

val seal : key:bytes -> ?aad:bytes -> nonce:bytes -> bytes -> sealed
(** @raise Invalid_argument if [key] is not 32 bytes or nonce not 12. *)

val unseal : key:bytes -> sealed -> bytes
(** @raise Authentication_failure if the tag, AAD, or key is wrong. *)

(** {2 Zero-copy path}

    [prepare] pays the HKDF key split and AES key schedule once; the
    [_into]/[_in_place] operations then run the cipher over
    caller-provided buffer slices (e.g. ring-resident frames) without
    allocating plaintext/ciphertext copies.  All of them are
    byte-compatible with {!seal}/{!unseal} on the same key material. *)

type keys
(** Prepared (pre-expanded) key material for one 32-byte key. *)

val prepare : bytes -> keys
(** @raise Invalid_argument if the key is not 32 bytes. *)

val seal_into :
  keys ->
  ?aad:bytes ->
  nonce:bytes ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  len:int ->
  unit ->
  bytes
(** Encrypt [src[src_off, src_off+len)] into [dst[dst_off, ...)] ([src]
    and [dst] may alias for a true in-place seal) and return the 32-byte
    tag over the ciphertext slice.  @raise Invalid_argument on bad
    slices or a nonce that is not 12 bytes. *)

val verify_slice :
  keys ->
  ?aad:bytes ->
  nonce:bytes ->
  tag:bytes ->
  buf:bytes ->
  off:int ->
  len:int ->
  unit ->
  bool
(** Tag check over a ciphertext slice without decrypting. *)

val verify_sealed : keys -> sealed -> bool
(** Tag check of a {!sealed} record without producing plaintext — the
    admission-time half of a deferred in-place decrypt. *)

val unseal_in_place :
  keys -> ?aad:bytes -> nonce:bytes -> tag:bytes -> bytes -> off:int -> len:int -> unit
(** Authenticate then decrypt [buf[off, off+len)] in place.
    @raise Authentication_failure if the tag, AAD, or key is wrong (the
    buffer is untouched in that case). *)

val decrypt_into :
  keys ->
  nonce:bytes ->
  src:bytes ->
  src_off:int ->
  dst:bytes ->
  dst_off:int ->
  len:int ->
  unit
(** Decrypt WITHOUT authenticating: the completion half of a deferred
    in-place unseal whose tag was already checked with {!verify_sealed}
    / {!verify_slice}.  Never call this on unauthenticated bytes. *)

val encode : sealed -> bytes
(** Length-prefixed wire form (for writing sealed blobs to "disk"). *)

val decode : bytes -> sealed
(** @raise Invalid_argument on malformed input. *)
