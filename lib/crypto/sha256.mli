(** SHA-256 (FIPS 180-4), implemented from scratch.

    Used for all measurements in the system: TPM PCR extends, the enclave
    measurement computed page-by-page at EADD/EINIT, and MAC/KDF
    construction.  Digests are 32 raw bytes; [to_hex] renders them. *)

type ctx

val init : unit -> ctx
val update : ctx -> bytes -> unit

val update_sub : ctx -> bytes -> off:int -> len:int -> unit
(** Absorb [data[off, off+len)] without slicing a fresh buffer — the
    zero-copy MAC path hashes ciphertext straight out of the ring.
    @raise Invalid_argument on an out-of-bounds slice. *)

val update_string : ctx -> string -> unit
val finalize : ctx -> bytes
(** Finalizing consumes the context; further [update]s raise
    [Invalid_argument]. *)

val copy : ctx -> ctx
(** Independent clone of a running context.  Lets a caller peek at the
    digest-so-far (finalize the copy) without consuming the original —
    the monitor uses this so a failed EINIT cannot brick the enclave's
    measurement, and lib/mc uses it to snapshot in-build enclaves. *)

val digest_bytes : bytes -> bytes
val digest_string : string -> bytes

val digest_size : int
(** 32. *)

val to_hex : bytes -> string
val equal : bytes -> bytes -> bool
(** Constant-time-style comparison (full scan regardless of mismatch). *)
