type sealed = { nonce : bytes; ciphertext : bytes; tag : bytes; aad : bytes }

exception Authentication_failure

let split_key key =
  if Bytes.length key <> 32 then invalid_arg "Authenc: key must be 32 bytes";
  let enc_key = Hmac.derive ~key ~info:"authenc-enc" in
  let mac_key = Hmac.derive ~key ~info:"authenc-mac" in
  (Bytes.sub enc_key 0 16, mac_key)

let mac_input ~nonce ~aad ~ciphertext =
  let buf = Buffer.create (Bytes.length ciphertext + 64) in
  let add_framed b =
    let len = Bytes.create 4 in
    Bytes.set_int32_be len 0 (Int32.of_int (Bytes.length b));
    Buffer.add_bytes buf len;
    Buffer.add_bytes buf b
  in
  add_framed nonce;
  add_framed aad;
  add_framed ciphertext;
  Buffer.to_bytes buf

(* Prepared key material for the zero-copy path: the HKDF split and the
   AES key schedule are paid once per session instead of once per seal. *)
type keys = { enc : Aes.key; mac : bytes }

let prepare key =
  let enc_key, mac_key = split_key key in
  { enc = Aes.expand_key enc_key; mac = mac_key }

(* The MAC input of [mac_input] expressed as slices, so ring-resident
   ciphertext is hashed in place instead of copied into a scratch
   buffer.  Framing must match [mac_input] byte for byte. *)
let mac_slices ~nonce ~aad ~ct ~ct_off ~ct_len =
  let hdr n =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 (Int32.of_int n);
    b
  in
  [
    (hdr (Bytes.length nonce), 0, 4);
    (nonce, 0, Bytes.length nonce);
    (hdr (Bytes.length aad), 0, 4);
    (aad, 0, Bytes.length aad);
    (hdr ct_len, 0, 4);
    (ct, ct_off, ct_len);
  ]

let tag_of_slice keys ~nonce ~aad ~ct ~ct_off ~ct_len =
  Hmac.hmac_slices ~key:keys.mac (mac_slices ~nonce ~aad ~ct ~ct_off ~ct_len)

let seal_into keys ?(aad = Bytes.empty) ~nonce ~src ~src_off ~dst ~dst_off ~len
    () =
  if Bytes.length nonce <> 12 then
    invalid_arg "Authenc.seal_into: nonce must be 12 bytes";
  Aes.ctr_into ~key:keys.enc ~nonce ~src ~src_off ~dst ~dst_off ~len;
  tag_of_slice keys ~nonce ~aad ~ct:dst ~ct_off:dst_off ~ct_len:len

let verify_slice keys ?(aad = Bytes.empty) ~nonce ~tag ~buf ~off ~len () =
  Sha256.equal (tag_of_slice keys ~nonce ~aad ~ct:buf ~ct_off:off ~ct_len:len)
    tag

(* Tag check without producing plaintext: the serving plane
   authenticates envelopes at admission and defers the (in-place)
   decrypt to the batched flush. *)
let verify_sealed keys sealed =
  verify_slice keys ~aad:sealed.aad ~nonce:sealed.nonce ~tag:sealed.tag
    ~buf:sealed.ciphertext ~off:0
    ~len:(Bytes.length sealed.ciphertext)
    ()

(* Completion of a deferred decrypt: plain CTR over a ciphertext slice
   whose tag was already checked (e.g. [verify_sealed] at admission
   time, decrypt at batch-flush time).  Never call this on
   unauthenticated bytes. *)
let decrypt_into keys ~nonce ~src ~src_off ~dst ~dst_off ~len =
  Aes.ctr_into ~key:keys.enc ~nonce ~src ~src_off ~dst ~dst_off ~len

let unseal_in_place keys ?(aad = Bytes.empty) ~nonce ~tag buf ~off ~len =
  if not (verify_slice keys ~aad ~nonce ~tag ~buf ~off ~len ()) then
    raise Authentication_failure;
  Aes.ctr_into ~key:keys.enc ~nonce ~src:buf ~src_off:off ~dst:buf ~dst_off:off
    ~len

let seal ~key ?(aad = Bytes.empty) ~nonce plaintext =
  if Bytes.length nonce <> 12 then invalid_arg "Authenc.seal: nonce must be 12 bytes";
  let enc_key, mac_key = split_key key in
  let ciphertext = Aes.ctr_transform ~key:enc_key ~nonce plaintext in
  let tag = Hmac.hmac ~key:mac_key (mac_input ~nonce ~aad ~ciphertext) in
  { nonce; ciphertext; tag; aad }

let unseal ~key sealed =
  let enc_key, mac_key = split_key key in
  let expected =
    Hmac.hmac ~key:mac_key
      (mac_input ~nonce:sealed.nonce ~aad:sealed.aad ~ciphertext:sealed.ciphertext)
  in
  if not (Sha256.equal expected sealed.tag) then raise Authentication_failure;
  Aes.ctr_transform ~key:enc_key ~nonce:sealed.nonce sealed.ciphertext

let encode sealed =
  let buf = Buffer.create (Bytes.length sealed.ciphertext + 64) in
  let add_framed b =
    let len = Bytes.create 4 in
    Bytes.set_int32_be len 0 (Int32.of_int (Bytes.length b));
    Buffer.add_bytes buf len;
    Buffer.add_bytes buf b
  in
  add_framed sealed.nonce;
  add_framed sealed.aad;
  add_framed sealed.ciphertext;
  add_framed sealed.tag;
  Buffer.to_bytes buf

let decode raw =
  let pos = ref 0 in
  let take_framed () =
    if !pos + 4 > Bytes.length raw then invalid_arg "Authenc.decode: truncated";
    let len = Int32.to_int (Bytes.get_int32_be raw !pos) in
    pos := !pos + 4;
    if len < 0 || !pos + len > Bytes.length raw then
      invalid_arg "Authenc.decode: truncated";
    let b = Bytes.sub raw !pos len in
    pos := !pos + len;
    b
  in
  let nonce = take_framed () in
  let aad = take_framed () in
  let ciphertext = take_framed () in
  let tag = take_framed () in
  if !pos <> Bytes.length raw then invalid_arg "Authenc.decode: trailing bytes";
  { nonce; ciphertext; tag; aad }
