type secret = bytes
type public = bytes

(* public -> secret.  Agreement-side stand-in for the group mathematics;
   see the interface comment. *)
let registry : (string, bytes) Hashtbl.t = Hashtbl.create 16

let derive_public secret =
  let ctx = Sha256.init () in
  Sha256.update_string ctx "hyperenclave-sim-kx-pub:";
  Sha256.update ctx secret;
  Sha256.finalize ctx

let generate rng =
  let secret = Hyperenclave_hw.Rng.bytes rng 32 in
  let public = derive_public secret in
  Hashtbl.replace registry (Bytes.to_string public) secret;
  (secret, public)

let public_of_secret = derive_public

(* Hash the unordered pair of secrets so both endpoints compute the same
   value regardless of who calls. *)
let shared mine theirs =
  match Hashtbl.find_opt registry (Bytes.to_string theirs) with
  | None -> None
  | Some other ->
      let lo, hi = if Bytes.compare mine other <= 0 then (mine, other) else (other, mine) in
      let ctx = Sha256.init () in
      Sha256.update_string ctx "hyperenclave-sim-kx-shared:";
      Sha256.update ctx lo;
      Sha256.update ctx hi;
      Some (Sha256.finalize ctx)
