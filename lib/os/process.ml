type t = {
  pid : int;
  gpt : Hyperenclave_hw.Page_table.t;
  pinned : (int, unit) Hashtbl.t;
  mutable mmap_cursor : int;
  mutable brk : int;
  mutable alive : bool;
}

let mmap_base = 0x2_0000_0000
let heap_base = 0x1000_0000

let make ~pid =
  {
    pid;
    gpt = Hyperenclave_hw.Page_table.create ();
    pinned = Hashtbl.create 64;
    mmap_cursor = mmap_base;
    brk = heap_base;
    alive = true;
  }

let pin t ~vpn = Hashtbl.replace t.pinned vpn ()
let unpin t ~vpn = Hashtbl.remove t.pinned vpn
let is_pinned t ~vpn = Hashtbl.mem t.pinned vpn
let pinned_count t = Hashtbl.length t.pinned
