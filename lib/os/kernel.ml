open Hyperenclave_hw

exception Segfault of { pid : int; va : int }

type swap_result = Swapped | Pinned_refused

type t = {
  clock : Cycles.t;
  cost : Cost_model.t;
  rng : Rng.t;
  mem : Phys_mem.t;
  cpu : Mmu.t;
  iommu : Iommu.t;
  frames : Frame_alloc.t;
  mutable npt : Page_table.t option;
  disk : (string, bytes) Hashtbl.t;
  swap : (int * int, bytes) Hashtbl.t;
  mutable next_pid : int;
  mutable current : Process.t option;
  mutable run_queue : Process.t list; (* head runs next *)
  mutable pf_trace : (int * int) list;
}

let create ~clock ~cost ~rng ~mem ~cpu ~iommu ~os_base_frame ~os_nframes =
  {
    clock;
    cost;
    rng;
    mem;
    cpu;
    iommu;
    frames = Frame_alloc.create ~base_frame:os_base_frame ~nframes:os_nframes;
    npt = None;
    disk = Hashtbl.create 16;
    swap = Hashtbl.create 256;
    next_pid = 1;
    current = None;
    run_queue = [];
    pf_trace = [];
  }

let clock t = t.clock
let cost t = t.cost
let mem t = t.mem
let cpu t = t.cpu
let iommu t = t.iommu

let demote t ~npt = t.npt <- Some npt
let demoted t = t.npt <> None

let install_current t =
  match t.current with
  | Some (proc : Process.t) -> (
      match t.npt with
      | Some npt -> Mmu.switch_context t.cpu ~gpt:proc.Process.gpt ~npt ()
      | None -> Mmu.switch_context t.cpu ~gpt:proc.Process.gpt ())
  | None -> ()

let with_translation t ~nested f =
  let saved = t.npt in
  if nested && saved = None then
    invalid_arg "Kernel.with_translation: not demoted yet";
  t.npt <- (if nested then saved else None);
  install_current t;
  let restore () =
    t.npt <- saved;
    install_current t
  in
  match f () with
  | v ->
      restore ();
      v
  | exception exn ->
      restore ();
      raise exn

let spawn t =
  Cycles.tick t.clock t.cost.os_fork;
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  Process.make ~pid

let exit_process t (proc : Process.t) =
  Page_table.iter proc.gpt (fun ~vpn:_ entry ->
      if Frame_alloc.owns t.frames entry.Page_table.frame then
        Frame_alloc.free t.frames entry.Page_table.frame);
  proc.alive <- false;
  if t.current = Some proc then t.current <- None

let install t (proc : Process.t) =
  match t.npt with
  | Some npt -> Mmu.switch_context t.cpu ~gpt:proc.gpt ~npt ()
  | None -> Mmu.switch_context t.cpu ~gpt:proc.gpt ()

let switch_to t proc =
  Cycles.tick t.clock t.cost.os_ctxsw;
  install t proc;
  t.current <- Some proc

let current t = t.current

let enqueue t proc =
  if not (List.memq proc t.run_queue) then t.run_queue <- t.run_queue @ [ proc ]

let dequeue t proc = t.run_queue <- List.filter (fun p -> p != proc) t.run_queue

let schedule t =
  match t.run_queue with
  | [] -> None
  | next :: rest ->
      t.run_queue <- rest @ [ next ];
      switch_to t next;
      Some next

let alloc_frame t =
  try Frame_alloc.alloc t.frames
  with Frame_alloc.Out_of_frames -> failwith "Kernel: out of physical memory"

let map_fresh t (proc : Process.t) ~vpn =
  let frame = alloc_frame t in
  Phys_mem.zero_page t.mem ~frame;
  Page_table.map proc.gpt ~vpn ~frame ~perms:Page_table.rw;
  frame

let mmap t (proc : Process.t) ~len ~populate =
  Cycles.tick t.clock t.cost.os_mmap;
  let len = Addr.align_up len in
  let base = proc.mmap_cursor in
  proc.mmap_cursor <- base + len + Addr.page_size;
  if populate then
    for vpn = Addr.page_of base to Addr.page_of (base + len - 1) do
      ignore (map_fresh t proc ~vpn)
    done;
  base

let brk_grow t (proc : Process.t) ~len =
  let old = proc.brk in
  proc.brk <- proc.brk + Addr.align_up len;
  ignore t;
  old

let in_heap (proc : Process.t) va = va >= Process.heap_base && va < proc.brk

let in_mmap_area (proc : Process.t) va =
  va >= Process.mmap_base && va < proc.mmap_cursor

(* Kernel page-fault handling: swap-in if evicted, demand-zero if the
   range is legitimately owned, segfault otherwise. *)
let handle_fault t (proc : Process.t) ~vpn ~va =
  Cycles.tick t.clock t.cost.os_page_fault;
  t.pf_trace <- (proc.pid, vpn) :: t.pf_trace;
  match Hashtbl.find_opt t.swap (proc.pid, vpn) with
  | Some contents ->
      let frame = alloc_frame t in
      Phys_mem.write_page t.mem ~frame contents;
      Page_table.map proc.gpt ~vpn ~frame ~perms:Page_table.rw;
      Hashtbl.remove t.swap (proc.pid, vpn);
      Cycles.tick t.clock t.cost.epc_swap_page
  | None ->
      if in_heap proc va || in_mmap_area proc va then
        ignore (map_fresh t proc ~vpn)
      else raise (Segfault { pid = proc.pid; va })

let require_current t (proc : Process.t) =
  match t.current with
  | Some p when p.Process.pid = proc.pid -> ()
  | Some _ | None -> invalid_arg "Kernel: process is not on the CPU"

let rec access_loop t (proc : Process.t) ~access ~va ~attempts =
  if attempts > 4 then raise (Segfault { pid = proc.pid; va });
  try Mmu.translate t.cpu ~access ~user:true va
  with Mmu.Page_fault fault ->
    if fault.present then raise (Segfault { pid = proc.pid; va })
    else begin
      handle_fault t proc ~vpn:fault.vpn ~va;
      access_loop t proc ~access ~va ~attempts:(attempts + 1)
    end

let proc_read t proc ~va ~len =
  require_current t proc;
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = va + !pos in
    let chunk = min (len - !pos) (Addr.page_size - Addr.offset a) in
    let pa = access_loop t proc ~access:Mmu.Read ~va:a ~attempts:0 in
    Bytes.blit (Phys_mem.read_bytes t.mem pa chunk) 0 out !pos chunk;
    pos := !pos + chunk
  done;
  Cycles.tick t.clock (Cost_model.copy_cost t.cost len);
  out

let proc_write t proc ~va data =
  require_current t proc;
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let a = va + !pos in
    let chunk = min (len - !pos) (Addr.page_size - Addr.offset a) in
    let pa = access_loop t proc ~access:Mmu.Write ~va:a ~attempts:0 in
    Phys_mem.write_bytes t.mem pa (Bytes.sub data !pos chunk);
    pos := !pos + chunk
  done;
  Cycles.tick t.clock (Cost_model.copy_cost t.cost len)

let resolve_frame _t (proc : Process.t) ~vpn =
  Option.map
    (fun (e : Page_table.entry) -> e.frame)
    (Page_table.lookup proc.gpt ~vpn)

let map_alias _t (proc : Process.t) ~vpn ~frame =
  Page_table.map proc.gpt ~vpn ~frame ~perms:Page_table.rw

let swap_out t (proc : Process.t) ~vpn =
  if Process.is_pinned proc ~vpn then Pinned_refused
  else
    match Page_table.lookup proc.gpt ~vpn with
    | None -> Pinned_refused
    | Some entry ->
        let frame = entry.Page_table.frame in
        Hashtbl.replace t.swap (proc.pid, vpn) (Phys_mem.read_page t.mem ~frame);
        Page_table.unmap proc.gpt ~vpn;
        Tlb.invalidate (Mmu.tlb t.cpu) ~vpn;
        if Frame_alloc.owns t.frames frame then Frame_alloc.free t.frames frame;
        Cycles.tick t.clock t.cost.epc_swap_page;
        Swapped

let swapped_count t = Hashtbl.length t.swap
let null_syscall t = Cycles.tick t.clock t.cost.os_null_syscall
let deliver_signal t = Cycles.tick t.clock t.cost.os_signal_delivery
let af_unix_roundtrip t = Cycles.tick t.clock t.cost.os_af_unix
let disk_store t ~key value = Hashtbl.replace t.disk key value
let disk_load t ~key = Hashtbl.find_opt t.disk key
let disk_delete t ~key = Hashtbl.remove t.disk key
let pf_trace t = t.pf_trace
