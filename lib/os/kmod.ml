open Hyperenclave_hw
open Hyperenclave_monitor
module Fault = Hyperenclave_fault.Fault

type t = { kernel : Kernel.t; monitor : Monitor.t }

let sealed_key_name = "hyperenclave/k_root.sealed"
let monitor_pcr = 10

let load ~kernel ~tpm ~monitor ~monitor_image ~boot_log =
  (* Late launch step 1: measure the hypervisor image out of the
     initramfs and extend the TPM before jumping into it. *)
  let measurement =
    Hyperenclave_tpm.Tpm.extend_measurement tpm ~index:monitor_pcr
      monitor_image
  in
  let boot_log =
    boot_log
    @ [ { Monitor.pcr_index = monitor_pcr; label = "hypervisor"; measurement } ]
  in
  let sealed = Kernel.disk_load kernel ~key:sealed_key_name in
  (match Monitor.launch monitor ~boot_log ~sealed_root_key:sealed with
  | `First_boot blob -> Kernel.disk_store kernel ~key:sealed_key_name blob
  | `Resumed -> ());
  (* Step 2: the kernel returns from the launch demoted to the normal VM.
     It also provides the (untrusted) backing store for EPC overcommit. *)
  Monitor.set_swap_backend monitor
    ~store:(fun key blob -> Kernel.disk_store kernel ~key blob)
    ~load:(fun key -> Kernel.disk_load kernel ~key)
    ~delete:(fun key -> Kernel.disk_delete kernel ~key);
  Kernel.demote kernel ~npt:(Monitor.normal_npt monitor);
  { kernel; monitor }

let monitor t = t.monitor
let kernel t = t.kernel

let backoff t attempt =
  Cycles.tick (Kernel.clock t.kernel)
    (World_switch.retry_backoff_cost (Kernel.cost t.kernel) ~attempt)

let ioctl_enter t =
  (* Fault site at the device-node boundary: an ioctl that never reached
     the kernel module (EINTR, dropped request).  It fires before the
     syscall is charged, so a transient fault is absorbed by reissuing
     the crossing, exactly like userspace retrying on EINTR. *)
  Fault.with_retries ~backoff:(backoff t) (fun () -> Fault.point "os.ioctl");
  Kernel.null_syscall t.kernel

(* Every privileged operation crosses the explicit hypercall ABI; a
   Fault result is re-raised so callers see the monitor's refusal.
   Transient injected faults at the dispatch gate are retried with
   backoff, like the real driver reissuing an interrupted VMMCALL —
   safe because the gate fires before the monitor mutates anything. *)
let hypercall t request =
  Fault.with_retries ~backoff:(backoff t) (fun () ->
      match Hypercall.dispatch t.monitor request with
      | Hypercall.Fault message -> raise (Monitor.Security_violation message)
      | result -> result)

let expect_ok t request =
  match hypercall t request with
  | Hypercall.Ok -> ()
  | Hypercall.Enclave_handle _ | Hypercall.Key _ | Hypercall.Report _
  | Hypercall.Quote _ | Hypercall.Batch _ ->
      invalid_arg ("Kmod: unexpected result for " ^ Hypercall.name request)
  | Hypercall.Fault _ -> assert false (* re-raised in [hypercall] *)

let ioctl_batch t reqs =
  ioctl_enter t;
  match hypercall t (Hypercall.Ebatch reqs) with
  | Hypercall.Batch results -> results
  | _ -> invalid_arg "Kmod: EBATCH returned no batch result"

let ioctl_obatch t ~enclave ~tcs ~return_va ~slots =
  ioctl_enter t;
  expect_ok t (Hypercall.Obatch { enclave; tcs; return_va; slots })

let ioctl_create_enclave t secs =
  ioctl_enter t;
  match hypercall t (Hypercall.Ecreate secs) with
  | Hypercall.Enclave_handle enclave -> enclave
  | _ -> invalid_arg "Kmod: ECREATE returned no handle"

let ioctl_add_page t enclave ~vpn ~content ~perms ~page_type =
  ioctl_enter t;
  expect_ok t (Hypercall.Eadd { enclave; vpn; content; perms; page_type })

let ioctl_add_tcs t enclave ~vpn ~entry_va ~nssa ~ssa_base_vpn =
  ioctl_enter t;
  expect_ok t (Hypercall.Eadd_tcs { enclave; vpn; entry_va; nssa; ssa_base_vpn })

let ioctl_pin_range t proc ~va ~len =
  ioctl_enter t;
  let first = Addr.page_of va in
  let last = Addr.page_of (va + len - 1) in
  for vpn = first to last do
    match Kernel.resolve_frame t.kernel proc ~vpn with
    | Some _ -> Process.pin proc ~vpn
    | None ->
        (* A failed ioctl must leave the process as it found it: unwind
           every pin this call took, or the pages stay unreclaimable for
           the life of the process. *)
        for unpin = first to vpn - 1 do
          Process.unpin proc ~vpn:unpin
        done;
        invalid_arg
          (Printf.sprintf "ioctl_pin_range: page 0x%x not resident" vpn)
  done

let unpin_range proc ~va ~len =
  for vpn = Addr.page_of va to Addr.page_of (va + len - 1) do
    Process.unpin proc ~vpn
  done

let ioctl_init_enclave t proc enclave ~sigstruct ~ms_base ~ms_size =
  ioctl_enter t;
  let first = Addr.page_of ms_base in
  let last = Addr.page_of (ms_base + ms_size - 1) in
  let pages = ref [] in
  for vpn = last downto first do
    if not (Process.is_pinned proc ~vpn) then
      invalid_arg
        (Printf.sprintf "ioctl_init_enclave: page 0x%x not pinned" vpn);
    match Kernel.resolve_frame t.kernel proc ~vpn with
    | Some frame -> pages := (vpn, frame) :: !pages
    | None ->
        invalid_arg
          (Printf.sprintf "ioctl_init_enclave: page 0x%x not resident" vpn)
  done;
  expect_ok t
    (Hypercall.Einit
       { enclave; sigstruct; marshalling = (ms_base, ms_size, !pages) })

let ioctl_destroy_enclave t proc enclave =
  ioctl_enter t;
  (* The pins taken for the marshalling buffer share the enclave's
     lifetime: EREMOVE is where the module must release them, otherwise
     every create/destroy cycle leaks pinned pages. *)
  let marshalling = enclave.Enclave.marshalling in
  expect_ok t (Hypercall.Eremove enclave);
  match marshalling with
  | None -> ()
  | Some (ms_base, ms_size) -> unpin_range proc ~va:ms_base ~len:ms_size
