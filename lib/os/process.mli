(** A primary-OS process: the untrusted half of a HyperEnclave application.

    Owns a guest page table managed by the kernel (unlike enclave tables,
    which the kernel never touches).  Tracks which virtual pages are pinned
    — the property the marshalling buffer depends on ("the primary OS is
    requested not to compact or swap out the physical pages of the
    marshalling buffers during the enclave's lifetime", Sec. 5.3). *)

type t = {
  pid : int;
  gpt : Hyperenclave_hw.Page_table.t;
  pinned : (int, unit) Hashtbl.t;  (** pinned virtual page numbers *)
  mutable mmap_cursor : int;
  mutable brk : int;
  mutable alive : bool;
}

val make : pid:int -> t

val mmap_base : int
(** Base of the mmap area (also where marshalling buffers land). *)

val heap_base : int

val pin : t -> vpn:int -> unit
val unpin : t -> vpn:int -> unit
val is_pinned : t -> vpn:int -> bool

val pinned_count : t -> int
(** Number of pinned pages; a process with no live enclaves should be
    back at zero (pin-leak regression checks). *)
