(** The primary OS kernel.

    Untrusted by the monitor and the enclaves; still in charge of process
    scheduling, its own page tables, swapping, signals and devices
    (Sec. 3.1).  Before {!demote} it runs natively (1-level translation);
    afterwards it runs inside the normal VM under the monitor's nested
    table, which is the only change it could observe. *)

open Hyperenclave_hw

exception Segfault of { pid : int; va : int }

type swap_result = Swapped | Pinned_refused

type t

val create :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  mem:Phys_mem.t ->
  cpu:Mmu.t ->
  iommu:Iommu.t ->
  os_base_frame:int ->
  os_nframes:int ->
  t

val clock : t -> Cycles.t
val cost : t -> Cost_model.t
val mem : t -> Phys_mem.t
val cpu : t -> Mmu.t
val iommu : t -> Iommu.t

val demote : t -> npt:Page_table.t -> unit
(** Called by the kernel module after RustMonitor launches: from now on
    every process (and the kernel) runs under the given nested table. *)

val demoted : t -> bool

val with_translation : t -> nested:bool -> (unit -> 'a) -> 'a
(** Run [f] with the current process translated natively ([nested:false])
    or under the normal VM's nested table ([nested:true], requires
    {!demote} to have happened).  The Table 3 / Fig. 10 virtualization-
    overhead comparison is exactly this toggle. *)

(** {1 Processes} *)

val spawn : t -> Process.t
(** fork+exec; charges [os_fork]. *)

val exit_process : t -> Process.t -> unit
(** Free every frame still mapped. *)

val switch_to : t -> Process.t -> unit
(** Context switch onto the CPU; charges [os_ctxsw] and installs the
    process tables (plus the nested table once demoted). *)

val current : t -> Process.t option

(** {2 Round-robin scheduling}

    The primary OS "is still in charge of process scheduling" (Sec. 3.1);
    the run queue is a plain round robin with a context switch charged per
    rotation. *)

val enqueue : t -> Process.t -> unit
(** Add to the tail of the run queue (idempotent per process). *)

val dequeue : t -> Process.t -> unit

val schedule : t -> Process.t option
(** Rotate: the current process (if queued) goes to the back, the head
    runs next and is installed on the CPU.  [None] on an empty queue. *)

val mmap : t -> Process.t -> len:int -> populate:bool -> int
(** Reserve (and with [populate], back) a virtual range; returns its base.
    Charges [os_mmap] scaled to the native LMBench cost. *)

val brk_grow : t -> Process.t -> len:int -> int
(** Extend the heap (demand-paged); returns the old break. *)

val proc_read : t -> Process.t -> va:int -> len:int -> bytes
(** Read through the process translation, demand-paging and swapping-in as
    needed.  @raise Segfault for unmapped regions,
    @raise Mmu.Npt_violation if the kernel's own PTEs point into reserved
    memory (requirement R-1 firing). *)

val proc_write : t -> Process.t -> va:int -> bytes -> unit

val resolve_frame : t -> Process.t -> vpn:int -> int option
(** Present-frame lookup (no fault handling) — what the kernel module uses
    to collect pinned marshalling frames. *)

val map_alias : t -> Process.t -> vpn:int -> frame:int -> unit
(** Install an arbitrary PTE in a process table — the primitive a
    {e malicious} kernel uses for mapping attacks (Fig. 9b).  Exposed so
    the security tests can mount the attack and watch it fail. *)

(** {1 Swapping (Sec. 3.2's synchronization challenge)} *)

val swap_out : t -> Process.t -> vpn:int -> swap_result
(** Evict a resident page to the swap store — unless it is pinned. *)

val swapped_count : t -> int

(** {1 Services} *)

val null_syscall : t -> unit
val deliver_signal : t -> unit
(** Two-phase exception upcall cost ([os_signal_delivery]). *)

val af_unix_roundtrip : t -> unit

val disk_store : t -> key:string -> bytes -> unit
val disk_load : t -> key:string -> bytes option
val disk_delete : t -> key:string -> unit

val pf_trace : t -> (int * int) list
(** (pid, vpn) of every process fault the kernel handled — visible to the
    kernel by design for its own processes; the point of HyperEnclave is
    that {e enclave} faults never show up here. *)
