(** The hyper_enclave kernel module (Sec. 5.2).

    Loaded by the primary OS during boot: it measures and launches
    RustMonitor ("measured late launch"), persists the sealed [K_root]
    blob, and afterwards exposes the emulated privileged SGX operations to
    applications through [/dev/hyper_enclave] ioctls, each of which is a
    thin hypercall forwarder.  The module runs inside the untrusted OS: the
    monitor re-validates everything it passes. *)

open Hyperenclave_monitor

type t

val load :
  kernel:Kernel.t ->
  tpm:Hyperenclave_tpm.Tpm.t ->
  monitor:Monitor.t ->
  monitor_image:bytes ->
  boot_log:Monitor.boot_event list ->
  t
(** Measure the monitor image into its PCR, launch the monitor (loading
    any previously-sealed root key from disk, persisting a fresh one on
    first boot), and demote the kernel into the normal VM. *)

val monitor : t -> Monitor.t
val kernel : t -> Kernel.t

(** {1 /dev/hyper_enclave ioctls} *)

val ioctl_create_enclave : t -> Sgx_types.secs -> Enclave.t

val ioctl_batch : t -> Hypercall.request list -> Hypercall.result list
(** Forward a batch of requests under a single ioctl + VMMCALL
    ([Hypercall.Ebatch]): the crossing and the dispatch gate are paid
    once; per-slot results come back in order. *)

val ioctl_obatch :
  t ->
  enclave:Enclave.t ->
  tcs:Sgx_types.tcs ->
  return_va:int ->
  slots:int ->
  unit
(** Forward a batched ORET ([Hypercall.Obatch]): one ioctl + VMMCALL
    re-enters the parked TCS after the untrusted side drained [slots]
    OCALL replies from the reply ring. *)

val ioctl_add_page :
  t ->
  Enclave.t ->
  vpn:int ->
  content:bytes ->
  perms:Hyperenclave_hw.Page_table.perms ->
  page_type:Sgx_types.page_type ->
  unit

val ioctl_add_tcs :
  t -> Enclave.t -> vpn:int -> entry_va:int -> nssa:int -> ssa_base_vpn:int -> unit

val ioctl_pin_range : t -> Process.t -> va:int -> len:int -> unit
(** The Sec. 5.3 pinning request: the named pages will never be swapped
    out or compacted for the life of the enclave.
    @raise Invalid_argument if any page is not resident (the uRTS mmaps
    with MAP_POPULATE first); in that case every pin taken by this call
    has been unwound — a failed ioctl does not leak pinned pages. *)

val ioctl_init_enclave :
  t ->
  Process.t ->
  Enclave.t ->
  sigstruct:Sgx_types.sigstruct ->
  ms_base:int ->
  ms_size:int ->
  unit
(** Resolve the pinned marshalling pages to frames and forward EINIT. *)

val ioctl_destroy_enclave : t -> Process.t -> Enclave.t -> unit
(** Forward EREMOVE and release the marshalling-buffer pins the module
    took at creation — their lifetime is the enclave's lifetime. *)
