(** HyperEnclave: an open and cross-platform trusted execution environment
    (Jia et al., USENIX ATC 2022) — OCaml reproduction.

    This module is the public entry point; it re-exports the subsystem
    libraries under short names and provides the one-call bring-up most
    programs want:

    {[
      let platform = Hyperenclave.Platform.create () in
      let backend =
        Hyperenclave.Backend.hyperenclave platform ~mode:Hyperenclave.Sgx_types.GU
          ~handlers:[ (1, fun env input -> ...) ] ~ocalls:[] ()
      in
      let reply = backend.call ~id:1 ~data ~direction:Hyperenclave.Edge.In_out ()
    ]}

    Layering (bottom to top): {!Hw} (simulated hardware), {!Crypto},
    {!Tpm}, {!Monitor} (RustMonitor), {!Os} (untrusted primary OS),
    {!Sdk} (SGX-compatible runtime), {!Sgx} (Intel SGX baseline model),
    {!Attestation}, {!Tee} (unified workload backends), {!Workloads}. *)

let version = "1.0.0"

(* Subsystem namespaces. *)
module Hw = Hyperenclave_hw
module Crypto = Hyperenclave_crypto
module Tpm_lib = Hyperenclave_tpm
module Monitor_lib = Hyperenclave_monitor
module Os = Hyperenclave_os
module Sdk = Hyperenclave_sdk
module Sgx = Hyperenclave_sgx
module Libos_lib = Hyperenclave_libos
module Attestation = Hyperenclave_attestation
module Tee = Hyperenclave_tee
module Workloads = Hyperenclave_workloads

(* Frequently-used modules, re-exported flat. *)
module Telemetry = Hyperenclave_obs.Telemetry
module Fault = Hyperenclave_fault.Fault
module Invariants = Hyperenclave_monitor.Invariants
module Cycles = Hyperenclave_hw.Cycles
module Cost_model = Hyperenclave_hw.Cost_model
module Rng = Hyperenclave_hw.Rng
module Page_table = Hyperenclave_hw.Page_table
module Mmu = Hyperenclave_hw.Mmu
module Sha256 = Hyperenclave_crypto.Sha256
module Tpm = Hyperenclave_tpm.Tpm
module Pcr = Hyperenclave_tpm.Pcr
module Sgx_types = Hyperenclave_monitor.Sgx_types
module Monitor = Hyperenclave_monitor.Monitor
module Enclave = Hyperenclave_monitor.Enclave
module Epc = Hyperenclave_monitor.Epc
module Measure = Hyperenclave_monitor.Measure
module World_switch = Hyperenclave_monitor.World_switch
module Isa = Hyperenclave_monitor.Isa
module Hypercall = Hyperenclave_monitor.Hypercall
module Vcpu = Hyperenclave_monitor.Vcpu
module Kernel = Hyperenclave_os.Kernel
module Process = Hyperenclave_os.Process
module Kmod = Hyperenclave_os.Kmod
module Boot = Hyperenclave_os.Boot
module Urts = Hyperenclave_sdk.Urts
module Tenv = Hyperenclave_sdk.Tenv
module Edge = Hyperenclave_sdk.Edge
module Edl = Hyperenclave_sdk.Edl
module Edl_app = Hyperenclave_sdk.Edl_app
module Verifier = Hyperenclave_attestation.Verifier
module Quote_wire = Hyperenclave_attestation.Wire
module Libos = Hyperenclave_libos.Libos
module Vfs = Hyperenclave_libos.Vfs
module Platform = Hyperenclave_tee.Platform
module Backend = Hyperenclave_tee.Backend
module Mem_sim = Hyperenclave_tee.Mem_sim
module Sched = Hyperenclave_sched.Sched
module Serve = Hyperenclave_serve.Serve
module Services = Hyperenclave_serve.Services
module Cluster = Hyperenclave_cluster.Cluster
module Netsim = Hyperenclave_cluster.Netsim
module Kx = Hyperenclave_crypto.Kx
module Mc = Hyperenclave_mc.Explorer
module Mc_world = Hyperenclave_mc.World
module Mc_alphabet = Hyperenclave_mc.Alphabet
module Mc_trace = Hyperenclave_mc.Trace
