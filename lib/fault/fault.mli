(** Deterministic fault-injection plane.

    The monitor's security argument (Sec. 3.2, R-1..R-3) has to hold not
    just on the happy path but when operations fail midway: EPC
    exhaustion, TPM command errors, AEX storms, interrupted world
    switches, truncated marshalling copies, flaky ioctls.  This module is
    the single switchboard for provoking those failures on purpose.

    Every trust-boundary crossing in the code base declares a {e named
    injection site} (see {!sites}) and calls {!point} (or {!check}, when
    the failure has bespoke semantics such as simulated EPC pressure)
    {b before mutating any state}.  That pre-mutation discipline is what
    makes the trichotomy oracle sound: an injected fault either unwinds
    into a clean typed error, is absorbed by a retry path, or trips a
    {e deliberate} monitor refusal — it can never leave half-written
    monitor state behind, so the invariant checker must stay green after
    every injection.

    A {e fault plan} is an explicit schedule of [(site, nth-hit, kind)]
    triples.  Plans are either written out by hand or derived from a
    64-bit seed ({!plan_of_seed}); equal seeds give equal schedules, so a
    failing chaos run reproduces from nothing but its printed seed.

    When no plan is installed (the default) every site is a no-op that
    charges no simulated cycles and draws no randomness — instrumented
    code stays cycle-for-cycle identical to the uninstrumented build. *)

type kind =
  | Transient  (** the operation would succeed if retried (EPC pressure,
                   TPM busy, interrupted world switch) *)
  | Permanent  (** the resource is gone; retries keep failing *)

exception Injected of { site : string; kind : kind }
(** The typed fault raised at a firing site.  [Transient] faults are
    eligible for the SDK/kernel-module bounded-retry paths; [Permanent]
    faults propagate to the caller as a clean typed error. *)

val kind_name : kind -> string

type spec = { site : string; nth : int; kind : kind }
(** Fire [kind] on the [nth] (1-based) hit of [site] after install. *)

type plan = spec list

(** {1 Site registry} *)

val sites : string list
(** Every named injection site threaded through the stack:
    ["hypercall.dispatch"] (monitor hypercall entry),
    ["epc.alloc"] / ["epc.swap_in"] (EPC frame allocation / ELDU reload),
    ["tpm.quote"] / ["tpm.seal"] / ["tpm.unseal"] (TPM commands),
    ["switch.aex"] / ["switch.eresume"] (AEX delivery / ERESUME),
    ["sdk.ms_copy_in"] / ["sdk.ms_copy_out"] (marshalling-buffer copies),
    ["sdk.aex_storm"] (interrupt burst right after EENTER),
    ["os.ioctl"] (kernel-module ioctl forwarding),
    ["serve.session"] (serving-plane session work: handshake acceptance
    and per-session dispatch staging),
    ["cluster.migrate"] (fleet migration protocol steps: the offer,
    seal and install phases of a live enclave migration). *)

(** {1 Plans} *)

val plan_of_seed : ?sites:string list -> ?faults:int -> ?max_nth:int -> int64 -> plan
(** Derive a schedule deterministically from [seed]: [faults] specs
    (default 3), each picking a site uniformly from [sites] (default
    {!sites}), an [nth] hit in [1, max_nth] (default 4) and a kind
    (transient twice as likely as permanent).  Equal arguments give equal
    plans. *)

val plan_to_string : plan -> string
(** One-line rendering ["site@nth:kind + ..."] for failure reports. *)

(** {1 Installation} *)

val install : ?telemetry:Hyperenclave_obs.Telemetry.t -> plan -> unit
(** Arm the plan, resetting all hit counters.  At each injection the
    optional [telemetry] sink receives [fault.injected] and
    [fault.injected.<site>] counter bumps (and [fault.retried] /
    [fault.survived] from the retry helpers). *)

val clear : unit -> unit
(** Disarm: every site becomes a no-op again. *)

val active : unit -> bool

val on_inject : (site:string -> kind -> unit) -> unit
(** Observer invoked at every firing site, before the fault takes
    effect.  Because sites fire pre-mutation, the observer sees the
    system in a consistent state — the chaos harness uses it to run the
    monitor invariant checker at the exact moment of each fault.
    Cleared by {!clear}. *)

val injected_count : unit -> int
(** Faults fired since the last {!install}. *)

val hits : string -> int
(** Times [site] was crossed since the last {!install}. *)

(** {1 Injection points (called by instrumented code)} *)

val check : string -> kind option
(** Record a hit at [site]; [Some kind] when the plan fires here.  For
    sites whose failure has bespoke semantics (e.g. simulated EPC
    pressure that the monitor absorbs by evicting). *)

val point : string -> unit
(** [check] and raise {!Injected} when the plan fires. *)

(** {1 Recovery helpers} *)

val survived : string -> unit
(** Record that an injected fault at [site] was absorbed without the
    operation failing (counter [fault.survived]). *)

val retried : string -> unit
(** Record one retry attempt caused by a transient fault at [site]
    (counter [fault.retried]). *)

val with_retries :
  ?max_attempts:int -> backoff:(int -> unit) -> (unit -> 'a) -> 'a
(** [with_retries ~backoff f] runs [f], retrying on [Injected
    {kind = Transient}] up to [max_attempts] (default 3) total attempts.
    [backoff attempt] is called before each retry (attempts numbered from
    1) so the caller can charge simulated backoff cycles.  Counts
    [fault.retried] per retry and [fault.survived] when a retry
    succeeds.  Permanent faults and exhausted retries re-raise. *)
