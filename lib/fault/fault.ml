module Telemetry = Hyperenclave_obs.Telemetry

type kind = Transient | Permanent

exception Injected of { site : string; kind : kind }

let kind_name = function Transient -> "transient" | Permanent -> "permanent"

type spec = { site : string; nth : int; kind : kind }
type plan = spec list

let sites =
  [
    "hypercall.dispatch";
    "epc.alloc";
    "epc.swap_in";
    "tpm.quote";
    "tpm.seal";
    "tpm.unseal";
    "switch.aex";
    "switch.eresume";
    "sdk.ms_copy_in";
    "sdk.ms_copy_out";
    "sdk.aex_storm";
    "os.ioctl";
    "serve.session";
    "cluster.migrate";
  ]

(* A private splitmix64 keeps plan derivation independent of the
   platform RNG streams: installing a plan must not perturb the
   simulation's own randomness. *)
let plan_of_seed ?(sites = sites) ?(faults = 3) ?(max_nth = 4) seed =
  let rng = Hyperenclave_hw.Rng.create ~seed in
  let site_arr = Array.of_list sites in
  let seen = Hashtbl.create 8 in
  let draw () =
    let site = site_arr.(Hyperenclave_hw.Rng.int rng (Array.length site_arr)) in
    let nth = 1 + Hyperenclave_hw.Rng.int rng max_nth in
    let kind =
      if Hyperenclave_hw.Rng.int rng 3 < 2 then Transient else Permanent
    in
    { site; nth; kind }
  in
  (* A spec fires at most once per (site, nth) hit, so a duplicate pair
     would be dead weight in the schedule; redraw a few times to keep
     every slot live (bounded so tiny site lists still terminate). *)
  let rec fresh tries =
    let s = draw () in
    if tries > 0 && Hashtbl.mem seen (s.site, s.nth) then fresh (tries - 1)
    else s
  in
  List.init faults (fun _ ->
      let s = fresh 8 in
      Hashtbl.replace seen (s.site, s.nth) ();
      s)

let plan_to_string plan =
  if plan = [] then "(empty)"
  else
    String.concat " + "
      (List.map
         (fun s -> Printf.sprintf "%s@%d:%s" s.site s.nth (kind_name s.kind))
         plan)

type state = {
  mutable specs : (spec * bool ref) list;
  hits : (string, int) Hashtbl.t;
  mutable telemetry : Telemetry.t option;
  mutable observer : (site:string -> kind -> unit) option;
  mutable injected : int;
}

let state =
  {
    specs = [];
    hits = Hashtbl.create 16;
    telemetry = None;
    observer = None;
    injected = 0;
  }

(* Fast-path flag: with no plan installed the per-site cost is one ref
   read, and neither the clock nor any RNG stream is touched. *)
let armed = ref false

let install ?telemetry plan =
  state.specs <- List.map (fun s -> (s, ref false)) plan;
  Hashtbl.reset state.hits;
  state.telemetry <- telemetry;
  state.injected <- 0;
  armed := true

let clear () =
  armed := false;
  state.specs <- [];
  Hashtbl.reset state.hits;
  state.telemetry <- None;
  state.observer <- None;
  state.injected <- 0

let active () = !armed
let on_inject f = state.observer <- Some f
let injected_count () = state.injected
let hits site = try Hashtbl.find state.hits site with Not_found -> 0

let bump name =
  match state.telemetry with
  | Some t -> Telemetry.incr t name
  | None -> ()

let check site =
  if not !armed then None
  else begin
    let n = hits site + 1 in
    Hashtbl.replace state.hits site n;
    let firing =
      List.find_opt
        (fun (spec, fired) -> (not !fired) && spec.site = site && spec.nth = n)
        state.specs
    in
    match firing with
    | None -> None
    | Some (spec, fired) ->
        fired := true;
        state.injected <- state.injected + 1;
        bump "fault.injected";
        bump ("fault.injected." ^ site);
        (match state.observer with
        | Some f -> f ~site spec.kind
        | None -> ());
        Some spec.kind
  end

let point site =
  match check site with
  | None -> ()
  | Some kind -> raise (Injected { site; kind })

let survived site =
  bump "fault.survived";
  bump ("fault.survived." ^ site)

let retried site =
  bump "fault.retried";
  bump ("fault.retried." ^ site)

let with_retries ?(max_attempts = 3) ~backoff f =
  let rec go attempt recovering_from =
    match f () with
    | v ->
        (match recovering_from with Some site -> survived site | None -> ());
        v
    | exception (Injected { site; kind = Transient } as e) ->
        if attempt >= max_attempts then raise e
        else begin
          retried site;
          backoff attempt;
          go (attempt + 1) (Some site)
        end
  in
  go 1 None
