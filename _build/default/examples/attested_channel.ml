(* Remote attestation end to end (Sec. 3.3, Fig. 4): a relying party with
   golden measurements verifies a HyperEnclave quote before provisioning
   a secret, and rejects a platform whose boot chain was tampered with.

   Run with: dune exec examples/attested_channel.exe *)

open Hyperenclave

let code_seed = "attested-service-v3"

let build_platform ?tamper_boot ~seed () =
  let p = Platform.create ~seed ?tamper_boot () in
  let enclave =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed }
      ~ecalls:
        [
          (* The service proves itself by embedding the verifier's nonce
             in the report and later receives the provisioned secret. *)
          (1, fun (tenv : Tenv.t) secret -> tenv.Tenv.seal secret);
        ]
      ~ocalls:[]
  in
  (p, enclave)

let () =
  (* --- provisioning time: the deployer records golden values from a
     known-good build --- *)
  let reference, reference_enclave = build_platform ~seed:51L () in
  let golden =
    Verifier.golden_of_boot_log
      ~ek_public:(Tpm.ek_public reference.Platform.tpm)
      (Monitor.boot_log reference.Platform.monitor)
  in
  let policy =
    {
      Verifier.expected_mrenclave = Some (Urts.mrenclave reference_enclave);
      expected_mrsigner = None;
      allow_debug = false;
    }
  in
  Printf.printf "golden: %d boot measurements + MRENCLAVE %s...\n"
    (List.length golden.Verifier.boot_measurements)
    (String.sub (Sha256.to_hex (Urts.mrenclave reference_enclave)) 0 16);

  (* --- runtime: the production platform requests a secret --- *)
  let nonce = Bytes.of_string "freshness-0001" in
  let quote = Urts.gen_quote reference_enclave ~report_data:nonce ~nonce in
  (match Verifier.verify ~golden ~policy ~nonce quote with
  | Verifier.Ok report ->
      Printf.printf "verified: enclave %s... on a trusted boot chain\n"
        (String.sub (Sha256.to_hex report.Sgx_types.mrenclave) 0 16);
      (* Provision the database key into the verified enclave; it seals
         it for local storage. *)
      let sealed =
        Urts.ecall reference_enclave ~id:1
          ~data:(Bytes.of_string "prod-db-key-XYZ") ~direction:Edge.In_out ()
      in
      Printf.printf "secret provisioned and sealed (%d bytes)\n"
        (Bytes.length sealed)
  | Verifier.Error failure ->
      Format.printf "unexpected rejection: %a@." Verifier.pp_failure failure);

  (* --- the attack: same hardware identity, but grub was modified --- *)
  let _evil_platform, evil_enclave =
    build_platform ~seed:51L ~tamper_boot:"grub" ()
  in
  let evil_quote = Urts.gen_quote evil_enclave ~report_data:nonce ~nonce in
  (match Verifier.verify ~golden ~policy ~nonce evil_quote with
  | Verifier.Ok _ -> print_endline "BUG: tampered platform verified!"
  | Verifier.Error failure ->
      Format.printf "tampered platform rejected: %a@." Verifier.pp_failure
        failure);

  (* --- replay: an old quote with a stale nonce is refused --- *)
  (match
     Verifier.verify ~golden ~policy ~nonce:(Bytes.of_string "freshness-0002")
       quote
   with
  | Verifier.Ok _ -> print_endline "BUG: replayed quote accepted!"
  | Verifier.Error failure ->
      Format.printf "replayed quote rejected: %a@." Verifier.pp_failure failure);

  Urts.destroy reference_enclave;
  Urts.destroy evil_enclave;
  print_endline "attested_channel done."
