(* Quickstart: boot a HyperEnclave platform, build an enclave with the
   SDK, run ECALLs/OCALLs through the marshalling buffer, seal a secret,
   and check the simulated cycle costs.

   Run with: dune exec examples/quickstart.exe *)

open Hyperenclave

let () =
  (* 1. Bring the platform up: measured boot, kernel, measured late
     launch of RustMonitor, demotion of the primary OS (Fig. 3). *)
  let p = Platform.create ~seed:7L () in
  Printf.printf "RustMonitor launched: %b (boot log: %d events)\n"
    (Monitor.launched p.Platform.monitor)
    (List.length (Monitor.boot_log p.Platform.monitor));

  (* 2. Define the trusted code: ECALL 1 greets, using an OCALL to fetch
     the untrusted side's hostname; ECALL 2 seals whatever it is given. *)
  let ecalls =
    [
      ( 1,
        fun (tenv : Tenv.t) input ->
          let host = tenv.Tenv.ocall ~id:100 Edge.In_out in
          Bytes.of_string
            (Printf.sprintf "hello %s, from enclave %d on %s"
               (Bytes.to_string input) tenv.Tenv.enclave_id
               (Bytes.to_string host)) );
      (2, fun (tenv : Tenv.t) secret -> tenv.Tenv.seal secret);
      (3, fun (tenv : Tenv.t) blob -> tenv.Tenv.unseal blob);
    ]
  in
  let ocalls = [ (100, fun _ -> Bytes.of_string "host-7") ] in

  (* 3. Build and launch the enclave (GU mode here; HU and P work the
     same way — try switching the mode below). *)
  let enclave =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls ~ocalls
  in
  Printf.printf "MRENCLAVE: %s\n" (Sha256.to_hex (Urts.mrenclave enclave));

  (* 4. An ECALL with data through the marshalling buffer. *)
  let reply, cycles =
    Cycles.time p.Platform.clock (fun () ->
        Urts.ecall enclave ~id:1 ~data:(Bytes.of_string "world")
          ~direction:Edge.In_out ())
  in
  Printf.printf "ECALL reply: %S  (%d simulated cycles)\n"
    (Bytes.to_string reply) cycles;

  (* 5. Seal a secret inside the enclave; only this enclave identity can
     recover it. *)
  let blob =
    Urts.ecall enclave ~id:2 ~data:(Bytes.of_string "api-key-123")
      ~direction:Edge.In_out ()
  in
  let recovered =
    Urts.ecall enclave ~id:3 ~data:blob ~direction:Edge.In_out ()
  in
  Printf.printf "sealed %d bytes; unsealed: %S\n" (Bytes.length blob)
    (Bytes.to_string recovered);

  (* 6. Peek at the stats RustMonitor kept. *)
  let stats = Urts.stats enclave in
  Printf.printf "stats: %d ECALLs, %d OCALLs, %d demand-paged pages\n"
    stats.Enclave.ecalls stats.Enclave.ocalls stats.Enclave.dyn_pages;
  Urts.destroy enclave;
  print_endline "quickstart done."
