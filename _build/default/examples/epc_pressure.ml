(* EPC overcommit in action: an enclave whose working set is three times
   the enclave page cache.  RustMonitor seals victim pages out to the
   untrusted disk (EWB-style) and reloads + verifies them on the next
   fault; the operator sees only ciphertext, and a tampered blob is
   refused.

   Run with: dune exec examples/epc_pressure.exe *)

open Hyperenclave

let () =
  (* A deliberately tiny platform: 2 MB of EPC (512 frames). *)
  let p = Platform.create ~seed:71L ~phys_mb:134 ~os_mb:128 ~monitor_mb:4 () in
  let pages = 1500 in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:{ (Urts.default_config Sgx_types.GU) with Urts.elrange_pages = 4096 }
      ~ecalls:
        [
          ( 1,
            fun (tenv : Tenv.t) _ ->
              let base = tenv.Tenv.malloc (pages * 4096) in
              for i = 0 to pages - 1 do
                tenv.Tenv.write ~va:(base + (i * 4096))
                  (Bytes.of_string (Printf.sprintf "record %04d" i))
              done;
              (* Re-read everything: early pages were evicted meanwhile. *)
              let intact = ref 0 in
              for i = 0 to pages - 1 do
                if
                  Bytes.to_string (tenv.Tenv.read ~va:(base + (i * 4096)) ~len:11)
                  = Printf.sprintf "record %04d" i
                then incr intact
              done;
              Bytes.of_string (string_of_int !intact) );
        ]
      ~ocalls:[]
  in
  let intact, cycles =
    Cycles.time p.Platform.clock (fun () ->
        Urts.ecall handle ~id:1 ~direction:Edge.Out ())
  in
  Printf.printf
    "working set: %d pages (%.1f MB) against a %d-frame EPC\n" pages
    (float_of_int (pages * 4) /. 1024.0)
    (Epc.nframes (Monitor.epc p.Platform.monitor));
  Printf.printf "pages intact after the storm: %s / %d\n"
    (Bytes.to_string intact) pages;
  Printf.printf "monitor evictions (EWB analogue): %d, %d cycles end-to-end\n"
    (Monitor.epc_swap_count p.Platform.monitor)
    cycles;
  (* What the operator actually possesses: sealed blobs. *)
  let enclave = Urts.enclave handle in
  let a_blob = ref None in
  for vpn = 0x1_0000_0000 / 4096 to (0x1_0000_0000 / 4096) + 4096 do
    if !a_blob = None then
      a_blob :=
        Kernel.disk_load p.Platform.kernel
          ~key:(Printf.sprintf "heswap:%d:%x" enclave.Enclave.id vpn)
  done;
  (match !a_blob with
  | Some blob ->
      Printf.printf
        "a swapped page on the untrusted disk is %d bytes of ciphertext \
         (no plaintext 'record' marker inside: %b)\n"
        (Bytes.length blob)
        (let s = Bytes.to_string blob in
         let rec plaintext_free i =
           if i + 6 > String.length s then true
           else if String.sub s i 6 = "record" then false
           else plaintext_free (i + 1)
         in
         plaintext_free 0)
  | None -> print_endline "no blob found (unexpected)");
  Urts.destroy handle;
  print_endline "epc_pressure done."
