(* P-Enclave in action: a write-barrier garbage collector that manages
   page permissions and handles its own page faults entirely inside the
   enclave (Sec. 4.3), compared against a GU-Enclave doing the same work
   through RustMonitor hypercalls.

   This is the paper's Table 2 #PF scenario, packaged as the use case that
   motivates it: a card-marking GC revokes write access to old-generation
   pages and lets the fault handler record which pages got dirtied.

   Run with: dune exec examples/gc_in_enclave.exe *)

open Hyperenclave

let pages = 16

let gc_workload mode =
  let dirtied = ref [] in
  let cycles = ref 0 in
  let handler (tenv : Tenv.t) _input =
    let heap = tenv.Tenv.malloc (pages * 4096) in
    (* Commit the old generation. *)
    for i = 0 to pages - 1 do
      tenv.Tenv.write ~va:(heap + (i * 4096)) (Bytes.of_string "obj")
    done;
    (* The write barrier: on #PF, log the page and re-open it. *)
    tenv.Tenv.register_exception_handler ~vector:"#PF" (fun vector ->
        match vector with
        | Sgx_types.Pf { va; write = true } ->
            dirtied := (va / 4096) :: !dirtied;
            tenv.Tenv.set_page_perms ~vpn:(va / 4096) ~perms:Page_table.rw
              ~grant:true;
            true
        | _ -> false);
    (* GC cycle: protect the old generation... *)
    for i = 0 to pages - 1 do
      tenv.Tenv.set_page_perms ~vpn:((heap / 4096) + i) ~perms:Page_table.ro
        ~grant:false
    done;
    (* ...then the mutator writes into a few pages; each first write
       faults, is logged, and proceeds. *)
    let _, c =
      Cycles.time tenv.Tenv.clock (fun () ->
          List.iter
            (fun i ->
              tenv.Tenv.write ~va:(heap + (i * 4096) + 128)
                (Bytes.of_string "mutated"))
            [ 2; 5; 5; 11 ] (* page 5 written twice: one fault only *))
    in
    cycles := c;
    Bytes.empty
  in
  let p = Platform.create ~seed:31L () in
  let enclave =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls:[ (1, handler) ]
      ~ocalls:[]
  in
  ignore (Urts.ecall enclave ~id:1 ~direction:Edge.In ());
  let stats = Urts.stats enclave in
  Urts.destroy enclave;
  (List.sort_uniq compare !dirtied, !cycles, stats)

let () =
  List.iter
    (fun mode ->
      let dirtied, cycles, stats = gc_workload mode in
      Printf.printf
        "%-11s: %d dirty pages found, mutator phase %6d cycles, %d faults, \
         %d handled in-enclave\n"
        (Sgx_types.mode_name mode)
        (List.length dirtied) cycles stats.Enclave.page_faults
        stats.Enclave.in_enclave_exceptions)
    [ Sgx_types.GU; Sgx_types.P ];
  print_endline
    "P-Enclave handles the faults on its own IDT and rewrites its own\n\
     level-1 page table: no world switch, which is why its mutator phase\n\
     is ~2x faster (Table 2's #PF row).";
  print_endline "gc_in_enclave done."
