(* A "legacy" POSIX application running unmodified inside the enclave on
   the library OS (the Occlum port of Sec. 3.4/5.3): a log analyzer that
   writes files, reads them back, and ships a summary over a socket.

   The takeaway printed at the end is the libOS value proposition: dozens
   of syscalls, of which only the socket I/O ever leaves the enclave.

   Run with: dune exec examples/libos_app.exe *)

open Hyperenclave

let analyzer (tenv : Tenv.t) _input =
  let os = Libos.create tenv () in
  (* Write the application's config and a day of "logs". *)
  let conf = Libos.openf os ~path:"/etc/analyzer.conf" [ Libos.O_creat; Libos.O_rdwr ] in
  ignore (Libos.write os conf (Bytes.of_string "threshold=3\npattern=ERROR\n"));
  Libos.close os conf;
  let log = Libos.openf os ~path:"/var/log/app.log" [ Libos.O_creat; Libos.O_rdwr ] in
  for hour = 0 to 23 do
    let line =
      Printf.sprintf "%02d:00 %s request served\n" hour
        (if hour mod 7 = 3 then "ERROR" else "INFO")
    in
    ignore (Libos.write os log (Bytes.of_string line))
  done;
  Libos.close os log;
  (* Re-open and scan for the configured pattern. *)
  let log = Libos.openf os ~path:"/var/log/app.log" [ Libos.O_rdonly ] in
  let contents = Bytes.to_string (Libos.read os log ~len:8192) in
  Libos.close os log;
  let errors =
    List.length
      (List.filter
         (fun line ->
           String.length line > 0
           && Option.is_some
                (String.index_opt line 'E')
           && String.length line >= 11
           && String.sub line 6 5 = "ERROR")
         (String.split_on_char '\n' contents))
  in
  tenv.Tenv.compute (String.length contents * 4);
  (* Ship the report: the only syscalls that genuinely exit. *)
  let sock = Libos.socket os in
  let report = Printf.sprintf "daily-report errors=%d files=%d" errors 2 in
  ignore (Libos.send os sock (Bytes.of_string report));
  let stats = Libos.stats os in
  Bytes.of_string
    (Printf.sprintf "%d:%d:%d" errors stats.Libos.in_enclave
       stats.Libos.forwarded)

let run_on mode =
  let p = Platform.create ~seed:61L () in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls:[ (1, analyzer) ]
      ~ocalls:
        [ (900, fun data -> Bytes.of_string (string_of_int (Bytes.length data))) ]
  in
  let reply, cycles =
    Cycles.time p.Platform.clock (fun () ->
        Urts.ecall handle ~id:1 ~direction:Edge.Out ())
  in
  Urts.destroy handle;
  match String.split_on_char ':' (Bytes.to_string reply) with
  | [ errors; inside; forwarded ] ->
      Printf.printf
        "%-11s: %s ERROR lines found; %s syscalls served in-enclave, %s \
         forwarded to the host; %d cycles end-to-end\n"
        (Sgx_types.mode_name mode) errors inside forwarded cycles
  | _ -> failwith "unexpected reply"

let () =
  List.iter run_on [ Sgx_types.GU; Sgx_types.HU ];
  print_endline
    "Every file/time/pid syscall stayed inside the enclave (zero world\n\
     switches); only the socket send crossed — which is why I/O-heavy\n\
     legacy applications are ported via a libOS (Sec. 3.4).";
  print_endline "libos_app done."
