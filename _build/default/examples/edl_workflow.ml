(* The canonical SDK workflow (Sec. 3.4/5.3): declare the enclave
   interface in EDL, implement the trusted functions, and let the
   (modified-Edger8r-style) shims drive every marshalling-buffer copy
   from the declared [in]/[out] attributes.

   Run with: dune exec examples/edl_workflow.exe *)

open Hyperenclave

let interface =
  {|
  enclave {
      trusted {
          // counters live inside the enclave; names come in, totals go out
          public void count([in, size=len] uint8_t* name, size_t len);
          public void report([out, size=len] uint8_t* buf, size_t len);
      };
      untrusted {
          void ocall_audit([in, string] char* line);
      };
  };
|}

let () =
  let p = Platform.create ~seed:81L () in
  let counts : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let audit_log = ref [] in
  let app =
    match
      Edl_app.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
        ~rng:p.Platform.rng ~signer:p.Platform.signer ~edl:interface
        ~trusted:
          [
            ( "count",
              fun ~ocall (_ : Tenv.t) name ->
                let name = Bytes.to_string name in
                Hashtbl.replace counts name
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts name));
                ignore
                  (ocall ~name:"ocall_audit"
                     ~data:(Bytes.of_string ("counted " ^ name))
                     ());
                Bytes.empty );
            ( "report",
              fun ~ocall:_ _ _ ->
                Bytes.of_string
                  (String.concat ", "
                     (List.sort compare
                        (Hashtbl.fold
                           (fun k v acc -> Printf.sprintf "%s=%d" k v :: acc)
                           counts [])))
            );
          ]
        ~untrusted:
          [
            ( "ocall_audit",
              fun line ->
                audit_log := Bytes.to_string line :: !audit_log;
                Bytes.empty );
          ]
        ()
    with
    | Result.Ok app -> app
    | Result.Error e -> failwith e
  in
  print_endline "generated interface header:";
  print_endline (Edl.generate_header (Edl_app.interface app));
  List.iter
    (fun name -> ignore (Edl_app.call app ~name:"count" ~data:(Bytes.of_string name) ()))
    [ "apples"; "pears"; "apples"; "apples" ];
  Printf.printf "\nreport: %s\n"
    (Bytes.to_string (Edl_app.call app ~name:"report" ()));
  Printf.printf "untrusted audit saw %d lines\n" (List.length !audit_log);
  (* The interface is the contract: calls outside it are refused. *)
  (try ignore (Edl_app.call app ~name:"dump_keys" ())
   with Invalid_argument m -> Printf.printf "rejected: %s\n" m);
  Edl_app.destroy app;
  print_endline "edl_workflow done."
