examples/private_kv.ml: Bytes Edge Hashtbl Hyperenclave Kernel List Option Platform Printf Sgx_types Sha256 String Tenv Urts
