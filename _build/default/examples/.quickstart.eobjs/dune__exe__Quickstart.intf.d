examples/quickstart.mli:
