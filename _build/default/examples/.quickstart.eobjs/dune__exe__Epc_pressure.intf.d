examples/epc_pressure.mli:
