examples/epc_pressure.ml: Bytes Cycles Edge Enclave Epc Hyperenclave Kernel Monitor Platform Printf Sgx_types String Tenv Urts
