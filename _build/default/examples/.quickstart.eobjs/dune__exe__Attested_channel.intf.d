examples/attested_channel.mli:
