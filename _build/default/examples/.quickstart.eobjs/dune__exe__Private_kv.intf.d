examples/private_kv.mli:
