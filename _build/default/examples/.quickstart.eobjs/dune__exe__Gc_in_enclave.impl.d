examples/gc_in_enclave.ml: Bytes Cycles Edge Enclave Hyperenclave List Page_table Platform Printf Sgx_types Tenv Urts
