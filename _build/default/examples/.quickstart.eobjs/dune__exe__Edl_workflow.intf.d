examples/edl_workflow.mli:
