examples/attested_channel.ml: Bytes Edge Format Hyperenclave List Monitor Platform Printf Sgx_types Sha256 String Tenv Tpm Urts Verifier
