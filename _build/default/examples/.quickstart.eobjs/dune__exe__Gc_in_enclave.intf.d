examples/gc_in_enclave.mli:
