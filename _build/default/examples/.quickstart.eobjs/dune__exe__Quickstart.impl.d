examples/quickstart.ml: Bytes Cycles Edge Enclave Hyperenclave List Monitor Platform Printf Sgx_types Sha256 Tenv Urts
