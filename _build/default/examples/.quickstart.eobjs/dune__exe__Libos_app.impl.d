examples/libos_app.ml: Bytes Cycles Edge Hyperenclave Libos List Option Platform Printf Sgx_types String Tenv Urts
