examples/edl_workflow.ml: Bytes Edl Edl_app Hashtbl Hyperenclave List Option Platform Printf Result String Tenv
