examples/libos_app.mli:
