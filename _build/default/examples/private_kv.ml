(* Privacy-preserving key-value service — the FinTech-style workload the
   paper's deployment motivates (Sec. 1: "deployed the system in a
   world-leading FinTech company to support real-world privacy-preserving
   computations").

   A client's records are processed only inside the enclave.  The state
   is sealed to the enclave identity between runs, so even the operator
   holding the disk sees ciphertext; a restarted enclave with the same
   MRENCLAVE recovers it, a different enclave cannot.

   Run with: dune exec examples/private_kv.exe *)

open Hyperenclave

(* Protocol: ECALL 1 "put k=v", ECALL 2 "get k", ECALL 3 "export" (returns
   the sealed store), ECALL 4 "import" (loads a sealed store). *)
let service () =
  let store : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let encode () =
    String.concat "\n"
      (Hashtbl.fold (fun k v acc -> (k ^ "=" ^ v) :: acc) store [])
  in
  let decode s =
    Hashtbl.reset store;
    List.iter
      (fun line ->
        match String.index_opt line '=' with
        | Some i ->
            Hashtbl.replace store
              (String.sub line 0 i)
              (String.sub line (i + 1) (String.length line - i - 1))
        | None -> ())
      (String.split_on_char '\n' s)
  in
  [
    ( 1,
      fun (tenv : Tenv.t) input ->
        tenv.Tenv.compute 2_000;
        (match String.index_opt (Bytes.to_string input) '=' with
        | Some i ->
            let s = Bytes.to_string input in
            Hashtbl.replace store (String.sub s 0 i)
              (String.sub s (i + 1) (String.length s - i - 1))
        | None -> failwith "bad put");
        Bytes.of_string "ok" );
    ( 2,
      fun (tenv : Tenv.t) key ->
        tenv.Tenv.compute 1_000;
        match Hashtbl.find_opt store (Bytes.to_string key) with
        | Some v -> Bytes.of_string v
        | None -> Bytes.of_string "<absent>" );
    (3, fun (tenv : Tenv.t) _ -> tenv.Tenv.seal (Bytes.of_string (encode ())));
    ( 4,
      fun (tenv : Tenv.t) blob ->
        decode (Bytes.to_string (tenv.Tenv.unseal blob));
        Bytes.of_string (string_of_int (Hashtbl.length store)) );
  ]

let make_enclave p ~code_seed =
  Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
    ~signer:p.Platform.signer
    ~config:{ (Urts.default_config Sgx_types.GU) with Urts.code_seed }
    ~ecalls:(service ()) ~ocalls:[]

let call enclave id data =
  Bytes.to_string
    (Urts.ecall enclave ~id ~data:(Bytes.of_string data) ~direction:Edge.In_out ())

let () =
  let p = Platform.create ~seed:21L () in
  let service_v1 = make_enclave p ~code_seed:"private-kv-v1" in
  Printf.printf "service enclave: %s\n"
    (Sha256.to_hex (Urts.mrenclave service_v1));

  (* Client session: sensitive records go in, an answer comes out. *)
  ignore (call service_v1 1 "alice.balance=1200");
  ignore (call service_v1 1 "bob.balance=7400");
  Printf.printf "get alice.balance -> %s\n" (call service_v1 2 "alice.balance");

  (* Operator persists the sealed state; it is ciphertext to them. *)
  let sealed =
    Urts.ecall service_v1 ~id:3 ~direction:Edge.Out ()
  in
  Kernel.disk_store p.Platform.kernel ~key:"kv.sealed" sealed;
  Printf.printf "sealed store: %d bytes on untrusted disk\n" (Bytes.length sealed);
  Urts.destroy service_v1;

  (* Service restarts (same code identity): state comes back. *)
  let service_again = make_enclave p ~code_seed:"private-kv-v1" in
  let blob = Option.get (Kernel.disk_load p.Platform.kernel ~key:"kv.sealed") in
  let n =
    Bytes.to_string
      (Urts.ecall service_again ~id:4 ~data:blob ~direction:Edge.In_out ())
  in
  Printf.printf "restarted service imported %s records; bob.balance -> %s\n" n
    (call service_again 2 "bob.balance");
  Urts.destroy service_again;

  (* A different (e.g. trojaned) build cannot unseal the customer data. *)
  let impostor = make_enclave p ~code_seed:"private-kv-TROJAN" in
  (try
     ignore (Urts.ecall impostor ~id:4 ~data:blob ~direction:Edge.In_out ());
     print_endline "BUG: impostor read the data!"
   with _ -> print_endline "impostor enclave failed to unseal (as it must)");
  Urts.destroy impostor;
  print_endline "private_kv done."
