(* The unified backend layer and the memory-system simulator. *)

open Hyperenclave

let echo_handlers =
  [
    ( 1,
      fun (env : Backend.env) input ->
        env.Backend.compute 100;
        Bytes.map Char.uppercase_ascii input );
  ]

let test_platform_determinism () =
  let a = Platform.create ~seed:123L () in
  let b = Platform.create ~seed:123L () in
  Alcotest.(check bool)
    "same seed, same hapk" true
    (Bytes.equal (Monitor.hapk a.Platform.monitor) (Monitor.hapk b.Platform.monitor));
  let c = Platform.create ~seed:124L () in
  Alcotest.(check bool)
    "different seed, different hapk" false
    (Bytes.equal (Monitor.hapk a.Platform.monitor) (Monitor.hapk c.Platform.monitor))

let test_backends_agree_on_results () =
  (* The same handler must produce identical outputs on every backend —
     only the cycle accounting differs. *)
  let native =
    Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:1L) ~handlers:echo_handlers ~ocalls:[]
  in
  let sgx =
    Backend.sgx ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:2L) ~handlers:echo_handlers ~ocalls:[] ()
  in
  let p = Platform.create ~seed:5000L () in
  let results =
    List.map
      (fun (backend : Backend.t) ->
        let r =
          backend.Backend.call ~id:1 ~data:(Bytes.of_string "same input")
            ~direction:Edge.In_out ()
        in
        backend.Backend.destroy ();
        Bytes.to_string r)
      (native :: sgx
      :: List.map
           (fun mode ->
             Backend.hyperenclave p ~mode ~handlers:echo_handlers ~ocalls:[] ())
           Sgx_types.all_modes)
  in
  List.iter (fun r -> Alcotest.(check string) "identical output" "SAME INPUT" r) results

let test_backend_cost_ordering () =
  (* Empty calls: native < HU < GU < SGX. *)
  let cost_of (backend : Backend.t) =
    let _, c =
      Cycles.time backend.Backend.clock (fun () ->
          backend.Backend.call ~id:1 ~direction:Edge.In ())
    in
    backend.Backend.destroy ();
    c
  in
  let native =
    cost_of
      (Backend.native ~clock:(Cycles.create ()) ~cost:Cost_model.default
         ~rng:(Rng.create ~seed:1L) ~handlers:echo_handlers ~ocalls:[])
  in
  let p = Platform.create ~seed:5001L () in
  let hu = cost_of (Backend.hyperenclave p ~mode:Sgx_types.HU ~handlers:echo_handlers ~ocalls:[] ()) in
  let gu = cost_of (Backend.hyperenclave p ~mode:Sgx_types.GU ~handlers:echo_handlers ~ocalls:[] ()) in
  let sgx =
    cost_of
      (Backend.sgx ~clock:(Cycles.create ()) ~cost:Cost_model.default
         ~rng:(Rng.create ~seed:2L) ~handlers:echo_handlers ~ocalls:[] ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "native(%d) < HU(%d) < GU(%d) < SGX(%d)" native hu gu sgx)
    true
    (native < hu && hu < gu && gu < sgx)

let mem_fixture engine =
  Mem_sim.create ~clock:(Cycles.create ()) ~cost:Cost_model.default
    ~rng:(Rng.create ~seed:3L) ~engine ()

let test_mem_sim_llc_knee () =
  let sim = mem_fixture Hw.Mem_crypto.Plain in
  let small = Mem_sim.avg_access_cycles sim ~pattern:`Seq ~working_set:(1 lsl 20) in
  let large = Mem_sim.avg_access_cycles sim ~pattern:`Seq ~working_set:(32 lsl 20) in
  Alcotest.(check bool)
    (Printf.sprintf "in-LLC (%f) cheaper than DRAM (%f)" small large)
    true (small < large);
  Alcotest.(check bool)
    "in-LLC ~= hit cost" true
    (small < float_of_int (2 * Cost_model.default.Cost_model.cache_hit))

let test_mem_sim_engine_ordering () =
  let ws = 32 lsl 20 in
  let lat engine = Mem_sim.avg_access_cycles (mem_fixture engine) ~pattern:`Random ~working_set:ws in
  let plain = lat Hw.Mem_crypto.Plain in
  let sme = lat Hw.Mem_crypto.Sme in
  let mee = lat (Hw.Mem_crypto.Mee { epc_bytes = Platform.sgx_epc_bytes }) in
  Alcotest.(check bool)
    (Printf.sprintf "plain(%f) < sme(%f) < mee(%f)" plain sme mee)
    true
    (plain < sme && sme < mee)

let test_mem_sim_epc_cliff () =
  let epc = 4 lsl 20 in
  let sim = mem_fixture (Hw.Mem_crypto.Mee { epc_bytes = epc }) in
  let inside = Mem_sim.avg_access_cycles sim ~pattern:`Random ~working_set:(2 lsl 20) in
  let outside = Mem_sim.avg_access_cycles sim ~pattern:`Random ~working_set:(16 lsl 20) in
  Alcotest.(check bool)
    (Printf.sprintf "EPC cliff: %f >> %f" outside inside)
    true
    (outside > 10.0 *. inside)

let test_mem_sim_swaps_counted () =
  let sim = mem_fixture (Hw.Mem_crypto.Mee { epc_bytes = 16 * 4096 }) in
  Mem_sim.seq_scan sim ~base:0 ~bytes:(64 * 4096) ~write:false;
  Mem_sim.seq_scan sim ~base:0 ~bytes:(64 * 4096) ~write:false;
  Alcotest.(check bool) "swaps recorded" true (Mem_sim.swaps sim > 0)

let test_mem_sim_tlb_translation_cost () =
  let lat translation =
    let sim =
      Mem_sim.create ~clock:(Cycles.create ()) ~cost:Cost_model.default
        ~rng:(Rng.create ~seed:4L) ~engine:Hw.Mem_crypto.Plain ~translation ()
    in
    (* Touch many distinct pages with a cold TLB. *)
    let clock_before = Mem_sim.swaps sim in
    ignore clock_before;
    let c = Cycles.create () in
    let sim2 =
      Mem_sim.create ~clock:c ~cost:Cost_model.default
        ~rng:(Rng.create ~seed:4L) ~engine:Hw.Mem_crypto.Plain ~translation ()
    in
    for i = 0 to 99 do
      Mem_sim.touch_bytes sim2 ~addr:(i * 4096) ~len:8 ~write:false
    done;
    Cycles.now c
  in
  Alcotest.(check bool)
    "nested walks cost more" true
    (lat Mem_sim.Nested > lat Mem_sim.One_level)

let suite =
  [
    Alcotest.test_case "platform determinism" `Quick test_platform_determinism;
    Alcotest.test_case "backends agree on results" `Quick
      test_backends_agree_on_results;
    Alcotest.test_case "backend cost ordering" `Quick test_backend_cost_ordering;
    Alcotest.test_case "mem_sim LLC knee" `Quick test_mem_sim_llc_knee;
    Alcotest.test_case "mem_sim engine ordering" `Quick test_mem_sim_engine_ordering;
    Alcotest.test_case "mem_sim EPC cliff" `Quick test_mem_sim_epc_cliff;
    Alcotest.test_case "mem_sim swap counting" `Quick test_mem_sim_swaps_counted;
    Alcotest.test_case "mem_sim translation cost" `Quick
      test_mem_sim_tlb_translation_cost;
  ]
