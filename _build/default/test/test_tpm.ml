(* TPM semantics: PCR monotonicity, quote chains, sealing policy. *)

open Hyperenclave
module Tpm = Hyperenclave.Tpm
module Pcr = Hyperenclave.Pcr

let fixture () =
  let clock = Cycles.create () in
  Tpm.manufacture ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:1L)

let test_pcr_extend_order () =
  let bank = Pcr.create () in
  let zero = Pcr.read bank ~index:0 in
  Alcotest.(check bool) "starts zero" true (Bytes.equal zero (Bytes.make 32 '\000'));
  Pcr.extend bank ~index:0 (Bytes.of_string "a");
  Pcr.extend bank ~index:0 (Bytes.of_string "b");
  let ab = Pcr.read bank ~index:0 in
  let bank2 = Pcr.create () in
  Pcr.extend bank2 ~index:0 (Bytes.of_string "b");
  Pcr.extend bank2 ~index:0 (Bytes.of_string "a");
  Alcotest.(check bool)
    "extend order matters" false
    (Pcr.equal_value ab (Pcr.read bank2 ~index:0));
  Pcr.reset bank;
  Alcotest.(check bool)
    "reset returns to zero" true
    (Bytes.equal (Pcr.read bank ~index:0) (Bytes.make 32 '\000'));
  Alcotest.check_raises "range check" (Invalid_argument "Pcr: index 24 out of range")
    (fun () -> ignore (Pcr.read bank ~index:24))

let test_selection_digest () =
  let bank = Pcr.create () in
  Pcr.extend bank ~index:0 (Bytes.of_string "x");
  Pcr.extend bank ~index:1 (Bytes.of_string "y");
  let d01 = Pcr.selection_digest bank ~indices:[ 0; 1 ] in
  let d10 = Pcr.selection_digest bank ~indices:[ 1; 0 ] in
  Alcotest.(check bool) "selection order matters" false (Pcr.equal_value d01 d10)

let test_quote_chain () =
  let tpm = fixture () in
  Tpm.pcr_extend tpm ~index:0 (Bytes.of_string "firmware");
  let nonce = Bytes.of_string "challenge-123" in
  let quote = Tpm.quote tpm ~nonce ~pcr_selection:[ 0; 1 ] in
  Alcotest.(check bool)
    "verifies against its EK" true
    (Tpm.verify_quote quote ~expected_ek:(Tpm.ek_public tpm));
  let other =
    Tpm.manufacture ~clock:(Cycles.create ()) ~cost:Cost_model.default
      ~rng:(Rng.create ~seed:77L)
  in
  Alcotest.(check bool)
    "fails against another TPM's EK" false
    (Tpm.verify_quote quote ~expected_ek:(Tpm.ek_public other));
  let forged = { quote with Tpm.pcr_digest = Bytes.make 32 'f' } in
  Alcotest.(check bool)
    "forged digest fails" false
    (Tpm.verify_quote forged ~expected_ek:(Tpm.ek_public tpm))

let test_quote_reflects_boot_tampering () =
  let run image =
    let tpm = fixture () in
    Tpm.pcr_extend tpm ~index:0 (Bytes.of_string image);
    (Tpm.quote tpm ~nonce:(Bytes.of_string "n") ~pcr_selection:[ 0 ]).Tpm.pcr_digest
  in
  Alcotest.(check bool)
    "tampered image changes quote" false
    (Bytes.equal (run "good-bios") (run "evil-bios"))

let test_seal_policy () =
  let tpm = fixture () in
  Tpm.pcr_extend tpm ~index:3 (Bytes.of_string "kernel");
  let blob = Tpm.seal tpm ~pcr_selection:[ 3 ] (Bytes.of_string "K_root") in
  Alcotest.(check string)
    "unseal on same state" "K_root"
    (Bytes.to_string (Tpm.unseal tpm blob));
  (* Any further extend of a policy PCR kills unsealing - the flooding
     defence of Sec. 3.3. *)
  Tpm.pcr_extend tpm ~index:3 (Bytes.of_string "flood");
  (try
     ignore (Tpm.unseal tpm blob);
     Alcotest.fail "expected Unseal_failed after PCR change"
   with Tpm.Unseal_failed _ -> ())

let test_seal_wrong_chip () =
  let tpm = fixture () in
  let blob = Tpm.seal tpm ~pcr_selection:[ 0 ] (Bytes.of_string "secret") in
  let clock = Cycles.create () in
  let other =
    Tpm.manufacture ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:2L)
  in
  try
    ignore (Tpm.unseal other blob);
    Alcotest.fail "expected Unseal_failed on another chip"
  with Tpm.Unseal_failed _ -> ()

let test_seal_survives_reboot () =
  let tpm = fixture () in
  (* Boot chain, seal, reboot with identical chain: unseal must work. *)
  Tpm.pcr_extend tpm ~index:0 (Bytes.of_string "bios");
  let blob = Tpm.seal tpm ~pcr_selection:[ 0 ] (Bytes.of_string "persistent") in
  Tpm.startup tpm;
  Tpm.pcr_extend tpm ~index:0 (Bytes.of_string "bios");
  Alcotest.(check string)
    "unseal after identical reboot" "persistent"
    (Bytes.to_string (Tpm.unseal tpm blob));
  (* Reboot with a modified chain: policy mismatch. *)
  Tpm.startup tpm;
  Tpm.pcr_extend tpm ~index:0 (Bytes.of_string "evil-bios");
  try
    ignore (Tpm.unseal tpm blob);
    Alcotest.fail "expected Unseal_failed after boot tampering"
  with Tpm.Unseal_failed _ -> ()

let test_random_and_cycles () =
  let clock = Cycles.create () in
  let tpm =
    Tpm.manufacture ~clock ~cost:Cost_model.default ~rng:(Rng.create ~seed:4L)
  in
  let before = Cycles.now clock in
  let r1 = Tpm.random tpm 32 in
  let r2 = Tpm.random tpm 32 in
  Alcotest.(check int) "requested size" 32 (Bytes.length r1);
  Alcotest.(check bool) "successive randoms differ" false (Bytes.equal r1 r2);
  Alcotest.(check bool)
    "TPM commands cost cycles" true
    (Cycles.now clock - before >= 2 * Cost_model.default.Cost_model.tpm_command)

let test_monotonic_counters () =
  let tpm = fixture () in
  Tpm.counter_create tpm ~name:"c";
  Alcotest.(check int) "starts at zero" 0 (Tpm.counter_read tpm ~name:"c");
  Alcotest.(check int) "increments" 1 (Tpm.counter_increment tpm ~name:"c");
  Alcotest.(check int) "again" 2 (Tpm.counter_increment tpm ~name:"c");
  Tpm.counter_create tpm ~name:"c" (* idempotent: no reset *);
  Alcotest.(check int) "create does not reset" 2 (Tpm.counter_read tpm ~name:"c");
  Tpm.startup tpm;
  Alcotest.(check int) "survives reboot" 2 (Tpm.counter_read tpm ~name:"c");
  Alcotest.check_raises "unknown counter" Not_found (fun () ->
      ignore (Tpm.counter_read tpm ~name:"missing"))

let suite =
  [
    Alcotest.test_case "monotonic counters" `Quick test_monotonic_counters;
    Alcotest.test_case "pcr extend order" `Quick test_pcr_extend_order;
    Alcotest.test_case "selection digest" `Quick test_selection_digest;
    Alcotest.test_case "quote chain" `Quick test_quote_chain;
    Alcotest.test_case "quote reflects tampering" `Quick
      test_quote_reflects_boot_tampering;
    Alcotest.test_case "seal policy" `Quick test_seal_policy;
    Alcotest.test_case "seal wrong chip" `Quick test_seal_wrong_chip;
    Alcotest.test_case "seal across reboot" `Quick test_seal_survives_reboot;
    Alcotest.test_case "random + command cost" `Quick test_random_and_cycles;
  ]
