(* The EDL front end (Edger8r analogue) and the interface-enforced
   application wrapper. *)

open Hyperenclave

let sample_edl =
  {|
  // storage service interface
  enclave {
      trusted {
          public void store_record([in, size=len] uint8_t* buf, size_t len);
          public void load_record([out, size=len] uint8_t* buf, size_t len);
          public void transform([in, out, size=len] uint8_t* buf, size_t len);
          public void ping(void);
      };
      untrusted {
          void ocall_log([in, string] char* msg);
      };
  };
|}

let parse_ok src =
  match Edl.parse src with
  | Result.Ok i -> i
  | Result.Error e -> Alcotest.failf "parse failed: %s" e

let test_parse () =
  let i = parse_ok sample_edl in
  Alcotest.(check int) "four trusted" 4 (List.length i.Edl.trusted);
  Alcotest.(check int) "one untrusted" 1 (List.length i.Edl.untrusted);
  let dir name =
    (Option.get (Edl.find_trusted i ~name)).Edl.direction
  in
  Alcotest.(check string) "in" "in" (Edge.direction_name (dir "store_record"));
  Alcotest.(check string) "out" "out" (Edge.direction_name (dir "load_record"));
  Alcotest.(check string) "in&out" "in&out" (Edge.direction_name (dir "transform"));
  Alcotest.(check bool)
    "void takes no buffer" false
    (Option.get (Edl.find_trusted i ~name:"ping")).Edl.takes_buffer;
  (* ids are unique and assigned across both sections *)
  let ids =
    List.map (fun f -> f.Edl.id) (i.Edl.trusted @ i.Edl.untrusted)
  in
  Alcotest.(check int) "unique ids" 5 (List.length (List.sort_uniq compare ids));
  Alcotest.(check bool)
    "header mentions every function" true
    (let header = Edl.generate_header i in
     List.for_all
       (fun f ->
         let rec contains i =
           i + String.length f.Edl.name <= String.length header
           && (String.sub header i (String.length f.Edl.name) = f.Edl.name
              || contains (i + 1))
         in
         contains 0)
       i.Edl.trusted)

let expect_parse_error name src =
  match Edl.parse src with
  | Result.Ok _ -> Alcotest.failf "%s: malformed EDL accepted" name
  | Result.Error _ -> ()

let test_parse_errors () =
  expect_parse_error "no enclave" "trusted { public void f(void); };";
  expect_parse_error "no trusted fns" "enclave { trusted { }; };";
  expect_parse_error "missing direction"
    "enclave { trusted { public void f([size=len] uint8_t* b, size_t len); }; };";
  expect_parse_error "missing size"
    "enclave { trusted { public void f([in] uint8_t* b, size_t len); }; };";
  expect_parse_error "user_check with in"
    "enclave { trusted { public void f([in, user_check] uint8_t* b, size_t len); }; };";
  expect_parse_error "duplicate names"
    "enclave { trusted { public void f(void); public void f(void); }; };"

let make_app () =
  let p = Platform.create ~seed:8800L () in
  let store = ref Bytes.empty in
  let logged = ref [] in
  let app =
    Edl_app.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
      ~rng:p.Platform.rng ~signer:p.Platform.signer ~edl:sample_edl
      ~trusted:
        [
          ( "store_record",
            fun ~ocall (_ : Tenv.t) input ->
              ignore (ocall ~name:"ocall_log" ~data:(Bytes.of_string "stored") ());
              store := input;
              Bytes.empty );
          ("load_record", fun ~ocall:_ _ _ -> !store);
          ( "transform",
            fun ~ocall:_ _ input -> Bytes.map Char.uppercase_ascii input );
          ("ping", fun ~ocall:_ _ _ -> Bytes.empty);
        ]
      ~untrusted:[ ("ocall_log", fun msg -> logged := Bytes.to_string msg :: !logged; Bytes.empty) ]
      ()
  in
  match app with
  | Result.Ok app -> (app, store, logged)
  | Result.Error e -> Alcotest.failf "Edl_app.create: %s" e

let test_app_calls () =
  let app, _, logged = make_app () in
  ignore (Edl_app.call app ~name:"store_record" ~data:(Bytes.of_string "payload") ());
  Alcotest.(check (list string)) "ocall by name" [ "stored" ] !logged;
  Alcotest.(check string)
    "out direction returns the record" "payload"
    (Bytes.to_string (Edl_app.call app ~name:"load_record" ()));
  Alcotest.(check string)
    "in&out transforms" "LOUD"
    (Bytes.to_string
       (Edl_app.call app ~name:"transform" ~data:(Bytes.of_string "loud") ()));
  ignore (Edl_app.call app ~name:"ping" ());
  (* Interface enforcement. *)
  Alcotest.check_raises "undeclared ecall"
    (Invalid_argument "undeclared ECALL \"backdoor\"") (fun () ->
      ignore (Edl_app.call app ~name:"backdoor" ()));
  Alcotest.check_raises "void function refuses data"
    (Invalid_argument "\"ping\" takes no buffer") (fun () ->
      ignore (Edl_app.call app ~name:"ping" ~data:(Bytes.of_string "x") ()));
  Edl_app.destroy app

let test_coverage_checks () =
  let p = Platform.create ~seed:8801L () in
  let attempt ~trusted ~untrusted =
    Edl_app.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
      ~rng:p.Platform.rng ~signer:p.Platform.signer ~edl:sample_edl ~trusted
      ~untrusted ()
  in
  let stub = fun ~ocall:_ (_ : Tenv.t) (_ : bytes) -> Bytes.empty in
  (match attempt ~trusted:[ ("ping", stub) ] ~untrusted:[] with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "missing implementations accepted");
  match
    attempt
      ~trusted:
        [
          ("store_record", stub); ("load_record", stub); ("transform", stub);
          ("ping", stub); ("extra", stub);
        ]
      ~untrusted:[ ("ocall_log", fun _ -> Bytes.empty) ]
  with
  | Result.Error _ -> ()
  | Result.Ok _ -> Alcotest.fail "undeclared implementation accepted"

let test_edl_changes_measurement () =
  let app1, _, _ = make_app () in
  let mr1 = Urts.mrenclave (Edl_app.urts app1) in
  Edl_app.destroy app1;
  (* Same bodies, different interface -> different MRENCLAVE. *)
  let p = Platform.create ~seed:8802L () in
  let app2 =
    Edl_app.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc
      ~rng:p.Platform.rng ~signer:p.Platform.signer
      ~edl:"enclave { trusted { public void ping(void); }; };"
      ~trusted:[ ("ping", fun ~ocall:_ _ _ -> Bytes.empty) ]
      ~untrusted:[] ()
  in
  match app2 with
  | Result.Error e -> Alcotest.fail e
  | Result.Ok app2 ->
      Alcotest.(check bool)
        "interface is part of the identity" false
        (Bytes.equal mr1 (Urts.mrenclave (Edl_app.urts app2)));
      Edl_app.destroy app2

let edl_fuzz =
  QCheck.Test.make ~name:"EDL parser total on garbage" ~count:300 QCheck.string
    (fun s -> match Edl.parse s with Result.Ok _ | Result.Error _ -> true | exception _ -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest edl_fuzz;
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "app calls + enforcement" `Quick test_app_calls;
    Alcotest.test_case "coverage checks" `Quick test_coverage_checks;
    Alcotest.test_case "EDL in measurement" `Quick test_edl_changes_measurement;
  ]
