(* The Intel SGX baseline model, including the behaviours HyperEnclave is
   contrasted against: EPC paging, controlled-channel visibility, and the
   SGX1 EDMM restriction. *)

open Hyperenclave
module Sgx_model = Sgx.Sgx_model

let fixture ?(epc_bytes = 64 * 4096) ~ecalls ~ocalls () =
  let clock = Cycles.create () in
  let rng = Rng.create ~seed:11L in
  let platform =
    Sgx_model.create_platform ~clock ~cost:Cost_model.default ~rng ~epc_bytes
  in
  let signer, _ = Crypto.Signature.generate rng in
  let enclave =
    Sgx_model.create_enclave platform ~code_seed:"sgx-test" ~signer ~ecalls
      ~ocalls
  in
  (clock, platform, enclave)

let test_ecall_ocall () =
  let clock, _, enclave =
    fixture
      ~ecalls:
        [
          ( 1,
            fun e input ->
              let reply = Sgx_model.ocall e ~id:9 ~data:input () in
              Bytes.cat reply (Bytes.of_string "!") );
        ]
      ~ocalls:[ (9, fun d -> Bytes.cat (Bytes.of_string "<") d) ]
      ()
  in
  let before = Cycles.now clock in
  let reply = Sgx_model.ecall enclave ~id:1 ~data:(Bytes.of_string "hi") () in
  Alcotest.(check string) "roundtrip" "<hi!" (Bytes.to_string reply);
  let cost = Cycles.now clock - before in
  Alcotest.(check bool)
    "charged at least ECALL+OCALL" true
    (cost
    >= Cost_model.default.Cost_model.sgx_ecall
       + Cost_model.default.Cost_model.sgx_ocall);
  (* Reentrancy and ordering rules. *)
  Alcotest.check_raises "ocall outside enclave"
    (Sgx_model.Sgx_error "ocall: not inside the enclave") (fun () ->
      ignore (Sgx_model.ocall enclave ~id:9 ()))

let test_epc_paging () =
  let _, platform, enclave =
    fixture ~epc_bytes:(8 * 4096) ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[] ()
  in
  for vpn = 0 to 7 do
    Sgx_model.touch_page enclave ~vpn
  done;
  Alcotest.(check int) "EPC filled" 8 (Sgx_model.resident_pages platform);
  Alcotest.(check int) "no swaps yet" 0 (Sgx_model.swap_count platform);
  Sgx_model.touch_page enclave ~vpn:8;
  Alcotest.(check int) "EWB/ELDU pair" 1 (Sgx_model.swap_count platform);
  Alcotest.(check int) "capacity respected" 8 (Sgx_model.resident_pages platform)

let test_controlled_channel () =
  (* The defining SGX weakness (Sec. 6): the OS manages the enclave's page
     tables, so it can unmap a page and observe exactly when the enclave
     touches it. *)
  let _, platform, enclave =
    fixture ~ecalls:[ (1, fun _ _ -> Bytes.empty) ] ~ocalls:[] ()
  in
  Sgx_model.touch_page enclave ~vpn:0x1234;
  Alcotest.(check (list int)) "quiet before probe" []
    (Sgx_model.fault_trace platform);
  Sgx_model.os_unmap_page enclave ~vpn:0x1234;
  Sgx_model.touch_page enclave ~vpn:0x1234;
  Alcotest.(check (list int))
    "the OS observed the secret-dependent access" [ 0x1234 ]
    (Sgx_model.fault_trace platform)

let test_sgx1_no_edmm () =
  let _, _, enclave =
    fixture ~ecalls:[ (1, fun _ _ -> Bytes.empty) ] ~ocalls:[] ()
  in
  try
    Sgx_model.emodpr enclave ~vpn:1;
    Alcotest.fail "expected Unsupported"
  with Sgx_model.Unsupported _ -> ()

let test_exception_two_phase () =
  let _, _, enclave =
    fixture
      ~ecalls:
        [
          ( 1,
            fun e _ ->
              let clock = Sgx_model.clock (Sgx_model.platform_of e) in
              Sgx_model.register_exception_handler e ~vector:"#UD" (fun _ -> true);
              let _, c =
                Cycles.time clock (fun () ->
                    Sgx_model.raise_exception e Sgx_types.Ud)
              in
              Bytes.of_string (string_of_int c) );
        ]
      ~ocalls:[] ()
  in
  let cycles = int_of_string (Bytes.to_string (Sgx_model.ecall enclave ~id:1 ())) in
  (* Table 2's #UD cost: 28,561 on real silicon; the model composes to
     within a few percent. *)
  Alcotest.(check bool)
    (Printf.sprintf "two-phase cost plausible (%d)" cycles)
    true
    (cycles > 25_000 && cycles < 32_000)

let test_sealing () =
  let _, _, enclave =
    fixture
      ~ecalls:[ (1, fun _ _ -> Bytes.empty) ]
      ~ocalls:[] ()
  in
  let blob = Sgx_model.seal enclave (Bytes.of_string "sgx secret") in
  Alcotest.(check string)
    "seal/unseal" "sgx secret"
    (Bytes.to_string (Sgx_model.unseal enclave blob));
  let key_a = Sgx_model.getkey enclave Sgx_types.Seal_key_mrenclave in
  let key_b = Sgx_model.getkey enclave Sgx_types.Seal_key_mrsigner in
  Alcotest.(check bool) "key separation" false (Bytes.equal key_a key_b)

let suite =
  [
    Alcotest.test_case "ecall/ocall" `Quick test_ecall_ocall;
    Alcotest.test_case "EPC paging" `Quick test_epc_paging;
    Alcotest.test_case "controlled channel" `Quick test_controlled_channel;
    Alcotest.test_case "SGX1 EDMM restriction" `Quick test_sgx1_no_edmm;
    Alcotest.test_case "two-phase exception cost" `Quick test_exception_two_phase;
    Alcotest.test_case "sealing" `Quick test_sealing;
  ]
