test/test_sdk.ml: Alcotest Bytes Char Crypto Cycles Edge Enclave Hyperenclave List Monitor Page_table Platform Printf Sgx_types String Tenv Urts
