test/test_tee.ml: Alcotest Backend Bytes Char Cost_model Cycles Edge Hw Hyperenclave List Mem_sim Monitor Platform Printf Rng Sgx_types
