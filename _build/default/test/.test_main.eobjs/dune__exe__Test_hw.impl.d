test/test_hw.ml: Addr Alcotest Array Bytes Cache Cost_model Cycles Format Frame_alloc Hashtbl Hyperenclave Iommu List Mem_crypto Mmu Option Page_table Phys_mem QCheck QCheck_alcotest Rng Test Tlb
