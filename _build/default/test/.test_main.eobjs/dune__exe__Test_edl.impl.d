test/test_edl.ml: Alcotest Bytes Char Edge Edl Edl_app Hyperenclave List Option Platform QCheck QCheck_alcotest Result String Tenv Urts
