test/test_workloads.ml: Alcotest Backend Bytes Cost_model Cycles Edge Gen Hashtbl Hw Hyperenclave List Option Platform Printf QCheck QCheck_alcotest Result Rng String Test
