test/test_tpm.ml: Alcotest Bytes Cost_model Cycles Hyperenclave Rng
