test/test_crypto.ml: Aes Alcotest Authenc Bytes Char Gen Hmac Hyperenclave List QCheck QCheck_alcotest Sha256 Signature String Test
