test/test_main.ml: Alcotest Test_attestation Test_crypto Test_edl Test_fuzz Test_hw Test_libos Test_monitor Test_os Test_sdk Test_sgx Test_tee Test_tpm Test_workloads
