test/test_attestation.ml: Alcotest Bytes Char Cost_model Cycles Enclave Format Hyperenclave List Monitor Platform Quote_wire Result Rng Sgx_types String Tpm Urts Verifier
