test/test_libos.ml: Alcotest Bytes Cycles Edge Hyperenclave Libos List Option Platform Printf Sgx_types Tenv Urts
