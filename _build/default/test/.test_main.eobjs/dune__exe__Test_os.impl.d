test/test_os.ml: Alcotest Boot Bytes Cost_model Cycles Edge Enclave Hashtbl Hyperenclave Kernel Kmod List Mmu Monitor Pcr Platform Printf Process Rng Sgx_types Sha256 Tenv Urts
