test/test_sgx.ml: Alcotest Bytes Cost_model Crypto Cycles Hyperenclave Printf Rng Sgx Sgx_types
