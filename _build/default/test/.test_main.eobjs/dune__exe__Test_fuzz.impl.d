test/test_fuzz.ml: Bytes Char Cycles Edge Hashtbl Hyperenclave Int64 Libos List Platform Printf QCheck QCheck_alcotest Quote_wire Result Sgx_types String Tenv Urts
