(* The library OS: POSIX-ish semantics in-enclave, network forwarding,
   and the in-enclave/forwarded syscall accounting that makes the Occlum
   approach pay off. *)

open Hyperenclave

let with_libos ?(mode = Sgx_types.GU) ?(switchless_net = false) body =
  let p = Platform.create ~seed:7000L () in
  let result = ref None in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config mode)
      ~ecalls:
        [
          ( 1,
            fun tenv _ ->
              let os = Libos.create tenv ~switchless_net () in
              result := Some (body os);
              Bytes.empty );
        ]
      ~ocalls:
        [
          (900, fun data -> Bytes.of_string (string_of_int (Bytes.length data)));
          ( 901,
            fun len ->
              Bytes.make (int_of_string (Bytes.to_string len)) 'r' );
        ]
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle;
  Option.get !result

let test_file_lifecycle () =
  with_libos (fun os ->
      let fd = Libos.openf os ~path:"/data/log.txt" [ Libos.O_creat; Libos.O_rdwr ] in
      Alcotest.(check int) "first write" 5 (Libos.write os fd (Bytes.of_string "hello"));
      Alcotest.(check int) "append-style write" 7 (Libos.write os fd (Bytes.of_string " libos!"));
      ignore (Libos.lseek os fd ~pos:0);
      Alcotest.(check string)
        "read back" "hello libos!"
        (Bytes.to_string (Libos.read os fd ~len:100));
      Alcotest.(check string)
        "read at EOF is empty" ""
        (Bytes.to_string (Libos.read os fd ~len:10));
      ignore (Libos.lseek os fd ~pos:6);
      Alcotest.(check string)
        "seek + partial read" "libos"
        (Bytes.to_string (Libos.read os fd ~len:5));
      Alcotest.(check int) "stat" 12 (Libos.stat_size os ~path:"/data/log.txt");
      Libos.close os fd;
      Alcotest.(check int) "fd table drained" 0 (Libos.open_fds os);
      (* O_TRUNC resets; O_APPEND writes at the end regardless of seeks. *)
      let fd2 = Libos.openf os ~path:"/data/log.txt" [ Libos.O_trunc; Libos.O_append ] in
      ignore (Libos.write os fd2 (Bytes.of_string "a"));
      ignore (Libos.lseek os fd2 ~pos:0);
      ignore (Libos.write os fd2 (Bytes.of_string "b"));
      Alcotest.(check int) "append semantics" 2 (Libos.stat_size os ~path:"/data/log.txt");
      Libos.close os fd2;
      Libos.unlink os ~path:"/data/log.txt";
      (try
         ignore (Libos.stat_size os ~path:"/data/log.txt");
         Alcotest.fail "stat after unlink"
       with Libos.No_such_file _ -> ());
      true)
  |> Alcotest.(check bool) "completed" true

let test_errors () =
  with_libos (fun os ->
      (try
         ignore (Libos.openf os ~path:"/missing" [ Libos.O_rdonly ]);
         Alcotest.fail "open without O_CREAT"
       with Libos.No_such_file _ -> ());
      (try
         ignore (Libos.read os 42 ~len:1);
         Alcotest.fail "bad fd"
       with Libos.Bad_fd 42 -> ());
      let s = Libos.socket os in
      (try
         ignore (Libos.read os s ~len:1);
         Alcotest.fail "file read on socket"
       with Libos.Bad_fd _ -> ());
      true)
  |> Alcotest.(check bool) "completed" true

let test_directory_listing () =
  with_libos (fun os ->
      List.iter
        (fun path -> Libos.close os (Libos.openf os ~path [ Libos.O_creat ]))
        [ "/etc/app.conf"; "/etc/keys.pem"; "/var/run.pid" ];
      Libos.list_dir os ~prefix:"/etc/")
  |> Alcotest.(check (list string)) "prefix listing" [ "/etc/app.conf"; "/etc/keys.pem" ]

let test_network_forwarding_and_stats () =
  let stats =
    with_libos (fun os ->
        let pid = Libos.getpid os in
        Alcotest.(check int) "pid" 1 pid;
        Alcotest.(check bool) "clock ticks" true (Libos.clock_monotonic os > 0);
        let fd = Libos.openf os ~path:"/tmp/x" [ Libos.O_creat; Libos.O_rdwr ] in
        for _ = 1 to 10 do
          ignore (Libos.write os fd (Bytes.of_string "block"))
        done;
        Libos.close os fd;
        let s = Libos.socket os in
        Alcotest.(check int) "send returns count" 4 (Libos.send os s (Bytes.of_string "ping"));
        Alcotest.(check string)
          "recv payload" "rrr"
          (Bytes.to_string (Libos.recv os s ~len:3));
        Libos.stats os)
  in
  (* 10 writes + open/close + socket + send + recv + pid + clock + ... all
     dispatched in-enclave; only the two socket ops actually left. *)
  Alcotest.(check int) "only network forwarded" 2 stats.Libos.forwarded;
  Alcotest.(check bool)
    (Printf.sprintf "most syscalls stayed inside (%d)" stats.Libos.in_enclave)
    true
    (stats.Libos.in_enclave > 15)

let test_exitless_is_cheaper () =
  (* The same file work costs far less than the equivalent number of
     world switches would. *)
  let p = Platform.create ~seed:7001L () in
  let cycles = ref 0 in
  let handle =
    Urts.create ~kmod:p.Platform.kmod ~proc:p.Platform.proc ~rng:p.Platform.rng
      ~signer:p.Platform.signer
      ~config:(Urts.default_config Sgx_types.GU)
      ~ecalls:
        [
          ( 1,
            fun tenv _ ->
              let os = Libos.create tenv () in
              let fd = Libos.openf os ~path:"/f" [ Libos.O_creat; Libos.O_rdwr ] in
              let _, c =
                Cycles.time tenv.Tenv.clock (fun () ->
                    for _ = 1 to 100 do
                      ignore (Libos.write os fd (Bytes.of_string "x"))
                    done)
              in
              cycles := c;
              Bytes.empty );
        ]
      ~ocalls:[]
  in
  ignore (Urts.ecall handle ~id:1 ~direction:Edge.In ());
  Urts.destroy handle;
  let ocall_equivalent = 100 * 4920 in
  Alcotest.(check bool)
    (Printf.sprintf "100 in-enclave writes (%d cyc) << 100 OCALLs (%d cyc)"
       !cycles ocall_equivalent)
    true
    (!cycles * 5 < ocall_equivalent)

let test_switchless_net () =
  let regular =
    with_libos ~switchless_net:false (fun os ->
        let s = Libos.socket os in
        let clock_before = Libos.clock_monotonic os in
        for _ = 1 to 20 do
          ignore (Libos.send os s (Bytes.of_string "chunk"))
        done;
        Libos.clock_monotonic os - clock_before)
  in
  let switchless =
    with_libos ~switchless_net:true (fun os ->
        let s = Libos.socket os in
        let clock_before = Libos.clock_monotonic os in
        for _ = 1 to 20 do
          ignore (Libos.send os s (Bytes.of_string "chunk"))
        done;
        Libos.clock_monotonic os - clock_before)
  in
  Alcotest.(check bool)
    (Printf.sprintf "switchless net (%d) beats regular (%d)" switchless regular)
    true
    (switchless * 2 < regular)

let suite =
  [
    Alcotest.test_case "file lifecycle" `Quick test_file_lifecycle;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "directory listing" `Quick test_directory_listing;
    Alcotest.test_case "network forwarding + stats" `Quick
      test_network_forwarding_and_stats;
    Alcotest.test_case "exitless file I/O is cheap" `Quick test_exitless_is_cheaper;
    Alcotest.test_case "switchless network" `Quick test_switchless_net;
  ]
