(** Library OS for HyperEnclave enclaves — the Occlum stand-in (Sec. 3.4,
    5.3: "we have also ported ... the Occlum library OS to HyperEnclave").

    Legacy applications talk POSIX; a libOS serves most of those syscalls
    {e inside} the enclave (file system, time, pids — no world switch) and
    forwards only what genuinely needs the host (network I/O) through
    OCALLs.  {!stats} exposes the in-enclave/forwarded split, which is the
    whole performance argument: Lighttpd under Occlum exits only for
    sockets.

    Costs: every syscall charges a small in-enclave dispatch
    ({!syscall_dispatch_cost}) plus per-byte copy costs; forwarded calls
    additionally pay the full OCALL path of the enclave's operation
    mode. *)

open Hyperenclave_sdk

type t

type fd_kind = File | Socket

exception Bad_fd of int
exception No_such_file of string

val syscall_dispatch_cost : int
(** In-enclave syscall entry/exit: a function call plus fd-table work
    (~180 cycles), not a world switch. *)

val create :
  Tenv.t ->
  ?net_send_ocall:int ->
  ?net_recv_ocall:int ->
  ?switchless_net:bool ->
  unit ->
  t
(** [net_send_ocall]/[net_recv_ocall] are the registered OCALL ids backing
    socket I/O (defaults 900/901).  [switchless_net] routes them through
    switchless calls instead of regular OCALLs. *)

(** {1 File syscalls — served in-enclave} *)

type open_flag = O_rdonly | O_wronly | O_rdwr | O_creat | O_trunc | O_append

val openf : t -> path:string -> open_flag list -> int
(** @raise No_such_file without [O_creat]. *)

val close : t -> int -> unit
val read : t -> int -> len:int -> bytes
val write : t -> int -> bytes -> int

val lseek : t -> int -> pos:int -> int
(** Absolute seek; returns the new position. *)

val unlink : t -> path:string -> unit
val stat_size : t -> path:string -> int
val list_dir : t -> prefix:string -> string list

(** {1 Process/time syscalls — served in-enclave} *)

val getpid : t -> int
val clock_monotonic : t -> int
(** Simulated-cycle timestamp — in-enclave, like a vDSO read. *)

(** {1 Network syscalls — forwarded to the host} *)

val socket : t -> int
val send : t -> int -> bytes -> int
val recv : t -> int -> len:int -> bytes

(** {1 Introspection} *)

type stats = { in_enclave : int; forwarded : int }

val stats : t -> stats
val open_fds : t -> int
