type file = { mutable data : bytes; created_at : int }
type stat = { size : int; created_at : int }
type t = { files : (string, file) Hashtbl.t }

let create () = { files = Hashtbl.create 32 }
let exists t ~path = Hashtbl.mem t.files path

let create_file t ~path ~now =
  Hashtbl.replace t.files path { data = Bytes.empty; created_at = now }

let unlink t ~path =
  if Hashtbl.mem t.files path then begin
    Hashtbl.remove t.files path;
    true
  end
  else false

let stat t ~path =
  Option.map
    (fun f -> { size = Bytes.length f.data; created_at = f.created_at })
    (Hashtbl.find_opt t.files path)

let read_at t ~path ~pos ~len =
  match Hashtbl.find_opt t.files path with
  | None -> None
  | Some f ->
      let size = Bytes.length f.data in
      if pos >= size || len <= 0 then Some Bytes.empty
      else Some (Bytes.sub f.data pos (min len (size - pos)))

let write_at t ~path ~pos data =
  match Hashtbl.find_opt t.files path with
  | None -> None
  | Some f ->
      let len = Bytes.length data in
      let needed = pos + len in
      if needed > Bytes.length f.data then begin
        let grown = Bytes.make needed '\000' in
        Bytes.blit f.data 0 grown 0 (Bytes.length f.data);
        f.data <- grown
      end;
      Bytes.blit data 0 f.data pos len;
      Some len

let size t ~path =
  Option.map (fun f -> Bytes.length f.data) (Hashtbl.find_opt t.files path)

let list_prefix t ~prefix =
  Hashtbl.fold
    (fun path _ acc ->
      if String.starts_with ~prefix path then path :: acc else acc)
    t.files []
  |> List.sort compare

let file_count t = Hashtbl.length t.files

let total_bytes t =
  Hashtbl.fold (fun _ f acc -> acc + Bytes.length f.data) t.files 0
