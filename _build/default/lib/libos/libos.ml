open Hyperenclave_hw
open Hyperenclave_sdk

type fd_kind = File | Socket

type fd_state = {
  kind : fd_kind;
  path : string; (* "" for sockets *)
  mutable pos : int;
  append : bool;
  readable : bool;
  writable : bool;
}

type stats = { in_enclave : int; forwarded : int }

type t = {
  tenv : Tenv.t;
  vfs : Vfs.t;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
  net_send_ocall : int;
  net_recv_ocall : int;
  switchless_net : bool;
  pid : int;
  mutable in_enclave : int;
  mutable forwarded : int;
}

exception Bad_fd of int
exception No_such_file of string

let syscall_dispatch_cost = 180

let create tenv ?(net_send_ocall = 900) ?(net_recv_ocall = 901)
    ?(switchless_net = false) () =
  {
    tenv;
    vfs = Vfs.create ();
    fds = Hashtbl.create 16;
    next_fd = 3; (* 0-2 reserved, as tradition demands *)
    net_send_ocall;
    net_recv_ocall;
    switchless_net;
    pid = 1;
    in_enclave = 0;
    forwarded = 0;
  }

(* Every syscall enters through here: in-enclave dispatch cost, no world
   switch (the libOS point). *)
let syscall t =
  t.in_enclave <- t.in_enclave + 1;
  t.tenv.Tenv.compute syscall_dispatch_cost

let charge_bytes t n = t.tenv.Tenv.compute (n / 8)

let fd_state t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some state -> state
  | None -> raise (Bad_fd fd)

(* --- files ------------------------------------------------------------------- *)

type open_flag = O_rdonly | O_wronly | O_rdwr | O_creat | O_trunc | O_append

let openf t ~path flags =
  syscall t;
  let has flag = List.mem flag flags in
  if not (Vfs.exists t.vfs ~path) then
    if has O_creat then
      Vfs.create_file t.vfs ~path ~now:(Cycles.now t.tenv.Tenv.clock)
    else raise (No_such_file path);
  if has O_trunc then
    Vfs.create_file t.vfs ~path ~now:(Cycles.now t.tenv.Tenv.clock);
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd
    {
      kind = File;
      path;
      pos = 0;
      append = has O_append;
      readable = has O_rdonly || has O_rdwr || not (has O_wronly);
      writable = has O_wronly || has O_rdwr || has O_append;
    };
  fd

let close t fd =
  syscall t;
  if not (Hashtbl.mem t.fds fd) then raise (Bad_fd fd);
  Hashtbl.remove t.fds fd

let read t fd ~len =
  syscall t;
  let state = fd_state t fd in
  if state.kind <> File then raise (Bad_fd fd);
  if not state.readable then invalid_arg "Libos.read: fd not readable";
  match Vfs.read_at t.vfs ~path:state.path ~pos:state.pos ~len with
  | None -> raise (No_such_file state.path)
  | Some data ->
      state.pos <- state.pos + Bytes.length data;
      charge_bytes t (Bytes.length data);
      data

let write t fd data =
  syscall t;
  let state = fd_state t fd in
  if state.kind <> File then raise (Bad_fd fd);
  if not state.writable then invalid_arg "Libos.write: fd not writable";
  let pos =
    if state.append then
      Option.value ~default:0 (Vfs.size t.vfs ~path:state.path)
    else state.pos
  in
  match Vfs.write_at t.vfs ~path:state.path ~pos data with
  | None -> raise (No_such_file state.path)
  | Some written ->
      state.pos <- pos + written;
      charge_bytes t written;
      written

let lseek t fd ~pos =
  syscall t;
  let state = fd_state t fd in
  if pos < 0 then invalid_arg "Libos.lseek: negative position";
  state.pos <- pos;
  pos

let unlink t ~path =
  syscall t;
  if not (Vfs.unlink t.vfs ~path) then raise (No_such_file path)

let stat_size t ~path =
  syscall t;
  match Vfs.stat t.vfs ~path with
  | Some { Vfs.size; _ } -> size
  | None -> raise (No_such_file path)

let list_dir t ~prefix =
  syscall t;
  Vfs.list_prefix t.vfs ~prefix

(* --- process/time -------------------------------------------------------------- *)

let getpid t =
  syscall t;
  t.pid

let clock_monotonic t =
  syscall t;
  Cycles.now t.tenv.Tenv.clock

(* --- network: the syscalls that genuinely leave the enclave -------------------- *)

let socket t =
  syscall t;
  let fd = t.next_fd in
  t.next_fd <- fd + 1;
  Hashtbl.replace t.fds fd
    { kind = Socket; path = ""; pos = 0; append = false; readable = true; writable = true };
  fd

let net_call t ~id data =
  t.forwarded <- t.forwarded + 1;
  if t.switchless_net then t.tenv.Tenv.ocall_switchless ~id ~data ()
  else t.tenv.Tenv.ocall ~id ~data Edge.In_out

let send t fd data =
  syscall t;
  let state = fd_state t fd in
  if state.kind <> Socket then raise (Bad_fd fd);
  let reply = net_call t ~id:t.net_send_ocall data in
  match int_of_string_opt (Bytes.to_string reply) with
  | Some n -> n
  | None -> invalid_arg "Libos.send: malformed host reply"

let recv t fd ~len =
  syscall t;
  let state = fd_state t fd in
  if state.kind <> Socket then raise (Bad_fd fd);
  net_call t ~id:t.net_recv_ocall (Bytes.of_string (string_of_int len))

(* --- introspection --------------------------------------------------------------- *)

let stats t = { in_enclave = t.in_enclave; forwarded = t.forwarded }
let open_fds t = Hashtbl.length t.fds
