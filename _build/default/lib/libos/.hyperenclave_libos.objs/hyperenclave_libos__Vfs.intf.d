lib/libos/vfs.mli:
