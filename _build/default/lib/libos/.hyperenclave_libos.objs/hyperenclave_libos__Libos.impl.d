lib/libos/libos.ml: Bytes Cycles Edge Hashtbl Hyperenclave_hw Hyperenclave_sdk List Option Tenv Vfs
