lib/libos/vfs.ml: Bytes Hashtbl List Option String
