lib/libos/libos.mli: Hyperenclave_sdk Tenv
