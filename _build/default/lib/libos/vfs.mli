(** In-enclave virtual file system.

    The state behind the {!Libos} syscall layer: a flat namespace of
    in-memory files living entirely inside the enclave, so open/read/
    write/seek never leave the TEE — the property that makes a library OS
    the right shape for I/O-handling enclave applications (Sec. 3.4's
    Occlum port).  Pure data structure; all cycle charging happens in
    {!Libos}. *)

type t

type stat = { size : int; created_at : int }

val create : unit -> t

val exists : t -> path:string -> bool
val create_file : t -> path:string -> now:int -> unit
(** Truncates if the file exists. *)

val unlink : t -> path:string -> bool
(** [false] if absent. *)

val stat : t -> path:string -> stat option

val read_at : t -> path:string -> pos:int -> len:int -> bytes option
(** Short reads at EOF; [None] if the file is absent. *)

val write_at : t -> path:string -> pos:int -> bytes -> int option
(** Extends the file as needed (zero-filling holes); returns the number of
    bytes written, [None] if absent. *)

val size : t -> path:string -> int option
val list_prefix : t -> prefix:string -> string list
val file_count : t -> int
val total_bytes : t -> int
