lib/sdk/edge.ml: Cost_model Cycles Hyperenclave_hw
