lib/sdk/edl_app.mli: Edl Hyperenclave_crypto Hyperenclave_hw Hyperenclave_os Kmod Process Tenv Urts
