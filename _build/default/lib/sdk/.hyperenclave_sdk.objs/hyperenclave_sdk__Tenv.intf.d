lib/sdk/tenv.mli: Cost_model Cycles Edge Enclave Hyperenclave_hw Hyperenclave_monitor Page_table Sgx_types
