lib/sdk/edl_app.ml: Bytes Edl Hyperenclave_monitor List Option Printf Result Tenv Urts
