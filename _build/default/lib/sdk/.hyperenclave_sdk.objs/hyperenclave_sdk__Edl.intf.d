lib/sdk/edl.mli: Edge
