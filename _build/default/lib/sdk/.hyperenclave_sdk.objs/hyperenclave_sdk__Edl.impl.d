lib/sdk/edl.ml: Buffer Edge List Printf Result String
