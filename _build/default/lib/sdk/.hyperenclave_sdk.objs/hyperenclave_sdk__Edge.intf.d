lib/sdk/edge.mli: Cost_model Cycles Hyperenclave_hw
