lib/sdk/urts.mli: Edge Enclave Hyperenclave_crypto Hyperenclave_hw Hyperenclave_monitor Hyperenclave_os Kmod Monitor Process Rng Sgx_types Tenv
