(** Build and call an enclave from an EDL interface definition.

    The workflow of a real SGX/HyperEnclave application: write the
    [.edl], implement the trusted functions against the generated
    prototypes, and let the shims pick the marshalling directions.  This
    module checks the implementation against the interface at build time
    (missing or extra functions are errors) and makes call sites
    direction-oblivious: [call] looks the declared direction up, so code
    cannot smuggle data against the interface. *)

open Hyperenclave_os

type t

(** A trusted function body: [ocall] reaches the declared untrusted
    functions by name. *)
type trusted_body =
  ocall:(name:string -> ?data:bytes -> unit -> bytes) -> Tenv.t -> bytes -> bytes

val create :
  kmod:Kmod.t ->
  proc:Process.t ->
  rng:Hyperenclave_hw.Rng.t ->
  signer:Hyperenclave_crypto.Signature.private_key ->
  ?config:Urts.config ->
  edl:string ->
  trusted:(string * trusted_body) list ->
  untrusted:(string * (bytes -> bytes)) list ->
  unit ->
  (t, string) result
(** Errors: EDL parse failures, trusted/untrusted functions declared but
    not implemented, or implemented but not declared. *)

val call : t -> name:string -> ?data:bytes -> unit -> bytes
(** ECALL by name with the interface's declared direction.
    @raise Invalid_argument for an undeclared name. *)

val interface : t -> Edl.interface
val urts : t -> Urts.t
val destroy : t -> unit
