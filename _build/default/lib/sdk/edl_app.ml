
type trusted_body =
  ocall:(name:string -> ?data:bytes -> unit -> bytes) -> Tenv.t -> bytes -> bytes

type t = { interface : Edl.interface; urts : Urts.t }

let ( let* ) = Result.bind

let check_coverage ~kind declared implemented =
  let declared_names = List.map (fun (f : Edl.func) -> f.Edl.name) declared in
  let implemented_names = List.map fst implemented in
  let missing = List.filter (fun n -> not (List.mem n implemented_names)) declared_names in
  let extra = List.filter (fun n -> not (List.mem n declared_names)) implemented_names in
  match (missing, extra) with
  | [], [] -> Result.Ok ()
  | m :: _, _ -> Result.Error (Printf.sprintf "%s %S declared but not implemented" kind m)
  | [], e :: _ -> Result.Error (Printf.sprintf "%s %S implemented but not declared" kind e)

let create ~kmod ~proc ~rng ~signer ?config ~edl ~trusted ~untrusted () =
  let* interface = Edl.parse edl in
  let* () = check_coverage ~kind:"trusted function" interface.Edl.trusted trusted in
  let* () =
    check_coverage ~kind:"untrusted function" interface.Edl.untrusted untrusted
  in
  let config =
    match config with
    | Some c -> c
    | None -> Urts.default_config Hyperenclave_monitor.Sgx_types.GU
  in
  (* Seed the code identity with the interface itself: changing the EDL
     changes MRENCLAVE, as regenerated shims would. *)
  let config =
    { config with Urts.code_seed = config.Urts.code_seed ^ ":" ^ edl }
  in
  let ocall_id name =
    match Edl.find_untrusted interface ~name with
    | Some f -> f.Edl.id
    | None -> invalid_arg (Printf.sprintf "undeclared OCALL %S" name)
  in
  let ecalls =
    List.map
      (fun (name, body) ->
        let f = Option.get (Edl.find_trusted interface ~name) in
        ( f.Edl.id,
          fun (tenv : Tenv.t) input ->
            let ocall ~name ?data () =
              let id = ocall_id name in
              (* OCALL directions also come from the interface. *)
              let direction =
                (Option.get (Edl.find_untrusted interface ~name)).Edl.direction
              in
              tenv.Tenv.ocall ~id ?data direction
            in
            body ~ocall tenv input ))
      trusted
  in
  let ocalls =
    List.map
      (fun (name, handler) ->
        ((Option.get (Edl.find_untrusted interface ~name)).Edl.id, handler))
      untrusted
  in
  let urts = Urts.create ~kmod ~proc ~rng ~signer ~config ~ecalls ~ocalls in
  Result.Ok { interface; urts }

let call t ~name ?(data = Bytes.empty) () =
  match Edl.find_trusted t.interface ~name with
  | None -> invalid_arg (Printf.sprintf "undeclared ECALL %S" name)
  | Some f ->
      if (not f.Edl.takes_buffer) && Bytes.length data > 0 then
        invalid_arg (Printf.sprintf "%S takes no buffer" name);
      Urts.ecall t.urts ~id:f.Edl.id ~data ~direction:f.Edl.direction ()

let interface t = t.interface
let urts t = t.urts
let destroy t = Urts.destroy t.urts
