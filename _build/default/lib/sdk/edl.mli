(** Enclave Definition Language front end — the Edger8r analogue.

    Sec. 5.3: "we modified SGX's Edger8r tool to automatically generate
    code that copies the transmitted data into the marshalling buffer."
    In the real SDK the developer writes an `.edl` file declaring each
    edge function and the direction/size attributes of its pointers, and
    generated shims perform the copies.  Here {!parse} reads the same
    declaration style and {!Edl_app} (below, in {!Urts}-compatible form)
    uses the declared attributes to drive the marshalling path, so call
    sites cannot pick a direction the interface didn't declare — the
    class of mistakes interface-hardening work (Sec. 3.4's [46,69])
    worries about.

    Supported subset — one buffer parameter plus its size per function:

    {v
    enclave {
        trusted {
            public void store_record([in, size=len] uint8_t* buf, size_t len);
            public void load_record([out, size=len] uint8_t* buf, size_t len);
            public void transform([in, out, size=len] uint8_t* buf, size_t len);
            public void poke([user_check] uint8_t* buf, size_t len);
            public void ping(void);
        };
        untrusted {
            void ocall_write([in, size=len] uint8_t* buf, size_t len);
        };
    };
    v} *)

type func = {
  name : string;
  id : int;  (** assigned in declaration order, trusted then untrusted *)
  direction : Edge.direction;
  takes_buffer : bool;  (** [false] for [(void)] functions *)
}

type interface = { trusted : func list; untrusted : func list }

val parse : string -> (interface, string) result
(** Structural errors name the offending declaration. *)

val find_trusted : interface -> name:string -> func option
val find_untrusted : interface -> name:string -> func option

val generate_header : interface -> string
(** The C-style prototype listing a real Edger8r would emit — useful for
    eyeballing and golden tests. *)
