open Hyperenclave_hw

type direction = In | Out | In_out | User_check

let direction_name = function
  | In -> "in"
  | Out -> "out"
  | In_out -> "in&out"
  | User_check -> "user_check"

let kib bytes = (bytes + 1023) / 1024

let charge_ms_in (m : Cost_model.t) clock ~bytes =
  Cycles.tick clock (kib bytes * m.ms_copy_in_per_kb)

let charge_ms_out (m : Cost_model.t) clock ~bytes =
  Cycles.tick clock (kib bytes * m.ms_copy_out_per_kb)

let charge_ms_in_out (m : Cost_model.t) clock ~bytes =
  let base = kib bytes * (m.ms_copy_in_per_kb + m.ms_copy_out_per_kb) in
  Cycles.tick clock (base * 3 / 2)
