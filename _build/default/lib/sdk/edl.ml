type func = {
  name : string;
  id : int;
  direction : Edge.direction;
  takes_buffer : bool;
}

type interface = { trusted : func list; untrusted : func list }

(* --- lexing ------------------------------------------------------------------ *)

(* The grammar is small enough for a hand-rolled scanner: strip comments,
   then split the two sections on braces and the declarations on ';'. *)

let strip_comments src =
  let buf = Buffer.create (String.length src) in
  let n = String.length src in
  let rec go i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '/' && src.[i + 1] = '/' then
      let next = match String.index_from_opt src i '\n' with Some j -> j | None -> n in
      go next
    else if i + 1 < n && src.[i] = '/' && src.[i + 1] = '*' then
      let rec close j =
        if j + 1 >= n then n
        else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
        else close (j + 1)
      in
      go (close (i + 2))
    else begin
      Buffer.add_char buf src.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let ( let* ) = Result.bind

(* Extract [section { ... }] body. *)
let section_body src name =
  let pattern = name in
  let rec find_from i =
    match String.index_from_opt src i pattern.[0] with
    | None -> None
    | Some j ->
        if
          j + String.length pattern <= String.length src
          && String.sub src j (String.length pattern) = pattern
        then Some j
        else find_from (j + 1)
  in
  match find_from 0 with
  | None -> Result.Error (Printf.sprintf "missing section %S" name)
  | Some start -> (
      match String.index_from_opt src start '{' with
      | None -> Result.Error (Printf.sprintf "section %S has no body" name)
      | Some open_brace ->
          let rec close i depth =
            if i >= String.length src then
              Result.Error (Printf.sprintf "section %S not terminated" name)
            else
              match src.[i] with
              | '{' -> close (i + 1) (depth + 1)
              | '}' ->
                  if depth = 0 then
                    Result.Ok (String.sub src (open_brace + 1) (i - open_brace - 1))
                  else close (i + 1) (depth - 1)
              | _ -> close (i + 1) depth
          in
          close (open_brace + 1) 0)

let trim = String.trim

(* --- declarations --------------------------------------------------------------- *)

(* e.g. "public void store([in, size=len] uint8_t* buf, size_t len)" *)
let parse_decl ~id decl =
  let decl = trim decl in
  if decl = "" then Result.Ok None
  else
    let* name =
      (* function name: the identifier right before '(' *)
      match String.index_opt decl '(' with
      | None -> Result.Error (Printf.sprintf "missing '(' in %S" decl)
      | Some paren ->
          let before = trim (String.sub decl 0 paren) in
          let words = String.split_on_char ' ' before in
          (match List.rev (List.filter (fun w -> w <> "") words) with
          | name :: _ when name <> "" -> Result.Ok name
          | _ -> Result.Error (Printf.sprintf "missing function name in %S" decl))
    in
    let* args =
      match (String.index_opt decl '(', String.rindex_opt decl ')') with
      | Some a, Some b when b > a -> Result.Ok (trim (String.sub decl (a + 1) (b - a - 1)))
      | _ -> Result.Error (Printf.sprintf "unbalanced parentheses in %S" decl)
    in
    if args = "void" || args = "" then
      Result.Ok (Some { name; id; direction = Edge.In; takes_buffer = false })
    else
      (* direction attributes live in the first [...] group *)
      let* attrs =
        match (String.index_opt args '[', String.index_opt args ']') with
        | Some a, Some b when b > a ->
            Result.Ok
              (List.map
                 (fun s -> trim s)
                 (String.split_on_char ','
                    (String.sub args (a + 1) (b - a - 1))))
        | _ ->
            Result.Error
              (Printf.sprintf "parameter of %s needs [in]/[out] attributes" name)
      in
      let has a = List.mem a attrs in
      let* direction =
        match (has "in", has "out", has "user_check") with
        | _, _, true ->
            if has "in" || has "out" then
              Result.Error
                (Printf.sprintf "%s: user_check excludes in/out" name)
            else Result.Ok Edge.User_check
        | true, true, false -> Result.Ok Edge.In_out
        | true, false, false -> Result.Ok Edge.In
        | false, true, false -> Result.Ok Edge.Out
        | false, false, false ->
            Result.Error (Printf.sprintf "%s: no direction attribute" name)
      in
      (* size= is mandatory for copied pointers, as the real tool insists *)
      let has_size = List.exists (fun a -> String.starts_with ~prefix:"size=" a) attrs in
      if (direction <> Edge.User_check) && not (has_size || has "string") then
        Result.Error (Printf.sprintf "%s: copied pointer needs size= or string" name)
      else Result.Ok (Some { name; id; direction; takes_buffer = true })

let parse_section body ~first_id =
  let decls = String.split_on_char ';' body in
  let rec go acc id = function
    | [] -> Result.Ok (List.rev acc)
    | decl :: rest -> (
        let* parsed = parse_decl ~id decl in
        match parsed with
        | None -> go acc id rest
        | Some f -> go (f :: acc) (id + 1) rest)
  in
  go [] first_id decls

let check_unique funcs =
  let names = List.map (fun f -> f.name) funcs in
  if List.length names = List.length (List.sort_uniq compare names) then Result.Ok ()
  else Result.Error "duplicate function name"

let parse src =
  let src = strip_comments src in
  let* enclave = section_body src "enclave" in
  let* trusted_body = section_body enclave "trusted" in
  let* untrusted_body =
    match section_body enclave "untrusted" with
    | Result.Ok body -> Result.Ok body
    | Result.Error _ -> Result.Ok "" (* untrusted section is optional *)
  in
  let* trusted = parse_section trusted_body ~first_id:1 in
  let* untrusted = parse_section untrusted_body ~first_id:(1 + List.length trusted) in
  let* () = check_unique (trusted @ untrusted) in
  if trusted = [] then Result.Error "no trusted functions declared"
  else Result.Ok { trusted; untrusted }

let find_trusted t ~name = List.find_opt (fun f -> f.name = name) t.trusted
let find_untrusted t ~name = List.find_opt (fun f -> f.name = name) t.untrusted

let generate_header t =
  let dir_name = Edge.direction_name in
  let proto kind f =
    if f.takes_buffer then
      Printf.sprintf "sgx_status_t %s_%s(/* id %d */ uint8_t* buf /* %s */, size_t len);"
        kind f.name f.id (dir_name f.direction)
    else Printf.sprintf "sgx_status_t %s_%s(/* id %d */ void);" kind f.name f.id
  in
  String.concat "\n"
    (List.map (proto "ecall") t.trusted @ List.map (proto "ocall") t.untrusted)
