lib/tee/platform.ml: Addr Boot Cost_model Cycles Hyperenclave_crypto Hyperenclave_hw Hyperenclave_monitor Hyperenclave_os Hyperenclave_tpm Int64 Iommu Kernel Kmod Mmu Page_table Phys_mem Process Rng
