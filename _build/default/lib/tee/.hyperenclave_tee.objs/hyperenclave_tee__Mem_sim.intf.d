lib/tee/mem_sim.mli: Cost_model Cycles Hyperenclave_hw Mem_crypto Rng
