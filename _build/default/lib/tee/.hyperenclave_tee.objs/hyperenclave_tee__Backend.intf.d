lib/tee/backend.mli: Cost_model Cycles Edge Hyperenclave_hw Hyperenclave_monitor Hyperenclave_sdk Mem_sim Platform Rng Sgx_types Urts
