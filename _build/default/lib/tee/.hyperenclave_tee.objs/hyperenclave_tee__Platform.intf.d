lib/tee/platform.mli: Boot Cost_model Cycles Hyperenclave_crypto Hyperenclave_hw Hyperenclave_monitor Hyperenclave_os Hyperenclave_tpm Iommu Kernel Kmod Mmu Phys_mem Process Rng
