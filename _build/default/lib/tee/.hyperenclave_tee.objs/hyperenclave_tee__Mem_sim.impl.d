lib/tee/mem_sim.ml: Addr Cache Cost_model Cycles Hashtbl Hyperenclave_hw Mem_crypto Option Page_table Queue Rng Tlb
