open Hyperenclave_hw

type translation = One_level | Nested

type t = {
  translation : translation;
  tlb : Tlb.t;
  clock : Cycles.t;
  cost : Cost_model.t;
  rng : Rng.t;
  engine : Mem_crypto.engine;
  cache : Cache.t;
  llc_bytes : int;
  sample_cap : int;
  (* EPC residency (Mee only): page-granular CLOCK (approximate LRU),
     like the SGX driver's reclaim scan — hot pages survive, so zipfian
     workloads keep their working set resident (Fig. 8b) while uniform
     scans thrash (Fig. 11). *)
  epc_pages : int option;
  resident : (int, bool ref) Hashtbl.t; (* page -> referenced bit *)
  fifo : int Queue.t;
  mutable swaps : int;
}

let create ~clock ~cost ~rng ~engine ?(llc_bytes = 8 * 1024 * 1024)
    ?(sample_cap = 262_144) ?(translation = One_level) () =
  {
    translation;
    tlb = Tlb.create (Rng.create ~seed:17L);
    clock;
    cost;
    rng;
    engine;
    cache = Cache.create ~size_bytes:llc_bytes ();
    llc_bytes;
    sample_cap;
    epc_pages =
      Option.map (fun b -> b / Addr.page_size) (Mem_crypto.epc_limit engine);
    resident = Hashtbl.create 4096;
    fifo = Queue.create ();
    swaps = 0;
  }

let engine t = t.engine

(* EPC paging charge for one touched page; 2x: EWB the victim, ELDU ours.
   Eviction is CLOCK: referenced pages get a second chance. *)
let evict_one t =
  let rec spin guard =
    match Queue.take_opt t.fifo with
    | None -> ()
    | Some victim -> (
        match Hashtbl.find_opt t.resident victim with
        | None -> spin guard
        | Some referenced ->
            if !referenced && guard > 0 then begin
              referenced := false;
              Queue.add victim t.fifo;
              spin (guard - 1)
            end
            else Hashtbl.remove t.resident victim)
  in
  spin (Hashtbl.length t.resident)

let epc_charge t page =
  match t.epc_pages with
  | None -> 0
  | Some capacity -> (
      match Hashtbl.find_opt t.resident page with
      | Some referenced ->
          referenced := true;
          0
      | None ->
          let swap_cost =
            if Hashtbl.length t.resident >= capacity then begin
              evict_one t;
              t.swaps <- t.swaps + 1;
              2 * t.cost.epc_swap_page
            end
            else 0
          in
          Hashtbl.replace t.resident page (ref false);
          Queue.add page t.fifo;
          swap_cost)

(* Data-TLB charge for the page containing [addr]: hit is ~free; a miss
   walks one set of tables natively/HU, or the two-dimensional nested
   tables for GU/P. *)
let tlb_cost t page =
  match Tlb.lookup t.tlb ~vpn:page with
  | Some _ -> t.cost.tlb_hit
  | None ->
      Tlb.insert t.tlb ~vpn:page { Tlb.frame = page; perms = Page_table.rw };
      (match t.translation with
      | One_level -> 4 * t.cost.pt_level_access
      | Nested -> 12 * t.cost.pt_level_access)

let tlb_flush t = Tlb.flush t.tlb

(* One line access; [seq] selects the prefetch-friendly cost profile
   (tree nodes and next lines prefetched) vs. the dependent-load one. *)
let line_cost t ~seq ~write addr =
  let page = Addr.page_of addr in
  let epc = epc_charge t page + tlb_cost t page in
  match Cache.access t.cache ~write addr with
  | Cache.Hit -> t.cost.cache_hit + epc
  | Cache.Miss { evicted_dirty } ->
      let wb = if evicted_dirty then 2 else 1 in
      let base =
        if seq then
          (t.cost.dram_seq_miss
          +
          match t.engine with
          | Mem_crypto.Plain -> 0
          | Mem_crypto.Sme -> t.cost.sme_seq_extra
          | Mem_crypto.Mee _ -> t.cost.mee_seq_extra)
          * wb
        else
          ((t.cost.cache_miss_dram
           +
           match t.engine with
           | Mem_crypto.Plain -> 0
           | Mem_crypto.Sme -> t.cost.sme_miss_extra
           | Mem_crypto.Mee _ -> t.cost.mee_miss_extra)
          * wb)
          +
          (match t.engine with
          | Mem_crypto.Plain | Mem_crypto.Sme -> 0
          | Mem_crypto.Mee _ -> t.cost.mee_tree_levels * t.cost.mee_tree_level)
      in
      base + epc

let line = 64

let seq_scan t ~base ~bytes ~write =
  if bytes > 0 then begin
    let lines = (bytes + line - 1) / line in
    let simulated = min lines t.sample_cap in
    let acc = ref 0 in
    for i = 0 to simulated - 1 do
      acc := !acc + line_cost t ~seq:true ~write (base + (i * line))
    done;
    (* Scale the sampled window cost up to the full scan. *)
    let total =
      if simulated = lines then !acc
      else int_of_float (float_of_int !acc *. float_of_int lines /. float_of_int simulated)
    in
    Cycles.tick t.clock total
  end

let random_access t ~base ~working_set ~count ~write =
  if count > 0 && working_set > 0 then begin
    let lines_in_ws = max 1 (working_set / line) in
    let simulated = min count t.sample_cap in
    let acc = ref 0 in
    for _ = 1 to simulated do
      let addr = base + (Rng.int t.rng lines_in_ws * line) in
      acc := !acc + line_cost t ~seq:false ~write addr
    done;
    let total =
      if simulated = count then !acc
      else int_of_float (float_of_int !acc *. float_of_int count /. float_of_int simulated)
    in
    Cycles.tick t.clock total
  end

let touch_bytes t ~addr ~len ~write =
  (* The first line of an object is a dependent load (pointer chase into
     it); the rest streams under the prefetcher. *)
  if len > 0 then begin
    let first = addr / line and last = (addr + len - 1) / line in
    let acc = ref (line_cost t ~seq:false ~write (first * line)) in
    for l = first + 1 to last do
      acc := !acc + line_cost t ~seq:true ~write (l * line)
    done;
    Cycles.tick t.clock !acc
  end

let touch_dependent t ~addr ~len ~write =
  if len > 0 then begin
    let first = addr / line and last = (addr + len - 1) / line in
    let acc = ref 0 in
    for l = first to last do
      acc := !acc + line_cost t ~seq:false ~write (l * line)
    done;
    Cycles.tick t.clock !acc
  end

let flush_range t ~base ~bytes =
  let lines = (bytes + line - 1) / line in
  for i = 0 to min lines t.sample_cap - 1 do
    Cache.flush_line t.cache (base + (i * line))
  done

let flush_all t = Cache.flush_all t.cache
let swaps t = t.swaps

let avg_access_cycles t ~pattern ~working_set =
  (* Private replica so the measurement does not disturb [t].  The scan is
     unsampled (cap >= the buffer) so EPC-residency effects are real, and
     the random pass replays the exact same address sequence it warmed
     with — the dependent pointer chain lat_mem_rd-style scans build. *)
  let clock = Cycles.create () in
  let full_cap = max t.sample_cap ((working_set / line) + 1) in
  let probe =
    create ~clock ~cost:t.cost
      ~rng:(Rng.create ~seed:7L)
      ~engine:t.engine ~llc_bytes:t.llc_bytes ~sample_cap:full_cap ()
  in
  let count = max 4096 (working_set / line) in
  let run () =
    Rng.set_seed probe.rng 7L;
    match pattern with
    | `Seq -> seq_scan probe ~base:0 ~bytes:working_set ~write:false
    | `Random ->
        random_access probe ~base:0 ~working_set ~count ~write:false
  in
  run ();
  (* Warm pass done; measure the second pass. *)
  let before = Cycles.now clock in
  run ();
  let accesses =
    match pattern with
    | `Seq -> max 1 ((working_set + line - 1) / line)
    | `Random -> count
  in
  float_of_int (Cycles.now clock - before) /. float_of_int accesses
