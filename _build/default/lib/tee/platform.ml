open Hyperenclave_hw
open Hyperenclave_os
module Monitor = Hyperenclave_monitor.Monitor
module Tpm = Hyperenclave_tpm.Tpm

type t = {
  clock : Cycles.t;
  cost : Cost_model.t;
  rng : Rng.t;
  mem : Phys_mem.t;
  cpu : Mmu.t;
  iommu : Iommu.t;
  tpm : Tpm.t;
  kernel : Kernel.t;
  kmod : Kmod.t;
  monitor : Monitor.t;
  boot_chain : Boot.component list;
  proc : Process.t;
  signer : Hyperenclave_crypto.Signature.private_key;
}

let llc_bytes = 8 * 1024 * 1024
let sgx_epc_bytes = 93 * 1024 * 1024
let mib = 1024 * 1024

let create ?(seed = 42L) ?(cost = Cost_model.default) ?(phys_mb = 256)
    ?(os_mb = 128) ?(monitor_mb = 4) ?tamper_boot () =
  let clock = Cycles.create () in
  let rng = Rng.create ~seed in
  let mem = Phys_mem.create ~size_bytes:(phys_mb * mib) in
  let iommu = Iommu.create () in
  Iommu.attach iommu ~device:"nic";
  Iommu.attach iommu ~device:"disk";
  let os_frames = os_mb * mib / Addr.page_size in
  (* Devices may initially DMA anywhere in OS memory; the monitor strips
     the reservation at launch. *)
  Iommu.grant iommu ~device:"nic" ~first_frame:0 ~nframes:(Phys_mem.frames mem);
  Iommu.grant iommu ~device:"disk" ~first_frame:0 ~nframes:(Phys_mem.frames mem);
  let boot_gpt = Page_table.create () in
  let cpu = Mmu.create ~clock ~cost ~rng:(Rng.split rng) ~gpt:boot_gpt () in
  let tpm = Tpm.manufacture ~clock ~cost ~rng:(Rng.split rng) in
  Tpm.startup tpm;
  (* CRTM -> BIOS -> grub -> kernel -> initramfs, measured as they run. *)
  let boot_chain = Boot.default_chain (Rng.create ~seed:(Int64.add seed 1000L)) in
  let boot_chain =
    match tamper_boot with
    | None -> boot_chain
    | Some name -> Boot.tamper boot_chain ~name
  in
  let boot_events = Boot.measured_boot tpm boot_chain in
  let kernel =
    Kernel.create ~clock ~cost ~rng:(Rng.split rng) ~mem ~cpu ~iommu
      ~os_base_frame:0 ~os_nframes:os_frames
  in
  let reserved_nframes = Phys_mem.frames mem - os_frames in
  let monitor =
    Monitor.create ~clock ~cost ~rng:(Rng.split rng) ~mem ~cpu ~iommu ~tpm
      {
        Monitor.reserved_base_frame = os_frames;
        reserved_nframes;
        monitor_private_frames = monitor_mb * mib / Addr.page_size;
      }
  in
  (* The RustMonitor image shipped in the initramfs; its identity is
     stable for a given build seed so attestation golden values hold. *)
  let monitor_image =
    Rng.bytes (Rng.create ~seed:(Int64.add seed 2000L)) 32768
  in
  let kmod =
    Kmod.load ~kernel ~tpm ~monitor ~monitor_image ~boot_log:boot_events
  in
  let proc = Kernel.spawn kernel in
  Kernel.switch_to kernel proc;
  let signer, _public =
    Hyperenclave_crypto.Signature.generate (Rng.create ~seed:(Int64.add seed 3000L))
  in
  {
    clock;
    cost;
    rng;
    mem;
    cpu;
    iommu;
    tpm;
    kernel;
    kmod;
    monitor;
    boot_chain;
    proc;
    signer;
  }

let new_process t =
  let proc = Kernel.spawn t.kernel in
  Kernel.switch_to t.kernel proc;
  proc
