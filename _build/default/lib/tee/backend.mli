(** Uniform workload interface over the compared systems.

    Every workload in this reproduction is written once against {!env} and
    then run, unmodified, on:
    - the {b native} baseline — no protection, zero-cost edges, plain
      DRAM (the paper's "SDK simulation mode" baseline);
    - {b HyperEnclave} in any of the three operation modes — real edge
      calls through the SDK/monitor with marshalling copies, SME-priced
      memory;
    - the {b SGX} model — Table-1-priced edges, MEE-priced memory with
      the 93 MB EPC.

    Relative slowdowns between these are the quantity every figure in
    Sec. 7 reports. *)

open Hyperenclave_hw
open Hyperenclave_monitor
open Hyperenclave_sdk

type env = {
  clock : Cycles.t;
  compute : int -> unit;  (** charge pure computation *)
  mem : Mem_sim.t;  (** memory-system behaviour *)
  ocall : id:int -> ?data:bytes -> unit -> bytes;
  interrupt : unit -> unit;  (** a timer tick lands now *)
  backend_name : string;
}

type handler = env -> bytes -> bytes

type kind = Native | Hyperenclave of Sgx_types.operation_mode | Sgx

val kind_name : kind -> string

type t = {
  name : string;
  kind : kind;
  clock : Cycles.t;
  mem : Mem_sim.t;
  call : id:int -> ?data:bytes -> direction:Edge.direction -> unit -> bytes;
  destroy : unit -> unit;
}

val native :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  t

val hyperenclave :
  Platform.t ->
  mode:Sgx_types.operation_mode ->
  ?tweak:(Urts.config -> Urts.config) ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  unit ->
  t
(** Builds a real enclave through the SDK on the given platform. *)

val sgx :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  ?epc_bytes:int ->
  handlers:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  unit ->
  t
(** The Intel baseline; default EPC 93 MB. *)
