(** Whole-platform bring-up: hardware, measured boot, kernel, measured
    late launch of RustMonitor, and a first application process.

    This is the sequence of Fig. 3 in one call, and the fixture every
    test, bench and example starts from. *)

open Hyperenclave_hw
open Hyperenclave_os

type t = {
  clock : Cycles.t;
  cost : Cost_model.t;
  rng : Rng.t;
  mem : Phys_mem.t;
  cpu : Mmu.t;
  iommu : Iommu.t;
  tpm : Hyperenclave_tpm.Tpm.t;
  kernel : Kernel.t;
  kmod : Kmod.t;
  monitor : Hyperenclave_monitor.Monitor.t;
  boot_chain : Boot.component list;
  proc : Process.t;  (** an application process, already scheduled *)
  signer : Hyperenclave_crypto.Signature.private_key;
      (** a default enclave-vendor key *)
}

val create :
  ?seed:int64 ->
  ?cost:Cost_model.t ->
  ?phys_mb:int ->
  ?os_mb:int ->
  ?monitor_mb:int ->
  ?tamper_boot:string ->
  unit ->
  t
(** Defaults: seed 42, 256 MiB DRAM, 128 MiB for the primary OS, 4 MiB
    monitor-private, the rest of the reservation as EPC.  Deterministic:
    equal seeds build bit-identical platforms.  [tamper_boot] flips a byte
    in the named boot component before the measured boot — the "evil
    maid" fixture for attestation tests. *)

val new_process : t -> Process.t
(** Spawn and schedule another application process. *)

val llc_bytes : int
(** 8 MiB — the paper's last-level cache size (Fig. 11). *)

val sgx_epc_bytes : int
(** 93 MiB — the usable EPC of the paper's SGX part (Fig. 11). *)
