type sealed = { nonce : bytes; ciphertext : bytes; tag : bytes; aad : bytes }

exception Authentication_failure

let split_key key =
  if Bytes.length key <> 32 then invalid_arg "Authenc: key must be 32 bytes";
  let enc_key = Hmac.derive ~key ~info:"authenc-enc" in
  let mac_key = Hmac.derive ~key ~info:"authenc-mac" in
  (Bytes.sub enc_key 0 16, mac_key)

let mac_input ~nonce ~aad ~ciphertext =
  let buf = Buffer.create (Bytes.length ciphertext + 64) in
  let add_framed b =
    let len = Bytes.create 4 in
    Bytes.set_int32_be len 0 (Int32.of_int (Bytes.length b));
    Buffer.add_bytes buf len;
    Buffer.add_bytes buf b
  in
  add_framed nonce;
  add_framed aad;
  add_framed ciphertext;
  Buffer.to_bytes buf

let seal ~key ?(aad = Bytes.empty) ~nonce plaintext =
  if Bytes.length nonce <> 12 then invalid_arg "Authenc.seal: nonce must be 12 bytes";
  let enc_key, mac_key = split_key key in
  let ciphertext = Aes.ctr_transform ~key:enc_key ~nonce plaintext in
  let tag = Hmac.hmac ~key:mac_key (mac_input ~nonce ~aad ~ciphertext) in
  { nonce; ciphertext; tag; aad }

let unseal ~key sealed =
  let enc_key, mac_key = split_key key in
  let expected =
    Hmac.hmac ~key:mac_key
      (mac_input ~nonce:sealed.nonce ~aad:sealed.aad ~ciphertext:sealed.ciphertext)
  in
  if not (Sha256.equal expected sealed.tag) then raise Authentication_failure;
  Aes.ctr_transform ~key:enc_key ~nonce:sealed.nonce sealed.ciphertext

let encode sealed =
  let buf = Buffer.create (Bytes.length sealed.ciphertext + 64) in
  let add_framed b =
    let len = Bytes.create 4 in
    Bytes.set_int32_be len 0 (Int32.of_int (Bytes.length b));
    Buffer.add_bytes buf len;
    Buffer.add_bytes buf b
  in
  add_framed sealed.nonce;
  add_framed sealed.aad;
  add_framed sealed.ciphertext;
  add_framed sealed.tag;
  Buffer.to_bytes buf

let decode raw =
  let pos = ref 0 in
  let take_framed () =
    if !pos + 4 > Bytes.length raw then invalid_arg "Authenc.decode: truncated";
    let len = Int32.to_int (Bytes.get_int32_be raw !pos) in
    pos := !pos + 4;
    if len < 0 || !pos + len > Bytes.length raw then
      invalid_arg "Authenc.decode: truncated";
    let b = Bytes.sub raw !pos len in
    pos := !pos + len;
    b
  in
  let nonce = take_framed () in
  let aad = take_framed () in
  let ciphertext = take_framed () in
  let tag = take_framed () in
  if !pos <> Bytes.length raw then invalid_arg "Authenc.decode: trailing bytes";
  { nonce; ciphertext; tag; aad }
