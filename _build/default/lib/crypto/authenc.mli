(** Authenticated encryption: AES-128-CTR with an encrypt-then-MAC
    HMAC-SHA256 tag.

    Backs TPM sealing and the SDK's [sgx_seal_data] equivalent.  The key is
    any 32-byte secret; the first 16 bytes key the cipher, the last 16 key
    the MAC (after domain separation). *)

type sealed = {
  nonce : bytes;  (** 12 bytes *)
  ciphertext : bytes;
  tag : bytes;  (** 32 bytes *)
  aad : bytes;  (** additional authenticated data, bound but not hidden *)
}

exception Authentication_failure

val seal : key:bytes -> ?aad:bytes -> nonce:bytes -> bytes -> sealed
(** @raise Invalid_argument if [key] is not 32 bytes or nonce not 12. *)

val unseal : key:bytes -> sealed -> bytes
(** @raise Authentication_failure if the tag, AAD, or key is wrong. *)

val encode : sealed -> bytes
(** Length-prefixed wire form (for writing sealed blobs to "disk"). *)

val decode : bytes -> sealed
(** @raise Invalid_argument on malformed input. *)
