(** AES-128 block cipher (FIPS 197) with CTR and XTS-style modes.

    CTR backs the sealing/confidentiality paths; the XTS mode mirrors what
    AMD SME applies at the memory controller (tweaked per-block encryption
    keyed by the physical address), used by the memory-encryption model's
    functional tests. *)

type key

val expand_key : bytes -> key
(** [expand_key k] expands a 16-byte key. @raise Invalid_argument. *)

val encrypt_block : key -> bytes -> bytes
(** One 16-byte block. *)

val decrypt_block : key -> bytes -> bytes

val ctr_transform : key:bytes -> nonce:bytes -> bytes -> bytes
(** CTR keystream XOR: encryption and decryption are the same operation.
    [nonce] is up to 12 bytes. *)

val xts_encrypt : key:bytes -> tweak:int -> bytes -> bytes
(** Encrypt a buffer whose length is a multiple of 16, tweaked by the
    (physical-address-derived) integer tweak. *)

val xts_decrypt : key:bytes -> tweak:int -> bytes -> bytes
