lib/crypto/authenc.mli:
