lib/crypto/signature.ml: Bytes Hashtbl Hmac Hyperenclave_hw Sha256
