lib/crypto/hmac.mli:
