lib/crypto/authenc.ml: Aes Buffer Bytes Hmac Int32 Sha256
