lib/crypto/aes.mli:
