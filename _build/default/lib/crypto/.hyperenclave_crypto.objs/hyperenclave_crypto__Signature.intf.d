lib/crypto/signature.mli: Hyperenclave_hw
