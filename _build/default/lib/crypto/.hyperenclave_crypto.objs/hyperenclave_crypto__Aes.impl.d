lib/crypto/aes.ml: Array Bytes Char Int32 Int64
