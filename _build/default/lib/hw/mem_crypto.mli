(** Memory-encryption engine models (Sec. 3.2 "Memory encryption", Fig. 11).

    - {!Plain}: no protection (the baselines).
    - {!Sme}: AMD Secure Memory Encryption — AES-XTS at the memory
      controller; a flat extra latency on every DRAM access, no integrity
      tree, no capacity limit.  This is what HyperEnclave runs with.
    - {!Mee}: Intel SGX's Memory Encryption Engine — AES-CTR plus a Merkle
      counter tree for integrity/freshness, so a miss additionally walks
      several tree levels; protected capacity is bounded by the EPC and
      overflowing pages are swapped by software (EWB/ELDU), which is what
      produces the Figure 11 cliff at 93 MB. *)

type engine = Plain | Sme | Mee of { epc_bytes : int }

val name : engine -> string

val miss_cost : Cost_model.t -> engine -> dirty_evict:bool -> int
(** Cycles added on an LLC miss (DRAM access + engine work).  A dirty
    eviction pays the write-back encryption too. *)

val hit_cost : Cost_model.t -> engine -> int
(** Cycles for an LLC hit — identical across engines: data inside the
    cache hierarchy is already plaintext. *)

val epc_limit : engine -> int option
(** Protected-capacity bound, if the engine has one. *)
