lib/hw/phys_mem.ml: Addr Bytes Char Hashtbl Printf
