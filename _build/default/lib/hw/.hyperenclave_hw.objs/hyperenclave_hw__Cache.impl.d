lib/hw/cache.ml: Array
