lib/hw/mem_crypto.mli: Cost_model
