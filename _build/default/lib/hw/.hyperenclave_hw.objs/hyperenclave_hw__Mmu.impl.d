lib/hw/mmu.ml: Addr Cost_model Cycles Format Hashtbl Page_table Tlb
