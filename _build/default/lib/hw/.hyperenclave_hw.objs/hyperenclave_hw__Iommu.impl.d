lib/hw/iommu.ml: Addr Bytes Hashtbl Phys_mem
