lib/hw/tlb.ml: Array Hashtbl Page_table Rng
