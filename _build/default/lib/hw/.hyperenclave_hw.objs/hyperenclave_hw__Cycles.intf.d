lib/hw/cycles.mli:
