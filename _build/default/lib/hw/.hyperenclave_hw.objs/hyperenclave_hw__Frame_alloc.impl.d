lib/hw/frame_alloc.ml: Array
