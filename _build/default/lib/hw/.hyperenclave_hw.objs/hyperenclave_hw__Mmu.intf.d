lib/hw/mmu.mli: Cost_model Cycles Format Page_table Rng Tlb
