lib/hw/rng.mli:
