lib/hw/cycles.ml:
