lib/hw/page_table.ml: Array Format
