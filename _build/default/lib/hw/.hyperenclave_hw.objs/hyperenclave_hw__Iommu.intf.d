lib/hw/iommu.mli: Phys_mem
