lib/hw/mem_crypto.ml: Cost_model
