lib/hw/cache.mli:
