lib/hw/rng.ml: Array Bytes Char Int64
