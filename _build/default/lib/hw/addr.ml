let page_shift = 12
let page_size = 1 lsl page_shift
let page_of addr = addr lsr page_shift
let base_of_page pn = pn lsl page_shift
let offset addr = addr land (page_size - 1)
let align_down addr = addr land lnot (page_size - 1)
let align_up addr = align_down (addr + page_size - 1)
let is_aligned addr = offset addr = 0

let pages_spanned ~addr ~len =
  if len <= 0 then 0 else page_of (addr + len - 1) - page_of addr + 1

let pp fmt addr = Format.fprintf fmt "0x%x" addr
let index ~level va = (va lsr (page_shift + (9 * level))) land 0x1ff
