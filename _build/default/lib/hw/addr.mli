(** Address arithmetic for the simulated machine.

    Virtual and physical addresses are plain [int]s (the simulated machine
    is well below 62 bits).  Pages are 4 KiB.  Frame numbers index physical
    pages; page numbers index virtual pages. *)

val page_size : int
(** 4096. *)

val page_shift : int
(** 12. *)

val page_of : int -> int
(** [page_of addr] is the page (or frame) number containing [addr]. *)

val base_of_page : int -> int
(** [base_of_page pn] is the first address of page [pn]. *)

val offset : int -> int
(** [offset addr] is [addr] modulo the page size. *)

val align_up : int -> int
(** Round up to the next page boundary. *)

val align_down : int -> int
(** Round down to a page boundary. *)

val is_aligned : int -> bool

val pages_spanned : addr:int -> len:int -> int
(** Number of pages touched by the byte range [\[addr, addr+len)]. *)

val pp : Format.formatter -> int -> unit
(** Hexadecimal address printer. *)

val index : level:int -> int -> int
(** [index ~level va] is the 9-bit radix-tree index of [va] at page-table
    [level] (level 3 is the root of a 4-level x86-64-style table, level 0
    selects the final PTE). *)
