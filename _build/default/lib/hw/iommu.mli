(** IOMMU model (requirement R-3, Sec. 3.2).

    Devices can only DMA into frames that appear in their translation
    table.  RustMonitor configures the tables so that its own reserved
    region and the enclave pool are never mapped for any device; the
    primary OS may map anything else for its peripherals. *)

exception Dma_blocked of { device : string; frame : int }

type t

val create : unit -> t

val attach : t -> device:string -> unit
(** Register a device with an empty (deny-all) translation table. *)

val grant : t -> device:string -> first_frame:int -> nframes:int -> unit
(** Map a frame range for the device. @raise Not_found if unattached. *)

val revoke : t -> device:string -> first_frame:int -> nframes:int -> unit

val revoke_everywhere : t -> first_frame:int -> nframes:int -> unit
(** Remove the range from {e every} device table — what RustMonitor does
    for reserved memory when it takes over. *)

val allowed : t -> device:string -> frame:int -> bool

val dma_write : t -> device:string -> Phys_mem.t -> addr:int -> bytes -> unit
(** @raise Dma_blocked when any touched frame is unmapped for the device. *)

val dma_read : t -> device:string -> Phys_mem.t -> addr:int -> len:int -> bytes

val devices : t -> string list
