(** Memory-management unit: guest page table + optional nested page table
    + TLB, with cycle accounting.

    Two configurations model the paper's Figure 2:
    - {b 1-level translation} (no NPT): HU-Enclaves and RustMonitor itself.
    - {b 2-dimensional translation} (guest PT under an NPT): the normal VM
      and GU/P-Enclaves.  A TLB miss then walks the guest table while every
      guest-level load is itself translated by the NPT, which is what makes
      nested misses several times more expensive.

    Faults are exceptions: {!Page_fault} corresponds to a guest #PF
    (delivered to whoever owns the guest table — RustMonitor for enclaves,
    the primary OS for normal processes, the P-Enclave itself for its own
    table); {!Npt_violation} corresponds to a nested fault, always handled
    by RustMonitor, and is how requirement R-1 manifests when the primary
    OS touches reserved memory. *)

type access = Read | Write | Exec

val pp_access : Format.formatter -> access -> unit

type fault = {
  vpn : int;  (** faulting virtual page *)
  access : access;
  user : bool;
  present : bool;  (** [false] = not-present fault, [true] = protection *)
}

exception Page_fault of fault
exception Npt_violation of { gfn : int; access : access }

type t

val create :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  gpt:Page_table.t ->
  ?npt:Page_table.t ->
  unit ->
  t

val translate : t -> access:access -> user:bool -> int -> int
(** [translate t ~access ~user va] is the host physical address, charging
    TLB/walk costs and setting accessed/dirty bits.
    @raise Page_fault on a guest translation failure or permission error.
    @raise Npt_violation when the final guest physical page has no nested
    mapping or insufficient nested permission. *)

val translate_page : t -> access:access -> user:bool -> vpn:int -> int
(** Like {!translate} but page-granular: returns the host frame. *)

val switch_context : t -> gpt:Page_table.t -> ?npt:Page_table.t -> unit -> unit
(** CR3 (and nested CR3) write: installs new tables and flushes the TLB,
    charging the flush cost. *)

val gpt : t -> Page_table.t
val npt : t -> Page_table.t option
val nested : t -> bool

val flush_tlb : t -> unit
val invalidate_vpn : t -> vpn:int -> unit
(** INVLPG after a PTE change; charges [tlb_shootdown]. *)

val tlb : t -> Tlb.t
