(** Last-level cache model.

    Figure 11's shape is governed by the LLC: below 8 MB the encryption
    engines are invisible (hits), above it every miss pays DRAM plus the
    engine.  A set-associative cache with LRU replacement over 64-byte
    lines reproduces that knee; nothing finer-grained is needed. *)

type t

type result = Hit | Miss of { evicted_dirty : bool }

val create : ?line_bytes:int -> ?ways:int -> size_bytes:int -> unit -> t
(** Default: 64-byte lines, 16 ways.  [size_bytes] is rounded to a power-of-
    two number of sets. *)

val access : t -> ?write:bool -> int -> result
(** Look up the line containing the physical address, filling on miss. *)

val flush_line : t -> int -> unit
(** CLFLUSH: evict the line containing the address (Fig. 7 methodology
    flushes transferred data to defeat caching). *)

val flush_all : t -> unit
val size_bytes : t -> int
val line_bytes : t -> int
val accesses : t -> int
val misses : t -> int
val reset_stats : t -> unit
