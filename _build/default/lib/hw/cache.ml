type line = { mutable tag : int; mutable dirty : bool; mutable lru : int }

type t = {
  line_bytes : int;
  ways : int;
  sets : int;
  data : line array array; (* sets x ways; tag = -1 means invalid *)
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

type result = Hit | Miss of { evicted_dirty : bool }

let rec pow2_floor n = if n land (n - 1) = 0 then n else pow2_floor (n land (n - 1))

let create ?(line_bytes = 64) ?(ways = 16) ~size_bytes () =
  let sets = max 1 (pow2_floor (size_bytes / line_bytes / ways)) in
  let data =
    Array.init sets (fun _ ->
        Array.init ways (fun _ -> { tag = -1; dirty = false; lru = 0 }))
  in
  { line_bytes; ways; sets; data; tick = 0; accesses = 0; misses = 0 }

let set_and_tag t addr =
  let line_no = addr / t.line_bytes in
  (line_no land (t.sets - 1), line_no)

let access t ?(write = false) addr =
  t.accesses <- t.accesses + 1;
  t.tick <- t.tick + 1;
  let set_idx, tag = set_and_tag t addr in
  let set = t.data.(set_idx) in
  let rec find i = if i >= t.ways then None else if set.(i).tag = tag then Some set.(i) else find (i + 1) in
  match find 0 with
  | Some line ->
      line.lru <- t.tick;
      if write then line.dirty <- true;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      (* Victim = invalid way if any, else LRU. *)
      let victim = ref set.(0) in
      for i = 1 to t.ways - 1 do
        if set.(i).tag = -1 then begin
          if !victim.tag <> -1 then victim := set.(i)
        end
        else if !victim.tag <> -1 && set.(i).lru < !victim.lru then
          victim := set.(i)
      done;
      let evicted_dirty = !victim.tag <> -1 && !victim.dirty in
      !victim.tag <- tag;
      !victim.dirty <- write;
      !victim.lru <- t.tick;
      Miss { evicted_dirty }

let flush_line t addr =
  let set_idx, tag = set_and_tag t addr in
  Array.iter
    (fun line ->
      if line.tag = tag then begin
        line.tag <- -1;
        line.dirty <- false
      end)
    t.data.(set_idx)

let flush_all t =
  Array.iter
    (Array.iter (fun line ->
         line.tag <- -1;
         line.dirty <- false))
    t.data

let size_bytes t = t.sets * t.ways * t.line_bytes
let line_bytes t = t.line_bytes
let accesses t = t.accesses
let misses t = t.misses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
