type entry = { frame : int; perms : Page_table.perms }

type t = {
  capacity : int;
  table : (int, entry) Hashtbl.t;
  mutable keys : int array; (* resident vpns, for O(1) random eviction *)
  mutable nkeys : int;
  rng : Rng.t;
  mutable lookups : int;
  mutable hits : int;
}

let create ?(capacity = 1536) rng =
  {
    capacity;
    table = Hashtbl.create capacity;
    keys = Array.make capacity 0;
    nkeys = 0;
    rng;
    lookups = 0;
    hits = 0;
  }

let lookup t ~vpn =
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.table vpn with
  | Some e ->
      t.hits <- t.hits + 1;
      Some e
  | None -> None

let remove_key t vpn =
  (* Linear scan is acceptable: invalidate is rare (shootdowns only). *)
  let rec find i = if i >= t.nkeys then -1 else if t.keys.(i) = vpn then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    t.keys.(i) <- t.keys.(t.nkeys - 1);
    t.nkeys <- t.nkeys - 1
  end

let evict_random t =
  let i = Rng.int t.rng t.nkeys in
  let vpn = t.keys.(i) in
  Hashtbl.remove t.table vpn;
  t.keys.(i) <- t.keys.(t.nkeys - 1);
  t.nkeys <- t.nkeys - 1

let insert t ~vpn e =
  (match Hashtbl.find_opt t.table vpn with
  | Some _ -> Hashtbl.replace t.table vpn e
  | None ->
      if t.nkeys >= t.capacity then evict_random t;
      Hashtbl.replace t.table vpn e;
      t.keys.(t.nkeys) <- vpn;
      t.nkeys <- t.nkeys + 1)

let invalidate t ~vpn =
  if Hashtbl.mem t.table vpn then begin
    Hashtbl.remove t.table vpn;
    remove_key t vpn
  end

let flush t =
  Hashtbl.reset t.table;
  t.nkeys <- 0

let entries t = t.nkeys
let lookups t = t.lookups
let hits t = t.hits

let reset_stats t =
  t.lookups <- 0;
  t.hits <- 0
