type engine = Plain | Sme | Mee of { epc_bytes : int }

let name = function
  | Plain -> "plain"
  | Sme -> "sme-xts"
  | Mee _ -> "mee-merkle"

let miss_cost (m : Cost_model.t) engine ~dirty_evict =
  let writeback_factor = if dirty_evict then 2 else 1 in
  match engine with
  | Plain -> m.cache_miss_dram * writeback_factor
  | Sme -> (m.cache_miss_dram + m.sme_miss_extra) * writeback_factor
  | Mee _ ->
      ((m.cache_miss_dram + m.mee_miss_extra) * writeback_factor)
      + (m.mee_tree_levels * m.mee_tree_level)

let hit_cost (m : Cost_model.t) _engine = m.cache_hit

let epc_limit = function
  | Plain | Sme -> None
  | Mee { epc_bytes } -> Some epc_bytes
