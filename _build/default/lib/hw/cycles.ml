type t = { mutable now : int }

let create () = { now = 0 }
let now clock = clock.now

let tick clock n =
  assert (n >= 0);
  clock.now <- clock.now + n

let elapsed clock ~since = clock.now - since

let time clock f =
  let start = clock.now in
  let result = f () in
  (result, clock.now - start)

let reset clock = clock.now <- 0
