(** Translation lookaside buffer.

    HyperEnclave's isolation argument depends on TLB hygiene: "The TLBs are
    cleared upon world switches to prevent illegal memory accesses using
    stale TLB entries" (Sec. 6).  The model is a bounded map from virtual
    page number to (frame, perms) with random replacement; precise
    replacement policy does not matter for any reproduced result, bounded
    capacity and explicit flushes do. *)

type entry = { frame : int; perms : Page_table.perms }

type t

val create : ?capacity:int -> Rng.t -> t
(** Default capacity 1536 entries (L2 TLB scale). *)

val lookup : t -> vpn:int -> entry option
val insert : t -> vpn:int -> entry -> unit

val invalidate : t -> vpn:int -> unit
(** INVLPG: drop one translation. *)

val flush : t -> unit
(** Full flush (world switch / CR3 write without PCID). *)

val entries : t -> int

val lookups : t -> int
val hits : t -> int
(** Counters for tests and the memory-latency bench. *)

val reset_stats : t -> unit
