exception Dma_blocked of { device : string; frame : int }

type t = { tables : (string, (int, unit) Hashtbl.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 8 }

let attach t ~device =
  if not (Hashtbl.mem t.tables device) then
    Hashtbl.replace t.tables device (Hashtbl.create 64)

let table t device =
  match Hashtbl.find_opt t.tables device with
  | Some tbl -> tbl
  | None -> raise Not_found

let grant t ~device ~first_frame ~nframes =
  let tbl = table t device in
  for f = first_frame to first_frame + nframes - 1 do
    Hashtbl.replace tbl f ()
  done

let revoke t ~device ~first_frame ~nframes =
  let tbl = table t device in
  for f = first_frame to first_frame + nframes - 1 do
    Hashtbl.remove tbl f
  done

let revoke_everywhere t ~first_frame ~nframes =
  Hashtbl.iter
    (fun _ tbl ->
      for f = first_frame to first_frame + nframes - 1 do
        Hashtbl.remove tbl f
      done)
    t.tables

let allowed t ~device ~frame =
  match Hashtbl.find_opt t.tables device with
  | None -> false
  | Some tbl -> Hashtbl.mem tbl frame

let check_range t device addr len =
  let first = Addr.page_of addr in
  let npages = Addr.pages_spanned ~addr ~len in
  for f = first to first + npages - 1 do
    if not (allowed t ~device ~frame:f) then raise (Dma_blocked { device; frame = f })
  done

let dma_write t ~device mem ~addr data =
  check_range t device addr (Bytes.length data);
  Phys_mem.write_bytes mem addr data

let dma_read t ~device mem ~addr ~len =
  check_range t device addr len;
  Phys_mem.read_bytes mem addr len

let devices t = Hashtbl.fold (fun d _ acc -> d :: acc) t.tables []
