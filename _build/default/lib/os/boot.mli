(** The measured boot chain (Sec. 3.3, Fig. 3).

    CRTM -> BIOS -> grub -> kernel -> initramfs, each component hashed and
    extended into its TPM PCR before it runs.  The produced event log is
    what a remote verifier later replays against the quote.  The
    RustMonitor image itself is measured by the kernel module
    ({!Kmod.load}), not here — that is the "late" part of measured late
    launch. *)

type component = { name : string; pcr_index : int; image : bytes }

val default_chain : Hyperenclave_hw.Rng.t -> component list
(** A deterministic five-component chain (CRTM, BIOS, grub, kernel,
    initramfs) whose images derive from the RNG seed, so tests can boot
    two platforms with identical or deliberately differing firmware. *)

val tamper : component list -> name:string -> component list
(** Flip a byte in the named component — an "evil maid" modification whose
    effect on the quote the tests check. *)

val measured_boot :
  Hyperenclave_tpm.Tpm.t ->
  component list ->
  Hyperenclave_monitor.Monitor.boot_event list
(** Run the chain: measure and extend each component in order; returns the
    event log. *)
