lib/os/kmod.mli: Enclave Hyperenclave_hw Hyperenclave_monitor Hyperenclave_tpm Kernel Monitor Process Sgx_types
