lib/os/kernel.ml: Addr Bytes Cost_model Cycles Frame_alloc Hashtbl Hyperenclave_hw Iommu List Mmu Option Page_table Phys_mem Process Rng Tlb
