lib/os/boot.ml: Bytes Char Hyperenclave_hw Hyperenclave_monitor Hyperenclave_tpm List Rng
