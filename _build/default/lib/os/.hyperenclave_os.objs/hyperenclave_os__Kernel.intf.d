lib/os/kernel.mli: Cost_model Cycles Hyperenclave_hw Iommu Mmu Page_table Phys_mem Process Rng
