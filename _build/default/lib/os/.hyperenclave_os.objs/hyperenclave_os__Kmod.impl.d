lib/os/kmod.ml: Addr Hypercall Hyperenclave_hw Hyperenclave_monitor Hyperenclave_tpm Kernel Monitor Printf Process
