lib/os/process.mli: Hashtbl Hyperenclave_hw
