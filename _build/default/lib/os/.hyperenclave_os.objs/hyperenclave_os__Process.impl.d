lib/os/process.ml: Hashtbl Hyperenclave_hw
