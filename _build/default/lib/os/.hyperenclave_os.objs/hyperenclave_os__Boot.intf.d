lib/os/boot.mli: Hyperenclave_hw Hyperenclave_monitor Hyperenclave_tpm
