open Hyperenclave_hw

type component = { name : string; pcr_index : int; image : bytes }

let default_chain rng =
  let component name pcr_index size =
    (* Derive a stable pseudo-image from the seed stream. *)
    { name; pcr_index; image = Rng.bytes rng size }
  in
  [
    component "crtm" 0 256;
    component "bios" 1 4096;
    component "grub" 2 2048;
    component "kernel" 3 16384;
    component "initramfs" 4 8192;
  ]

let tamper chain ~name =
  List.map
    (fun c ->
      if c.name <> name then c
      else begin
        let image = Bytes.copy c.image in
        Bytes.set image 0
          (Char.chr (Char.code (Bytes.get image 0) lxor 0x01));
        { c with image }
      end)
    chain

let measured_boot tpm chain =
  List.map
    (fun c ->
      let measurement =
        Hyperenclave_tpm.Tpm.extend_measurement tpm ~index:c.pcr_index c.image
      in
      {
        Hyperenclave_monitor.Monitor.pcr_index = c.pcr_index;
        label = c.name;
        measurement;
      })
    chain
