open Hyperenclave_monitor
module Tpm = Hyperenclave_tpm.Tpm

(* Length-framed fields: u32 big-endian length + payload.  Composite
   fields nest the same scheme. *)

let add_framed buf data =
  let len = Bytes.create 4 in
  Bytes.set_int32_be len 0 (Int32.of_int (Bytes.length data));
  Buffer.add_bytes buf len;
  Buffer.add_bytes buf data

let add_string buf s = add_framed buf (Bytes.of_string s)
let add_int buf n = add_string buf (string_of_int n)
let add_bool buf b = add_string buf (if b then "1" else "0")

let encode_report (r : Sgx_types.report) =
  let buf = Buffer.create 256 in
  add_framed buf r.mrenclave;
  add_framed buf r.mrsigner;
  add_bool buf r.attributes.Sgx_types.debug;
  add_string buf (Sgx_types.mode_name r.attributes.Sgx_types.mode);
  add_int buf r.attributes.Sgx_types.xfrm;
  add_int buf r.isv_prod_id;
  add_int buf r.isv_svn;
  add_framed buf r.report_data;
  add_framed buf r.key_id;
  add_framed buf r.mac;
  Buffer.to_bytes buf

let encode_tpm_quote (q : Tpm.quote) =
  let buf = Buffer.create 256 in
  add_framed buf q.Tpm.pcr_digest;
  add_string buf (String.concat "," (List.map string_of_int q.Tpm.pcr_selection));
  add_framed buf q.Tpm.nonce;
  add_framed buf q.Tpm.signature;
  add_framed buf q.Tpm.aik_public;
  add_framed buf q.Tpm.aik_certificate;
  add_framed buf q.Tpm.ek_public;
  Buffer.to_bytes buf

let encode_event (e : Monitor.boot_event) =
  let buf = Buffer.create 64 in
  add_int buf e.Monitor.pcr_index;
  add_string buf e.Monitor.label;
  add_framed buf e.Monitor.measurement;
  Buffer.to_bytes buf

let encode (q : Monitor.quote) =
  let buf = Buffer.create 1024 in
  add_string buf "HEQ1" (* magic + version *);
  add_framed buf (encode_report q.Monitor.report);
  add_framed buf q.Monitor.ems;
  add_framed buf q.Monitor.hapk;
  add_framed buf (encode_tpm_quote q.Monitor.tpm_quote);
  add_int buf (List.length q.Monitor.events);
  List.iter (fun e -> add_framed buf (encode_event e)) q.Monitor.events;
  Buffer.to_bytes buf

(* --- decoding ------------------------------------------------------------------ *)

type cursor = { raw : bytes; mutable pos : int }

exception Malformed of string

let take cursor =
  if cursor.pos + 4 > Bytes.length cursor.raw then raise (Malformed "truncated length");
  let len = Int32.to_int (Bytes.get_int32_be cursor.raw cursor.pos) in
  cursor.pos <- cursor.pos + 4;
  if len < 0 || cursor.pos + len > Bytes.length cursor.raw then
    raise (Malformed "truncated payload");
  let payload = Bytes.sub cursor.raw cursor.pos len in
  cursor.pos <- cursor.pos + len;
  payload

let take_string cursor = Bytes.to_string (take cursor)

let take_int cursor =
  match int_of_string_opt (take_string cursor) with
  | Some n -> n
  | None -> raise (Malformed "bad integer")

let take_bool cursor =
  match take_string cursor with
  | "1" -> true
  | "0" -> false
  | _ -> raise (Malformed "bad boolean")

let take_mode cursor =
  let name = take_string cursor in
  match
    List.find_opt (fun m -> Sgx_types.mode_name m = name) Sgx_types.all_modes
  with
  | Some mode -> mode
  | None -> raise (Malformed ("unknown mode " ^ name))

let finished cursor name =
  if cursor.pos <> Bytes.length cursor.raw then
    raise (Malformed ("trailing bytes in " ^ name))

let decode_report raw =
  let c = { raw; pos = 0 } in
  let mrenclave = take c in
  let mrsigner = take c in
  let debug = take_bool c in
  let mode = take_mode c in
  let xfrm = take_int c in
  let isv_prod_id = take_int c in
  let isv_svn = take_int c in
  let report_data = take c in
  let key_id = take c in
  let mac = take c in
  finished c "report";
  {
    Sgx_types.mrenclave;
    mrsigner;
    attributes = { Sgx_types.debug; mode; xfrm };
    isv_prod_id;
    isv_svn;
    report_data;
    key_id;
    mac;
  }

let decode_tpm_quote raw =
  let c = { raw; pos = 0 } in
  let pcr_digest = take c in
  let selection = take_string c in
  let pcr_selection =
    if selection = "" then []
    else
      List.map
        (fun s ->
          match int_of_string_opt s with
          | Some n -> n
          | None -> raise (Malformed "bad PCR index"))
        (String.split_on_char ',' selection)
  in
  let nonce = take c in
  let signature = take c in
  let aik_public = take c in
  let aik_certificate = take c in
  let ek_public = take c in
  finished c "tpm quote";
  {
    Tpm.pcr_digest;
    pcr_selection;
    nonce;
    signature;
    aik_public;
    aik_certificate;
    ek_public;
  }

let decode_event raw =
  let c = { raw; pos = 0 } in
  let pcr_index = take_int c in
  let label = take_string c in
  let measurement = take c in
  finished c "event";
  { Monitor.pcr_index; label; measurement }

let decode raw =
  try
    let c = { raw; pos = 0 } in
    (match take_string c with
    | "HEQ1" -> ()
    | other -> raise (Malformed ("bad magic " ^ other)));
    let report = decode_report (take c) in
    let ems = take c in
    let hapk = take c in
    let tpm_quote = decode_tpm_quote (take c) in
    let n_events = take_int c in
    if n_events < 0 || n_events > 1024 then raise (Malformed "unreasonable event count");
    (* explicit loop: the cursor side effect must run strictly in order *)
    let events = ref [] in
    for _ = 1 to n_events do
      events := decode_event (take c) :: !events
    done;
    let events = List.rev !events in
    finished c "quote";
    Result.Ok { Monitor.report; ems; hapk; tpm_quote; events }
  with Malformed m -> Result.Error m
