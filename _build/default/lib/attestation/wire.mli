(** Wire format for HyperEnclave quotes (Fig. 4).

    The evaluation's attestation flow ships the quote to a remote
    verifier; this module gives the structure of Fig. 4 a concrete,
    length-framed binary encoding (an extension of [sgx_quote_t], as
    Sec. 5.3 describes) so the verifier side can run on untrusted bytes.
    Decoding performs structural validation only — cryptographic checks
    stay in {!Verifier}. *)

open Hyperenclave_monitor

val encode : Monitor.quote -> bytes

val decode : bytes -> (Monitor.quote, string) result
(** Structural parse: every field length-checked, trailing bytes
    rejected.  A decoded quote is untrusted data until {!Verifier.verify}
    passes. *)
