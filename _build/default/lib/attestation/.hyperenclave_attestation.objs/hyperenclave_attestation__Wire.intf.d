lib/attestation/wire.mli: Hyperenclave_monitor Monitor
