lib/attestation/wire.ml: Buffer Bytes Hyperenclave_monitor Hyperenclave_tpm Int32 List Monitor Result Sgx_types String
