lib/attestation/verifier.mli: Format Hyperenclave_crypto Hyperenclave_monitor Monitor Sgx_types
