lib/attestation/verifier.ml: Bytes Format Hyperenclave_crypto Hyperenclave_monitor Hyperenclave_tpm List Monitor Sgx_types Sha256 Signature
