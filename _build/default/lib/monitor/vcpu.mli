(** Virtual CPU register state.

    What RustMonitor switches on every world transition ("RustMonitor
    switches the vCPU states (e.g. the instruction pointer, thread
    pointer, NPT, and GPT)", Sec. 4.1) and what an AEX spills into the
    interrupted thread's SSA frame.  The register file is symbolic — the
    simulation doesn't execute x86 instructions — but the save/restore
    mechanics are real: AEX serializes the state into the SSA page's
    physical frame (where only the enclave and monitor can see it) and
    ERESUME restores it bit-for-bit. *)

type regs = {
  mutable rip : int;
  mutable rsp : int;
  mutable rflags : int;
  mutable fs_base : int;  (** thread pointer *)
  gpr : int array;  (** 14 general-purpose registers *)
}

val fresh : entry:int -> regs
(** Architectural reset state, starting at [entry]. *)

val copy : regs -> regs

val scramble : Hyperenclave_hw.Rng.t -> regs -> unit
(** Randomize the register file — tests use this to model arbitrary
    in-enclave execution state before an AEX. *)

val equal : regs -> regs -> bool

val serialize : regs -> bytes
(** SSA frame layout: 144 bytes, fixed. *)

val deserialize : bytes -> regs
(** @raise Invalid_argument on a malformed frame. *)

val ssa_frame_bytes : int
