(** Cross-platform ISA mapping (Sec. 8, "HyperEnclave on other
    platforms").

    The paper's headline property is that nothing in the design is
    x86-specific: it needs two-level address translation and a TPM.
    Sec. 8 spells out the ARMv8 mapping (monitor -> EL2, primary OS ->
    EL1/EL0, enclaves -> EL1 or EL0 under stage-2 translation) and notes
    the RISC-V H-extension offers the same shape (HS / VS / VU modes).

    This module carries that mapping plus a transition-cost projection:
    the x86 constants are the paper's measurements; the ARM and RISC-V
    factors are projections from published trap/hypercall costs (ARM EL2
    round trips are markedly cheaper than VMX transitions; RISC-V H
    trap costs sit between the two).  Projections are exactly that —
    the paper defers real ports to future work — but they let the
    Table-1-style comparison be asked per ISA. *)

open Hyperenclave_hw

type t = X86_64 | Armv8 | Riscv_h

val all : t list
val name : t -> string

val monitor_mode : t -> string
(** Where RustMonitor runs: "VMX root mode" / "EL2" / "HS-mode". *)

val normal_mode : t -> string
(** Where the demoted primary OS runs. *)

val secure_mode : t -> Sgx_types.operation_mode -> string
(** Where each enclave operation mode lands, e.g. GU on ARMv8 is "EL0
    under stage-2 translation". *)

val supports_flexible_modes : t -> bool
(** All three do — the point of Sec. 8. *)

val transition_factor : t -> float
(** Scaling applied to the world-switch primitives (hypercall, vmexit,
    injection) relative to the measured x86 values. *)

val scale_cost_model : t -> Cost_model.t -> Cost_model.t
(** The projected cost model for the ISA: transition primitives and the
    mode-specific world-switch extras scaled by {!transition_factor};
    memory-system and OS costs untouched; the Intel-SGX-silicon constants
    untouched (they exist only on x86). *)
