open Hyperenclave_hw
open Hyperenclave_crypto

let ecreate_chunk (secs : Sgx_types.secs) =
  Bytes.of_string
    (Printf.sprintf "ecreate:%x:%x:%s:%b:%d" secs.base_va secs.size
       (Sgx_types.mode_name secs.attributes.mode)
       secs.attributes.debug secs.attributes.xfrm)

let eadd_header ~vpn ~perms ~page_type =
  Bytes.of_string
    (Printf.sprintf "eadd:%x:%s:%s:" vpn
       (Format.asprintf "%a" Page_table.pp_perms perms)
       (Sgx_types.page_type_name page_type))

let page_padded content =
  if Bytes.length content > Addr.page_size then
    invalid_arg "Measure.page_padded: content exceeds a page";
  let page = Bytes.make Addr.page_size '\000' in
  Bytes.blit content 0 page 0 (Bytes.length content);
  page

type page = {
  vpn : int;
  perms : Page_table.perms;
  page_type : Sgx_types.page_type;
  content : bytes;
}

let expected secs pages =
  let ctx = Sha256.init () in
  Sha256.update ctx (ecreate_chunk secs);
  List.iter
    (fun p ->
      Sha256.update ctx
        (eadd_header ~vpn:p.vpn ~perms:p.perms ~page_type:p.page_type);
      Sha256.update ctx (page_padded p.content))
    pages;
  Sha256.finalize ctx
