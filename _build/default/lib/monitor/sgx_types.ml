open Hyperenclave_crypto

type operation_mode = GU | HU | P

let mode_name = function
  | GU -> "GU-Enclave"
  | HU -> "HU-Enclave"
  | P -> "P-Enclave"

let pp_mode fmt m = Format.pp_print_string fmt (mode_name m)
let all_modes = [ GU; HU; P ]

type page_type = Pt_secs | Pt_tcs | Pt_reg | Pt_ssa

let page_type_name = function
  | Pt_secs -> "SECS"
  | Pt_tcs -> "TCS"
  | Pt_reg -> "REG"
  | Pt_ssa -> "SSA"

type attributes = { debug : bool; mode : operation_mode; xfrm : int }

type secs = {
  base_va : int;
  size : int;
  attributes : attributes;
  ssa_frame_pages : int;
}

type tcs = {
  tcs_vpn : int;
  entry_va : int;
  nssa : int;
  ssa_base_vpn : int;
  mutable busy : bool;
  mutable current_ssa : int;
}

type sigstruct = {
  enclave_hash : bytes;
  vendor_public : Signature.public_key;
  signature : bytes;
  isv_prod_id : int;
  isv_svn : int;
}

let sigstruct_body ~enclave_hash ~isv_prod_id ~isv_svn =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "sigstruct:";
  Buffer.add_bytes buf enclave_hash;
  Buffer.add_string buf (Printf.sprintf "%d:%d" isv_prod_id isv_svn);
  Buffer.to_bytes buf

let make_sigstruct ~vendor ~enclave_hash ~isv_prod_id ~isv_svn =
  let body = sigstruct_body ~enclave_hash ~isv_prod_id ~isv_svn in
  {
    enclave_hash;
    vendor_public = Signature.public_of_private vendor;
    signature = Signature.sign vendor body;
    isv_prod_id;
    isv_svn;
  }

let sigstruct_valid s =
  Signature.verify s.vendor_public
    (sigstruct_body ~enclave_hash:s.enclave_hash ~isv_prod_id:s.isv_prod_id
       ~isv_svn:s.isv_svn)
    ~signature:s.signature

let mrsigner_of s = Sha256.digest_bytes s.vendor_public

type report = {
  mrenclave : bytes;
  mrsigner : bytes;
  attributes : attributes;
  isv_prod_id : int;
  isv_svn : int;
  report_data : bytes;
  key_id : bytes;
  mac : bytes;
}

let report_body r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "report:";
  Buffer.add_bytes buf r.mrenclave;
  Buffer.add_bytes buf r.mrsigner;
  Buffer.add_string buf
    (Printf.sprintf "%b:%s:%d:%d:%d" r.attributes.debug
       (mode_name r.attributes.mode)
       r.attributes.xfrm r.isv_prod_id r.isv_svn);
  Buffer.add_bytes buf r.report_data;
  Buffer.add_bytes buf r.key_id;
  Buffer.to_bytes buf

type key_name = Seal_key_mrenclave | Seal_key_mrsigner | Report_key

let key_name_label = function
  | Seal_key_mrenclave -> "seal-mrenclave"
  | Seal_key_mrsigner -> "seal-mrsigner"
  | Report_key -> "report"

type exception_vector = Ud | Pf of { va : int; write : bool } | Gp | De

let vector_name = function
  | Ud -> "#UD"
  | Pf _ -> "#PF"
  | Gp -> "#GP"
  | De -> "#DE"
