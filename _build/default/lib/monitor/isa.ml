open Hyperenclave_hw

type t = X86_64 | Armv8 | Riscv_h

let all = [ X86_64; Armv8; Riscv_h ]

let name = function
  | X86_64 -> "x86-64 (AMD SVM)"
  | Armv8 -> "ARMv8-A (EL2)"
  | Riscv_h -> "RISC-V (H extension)"

let monitor_mode = function
  | X86_64 -> "VMX root mode"
  | Armv8 -> "EL2"
  | Riscv_h -> "HS-mode"

let normal_mode = function
  | X86_64 -> "VMX non-root ring-0/ring-3"
  | Armv8 -> "EL1/EL0"
  | Riscv_h -> "VS/VU-mode"

let secure_mode isa mode =
  match (isa, mode) with
  | X86_64, Sgx_types.GU -> "guest ring-3 (nested paging)"
  | X86_64, Sgx_types.HU -> "host ring-3 (1-level paging)"
  | X86_64, Sgx_types.P -> "guest ring-0 (own IDT + level-1 table)"
  | Armv8, Sgx_types.GU -> "EL0 under stage-2 translation"
  | Armv8, Sgx_types.HU -> "EL0 alongside the monitor (stage-1 only)"
  | Armv8, Sgx_types.P -> "EL1 (own vector table + stage-1 table)"
  | Riscv_h, Sgx_types.GU -> "VU-mode under G-stage translation"
  | Riscv_h, Sgx_types.HU -> "U-mode under HS (single-stage)"
  | Riscv_h, Sgx_types.P -> "VS-mode (own stvec + satp)"

let supports_flexible_modes _ = true

(* Projection basis: ARM EL2 trap round trips measure well under half a
   VMX transition on comparable cores; RISC-V H-extension traps (on the
   cores with published numbers) land between ARM and x86. *)
let transition_factor = function
  | X86_64 -> 1.0
  | Armv8 -> 0.55
  | Riscv_h -> 0.75

let scale_cost_model isa (m : Cost_model.t) =
  let f = transition_factor isa in
  let s v = int_of_float (float_of_int v *. f) in
  {
    m with
    hypercall = s m.hypercall;
    vmexit = s m.vmexit;
    vminject = s m.vminject;
    enter_extra_gu = s m.enter_extra_gu;
    exit_extra_gu = s m.exit_extra_gu;
    enter_extra_hu = s m.enter_extra_hu;
    exit_extra_hu = s m.exit_extra_hu;
    enter_extra_p = s m.enter_extra_p;
    exit_extra_p = s m.exit_extra_p;
    aex_save = s m.aex_save;
  }
