(** SGX-compatible data structures (Sec. 3.4).

    "To be compatible with the official Intel SGX SDK, most data structures
    involved in HyperEnclave (such as the SIGSTRUCT structure, the SECS
    page, and the TCS page) are similar to that of SGX."  These are the
    shared vocabulary between the monitor (which emulates the privileged
    SGX instructions) and the SDK (which emulates the user leaf
    functions). *)

(** Enclave operation mode (Sec. 4): the paper's headline flexibility. *)
type operation_mode =
  | GU  (** guest user: guest ring-3 under nested paging *)
  | HU  (** host user: host ring-3, 1-level paging, syscall transitions *)
  | P  (** privileged: guest ring-0, owns IDT and level-1 page table *)

val mode_name : operation_mode -> string
val pp_mode : Format.formatter -> operation_mode -> unit
val all_modes : operation_mode list

(** EPCM-style page types. *)
type page_type = Pt_secs | Pt_tcs | Pt_reg | Pt_ssa

val page_type_name : page_type -> string

type attributes = {
  debug : bool;
  mode : operation_mode;
  xfrm : int;  (** XSAVE feature mask; opaque, measured *)
}

(** SECS: per-enclave control structure. *)
type secs = {
  base_va : int;  (** ELRANGE base (page aligned) *)
  size : int;  (** ELRANGE size in bytes (page multiple) *)
  attributes : attributes;
  ssa_frame_pages : int;  (** SSA pages per frame (>1 enables nested
                              exception handling, Sec. 3.4) *)
}

(** TCS: one per enclave thread. *)
type tcs = {
  tcs_vpn : int;
  entry_va : int;  (** enclave entry point for this thread *)
  nssa : int;  (** number of SSA frames *)
  ssa_base_vpn : int;  (** first SSA page (OSSA); AEX state spills here *)
  mutable busy : bool;  (** an enclave thread is bound to one TCS at a time *)
  mutable current_ssa : int;  (** SSA index; bumped on AEX *)
}

(** SIGSTRUCT: the vendor's signature over the enclave measurement. *)
type sigstruct = {
  enclave_hash : bytes;  (** expected MRENCLAVE *)
  vendor_public : Hyperenclave_crypto.Signature.public_key;
  signature : bytes;
  isv_prod_id : int;
  isv_svn : int;
}

val make_sigstruct :
  vendor:Hyperenclave_crypto.Signature.private_key ->
  enclave_hash:bytes ->
  isv_prod_id:int ->
  isv_svn:int ->
  sigstruct

val sigstruct_valid : sigstruct -> bool
val mrsigner_of : sigstruct -> bytes
(** SHA-256 of the vendor public key, as in SGX. *)

(** EREPORT output: locally-verifiable attestation structure. *)
type report = {
  mrenclave : bytes;
  mrsigner : bytes;
  attributes : attributes;
  isv_prod_id : int;
  isv_svn : int;
  report_data : bytes;  (** 64 user bytes *)
  key_id : bytes;
  mac : bytes;  (** under the platform report key *)
}

val report_body : report -> bytes
(** Serialization covered by the MAC / the quote signature. *)

(** EGETKEY key requests. *)
type key_name = Seal_key_mrenclave | Seal_key_mrsigner | Report_key

val key_name_label : key_name -> string

(** Hardware exception vectors the reproduction exercises. *)
type exception_vector = Ud | Pf of { va : int; write : bool } | Gp | De

val vector_name : exception_vector -> string
