lib/monitor/enclave.mli: Hyperenclave_crypto Hyperenclave_hw Page_table Sgx_types Vcpu
