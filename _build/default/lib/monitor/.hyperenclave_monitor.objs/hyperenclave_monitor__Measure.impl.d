lib/monitor/measure.ml: Addr Bytes Format Hyperenclave_crypto Hyperenclave_hw List Page_table Printf Sgx_types Sha256
