lib/monitor/vcpu.mli: Hyperenclave_hw
