lib/monitor/monitor.mli: Cost_model Cycles Enclave Epc Hyperenclave_crypto Hyperenclave_hw Hyperenclave_tpm Iommu Mmu Page_table Phys_mem Rng Sgx_types
