lib/monitor/world_switch.mli: Cost_model Hyperenclave_hw Sgx_types
