lib/monitor/hypercall.ml: Enclave Hyperenclave_hw Monitor Page_table Sgx_types
