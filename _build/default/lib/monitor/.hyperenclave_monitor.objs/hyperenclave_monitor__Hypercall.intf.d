lib/monitor/hypercall.mli: Enclave Hyperenclave_hw Monitor Page_table Sgx_types
