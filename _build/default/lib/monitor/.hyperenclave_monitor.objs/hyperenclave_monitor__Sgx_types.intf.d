lib/monitor/sgx_types.mli: Format Hyperenclave_crypto
