lib/monitor/vcpu.ml: Array Bytes Hyperenclave_hw Int64 Rng
