lib/monitor/epc.mli: Sgx_types
