lib/monitor/epc.ml: Frame_alloc Hashtbl Hyperenclave_hw List Option Sgx_types
