lib/monitor/isa.mli: Cost_model Hyperenclave_hw Sgx_types
