lib/monitor/enclave.ml: Addr Bytes Hyperenclave_crypto Hyperenclave_hw List Measure Page_table Sgx_types Sha256 Vcpu
