lib/monitor/sgx_types.ml: Buffer Format Hyperenclave_crypto Printf Sha256 Signature
