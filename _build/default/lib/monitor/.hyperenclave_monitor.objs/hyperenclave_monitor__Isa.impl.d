lib/monitor/isa.ml: Cost_model Hyperenclave_hw Sgx_types
