lib/monitor/world_switch.ml: Cost_model Hyperenclave_hw Sgx_types
