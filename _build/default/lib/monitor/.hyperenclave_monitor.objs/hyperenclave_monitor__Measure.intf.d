lib/monitor/measure.mli: Hyperenclave_hw Page_table Sgx_types
