(** The enclave measurement scheme.

    Pure functions producing the exact byte chunks RustMonitor hashes at
    ECREATE/EADD, shared with the SDK's offline signing tool (the
    [sgx_sign] equivalent), which must predict MRENCLAVE without asking
    the monitor. *)

open Hyperenclave_hw

val ecreate_chunk : Sgx_types.secs -> bytes
(** Seed chunk binding ELRANGE geometry, mode, debug and xfrm. *)

val eadd_header :
  vpn:int -> perms:Page_table.perms -> page_type:Sgx_types.page_type -> bytes

val page_padded : bytes -> bytes
(** Content padded with zeroes to exactly one page, as measured. *)

type page = {
  vpn : int;
  perms : Page_table.perms;
  page_type : Sgx_types.page_type;
  content : bytes;
}

val expected : Sgx_types.secs -> page list -> bytes
(** MRENCLAVE for an enclave built by ECREATE followed by these EADDs in
    order — must equal what {!Monitor.einit} finalizes. *)
