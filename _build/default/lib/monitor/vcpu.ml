type regs = {
  mutable rip : int;
  mutable rsp : int;
  mutable rflags : int;
  mutable fs_base : int;
  gpr : int array;
}

let gpr_count = 14
let ssa_frame_bytes = 8 * (4 + gpr_count)

let fresh ~entry =
  {
    rip = entry;
    rsp = 0;
    rflags = 0x202 (* IF set, reserved bit 1 *);
    fs_base = 0;
    gpr = Array.make gpr_count 0;
  }

let copy r =
  {
    rip = r.rip;
    rsp = r.rsp;
    rflags = r.rflags;
    fs_base = r.fs_base;
    gpr = Array.copy r.gpr;
  }

let scramble rng r =
  let open Hyperenclave_hw in
  r.rip <- Rng.int rng 0x1000_0000;
  r.rsp <- Rng.int rng 0x1000_0000;
  r.rflags <- Rng.int rng 0x10000 lor 0x202;
  r.fs_base <- Rng.int rng 0x1000_0000;
  Array.iteri (fun i _ -> r.gpr.(i) <- Rng.int rng 0x4000_0000) r.gpr

let equal a b =
  a.rip = b.rip && a.rsp = b.rsp && a.rflags = b.rflags
  && a.fs_base = b.fs_base && a.gpr = b.gpr

let serialize r =
  let out = Bytes.create ssa_frame_bytes in
  let put i v = Bytes.set_int64_le out (8 * i) (Int64.of_int v) in
  put 0 r.rip;
  put 1 r.rsp;
  put 2 r.rflags;
  put 3 r.fs_base;
  Array.iteri (fun i v -> put (4 + i) v) r.gpr;
  out

let deserialize raw =
  if Bytes.length raw <> ssa_frame_bytes then
    invalid_arg "Vcpu.deserialize: wrong SSA frame size";
  let get i = Int64.to_int (Bytes.get_int64_le raw (8 * i)) in
  {
    rip = get 0;
    rsp = get 1;
    rflags = get 2;
    fs_base = get 3;
    gpr = Array.init gpr_count (fun i -> get (4 + i));
  }
