(** Platform Configuration Register bank.

    The trust argument of Sec. 2.2/3.3 rests on two properties modelled
    here exactly: PCRs reset to zero only on power events, and the only
    mutation is [extend] — new = SHA-256(old || measurement) — so a PCR
    value commits to the entire ordered sequence of measurements and can
    never be rolled back to a chosen value. *)

type t

val bank_size : int
(** 24 registers, as in TPM 2.0's SHA-256 bank. *)

val create : unit -> t
(** All registers at the 32-byte zero value (post-reset state). *)

val reset : t -> unit

val read : t -> index:int -> bytes
(** @raise Invalid_argument for an out-of-range index. *)

val extend : t -> index:int -> bytes -> unit
(** [extend t ~index m]: PCR := SHA-256(PCR || m).  [m] may be any length;
    real TPMs take a digest, callers here usually pass one. *)

val selection_digest : t -> indices:int list -> bytes
(** SHA-256 over the concatenation of the selected registers, in the given
    order — the value covered by quotes and seal policies. *)

val equal_value : bytes -> bytes -> bool
