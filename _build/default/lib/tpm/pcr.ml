open Hyperenclave_crypto

let bank_size = 24

type t = { regs : bytes array }

let zero () = Bytes.make Sha256.digest_size '\000'
let create () = { regs = Array.init bank_size (fun _ -> zero ()) }

let reset t =
  Array.iteri (fun i _ -> t.regs.(i) <- zero ()) t.regs

let check_index index =
  if index < 0 || index >= bank_size then
    invalid_arg (Printf.sprintf "Pcr: index %d out of range" index)

let read t ~index =
  check_index index;
  Bytes.copy t.regs.(index)

let extend t ~index m =
  check_index index;
  let ctx = Sha256.init () in
  Sha256.update ctx t.regs.(index);
  Sha256.update ctx m;
  t.regs.(index) <- Sha256.finalize ctx

let selection_digest t ~indices =
  let ctx = Sha256.init () in
  List.iter
    (fun index ->
      check_index index;
      Sha256.update ctx t.regs.(index))
    indices;
  Sha256.finalize ctx

let equal_value = Sha256.equal
