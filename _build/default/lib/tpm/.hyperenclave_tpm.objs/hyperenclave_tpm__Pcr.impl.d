lib/tpm/pcr.ml: Array Bytes Hyperenclave_crypto List Printf Sha256
