lib/tpm/tpm.ml: Authenc Buffer Bytes Char Cost_model Cycles Hashtbl Hyperenclave_crypto Hyperenclave_hw List Pcr Rng Sha256 Signature
