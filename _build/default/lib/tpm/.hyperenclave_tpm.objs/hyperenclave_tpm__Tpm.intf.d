lib/tpm/tpm.mli: Hyperenclave_crypto Hyperenclave_hw Pcr
