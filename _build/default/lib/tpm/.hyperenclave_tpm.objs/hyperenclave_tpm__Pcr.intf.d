lib/tpm/pcr.mli:
