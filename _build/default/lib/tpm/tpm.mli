(** Trusted Platform Module (Sec. 2.2).

    One device per platform, manufactured with an Endorsement Key (EK).
    An Attestation Identity Key (AIK) is generated inside the TPM and
    certified by the EK; quotes over the PCR bank are signed with the AIK.
    [seal]/[unseal] bind secrets to a PCR policy: unsealing succeeds only
    on the same chip with matching PCR values — the property RustMonitor's
    [K_root] storage relies on (Sec. 3.3 "Secret key generation").

    Every command charges [Cost_model.tpm_command] cycles: discrete TPMs
    sit on a slow bus, which is why the monitor uses the TPM only at boot
    and derives everything else in software. *)

type t

type quote = {
  pcr_digest : bytes;  (** digest over the selected PCRs *)
  pcr_selection : int list;
  nonce : bytes;  (** verifier freshness challenge *)
  signature : bytes;  (** by the AIK *)
  aik_public : Hyperenclave_crypto.Signature.public_key;
  aik_certificate : bytes;  (** EK signature over the AIK public key *)
  ek_public : Hyperenclave_crypto.Signature.public_key;
}

exception Unseal_failed of string

val manufacture :
  clock:Hyperenclave_hw.Cycles.t ->
  cost:Hyperenclave_hw.Cost_model.t ->
  rng:Hyperenclave_hw.Rng.t ->
  t
(** A fresh chip: unique EK, certified AIK, PCRs at zero. *)

val startup : t -> unit
(** Power-on / reset: PCRs return to zero.  Seal blobs and keys survive. *)

val pcrs : t -> Pcr.t
val pcr_extend : t -> index:int -> bytes -> unit
val pcr_read : t -> index:int -> bytes

val extend_measurement : t -> index:int -> bytes -> bytes
(** Measure a blob (SHA-256) then extend; returns the measurement. *)

val quote : t -> nonce:bytes -> pcr_selection:int list -> quote

val verify_quote : quote -> expected_ek:Hyperenclave_crypto.Signature.public_key -> bool
(** Full chain: AIK certificate under the EK, then quote signature under
    the AIK, with the EK pinned to the manufacturer-published value. *)

val random : t -> int -> bytes
(** The TPM RNG (Sec. 3.3 uses it to generate [K_root]). *)

val seal : t -> pcr_selection:int list -> bytes -> bytes
(** Seal to the {e current} values of the selected PCRs; the blob is
    encrypted under a chip-internal storage key and may be stored
    anywhere. *)

val unseal : t -> bytes -> bytes
(** @raise Unseal_failed if the blob is corrupt, from another chip, or the
    selected PCRs no longer match the sealing-time values. *)

val ek_public : t -> Hyperenclave_crypto.Signature.public_key

(** {1 Monotonic counters}

    NV counters survive reboots and only ever grow — the standard
    anti-rollback primitive for sealed state (the same one-way property
    PCR extends give the boot chain). *)

val counter_create : t -> name:string -> unit
(** Idempotent; a fresh counter starts at 0. *)

val counter_increment : t -> name:string -> int
(** Returns the new value. @raise Not_found for an unknown counter. *)

val counter_read : t -> name:string -> int
(** @raise Not_found for an unknown counter. *)
