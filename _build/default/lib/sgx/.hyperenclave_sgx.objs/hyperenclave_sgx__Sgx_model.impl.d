lib/sgx/sgx_model.ml: Addr Authenc Bytes Cost_model Cycles Hashtbl Hmac Hyperenclave_crypto Hyperenclave_hw Hyperenclave_monitor List Printf Queue Rng Sgx_types Sha256 Signature
