lib/sgx/sgx_model.mli: Cost_model Cycles Hyperenclave_crypto Hyperenclave_hw Hyperenclave_monitor Rng Sgx_types
