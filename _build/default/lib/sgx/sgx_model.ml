open Hyperenclave_hw
open Hyperenclave_crypto
open Hyperenclave_monitor

exception Sgx_error of string
exception Unsupported of string

let fail fmt = Printf.ksprintf (fun m -> raise (Sgx_error m)) fmt

type platform = {
  clock : Cycles.t;
  cost : Cost_model.t;
  rng : Rng.t;
  epc_pages : int;
  resident : (int * int, unit) Hashtbl.t; (* (enclave, vpn) in EPC *)
  fifo : (int * int) Queue.t; (* eviction order *)
  unmapped : (int * int, unit) Hashtbl.t; (* OS-cleared present bits *)
  sealing_root : bytes;
  mutable fault_trace : int list;
  mutable swaps : int;
  mutable next_id : int;
}

let create_platform ~clock ~cost ~rng ~epc_bytes =
  {
    clock;
    cost;
    rng;
    epc_pages = epc_bytes / Addr.page_size;
    resident = Hashtbl.create 4096;
    fifo = Queue.create ();
    unmapped = Hashtbl.create 64;
    sealing_root = Rng.bytes rng 32;
    fault_trace = [];
    swaps = 0;
    next_id = 1;
  }

type enclave = {
  platform : platform;
  id : int;
  mrenclave : bytes;
  mrsigner : bytes;
  ecalls : (int, handler) Hashtbl.t;
  ocalls : (int, bytes -> bytes) Hashtbl.t;
  handlers : (string, Sgx_types.exception_vector -> bool) Hashtbl.t;
  mutable entered : bool;
}

and handler = enclave -> bytes -> bytes

let create_enclave platform ~code_seed ~signer ~ecalls ~ocalls =
  let id = platform.next_id in
  platform.next_id <- id + 1;
  let mrenclave = Sha256.digest_string ("sgx-enclave:" ^ code_seed) in
  let enclave =
    {
      platform;
      id;
      mrenclave;
      mrsigner = Sha256.digest_bytes (Signature.public_of_private signer);
      ecalls = Hashtbl.create 16;
      ocalls = Hashtbl.create 16;
      handlers = Hashtbl.create 4;
      entered = false;
    }
  in
  List.iter (fun (i, h) -> Hashtbl.replace enclave.ecalls i h) ecalls;
  List.iter (fun (i, h) -> Hashtbl.replace enclave.ocalls i h) ocalls;
  enclave

let mrenclave e = e.mrenclave
let platform_of e = e.platform
let clock p = p.clock
let tick e n = Cycles.tick e.platform.clock n
let compute e n = tick e n

let ecall e ~id ?(data = Bytes.empty) () =
  if e.entered then fail "ecall: already inside the enclave";
  let handler =
    match Hashtbl.find_opt e.ecalls id with
    | Some h -> h
    | None -> fail "unknown ECALL %d" id
  in
  tick e e.platform.cost.sgx_ecall;
  (* Trusted edge code copies the payload across the boundary. *)
  tick e (Cost_model.copy_cost e.platform.cost (Bytes.length data));
  e.entered <- true;
  let result =
    match handler e data with
    | result -> result
    | exception exn ->
        e.entered <- false;
        raise exn
  in
  e.entered <- false;
  tick e (Cost_model.copy_cost e.platform.cost (Bytes.length result));
  result

let ocall e ~id ?(data = Bytes.empty) () =
  if not e.entered then fail "ocall: not inside the enclave";
  let handler =
    match Hashtbl.find_opt e.ocalls id with
    | Some h -> h
    | None -> fail "unknown OCALL %d" id
  in
  tick e e.platform.cost.sgx_ocall;
  tick e (Cost_model.copy_cost e.platform.cost (Bytes.length data));
  e.entered <- false;
  let reply = handler data in
  e.entered <- true;
  tick e (Cost_model.copy_cost e.platform.cost (Bytes.length reply));
  reply

(* --- EPC paging ------------------------------------------------------------ *)

let record_fault p vpn = p.fault_trace <- vpn :: p.fault_trace

let touch_page e ~vpn =
  let p = e.platform in
  let key = (e.id, vpn) in
  if Hashtbl.mem p.unmapped key then begin
    (* Controlled-channel probe: the OS sees this fault and re-maps. *)
    record_fault p vpn;
    Hashtbl.remove p.unmapped key;
    tick e p.cost.os_page_fault;
    tick e p.cost.sgx_aex;
    tick e p.cost.sgx_eresume
  end;
  if not (Hashtbl.mem p.resident key) then begin
    if Hashtbl.length p.resident >= p.epc_pages then begin
      (* EWB the coldest page, ELDU ours: both through the kernel. *)
      (match Queue.take_opt p.fifo with
      | Some victim -> Hashtbl.remove p.resident victim
      | None -> ());
      p.swaps <- p.swaps + 1;
      record_fault p vpn;
      tick e (2 * p.cost.epc_swap_page)
    end;
    Hashtbl.replace p.resident key ();
    Queue.add key p.fifo
  end

(* --- exceptions ------------------------------------------------------------ *)

let register_exception_handler e ~vector h = Hashtbl.replace e.handlers vector h

let raise_exception e vector =
  if not e.entered then fail "raise_exception: not inside the enclave";
  let p = e.platform in
  let name = Sgx_types.vector_name vector in
  match Hashtbl.find_opt e.handlers name with
  | None -> fail "unhandled %s in SGX enclave %d" name e.id
  | Some handler ->
      (* AEX, kernel signal, internal-handler ECALL, ERESUME: the
         two-phase flow SGX cannot shortcut (Table 2). *)
      tick e p.cost.sgx_aex;
      tick e p.cost.os_signal_delivery;
      tick e p.cost.sgx_ecall;
      if not (handler vector) then fail "in-enclave handler refused %s" name;
      tick e p.cost.sgx_eresume

let interrupt e =
  if not e.entered then fail "interrupt: not inside the enclave";
  let p = e.platform in
  tick e p.cost.sgx_aex;
  tick e (1_800 + p.cost.os_ctxsw);
  tick e p.cost.sgx_eresume

let emodpr _e ~vpn:_ =
  raise
    (Unsupported
       "SGX1 does not support changing page permissions after EINIT (EDMM)")

(* --- keys ------------------------------------------------------------------ *)

let getkey e name =
  let identity =
    match name with
    | Sgx_types.Seal_key_mrenclave -> e.mrenclave
    | Sgx_types.Seal_key_mrsigner -> e.mrsigner
    | Sgx_types.Report_key -> Bytes.empty
  in
  Hmac.derive ~key:e.platform.sealing_root
    ~info:(Sgx_types.key_name_label name ^ ":" ^ Sha256.to_hex identity)

let seal e ?aad data =
  let key = getkey e Sgx_types.Seal_key_mrenclave in
  let nonce = Rng.bytes e.platform.rng 12 in
  Authenc.encode (Authenc.seal ~key ?aad ~nonce data)

let unseal e blob =
  let key = getkey e Sgx_types.Seal_key_mrenclave in
  Authenc.unseal ~key (Authenc.decode blob)

(* --- the OS's controlled channel ------------------------------------------ *)

let os_unmap_page e ~vpn = Hashtbl.replace e.platform.unmapped (e.id, vpn) ()
let fault_trace p = p.fault_trace
let resident_pages p = Hashtbl.length p.resident
let swap_count p = p.swaps
