(** Behavioural model of Intel SGX1 — the paper's comparison baseline.

    Matches the architecture the paper contrasts against (Sec. 2.1, 3.2,
    7):
    - edge calls cost what Table 1 measured on the authors' Xeon E3-1270
      v6 (ECALL 14,432 / OCALL 12,432 cycles);
    - exceptions take an AEX plus the two-phase handling of Table 2
      (no in-enclave delivery: SGX1 enclaves cannot see their own
      exceptions);
    - the EPC is bounded (93 MB usable) and overflowing pages are swapped
      by EWB/ELDU at kernel cost;
    - the enclave's page tables are managed by the {e untrusted} OS, so
      the OS can clear present bits and observe the enclave's page-access
      trace — the controlled-channel attack (Xu et al.) that
      HyperEnclave's monitor-owned tables close off.  {!os_unmap_page} /
      {!fault_trace} expose exactly that capability to the security
      tests;
    - no page-permission changes after EINIT (the paper could not run the
      GC experiment on its SGX1 part; {!emodpr} raises accordingly). *)

open Hyperenclave_hw
open Hyperenclave_monitor

exception Sgx_error of string
exception Unsupported of string
(** SGX1 restriction hit (e.g. EDMM operations). *)

type platform

val create_platform :
  clock:Cycles.t ->
  cost:Cost_model.t ->
  rng:Rng.t ->
  epc_bytes:int ->
  platform

type enclave

type handler = enclave -> bytes -> bytes

val create_enclave :
  platform ->
  code_seed:string ->
  signer:Hyperenclave_crypto.Signature.private_key ->
  ecalls:(int * handler) list ->
  ocalls:(int * (bytes -> bytes)) list ->
  enclave

val mrenclave : enclave -> bytes
val platform_of : enclave -> platform
val clock : platform -> Cycles.t

val ecall : enclave -> id:int -> ?data:bytes -> unit -> bytes
(** Full SGX edge-call cost plus a direct copy of the payload. *)

val ocall : enclave -> id:int -> ?data:bytes -> unit -> bytes
(** Only valid while inside an ECALL handler. *)

val compute : enclave -> int -> unit

val touch_page : enclave -> vpn:int -> unit
(** Access one enclave page: EPC-resident accounting; beyond the EPC limit
    the model pays EWB/ELDU swap costs and the faulting page number leaks
    into {!fault_trace}. *)

val raise_exception : enclave -> Sgx_types.exception_vector -> unit
(** AEX -> OS signal -> internal handler ECALL -> ERESUME (Table 2). *)

val register_exception_handler :
  enclave -> vector:string -> (Sgx_types.exception_vector -> bool) -> unit

val interrupt : enclave -> unit
(** Timer interrupt: AEX + ERESUME. *)

val emodpr : enclave -> vpn:int -> unit
(** @raise Unsupported — SGX1 has no EDMM (Sec. 7.2's footnote about the
    GC benchmark). *)

val getkey : enclave -> Sgx_types.key_name -> bytes
val seal : enclave -> ?aad:bytes -> bytes -> bytes
val unseal : enclave -> bytes -> bytes

(** {1 The untrusted OS's powers (for the controlled-channel contrast)} *)

val os_unmap_page : enclave -> vpn:int -> unit
(** The OS clears the present bit of an enclave PTE — legal in SGX's
    design; the next enclave access faults visibly. *)

val fault_trace : platform -> int list
(** Page numbers of every enclave fault the OS observed (newest first). *)

val resident_pages : platform -> int
val swap_count : platform -> int
