(** Memory-encryption latency scan (Fig. 11).

    Average access latency for sequential and random patterns over buffer
    sizes 16 KB - 256 MB, for each engine: unencrypted, AMD SME
    (HyperEnclave) and Intel MEE with the 93 MB EPC (SGX).  The LLC knee
    at 8 MB and the SGX paging cliff at 93 MB come out of the cache and
    EPC models. *)

open Hyperenclave_hw

type point = { size : int; latency_cycles : float }

val default_sizes : int list
(** 16 KB to 256 MB, doubling. *)

val series :
  cost:Cost_model.t ->
  engine:Mem_crypto.engine ->
  pattern:[ `Seq | `Random ] ->
  sizes:int list ->
  point list

val overhead_vs : baseline:point list -> point list -> (int * float) list
(** Per-size slowdown factor. *)
