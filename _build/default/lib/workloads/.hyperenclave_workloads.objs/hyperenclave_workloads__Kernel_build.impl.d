lib/workloads/kernel_build.ml: Bytes Cycles Hyperenclave_crypto Hyperenclave_hw Hyperenclave_os Hyperenclave_tee Kernel List Platform Printf Sha256 String
