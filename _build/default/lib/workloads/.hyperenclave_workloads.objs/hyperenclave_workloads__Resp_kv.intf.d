lib/workloads/resp_kv.mli: Backend Hyperenclave_tee Ycsb
