lib/workloads/lmbench.ml: Addr Bytes Cycles Hyperenclave_hw Hyperenclave_os Hyperenclave_tee Kernel List Platform
