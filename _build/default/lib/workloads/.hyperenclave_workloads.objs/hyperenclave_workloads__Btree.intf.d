lib/workloads/btree.mli:
