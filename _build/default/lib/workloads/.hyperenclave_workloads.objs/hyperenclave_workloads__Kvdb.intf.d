lib/workloads/kvdb.mli: Backend Btree Hyperenclave_tee
