lib/workloads/memlat.ml: Cycles Hyperenclave_hw Hyperenclave_tee List Mem_sim Rng
