lib/workloads/ycsb.mli: Hyperenclave_hw
