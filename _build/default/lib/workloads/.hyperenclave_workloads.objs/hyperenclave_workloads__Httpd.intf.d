lib/workloads/httpd.mli: Backend Hyperenclave_tee
