lib/workloads/kvdb.ml: Backend Btree Buffer Bytes Char Cycles Hyperenclave_hw Hyperenclave_sdk Hyperenclave_tee Int64 List Mem_sim Printf Result Rng String Timer Ycsb
