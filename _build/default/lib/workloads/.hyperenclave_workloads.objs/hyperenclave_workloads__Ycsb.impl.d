lib/workloads/ycsb.ml: Bytes Hyperenclave_hw Printf Rng String
