lib/workloads/timer.mli: Backend Hyperenclave_tee
