lib/workloads/timer.ml: Backend Cycles Hyperenclave_hw Hyperenclave_tee
