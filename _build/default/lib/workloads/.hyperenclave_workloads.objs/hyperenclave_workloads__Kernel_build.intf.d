lib/workloads/kernel_build.mli: Hyperenclave_tee Platform
