lib/workloads/spec_cpu.mli: Hyperenclave_tee Platform
