lib/workloads/memlat.mli: Cost_model Hyperenclave_hw Mem_crypto
