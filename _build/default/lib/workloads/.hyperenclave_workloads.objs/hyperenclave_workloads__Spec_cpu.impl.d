lib/workloads/spec_cpu.ml: Addr Array Bytes Char Cycles Hashtbl Hyperenclave_hw Hyperenclave_os Hyperenclave_tee Kernel List Mmu Platform Printf Rng String
