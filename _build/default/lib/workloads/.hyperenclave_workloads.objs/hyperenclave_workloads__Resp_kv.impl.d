lib/workloads/resp_kv.ml: Backend Buffer Bytes Cycles Hashtbl Hyperenclave_hw Hyperenclave_sdk Hyperenclave_tee List Mem_sim Printf Result Rng String Ycsb
