lib/workloads/btree.ml: Array Hashtbl List Printf
