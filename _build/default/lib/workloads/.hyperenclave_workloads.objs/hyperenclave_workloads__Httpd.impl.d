lib/workloads/httpd.ml: Backend Bytes Hashtbl Hyperenclave_hw Hyperenclave_sdk Hyperenclave_tee List Mem_sim Printf Result String
