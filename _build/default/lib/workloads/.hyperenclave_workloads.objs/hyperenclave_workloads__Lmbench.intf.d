lib/workloads/lmbench.mli: Hyperenclave_tee Platform
