lib/workloads/nbench.mli: Backend Hyperenclave_tee
