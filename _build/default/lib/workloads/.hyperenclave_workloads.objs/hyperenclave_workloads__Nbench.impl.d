lib/workloads/nbench.ml: Array Backend Bytes Char Cycles Float Hyperenclave_hw Hyperenclave_sdk Hyperenclave_tee Int64 List Mem_sim Rng String Timer
