open Hyperenclave_hw
open Hyperenclave_os
open Hyperenclave_tee

type result = {
  name : string;
  native_us : float;
  vm_us : float;
  overhead_pct : float;
}

let op_names =
  [ "null call"; "fork"; "ctxsw 2p/64KB"; "mmap"; "page fault"; "AF_UNIX" ]

let us_of_cycles cycles = float_of_int cycles /. 2200.0

let touch_pages kernel proc ~va ~pages =
  for i = 0 to pages - 1 do
    Kernel.proc_write kernel proc ~va:(va + (i * Addr.page_size))
      (Bytes.make 8 'x')
  done

let null_call (p : Platform.t) () = Kernel.null_syscall p.kernel

let fork (p : Platform.t) () =
  let child = Kernel.spawn p.kernel in
  Kernel.switch_to p.kernel child;
  (* COW touch-down of the child's working set. *)
  let va = Kernel.mmap p.kernel child ~len:(48 * Addr.page_size) ~populate:false in
  touch_pages p.kernel child ~va ~pages:48;
  Kernel.exit_process p.kernel child;
  Kernel.switch_to p.kernel p.proc

let ctxsw (p : Platform.t) =
  let a = Kernel.spawn p.kernel and b = Kernel.spawn p.kernel in
  let pages = 16 (* 64 KB working set *) in
  let va_a = Kernel.mmap p.kernel a ~len:(pages * Addr.page_size) ~populate:false in
  let va_b = Kernel.mmap p.kernel b ~len:(pages * Addr.page_size) ~populate:false in
  Kernel.switch_to p.kernel a;
  touch_pages p.kernel a ~va:va_a ~pages;
  Kernel.switch_to p.kernel b;
  touch_pages p.kernel b ~va:va_b ~pages;
  fun () ->
    Kernel.switch_to p.kernel a;
    touch_pages p.kernel a ~va:va_a ~pages;
    Kernel.switch_to p.kernel b;
    touch_pages p.kernel b ~va:va_b ~pages

let mmap_op (p : Platform.t) () =
  ignore (Kernel.mmap p.kernel p.proc ~len:(16 * Addr.page_size) ~populate:true)

let page_fault (p : Platform.t) () =
  let old_brk = Kernel.brk_grow p.kernel p.proc ~len:Addr.page_size in
  Kernel.proc_write p.kernel p.proc ~va:old_brk (Bytes.make 8 'y')

let af_unix (p : Platform.t) () = Kernel.af_unix_roundtrip p.kernel

let measure (p : Platform.t) ~iterations op =
  (* The previous op may have left another process on the CPU. *)
  Kernel.switch_to p.kernel p.proc;
  (* Warm up the TLB/caches for this translation mode. *)
  op ();
  let _, cycles =
    Cycles.time p.clock (fun () ->
        for _ = 1 to iterations do
          op ()
        done)
  in
  us_of_cycles (cycles / iterations)

let run (p : Platform.t) ?(iterations = 50) () =
  let ops =
    [
      ("null call", fun () -> null_call p);
      ("fork", fun () -> fork p);
      ("ctxsw 2p/64KB", fun () -> ctxsw p);
      ("mmap", fun () -> mmap_op p);
      ("page fault", fun () -> page_fault p);
      ("AF_UNIX", fun () -> af_unix p);
    ]
  in
  List.map
    (fun (name, make_op) ->
      let native_us =
        Kernel.with_translation p.kernel ~nested:false (fun () ->
            measure p ~iterations (make_op ()))
      in
      let vm_us =
        Kernel.with_translation p.kernel ~nested:true (fun () ->
            measure p ~iterations (make_op ()))
      in
      let overhead_pct = (vm_us -. native_us) /. native_us *. 100.0 in
      { name; native_us; vm_us; overhead_pct })
    ops
