(** YCSB workload generator (Cooper et al., SoCC'10) — the load used for
    the SQLite and Redis evaluations (Fig. 8b, 8d).

    Workload A: 50% reads, 50% updates, keys drawn from a zipfian
    distribution over the loaded records. *)

type op = Read of int | Update of int  (** key *)

type t

val create :
  rng:Hyperenclave_hw.Rng.t -> records:int -> ?zipf_theta:float -> unit -> t
(** Default theta 0.99 (the YCSB standard constant). *)

val next_key : t -> int
(** Zipfian-distributed key in [\[0, records)], hottest keys first. *)

val next_op_a : t -> op
(** Workload A mix. *)

val uniform_key : t -> int

val record_value : key:int -> size:int -> bytes
(** Deterministic record payload for a key. *)
