open Hyperenclave_hw
open Hyperenclave_os
open Hyperenclave_tee

let kernel_names =
  [
    "600.perlbench_s";
    "602.gcc_s";
    "605.mcf_s";
    "620.omnetpp_s";
    "623.xalancbmk_s";
    "625.x264_s";
    "631.deepsjeng_s";
    "641.leela_s";
    "657.xz_s";
  ]

type result = {
  name : string;
  native_cycles : int;
  vm_cycles : int;
  overhead_pct : float;
}

(* One data region per kernel run; touched through the real MMU so nested
   paging shows up in the walk costs. *)
let region_pages = 64

let touch (p : Platform.t) va =
  ignore (Mmu.translate p.cpu ~access:Mmu.Read ~user:true va)

let touch_region p ~base ~pages =
  for i = 0 to pages - 1 do
    touch p (base + (i * Addr.page_size))
  done

(* --- kernels ------------------------------------------------------------------ *)

let perlbench (p : Platform.t) rng ~base =
  let text =
    String.init 8192 (fun _ -> Char.chr (97 + Rng.int rng 4))
  in
  let pattern = "abca" in
  let matches = ref 0 in
  for i = 0 to String.length text - String.length pattern do
    let rec eq j = j >= String.length pattern || (text.[i + j] = pattern.[j] && eq (j + 1)) in
    if eq 0 then incr matches
  done;
  assert (!matches >= 0);
  Cycles.tick p.clock (String.length text * 8);
  touch_region p ~base ~pages:16

let gcc (p : Platform.t) rng ~base =
  let source =
    String.concat ""
      (List.init 256 (fun i ->
           Printf.sprintf "int f%d(int x) { return x %c %d; }\n" i
             (if Rng.bool rng then '+' else '*')
             (Rng.int rng 100)))
  in
  let idents = ref 0 and depth = ref 0 and max_depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '{' | '(' ->
          incr depth;
          max_depth := max !max_depth !depth
      | '}' | ')' -> decr depth
      | 'a' .. 'z' -> incr idents
      | _ -> ())
    source;
  assert (!depth = 0 && !max_depth > 0);
  Cycles.tick p.clock (String.length source * 10);
  touch_region p ~base ~pages:24

let mcf (p : Platform.t) rng ~base =
  let nodes = 256 in
  let edges =
    Array.init (nodes * 4) (fun _ ->
        (Rng.int rng nodes, Rng.int rng nodes, 1 + Rng.int rng 50))
  in
  let dist = Array.make nodes max_int in
  dist.(0) <- 0;
  let relaxations = ref 0 in
  for _ = 1 to 24 do
    Array.iter
      (fun (u, v, w) ->
        incr relaxations;
        if dist.(u) < max_int && dist.(u) + w < dist.(v) then dist.(v) <- dist.(u) + w)
      edges
  done;
  assert (dist.(0) = 0);
  Cycles.tick p.clock (!relaxations * 6);
  touch_region p ~base ~pages:12

let omnetpp (p : Platform.t) rng ~base =
  (* Discrete-event simulation over a binary-heap future-event set. *)
  let heap = Array.make 4096 (max_int, 0) in
  let size = ref 0 in
  let push t v =
    heap.(!size) <- (t, v);
    incr size;
    let i = ref (!size - 1) in
    while !i > 0 && fst heap.((!i - 1) / 2) > fst heap.(!i) do
      let parent = (!i - 1) / 2 in
      let tmp = heap.(parent) in
      heap.(parent) <- heap.(!i);
      heap.(!i) <- tmp;
      i := parent
    done
  in
  let pop () =
    let top = heap.(0) in
    decr size;
    heap.(0) <- heap.(!size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < !size && fst heap.(l) < fst heap.(!smallest) then smallest := l;
      if r < !size && fst heap.(r) < fst heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = heap.(!smallest) in
        heap.(!smallest) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
  in
  for i = 1 to 512 do
    push (Rng.int rng 100000) i
  done;
  let processed = ref 0 and last = ref (-1) in
  while !size > 0 do
    let t, _ = pop () in
    assert (t >= !last);
    last := t;
    incr processed;
    if !processed mod 4 = 0 && !size < 4000 then push (t + Rng.int rng 1000) 0
  done;
  Cycles.tick p.clock (!processed * 40);
  touch_region p ~base ~pages:8

let xalancbmk (p : Platform.t) rng ~base =
  (* Tree transformation: random binary tree, subtree-sum rewrite. *)
  let n = 1024 in
  let left = Array.make n (-1) and right = Array.make n (-1) in
  let value = Array.init n (fun _ -> Rng.int rng 100) in
  for i = 1 to n - 1 do
    let parent = Rng.int rng i in
    if left.(parent) = -1 then left.(parent) <- i
    else if right.(parent) = -1 then right.(parent) <- i
    else begin
      (* walk down until a free slot *)
      let node = ref parent in
      while left.(!node) <> -1 && right.(!node) <> -1 do
        node := if Rng.bool rng then left.(!node) else right.(!node)
      done;
      if left.(!node) = -1 then left.(!node) <- i else right.(!node) <- i
    end
  done;
  let visits = ref 0 in
  let rec subtree_sum i =
    if i = -1 then 0
    else begin
      incr visits;
      let s = value.(i) + subtree_sum left.(i) + subtree_sum right.(i) in
      value.(i) <- s;
      s
    end
  in
  let total = subtree_sum 0 in
  assert (total >= 0 && !visits = n);
  Cycles.tick p.clock (!visits * 25);
  touch_region p ~base ~pages:20

let x264 (p : Platform.t) rng ~base =
  let dim = 64 in
  let frame () = Array.init (dim * dim) (fun _ -> Rng.int rng 256) in
  let a = frame () and b = frame () in
  let sad_total = ref 0 in
  for by = 0 to (dim / 16) - 1 do
    for bx = 0 to (dim / 16) - 1 do
      let sad = ref 0 in
      for y = 0 to 15 do
        for x = 0 to 15 do
          let idx = (((by * 16) + y) * dim) + (bx * 16) + x in
          sad := !sad + abs (a.(idx) - b.(idx))
        done
      done;
      sad_total := !sad_total + !sad
    done
  done;
  assert (!sad_total > 0);
  Cycles.tick p.clock (dim * dim * 4);
  touch_region p ~base ~pages:16

let deepsjeng (p : Platform.t) rng ~base =
  let nodes = ref 0 in
  let rec alphabeta depth alpha beta seed =
    incr nodes;
    if depth = 0 then (seed * 2654435761) land 0xff
    else begin
      let best = ref alpha in
      let i = ref 0 in
      while !i < 4 && !best < beta do
        let score =
          - alphabeta (depth - 1) (-beta) (- !best) ((seed * 31) + !i)
        in
        if score > !best then best := score;
        incr i
      done;
      !best
    end
  in
  let score = alphabeta 6 (-1000) 1000 (Rng.int rng 1000) in
  assert (score >= -1000 && score <= 1000);
  Cycles.tick p.clock (!nodes * 30);
  touch_region p ~base ~pages:8

let leela (p : Platform.t) rng ~base =
  let dim = 9 in
  let playouts = 128 in
  let wins = ref 0 in
  for _ = 1 to playouts do
    let board = Array.make (dim * dim) 0 in
    Array.iteri (fun i _ -> board.(i) <- 1 + Rng.int rng 2) board;
    let territory = Array.fold_left (fun acc v -> if v = 1 then acc + 1 else acc) 0 board in
    if territory > dim * dim / 2 then incr wins
  done;
  assert (!wins >= 0 && !wins <= playouts);
  Cycles.tick p.clock (playouts * dim * dim * 5);
  touch_region p ~base ~pages:8

let xz (p : Platform.t) rng ~base =
  (* LZ77-style hash-chain matcher over generated data. *)
  let len = 8192 in
  let data = Bytes.init len (fun i -> Char.chr ((i * 7 mod 31) + Rng.int rng 4)) in
  let table = Hashtbl.create 1024 in
  let matched = ref 0 and literals = ref 0 in
  let i = ref 0 in
  while !i < len - 4 do
    let key = Bytes.sub_string data !i 4 in
    (match Hashtbl.find_opt table key with
    | Some prev when !i - prev < 4096 ->
        incr matched;
        i := !i + 4
    | Some _ | None ->
        incr literals;
        incr i);
    Hashtbl.replace table key !i
  done;
  assert (!matched + !literals > 0);
  Cycles.tick p.clock (len * 12);
  touch_region p ~base ~pages:16

let kernels =
  [
    perlbench; gcc; mcf; omnetpp; xalancbmk; x264; deepsjeng; leela; xz;
  ]

(* --- runner -------------------------------------------------------------------- *)

let timer_period = 550_000

let run_mode (p : Platform.t) ~nested kernel ~iterations =
  Kernel.with_translation p.kernel ~nested (fun () ->
      let base =
        Kernel.mmap p.kernel p.proc ~len:(region_pages * Addr.page_size)
          ~populate:true
      in
      let rng = Rng.create ~seed:2024L in
      kernel p rng ~base (* warm-up *);
      let next_tick = ref (Cycles.now p.clock + timer_period) in
      let _, cycles =
        Cycles.time p.clock (fun () ->
            for _ = 1 to iterations do
              kernel p rng ~base;
              while Cycles.now p.clock >= !next_tick do
                (* Timer tick: bare interrupt natively; a VM exit plus
                   re-injection when virtualized. *)
                Cycles.tick p.clock
                  (if nested then 1800 + p.cost.vmexit + p.cost.vminject
                   else 1800);
                next_tick := !next_tick + timer_period
              done
            done)
      in
      cycles)

let run (p : Platform.t) ?(scale = 1) () =
  List.map2
    (fun name kernel ->
      let iterations = 8 * scale in
      let native_cycles = run_mode p ~nested:false kernel ~iterations in
      let vm_cycles = run_mode p ~nested:true kernel ~iterations in
      let overhead_pct =
        float_of_int (vm_cycles - native_cycles)
        /. float_of_int native_cycles *. 100.0
      in
      { name; native_cycles; vm_cycles; overhead_pct })
    kernel_names kernels
