open Hyperenclave_hw
open Hyperenclave_tee

type point = { size : int; latency_cycles : float }

let default_sizes =
  let rec go acc size =
    if size > 256 * 1024 * 1024 then List.rev acc else go (size :: acc) (size * 2)
  in
  go [] (16 * 1024)

let series ~cost ~engine ~pattern ~sizes =
  List.map
    (fun size ->
      let clock = Cycles.create () in
      let sim =
        Mem_sim.create ~clock ~cost ~rng:(Rng.create ~seed:5L) ~engine ()
      in
      { size; latency_cycles = Mem_sim.avg_access_cycles sim ~pattern ~working_set:size })
    sizes

let overhead_vs ~baseline points =
  List.map2
    (fun (b : point) (x : point) ->
      assert (b.size = x.size);
      (x.size, x.latency_cycles /. b.latency_cycles))
    baseline points
