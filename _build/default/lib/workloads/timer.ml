open Hyperenclave_hw
open Hyperenclave_tee

type t = { period : int; mutable next : int; mutable fired : int }

let default_period = 550_000

let create ?(period = default_period) (env : Backend.env) =
  { period; next = Cycles.now env.Backend.clock + period; fired = 0 }

let check t (env : Backend.env) =
  while Cycles.now env.Backend.clock >= t.next do
    env.Backend.interrupt ();
    t.fired <- t.fired + 1;
    t.next <- t.next + t.period
  done

let fired t = t.fired
